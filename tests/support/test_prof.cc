/**
 * @file
 * Profiler/metrics registry tests: disabled probes record nothing,
 * enabled probes record spans and counters, buffers from many threads
 * merge into one deterministic report, and both exporters (Chrome
 * trace-event JSON and the irep-prof-1 summary) emit well-formed
 * documents.
 */

#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/prof.hh"

namespace irep::prof
{
namespace
{

/** Every test starts and ends with the profiler off and empty, so
 *  tests cannot leak state into each other. */
class ProfTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        enable(false);
        reset();
    }

    void
    TearDown() override
    {
        enable(false);
        reset();
    }
};

TEST_F(ProfTest, DisabledProbesRecordNothing)
{
    ASSERT_FALSE(enabled());
    recordSpan("never", "test", 0, 100);
    counterAdd("test/never", 5.0);
    {
        Span span("scoped", "test");
        span.arg("x", 1.0);
    }
    EXPECT_FALSE(anythingRecorded());
    const Report report = snapshot();
    EXPECT_TRUE(report.events.empty());
    EXPECT_TRUE(report.counters.empty());
}

TEST_F(ProfTest, EnabledSpanAndCounterAppearInSnapshot)
{
    enable();
    ASSERT_TRUE(enabled());
    recordSpan("phase", "test", 10, 90, {{"n", 3.0}});
    counterAdd("test/items", 2.0);
    counterAdd("test/items", 3.0);

    const Report report = snapshot();
    ASSERT_EQ(report.events.size(), 1u);
    EXPECT_EQ(report.events[0].name, "phase");
    EXPECT_EQ(report.events[0].cat, "test");
    EXPECT_EQ(report.events[0].startNs, 10u);
    EXPECT_EQ(report.events[0].durNs, 90u);
    ASSERT_EQ(report.events[0].args.size(), 1u);
    EXPECT_EQ(report.events[0].args[0].first, "n");
    EXPECT_EQ(report.counters.at("test/items"), 5.0);

    ASSERT_EQ(report.spans.size(), 1u);
    EXPECT_EQ(report.spans[0].count, 1u);
    EXPECT_EQ(report.spans[0].totalNs, 90u);
}

TEST_F(ProfTest, ScopedSpanMeasuresItsLifetime)
{
    enable();
    {
        Span span("work", "test");
    }
    const Report report = snapshot();
    ASSERT_EQ(report.events.size(), 1u);
    EXPECT_EQ(report.events[0].name, "work");
}

TEST_F(ProfTest, SpanStatsAggregateByCategoryAndName)
{
    enable();
    recordSpan("a", "cat", 0, 10);
    recordSpan("a", "cat", 20, 30);
    recordSpan("b", "cat", 5, 7);
    const Report report = snapshot();
    ASSERT_EQ(report.spans.size(), 2u);
    EXPECT_EQ(report.spans[0].name, "a");
    EXPECT_EQ(report.spans[0].count, 2u);
    EXPECT_EQ(report.spans[0].totalNs, 40u);
    EXPECT_EQ(report.spans[0].minNs, 10u);
    EXPECT_EQ(report.spans[0].maxNs, 30u);
    EXPECT_EQ(report.spans[1].name, "b");
}

TEST_F(ProfTest, ThreadsMergeAdditively)
{
    enable();
    constexpr int numThreads = 8;
    constexpr int perThread = 50;
    std::vector<std::thread> threads;
    for (int t = 0; t < numThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < perThread; ++i) {
                counterAdd("test/shared", 1.0);
                recordSpan("tick", "test",
                           uint64_t(t * 1000 + i), 1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    const Report report = snapshot();
    EXPECT_EQ(report.counters.at("test/shared"),
              double(numThreads * perThread));
    EXPECT_EQ(report.events.size(),
              size_t(numThreads) * perThread);
    ASSERT_EQ(report.spans.size(), 1u);
    EXPECT_EQ(report.spans[0].count,
              uint64_t(numThreads) * perThread);
}

TEST_F(ProfTest, SnapshotWhileThreadsRecordIsSafe)
{
    enable();
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([] {
            for (int i = 0; i < 200; ++i) {
                counterAdd("test/racing", 1.0);
                recordSpan("race", "test", uint64_t(i), 1);
            }
        });
    }
    // Concurrent merges must see a consistent (if partial) state.
    for (int i = 0; i < 10; ++i)
        (void)snapshot();
    for (auto &thread : writers)
        thread.join();
    const Report report = snapshot();
    EXPECT_EQ(report.counters.at("test/racing"), 800.0);
}

TEST_F(ProfTest, ResetDropsEverything)
{
    enable();
    counterAdd("test/x", 1.0);
    recordSpan("x", "test", 0, 1);
    ASSERT_TRUE(anythingRecorded());
    reset();
    EXPECT_FALSE(anythingRecorded());
    // Recording continues into fresh buffers after a reset.
    counterAdd("test/y", 2.0);
    EXPECT_EQ(snapshot().counters.at("test/y"), 2.0);
}

TEST_F(ProfTest, TraceJsonIsWellFormedChromeFormat)
{
    enable();
    recordSpan("window", "pipeline", 100, 900, {{"instructions", 5.0}});
    counterAdd("pipeline/windows", 1.0);

    std::ostringstream out;
    writeTraceJson(out);
    const json::Value doc = json::parse(out.str());
    const json::Value &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // One complete event plus the trailing counter event.
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events.at(size_t(0)).at("ph").asString(), "X");
    EXPECT_EQ(events.at(size_t(0)).at("name").asString(), "window");
    EXPECT_DOUBLE_EQ(events.at(size_t(0)).at("ts").asNumber(), 0.1);
    EXPECT_DOUBLE_EQ(events.at(size_t(0)).at("dur").asNumber(), 0.9);
    EXPECT_EQ(events.at(size_t(1)).at("ph").asString(), "C");
    EXPECT_DOUBLE_EQ(events.at(size_t(1))
                         .at("args")
                         .at("pipeline/windows")
                         .asNumber(),
                     1.0);
    EXPECT_EQ(doc.at("otherData").at("schema").asString(),
              "irep-prof-trace-1");
}

TEST_F(ProfTest, SummaryIsWellFormedProfSchema)
{
    enable();
    recordSpan("replay", "trace_io", 0, 500);
    recordSpan("replay", "trace_io", 600, 700);
    counterAdd("trace_io/records", 42.0);

    std::ostringstream out;
    json::Writer w(out);
    writeSummary(w);
    const json::Value doc = json::parse(out.str());
    EXPECT_EQ(doc.at("schema").asString(), "irep-prof-1");
    const json::Value &span = doc.at("spans").at("trace_io/replay");
    EXPECT_EQ(span.at("count").asU64(), 2u);
    EXPECT_EQ(span.at("total_ns").asU64(), 1200u);
    EXPECT_EQ(span.at("min_ns").asU64(), 500u);
    EXPECT_EQ(span.at("max_ns").asU64(), 700u);
    EXPECT_DOUBLE_EQ(
        doc.at("counters").at("trace_io/records").asNumber(), 42.0);
}

TEST_F(ProfTest, NowNsIsMonotonic)
{
    const uint64_t a = nowNs();
    const uint64_t b = nowNs();
    EXPECT_LE(a, b);
}

} // namespace
} // namespace irep::prof
