/**
 * @file
 * Unit tests for the text-table formatter used by the bench harness.
 */

#include <gtest/gtest.h>

#include "support/table.hh"

namespace irep
{
namespace
{

TEST(Table, NumFormatsDigits)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.14159, 0), "3");
    EXPECT_EQ(TextTable::num(100.0, 1), "100.0");
    EXPECT_EQ(TextTable::num(-2.5, 1), "-2.5");
}

TEST(Table, CountAddsThousandsSeparators)
{
    EXPECT_EQ(TextTable::count(0), "0");
    EXPECT_EQ(TextTable::count(999), "999");
    EXPECT_EQ(TextTable::count(1000), "1,000");
    EXPECT_EQ(TextTable::count(1234567), "1,234,567");
    EXPECT_EQ(TextTable::count(1000000000ull), "1,000,000,000");
}

TEST(Table, RendersAlignedColumns)
{
    TextTable table;
    table.header({"name", "value"});
    table.row({"a", "1"});
    table.row({"longer", "22"});
    const std::string out = table.render();

    // Every data row must start at the same column offsets.
    EXPECT_NE(out.find("name    value"), std::string::npos) << out;
    EXPECT_NE(out.find("a       1"), std::string::npos) << out;
    EXPECT_NE(out.find("longer  22"), std::string::npos) << out;
}

TEST(Table, HeaderRule)
{
    TextTable table;
    table.header({"h"});
    table.row({"x"});
    const std::string out = table.render();
    EXPECT_NE(out.find("-"), std::string::npos);
    // Rule comes after header, before data.
    EXPECT_LT(out.find("h"), out.find("-"));
    EXPECT_LT(out.find("-"), out.find("x"));
}

TEST(Table, HandlesRaggedRows)
{
    TextTable table;
    table.header({"a", "b", "c"});
    table.row({"1"});
    table.row({"1", "2", "3"});
    EXPECT_NO_THROW(table.render());
}

TEST(Table, EmptyTableRendersEmpty)
{
    TextTable table;
    EXPECT_EQ(table.render(), "");
}

TEST(Table, CsvPlainCellsStayUnquoted)
{
    TextTable table;
    table.header({"name", "value"});
    table.row({"a", "1"});
    table.row({"longer", "22"});
    EXPECT_EQ(table.renderCsv(), "name,value\na,1\nlonger,22\n");
}

TEST(Table, CsvQuotesCommasAndNewlines)
{
    TextTable table;
    table.row({"a,b", "line1\nline2", "cr\rhere"});
    EXPECT_EQ(table.renderCsv(),
              "\"a,b\",\"line1\nline2\",\"cr\rhere\"\n");
}

TEST(Table, CsvDoublesEmbeddedQuotes)
{
    TextTable table;
    table.row({"say \"hi\"", "plain"});
    EXPECT_EQ(table.renderCsv(), "\"say \"\"hi\"\"\",plain\n");
}

TEST(Table, CsvKeepsSpacesAndEmptyCells)
{
    TextTable table;
    table.row({"has space", "", "x"});
    // Spaces need no quoting; empty cells stay empty.
    EXPECT_EQ(table.renderCsv(), "has space,,x\n");
}

TEST(Table, CsvEmptyTableRendersEmpty)
{
    TextTable table;
    EXPECT_EQ(table.renderCsv(), "");
}

} // namespace
} // namespace irep
