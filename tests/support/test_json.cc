/**
 * @file
 * JSON writer/parser tests: escaping, number formatting, structure
 * tracking, and parse round-trips. The stats exporter and the JSONL
 * tracer both lean on these guarantees.
 */

#include <cmath>
#include <functional>
#include <sstream>

#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

std::string
compact(const std::function<void(json::Writer &)> &body)
{
    std::ostringstream os;
    json::Writer w(os, /*pretty=*/false);
    body(w);
    return os.str();
}

TEST(JsonWriter, EscapesSpecialCharacters)
{
    const std::string out = compact([](json::Writer &w) {
        w.value("a\"b\\c\nd\te\x01");
    });
    EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
}

TEST(JsonWriter, IntegersPrintExactly)
{
    const std::string out = compact([](json::Writer &w) {
        w.beginArray();
        w.value(uint64_t(18446744073709551615ull));
        w.value(int64_t(-42));
        w.endArray();
    });
    EXPECT_EQ(out, "[18446744073709551615,-42]");
}

TEST(JsonWriter, IntegralDoublesAvoidExponent)
{
    EXPECT_EQ(compact([](json::Writer &w) { w.value(1e6); }),
              "1000000");
    EXPECT_EQ(compact([](json::Writer &w) { w.value(-3.0); }), "-3");
}

TEST(JsonWriter, DoublesRoundTrip)
{
    const std::string out =
        compact([](json::Writer &w) { w.value(79.71366666666667); });
    EXPECT_EQ(std::stod(out), 79.71366666666667);
}

TEST(JsonWriter, NonFiniteBecomesNull)
{
    EXPECT_EQ(compact([](json::Writer &w) { w.value(NAN); }), "null");
    EXPECT_EQ(compact([](json::Writer &w) {
                  w.value(INFINITY);
              }),
              "null");
}

TEST(JsonWriter, NestedStructure)
{
    const std::string out = compact([](json::Writer &w) {
        w.beginObject();
        w.field("a", 1);
        w.key("b");
        w.beginArray();
        w.value(true);
        w.null();
        w.endArray();
        w.endObject();
    });
    EXPECT_EQ(out, "{\"a\":1,\"b\":[true,null]}");
}

TEST(JsonWriter, PrettyOutputParses)
{
    std::ostringstream os;
    json::Writer w(os);    // pretty
    w.beginObject();
    w.field("x", 1.5);
    w.key("nested");
    w.beginObject();
    w.field("s", "hi");
    w.endObject();
    w.endObject();
    const json::Value v = json::parse(os.str());
    EXPECT_EQ(v.at("x").asNumber(), 1.5);
    EXPECT_EQ(v.at("nested").at("s").asString(), "hi");
}

TEST(JsonWriter, MisuseIsCaught)
{
    std::ostringstream os;
    json::Writer w(os, false);
    w.beginObject();
    EXPECT_THROW(w.value(1), PanicError);      // value without key
    EXPECT_THROW(w.endArray(), PanicError);    // mismatched end
}

TEST(JsonParser, ParsesScalars)
{
    EXPECT_TRUE(json::parse("null").isNull());
    EXPECT_TRUE(json::parse("true").asBool());
    EXPECT_FALSE(json::parse("false").asBool());
    EXPECT_EQ(json::parse("-2.5e2").asNumber(), -250.0);
    EXPECT_EQ(json::parse("\"a\\u0041b\"").asString(), "aAb");
}

TEST(JsonParser, U64KeepsFullPrecision)
{
    EXPECT_EQ(json::parse("18446744073709551615").asU64(),
              18446744073709551615ull);
}

TEST(JsonParser, ObjectAndArrayAccess)
{
    const json::Value v =
        json::parse(R"({"a": [1, 2, 3], "b": {"c": 4}})");
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v.at("a").size(), 3u);
    EXPECT_EQ(v.at("a").at(1).asNumber(), 2.0);
    EXPECT_EQ(v.at("b").at("c").asNumber(), 4.0);
    EXPECT_TRUE(v.contains("a"));
    EXPECT_FALSE(v.contains("z"));
    EXPECT_THROW(v.at("z"), FatalError);
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(json::parse(""), FatalError);
    EXPECT_THROW(json::parse("{"), FatalError);
    EXPECT_THROW(json::parse("[1,]2"), FatalError);
    EXPECT_THROW(json::parse("{\"a\":1} trailing"), FatalError);
    EXPECT_THROW(json::parse("\"unterminated"), FatalError);
    EXPECT_THROW(json::parse("nope"), FatalError);
}

TEST(JsonParser, RoundTripsWriterEscapes)
{
    const std::string text = "quote\" slash\\ nl\n tab\t ctl\x02";
    std::ostringstream os;
    json::Writer w(os, false);
    w.value(text);
    EXPECT_EQ(json::parse(os.str()).asString(), text);
}

} // namespace
} // namespace irep
