/**
 * @file
 * Unit tests for the fatal/panic error helpers.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"

namespace irep
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, MessagesAreFormatted)
{
    try {
        fatal("value is ", 42, ", not ", 43);
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value is 42, not 43");
    }
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatalIf(false, "no"));
    EXPECT_THROW(fatalIf(true, "yes"), FatalError);
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panicIf(false, "no"));
    EXPECT_THROW(panicIf(true, "yes"), PanicError);
}

TEST(Logging, FatalAndPanicAreDistinctTypes)
{
    // User errors (fatal) must not be catchable as internal bugs
    // (panic) and vice versa.
    EXPECT_THROW(
        {
            try {
                fatal("user error");
            } catch (const PanicError &) {
                FAIL() << "fatal was caught as panic";
            }
        },
        FatalError);
}

} // namespace
} // namespace irep
