/**
 * @file
 * Unit tests for the hash-combining helpers the repetition tracker
 * depends on.
 */

#include <set>

#include <gtest/gtest.h>

#include "support/hash.hh"

namespace irep
{
namespace
{

TEST(Hash, Deterministic)
{
    EXPECT_EQ(hashMix(1, 2), hashMix(1, 2));
    EXPECT_EQ(hashValues({1, 2, 3}), hashValues({1, 2, 3}));
}

TEST(Hash, OrderSensitive)
{
    EXPECT_NE(hashValues({1, 2}), hashValues({2, 1}));
}

TEST(Hash, LengthSensitive)
{
    EXPECT_NE(hashValues({1}), hashValues({1, 0}));
    EXPECT_NE(hashValues({}), hashValues({0}));
}

TEST(Hash, SmallInputsDoNotCollide)
{
    // The tracker hashes (numSrc, srcVals..., result) tuples whose
    // components are usually small integers; none of those nearby
    // tuples may collide.
    std::set<uint64_t> seen;
    int inserted = 0;
    for (uint64_t a = 0; a < 20; ++a) {
        for (uint64_t b = 0; b < 20; ++b) {
            for (uint64_t c = 0; c < 20; ++c) {
                seen.insert(hashValues({a, b, c}));
                ++inserted;
            }
        }
    }
    EXPECT_EQ(seen.size(), size_t(inserted));
}

TEST(Hash, AvalancheOnSingleBitFlip)
{
    // Flipping one input bit should flip roughly half the output
    // bits; require at least 16 of 64 as a sanity floor.
    const uint64_t base = hashMix(0x1234, 0x1000);
    for (int bit = 0; bit < 64; bit += 7) {
        const uint64_t other =
            hashMix(0x1234, 0x1000 ^ (uint64_t(1) << bit));
        EXPECT_GE(__builtin_popcountll(base ^ other), 16)
            << "bit " << bit;
    }
}

} // namespace
} // namespace irep
