/**
 * @file
 * CRC-32 tests against the published check value and the properties
 * the trace format depends on: incremental updates compose, and any
 * single-bit corruption changes the checksum.
 */

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "support/checksum.hh"

namespace irep
{
namespace
{

uint32_t
crcOf(const std::string &s)
{
    return crc32(s.data(), s.size());
}

TEST(Crc32, PublishedCheckValue)
{
    // The standard CRC-32 (reflected, poly 0xedb88320) check value.
    EXPECT_EQ(crcOf("123456789"), 0xcbf43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(crcOf(""), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string data =
        "the retire stream, in blocks of arbitrary size";
    for (size_t split = 0; split <= data.size(); ++split) {
        uint32_t crc = crc32Init;
        crc = crc32Update(crc, data.data(), split);
        crc = crc32Update(crc, data.data() + split,
                          data.size() - split);
        EXPECT_EQ(crc, crcOf(data)) << "split at " << split;
    }
}

TEST(Crc32, EverySingleBitFlipDetected)
{
    const std::string data = "block payload under test 0123456789";
    const uint32_t good = crcOf(data);
    for (size_t byte = 0; byte < data.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string flipped = data;
            flipped[byte] = char(flipped[byte] ^ (1 << bit));
            EXPECT_NE(crcOf(flipped), good)
                << "byte " << byte << " bit " << bit;
        }
    }
}

TEST(Crc32, DistinctPrefixesDistinctCrcs)
{
    // Weak sanity: a run of zero bytes of different lengths must not
    // collide (guards against a broken table or init/final xor).
    const char zeros[8] = {};
    uint32_t last = crc32(zeros, 0);
    for (size_t n = 1; n <= sizeof(zeros); ++n) {
        const uint32_t crc = crc32(zeros, n);
        EXPECT_NE(crc, last) << n;
        last = crc;
    }
}

} // namespace
} // namespace irep
