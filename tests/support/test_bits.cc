/**
 * @file
 * Unit tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "support/bits.hh"

namespace irep
{
namespace
{

TEST(Bits, ExtractSingleBit)
{
    EXPECT_EQ(bits(0x80000000u, 31, 31), 1u);
    EXPECT_EQ(bits(0x80000000u, 30, 30), 0u);
    EXPECT_EQ(bits(0x00000001u, 0, 0), 1u);
}

TEST(Bits, ExtractField)
{
    EXPECT_EQ(bits(0xdeadbeefu, 15, 0), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeefu, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeefu, 31, 0), 0xdeadbeefu);
    EXPECT_EQ(bits(0xffffffffu, 5, 0), 0x3fu);
}

TEST(Bits, ExtractMatchesShiftMask)
{
    const uint32_t word = 0xa5c3f019u;
    for (unsigned lo = 0; lo < 32; lo += 3) {
        for (unsigned hi = lo; hi < 32; hi += 5) {
            const unsigned width = hi - lo + 1;
            const uint32_t mask =
                width >= 32 ? 0xffffffffu : ((1u << width) - 1);
            EXPECT_EQ(bits(word, hi, lo), (word >> lo) & mask)
                << "hi=" << hi << " lo=" << lo;
        }
    }
}

TEST(Bits, InsertField)
{
    EXPECT_EQ(insertBits(0, 15, 0, 0xbeef), 0x0000beefu);
    EXPECT_EQ(insertBits(0, 31, 26, 0x3f), 0xfc000000u);
    EXPECT_EQ(insertBits(0xffffffffu, 15, 8, 0), 0xffff00ffu);
}

TEST(Bits, InsertThenExtractRoundTrips)
{
    for (uint32_t value : {0u, 1u, 0x15u, 0x1fu}) {
        const uint32_t word = insertBits(0xdeadbeefu, 20, 16, value);
        EXPECT_EQ(bits(word, 20, 16), value);
        // Other bits untouched.
        EXPECT_EQ(bits(word, 15, 0), 0xbeefu);
        EXPECT_EQ(bits(word, 31, 21), bits(0xdeadbeefu, 31, 21));
    }
}

TEST(Bits, InsertMasksOversizedValue)
{
    // Only the low field bits of the value are used.
    EXPECT_EQ(insertBits(0, 3, 0, 0xffu), 0xfu);
}

TEST(SignExtend, Positive)
{
    EXPECT_EQ(signExtend(0x7fff, 16), 0x7fff);
    EXPECT_EQ(signExtend(0x0001, 16), 1);
    EXPECT_EQ(signExtend(0, 16), 0);
}

TEST(SignExtend, Negative)
{
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
}

TEST(SignExtend, FullWidthIsIdentity)
{
    EXPECT_EQ(signExtend(0xdeadbeefu, 32),
              int32_t(0xdeadbeefu));
}

TEST(Fits, Signed16)
{
    EXPECT_TRUE(fitsSigned(0, 16));
    EXPECT_TRUE(fitsSigned(32767, 16));
    EXPECT_TRUE(fitsSigned(-32768, 16));
    EXPECT_FALSE(fitsSigned(32768, 16));
    EXPECT_FALSE(fitsSigned(-32769, 16));
}

TEST(Fits, Unsigned16)
{
    EXPECT_TRUE(fitsUnsigned(0, 16));
    EXPECT_TRUE(fitsUnsigned(65535, 16));
    EXPECT_FALSE(fitsUnsigned(65536, 16));
    EXPECT_FALSE(fitsUnsigned(-1, 16));
}

class FitsWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FitsWidthTest, BoundariesAreExact)
{
    const unsigned width = GetParam();
    const int64_t smax = (int64_t(1) << (width - 1)) - 1;
    const int64_t smin = -(int64_t(1) << (width - 1));
    const int64_t umax = (int64_t(1) << width) - 1;
    EXPECT_TRUE(fitsSigned(smax, width));
    EXPECT_TRUE(fitsSigned(smin, width));
    EXPECT_FALSE(fitsSigned(smax + 1, width));
    EXPECT_FALSE(fitsSigned(smin - 1, width));
    EXPECT_TRUE(fitsUnsigned(umax, width));
    EXPECT_FALSE(fitsUnsigned(umax + 1, width));
}

INSTANTIATE_TEST_SUITE_P(Widths, FitsWidthTest,
                         ::testing::Values(1u, 5u, 8u, 16u, 26u, 31u));

} // namespace
} // namespace irep
