/**
 * @file
 * Thread-pool / parallelFor tests: result ordering, exception
 * propagation, the jobs=1 serial path, and IREP_JOBS handling.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/parallel.hh"

namespace irep::parallel
{
namespace
{

/** Set an environment variable for one test, restoring on exit. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old)
            saved_ = old;
        had_ = old != nullptr;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    std::string saved_;
    bool had_ = false;
};

TEST(ParallelFor, ResultsIndexedByIterationRegardlessOfScheduling)
{
    const size_t n = 100;
    std::vector<int> out(n, -1);
    parallelFor(n, [&](size_t i) { out[i] = int(i) * 3; }, 4);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], int(i) * 3);
}

TEST(ParallelFor, JobsOneRunsInlineOnCallingThread)
{
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    parallelFor(8, [&](size_t i) {
        seen[i] = std::this_thread::get_id();
    }, 1);
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ParallelFor, SerialAndParallelResultsMatch)
{
    auto work = [](size_t i) {
        uint64_t h = i * 2654435761u;
        for (int r = 0; r < 1000; ++r)
            h = h * 6364136223846793005ull + 1442695040888963407ull;
        return h;
    };
    std::vector<uint64_t> serial(64), parallel(64);
    parallelFor(64, [&](size_t i) { serial[i] = work(i); }, 1);
    parallelFor(64, [&](size_t i) { parallel[i] = work(i); }, 7);
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, ExceptionPropagatesToCaller)
{
    EXPECT_THROW(
        parallelFor(10, [](size_t i) {
            if (i == 3)
                fatal("boom from job ", i);
        }, 4),
        FatalError);
}

TEST(ParallelFor, LowestIndexExceptionWinsDeterministically)
{
    for (int attempt = 0; attempt < 10; ++attempt) {
        try {
            parallelFor(16, [](size_t i) {
                if (i == 2 || i == 7 || i == 13)
                    throw std::runtime_error(std::to_string(i));
            }, 4);
            FAIL() << "parallelFor did not throw";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "2");
        }
    }
}

TEST(ParallelFor, AllIterationsFinishEvenWhenOneThrows)
{
    std::atomic<int> ran{0};
    try {
        parallelFor(32, [&](size_t i) {
            if (i == 0)
                fatal("first job fails");
            ++ran;
        }, 4);
        FAIL() << "parallelFor did not throw";
    } catch (const FatalError &) {
    }
    EXPECT_EQ(ran.load(), 31);
}

TEST(ParallelFor, ZeroCountIsANoop)
{
    bool called = false;
    parallelFor(0, [&](size_t) { called = true; }, 4);
    EXPECT_FALSE(called);
}

TEST(ThreadPool, SubmittedJobsAllRun)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3u);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(sum.load(), 190);
}

TEST(ThreadPool, FutureRethrowsJobException)
{
    ThreadPool pool(2);
    auto future = pool.submit([] { fatal("job failed"); });
    EXPECT_THROW(future.get(), FatalError);
}

TEST(ThreadPool, ZeroWorkersIsFatal)
{
    EXPECT_THROW(ThreadPool pool(0), FatalError);
}

TEST(ThreadPool, SubmitAfterStopIsALoudPanic)
{
    // Regression: submitting to a stopped pool used to be reachable
    // only through a destructor race; stop() makes the use-after-stop
    // state testable, and the panic must fire instead of silently
    // queueing a job no worker will ever run.
    ThreadPool pool(2);
    pool.stop();
    EXPECT_THROW(pool.submit([] {}), PanicError);
}

TEST(ThreadPool, StopCompletesEveryOutstandingFuture)
{
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i)
        futures.push_back(pool.submit([&ran] { ++ran; }));
    pool.stop();
    // Join order guarantee: after stop() no future can dangle — all
    // jobs ran and every future is immediately ready.
    EXPECT_EQ(ran.load(), 50);
    for (auto &f : futures) {
        EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_NO_THROW(f.get());
    }
}

TEST(ThreadPool, StopIsIdempotentAndDestructorSafeAfterStop)
{
    ThreadPool pool(2);
    pool.submit([] {}).get();
    pool.stop();
    pool.stop();    // second stop must be a harmless no-op
}

TEST(ThreadPool, FailingJobStillCompletesItsFutureBeforeStop)
{
    ThreadPool pool(1);
    auto bad = pool.submit([] { fatal("job failed"); });
    auto good = pool.submit([] {});
    pool.stop();
    EXPECT_THROW(bad.get(), FatalError);
    EXPECT_NO_THROW(good.get());
}

TEST(DefaultJobs, ReadsIrepJobs)
{
    ScopedEnv env("IREP_JOBS", "3");
    EXPECT_EQ(defaultJobs(), 3u);
}

TEST(DefaultJobs, UnsetFallsBackToHardwareConcurrency)
{
    ScopedEnv env("IREP_JOBS", nullptr);
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(DefaultJobs, MalformedIrepJobsIsFatal)
{
    ScopedEnv env("IREP_JOBS", "4x");
    EXPECT_THROW(defaultJobs(), FatalError);
}

TEST(DefaultJobs, ZeroIrepJobsIsFatal)
{
    ScopedEnv env("IREP_JOBS", "0");
    EXPECT_THROW(defaultJobs(), FatalError);
}

} // namespace
} // namespace irep::parallel
