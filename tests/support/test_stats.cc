/**
 * @file
 * Stats-registry tests: registration, storage vs. derived stats,
 * hierarchy, distributions, and the text/JSON dump round-trip.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep
{
namespace
{

TEST(Stats, StorageScalarArithmetic)
{
    stats::Group root;
    stats::Scalar &s = root.scalar("count", "a counter");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 4.0;
    EXPECT_EQ(s.value(), 5.0);
    s = 2.5;
    EXPECT_EQ(s.value(), 2.5);
    EXPECT_FALSE(s.derived());
}

TEST(Stats, DerivedScalarReadsLiveValue)
{
    uint64_t counter = 7;
    stats::Group root;
    stats::Scalar &s = root.scalar("live", "reads a variable",
                                   [&] { return double(counter); });
    EXPECT_TRUE(s.derived());
    EXPECT_EQ(s.value(), 7.0);
    counter = 11;
    EXPECT_EQ(s.value(), 11.0);
}

TEST(Stats, VectorSubnamesAndValues)
{
    stats::Group root;
    stats::Vector &v =
        root.vector("perClass", "per-class counts", {"a", "b", "c"});
    EXPECT_EQ(v.size(), 3u);
    v.set(1, 4.0);
    v.add(1, 1.0);
    EXPECT_EQ(v.value(0), 0.0);
    EXPECT_EQ(v.value(1), 5.0);
    EXPECT_EQ(v.subnames()[2], "c");
}

TEST(Stats, DerivedVector)
{
    stats::Group root;
    stats::Vector &v =
        root.vector("squares", "i^2", {"zero", "one", "two"},
                    [](size_t i) { return double(i * i); });
    EXPECT_EQ(v.value(2), 4.0);
}

TEST(Stats, DistributionBucketBoundaries)
{
    stats::Group root;
    stats::Distribution &d =
        root.distribution("dist", "test dist", {1, 10, 100});
    d.sample(1);      // bucket 0 (<= 1)
    d.sample(2);      // bucket 1
    d.sample(10);     // bucket 1 (inclusive upper bound)
    d.sample(11);     // bucket 2
    d.sample(1000);   // overflow
    EXPECT_EQ(d.numBuckets(), 4u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(2), 1u);
    EXPECT_EQ(d.bucketCount(3), 1u);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.min(), 1.0);
    EXPECT_EQ(d.max(), 1000.0);
    EXPECT_EQ(d.sum(), 1024.0);
}

TEST(Stats, DistributionWeightedSamples)
{
    stats::Group root;
    stats::Distribution &d =
        root.distribution("dist", "weighted", {10});
    d.sample(3, 4);
    d.sample(20, 0);    // zero-count sample is a no-op
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.bucketCount(0), 4u);
    EXPECT_EQ(d.bucketCount(1), 0u);
    EXPECT_EQ(d.sum(), 12.0);
}

TEST(Stats, GroupHierarchyAndLookup)
{
    stats::Group root;
    stats::Group &child = root.group("core");
    child.scalar("x", "leaf");
    EXPECT_EQ(&root.group("core"), &child);    // find-or-create
    ASSERT_NE(root.findGroup("core"), nullptr);
    EXPECT_NE(root.findGroup("core")->find("x"), nullptr);
    EXPECT_EQ(root.findGroup("nope"), nullptr);
    EXPECT_EQ(root.find("x"), nullptr);    // not in the root
}

TEST(Stats, DuplicateNamesAreFatal)
{
    stats::Group root;
    root.scalar("x", "first");
    EXPECT_THROW(root.scalar("x", "dup"), FatalError);
    EXPECT_THROW(root.group("x"), FatalError);
    EXPECT_THROW(root.scalar("", "anon"), FatalError);
}

TEST(Stats, TextDumpShowsPathValueAndDesc)
{
    stats::Group root;
    auto &core = root.group("core");
    core.scalar("hits", "cache hits") = 42;
    const std::string text = stats::dumpText(root);
    EXPECT_NE(text.find("core.hits"), std::string::npos) << text;
    EXPECT_NE(text.find("42"), std::string::npos) << text;
    EXPECT_NE(text.find("# cache hits"), std::string::npos) << text;
}

TEST(Stats, JsonDumpRoundTrip)
{
    uint64_t live = 9;
    stats::Group root;
    root.scalar("top", "top-level") = 1.5;
    auto &g = root.group("sub");
    g.scalar("live", "derived", [&] { return double(live); });
    g.vector("vec", "a vector", {"a", "b"}).set(0, 3.0);
    auto &d = g.distribution("dist", "a distribution", {10, 100});
    d.sample(5);
    d.sample(50, 2);

    std::ostringstream os;
    json::Writer w(os);
    stats::dumpJson(root, w);
    const json::Value v = json::parse(os.str());

    EXPECT_EQ(v.at("top").asNumber(), 1.5);
    EXPECT_EQ(v.at("sub").at("live").asNumber(), 9.0);
    EXPECT_EQ(v.at("sub").at("vec").at("a").asNumber(), 3.0);
    EXPECT_EQ(v.at("sub").at("vec").at("b").asNumber(), 0.0);
    const json::Value &dist = v.at("sub").at("dist");
    EXPECT_EQ(dist.at("count").asU64(), 3u);
    EXPECT_EQ(dist.at("buckets").at(0).at("count").asU64(), 1u);
    EXPECT_EQ(dist.at("buckets").at(1).at("count").asU64(), 2u);
    EXPECT_EQ(dist.at("buckets").at(2).at("count").asU64(), 0u);
    EXPECT_EQ(dist.at("mean").asNumber(), 35.0);
}

TEST(Stats, VisitorWalksDepthFirst)
{
    stats::Group root;
    root.scalar("a", "");
    auto &g = root.group("g");
    g.scalar("b", "");

    struct Walk : stats::Visitor
    {
        std::vector<std::string> events;
        void
        beginGroup(const stats::Group &group) override
        {
            events.push_back("begin:" + group.name());
        }
        void
        endGroup(const stats::Group &group) override
        {
            events.push_back("end:" + group.name());
        }
        void
        visit(const stats::Scalar &s) override
        {
            events.push_back("scalar:" + s.name());
        }
    } walk;
    root.accept(walk);

    const std::vector<std::string> expected = {
        "begin:", "scalar:a", "begin:g", "scalar:b", "end:g", "end:",
    };
    EXPECT_EQ(walk.events, expected);
}

} // namespace
} // namespace irep
