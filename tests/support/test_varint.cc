/**
 * @file
 * LEB128/zigzag codec tests: exact byte layouts at the 7-bit group
 * boundaries, round-trips across the whole value range, and the
 * bounded-decode guarantees (truncation and over-long sequences
 * fatal() instead of reading past the buffer).
 */

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/varint.hh"

namespace irep
{
namespace
{

std::string
encode(uint64_t value)
{
    std::string out;
    varint::put(out, value);
    return out;
}

uint64_t
decode(const std::string &bytes)
{
    const uint8_t *p =
        reinterpret_cast<const uint8_t *>(bytes.data());
    const uint8_t *end = p + bytes.size();
    const uint64_t value = varint::get(p, end);
    EXPECT_EQ(p, end) << "decode consumed a partial buffer";
    return value;
}

TEST(Varint, BoundaryEncodingLengths)
{
    EXPECT_EQ(encode(0).size(), 1u);
    EXPECT_EQ(encode(1).size(), 1u);
    EXPECT_EQ(encode(0x7f).size(), 1u);
    EXPECT_EQ(encode(0x80).size(), 2u);
    EXPECT_EQ(encode(0x3fff).size(), 2u);
    EXPECT_EQ(encode(0x4000).size(), 3u);
    EXPECT_EQ(encode(std::numeric_limits<uint32_t>::max()).size(), 5u);
    EXPECT_EQ(encode(std::numeric_limits<uint64_t>::max()).size(),
              10u);
}

TEST(Varint, KnownByteSequences)
{
    EXPECT_EQ(encode(0), std::string("\x00", 1));
    EXPECT_EQ(encode(0x7f), "\x7f");
    EXPECT_EQ(encode(0x80), "\x80\x01");
    EXPECT_EQ(encode(300), "\xac\x02");
}

TEST(Varint, RoundTripBoundaries)
{
    const uint64_t values[] = {
        0,
        1,
        0x7f,
        0x80,
        0x3fff,
        0x4000,
        0x1f'ffff,
        0x20'0000,
        std::numeric_limits<uint32_t>::max(),
        uint64_t(std::numeric_limits<uint32_t>::max()) + 1,
        std::numeric_limits<uint64_t>::max() - 1,
        std::numeric_limits<uint64_t>::max(),
    };
    for (uint64_t v : values)
        EXPECT_EQ(decode(encode(v)), v) << v;
}

TEST(Varint, RoundTripRandom)
{
    // Deterministic xorshift; spread values across all bit widths.
    uint64_t x = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 10'000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const uint64_t v = x >> (x % 64);
        EXPECT_EQ(decode(encode(v)), v);
    }
}

TEST(Varint, StreamOfValuesDecodesInOrder)
{
    std::string buf;
    for (uint64_t v = 0; v < 1000; v += 7)
        varint::put(buf, v * v);
    const uint8_t *p = reinterpret_cast<const uint8_t *>(buf.data());
    const uint8_t *end = p + buf.size();
    for (uint64_t v = 0; v < 1000; v += 7)
        EXPECT_EQ(varint::get(p, end), v * v);
    EXPECT_EQ(p, end);
}

TEST(Varint, TruncatedSequenceIsFatal)
{
    // Every strict prefix of a multi-byte encoding must be rejected.
    const std::string full =
        encode(std::numeric_limits<uint64_t>::max());
    for (size_t len = 0; len < full.size(); ++len) {
        const std::string cut = full.substr(0, len);
        const uint8_t *p =
            reinterpret_cast<const uint8_t *>(cut.data());
        EXPECT_THROW(varint::get(p, p + cut.size()), FatalError)
            << "prefix length " << len;
    }
}

TEST(Varint, OverLongSequenceIsFatal)
{
    // Eleven continuation bytes can't be a uint64_t; a decoder that
    // kept going would shift past the value width.
    const std::string bad(11, char(0x80));
    const uint8_t *p = reinterpret_cast<const uint8_t *>(bad.data());
    EXPECT_THROW(varint::get(p, p + bad.size()), FatalError);
}

TEST(Zigzag, MapsSignOntoLowBit)
{
    EXPECT_EQ(varint::zigzag(0), 0u);
    EXPECT_EQ(varint::zigzag(-1), 1u);
    EXPECT_EQ(varint::zigzag(1), 2u);
    EXPECT_EQ(varint::zigzag(-2), 3u);
    EXPECT_EQ(varint::zigzag(2), 4u);
}

TEST(Zigzag, RoundTripExtremes)
{
    const int64_t values[] = {
        0,
        1,
        -1,
        63,
        -64,
        64,
        -65,
        std::numeric_limits<int32_t>::min(),
        std::numeric_limits<int32_t>::max(),
        std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max(),
    };
    for (int64_t v : values) {
        EXPECT_EQ(varint::unzigzag(varint::zigzag(v)), v) << v;
        std::string buf;
        varint::putSigned(buf, v);
        const uint8_t *p =
            reinterpret_cast<const uint8_t *>(buf.data());
        EXPECT_EQ(varint::getSigned(p, p + buf.size()), v) << v;
    }
}

TEST(Zigzag, SmallMagnitudesEncodeShort)
{
    // The point of zigzag + LEB128: deltas near zero stay one byte
    // regardless of sign.
    for (int64_t v = -63; v <= 63; ++v) {
        std::string buf;
        varint::putSigned(buf, v);
        EXPECT_EQ(buf.size(), 1u) << v;
    }
}

} // namespace
} // namespace irep
