/**
 * @file
 * Atomic report publication: commit() publishes a complete document
 * or nothing, an interrupted writer (destroyed before commit) leaves
 * the previous file untouched, and a consumer that opens the target
 * path never sees a truncated document.
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/outfile.hh"

namespace irep
{
namespace
{

namespace fs = std::filesystem;

class OutFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
            ("irep_outfile_test_" + std::to_string(::getpid()));
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string
    path(const char *name) const
    {
        return (dir_ / name).string();
    }

    static std::string
    slurp(const std::string &p)
    {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    }

    fs::path dir_;
};

TEST_F(OutFileTest, CommitPublishesTheDocument)
{
    const std::string target = path("stats.json");
    AtomicOutFile file(target);
    file.stream() << "{\"ok\": true}\n";
    file.commit();
    EXPECT_EQ(slurp(target), "{\"ok\": true}\n");
}

TEST_F(OutFileTest, NoCommitLeavesNothingBehind)
{
    const std::string target = path("stats.json");
    {
        AtomicOutFile file(target);
        file.stream() << "half a docu";
        // Destroyed without commit() — the simulated interruption.
    }
    EXPECT_FALSE(fs::exists(target));
    // No temporary litter either.
    EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(OutFileTest, InterruptedRewriteKeepsThePreviousDocument)
{
    const std::string target = path("stats.json");
    {
        AtomicOutFile file(target);
        file.stream() << "{\"version\": 1}\n";
        file.commit();
    }
    {
        AtomicOutFile file(target);
        file.stream() << "{\"version\": 2, \"unfinis";
        // Interrupted mid-build: never committed.
    }
    // A consumer parsing the path still gets the old, complete doc.
    const json::Value doc = json::parse(slurp(target));
    EXPECT_EQ(doc.at("version").asU64(), 1u);
}

TEST_F(OutFileTest, CommitReplacesAnExistingDocumentCompletely)
{
    const std::string target = path("stats.json");
    {
        AtomicOutFile file(target);
        file.stream() << "{\"version\": 1, \"padding\": \""
                      << std::string(4096, 'x') << "\"}\n";
        file.commit();
    }
    {
        AtomicOutFile file(target);
        file.stream() << "{\"version\": 2}\n";
        file.commit();
    }
    const json::Value doc = json::parse(slurp(target));
    EXPECT_EQ(doc.at("version").asU64(), 2u);
    EXPECT_EQ(slurp(target), "{\"version\": 2}\n");
}

TEST_F(OutFileTest, EmptyPathIsFatal)
{
    EXPECT_THROW(AtomicOutFile(""), FatalError);
}

TEST_F(OutFileTest, UnwritableDirectoryIsFatalAtCommit)
{
    AtomicOutFile file(path("no/such/dir/stats.json"));
    file.stream() << "{}\n";
    EXPECT_THROW(file.commit(), FatalError);
}

TEST_F(OutFileTest, StdoutPathIsRecognized)
{
    AtomicOutFile file("-");
    EXPECT_TRUE(file.toStdout());
    // Not committed: nothing is written to the test's stdout.
}

} // namespace
} // namespace irep
