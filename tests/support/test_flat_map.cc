/**
 * @file
 * FlatMap / SmallFlatMap / FlatSet: insert/find semantics, growth
 * across rehashes, inline-to-spill promotion, insertion-order
 * iteration, and agreement with std::unordered_map under a randomized
 * workload.
 */

#include <cstdint>
#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

#include "support/flat_map.hh"
#include "support/hash.hh"

namespace irep
{
namespace
{

TEST(FlatMap, EmptyMapFindsNothing)
{
    FlatMap<uint64_t, uint32_t> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap, InsertThenFind)
{
    FlatMap<uint64_t, uint32_t> map;
    auto [value, inserted] = map.tryEmplace(7, 100);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*value, 100u);
    EXPECT_EQ(map.size(), 1u);

    auto [again, second] = map.tryEmplace(7, 999);
    EXPECT_FALSE(second);
    EXPECT_EQ(*again, 100u);    // original value kept
    EXPECT_EQ(map.size(), 1u);

    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 100u);
    EXPECT_EQ(map.find(8), nullptr);
}

TEST(FlatMap, OperatorIndexDefaultConstructs)
{
    FlatMap<uint32_t, uint64_t> map;
    EXPECT_EQ(map[5], 0u);
    map[5] += 3;
    map[5] += 4;
    EXPECT_EQ(map[5], 7u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GrowsThroughManyRehashes)
{
    FlatMap<uint64_t, uint64_t> map;
    constexpr uint64_t n = 10'000;
    for (uint64_t i = 0; i < n; ++i)
        map.tryEmplace(i * 0x10001, i);
    EXPECT_EQ(map.size(), n);
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t *v = map.find(i * 0x10001);
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(map.find(1), nullptr);
}

TEST(FlatMap, IterationIsInsertionOrdered)
{
    FlatMap<uint32_t, uint32_t> map;
    const uint32_t keys[] = {90, 4, 77, 12, 3};
    for (uint32_t i = 0; i < 5; ++i)
        map.tryEmplace(keys[i], i);
    uint32_t at = 0;
    for (const auto &[key, value] : map) {
        EXPECT_EQ(key, keys[at]);
        EXPECT_EQ(value, at);
        ++at;
    }
    EXPECT_EQ(at, 5u);
}

TEST(FlatMap, IdentityHashWorksWithPreMixedKeys)
{
    FlatMap<uint64_t, uint32_t, IdentityHash> map;
    for (uint64_t i = 0; i < 1000; ++i)
        map.tryEmplace(hashMix(0, i), uint32_t(i));
    for (uint64_t i = 0; i < 1000; ++i) {
        const uint32_t *v = map.find(hashMix(0, i));
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(*v, uint32_t(i));
    }
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomWorkload)
{
    FlatMap<uint64_t, uint64_t> map;
    std::unordered_map<uint64_t, uint64_t> reference;
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 50'000; ++i) {
        const uint64_t key = rng() & 0xfff;     // force collisions
        if (rng() & 1) {
            const uint64_t value = rng();
            const bool inserted = map.tryEmplace(key, value).second;
            EXPECT_EQ(inserted,
                      reference.emplace(key, value).second);
        } else {
            const uint64_t *v = map.find(key);
            auto it = reference.find(key);
            ASSERT_EQ(v != nullptr, it != reference.end());
            if (v)
                EXPECT_EQ(*v, it->second);
        }
    }
    EXPECT_EQ(map.size(), reference.size());
}

TEST(FlatMap, ReserveDoesNotDisturbContents)
{
    FlatMap<uint32_t, uint32_t> map;
    for (uint32_t i = 0; i < 10; ++i)
        map.tryEmplace(i, i * 2);
    map.reserve(1000);
    EXPECT_EQ(map.size(), 10u);
    for (uint32_t i = 0; i < 10; ++i) {
        ASSERT_NE(map.find(i), nullptr);
        EXPECT_EQ(*map.find(i), i * 2);
    }
}

TEST(SmallFlatMap, StaysInlineBelowCapacity)
{
    SmallFlatMap<uint64_t, uint32_t, 4> map;
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(map.tryEmplace(i, uint32_t(i)).second);
    EXPECT_EQ(map.size(), 4u);
    for (uint64_t i = 0; i < 4; ++i) {
        ASSERT_NE(map.find(i), nullptr);
        EXPECT_EQ(*map.find(i), uint32_t(i));
    }
    EXPECT_EQ(map.find(99), nullptr);
}

TEST(SmallFlatMap, SpillsPreservingContents)
{
    SmallFlatMap<uint64_t, uint32_t, 4> map;
    constexpr uint64_t n = 500;
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_TRUE(map.tryEmplace(i * 3, uint32_t(i)).second);
    EXPECT_EQ(map.size(), n);
    for (uint64_t i = 0; i < n; ++i) {
        const uint32_t *v = map.find(i * 3);
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, uint32_t(i));
    }
    // Duplicate insertion still reports the original mapping.
    auto [value, inserted] = map.tryEmplace(0, 777);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*value, 0u);
}

TEST(SmallFlatMap, ForEachVisitsInInsertionOrderInlineAndSpilled)
{
    for (const uint32_t count : {3u, 40u}) {
        SmallFlatMap<uint64_t, uint32_t, 4> map;
        for (uint32_t i = 0; i < count; ++i)
            map.tryEmplace(1000 - i, i);
        uint32_t at = 0;
        map.forEach([&](uint64_t key, uint32_t value) {
            EXPECT_EQ(key, 1000u - at);
            EXPECT_EQ(value, at);
            ++at;
        });
        EXPECT_EQ(at, count);
    }
}

TEST(SmallFlatMap, ValuesMutableThroughFind)
{
    SmallFlatMap<uint64_t, uint32_t, 2> map;
    map.tryEmplace(1, 0);
    ++*map.find(1);
    ++*map.find(1);
    EXPECT_EQ(*map.find(1), 2u);
    // Same after spilling.
    map.tryEmplace(2, 0);
    map.tryEmplace(3, 0);
    ++*map.find(1);
    EXPECT_EQ(*map.find(1), 3u);
}

TEST(FlatSet, InsertAndCount)
{
    FlatSet<uint32_t> set;
    EXPECT_FALSE(set.count(10));
    EXPECT_TRUE(set.insert(10));
    EXPECT_FALSE(set.insert(10));
    EXPECT_TRUE(set.count(10));
    EXPECT_EQ(set.size(), 1u);
    for (uint32_t i = 0; i < 1000; ++i)
        set.insert(i);
    EXPECT_EQ(set.size(), 1000u);
    EXPECT_TRUE(set.count(999));
    EXPECT_FALSE(set.count(1000));
}

} // namespace
} // namespace irep
