/**
 * @file
 * Strict numeric parsing tests — CLI flags and environment knobs
 * share one parser that fails loudly on malformed values
 * (`IREP_SKIP=4m` used to silently become 4).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/parse.hh"

namespace irep::parse
{
namespace
{

TEST(ParseU64, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseU64("--window", "0"), 0u);
    EXPECT_EQ(parseU64("--window", "4000000"), 4'000'000u);
    EXPECT_EQ(parseU64("--window", "18446744073709551615"),
              UINT64_MAX);
}

TEST(ParseU64, RejectsSuffixedNumbers)
{
    EXPECT_THROW(parseU64("IREP_WINDOW", "4m"), FatalError);
    EXPECT_THROW(parseU64("IREP_WINDOW", "5e6"), FatalError);
}

TEST(ParseU64, RejectsGarbageEmptyNegativeOverflow)
{
    EXPECT_THROW(parseU64("IREP_SKIP", "abc"), FatalError);
    EXPECT_THROW(parseU64("IREP_SKIP", ""), FatalError);
    EXPECT_THROW(parseU64("IREP_SKIP", "-5"), FatalError);
    EXPECT_THROW(parseU64("IREP_SKIP", "99999999999999999999999"),
                 FatalError);
}

TEST(EnvU64, UnsetOrEmptyReturnsFallback)
{
    unsetenv("IREP_TEST_KNOB");
    EXPECT_EQ(envU64("IREP_TEST_KNOB", 42), 42u);
    setenv("IREP_TEST_KNOB", "", 1);
    EXPECT_EQ(envU64("IREP_TEST_KNOB", 42), 42u);
    unsetenv("IREP_TEST_KNOB");
}

TEST(EnvU64, ParsesSetValue)
{
    setenv("IREP_TEST_KNOB", "123456", 1);
    EXPECT_EQ(envU64("IREP_TEST_KNOB", 42), 123'456u);
    unsetenv("IREP_TEST_KNOB");
}

/** The IREP_SKIP=4m regression: malformed env values must be fatal,
 *  not silently truncated to the leading digits. */
TEST(EnvU64, MalformedValueIsFatalNotTruncated)
{
    setenv("IREP_TEST_KNOB", "4m", 1);
    EXPECT_THROW(envU64("IREP_TEST_KNOB", 42), FatalError);
    setenv("IREP_TEST_KNOB", "abc", 1);
    EXPECT_THROW(envU64("IREP_TEST_KNOB", 42), FatalError);
    unsetenv("IREP_TEST_KNOB");
}

TEST(EnvFlag, UnsetEmptyOrZeroIsFalse)
{
    unsetenv("IREP_TEST_FLAG");
    EXPECT_FALSE(envFlag("IREP_TEST_FLAG"));
    setenv("IREP_TEST_FLAG", "", 1);
    EXPECT_FALSE(envFlag("IREP_TEST_FLAG"));
    setenv("IREP_TEST_FLAG", "0", 1);
    EXPECT_FALSE(envFlag("IREP_TEST_FLAG"));
    unsetenv("IREP_TEST_FLAG");
}

TEST(EnvFlag, OneIsTrue)
{
    setenv("IREP_TEST_FLAG", "1", 1);
    EXPECT_TRUE(envFlag("IREP_TEST_FLAG"));
    unsetenv("IREP_TEST_FLAG");
}

/** IREP_PROF=yes must fail loudly, not silently mean "off". */
TEST(EnvFlag, JunkIsFatalNotFalse)
{
    for (const char *junk : {"yes", "true", "on", "01", "2", " 1"}) {
        setenv("IREP_TEST_FLAG", junk, 1);
        EXPECT_THROW(envFlag("IREP_TEST_FLAG"), FatalError)
            << "value: " << junk;
    }
    unsetenv("IREP_TEST_FLAG");
}

} // namespace
} // namespace irep::parse
