/**
 * @file
 * SpscRing tests: capacity rounding, full/empty boundaries, index
 * wraparound, move-only payloads, close-then-drain semantics, and a
 * cross-thread ordering stress (the "Sharded" window's transport).
 */

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/spsc.hh"

namespace irep::parallel
{
namespace
{

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, ZeroCapacityIsFatal)
{
    EXPECT_THROW(SpscRing<int>(0), FatalError);
}

TEST(SpscRing, EmptyRingPopsNothing)
{
    SpscRing<int> ring(4);
    int out = -1;
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_EQ(out, -1);
}

TEST(SpscRing, FullRingRejectsPushAndKeepsItem)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i) {
        int item = i;
        EXPECT_TRUE(ring.tryPush(item));
    }
    int extra = 99;
    EXPECT_FALSE(ring.tryPush(extra));
    EXPECT_EQ(extra, 99);   // rejected push must not consume the item

    // Draining one slot re-opens exactly one push.
    int out = -1;
    EXPECT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(ring.tryPush(extra));
    EXPECT_FALSE(ring.tryPush(extra));
}

TEST(SpscRing, OrderSurvivesIndexWraparound)
{
    SpscRing<uint64_t> ring(8);
    uint64_t next_push = 0, next_pop = 0;
    // Push/pop far past capacity so head/tail wrap the mask many
    // times; FIFO order must hold throughout.
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 5; ++i) {
            uint64_t v = next_push++;
            ASSERT_TRUE(ring.tryPush(v));
        }
        for (int i = 0; i < 5; ++i) {
            uint64_t out = ~0ull;
            ASSERT_TRUE(ring.tryPop(out));
            ASSERT_EQ(out, next_pop++);
        }
    }
}

TEST(SpscRing, MoveOnlyPayloadsMoveThrough)
{
    SpscRing<std::unique_ptr<int>> ring(4);
    auto item = std::make_unique<int>(42);
    ASSERT_TRUE(ring.tryPush(item));
    EXPECT_EQ(item, nullptr);   // moved out of the caller's hands

    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.tryPop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(SpscRing, CloseDrainsRemainingItemsThenEnds)
{
    SpscRing<int> ring(8);
    ring.push(1);
    ring.push(2);
    ring.close();
    EXPECT_TRUE(ring.closed());

    int out = 0;
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, 2);
    EXPECT_FALSE(ring.pop(out));    // closed and drained
}

TEST(SpscRing, PushAfterCloseIsAPanic)
{
    SpscRing<int> ring(4);
    ring.close();
    EXPECT_THROW(ring.push(1), PanicError);
}

TEST(SpscRing, ShardedCrossThreadOrderingStress)
{
    // One producer, one consumer, ring much smaller than the stream:
    // blocking push/pop must preserve order under real contention
    // (and under TSan in CI). Small ring forces both full-ring parks
    // on the producer and empty-ring parks on the consumer.
    SpscRing<uint64_t> ring(4);
    constexpr uint64_t count = 200'000;

    std::vector<uint64_t> received;
    received.reserve(count);
    std::thread consumer([&] {
        uint64_t v;
        while (ring.pop(v))
            received.push_back(v);
    });

    for (uint64_t i = 0; i < count; ++i)
        ring.push(i);
    ring.close();
    consumer.join();

    ASSERT_EQ(received.size(), count);
    for (uint64_t i = 0; i < count; ++i)
        ASSERT_EQ(received[i], i);
}

TEST(SpscRing, ShardedMoveOnlyBatchesCrossThreads)
{
    // shared_ptr batches are what the sharded window actually ships.
    SpscRing<std::shared_ptr<std::vector<int>>> ring(4);
    constexpr int batches = 2'000;

    uint64_t sum = 0;
    std::thread consumer([&] {
        std::shared_ptr<std::vector<int>> batch;
        while (ring.pop(batch)) {
            for (int v : *batch)
                sum += uint64_t(v);
        }
    });

    uint64_t expected = 0;
    for (int b = 0; b < batches; ++b) {
        auto batch = std::make_shared<std::vector<int>>();
        for (int i = 0; i < 16; ++i) {
            batch->push_back(b + i);
            expected += uint64_t(b + i);
        }
        ring.push(std::move(batch));
    }
    ring.close();
    consumer.join();
    EXPECT_EQ(sum, expected);
}

} // namespace
} // namespace irep::parallel
