/**
 * @file
 * Unit tests for the built-in trace block compressor (support/lz):
 * lossless round-trip over adversarial inputs, determinism, the
 * store-fallback contract on incompressible data, and structural
 * robustness of the decoder against corrupt and truncated streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "support/lz.hh"

using namespace irep;

namespace
{

std::vector<uint8_t>
bytes(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

/** Compress with full headroom; expects success. */
std::vector<uint8_t>
compressed(const std::vector<uint8_t> &raw)
{
    std::vector<uint8_t> out(lz::maxCompressedSize(raw.size()));
    const size_t n =
        lz::compress(raw.data(), raw.size(), out.data(), out.size());
    EXPECT_GT(n, 0u) << "compress did not fit its own upper bound";
    out.resize(n);
    return out;
}

void
expectRoundTrip(const std::vector<uint8_t> &raw)
{
    const std::vector<uint8_t> comp = compressed(raw);
    std::vector<uint8_t> back(raw.size());
    ASSERT_TRUE(lz::decompress(comp.data(), comp.size(), back.data(),
                               back.size()));
    EXPECT_EQ(back, raw);
}

TEST(Lz, EmptyInput)
{
    expectRoundTrip({});
}

TEST(Lz, SingleByte)
{
    expectRoundTrip(bytes("x"));
}

TEST(Lz, ShortLiteralRun)
{
    expectRoundTrip(bytes("abcdefg"));
}

TEST(Lz, RepetitiveInputShrinks)
{
    std::vector<uint8_t> raw;
    for (int i = 0; i < 4000; ++i) {
        raw.push_back(uint8_t(i & 7));
        raw.push_back(0x40);
        raw.push_back(uint8_t(i >> 8));
    }
    const std::vector<uint8_t> comp = compressed(raw);
    EXPECT_LT(comp.size(), raw.size() / 4)
        << "repetitive stream should compress hard";
    std::vector<uint8_t> back(raw.size());
    ASSERT_TRUE(lz::decompress(comp.data(), comp.size(), back.data(),
                               back.size()));
    EXPECT_EQ(back, raw);
}

TEST(Lz, AllByteValues)
{
    std::vector<uint8_t> raw;
    for (int rep = 0; rep < 3; ++rep)
        for (int b = 0; b < 256; ++b)
            raw.push_back(uint8_t(b));
    expectRoundTrip(raw);
}

TEST(Lz, LongSelfOverlappingMatch)
{
    // RLE-style: matches whose source overlaps their destination.
    std::vector<uint8_t> raw(100000, 0xaa);
    const std::vector<uint8_t> comp = compressed(raw);
    EXPECT_LT(comp.size(), 200u);
    std::vector<uint8_t> back(raw.size());
    ASSERT_TRUE(lz::decompress(comp.data(), comp.size(), back.data(),
                               back.size()));
    EXPECT_EQ(back, raw);
}

TEST(Lz, RandomDataRoundTrips)
{
    std::mt19937_64 rng(7);
    std::vector<uint8_t> raw(65536);
    for (auto &b : raw)
        b = uint8_t(rng());
    expectRoundTrip(raw);
}

TEST(Lz, MixedStructuredAndRandom)
{
    std::mt19937_64 rng(11);
    std::vector<uint8_t> raw;
    for (int i = 0; i < 200; ++i) {
        for (int j = 0; j < 64; ++j)
            raw.push_back(uint8_t(j));
        for (int j = 0; j < 16; ++j)
            raw.push_back(uint8_t(rng()));
    }
    expectRoundTrip(raw);
}

TEST(Lz, VaryingSizesAroundBoundaries)
{
    std::mt19937_64 rng(13);
    for (size_t size : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 15u, 16u, 17u,
                        255u, 256u, 257u, 4095u, 4096u, 4097u}) {
        std::vector<uint8_t> raw(size);
        for (auto &b : raw)
            b = uint8_t(rng() & 0x3f); // mildly compressible
        expectRoundTrip(raw);
    }
}

TEST(Lz, Deterministic)
{
    std::vector<uint8_t> raw;
    for (int i = 0; i < 10000; ++i)
        raw.push_back(uint8_t((i * 2654435761u) >> 13));
    const std::vector<uint8_t> a = compressed(raw);
    const std::vector<uint8_t> b = compressed(raw);
    EXPECT_EQ(a, b);
}

TEST(Lz, ReturnsZeroWhenCapTooSmall)
{
    // Random data cannot shrink: with cap < n the encoder must bail
    // out with 0 (the caller's cue to store the block raw) instead
    // of writing a truncated stream.
    std::mt19937_64 rng(17);
    std::vector<uint8_t> raw(4096);
    for (auto &b : raw)
        b = uint8_t(rng());
    std::vector<uint8_t> out(raw.size() - 1);
    EXPECT_EQ(lz::compress(raw.data(), raw.size(), out.data(),
                           out.size()),
              0u);
}

TEST(Lz, DecompressRejectsOrMisdecodesCorruptInputSafely)
{
    // Flipping any byte must never crash or hang; it either fails
    // structurally or produces wrong bytes for the caller's CRC.
    std::vector<uint8_t> raw;
    for (int i = 0; i < 3000; ++i)
        raw.push_back(uint8_t(i % 53));
    const std::vector<uint8_t> comp = compressed(raw);
    for (size_t at = 0; at < comp.size(); ++at) {
        std::vector<uint8_t> evil = comp;
        evil[at] ^= 0x41;
        std::vector<uint8_t> back(raw.size(), 0);
        const bool ok = lz::decompress(evil.data(), evil.size(),
                                       back.data(), back.size());
        if (ok && back == raw) {
            // A flip in the encoder's slack bytes can be harmless —
            // but the stream must then still be a faithful decode.
            continue;
        }
        // Otherwise: structurally rejected or wrong bytes; both are
        // fine — v2 frames carry a raw CRC for exactly this case.
    }
}

TEST(Lz, DecompressHandlesTruncatedInput)
{
    std::vector<uint8_t> raw;
    for (int i = 0; i < 3000; ++i)
        raw.push_back(uint8_t(i % 53));
    const std::vector<uint8_t> comp = compressed(raw);
    for (size_t keep = 0; keep < comp.size(); keep += 7) {
        std::vector<uint8_t> back(raw.size(), 0);
        // Must terminate without reading past the truncated buffer;
        // result correctness is the caller's CRC's problem.
        lz::decompress(comp.data(), keep, back.data(), back.size());
    }
}

TEST(Lz, DecompressRejectsEmptyInputForNonEmptyOutput)
{
    std::vector<uint8_t> back(16, 0xcc);
    // All-zero padding decodes *something*; it must just stay in
    // bounds and terminate.
    lz::decompress(nullptr, 0, back.data(), back.size());
}

TEST(Lz, MaxCompressedSizeIsMonotonic)
{
    EXPECT_GE(lz::maxCompressedSize(0), 5u);
    EXPECT_GE(lz::maxCompressedSize(100), 100u);
    EXPECT_GE(lz::maxCompressedSize(1u << 20), (1u << 20) + 5u);
}

} // namespace
