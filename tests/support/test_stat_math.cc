/**
 * @file
 * The statistics behind irep-bench-2's performance numbers: median,
 * distribution-free median CI from order statistics, relative IQR
 * noise, and the Mann-Whitney U significance test. All of these gate
 * CI (ci/compare_stats.py --speedup mirrors the same math), so they
 * are pinned against hand-computed values here.
 */

#include <vector>

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/stat_math.hh"

namespace irep::stat
{
namespace
{

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, EmptyIsFatal)
{
    EXPECT_THROW(median({}), FatalError);
}

TEST(QuantileSorted, InterpolatesLinearly)
{
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(quantileSorted(v, 0.25), 1.75);
}

TEST(MedianCI, SmallSamplesDegradeToMinMax)
{
    // With n <= 5 no inner order-statistic pair reaches 95%
    // coverage, so the honest interval is [min, max].
    const Interval ci = medianCI({5.0, 1.0, 3.0});
    EXPECT_DOUBLE_EQ(ci.lo, 1.0);
    EXPECT_DOUBLE_EQ(ci.hi, 5.0);
}

TEST(MedianCI, TightensWithMoreRuns)
{
    std::vector<double> many;
    for (int i = 1; i <= 100; ++i)
        many.push_back(double(i));
    const Interval ci = medianCI(many);
    // The binomial interval for n=100 sits near ranks 40..60 —
    // strictly inside [min, max] and containing the median.
    EXPECT_GT(ci.lo, 1.0);
    EXPECT_LT(ci.hi, 100.0);
    EXPECT_LE(ci.lo, 50.5);
    EXPECT_GE(ci.hi, 50.5);
}

TEST(MedianCI, ContainsTheMedian)
{
    const std::vector<double> runs{0.9, 1.1, 1.0, 1.05, 0.95, 1.02,
                                   0.98};
    const Interval ci = medianCI(runs);
    const double m = median(runs);
    EXPECT_LE(ci.lo, m);
    EXPECT_GE(ci.hi, m);
}

TEST(RelativeIQR, ZeroForConstantRuns)
{
    EXPECT_DOUBLE_EQ(relativeIQR({2.0, 2.0, 2.0, 2.0}), 0.0);
    EXPECT_DOUBLE_EQ(relativeIQR({2.0}), 0.0);
    EXPECT_DOUBLE_EQ(relativeIQR({}), 0.0);
}

TEST(RelativeIQR, MatchesHandComputation)
{
    // Sorted: 1 2 3 4 -> q25=1.75, q75=3.25, IQR=1.5, median=2.5.
    EXPECT_NEAR(relativeIQR({4.0, 1.0, 3.0, 2.0}), 1.5 / 2.5, 1e-12);
}

TEST(MannWhitney, IdenticalSamplesAreInsignificant)
{
    const std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(mannWhitneyP(a, a), 1.0);
}

TEST(MannWhitney, DisjointSamplesAreSignificant)
{
    // Every candidate run slower than every baseline run: with
    // n=8 per side this is far past the 0.05 threshold.
    std::vector<double> fast, slow;
    for (int i = 0; i < 8; ++i) {
        fast.push_back(1.0 + i * 0.01);
        slow.push_back(2.0 + i * 0.01);
    }
    EXPECT_LT(mannWhitneyP(fast, slow), 0.01);
}

TEST(MannWhitney, OverlappingSamplesAreNot)
{
    const std::vector<double> a{1.0, 1.2, 1.1, 1.3, 1.15};
    const std::vector<double> b{1.05, 1.25, 1.12, 1.28, 1.18};
    EXPECT_GT(mannWhitneyP(a, b), 0.05);
}

TEST(MannWhitney, SymmetricInItsArguments)
{
    const std::vector<double> a{1.0, 1.5, 2.0, 2.5};
    const std::vector<double> b{1.2, 1.7, 2.2, 2.9};
    EXPECT_NEAR(mannWhitneyP(a, b), mannWhitneyP(b, a), 1e-12);
}

TEST(MannWhitney, EmptyOrAllTiedYieldsOne)
{
    EXPECT_DOUBLE_EQ(mannWhitneyP({}, {1.0}), 1.0);
    EXPECT_DOUBLE_EQ(mannWhitneyP({1.0}, {}), 1.0);
    EXPECT_DOUBLE_EQ(mannWhitneyP({2.0, 2.0}, {2.0, 2.0}), 1.0);
}

} // namespace
} // namespace irep::stat
