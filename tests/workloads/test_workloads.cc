/**
 * @file
 * Workload suite tests: every benchmark compiles, runs to completion,
 * and produces its golden output (full determinism of the whole
 * toolchain + simulator stack).
 */

#include <set>

#include <gtest/gtest.h>

#include "minicc/compiler.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "workloads/runtime.hh"
#include "workloads/workloads.hh"

namespace irep::workloads
{
namespace
{

TEST(Workloads, SuiteHasEightBenchmarksInPaperOrder)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 8u);
    const std::vector<std::string> expect = {
        "go", "m88ksim", "ijpeg", "perl",
        "vortex", "li", "gcc", "compress",
    };
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(all[i].name, expect[i]);
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(workloadByName("li").specAnalogue, "130.li");
    EXPECT_THROW(workloadByName("nope"), FatalError);
}

TEST(Workloads, BuildProgramIsMemoized)
{
    const auto &w = workloadByName("compress");
    const assem::Program &a = buildProgram(w);
    const assem::Program &b = buildProgram(w);
    EXPECT_EQ(&a, &b);
}

TEST(Workloads, EveryProgramHasFunctionMetadata)
{
    for (const auto &w : allWorkloads()) {
        const auto &program = buildProgram(w);
        EXPECT_GE(program.functions.size(), 20u) << w.name;
        std::set<std::string> names;
        for (const auto &f : program.functions) {
            EXPECT_GT(f.size, 0u) << w.name << ":" << f.name;
            names.insert(f.name);
        }
        EXPECT_TRUE(names.count("main")) << w.name;
        EXPECT_TRUE(names.count("_start")) << w.name;
    }
}

class WorkloadRunTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadRunTest, RunsToGoldenOutput)
{
    const Workload &w = workloadByName(GetParam());
    sim::Machine machine(buildProgram(w));
    machine.setInput(w.input);
    machine.run(500'000'000);

    EXPECT_TRUE(machine.halted()) << w.name;
    EXPECT_EQ(machine.exitCode(), 0) << w.name;
    ASSERT_FALSE(w.expectedOutput.empty()) << w.name;
    EXPECT_EQ(machine.output(), w.expectedOutput) << w.name;

    // The analyses need a meaningful instruction volume.
    EXPECT_GE(machine.instret(), 5'000'000u) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRunTest,
    ::testing::Values("go", "m88ksim", "ijpeg", "perl", "vortex",
                      "li", "gcc", "compress"),
    [](const auto &info) { return std::string(info.param); });

TEST(Workloads, RuntimeLibraryCompilesStandalone)
{
    EXPECT_NO_THROW(minicc::compileToProgram(
        runtimeSource() + "int main() { return 0; }\n"));
}

TEST(Workloads, InputsAreDeterministic)
{
    // Input factories must be pure: two calls, identical bytes.
    EXPECT_EQ(compressInput(), compressInput());
    EXPECT_EQ(vortexInput(), vortexInput());
    EXPECT_EQ(gccInput(), gccInput());
    EXPECT_EQ(ijpegInput(), ijpegInput());
    EXPECT_EQ(m88ksimInput(), m88ksimInput());
    EXPECT_EQ(perlInput(), perlInput());
    EXPECT_EQ(liInput(), liInput());
}

TEST(Workloads, AlternateInputsDifferFromPrimary)
{
    // The paper's input-sensitivity check needs genuinely different
    // second inputs (go's primary is empty, its alternate is not).
    for (const auto &w : allWorkloads())
        EXPECT_NE(w.input, w.altInput) << w.name;
}

class AltInputRunTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AltInputRunTest, RunsToCompletionCleanly)
{
    const Workload &w = workloadByName(GetParam());
    sim::Machine machine(buildProgram(w));
    machine.setInput(w.altInput);
    machine.run(500'000'000);
    EXPECT_TRUE(machine.halted()) << w.name;
    EXPECT_EQ(machine.exitCode(), 0) << w.name;
    // Different input, different (non-empty) output.
    EXPECT_FALSE(machine.output().empty()) << w.name;
    EXPECT_NE(machine.output(), w.expectedOutput) << w.name;
    EXPECT_GE(machine.instret(), 1'000'000u) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, AltInputRunTest,
    ::testing::Values("go", "m88ksim", "ijpeg", "perl", "vortex",
                      "li", "gcc", "compress"),
    [](const auto &info) { return std::string(info.param); });

TEST(Workloads, ExternalInputUseMatchesPaperCharacter)
{
    // go takes no input (SPEC's null.in); the interpreters take
    // substantial input.
    EXPECT_TRUE(workloadByName("go").input.empty());
    EXPECT_GT(workloadByName("vortex").input.size(), 10'000u);
    EXPECT_GT(workloadByName("ijpeg").input.size(), 10'000u);
    EXPECT_FALSE(workloadByName("compress").input.empty());
}

} // namespace
} // namespace irep::workloads
