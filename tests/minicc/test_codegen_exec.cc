/**
 * @file
 * End-to-end MiniC execution tests: compile snippets and run them on
 * the simulator, checking main's return value. Covers operators,
 * control flow, pointers, arrays, structs, recursion, and the
 * register-stack spill machinery.
 */

#include <gtest/gtest.h>

#include "minicc_test_util.hh"

namespace irep
{
namespace
{

using test::evalMiniC;
using test::runMiniC;

// ---------------------------------------------------------------------
// Expression evaluation sweep.
// ---------------------------------------------------------------------

struct ExprCase
{
    const char *expr;
    int expect;
};

class ExprTest : public ::testing::TestWithParam<ExprCase>
{
};

TEST_P(ExprTest, EvaluatesLikeC)
{
    EXPECT_EQ(evalMiniC(GetParam().expr) & 0xff, GetParam().expect & 0xff)
        << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExprTest,
    ::testing::Values(
        ExprCase{"1 + 2", 3},
        ExprCase{"10 - 3", 7},
        ExprCase{"6 * 7", 42},
        ExprCase{"100 / 7", 14},
        ExprCase{"100 % 7", 2},
        ExprCase{"-5 + 10", 5},
        ExprCase{"(0 - 100) / 7", -14},    // trunc toward zero
        ExprCase{"(0 - 100) % 7", -2},
        ExprCase{"2 + 3 * 4", 14},
        ExprCase{"(2 + 3) * 4", 20},
        ExprCase{"1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10", 55}));

INSTANTIATE_TEST_SUITE_P(
    BitsAndShifts, ExprTest,
    ::testing::Values(
        ExprCase{"0xf0 & 0x3c", 0x30},
        ExprCase{"0xf0 | 0x0f", 0xff},
        ExprCase{"0xff ^ 0x0f", 0xf0},
        ExprCase{"~0 & 0xff", 0xff},
        ExprCase{"1 << 6", 64},
        ExprCase{"256 >> 4", 16},
        ExprCase{"(0 - 16) >> 2", -4}));     // arithmetic shift

INSTANTIATE_TEST_SUITE_P(
    Comparisons, ExprTest,
    ::testing::Values(
        ExprCase{"3 < 4", 1},
        ExprCase{"4 < 3", 0},
        ExprCase{"3 <= 3", 1},
        ExprCase{"3 > 2", 1},
        ExprCase{"3 >= 4", 0},
        ExprCase{"5 == 5", 1},
        ExprCase{"5 != 5", 0},
        ExprCase{"(0 - 1) < 1", 1},         // signed comparison
        ExprCase{"!5", 0},
        ExprCase{"!0", 1}));

INSTANTIATE_TEST_SUITE_P(
    LogicalAndTernary, ExprTest,
    ::testing::Values(
        ExprCase{"1 && 2", 1},
        ExprCase{"1 && 0", 0},
        ExprCase{"0 || 3", 1},
        ExprCase{"0 || 0", 0},
        ExprCase{"1 ? 10 : 20", 10},
        ExprCase{"0 ? 10 : 20", 20},
        ExprCase{"1 ? 2 ? 3 : 4 : 5", 3}));

TEST(CodegenExec, ShortCircuitSkipsSideEffects)
{
    const auto result = runMiniC(
        "int g;\n"
        "int bump() { g = g + 1; return 1; }\n"
        "int main() {\n"
        "  0 && bump();\n"
        "  1 || bump();\n"
        "  1 && bump();\n"
        "  return g;\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 1);
}

// ---------------------------------------------------------------------
// Statements and control flow.
// ---------------------------------------------------------------------

TEST(CodegenExec, WhileLoop)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int s; int i;\n"
                  "  s = 0; i = 1;\n"
                  "  while (i <= 10) { s = s + i; i = i + 1; }\n"
                  "  return s;\n"
                  "}\n")
                  .exitCode,
              55);
}

TEST(CodegenExec, ForLoopWithDecl)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int s; s = 0;\n"
                  "  for (int i = 0; i < 5; i++) s += i * i;\n"
                  "  return s;\n"
                  "}\n")
                  .exitCode,
              30);
}

TEST(CodegenExec, DoWhileRunsAtLeastOnce)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int n; n = 0;\n"
                  "  do { n = n + 1; } while (0);\n"
                  "  return n;\n"
                  "}\n")
                  .exitCode,
              1);
}

TEST(CodegenExec, BreakAndContinue)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int s; s = 0;\n"
                  "  for (int i = 0; i < 100; i++) {\n"
                  "    if (i == 7) break;\n"
                  "    if (i % 2) continue;\n"
                  "    s = s + i;\n"      /* 0+2+4+6 */
                  "  }\n"
                  "  return s;\n"
                  "}\n")
                  .exitCode,
              12);
}

TEST(CodegenExec, NestedLoopsWithBreak)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int c; c = 0;\n"
                  "  for (int i = 0; i < 4; i++) {\n"
                  "    for (int j = 0; j < 4; j++) {\n"
                  "      if (j > i) break;\n"
                  "      c++;\n"
                  "    }\n"
                  "  }\n"
                  "  return c;\n"      /* 1+2+3+4 */
                  "}\n")
                  .exitCode,
              10);
}

TEST(CodegenExec, IfElseChain)
{
    const char *prog =
        "int grade(int x) {\n"
        "  if (x > 90) return 4;\n"
        "  else if (x > 80) return 3;\n"
        "  else if (x > 70) return 2;\n"
        "  else return 1;\n"
        "}\n"
        "int main() { return grade(95) * 1000 + grade(85) * 100 +\n"
        "                    grade(75) * 10 + grade(65); }\n";
    EXPECT_EQ(runMiniC(prog).exitCode & 0xff, 4321 & 0xff);
}

// ---------------------------------------------------------------------
// Functions.
// ---------------------------------------------------------------------

TEST(CodegenExec, FourArguments)
{
    EXPECT_EQ(runMiniC(
                  "int f(int a, int b, int c, int d) {\n"
                  "  return a * 1000 + b * 100 + c * 10 + d;\n"
                  "}\n"
                  "int main() { return f(1, 2, 3, 4) % 256; }\n")
                  .exitCode,
              1234 % 256);
}

TEST(CodegenExec, RecursionFibonacci)
{
    EXPECT_EQ(runMiniC(
                  "int fib(int n) {\n"
                  "  if (n < 2) return n;\n"
                  "  return fib(n - 1) + fib(n - 2);\n"
                  "}\n"
                  "int main() { return fib(11); }\n")
                  .exitCode,
              89);
}

TEST(CodegenExec, MutualRecursion)
{
    EXPECT_EQ(runMiniC(
                  "int isodd(int n);\n"
                  "int iseven(int n) {\n"
                  "  if (n == 0) return 1;\n"
                  "  return isodd(n - 1);\n"
                  "}\n"
                  "int isodd(int n) {\n"
                  "  if (n == 0) return 0;\n"
                  "  return iseven(n - 1);\n"
                  "}\n"
                  "int main() { return iseven(10) * 10 + isodd(7); }\n")
                  .exitCode,
              11);
}

TEST(CodegenExec, VoidFunctionWithGlobalEffect)
{
    EXPECT_EQ(runMiniC(
                  "int g;\n"
                  "void setg(int v) { g = v; }\n"
                  "int main() { setg(77); return g; }\n")
                  .exitCode,
              77);
}

TEST(CodegenExec, ArgumentsSurviveNestedCalls)
{
    EXPECT_EQ(runMiniC(
                  "int id(int x) { return x; }\n"
                  "int f(int a, int b) { return id(a) * 10 + id(b); }\n"
                  "int main() { return f(3, 4); }\n")
                  .exitCode,
              34);
}

TEST(CodegenExec, CallInExpressionPreservesTemps)
{
    // The temps holding 100 and 10 live across the calls.
    EXPECT_EQ(runMiniC(
                  "int two() { return 2; }\n"
                  "int main() { return 100 + 10 * two() + two(); }\n")
                  .exitCode,
              122);
}

// ---------------------------------------------------------------------
// Pointers and arrays.
// ---------------------------------------------------------------------

TEST(CodegenExec, PointerReadWrite)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int x; int *p;\n"
                  "  p = &x;\n"
                  "  *p = 31;\n"
                  "  return x + *p;\n"
                  "}\n")
                  .exitCode,
              62);
}

TEST(CodegenExec, PointerArithmeticScales)
{
    EXPECT_EQ(runMiniC(
                  "int arr[5];\n"
                  "int main() {\n"
                  "  int *p;\n"
                  "  for (int i = 0; i < 5; i++) arr[i] = i * 10;\n"
                  "  p = arr;\n"
                  "  p = p + 3;\n"
                  "  return *p + *(p - 2);\n"
                  "}\n")
                  .exitCode,
              40);
}

TEST(CodegenExec, PointerDifference)
{
    EXPECT_EQ(runMiniC(
                  "int arr[8];\n"
                  "int main() {\n"
                  "  int *a; int *b;\n"
                  "  a = &arr[1]; b = &arr[6];\n"
                  "  return b - a;\n"
                  "}\n")
                  .exitCode,
              5);
}

TEST(CodegenExec, LocalArray)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int a[4];\n"
                  "  for (int i = 0; i < 4; i++) a[i] = i + 1;\n"
                  "  return a[0] + a[1] * a[2] + a[3];\n"
                  "}\n")
                  .exitCode,
              11);
}

TEST(CodegenExec, ArrayPassedToFunction)
{
    EXPECT_EQ(runMiniC(
                  "int sum(int *v, int n) {\n"
                  "  int s; s = 0;\n"
                  "  for (int i = 0; i < n; i++) s += v[i];\n"
                  "  return s;\n"
                  "}\n"
                  "int data[6] = { 4, 8, 15, 16, 23, 42 };\n"
                  "int main() { return sum(data, 6); }\n")
                  .exitCode,
              108);
}

TEST(CodegenExec, PointerToPointer)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int x; int *p; int **pp;\n"
                  "  p = &x; pp = &p;\n"
                  "  **pp = 9;\n"
                  "  return x;\n"
                  "}\n")
                  .exitCode,
              9);
}

TEST(CodegenExec, SwapThroughPointers)
{
    EXPECT_EQ(runMiniC(
                  "void swap(int *a, int *b) {\n"
                  "  int t; t = *a; *a = *b; *b = t;\n"
                  "}\n"
                  "int main() {\n"
                  "  int x; int y;\n"
                  "  x = 3; y = 8;\n"
                  "  swap(&x, &y);\n"
                  "  return x * 10 + y;\n"
                  "}\n")
                  .exitCode,
              83);
}

// ---------------------------------------------------------------------
// Structs.
// ---------------------------------------------------------------------

TEST(CodegenExec, StructMembers)
{
    EXPECT_EQ(runMiniC(
                  "struct point { int x; int y; };\n"
                  "int main() {\n"
                  "  struct point p;\n"
                  "  p.x = 6; p.y = 7;\n"
                  "  return p.x * p.y;\n"
                  "}\n")
                  .exitCode,
              42);
}

TEST(CodegenExec, StructPointerArrow)
{
    EXPECT_EQ(runMiniC(
                  "struct point { int x; int y; };\n"
                  "int getx(struct point *p) { return p->x; }\n"
                  "int main() {\n"
                  "  struct point p;\n"
                  "  p.x = 12; p.y = 1;\n"
                  "  return getx(&p);\n"
                  "}\n")
                  .exitCode,
              12);
}

TEST(CodegenExec, NestedStructsAndArraysOfStructs)
{
    EXPECT_EQ(runMiniC(
                  "struct inner { int v; };\n"
                  "struct outer { struct inner in; int pad; };\n"
                  "struct outer arr[3];\n"
                  "int main() {\n"
                  "  for (int i = 0; i < 3; i++) arr[i].in.v = i + 1;\n"
                  "  return arr[0].in.v + arr[1].in.v * arr[2].in.v;\n"
                  "}\n")
                  .exitCode,
              7);
}

TEST(CodegenExec, LinkedListTraversal)
{
    EXPECT_EQ(runMiniC(
                  "struct node { int v; struct node *next; };\n"
                  "struct node nodes[4];\n"
                  "int main() {\n"
                  "  for (int i = 0; i < 4; i++) {\n"
                  "    nodes[i].v = i + 1;\n"
                  "    nodes[i].next = (i < 3) ? &nodes[i + 1]\n"
                  "                            : (struct node *)0;\n"
                  "  }\n"
                  "  int s; s = 0;\n"
                  "  struct node *p;\n"
                  "  p = &nodes[0];\n"
                  "  while (p) { s += p->v; p = p->next; }\n"
                  "  return s;\n"
                  "}\n")
                  .exitCode,
              10);
}

TEST(CodegenExec, StructMemberCharAndOffsets)
{
    EXPECT_EQ(runMiniC(
                  "struct mix { char c; int i; char d; };\n"
                  "int main() {\n"
                  "  struct mix m;\n"
                  "  m.c = (char)250; m.i = 1000; m.d = 'z';\n"
                  "  return (m.c == 250) + (m.i == 1000) + (m.d == 'z');\n"
                  "}\n")
                  .exitCode,
              3);
}

// ---------------------------------------------------------------------
// Assignment forms, increments, chars, casts.
// ---------------------------------------------------------------------

TEST(CodegenExec, CompoundAssignments)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int x; x = 10;\n"
                  "  x += 5; x -= 3; x *= 4; x /= 6; x %= 5;\n"
                  "  x <<= 4; x |= 3; x &= 0x1e; x ^= 0x12;\n"
                  "  x >>= 1;\n"
                  "  return x;\n"
                  "}\n")
                  .exitCode,
              ((((((10 + 5 - 3) * 4 / 6 % 5) << 4) | 3) & 0x1e) ^ 0x12)
                  >> 1);
}

TEST(CodegenExec, CompoundAssignToMemory)
{
    EXPECT_EQ(runMiniC(
                  "int g[2];\n"
                  "int main() {\n"
                  "  g[1] = 7;\n"
                  "  g[1] += 10;\n"
                  "  g[1] *= 2;\n"
                  "  return g[1];\n"
                  "}\n")
                  .exitCode,
              34);
}

TEST(CodegenExec, PrePostIncrement)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int x; int a; int b;\n"
                  "  x = 5;\n"
                  "  a = x++;\n"     /* a=5 x=6 */
                  "  b = ++x;\n"     /* b=7 x=7 */
                  "  return a * 100 + b * 10 + x;\n"
                  "}\n")
                  .exitCode,
              5 * 100 + 7 * 10 + 7);
}

TEST(CodegenExec, PointerIncrementScales)
{
    EXPECT_EQ(runMiniC(
                  "int arr[3] = { 10, 20, 30 };\n"
                  "int main() {\n"
                  "  int *p; p = arr;\n"
                  "  p++;\n"
                  "  return *p++ + *p;\n"   /* 20 + 30 */
                  "}\n")
                  .exitCode,
              50);
}

TEST(CodegenExec, IncrementOnMemoryLValue)
{
    EXPECT_EQ(runMiniC(
                  "int g[1];\n"
                  "int main() {\n"
                  "  g[0] = 5;\n"
                  "  int a; a = g[0]++;\n"
                  "  int b; b = --g[0];\n"
                  "  return a * 10 + b;\n"
                  "}\n")
                  .exitCode,
              55);
}

TEST(CodegenExec, CharIsUnsignedByte)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  char c;\n"
                  "  c = (char)200;\n"
                  "  c += 100;\n"       /* wraps to 44 */
                  "  return c;\n"
                  "}\n")
                  .exitCode,
              (200 + 100) & 0xff);
}

TEST(CodegenExec, CastsBetweenIntAndPointer)
{
    EXPECT_EQ(runMiniC(
                  "int g;\n"
                  "int main() {\n"
                  "  int addr;\n"
                  "  g = 123;\n"
                  "  addr = (int)&g;\n"
                  "  return *(int *)addr;\n"
                  "}\n")
                  .exitCode,
              123);
}

TEST(CodegenExec, SizeofValues)
{
    EXPECT_EQ(runMiniC(
                  "struct s { int a; char c; int b; };\n"
                  "int main() {\n"
                  "  return sizeof(int) + sizeof(char) * 10 +\n"
                  "         sizeof(int *) + sizeof(struct s);\n"
                  "}\n")
                  .exitCode,
              4 + 10 + 4 + 12);
}

// ---------------------------------------------------------------------
// Register pressure / spilling.
// ---------------------------------------------------------------------

TEST(CodegenExec, DeepRightLeaningExpressionSpills)
{
    // Forces the expression register stack past 8 live temps.
    EXPECT_EQ(evalMiniC(
                  "1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 +\n"
                  "(10 + (11 + (12 + (13 + 14))))))))))))"),
              105);
}

TEST(CodegenExec, ManyLocalsOverflowSRegisters)
{
    // More than 8 register-eligible locals: the rest live on the
    // stack; all must keep their values.
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int a; int b; int c; int d; int e; int f;\n"
                  "  int g; int h; int i; int j; int k; int l;\n"
                  "  a=1;b=2;c=3;d=4;e=5;f=6;g=7;h=8;i=9;j=10;k=11;"
                  "l=12;\n"
                  "  return a+b+c+d+e+f+g+h+i+j+k+l;\n"
                  "}\n")
                  .exitCode,
              78);
}

TEST(CodegenExec, SpilledTempsSurviveCalls)
{
    EXPECT_EQ(runMiniC(
                  "int one() { return 1; }\n"
                  "int main() {\n"
                  "  return 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 +\n"
                  "         (9 + (10 + one())))))))));\n"
                  "}\n")
                  .exitCode,
              56);
}

// ---------------------------------------------------------------------
// Globals.
// ---------------------------------------------------------------------

TEST(CodegenExec, GlobalInitializers)
{
    EXPECT_EQ(runMiniC(
                  "int a = 5;\n"
                  "int b = -3;\n"
                  "int c = 1 << 4;\n"
                  "char ch = 'A';\n"
                  "int t[4] = { 1, 2, 3 };\n"      /* t[3] = 0 */
                  "int main() { return a + b + c + ch + t[0] + t[1] +\n"
                  "                    t[2] + t[3]; }\n")
                  .exitCode,
              5 - 3 + 16 + 65 + 6);
}

TEST(CodegenExec, GlobalPointerToGlobal)
{
    EXPECT_EQ(runMiniC(
                  "int target = 99;\n"
                  "int *p = target;\n"   /* label-constant initializer */
                  "int main() { return *p; }\n")
                  .exitCode,
              99);
}

TEST(CodegenExec, GlobalCharArrayString)
{
    EXPECT_EQ(runMiniC(
                  "char msg[16] = \"irep\";\n"
                  "int main() {\n"
                  "  return (msg[0] == 'i') + (msg[3] == 'p') +\n"
                  "         (msg[4] == 0) + (msg[15] == 0);\n"
                  "}\n")
                  .exitCode,
              4);
}

TEST(CodegenExec, StringLiteralPointer)
{
    EXPECT_EQ(runMiniC(
                  "int len(char *s) {\n"
                  "  int n; n = 0;\n"
                  "  while (s[n]) n++;\n"
                  "  return n;\n"
                  "}\n"
                  "int main() { return len(\"hello world\"); }\n")
                  .exitCode,
              11);
}


// ---------------------------------------------------------------------
// Further edge cases.
// ---------------------------------------------------------------------

TEST(CodegenExec, ForWithEmptyClauses)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int n; n = 0;\n"
                  "  for (;;) { n++; if (n == 5) break; }\n"
                  "  return n;\n"
                  "}\n")
                  .exitCode,
              5);
}

TEST(CodegenExec, DoWhileWithContinue)
{
    // continue in do-while jumps to the condition, not the top.
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int i; int s;\n"
                  "  i = 0; s = 0;\n"
                  "  do {\n"
                  "    i++;\n"
                  "    if (i % 2) continue;\n"
                  "    s += i;\n"
                  "  } while (i < 8);\n"
                  "  return s;\n"     /* 2+4+6+8 */
                  "}\n")
                  .exitCode,
              20);
}

TEST(CodegenExec, NegativeDivisionAndModulo)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int a; int b;\n"
                  "  a = -17; b = 5;\n"
                  "  return (a / b == -3) + (a % b == -2) +\n"
                  "         (17 / -5 == -3) + (17 % -5 == 2);\n"
                  "}\n")
                  .exitCode,
              4);
}

TEST(CodegenExec, DivisionByZeroIsDefinedZero)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int z; z = 0;\n"
                  "  return (7 / z) + (7 % z);\n"
                  "}\n")
                  .exitCode,
              0);
}

TEST(CodegenExec, CharComparisonsAreUnsigned)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  char hi; hi = (char)0xf0;\n"
                  "  char lo; lo = 'a';\n"
                  "  return (hi > lo) + (hi == 240);\n"
                  "}\n")
                  .exitCode,
              2);
}

TEST(CodegenExec, TernaryAsCallArgumentAndNested)
{
    EXPECT_EQ(runMiniC(
                  "int pick(int v) { return v * 2; }\n"
                  "int main() {\n"
                  "  int x; x = 3;\n"
                  "  return pick(x > 2 ? x > 5 ? 100 : 10 : 1);\n"
                  "}\n")
                  .exitCode,
              20);
}

TEST(CodegenExec, ChainedPointerMemberAccess)
{
    EXPECT_EQ(runMiniC(
                  "struct c { int v; };\n"
                  "struct b { struct c *c; };\n"
                  "struct a { struct b *b; };\n"
                  "int main() {\n"
                  "  struct a A; struct b B; struct c C;\n"
                  "  C.v = 77; B.c = &C; A.b = &B;\n"
                  "  return A.b->c->v;\n"
                  "}\n")
                  .exitCode,
              77);
}

TEST(CodegenExec, GlobalUpdatedAcrossCalls)
{
    EXPECT_EQ(runMiniC(
                  "int counter;\n"
                  "int tick() { counter++; return counter; }\n"
                  "int main() {\n"
                  "  int a; a = tick() * 100 + tick() * 10 + tick();\n"
                  "  return a;\n"
                  "}\n")
                  .exitCode,
              123);
}

TEST(CodegenExec, AssignmentValueChains)
{
    EXPECT_EQ(runMiniC(
                  "int main() {\n"
                  "  int a; int b; int c;\n"
                  "  a = b = c = 4;\n"
                  "  a += b += c;\n"      /* b=8, a=12 */
                  "  return a * 10 + b;\n"
                  "}\n")
                  .exitCode,
              128);
}

TEST(CodegenExec, WhileOverStringPointer)
{
    EXPECT_EQ(runMiniC(
                  "int count(char *s, int ch) {\n"
                  "  int n; n = 0;\n"
                  "  while (*s) { if (*s == ch) n++; s++; }\n"
                  "  return n;\n"
                  "}\n"
                  "int main() { return count(\"mississippi\", 's'); }\n")
                  .exitCode,
              4);
}

TEST(CodegenExec, StructArrayInStruct)
{
    EXPECT_EQ(runMiniC(
                  "struct row { int cells[3]; };\n"
                  "struct grid { struct row rows[2]; };\n"
                  "struct grid g;\n"
                  "int main() {\n"
                  "  for (int r = 0; r < 2; r++)\n"
                  "    for (int c = 0; c < 3; c++)\n"
                  "      g.rows[r].cells[c] = r * 10 + c;\n"
                  "  return g.rows[1].cells[2];\n"
                  "}\n")
                  .exitCode,
              12);
}

} // namespace
} // namespace irep
