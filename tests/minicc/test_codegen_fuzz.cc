/**
 * @file
 * Differential fuzzing of the whole toolchain: generate random
 * expression trees (deterministic per seed), evaluate them on the
 * host with MiniC's exact semantics (wrapping int32, div-by-zero = 0,
 * shift counts mod 32, arithmetic right shift), and check that the
 * compiled program run on the simulator computes the same values.
 * One mismatch convicts one of lexer, parser, sema, codegen,
 * assembler, or simulator.
 */

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "minicc_test_util.hh"

namespace irep
{
namespace
{

/** Host-side evaluation with MiniC/MIPS semantics. */
struct Semantics
{
    static int32_t
    div(int32_t a, int32_t b)
    {
        if (b == 0)
            return 0;
        if (a == INT32_MIN && b == -1)
            return INT32_MIN;
        return a / b;
    }

    static int32_t
    rem(int32_t a, int32_t b)
    {
        if (b == 0)
            return 0;
        if (a == INT32_MIN && b == -1)
            return 0;
        return a % b;
    }

    static int32_t
    shl(int32_t a, int32_t b)
    {
        return int32_t(uint32_t(a) << (uint32_t(b) & 31));
    }

    static int32_t
    shr(int32_t a, int32_t b)
    {
        return a >> (uint32_t(b) & 31);    // arithmetic
    }
};

/** A random expression: MiniC text plus its host-computed value. */
struct GenExpr
{
    std::string text;
    int32_t value;
};

class Generator
{
  public:
    explicit Generator(uint32_t seed) : rng_(seed) {}

    GenExpr
    expr(int depth)
    {
        if (depth <= 0 || pick(4) == 0)
            return leaf();
        switch (pick(14)) {
          case 0: return binary(depth, "+");
          case 1: return binary(depth, "-");
          case 2: return binary(depth, "*");
          case 3: return binary(depth, "/");
          case 4: return binary(depth, "%");
          case 5: return binary(depth, "&");
          case 6: return binary(depth, "|");
          case 7: return binary(depth, "^");
          case 8: return binary(depth, "<<");
          case 9: return binary(depth, ">>");
          case 10: return binary(depth, "<");
          case 11: return binary(depth, "==");
          case 12: return unary(depth);
          default: return ternary(depth);
        }
    }

  private:
    uint32_t pick(uint32_t n) { return rng_() % n; }

    GenExpr
    leaf()
    {
        // Variables a=13, b=-7, c=1000003 (set up by the harness),
        // or a literal biased toward interesting values.
        switch (pick(6)) {
          case 0: return {"a", 13};
          case 1: return {"b", -7};
          case 2: return {"c", 1000003};
          case 3: return {"0", 0};
          case 4: {
            const int32_t v = int32_t(pick(255)) + 1;
            return {std::to_string(v), v};
          }
          default: {
            const int32_t v = int32_t(pick(100000)) - 50000;
            if (v < 0)
                return {"(0 - " + std::to_string(-int64_t(v)) + ")",
                        v};
            return {std::to_string(v), v};
          }
        }
    }

    GenExpr
    binary(int depth, const std::string &op)
    {
        const GenExpr l = expr(depth - 1);
        const GenExpr r = expr(depth - 1);
        int32_t v = 0;
        const int32_t a = l.value, b = r.value;
        if (op == "+")
            v = int32_t(uint32_t(a) + uint32_t(b));
        else if (op == "-")
            v = int32_t(uint32_t(a) - uint32_t(b));
        else if (op == "*")
            v = int32_t(uint32_t(a) * uint32_t(b));
        else if (op == "/")
            v = Semantics::div(a, b);
        else if (op == "%")
            v = Semantics::rem(a, b);
        else if (op == "&")
            v = a & b;
        else if (op == "|")
            v = a | b;
        else if (op == "^")
            v = a ^ b;
        else if (op == "<<")
            v = Semantics::shl(a, b);
        else if (op == ">>")
            v = Semantics::shr(a, b);
        else if (op == "<")
            v = a < b;
        else if (op == "==")
            v = a == b;
        return {"(" + l.text + " " + op + " " + r.text + ")", v};
    }

    GenExpr
    unary(int depth)
    {
        const GenExpr e = expr(depth - 1);
        switch (pick(3)) {
          case 0:
            return {"(-" + e.text + ")",
                    int32_t(0u - uint32_t(e.value))};
          case 1:
            return {"(~" + e.text + ")", ~e.value};
          default:
            return {"(!" + e.text + ")", e.value == 0 ? 1 : 0};
        }
    }

    GenExpr
    ternary(int depth)
    {
        const GenExpr c = expr(depth - 1);
        const GenExpr t = expr(depth - 1);
        const GenExpr f = expr(depth - 1);
        return {"(" + c.text + " ? " + t.text + " : " + f.text + ")",
                c.value != 0 ? t.value : f.value};
    }

    std::mt19937 rng_;
};

class CodegenFuzzTest : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CodegenFuzzTest, CompiledMatchesHostSemantics)
{
    Generator gen(GetParam());

    // Fold ten random expressions into one checksum to amortize the
    // per-program cost.
    std::string body;
    uint32_t expect = 0;
    for (int i = 0; i < 10; ++i) {
        const GenExpr e = gen.expr(4);
        body += "  r = r * 31 + (" + e.text + ");\n";
        expect = expect * 31 + uint32_t(e.value);
    }

    const std::string src =
        "int main() {\n"
        "  int a; int b; int c; int r;\n"
        "  a = 13; b = -7; c = 1000003; r = 0;\n" +
        body +
        "  return r & 0x7fff;\n"
        "}\n";

    const auto result = test::runMiniC(src);
    ASSERT_TRUE(result.halted) << src;
    EXPECT_EQ(uint32_t(result.exitCode), expect & 0x7fff) << src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenFuzzTest,
                         ::testing::Range(1u, 61u));

} // namespace
} // namespace irep
