/**
 * @file
 * Helpers for MiniC tests: compile a snippet, run it, and report the
 * exit code (the value returned from main) and output bytes.
 */

#ifndef IREP_TESTS_MINICC_TEST_UTIL_HH
#define IREP_TESTS_MINICC_TEST_UTIL_HH

#include <string>

#include "minicc/compiler.hh"
#include "sim/machine.hh"
#include "workloads/runtime.hh"

namespace irep::test
{

struct ExecResult
{
    int exitCode = -1;
    std::string output;
    uint64_t instructions = 0;
    bool halted = false;
};

/** Compile and run a MiniC program; the exit code is main's return. */
inline ExecResult
runMiniC(const std::string &source, const std::string &input = "",
         uint64_t max_instructions = 50'000'000)
{
    const assem::Program program =
        minicc::compileToProgram(source);
    sim::Machine machine(program);
    machine.setInput(input);
    machine.run(max_instructions);
    ExecResult result;
    result.exitCode = machine.exitCode();
    result.output = machine.output();
    result.instructions = machine.instret();
    result.halted = machine.halted();
    return result;
}

/** Same, with the runtime library prepended. */
inline ExecResult
runMiniCWithRuntime(const std::string &source,
                    const std::string &input = "",
                    uint64_t max_instructions = 50'000'000)
{
    return runMiniC(workloads::runtimeSource() + source, input,
                    max_instructions);
}

/** Shorthand: wrap an expression in `int main() { return ...; }`. */
inline int
evalMiniC(const std::string &expression)
{
    return runMiniC("int main() { return " + expression + "; }")
        .exitCode;
}

} // namespace irep::test

#endif // IREP_TESTS_MINICC_TEST_UTIL_HH
