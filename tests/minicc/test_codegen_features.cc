/**
 * @file
 * MiniC feature tests beyond the expression/statement basics: the
 * syscall intrinsics, the runtime library, generated function
 * metadata, and property-style differential sweeps against host C++
 * evaluation.
 */

#include <string>

#include <gtest/gtest.h>

#include "minicc_test_util.hh"

namespace irep
{
namespace
{

using test::runMiniC;
using test::runMiniCWithRuntime;

// ---------------------------------------------------------------------
// Intrinsics.
// ---------------------------------------------------------------------

TEST(Intrinsics, WriteProducesOutput)
{
    const auto result = runMiniC(
        "char msg[4] = \"ok\\n\";\n"
        "int main() { __write(msg, 3); return 0; }\n");
    EXPECT_EQ(result.output, "ok\n");
}

TEST(Intrinsics, ReadReturnsByteCount)
{
    const auto result = runMiniC(
        "char buf[8];\n"
        "int main() { return __read(buf, 8); }\n",
        "abc");
    EXPECT_EQ(result.exitCode, 3);
}

TEST(Intrinsics, ExitSkipsRestOfMain)
{
    const auto result = runMiniC(
        "int main() { __exit(9); return 1; }\n");
    EXPECT_EQ(result.exitCode, 9);
}

TEST(Intrinsics, SbrkReturnsUsableMemory)
{
    const auto result = runMiniC(
        "int main() {\n"
        "  int *p;\n"
        "  p = (int *)__sbrk(64);\n"
        "  p[0] = 4; p[15] = 38;\n"
        "  return p[0] + p[15];\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 42);
}

// ---------------------------------------------------------------------
// Runtime library.
// ---------------------------------------------------------------------

TEST(Runtime, PutIntFormatsNumbers)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  putint(0); putchar(' ');\n"
        "  putint(12345); putchar(' ');\n"
        "  putint(-678);\n"
        "  flushout();\n"
        "  return 0;\n"
        "}\n");
    EXPECT_EQ(result.output, "0 12345 -678");
}

TEST(Runtime, PutHexFormats)
{
    const auto result = runMiniCWithRuntime(
        "int main() { puthex(0xdeadbeef); flushout(); return 0; }\n");
    EXPECT_EQ(result.output, "deadbeef");
}

TEST(Runtime, GetcharStreamsInput)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  int c; int n; n = 0;\n"
        "  c = getchar();\n"
        "  while (c >= 0) { n = n * 10 + (c - '0'); c = getchar(); }\n"
        "  return n;\n"
        "}\n",
        "123");
    EXPECT_EQ(result.exitCode, 123);
}

TEST(Runtime, ReadlineSplitsLines)
{
    const auto result = runMiniCWithRuntime(
        "char line[32];\n"
        "int main() {\n"
        "  int total; total = 0;\n"
        "  int n; n = readline(line, 32);\n"
        "  while (n >= 0) {\n"
        "    total = total * 100 + n;\n"
        "    n = readline(line, 32);\n"
        "  }\n"
        "  return total;\n"
        "}\n",
        "ab\n\ncdef\n");
    // Lengths 2, 0, 4 -> 2*10000 + 0*100 + 4.
    EXPECT_EQ(result.exitCode, 20004);
}

TEST(Runtime, StringFunctions)
{
    const auto result = runMiniCWithRuntime(
        "char a[16]; char b[16];\n"
        "int main() {\n"
        "  strcpy(a, \"hello\");\n"
        "  strcpy(b, a);\n"
        "  int r; r = 0;\n"
        "  if (strcmp(a, b) == 0) r = r + 1;\n"
        "  if (strcmp(a, \"hellp\") < 0) r = r + 10;\n"
        "  if (strncmp(a, \"help\", 3) == 0) r = r + 100;\n"
        "  if (strlen(a) == 5) r = r + 1000;\n"
        "  return r;\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 1111);
}

TEST(Runtime, MemFunctions)
{
    const auto result = runMiniCWithRuntime(
        "char buf[8]; char dst[8];\n"
        "int main() {\n"
        "  memset(buf, 7, 8);\n"
        "  memcpy(dst, buf, 8);\n"
        "  int s; s = 0;\n"
        "  for (int i = 0; i < 8; i++) s += dst[i];\n"
        "  return s;\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 56);
}

TEST(Runtime, MallocReturnsDistinctAlignedBlocks)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  char *a; char *b;\n"
        "  a = malloc(10);\n"
        "  b = malloc(100000);\n"     /* spans an sbrk chunk */
        "  int r; r = 0;\n"
        "  if (a != b) r = r + 1;\n"
        "  if (((int)a & 7) == 0) r = r + 10;\n"
        "  if (((int)b & 7) == 0) r = r + 100;\n"
        "  a[0] = 'x'; b[99999] = 'y';\n"
        "  if (a[0] == 'x' && b[99999] == 'y') r = r + 1000;\n"
        "  return r;\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 1111);
}

TEST(Runtime, FreeRecyclesSameSizeClass)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  char *a; char *b; char *c;\n"
        "  a = malloc(24);\n"
        "  free(a);\n"
        "  b = malloc(24);\n"      /* same class: reuses a */
        "  c = malloc(24);\n"      /* freelist empty: fresh block */
        "  return (a == b) * 10 + (b != c);\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 11);
}

TEST(Runtime, FreeSegregatesSizeClasses)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  char *a; char *b; char *c;\n"
        "  a = malloc(8);\n"
        "  b = malloc(64);\n"
        "  free(a);\n"
        "  free(b);\n"
        "  c = malloc(64);\n"      /* must reuse b, not a */
        "  return (c == b) * 10 + (c != a);\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 11);
}

TEST(Runtime, FreedMemoryStaysUsableAfterReuse)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  int *p; int i; int s;\n"
        "  for (i = 0; i < 2000; i++) {\n"
        "    p = (int *)malloc(16);\n"
        "    p[0] = i; p[3] = i * 2;\n"
        "    s = p[0] + p[3];\n"
        "    free((char *)p);\n"
        "  }\n"
        "  return s & 0xff;\n"     /* 1999*3 & 0xff */
        "}\n");
    EXPECT_EQ(result.exitCode, (1999 * 3) & 0xff);
}

TEST(Runtime, FreeNullIsNoop)
{
    EXPECT_EQ(runMiniCWithRuntime(
                  "int main() { free((char *)0); return 5; }\n")
                  .exitCode,
              5);
}

TEST(Runtime, LargeBlocksAreNotRecycledButWork)
{
    const auto result = runMiniCWithRuntime(
        "int main() {\n"
        "  char *a; char *b;\n"
        "  a = malloc(4096);\n"
        "  free(a);\n"
        "  b = malloc(4096);\n"    /* not recycled */
        "  a[0] = 'x'; b[4095] = 'y';\n"
        "  return (a != b) + (b[4095] == 'y');\n"
        "}\n");
    EXPECT_EQ(result.exitCode, 2);
}

TEST(Runtime, AtoiParsesSignsAndSpaces)
{
    const auto result = runMiniCWithRuntime(
        "char a[8] = \"  42\";\n"
        "char b[8] = \"-17\";\n"
        "char c[8] = \"9x\";\n"
        "int main() { return atoi(a) * 1000 + atoi(b) * (0-10) +\n"
        "                    atoi(c); }\n");
    EXPECT_EQ(result.exitCode, 42000 + 170 + 9);
}

TEST(Runtime, RandIsDeterministic)
{
    const char *prog =
        "int main() {\n"
        "  srand(42);\n"
        "  int a; a = rand();\n"
        "  srand(42);\n"
        "  int b; b = rand();\n"
        "  return (a == b) + (a >= 0) + (a < 32768);\n"
        "}\n";
    EXPECT_EQ(runMiniCWithRuntime(prog).exitCode, 3);
}

TEST(Runtime, AbsFunction)
{
    EXPECT_EQ(runMiniCWithRuntime(
                  "int main() { return abs(0 - 9) + abs(9) + abs(0); }\n")
                  .exitCode,
              18);
}

// ---------------------------------------------------------------------
// Generated metadata.
// ---------------------------------------------------------------------

TEST(Metadata, FunctionsCarryArity)
{
    const auto program = minicc::compileToProgram(
        "int f2(int a, int b) { return a + b; }\n"
        "int f0() { return 1; }\n"
        "int main() { return f2(1, 2) + f0(); }\n");
    bool saw_f2 = false, saw_f0 = false, saw_main = false;
    for (const auto &f : program.functions) {
        if (f.name == "f2") {
            saw_f2 = true;
            EXPECT_EQ(f.numArgs, 2);
        } else if (f.name == "f0") {
            saw_f0 = true;
            EXPECT_EQ(f.numArgs, 0);
        } else if (f.name == "main") {
            saw_main = true;
        }
    }
    EXPECT_TRUE(saw_f2);
    EXPECT_TRUE(saw_f0);
    EXPECT_TRUE(saw_main);
}

TEST(Metadata, EntryIsStartStub)
{
    const auto program = minicc::compileToProgram(
        "int main() { return 0; }\n");
    EXPECT_EQ(program.entry, program.symbol("_start"));
}

TEST(Metadata, MainReturnBecomesExitCode)
{
    EXPECT_EQ(runMiniC("int main() { return 123; }\n").exitCode, 123);
}

// ---------------------------------------------------------------------
// Property-style differential sweeps: evaluate the same arithmetic in
// MiniC and in host C++ across a grid of operand values.
// ---------------------------------------------------------------------

struct DiffCase
{
    int a;
    int b;
};

class ArithmeticDifferentialTest
    : public ::testing::TestWithParam<DiffCase>
{
};

TEST_P(ArithmeticDifferentialTest, MatchesHostSemantics)
{
    const int a = GetParam().a;
    const int b = GetParam().b;
    // The same formula evaluated by the host compiler:
    const int expect =
        (a + b) * 3 - (a - b) + ((a * b) % 97) + ((a & b) | (a ^ 5)) +
        ((a < b) ? b - a : a - b) + (b != 0 ? a / b : 0);

    const std::string src =
        "int f(int a, int b) {\n"
        "  return (a + b) * 3 - (a - b) + ((a * b) % 97) +\n"
        "         ((a & b) | (a ^ 5)) +\n"
        "         ((a < b) ? b - a : a - b) +\n"
        "         (b != 0 ? a / b : 0);\n"
        "}\n"
        "int main() { return f(" +
        std::to_string(a) + ", " + std::to_string(b) + "); }\n";
    EXPECT_EQ(runMiniC(src).exitCode, expect)
        << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ArithmeticDifferentialTest,
    ::testing::Values(
        DiffCase{0, 1}, DiffCase{1, 0}, DiffCase{7, 3},
        DiffCase{-7, 3}, DiffCase{7, -3}, DiffCase{-7, -3},
        DiffCase{1000, 999}, DiffCase{-1, -1}, DiffCase{12345, 678},
        DiffCase{-12345, 678}, DiffCase{2, 1 << 20},
        DiffCase{(1 << 20) + 3, 5}));

class ShiftDifferentialTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ShiftDifferentialTest, ShiftsMatchHost)
{
    const int s = GetParam();
    const int v = 0x12345678;
    const int expect =
        (int(unsigned(v) << s) ^ (v >> s)) + int(unsigned(v) >> s);
    const std::string src =
        "int main() {\n"
        "  int v; int s; int logical;\n"
        "  v = 0x12345678; s = " + std::to_string(s) + ";\n"
        // No unsigned type: recover the logical shift by masking off
        // the sign-extended bits.
        "  logical = (v >> s) & ~((~0) << (32 - s));\n"
        "  return ((v << s) ^ (v >> s)) + logical;\n"
        "}\n";
    if (s == 0)
        return;     // the masking trick needs s > 0
    EXPECT_EQ(runMiniC(src).exitCode, expect) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Amounts, ShiftDifferentialTest,
                         ::testing::Values(1, 2, 4, 7, 15, 23, 31));

} // namespace
} // namespace irep
