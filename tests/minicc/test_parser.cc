/**
 * @file
 * MiniC parser tests: AST shapes for declarations, statements and
 * expressions, and parse-error handling.
 */

#include <gtest/gtest.h>

#include "minicc/parser.hh"
#include "support/logging.hh"

namespace irep::minicc
{
namespace
{

TEST(Parser, EmptyUnit)
{
    auto unit = parse("");
    EXPECT_TRUE(unit->globals.empty());
    EXPECT_TRUE(unit->funcs.empty());
}

TEST(Parser, GlobalDeclarations)
{
    auto unit = parse(
        "int x;\n"
        "int y = 5;\n"
        "char buf[10];\n"
        "int *p;\n"
        "int a, b = 2, c;\n");
    ASSERT_EQ(unit->globals.size(), 7u);
    EXPECT_EQ(unit->globals[0].name, "x");
    EXPECT_FALSE(unit->globals[0].init);
    EXPECT_TRUE(unit->globals[1].init);
    EXPECT_TRUE(unit->globals[2].type->isArray());
    EXPECT_EQ(unit->globals[2].type->arraySize, 10);
    EXPECT_TRUE(unit->globals[3].type->isPtr());
    EXPECT_EQ(unit->globals[5].name, "b");
    EXPECT_TRUE(unit->globals[5].init);
}

TEST(Parser, GlobalInitList)
{
    auto unit = parse("int t[4] = { 1, 2, 3 };\n");
    ASSERT_EQ(unit->globals.size(), 1u);
    EXPECT_TRUE(unit->globals[0].hasInitList);
    EXPECT_EQ(unit->globals[0].initList.size(), 3u);
}

TEST(Parser, GlobalStringInit)
{
    auto unit = parse("char msg[8] = \"hi\";\n");
    EXPECT_TRUE(unit->globals[0].hasStrInit);
    EXPECT_EQ(unit->globals[0].strInit, "hi");
}

TEST(Parser, FunctionWithParams)
{
    auto unit = parse("int add(int a, int b) { return a + b; }\n");
    ASSERT_EQ(unit->funcs.size(), 1u);
    const FuncDecl &f = unit->funcs[0];
    EXPECT_EQ(f.name, "add");
    ASSERT_EQ(f.params.size(), 2u);
    EXPECT_EQ(f.params[0].first, "a");
    EXPECT_TRUE(f.body);
    EXPECT_EQ(f.body->kind, StmtKind::Block);
}

TEST(Parser, VoidParameterList)
{
    auto unit = parse("int f(void) { return 0; }\n");
    EXPECT_TRUE(unit->funcs[0].params.empty());
}

TEST(Parser, ForwardDeclaration)
{
    auto unit = parse(
        "int f(int x);\n"
        "int f(int x) { return x; }\n");
    ASSERT_EQ(unit->funcs.size(), 2u);
    EXPECT_FALSE(unit->funcs[0].body);
    EXPECT_TRUE(unit->funcs[1].body);
}

TEST(Parser, StructDefinitionAndLayout)
{
    auto unit = parse(
        "struct point { int x; int y; char tag; };\n");
    const StructDef *def = unit->types.findStruct("point");
    ASSERT_NE(def, nullptr);
    ASSERT_EQ(def->members.size(), 3u);
    EXPECT_EQ(def->members[0].offset, 0);
    EXPECT_EQ(def->members[1].offset, 4);
    EXPECT_EQ(def->members[2].offset, 8);
    EXPECT_EQ(def->size, 12);   // padded to int alignment
}

TEST(Parser, SelfReferentialStructPointer)
{
    auto unit = parse(
        "struct node { int v; struct node *next; };\n");
    const StructDef *def = unit->types.findStruct("node");
    ASSERT_NE(def, nullptr);
    EXPECT_TRUE(def->members[1].type->isPtr());
    EXPECT_EQ(def->size, 8);
}

TEST(Parser, StatementKinds)
{
    auto unit = parse(
        "void f() {\n"
        "  int x;\n"
        "  if (x) x = 1; else x = 2;\n"
        "  while (x) x = x - 1;\n"
        "  do x = 1; while (x);\n"
        "  for (x = 0; x < 3; x = x + 1) { }\n"
        "  return;\n"
        "}\n");
    const auto &stmts = unit->funcs[0].body->stmts;
    ASSERT_EQ(stmts.size(), 6u);
    EXPECT_EQ(stmts[0]->kind, StmtKind::Decl);
    EXPECT_EQ(stmts[1]->kind, StmtKind::If);
    EXPECT_TRUE(stmts[1]->els);
    EXPECT_EQ(stmts[2]->kind, StmtKind::While);
    EXPECT_EQ(stmts[3]->kind, StmtKind::DoWhile);
    EXPECT_EQ(stmts[4]->kind, StmtKind::For);
    EXPECT_EQ(stmts[5]->kind, StmtKind::Return);
}

TEST(Parser, ForWithDeclInit)
{
    auto unit = parse("void f() { for (int i = 0; i < 9; i++) {} }\n");
    const Stmt &f = *unit->funcs[0].body->stmts[0];
    ASSERT_TRUE(f.init);
    EXPECT_EQ(f.init->kind, StmtKind::Decl);
    EXPECT_TRUE(f.cond);
    EXPECT_TRUE(f.inc);
}

TEST(Parser, PrecedenceShapesTree)
{
    auto unit = parse("int g() { return 1 + 2 * 3; }\n");
    const Expr &e = *unit->funcs[0].body->stmts[0]->expr;
    ASSERT_EQ(e.kind, ExprKind::Binary);
    EXPECT_EQ(e.op, "+");
    EXPECT_EQ(e.a->kind, ExprKind::IntLit);
    ASSERT_EQ(e.b->kind, ExprKind::Binary);
    EXPECT_EQ(e.b->op, "*");
}

TEST(Parser, AssignmentIsRightAssociative)
{
    auto unit = parse("int g() { int a; int b; a = b = 1; return a; }\n");
    const Expr &e = *unit->funcs[0].body->stmts[2]->expr;
    ASSERT_EQ(e.kind, ExprKind::Assign);
    EXPECT_EQ(e.b->kind, ExprKind::Assign);
}

TEST(Parser, UnaryChains)
{
    auto unit = parse("int g(int x) { return -~!x; }\n");
    const Expr &e = *unit->funcs[0].body->stmts[0]->expr;
    EXPECT_EQ(e.op, "-");
    EXPECT_EQ(e.a->op, "~");
    EXPECT_EQ(e.a->a->op, "!");
}

TEST(Parser, PostfixChains)
{
    auto unit = parse(
        "struct s { int m; };\n"
        "int g(struct s *p) { return p->m; }\n"
        "int h(int *a) { return a[1]; }\n");
    const Expr &arrow = *unit->funcs[0].body->stmts[0]->expr;
    EXPECT_EQ(arrow.kind, ExprKind::Member);
    EXPECT_TRUE(arrow.isArrow);
    const Expr &index = *unit->funcs[1].body->stmts[0]->expr;
    EXPECT_EQ(index.kind, ExprKind::Index);
}

TEST(Parser, CastVsParenthesizedExpr)
{
    auto unit = parse(
        "int g(int x) { return (int)x + (x); }\n");
    const Expr &e = *unit->funcs[0].body->stmts[0]->expr;
    EXPECT_EQ(e.a->kind, ExprKind::Cast);
    EXPECT_EQ(e.b->kind, ExprKind::Var);
}

TEST(Parser, SizeofType)
{
    auto unit = parse(
        "struct s { int a; int b; };\n"
        "int g() { return sizeof(struct s); }\n");
    const Expr &e = *unit->funcs[0].body->stmts[0]->expr;
    EXPECT_EQ(e.kind, ExprKind::SizeofType);
}

TEST(Parser, CallWithArguments)
{
    auto unit = parse(
        "int f(int a, int b) { return a; }\n"
        "int g() { return f(1, 2 + 3); }\n");
    const Expr &call = *unit->funcs[1].body->stmts[0]->expr;
    ASSERT_EQ(call.kind, ExprKind::Call);
    EXPECT_EQ(call.callee, "f");
    EXPECT_EQ(call.args.size(), 2u);
}

TEST(Parser, TernaryNests)
{
    auto unit = parse("int g(int x) { return x ? 1 : x ? 2 : 3; }\n");
    const Expr &e = *unit->funcs[0].body->stmts[0]->expr;
    ASSERT_EQ(e.kind, ExprKind::Cond);
    EXPECT_EQ(e.c->kind, ExprKind::Cond);
}

class ParseErrorTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ParseErrorTest, RaisesFatalError)
{
    EXPECT_THROW(parse(GetParam()), FatalError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParseErrorTest,
    ::testing::Values(
        "int;",
        "int f(",
        "int f() { return 1 }",
        "int f() { if }",
        "int f() { (1 + ; }",
        "int x = ;",
        "struct { int x; };",                   // anonymous struct
        "struct s { int x };",                  // missing ';'
        "struct s { struct s inner; };",        // struct contains self
        "int f(int a, int b, int c, int d, int e) { return 0; }",
        "int a[0];",                            // zero-size array
        "int a[x];",                            // non-literal size
        "void f() { int void; }",
        "int f() { for (;;) }",
        "struct unknown_fwd *g();x"));

TEST(ParseError, UnknownStructType)
{
    EXPECT_THROW(parse("struct nosuch x;"), FatalError);
}

} // namespace
} // namespace irep::minicc
