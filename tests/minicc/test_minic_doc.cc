/**
 * @file
 * Conformance suite for docs/minic.md: one executable snippet per
 * documented language feature, table-driven. If a rule in the
 * reference changes, the matching case here must change with it —
 * the table's `feature` strings name the section being pinned.
 */

#include <gtest/gtest.h>

#include "minicc_test_util.hh"

namespace irep
{
namespace
{

using test::runMiniC;

struct DocCase
{
    const char *feature;
    const char *source;
    int exitCode;
    const char *input = "";
    const char *output = "";
};

class MinicDocTest : public ::testing::TestWithParam<DocCase>
{
};

TEST_P(MinicDocTest, SnippetBehavesAsDocumented)
{
    const DocCase &c = GetParam();
    const auto r = runMiniC(c.source, c.input);
    EXPECT_TRUE(r.halted) << c.feature;
    EXPECT_EQ(r.exitCode, c.exitCode) << c.feature;
    EXPECT_EQ(r.output, c.output) << c.feature;
}

INSTANTIATE_TEST_SUITE_P(
    Types, MinicDocTest,
    ::testing::Values(
        DocCase{"int is 32-bit two's complement; >> is arithmetic",
                "int main(void) { return ((0 - 16) >> 2) == (0 - 4); }",
                1},
        DocCase{"char is unsigned 0..255; stores truncate",
                "int main(void) { char c; c = 0 - 1; return c; }",
                255},
        DocCase{"pointer arithmetic scales by sizeof(T)",
                "int a[4] = {1, 2, 3, 4};\n"
                "int main(void) { int *p = a; return *(p + 2); }",
                3},
        DocCase{"1-D arrays with literal size",
                "int main(void) { int t[8]; t[7] = 9; return t[7]; }",
                9},
        DocCase{"struct members aligned; self-pointer allowed",
                "struct node { char tag; int v; struct node *next; };\n"
                "struct node a; struct node b;\n"
                "int main(void) { a.next = &b; b.v = 6;\n"
                "                 return a.next->v + (sizeof(struct node) == 12); }",
                7},
        DocCase{"sizeof(type) is a compile-time constant",
                "int main(void) { return sizeof(int) + sizeof(char) +\n"
                "                        sizeof(int *); }",
                9},
        DocCase{"(char) cast masks to the low byte",
                "int main(void) { return (char)0x1ff; }",
                0xff},
        DocCase{"scalar casts between pointer and int",
                "int g = 42;\n"
                "int main(void) { int *p = (int *)(int)&g; return *p; }",
                42}));

INSTANTIATE_TEST_SUITE_P(
    Declarations, MinicDocTest,
    ::testing::Values(
        DocCase{"globals are zero-initialized",
                "int g; int t[4]; char c;\n"
                "int main(void) { return g + t[3] + c; }",
                0},
        DocCase{"global constant-expression initializer",
                "int n = 5 * 4 + 1;\n"
                "int main(void) { return n; }",
                21},
        DocCase{"a global NAME initializes a pointer to its address",
                "int g = 8;\n"
                "int *p = g;\n"
                "int main(void) { return *p; }",
                8},
        DocCase{"array initializer list, rest zero-filled",
                "int tab[8] = {1, 2, 3};\n"
                "int main(void) { return tab[2] + tab[7]; }",
                3},
        DocCase{"char array from string literal, zero-padded",
                "char msg[16] = \"hello\";\n"
                "int main(void) { return msg[4] + msg[5]; }",
                'o'},
        DocCase{"char * from a pooled string literal",
                "char *s = \"hello\";\n"
                "int main(void) { return s[1]; }",
                'e'},
        DocCase{"locals declared in any block incl. for-init",
                "int main(void) { int s; s = 0;\n"
                "  for (int i = 0; i < 5; i++) { int d; d = i; s = s + d; }\n"
                "  return s; }",
                10}));

INSTANTIATE_TEST_SUITE_P(
    Functions, MinicDocTest,
    ::testing::Values(
        DocCase{"up to 4 scalar parameters",
                "int f(int a, char b, int *c, int d) {\n"
                "  return a + b + *c + d; }\n"
                "int g = 3;\n"
                "int main(void) { return f(1, 2, &g, 4); }",
                10},
        DocCase{"forward declarations",
                "int twice(int x);\n"
                "int main(void) { return twice(21); }\n"
                "int twice(int x) { return x * 2; }",
                42},
        DocCase{"mutual recursion",
                "int odd(int n);\n"
                "int even(int n) { if (n == 0) { return 1; }\n"
                "                  return odd(n - 1); }\n"
                "int odd(int n) { if (n == 0) { return 0; }\n"
                "                 return even(n - 1); }\n"
                "int main(void) { return even(10) + odd(7); }",
                2},
        DocCase{"structs pass by pointer",
                "struct p { int x; int y; };\n"
                "int sum(struct p *v) { return v->x + v->y; }\n"
                "int main(void) { struct p v; v.x = 30; v.y = 12;\n"
                "                 return sum(&v); }",
                42}));

INSTANTIATE_TEST_SUITE_P(
    Statements, MinicDocTest,
    ::testing::Values(
        DocCase{"if/else, while, do-while, break, continue",
                "int main(void) { int n; int s; n = 0; s = 0;\n"
                "  while (1) { n++; if (n > 10) { break; }\n"
                "              if (n % 2) { continue; } s = s + n; }\n"
                "  do { s++; } while (0);\n"
                "  if (s > 30) { return s; } else { return 0; }\n"
                "}",
                31},
        DocCase{"?: and compound assignment and ++/--",
                "int main(void) { int x; x = 5; x += 3; x <<= 2;\n"
                "  x--; ++x; return x > 30 ? x : 0; }",
                32},
        DocCase{"&& and || short-circuit",
                "int g = 0;\n"
                "int touch(void) { g = 1; return 1; }\n"
                "int main(void) { int a; a = 0 && touch();\n"
                "  int b; b = 1 || touch();\n"
                "  return g * 100 + a * 10 + b; }",
                1}));

INSTANTIATE_TEST_SUITE_P(
    Semantics, MinicDocTest,
    ::testing::Values(
        DocCase{"division truncates toward zero; x/0 and x%0 yield 0",
                "int main(void) { return ((0 - 7) / 2 == (0 - 3)) +\n"
                "                        (7 / 0 == 0) + (7 % 0 == 0); }",
                3},
        DocCase{"signed overflow wraps",
                "int main(void) { return 0x7fffffff + 1 == 0x80000000; }",
                1},
        DocCase{"pointer comparisons; if (p) tests null",
                "int g;\n"
                "int main(void) { int *p = &g; int *q = 0;\n"
                "  int r; r = 0; if (p) { r = r + 1; } if (q) { r = r + 8; }\n"
                "  return r + (p != 0) + (q == 0); }",
                3},
        DocCase{"identical string literals are interned",
                "int main(void) { char *a = \"dup\"; char *b = \"dup\";\n"
                "                 return a == b; }",
                1}));

INSTANTIATE_TEST_SUITE_P(
    Intrinsics, MinicDocTest,
    ::testing::Values(
        DocCase{"__read fills a buffer, 0 at EOF",
                "int main(void) { char b[4]; int n; n = __read(b, 4);\n"
                "  int m; m = __read(b, 4); return n * 10 + m; }",
                20, "ab"},
        DocCase{"__write appends to the output stream",
                "char msg[3] = \"ok\";\n"
                "int main(void) { return __write(msg, 2); }",
                2, "", "ok"},
        DocCase{"__sbrk grows the heap, returns the old break",
                "int main(void) { int *p = (int *)__sbrk(64);\n"
                "  int *q = (int *)__sbrk(64);\n"
                "  p[0] = 7; return ((char *)q - (char *)p == 64) + p[0]; }",
                8},
        DocCase{"__exit terminates with the given code",
                "int main(void) { __exit(5); return 1; }",
                5}));

} // namespace
} // namespace irep
