/**
 * @file
 * MiniC semantic analysis tests: symbol resolution, type checking,
 * lvalue rules, intrinsics, and constant evaluation.
 */

#include <gtest/gtest.h>

#include "minicc/parser.hh"
#include "minicc/sema.hh"
#include "support/logging.hh"

namespace irep::minicc
{
namespace
{

std::unique_ptr<Unit>
analyzed(const std::string &source)
{
    auto unit = parse(source);
    analyze(*unit);
    return unit;
}

TEST(Sema, ResolvesLocalsAndParams)
{
    auto unit = analyzed(
        "int f(int a) { int b; b = a; return b; }\n");
    const FuncDecl &f = unit->funcs[0];
    ASSERT_EQ(f.paramSyms.size(), 1u);
    ASSERT_EQ(f.locals.size(), 1u);
    EXPECT_EQ(f.paramSyms[0]->paramIndex, 0);
    EXPECT_EQ(f.locals[0]->name, "b");
}

TEST(Sema, InnerScopeShadowsOuter)
{
    EXPECT_NO_THROW(analyzed(
        "int f() { int x; x = 1; { int x; x = 2; } return x; }\n"));
}

TEST(Sema, TypesAnnotated)
{
    auto unit = analyzed(
        "int g(int *p) { return *p + 1; }\n");
    const Expr &ret = *unit->funcs[0].body->stmts[0]->expr;
    ASSERT_NE(ret.type, nullptr);
    EXPECT_TRUE(ret.type->isInt());
    EXPECT_TRUE(ret.a->type->isInt());      // *p
    EXPECT_TRUE(ret.a->isLValue);
}

TEST(Sema, PointerArithmeticTypes)
{
    auto unit = analyzed(
        "int g(int *p, int n) { return *(p + n); }\n");
    const Expr &deref = *unit->funcs[0].body->stmts[0]->expr;
    EXPECT_TRUE(deref.a->type->isPtr());    // p + n is int*
}

TEST(Sema, ArrayDecaysInCalls)
{
    EXPECT_NO_THROW(analyzed(
        "int f(int *p) { return p[0]; }\n"
        "int buf[4];\n"
        "int g() { return f(buf); }\n"));
}

TEST(Sema, AddressOfMarksVariable)
{
    auto unit = analyzed(
        "int g() { int x; int *p; p = &x; *p = 3; return x; }\n");
    EXPECT_TRUE(unit->funcs[0].locals[0]->addrTaken);
    EXPECT_FALSE(unit->funcs[0].locals[1]->addrTaken);
}

TEST(Sema, AggregatesAreAlwaysAddressed)
{
    auto unit = analyzed(
        "struct s { int a; };\n"
        "int g() { struct s v; int arr[3]; v.a = 1; arr[0] = 2;\n"
        "          return v.a + arr[0]; }\n");
    EXPECT_TRUE(unit->funcs[0].locals[0]->addrTaken);
    EXPECT_TRUE(unit->funcs[0].locals[1]->addrTaken);
}

TEST(Sema, StringLiteralsArePooledAndDeduplicated)
{
    auto unit = analyzed(
        "int f(char *s) { return *s; }\n"
        "int g() { return f(\"abc\") + f(\"abc\") + f(\"xy\"); }\n");
    EXPECT_EQ(unit->stringPool.size(), 2u);
}

TEST(Sema, IntrinsicsArePredeclared)
{
    EXPECT_NO_THROW(analyzed(
        "int main() { __exit(0); return 0; }\n"));
}

TEST(Sema, NullPointerConstantAssignable)
{
    EXPECT_NO_THROW(analyzed(
        "int g() { int *p; p = 0; if (p == 0) return 1; return 0; }\n"));
}

class SemaErrorTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SemaErrorTest, RaisesFatalError)
{
    EXPECT_THROW(analyzed(GetParam()), FatalError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadPrograms, SemaErrorTest,
    ::testing::Values(
        // Names.
        "int f() { return missing; }",
        "int f() { return g(); }",
        "int f() { int x; int x; return 0; }",
        "int x; int x;",
        "int f() { return 0; } int f() { return 1; }",
        "int f(); ",                                // declared, undefined
        // Types.
        "int f() { int *p; p = 5; return 0; }",
        "int f() { int x; x = &x; return 0; }",     // fails: int = int*
        "int f() { return 1 ? (int*)0 : 1; }",  // ptr vs non-null int
        "struct s { int a; }; int f() { struct s v; return v + 1; }",
        "struct s { int a; }; int f() { struct s v; v = v; return 0; }",
        "int f() { int x; return x.member; }",
        "struct s { int a; }; int f(struct s *p) { return p->b; }",
        "int f(int *p) { return *p[0][0]; }",
        "int f() { return *5; }",
        "int f() { void v; return 0; }",
        // LValues.
        "int f() { 5 = 3; return 0; }",
        "int f() { int x; &(x + 1); return 0; }",
        "int f() { int x; (x + 1)++; return 0; }",
        // Calls.
        "int f(int a) { return a; } int g() { return f(); }",
        "int f(int a) { return a; } int g() { return f(1, 2); }",
        "int f(int *p) { return 0; } int g() { return f(5); }",
        // Control.
        "int f() { break; return 0; }",
        "int f() { continue; return 0; }",
        "void f() { return 5; }",
        "int f() { return; }",
        // Globals.
        "int x = y + 1;",   // label arithmetic is not constant
        "int g; int f() { return 0; } int arr[2] = {1, f()};",
        "struct s { int a; }; struct s v = 5;"));

TEST(SemaError, ConditionalPointerIntMismatch)
{
    EXPECT_THROW(
        analyzed("int f(int *p) { return p ? p : 5; }"),
        FatalError);
}

// ---------------------------------------------------------------------
// Constant evaluation (global initializers).
// ---------------------------------------------------------------------

TEST(ConstEval, ArithmeticFolds)
{
    EXPECT_NO_THROW(analyzed(
        "int a = 1 + 2 * 3;\n"
        "int b = -(4 - 7);\n"
        "int c = (1 << 8) | 0x0f;\n"
        "int d = ~0;\n"
        "int e = 100 / 7 % 5;\n"));
}

TEST(ConstEval, Values)
{
    auto unit = parse("int x = 0;");
    (void)unit;
    Expr lit;
    lit.kind = ExprKind::IntLit;
    lit.intValue = 6;
    ConstVal v = evalConst(lit);
    EXPECT_FALSE(v.isLabel);
    EXPECT_EQ(v.num, 6);
}

TEST(ConstEval, LabelReference)
{
    Expr ref;
    ref.kind = ExprKind::Var;
    ref.strValue = "target";
    ConstVal v = evalConst(ref);
    EXPECT_TRUE(v.isLabel);
    EXPECT_EQ(v.label, "g_target");
}

TEST(ConstEval, NonConstantThrows)
{
    Expr call;
    call.kind = ExprKind::Call;
    EXPECT_THROW(evalConst(call), FatalError);
}

} // namespace
} // namespace irep::minicc
