/**
 * @file
 * MiniC lexer tests: token kinds, literals, comments, escapes,
 * operators, and error reporting.
 */

#include <gtest/gtest.h>

#include "minicc/lexer.hh"
#include "support/logging.hh"

namespace irep::minicc
{
namespace
{

TEST(Lexer, EmptySourceYieldsEnd)
{
    const auto tokens = lex("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_TRUE(tokens[0].is(Tok::End));
}

TEST(Lexer, IdentifiersAndKeywords)
{
    const auto tokens = lex("int foo _bar x9 while");
    EXPECT_TRUE(tokens[0].isKeyword("int"));
    EXPECT_TRUE(tokens[1].is(Tok::Ident));
    EXPECT_EQ(tokens[1].text, "foo");
    EXPECT_EQ(tokens[2].text, "_bar");
    EXPECT_EQ(tokens[3].text, "x9");
    EXPECT_TRUE(tokens[4].isKeyword("while"));
}

TEST(Lexer, DecimalAndHexLiterals)
{
    const auto tokens = lex("0 42 0x10 0xff 0XAB");
    EXPECT_EQ(tokens[0].value, 0);
    EXPECT_EQ(tokens[1].value, 42);
    EXPECT_EQ(tokens[2].value, 16);
    EXPECT_EQ(tokens[3].value, 255);
    EXPECT_EQ(tokens[4].value, 0xab);
}

TEST(Lexer, CharLiterals)
{
    const auto tokens = lex("'a' '\\n' '\\0' '\\\\' '\\''");
    EXPECT_EQ(tokens[0].value, 'a');
    EXPECT_EQ(tokens[1].value, '\n');
    EXPECT_EQ(tokens[2].value, 0);
    EXPECT_EQ(tokens[3].value, '\\');
    EXPECT_EQ(tokens[4].value, '\'');
}

TEST(Lexer, StringLiteralsDecodeEscapes)
{
    const auto tokens = lex("\"a\\tb\\n\"");
    ASSERT_TRUE(tokens[0].is(Tok::StrLit));
    EXPECT_EQ(tokens[0].text, "a\tb\n");
}

TEST(Lexer, LineAndBlockComments)
{
    const auto tokens = lex(
        "a // comment\n"
        "/* multi\n line */ b");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
    EXPECT_EQ(tokens[1].line, 3);
}

TEST(Lexer, MultiCharOperatorsAreGreedy)
{
    const auto tokens = lex("a<<=b>>c<=d==e&&f++g->h");
    std::vector<std::string> punct;
    for (const auto &t : tokens) {
        if (t.is(Tok::Punct))
            punct.push_back(t.text);
    }
    EXPECT_EQ(punct, (std::vector<std::string>{
                         "<<=", ">>", "<=", "==", "&&", "++", "->"}));
}

TEST(Lexer, SingleCharOperators)
{
    const auto tokens = lex("( ) [ ] { } ; , . ? : ~ !");
    for (size_t i = 0; i + 1 < tokens.size(); ++i)
        EXPECT_TRUE(tokens[i].is(Tok::Punct)) << i;
}

TEST(Lexer, LineNumbersTrackNewlines)
{
    const auto tokens = lex("a\nb\n\nc");
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[1].line, 2);
    EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, Errors)
{
    EXPECT_THROW(lex("\"unterminated"), FatalError);
    EXPECT_THROW(lex("'x"), FatalError);
    EXPECT_THROW(lex("'ab'"), FatalError);
    EXPECT_THROW(lex("/* open"), FatalError);
    EXPECT_THROW(lex("@"), FatalError);
    EXPECT_THROW(lex("\"bad \\q escape\""), FatalError);
    EXPECT_THROW(lex("\"newline\nin string\""), FatalError);
}

TEST(Lexer, ErrorsCarryLineNumbers)
{
    try {
        lex("ok\nok\n@");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace irep::minicc
