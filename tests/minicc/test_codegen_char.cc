/**
 * @file
 * Regression tests for char-narrowing codegen bugs found by the
 * differential fuzzer (`irep fuzz`). Each case is the distilled form
 * of a minimized repro: the value *yielded* by a char assignment, the
 * value *returned* from a char function, and a char parameter homed in
 * a callee-saved register all failed to narrow to 0..255, so the raw
 * 32-bit value leaked into surrounding arithmetic.
 */

#include <gtest/gtest.h>

#include "minicc_test_util.hh"

namespace irep
{
namespace
{

using test::runMiniC;

// Simple assignment to a memory-homed char (array element) must yield
// the narrowed value, not the raw right-hand side.
TEST(CodegenChar, AssignmentToArrayElementYieldsNarrowedValue)
{
    const auto r = runMiniC(
        "char a[4];\n"
        "int main(void) { int v; v = (a[1] = 300); return v; }");
    EXPECT_EQ(r.exitCode, 44);
}

// Same bug, register-homed local: the store itself was masked but the
// expression value was not.
TEST(CodegenChar, AssignmentToRegisterCharYieldsNarrowedValue)
{
    const auto r = runMiniC(
        "int main(void) { char c; c = 0;\n"
        "  int v; v = (c = 0x1ff) + 1; return v; }");
    EXPECT_EQ(r.exitCode, 0x100);
}

// Chained through mix-style arithmetic, as the fuzzer found it
// (minimized from fuzz seed 36).
TEST(CodegenChar, AssignmentValueInsideLargerExpression)
{
    const auto r = runMiniC(
        "char g[16];\n"
        "int acc = 0;\n"
        "void mix(int v) { acc = (acc * 33) ^ v; }\n"
        "int main(void) { mix((g[2]++) - (g[3] = acc - 12345));\n"
        "                 return acc & 255; }");
    const auto expected = ((0 * 33) ^ (0 - ((0 - 12345) & 0xff))) & 255;
    EXPECT_EQ(r.exitCode, expected);
}

// `return expr;` from a char-returning function must narrow $v0
// (minimized from fuzz seed 2: `char h(...) { return big; }`).
TEST(CodegenChar, CharReturnValueIsNarrowed)
{
    const auto r = runMiniC(
        "char f(void) { return 0x7fffffff; }\n"
        "int main(void) { return f() == 255; }");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(CodegenChar, CharReturnOfNegativeValue)
{
    const auto r = runMiniC(
        "char f(int x) { return x - 1; }\n"
        "int main(void) { return f(0); }");
    EXPECT_EQ(r.exitCode, 255);
}

// A char parameter homed in an s-register received the caller's raw
// word; stack-homed parameters already narrowed via sb/lbu. Both
// paths must agree.
TEST(CodegenChar, CharParameterInRegisterIsNarrowed)
{
    const auto r = runMiniC(
        "int f(char c) { return c; }\n"
        "int main(void) { return f(300) == 44; }");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(CodegenChar, CharParameterOnStackIsNarrowed)
{
    // Taking the address forces the parameter out of registers.
    const auto r = runMiniC(
        "int f(char c) { char *p = &c; return *p; }\n"
        "int main(void) { return f(300) == 44; }");
    EXPECT_EQ(r.exitCode, 1);
}

// Compound assignment and ++/-- were already narrowing; pin that too.
TEST(CodegenChar, CompoundAssignNarrows)
{
    const auto r = runMiniC(
        "int main(void) { char c; c = 200; c += 100;\n"
        "                 return (c += 0) == 44; }");
    EXPECT_EQ(r.exitCode, 1);
}

TEST(CodegenChar, IncrementWrapsAtByte)
{
    const auto r = runMiniC(
        "int main(void) { char c; c = 255; c++; return c == 0; }");
    EXPECT_EQ(r.exitCode, 1);
}

} // namespace
} // namespace irep
