/**
 * @file
 * Unit tests for register naming and ABI predicates.
 */

#include <gtest/gtest.h>

#include "isa/registers.hh"

namespace irep::isa
{
namespace
{

TEST(Registers, ConventionalNames)
{
    EXPECT_EQ(regName(0), "$zero");
    EXPECT_EQ(regName(regAT), "$at");
    EXPECT_EQ(regName(regV0), "$v0");
    EXPECT_EQ(regName(regA0), "$a0");
    EXPECT_EQ(regName(regT0), "$t0");
    EXPECT_EQ(regName(regS0), "$s0");
    EXPECT_EQ(regName(regGP), "$gp");
    EXPECT_EQ(regName(regSP), "$sp");
    EXPECT_EQ(regName(regFP), "$fp");
    EXPECT_EQ(regName(regRA), "$ra");
}

TEST(Registers, OutOfRangeNameIsSafe)
{
    EXPECT_EQ(regName(32), "$??");
    EXPECT_EQ(regName(1000), "$??");
}

TEST(Registers, ParseRoundTripsEveryRegister)
{
    for (unsigned r = 0; r < numIntRegs; ++r) {
        EXPECT_EQ(parseRegName(regName(r)), int(r)) << regName(r);
    }
}

TEST(Registers, ParseNumericForms)
{
    EXPECT_EQ(parseRegName("$0"), 0);
    EXPECT_EQ(parseRegName("$31"), 31);
    EXPECT_EQ(parseRegName("$29"), int(regSP));
    EXPECT_EQ(parseRegName("$32"), -1);
}

TEST(Registers, ParseWithoutDollar)
{
    EXPECT_EQ(parseRegName("sp"), int(regSP));
    EXPECT_EQ(parseRegName("a0"), int(regA0));
}

TEST(Registers, ParseAliases)
{
    EXPECT_EQ(parseRegName("$s8"), int(regFP));
}

TEST(Registers, ParseRejectsGarbage)
{
    EXPECT_EQ(parseRegName(""), -1);
    EXPECT_EQ(parseRegName("$"), -1);
    EXPECT_EQ(parseRegName("$xy"), -1);
    EXPECT_EQ(parseRegName("$1x"), -1);
}

TEST(Registers, CalleeSavedSet)
{
    for (unsigned r = regS0; r <= regS7; ++r)
        EXPECT_TRUE(isCalleeSaved(r)) << r;
    EXPECT_TRUE(isCalleeSaved(regFP));
    EXPECT_FALSE(isCalleeSaved(regT0));
    EXPECT_FALSE(isCalleeSaved(regA0));
    EXPECT_FALSE(isCalleeSaved(regRA));
    EXPECT_FALSE(isCalleeSaved(regSP));
}

TEST(Registers, ArgRegSet)
{
    EXPECT_TRUE(isArgReg(regA0));
    EXPECT_TRUE(isArgReg(regA3));
    EXPECT_FALSE(isArgReg(regV0));
    EXPECT_FALSE(isArgReg(regT0));
}

} // namespace
} // namespace irep::isa
