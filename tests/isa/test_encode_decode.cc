/**
 * @file
 * Encode/decode tests: binary round-trips across the whole opcode
 * table, field extraction, OpInfo consistency, and disassembly
 * spot checks.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace irep::isa
{
namespace
{

Instruction
makeR(Op op, int rd, int rs, int rt, int shamt = 0)
{
    Instruction i;
    i.op = op;
    i.rd = uint8_t(rd);
    i.rs = uint8_t(rs);
    i.rt = uint8_t(rt);
    i.shamt = uint8_t(shamt);
    return i;
}

Instruction
makeI(Op op, int rt, int rs, int32_t imm)
{
    Instruction i;
    i.op = op;
    i.rt = uint8_t(rt);
    i.rs = uint8_t(rs);
    i.imm = imm;
    return i;
}

// ---------------------------------------------------------------------
// Round-trip across all ops (property-style TEST_P sweep).
// ---------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundTripTest, EncodeDecodeIsIdentity)
{
    const Op op = Op(GetParam());
    const OpInfo &info = opInfo(op);

    Instruction inst;
    inst.op = op;
    if (info.format == Format::J) {
        inst.target = 0x123456;
    } else if (info.format == Format::I) {
        inst.rs = 7;
        inst.rt = 9;
        inst.imm = info.unsignedImm ? 0xabcd : -1234;
    } else {
        inst.rs = 3;
        inst.rt = 4;
        inst.rd = info.writesRd ? 5 : 0;
        inst.shamt = (op == Op::SLL || op == Op::SRL || op == Op::SRA)
            ? 13 : 0;
    }
    // REGIMM ops carry their selector in rt.
    if (op == Op::BLTZ || op == Op::BGEZ)
        inst.rt = 0;

    const uint32_t word = encode(inst);
    const Instruction back = decode(word);

    EXPECT_EQ(back.op, inst.op) << info.mnemonic;
    if (info.format == Format::J) {
        EXPECT_EQ(back.target, inst.target);
    } else if (info.format == Format::I) {
        EXPECT_EQ(back.rs, inst.rs);
        if (op != Op::BLTZ && op != Op::BGEZ) {
            EXPECT_EQ(back.rt, inst.rt);
        }
        EXPECT_EQ(back.imm, inst.imm) << info.mnemonic;
    } else {
        EXPECT_EQ(back.rs, inst.rs);
        EXPECT_EQ(back.rt, inst.rt);
        EXPECT_EQ(back.rd, inst.rd);
        EXPECT_EQ(back.shamt, inst.shamt);
    }
    // And encoding the decode gives the same word.
    EXPECT_EQ(encode(back), word) << info.mnemonic;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, RoundTripTest,
    ::testing::Range(0, int(Op::NUM_OPS)),
    [](const ::testing::TestParamInfo<int> &info) {
        return std::string(opInfo(Op(info.param)).mnemonic);
    });

// ---------------------------------------------------------------------
// Specific encodings against the MIPS manual.
// ---------------------------------------------------------------------

TEST(Decode, KnownWords)
{
    // addu $v0, $a0, $a1 = 000000 00100 00101 00010 00000 100001
    const Instruction addu = decode(0x00851021u);
    EXPECT_EQ(addu.op, Op::ADDU);
    EXPECT_EQ(addu.rs, regA0);
    EXPECT_EQ(addu.rt, regA1);
    EXPECT_EQ(addu.rd, regV0);

    // lw $t0, 16($sp) = 100011 11101 01000 0000000000010000
    const Instruction lw = decode(0x8fa80010u);
    EXPECT_EQ(lw.op, Op::LW);
    EXPECT_EQ(lw.rs, regSP);
    EXPECT_EQ(lw.rt, regT0);
    EXPECT_EQ(lw.imm, 16);

    // jal 0x00400000 -> target field 0x100000
    const Instruction jal = decode(0x0c100000u);
    EXPECT_EQ(jal.op, Op::JAL);
    EXPECT_EQ(jal.target, 0x100000u);

    // syscall
    EXPECT_EQ(decode(0x0000000cu).op, Op::SYSCALL);
    // nop == sll $zero, $zero, 0
    EXPECT_EQ(decode(0x00000000u).op, Op::SLL);
}

TEST(Decode, SignExtension)
{
    // addiu $t0, $zero, -1
    const Instruction i = decode(0x2408ffffu);
    EXPECT_EQ(i.op, Op::ADDIU);
    EXPECT_EQ(i.imm, -1);
}

TEST(Decode, ZeroExtension)
{
    // ori $t0, $zero, 0xffff
    const Instruction i = decode(0x3408ffffu);
    EXPECT_EQ(i.op, Op::ORI);
    EXPECT_EQ(i.imm, 0xffff);
}

TEST(Decode, InvalidOpcodeYieldsInvalid)
{
    // Primary opcode 0x3f is unused in our subset.
    EXPECT_FALSE(decode(0xfc000000u).valid());
    // funct 0x3f under opcode 0 is unused.
    EXPECT_FALSE(decode(0x0000003fu).valid());
}

// ---------------------------------------------------------------------
// OpInfo consistency checks across the table.
// ---------------------------------------------------------------------

TEST(OpInfo, LoadsAndStoresHaveSizes)
{
    for (int o = 0; o < int(Op::NUM_OPS); ++o) {
        const OpInfo &info = opInfo(Op(o));
        if (info.isLoad || info.isStore) {
            EXPECT_TRUE(info.memBytes == 1 || info.memBytes == 2 ||
                        info.memBytes == 4)
                << info.mnemonic;
        } else {
            EXPECT_EQ(info.memBytes, 0) << info.mnemonic;
        }
    }
}

TEST(OpInfo, LoadsWriteRtStoresRead)
{
    EXPECT_TRUE(opInfo(Op::LW).writesRt);
    EXPECT_TRUE(opInfo(Op::LW).readsRs);
    EXPECT_FALSE(opInfo(Op::LW).readsRt);
    EXPECT_TRUE(opInfo(Op::SW).readsRt);
    EXPECT_TRUE(opInfo(Op::SW).readsRs);
    EXPECT_FALSE(opInfo(Op::SW).writesRt);
}

TEST(OpInfo, CallsAndJumps)
{
    EXPECT_TRUE(opInfo(Op::JAL).isCall);
    EXPECT_TRUE(opInfo(Op::JALR).isCall);
    EXPECT_TRUE(opInfo(Op::JR).isJump);
    EXPECT_FALSE(opInfo(Op::JR).isCall);
    EXPECT_TRUE(opInfo(Op::BEQ).isBranch);
    EXPECT_FALSE(opInfo(Op::BEQ).isJump);
}

TEST(OpInfo, MnemonicLookupRoundTrips)
{
    for (int o = 0; o < int(Op::NUM_OPS); ++o) {
        const OpInfo &info = opInfo(Op(o));
        EXPECT_EQ(opFromMnemonic(info.mnemonic), Op(o))
            << info.mnemonic;
    }
    EXPECT_EQ(opFromMnemonic("bogus"), Op::INVALID);
    EXPECT_EQ(opFromMnemonic("li"), Op::INVALID);   // pseudo, not base
}

// ---------------------------------------------------------------------
// destReg / srcReg accessors.
// ---------------------------------------------------------------------

TEST(Instruction, DestReg)
{
    EXPECT_EQ(makeR(Op::ADDU, 5, 3, 4).destReg(), 5);
    EXPECT_EQ(makeI(Op::ADDIU, 9, 7, 1).destReg(), 9);
    EXPECT_EQ(makeI(Op::SW, 9, 7, 0).destReg(), -1);
    EXPECT_EQ(makeI(Op::BEQ, 9, 7, 0).destReg(), -1);

    Instruction jal;
    jal.op = Op::JAL;
    EXPECT_EQ(jal.destReg(), int(regRA));
}

TEST(Instruction, SrcRegs)
{
    const Instruction addu = makeR(Op::ADDU, 5, 3, 4);
    EXPECT_EQ(addu.numSrcRegs(), 2);
    EXPECT_EQ(addu.srcReg(0), 3);
    EXPECT_EQ(addu.srcReg(1), 4);

    const Instruction sll = makeR(Op::SLL, 5, 0, 4, 2);
    EXPECT_EQ(sll.numSrcRegs(), 1);
    EXPECT_EQ(sll.srcReg(0), 4);    // shifts read rt only

    Instruction jal;
    jal.op = Op::JAL;
    EXPECT_EQ(jal.numSrcRegs(), 0);
}

// ---------------------------------------------------------------------
// Disassembly spot checks.
// ---------------------------------------------------------------------

TEST(Disassemble, Samples)
{
    EXPECT_EQ(disassemble(makeR(Op::ADDU, regV0, regA0, regA1), 0),
              "addu    $v0, $a0, $a1");
    EXPECT_EQ(disassemble(makeI(Op::LW, regT0, regSP, 16), 0),
              "lw      $t0, 16($sp)");
    EXPECT_EQ(disassemble(decode(0x0000000cu), 0), "syscall");

    // Branch target is pc-relative.
    Instruction beq = makeI(Op::BEQ, regZero, regZero, 3);
    beq.rs = regZero;
    const std::string text = disassemble(beq, 0x400000);
    EXPECT_NE(text.find("0x400010"), std::string::npos) << text;
}

TEST(Disassemble, InvalidInstruction)
{
    Instruction bad;
    EXPECT_EQ(disassemble(bad, 0), "<invalid>");
}

} // namespace
} // namespace irep::isa
