/**
 * @file
 * Config-keyed cache tests: path naming, strict IREP_TRACE_DIR
 * parsing, and openCached()'s miss/hit/invalidation behaviour —
 * including that a corrupt cached file is a miss (re-record), never a
 * crash and never a silent replay.
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "trace_io/cache.hh"
#include "trace_io/format.hh"
#include "trace_test_util.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

namespace fs = std::filesystem;

class TraceCache : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-test-case directory: ctest runs each case as its own
        // process, concurrently, and they must not share files.
        dir_ = testing::TempDir() + "trace_cache_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
        unsetenv("IREP_TRACE_DIR");
    }

    std::string dir_;
};

TEST_F(TraceCache, PathEncodesEveryKeyComponent)
{
    const std::string base =
        trace_io::cachePath(dir_, "li", 0x1234, 1000, 4000);
    EXPECT_NE(base.find("li"), std::string::npos);
    EXPECT_NE(base.find("s1000"), std::string::npos);
    EXPECT_NE(base.find("w4000"), std::string::npos);

    // Changing any key component must change the file name, so stale
    // entries can never be opened under a new key.
    EXPECT_NE(base, trace_io::cachePath(dir_, "li", 0x1235, 1000,
                                        4000));
    EXPECT_NE(base, trace_io::cachePath(dir_, "li", 0x1234, 1001,
                                        4000));
    EXPECT_NE(base, trace_io::cachePath(dir_, "li", 0x1234, 1000,
                                        4001));
    EXPECT_NE(base, trace_io::cachePath(dir_, "go", 0x1234, 1000,
                                        4000));
}

TEST_F(TraceCache, SanitizeNameKeepsPathsFlat)
{
    EXPECT_EQ(trace_io::sanitizeName("compress"), "compress");
    EXPECT_EQ(trace_io::sanitizeName("../a b/c.mc"), ".._a_b_c.mc");
    EXPECT_EQ(trace_io::sanitizeName(""), "trace");
}

TEST_F(TraceCache, CacheDirUnsetOrEmptyDisables)
{
    unsetenv("IREP_TRACE_DIR");
    EXPECT_EQ(trace_io::cacheDir(), "");
    setenv("IREP_TRACE_DIR", "", 1);
    EXPECT_EQ(trace_io::cacheDir(), "");
}

TEST_F(TraceCache, CacheDirCreatesAndStrictlyParses)
{
    const std::string nested = dir_ + "/a/b";
    setenv("IREP_TRACE_DIR", nested.c_str(), 1);
    EXPECT_EQ(trace_io::cacheDir(), nested);
    EXPECT_TRUE(fs::is_directory(nested));

    // A path that cannot be a directory is the user's error: fatal,
    // not a silent fall-back to uncached runs.
    const std::string blocked = dir_ + "/file";
    std::ofstream(blocked).put('x');
    const std::string bad = blocked + "/sub";
    setenv("IREP_TRACE_DIR", bad.c_str(), 1);
    EXPECT_THROW(trace_io::cacheDir(), FatalError);
}

TEST_F(TraceCache, MissThenHitThenKeyInvalidation)
{
    const auto &w = workloads::workloadByName("li");
    const uint64_t identity =
        trace_io::identityHash(workloads::buildProgram(w), w.input);
    const std::string path =
        trace_io::cachePath(dir_, "li", identity, 0, 40'000);

    EXPECT_EQ(trace_io::openCached(path, identity, 0, 40'000),
              nullptr);

    test::recordWorkload("li", path, 40'000);
    auto reader = trace_io::openCached(path, identity, 0, 40'000);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->header().identity, identity);

    // Same file, different expected key: stale, so a miss.
    EXPECT_EQ(trace_io::openCached(path, identity + 1, 0, 40'000),
              nullptr);
    EXPECT_EQ(trace_io::openCached(path, identity, 1, 40'000),
              nullptr);
    EXPECT_EQ(trace_io::openCached(path, identity, 0, 39'999),
              nullptr);
}

TEST_F(TraceCache, CorruptCachedFileIsAMissNotACrash)
{
    const std::string path =
        trace_io::cachePath(dir_, "li", 7, 0, 1000);
    std::ofstream(path, std::ios::binary)
        << std::string(1000, '\xee');
    EXPECT_EQ(trace_io::openCached(path, 7, 0, 1000), nullptr);
}

} // namespace
} // namespace irep
