/**
 * @file
 * Config-keyed cache tests: path naming, strict IREP_TRACE_DIR
 * parsing, and openCached()'s miss/hit/invalidation behaviour —
 * including that a corrupt cached file is a miss (re-record), never a
 * crash and never a silent replay.
 */

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "trace_io/cache.hh"
#include "trace_io/format.hh"
#include "trace_test_util.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

namespace fs = std::filesystem;

class TraceCache : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-test-case directory: ctest runs each case as its own
        // process, concurrently, and they must not share files.
        dir_ = testing::TempDir() + "trace_cache_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
        unsetenv("IREP_TRACE_DIR");
    }

    std::string dir_;
};

TEST_F(TraceCache, PathEncodesEveryKeyComponent)
{
    const std::string base =
        trace_io::cachePath(dir_, "li", 0x1234, 1000, 4000);
    EXPECT_NE(base.find("li"), std::string::npos);
    EXPECT_NE(base.find("s1000"), std::string::npos);
    EXPECT_NE(base.find("w4000"), std::string::npos);

    // Changing any key component must change the file name, so stale
    // entries can never be opened under a new key.
    EXPECT_NE(base, trace_io::cachePath(dir_, "li", 0x1235, 1000,
                                        4000));
    EXPECT_NE(base, trace_io::cachePath(dir_, "li", 0x1234, 1001,
                                        4000));
    EXPECT_NE(base, trace_io::cachePath(dir_, "li", 0x1234, 1000,
                                        4001));
    EXPECT_NE(base, trace_io::cachePath(dir_, "go", 0x1234, 1000,
                                        4000));
}

TEST_F(TraceCache, SanitizeNameKeepsPathsFlat)
{
    EXPECT_EQ(trace_io::sanitizeName("compress"), "compress");
    EXPECT_EQ(trace_io::sanitizeName("../a b/c.mc"), ".._a_b_c.mc");
    EXPECT_EQ(trace_io::sanitizeName(""), "trace");
}

TEST_F(TraceCache, CacheDirUnsetOrEmptyDisables)
{
    unsetenv("IREP_TRACE_DIR");
    EXPECT_EQ(trace_io::cacheDir(), "");
    setenv("IREP_TRACE_DIR", "", 1);
    EXPECT_EQ(trace_io::cacheDir(), "");
}

TEST_F(TraceCache, CacheDirCreatesAndStrictlyParses)
{
    const std::string nested = dir_ + "/a/b";
    setenv("IREP_TRACE_DIR", nested.c_str(), 1);
    EXPECT_EQ(trace_io::cacheDir(), nested);
    EXPECT_TRUE(fs::is_directory(nested));

    // A path that cannot be a directory is the user's error: fatal,
    // not a silent fall-back to uncached runs.
    const std::string blocked = dir_ + "/file";
    std::ofstream(blocked).put('x');
    const std::string bad = blocked + "/sub";
    setenv("IREP_TRACE_DIR", bad.c_str(), 1);
    EXPECT_THROW(trace_io::cacheDir(), FatalError);
}

TEST_F(TraceCache, MissThenHitThenKeyInvalidation)
{
    const auto &w = workloads::workloadByName("li");
    const uint64_t identity =
        trace_io::identityHash(workloads::buildProgram(w), w.input);
    const std::string path =
        trace_io::cachePath(dir_, "li", identity, 0, 40'000);

    EXPECT_EQ(trace_io::openCached(path, identity, 0, 40'000),
              nullptr);

    test::recordWorkload("li", path, 40'000);
    auto reader = trace_io::openCached(path, identity, 0, 40'000);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->header().identity, identity);

    // Same file, different expected key: stale, so a miss.
    EXPECT_EQ(trace_io::openCached(path, identity + 1, 0, 40'000),
              nullptr);
    EXPECT_EQ(trace_io::openCached(path, identity, 1, 40'000),
              nullptr);
    EXPECT_EQ(trace_io::openCached(path, identity, 0, 39'999),
              nullptr);
}

TEST_F(TraceCache, FindCachedPrefersNewestReadableVersion)
{
    const auto &w = workloads::workloadByName("li");
    const uint64_t identity =
        trace_io::identityHash(workloads::buildProgram(w), w.input);

    // Only a version-1 entry exists (an older build's recording):
    // findCached must fall back to it rather than re-record.
    trace_io::TraceWriterOptions v1;
    v1.version = 1;
    test::recordWorkload(
        "li", trace_io::cachePath(dir_, "li", identity, 0, 40'000, 1),
        40'000, 0, v1);
    auto reader = trace_io::findCached(dir_, "li", identity, 0,
                                       40'000);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->header().version, 1u);

    // Once a current-version entry exists too, it wins.
    test::recordWorkload(
        "li", trace_io::cachePath(dir_, "li", identity, 0, 40'000),
        40'000);
    reader = trace_io::findCached(dir_, "li", identity, 0, 40'000);
    ASSERT_NE(reader, nullptr);
    EXPECT_EQ(reader->header().version, trace_io::formatVersion);
}

TEST_F(TraceCache, ConcurrentSameKeyRequestsRecordOnceAndAgree)
{
    // Several threads ask for the same uncached config through the
    // probe -> claim -> re-probe flow the harness and daemon use:
    // exactly one may simulate and record; the rest must wait and
    // replay the published file, and every thread's dispatch stream
    // must be identical.
    const auto &w = workloads::workloadByName("li");
    const uint64_t identity =
        trace_io::identityHash(workloads::buildProgram(w), w.input);
    constexpr uint64_t window = 40'000;
    constexpr int threads = 4;

    std::atomic<int> recorders{0};
    std::vector<std::vector<test::Event>> streams(threads);

    auto runOnce = [&](int slot) {
        auto replayFrom = [&](trace_io::TraceReader &reader) {
            auto machine = test::makeWorkloadMachine("li");
            reader.bind(*machine, w.input);
            test::CaptureObserver sink;
            reader.replay(sink, UINT64_MAX);
            streams[slot] = std::move(sink.events);
        };
        if (auto hit = trace_io::findCached(dir_, "li", identity, 0,
                                            window)) {
            replayFrom(*hit);
            return;
        }
        const std::string path =
            trace_io::cachePath(dir_, "li", identity, 0, window);
        trace_io::RecordClaim claim(path);
        if (auto hit = trace_io::findCached(dir_, "li", identity, 0,
                                            window)) {
            replayFrom(*hit);
            return;
        }
        recorders.fetch_add(1);
        streams[slot] = test::recordWorkload("li", path, window);
    };

    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
        pool.emplace_back(runOnce, t);
    for (auto &th : pool)
        th.join();

    EXPECT_EQ(recorders.load(), 1);
    // One committed trace, no temporaries left behind.
    size_t files = 0;
    for ([[maybe_unused]] const auto &e :
         fs::directory_iterator(dir_))
        ++files;
    EXPECT_EQ(files, 1u);
    ASSERT_FALSE(streams[0].empty());
    for (int t = 1; t < threads; ++t)
        test::expectSameStream(streams[0], streams[t]);
}

TEST_F(TraceCache, CorruptCachedFileIsAMissNotACrash)
{
    const std::string path =
        trace_io::cachePath(dir_, "li", 7, 0, 1000);
    std::ofstream(path, std::ios::binary)
        << std::string(1000, '\xee');
    EXPECT_EQ(trace_io::openCached(path, 7, 0, 1000), nullptr);
}

} // namespace
} // namespace irep
