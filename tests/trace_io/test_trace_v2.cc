/**
 * @file
 * Format-version-2 tests: compressed traces are the default, replay
 * losslessly with every codec, stay materially smaller than the same
 * stream in version 1, keep version-1 files writable and readable,
 * expose the raw/stored payload accounting the compression-ratio
 * reporting is built on, and parse the IREP_TRACE_FORMAT /
 * IREP_TRACE_CODEC knobs strictly.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace_io/format.hh"
#include "trace_io/reader.hh"
#include "trace_io/writer.hh"
#include "trace_test_util.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

namespace fs = std::filesystem;

using test::CaptureObserver;
using test::Event;
using test::expectSameStream;
using test::makeWorkloadMachine;
using test::recordWorkload;

class TraceV2 : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = testing::TempDir() + "trace_v2_" +
               testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
        unsetenv("IREP_TRACE_FORMAT");
        unsetenv("IREP_TRACE_CODEC");
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
        unsetenv("IREP_TRACE_FORMAT");
        unsetenv("IREP_TRACE_CODEC");
    }

    std::vector<Event>
    replay(const std::string &name, trace_io::TraceReader &reader)
    {
        auto machine = makeWorkloadMachine(name);
        reader.bind(*machine,
                    workloads::workloadByName(name).input);
        CaptureObserver replayed;
        reader.replay(replayed, UINT64_MAX);
        EXPECT_TRUE(reader.atEnd());
        return std::move(replayed.events);
    }

    std::string dir_;
};

TEST_F(TraceV2, CompressedIsTheDefaultAndReplaysLosslessly)
{
    const std::string path = dir_ + "/default.irtrace";
    const std::vector<Event> live =
        recordWorkload("compress", path, 120'000);

    trace_io::TraceReader reader(path);
    EXPECT_EQ(reader.header().version, 2u);
    EXPECT_EQ(trace_io::formatVersion, 2u);
    expectSameStream(live, replay("compress", reader));

    // The whole point of the format bump: the stored payload must be
    // materially smaller than the decoded stream.
    EXPECT_GT(reader.rawPayloadBytes(), 0u);
    EXPECT_LT(reader.storedPayloadBytes(),
              reader.rawPayloadBytes() / 2);
}

TEST_F(TraceV2, StoreCodecRoundTrips)
{
    const std::string path = dir_ + "/store.irtrace";
    trace_io::TraceWriterOptions options;
    options.codec = trace_io::Codec::Store;
    const std::vector<Event> live =
        recordWorkload("li", path, 60'000, 0, options);

    trace_io::TraceReader reader(path);
    EXPECT_EQ(reader.header().version, 2u);
    expectSameStream(live, replay("li", reader));
    EXPECT_EQ(reader.storedPayloadBytes(), reader.rawPayloadBytes());
}

TEST_F(TraceV2, Version1StillWritesAndReplays)
{
    const std::string path = dir_ + "/v1.irtrace";
    trace_io::TraceWriterOptions options;
    options.version = 1;
    const std::vector<Event> live =
        recordWorkload("li", path, 60'000, 0, options);

    trace_io::TraceReader reader(path);
    EXPECT_EQ(reader.header().version, 1u);
    expectSameStream(live, replay("li", reader));
    // Version 1 has no compression framing: stored == raw.
    EXPECT_EQ(reader.storedPayloadBytes(), reader.rawPayloadBytes());
}

TEST_F(TraceV2, Version2FileIsSmallerThanVersion1)
{
    const std::string v1 = dir_ + "/size.v1.irtrace";
    const std::string v2 = dir_ + "/size.v2.irtrace";
    trace_io::TraceWriterOptions options;
    options.version = 1;
    recordWorkload("compress", v1, 120'000, 0, options);
    recordWorkload("compress", v2, 120'000);

    ASSERT_GT(fs::file_size(v1), 0u);
    EXPECT_LT(fs::file_size(v2), fs::file_size(v1) / 2);
}

TEST_F(TraceV2, WriterAndReaderAgreeOnPayloadAccounting)
{
    const std::string path = dir_ + "/counters.irtrace";
    const auto &w = workloads::workloadByName("compress");
    auto machine = makeWorkloadMachine("compress");
    trace_io::TraceWriter writer(path, *machine, w.input, 0,
                                 120'000);
    machine->addObserver(&writer);
    machine->run(120'000);
    machine->removeObserver(&writer);
    writer.commit();

    EXPECT_EQ(writer.version(), 2u);
    EXPECT_GT(writer.rawPayloadBytes(), 0u);
    EXPECT_LT(writer.storedPayloadBytes(), writer.rawPayloadBytes());

    trace_io::TraceReader reader(path);
    EXPECT_EQ(reader.rawPayloadBytes(), writer.rawPayloadBytes());
    EXPECT_EQ(reader.storedPayloadBytes(),
              writer.storedPayloadBytes());
    EXPECT_EQ(reader.totalInstrRecords(), writer.instrRecords());
}

TEST_F(TraceV2, FormatKnobSelectsVersionAndParsesStrictly)
{
    setenv("IREP_TRACE_FORMAT", "1", 1);
    EXPECT_EQ(trace_io::TraceWriterOptions::fromEnv().version, 1u);
    setenv("IREP_TRACE_FORMAT", "2", 1);
    EXPECT_EQ(trace_io::TraceWriterOptions::fromEnv().version, 2u);

    setenv("IREP_TRACE_FORMAT", "3", 1);
    EXPECT_THROW(trace_io::TraceWriterOptions::fromEnv(), FatalError);
    setenv("IREP_TRACE_FORMAT", "0", 1);
    EXPECT_THROW(trace_io::TraceWriterOptions::fromEnv(), FatalError);
    setenv("IREP_TRACE_FORMAT", "junk", 1);
    EXPECT_THROW(trace_io::TraceWriterOptions::fromEnv(), FatalError);
}

TEST_F(TraceV2, CodecKnobSelectsCodecAndParsesStrictly)
{
    setenv("IREP_TRACE_CODEC", "store", 1);
    EXPECT_EQ(trace_io::TraceWriterOptions::fromEnv().codec,
              trace_io::Codec::Store);
    setenv("IREP_TRACE_CODEC", "lz", 1);
    EXPECT_EQ(trace_io::TraceWriterOptions::fromEnv().codec,
              trace_io::Codec::IrepLz);

    if (trace_io::codecAvailable(trace_io::Codec::Zstd)) {
        setenv("IREP_TRACE_CODEC", "zstd", 1);
        EXPECT_EQ(trace_io::TraceWriterOptions::fromEnv().codec,
                  trace_io::Codec::Zstd);
    } else {
        // Naming a codec this build lacks is the user's error.
        setenv("IREP_TRACE_CODEC", "zstd", 1);
        EXPECT_THROW(trace_io::TraceWriterOptions::fromEnv(),
                     FatalError);
    }

    setenv("IREP_TRACE_CODEC", "gzip", 1);
    EXPECT_THROW(trace_io::TraceWriterOptions::fromEnv(), FatalError);
}

TEST_F(TraceV2, EnvKnobsReachTheWriter)
{
    setenv("IREP_TRACE_FORMAT", "1", 1);
    const std::string v1 = dir_ + "/env.v1.irtrace";
    recordWorkload("li", v1, 30'000);
    EXPECT_EQ(trace_io::TraceReader(v1).header().version, 1u);

    unsetenv("IREP_TRACE_FORMAT");
    setenv("IREP_TRACE_CODEC", "store", 1);
    const std::string stored = dir_ + "/env.store.irtrace";
    recordWorkload("li", stored, 30'000);
    trace_io::TraceReader reader(stored);
    EXPECT_EQ(reader.header().version, 2u);
    EXPECT_EQ(reader.storedPayloadBytes(), reader.rawPayloadBytes());
}

} // namespace
} // namespace irep
