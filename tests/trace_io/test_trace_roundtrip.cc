/**
 * @file
 * Record/replay round-trip: a replayed trace must dispatch the exact
 * event stream the live run produced — every InstrRecord field, every
 * SyscallRecord, and their interleaving — and the writer must publish
 * atomically (no file until commit(), no temporaries left behind).
 */

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "trace_io/format.hh"
#include "trace_io/reader.hh"
#include "trace_io/writer.hh"
#include "trace_test_util.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

using test::CaptureObserver;
using test::Event;
using test::expectSameStream;
using test::makeWorkloadMachine;
using test::recordWorkload;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

TEST(TraceRoundTrip, ReplayDispatchesIdenticalStream)
{
    const std::string path = tempPath("roundtrip.irtrace");
    const std::vector<Event> live =
        recordWorkload("compress", path, 200'000);
    ASSERT_GT(live.size(), 200'000u);  // retires + syscall events

    auto machine = makeWorkloadMachine("compress");
    trace_io::TraceReader reader(path);
    reader.bind(*machine,
                workloads::workloadByName("compress").input);
    CaptureObserver replayed;
    EXPECT_EQ(reader.replay(replayed, UINT64_MAX), 200'000u);
    EXPECT_TRUE(reader.atEnd());

    expectSameStream(live, replayed.events);
    std::filesystem::remove(path);
}

TEST(TraceRoundTrip, ReplayHonorsChunkBoundaries)
{
    // The pipeline replays in two calls (skip, then window); record
    // counts must add up across arbitrary chunk sizes and syscall
    // records must not count toward the instruction budget.
    const std::string path = tempPath("chunked.irtrace");
    const std::vector<Event> live =
        recordWorkload("li", path, 100'000);

    auto machine = makeWorkloadMachine("li");
    trace_io::TraceReader reader(path);
    reader.bind(*machine, workloads::workloadByName("li").input);
    CaptureObserver replayed;
    uint64_t total = 0;
    const uint64_t chunks[] = {1, 999, 30'000, UINT64_MAX};
    for (uint64_t chunk : chunks)
        total += reader.replay(replayed, chunk);
    EXPECT_EQ(total, 100'000u);
    EXPECT_TRUE(reader.atEnd());
    EXPECT_EQ(reader.replay(replayed, 1000), 0u);

    expectSameStream(live, replayed.events);
    std::filesystem::remove(path);
}

TEST(TraceRoundTrip, HeaderCarriesConfigAndCounts)
{
    const std::string path = tempPath("header.irtrace");
    recordWorkload("compress", path, 60'000, 10'000);

    trace_io::TraceReader reader(path);
    EXPECT_EQ(reader.header().version, trace_io::formatVersion);
    EXPECT_EQ(reader.header().skip, 10'000u);
    EXPECT_EQ(reader.header().window, 50'000u);
    EXPECT_EQ(reader.header().identity,
              trace_io::identityHash(
                  workloads::buildProgram(
                      workloads::workloadByName("compress")),
                  workloads::workloadByName("compress").input));
    std::filesystem::remove(path);
}

TEST(TraceRoundTrip, NoFileUntilCommitAndNoTempAfter)
{
    namespace fs = std::filesystem;
    const std::string dir = testing::TempDir() + "trace_publish";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/out.irtrace";

    auto machine = makeWorkloadMachine("li");
    {
        trace_io::TraceWriter writer(
            path, *machine, workloads::workloadByName("li").input, 0,
            50'000);
        machine->addObserver(&writer);
        machine->run(50'000);
        machine->removeObserver(&writer);
        EXPECT_FALSE(fs::exists(path))
            << "trace visible before commit";
        writer.commit();
        EXPECT_TRUE(fs::exists(path));
    }
    size_t files = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        ++files;
    EXPECT_EQ(files, 1u) << "temporary left next to the trace";
    fs::remove_all(dir);
}

TEST(TraceRoundTrip, AbandonedWriterRemovesItsTemporary)
{
    namespace fs = std::filesystem;
    const std::string dir = testing::TempDir() + "trace_abandon";
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string path = dir + "/out.irtrace";

    auto machine = makeWorkloadMachine("li");
    {
        trace_io::TraceWriter writer(
            path, *machine, workloads::workloadByName("li").input, 0,
            50'000);
        machine->addObserver(&writer);
        machine->run(50'000);
        machine->removeObserver(&writer);
        // No commit: simulates a recording killed mid-run.
    }
    EXPECT_TRUE(fs::is_empty(dir));
    fs::remove_all(dir);
}

TEST(TraceRoundTrip, BindRejectsDifferentProgramOrInput)
{
    const std::string path = tempPath("identity.irtrace");
    recordWorkload("li", path, 30'000);

    trace_io::TraceReader other(path);
    auto wrong_program = makeWorkloadMachine("compress");
    EXPECT_THROW(
        other.bind(*wrong_program,
                   workloads::workloadByName("compress").input),
        FatalError);

    trace_io::TraceReader same(path);
    auto right_program = makeWorkloadMachine("li");
    EXPECT_THROW(same.bind(*right_program, "a different input"),
                 FatalError);
    std::filesystem::remove(path);
}

} // namespace
} // namespace irep
