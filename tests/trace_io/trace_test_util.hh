/**
 * @file
 * Helpers for trace record/replay tests: build a workload machine,
 * capture a dispatch stream (retires and syscalls, in order), and
 * record a trace file while doing so.
 */

#ifndef IREP_TESTS_TRACE_IO_TRACE_TEST_UTIL_HH
#define IREP_TESTS_TRACE_IO_TRACE_TEST_UTIL_HH

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "sim/observer.hh"
#include "trace_io/writer.hh"
#include "workloads/workloads.hh"

namespace irep::test
{

inline std::unique_ptr<sim::Machine>
makeWorkloadMachine(const std::string &name)
{
    const auto &w = workloads::workloadByName(name);
    auto machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    machine->setInput(w.input);
    return machine;
}

/** One dispatched event, preserving retire/syscall interleaving. */
struct Event
{
    bool isSyscall = false;
    sim::InstrRecord instr;     //!< valid when !isSyscall
    sim::SyscallRecord syscall; //!< valid when isSyscall
    int op = -1;    //!< instr.inst->op, copied at dispatch time: the
                    //!< Instruction lives in the machine (live run) or
                    //!< reader (replay), either of which may be gone
                    //!< by the time streams are compared
};

/** Records every dispatch, in order. */
struct CaptureObserver : sim::Observer
{
    std::vector<Event> events;

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        Event e;
        e.instr = rec;
        e.op = rec.inst ? int(rec.inst->op) : -1;
        events.push_back(e);
    }

    void
    onSyscall(const sim::SyscallRecord &rec) override
    {
        Event e;
        e.isSyscall = true;
        e.syscall = rec;
        events.push_back(e);
    }
};

/**
 * Run @p instructions of workload @p name while recording to @p path
 * (committed on return). @return the live dispatch stream.
 */
inline std::vector<Event>
recordWorkload(const std::string &name, const std::string &path,
               uint64_t instructions, uint64_t skip = 0,
               trace_io::TraceWriterOptions options =
                   trace_io::TraceWriterOptions::fromEnv())
{
    const auto &w = workloads::workloadByName(name);
    auto machine = makeWorkloadMachine(name);
    CaptureObserver capture;
    trace_io::TraceWriter writer(path, *machine, w.input, skip,
                                 instructions - skip, options);
    machine->addObserver(&capture);
    machine->addObserver(&writer);
    machine->run(instructions);
    writer.commit();
    return std::move(capture.events);
}

/** Assert two dispatch streams are field-for-field identical. */
inline void
expectSameStream(const std::vector<Event> &live,
                 const std::vector<Event> &replayed)
{
    ASSERT_EQ(live.size(), replayed.size());
    for (size_t i = 0; i < live.size(); ++i) {
        const Event &a = live[i];
        const Event &b = replayed[i];
        ASSERT_EQ(a.isSyscall, b.isSyscall) << "event " << i;
        if (a.isSyscall) {
            EXPECT_EQ(int(a.syscall.num), int(b.syscall.num));
            EXPECT_EQ(a.syscall.arg0, b.syscall.arg0);
            EXPECT_EQ(a.syscall.arg1, b.syscall.arg1);
            EXPECT_EQ(a.syscall.result, b.syscall.result);
            EXPECT_EQ(a.syscall.writtenAddr, b.syscall.writtenAddr);
            EXPECT_EQ(a.syscall.writtenLen, b.syscall.writtenLen);
            continue;
        }
        ASSERT_EQ(a.instr.seq, b.instr.seq) << "event " << i;
        EXPECT_EQ(a.instr.pc, b.instr.pc);
        EXPECT_EQ(a.instr.staticIndex, b.instr.staticIndex);
        ASSERT_NE(b.instr.inst, nullptr);
        EXPECT_EQ(a.op, b.op);
        ASSERT_EQ(a.instr.numSrcRegs, b.instr.numSrcRegs);
        for (int s = 0; s < a.instr.numSrcRegs; ++s)
            EXPECT_EQ(a.instr.srcVal[s], b.instr.srcVal[s]);
        EXPECT_EQ(a.instr.isMemAccess, b.instr.isMemAccess);
        if (a.instr.isMemAccess) {
            EXPECT_EQ(a.instr.memAddr, b.instr.memAddr);
        }
        EXPECT_EQ(a.instr.writesReg, b.instr.writesReg);
        if (a.instr.writesReg) {
            EXPECT_EQ(int(a.instr.destReg), int(b.instr.destReg));
        }
        EXPECT_EQ(a.instr.result, b.instr.result);
        EXPECT_EQ(a.instr.nextPc, b.instr.nextPc);
    }
}

} // namespace irep::test

#endif // IREP_TESTS_TRACE_IO_TRACE_TEST_UTIL_HH
