/**
 * @file
 * Helpers for trace record/replay tests: build a workload machine,
 * capture a dispatch stream (retires and syscalls, in order), and
 * record a trace file while doing so.
 */

#ifndef IREP_TESTS_TRACE_IO_TRACE_TEST_UTIL_HH
#define IREP_TESTS_TRACE_IO_TRACE_TEST_UTIL_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "sim/observer.hh"
#include "trace_io/writer.hh"
#include "workloads/workloads.hh"

namespace irep::test
{

inline std::unique_ptr<sim::Machine>
makeWorkloadMachine(const std::string &name)
{
    const auto &w = workloads::workloadByName(name);
    auto machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    machine->setInput(w.input);
    return machine;
}

/** One dispatched event, preserving retire/syscall interleaving. */
struct Event
{
    bool isSyscall = false;
    sim::InstrRecord instr;     //!< valid when !isSyscall
    sim::SyscallRecord syscall; //!< valid when isSyscall
};

/** Records every dispatch, in order. */
struct CaptureObserver : sim::Observer
{
    std::vector<Event> events;

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        Event e;
        e.instr = rec;
        events.push_back(e);
    }

    void
    onSyscall(const sim::SyscallRecord &rec) override
    {
        Event e;
        e.isSyscall = true;
        e.syscall = rec;
        events.push_back(e);
    }
};

/**
 * Run @p instructions of workload @p name while recording to @p path
 * (committed on return). @return the live dispatch stream.
 */
inline std::vector<Event>
recordWorkload(const std::string &name, const std::string &path,
               uint64_t instructions, uint64_t skip = 0)
{
    const auto &w = workloads::workloadByName(name);
    auto machine = makeWorkloadMachine(name);
    CaptureObserver capture;
    trace_io::TraceWriter writer(path, *machine, w.input, skip,
                                 instructions - skip);
    machine->addObserver(&capture);
    machine->addObserver(&writer);
    machine->run(instructions);
    writer.commit();
    return std::move(capture.events);
}

} // namespace irep::test

#endif // IREP_TESTS_TRACE_IO_TRACE_TEST_UTIL_HH
