/**
 * @file
 * Corruption handling: a truncated trace (interrupted recording, full
 * disk) is rejected at open with a diagnostic — never silently
 * replayed short — and any single bit flip anywhere in the file is
 * caught by the header CRC, the framing checks or a block payload
 * CRC before the stream finishes replaying.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/machine.hh"
#include "trace_io/format.hh"
#include "trace_io/reader.hh"
#include "trace_test_util.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

using test::CaptureObserver;
using test::makeWorkloadMachine;
using test::recordWorkload;

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

class TraceCorruption : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Per-test-case path: ctest runs each case as its own
        // process, concurrently, and they must not share files.
        path_ = testing::TempDir() +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".corrupt.irtrace";
        recordWorkload("li", path_, 80'000);
        bytes_ = readAll(path_);
        ASSERT_GT(bytes_.size(), sizeof(trace_io::TraceHeader) +
                                     sizeof(trace_io::TraceFooter));
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path_);
        std::filesystem::remove(mutatedPath());
    }

    std::string
    mutatedPath() const
    {
        return path_ + ".mut";
    }

    /** Open + bind + replay the mutated file to completion. */
    void
    replayMutated()
    {
        trace_io::TraceReader reader(mutatedPath());
        auto machine = makeWorkloadMachine("li");
        reader.bind(*machine, workloads::workloadByName("li").input);
        CaptureObserver sink;
        while (reader.replay(sink, 1u << 20) != 0) {}
    }

    std::string path_;
    std::string bytes_;
};

TEST_F(TraceCorruption, TruncationRejectedAtOpenWithDiagnostic)
{
    // A clean EOF cut anywhere — even exactly between blocks — loses
    // the footer (or part of a frame) and must fail at open.
    const size_t cuts[] = {
        bytes_.size() - 1,
        bytes_.size() - sizeof(trace_io::TraceFooter),
        bytes_.size() - sizeof(trace_io::TraceFooter) - 1,
        bytes_.size() / 2,
        sizeof(trace_io::TraceHeader) + 7,
        sizeof(trace_io::TraceHeader),
    };
    for (size_t cut : cuts) {
        writeAll(mutatedPath(), bytes_.substr(0, cut));
        try {
            trace_io::TraceReader reader(mutatedPath());
            FAIL() << "opened a trace truncated to " << cut
                   << " bytes";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("re-record"),
                      std::string::npos)
                << "diagnostic should tell the user what to do: "
                << e.what();
        }
    }
}

TEST_F(TraceCorruption, EmptyAndForeignFilesRejected)
{
    writeAll(mutatedPath(), "");
    EXPECT_THROW(trace_io::TraceReader{mutatedPath()}, FatalError);

    writeAll(mutatedPath(), std::string(4096, 'x'));
    EXPECT_THROW(trace_io::TraceReader{mutatedPath()}, FatalError);
}

TEST_F(TraceCorruption, FutureFormatVersionRejected)
{
    std::string mutated = bytes_;
    mutated[4] = char(mutated[4] + 1);  // header.version, byte 0
    writeAll(mutatedPath(), mutated);
    try {
        trace_io::TraceReader reader(mutatedPath());
        FAIL() << "accepted a version-skewed trace";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(TraceCorruption, SingleBitFlipsAlwaysDetected)
{
    // Deterministic pseudo-random positions across the whole file:
    // header, block frames, payloads and footer are all covered by
    // some integrity check, so every flip must throw somewhere.
    uint64_t x = 0x243f6a8885a308d3ull;
    for (int trial = 0; trial < 48; ++trial) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const size_t byte = size_t(x % bytes_.size());
        const int bit = int((x >> 32) % 8);

        std::string mutated = bytes_;
        mutated[byte] = char(mutated[byte] ^ (1 << bit));
        writeAll(mutatedPath(), mutated);
        EXPECT_THROW(replayMutated(), FatalError)
            << "flip at byte " << byte << " bit " << bit
            << " replayed cleanly";
    }
}

TEST_F(TraceCorruption, FlipInsideBlockPayloadCaughtByBlockCrc)
{
    // Aim specifically at encoded record bytes (past the first block
    // frame): the framing still parses, the payload CRC must not.
    const size_t target = sizeof(trace_io::TraceHeader) +
                          sizeof(trace_io::BlockFrame) + 123;
    std::string mutated = bytes_;
    mutated[target] = char(mutated[target] ^ 0x40);
    writeAll(mutatedPath(), mutated);
    try {
        replayMutated();
        FAIL() << "corrupt payload replayed cleanly";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace irep
