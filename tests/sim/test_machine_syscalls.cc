/**
 * @file
 * Syscall semantics: exit, read (with short reads and EOF), write,
 * sbrk, and the syscall observer records.
 */

#include <gtest/gtest.h>

#include "isa/registers.hh"
#include "sim_test_util.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

TEST(Syscalls, ExitStopsWithCode)
{
    test::TestRun run(
        "li $a0, 42\n"
        "li $v0, 1\n"
        "syscall\n"
        "nop\n",    // must not execute
        false);
    run.run();
    EXPECT_TRUE(run.machine().halted());
    EXPECT_EQ(run.machine().exitCode(), 42);
    EXPECT_EQ(run.machine().instret(), 3u);
}

TEST(Syscalls, WriteAppendsToOutput)
{
    test::TestRun run(
        ".data\nmsg: .ascii \"hello\"\n.text\n"
        "la $a0, msg\n"
        "li $a1, 5\n"
        "li $v0, 3\n"
        "syscall\n"
        "move $t0, $v0\n");
    run.run();
    EXPECT_EQ(run.machine().output(), "hello");
    EXPECT_EQ(run.machine().reg(isa::regT0), 5u);
}

TEST(Syscalls, ReadFillsBufferAndReturnsCount)
{
    test::TestRun run(
        ".data\nbuf: .space 16\n.text\n"
        "la $a0, buf\n"
        "li $a1, 16\n"
        "li $v0, 2\n"
        "syscall\n"
        "move $t0, $v0\n"
        "la $t1, buf\n"
        "lbu $t2, 0($t1)\n"
        "lbu $t3, 3($t1)\n");
    run.machine().setInput("abcd");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), 4u);   // short read
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 'a');
    EXPECT_EQ(run.machine().reg(isa::regT0 + 3), 'd');
}

TEST(Syscalls, ReadAtEofReturnsZero)
{
    test::TestRun run(
        ".data\nbuf: .space 4\n.text\n"
        "la $a0, buf\n"
        "li $a1, 4\n"
        "li $v0, 2\n"
        "syscall\n"
        "move $t0, $v0\n"
        "li $v0, 2\n"
        "syscall\n"
        "move $t1, $v0\n");
    run.machine().setInput("xyzw");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), 4u);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 1), 0u);
}

TEST(Syscalls, ReadConsumesInputIncrementally)
{
    test::TestRun run(
        ".data\nbuf: .space 4\n.text\n"
        "la $a0, buf\n"
        "li $a1, 2\n"
        "li $v0, 2\n"
        "syscall\n"
        "la $a0, buf\n"
        "li $a1, 2\n"
        "li $v0, 2\n"
        "syscall\n"
        "la $t1, buf\n"
        "lbu $t2, 0($t1)\n");
    run.machine().setInput("abcd");
    run.run();
    // Second read overwrote the buffer with "cd".
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 'c');
}

TEST(Syscalls, SbrkGrowsMonotonically)
{
    test::TestRun run(
        "li $a0, 4096\n"
        "li $v0, 4\n"
        "syscall\n"
        "move $t0, $v0\n"
        "li $a0, 4096\n"
        "li $v0, 4\n"
        "syscall\n"
        "move $t1, $v0\n");
    run.run();
    const uint32_t first = run.machine().reg(isa::regT0);
    const uint32_t second = run.machine().reg(isa::regT0 + 1);
    EXPECT_EQ(first, run.program().heapStart());
    EXPECT_EQ(second, first + 4096);
}

TEST(Syscalls, SbrkMemoryIsUsable)
{
    test::TestRun run(
        "li $a0, 64\n"
        "li $v0, 4\n"
        "syscall\n"
        "li $t1, 123\n"
        "sw $t1, 0($v0)\n"
        "lw $t2, 0($v0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 123u);
}

TEST(Syscalls, SbrkModerateShrinkIsAllowed)
{
    test::TestRun run(
        "li $a0, 8192\n"
        "li $v0, 4\n"
        "syscall\n"
        "li $a0, -4096\n"
        "li $v0, 4\n"
        "syscall\n"
        "li $a0, 0\n"
        "li $v0, 4\n"
        "syscall\n"
        "move $t0, $v0\n");
    run.run();
    // After +8192 then -4096 the break sits 4096 past the heap start.
    EXPECT_EQ(run.machine().reg(isa::regT0),
              run.program().heapStart() + 4096);
}

TEST(Syscalls, SbrkBelowHeapStartIsFatal)
{
    test::TestRun run(
        "li $a0, -8192\n"
        "li $v0, 4\n"
        "syscall\n",
        false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(Syscalls, SbrkIntoStackRegionIsFatal)
{
    // An increment that would push the break past the stack region
    // boundary must not be silently accepted.
    test::TestRun run(
        "lui $a0, 0x7000\n"
        "li $v0, 4\n"
        "syscall\n",
        false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(Syscalls, SbrkHugeArgumentDoesNotWrapAround)
{
    // 0xf0000000 as an unsigned add would wrap brk_ around to a tiny
    // value; as a signed decrement it lands below the heap start.
    // Either reading must be rejected, never silently applied.
    test::TestRun run(
        "lui $a0, 0xf000\n"
        "li $v0, 4\n"
        "syscall\n",
        false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(Syscalls, WriteTwiceConcatenatesOutput)
{
    test::TestRun run(
        ".data\nmsg: .ascii \"hello, world\"\n.text\n"
        "la $a0, msg\n"
        "li $a1, 5\n"
        "li $v0, 3\n"
        "syscall\n"
        "la $a0, msg\n"
        "addiu $a0, $a0, 7\n"
        "li $a1, 5\n"
        "li $v0, 3\n"
        "syscall\n");
    run.run();
    EXPECT_EQ(run.machine().output(), "helloworld");
}

TEST(Syscalls, WriteZeroLengthIsANoop)
{
    test::TestRun run(
        ".data\nmsg: .ascii \"x\"\n.text\n"
        "la $a0, msg\n"
        "li $a1, 0\n"
        "li $v0, 3\n"
        "syscall\n"
        "move $t0, $v0\n");
    run.run();
    EXPECT_EQ(run.machine().output(), "");
    EXPECT_EQ(run.machine().reg(isa::regT0), 0u);
}

TEST(Syscalls, UnknownSyscallIsFatal)
{
    test::TestRun run("li $v0, 99\nsyscall\n", false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(Syscalls, SyscallObserverSeesRead)
{
    struct Recorder : sim::Observer
    {
        std::vector<sim::SyscallRecord> records;
        void onRetire(const sim::InstrRecord &) override {}
        void
        onSyscall(const sim::SyscallRecord &rec) override
        {
            records.push_back(rec);
        }
    };

    test::TestRun run(
        ".data\nbuf: .space 8\n.text\n"
        "la $a0, buf\n"
        "li $a1, 8\n"
        "li $v0, 2\n"
        "syscall\n");
    Recorder recorder;
    run.machine().addObserver(&recorder);
    run.machine().setInput("hi");
    run.run();

    ASSERT_EQ(recorder.records.size(), 2u);     // read + exit
    const auto &read = recorder.records[0];
    EXPECT_EQ(read.num, sim::Syscall::Read);
    EXPECT_EQ(read.result, 2u);
    EXPECT_EQ(read.writtenAddr, run.program().symbol("buf"));
    EXPECT_EQ(read.writtenLen, 2u);
    EXPECT_EQ(recorder.records[1].num, sim::Syscall::Exit);
}

} // namespace
} // namespace irep
