/**
 * @file
 * Block-cache backend tests: backend selection is strict, fused
 * superinstructions are architecturally equivalent (including the
 * $zero-destination edge cases), instruction budgets that end inside a
 * block retire exactly, stores into translated pages invalidate and
 * retranslate, and the capacity bound evicts without changing results.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "asm/program.hh"
#include "sim/bbcache.hh"
#include "sim/machine.hh"
#include "sim_test_util.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

using sim::ExecBackend;
using test::TestRun;

/** Run @p source to completion under @p backend. */
TestRun
runWith(const std::string &source, ExecBackend backend,
        uint64_t max_instructions = 1'000'000)
{
    TestRun run(source);
    run.machine().setExecBackend(backend);
    run.run(max_instructions);
    return run;
}

/** The architectural state two backends must agree on. */
void
expectSameState(sim::Machine &a, sim::Machine &b)
{
    for (unsigned r = 0; r < 32; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "register " << r;
    EXPECT_EQ(a.hi(), b.hi());
    EXPECT_EQ(a.lo(), b.lo());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.instret(), b.instret());
    EXPECT_EQ(a.halted(), b.halted());
    EXPECT_EQ(a.exitCode(), b.exitCode());
    EXPECT_EQ(a.output(), b.output());
}

/** Both backends run @p source; the states must be identical. */
void
expectBackendsAgree(const std::string &source)
{
    TestRun interp = runWith(source, ExecBackend::Interp);
    TestRun bbcache = runWith(source, ExecBackend::BBCache);
    expectSameState(interp.machine(), bbcache.machine());
}

TEST(ExecBackend, ParseIsStrict)
{
    EXPECT_EQ(sim::parseExecBackend("--exec", "interp"),
              ExecBackend::Interp);
    EXPECT_EQ(sim::parseExecBackend("--exec", "bbcache"),
              ExecBackend::BBCache);
    EXPECT_THROW(sim::parseExecBackend("--exec", "fast"), FatalError);
    EXPECT_THROW(sim::parseExecBackend("--exec", ""), FatalError);
    EXPECT_THROW(sim::parseExecBackend("--exec", "BBCACHE"),
                 FatalError);
}

TEST(ExecBackend, EnvironmentDefault)
{
    ::unsetenv("IREP_EXEC");
    EXPECT_EQ(sim::envExecBackend(), ExecBackend::Interp);
    ::setenv("IREP_EXEC", "", 1);
    EXPECT_EQ(sim::envExecBackend(), ExecBackend::Interp);
    ::setenv("IREP_EXEC", "bbcache", 1);
    EXPECT_EQ(sim::envExecBackend(), ExecBackend::BBCache);
    {
        TestRun run("li $t0, 7");
        EXPECT_EQ(run.machine().execBackend(), ExecBackend::BBCache);
    }
    ::setenv("IREP_EXEC", "turbo", 1);
    EXPECT_THROW(sim::envExecBackend(), FatalError);
    ::unsetenv("IREP_EXEC");
}

TEST(BBCache, LuiOriFusesToFullConstant)
{
    const std::string src =
        "lui $t0, 0x1234\n"
        "ori $t0, $t0, 0x5678\n";
    TestRun run = runWith(src, ExecBackend::BBCache);
    EXPECT_EQ(run.machine().reg(8), 0x12345678u);
    expectBackendsAgree(src);
}

TEST(BBCache, LuiAddiuFusesWithSignExtension)
{
    const std::string src =
        "lui $t0, 0x1234\n"
        "addiu $t0, $t0, -4\n";
    TestRun run = runWith(src, ExecBackend::BBCache);
    EXPECT_EQ(run.machine().reg(8), 0x1233fffcu);
    expectBackendsAgree(src);
}

// lui feeding a *different* destination must not collapse into one
// constant: the intermediate high half is architecturally visible.
TEST(BBCache, LuiOriDifferentDestKeepsIntermediate)
{
    const std::string src =
        "lui $t0, 0x00ff\n"
        "ori $t1, $t0, 0x0001\n";
    TestRun run = runWith(src, ExecBackend::BBCache);
    EXPECT_EQ(run.machine().reg(8), 0x00ff0000u);
    EXPECT_EQ(run.machine().reg(9), 0x00ff0001u);
    expectBackendsAgree(src);
}

// Writes to $zero land in the sink slot; reads must still see zero.
TEST(BBCache, ZeroRegisterWritesAreDiscarded)
{
    const std::string src =
        "li $t1, 41\n"
        "lui $zero, 0x1234\n"
        "ori $zero, $zero, 0x5678\n"
        "addiu $zero, $zero, 99\n"
        "addu $t0, $t1, $zero\n";
    TestRun run = runWith(src, ExecBackend::BBCache);
    EXPECT_EQ(run.machine().reg(0), 0u);
    EXPECT_EQ(run.machine().reg(8), 41u);
    expectBackendsAgree(src);
}

// slt/sltu + branch fuse, but the comparison register stays written —
// it is architecturally live after the branch.
TEST(BBCache, CompareBranchFusionKeepsCondRegister)
{
    const std::string src =
        "li $t1, 3\n"
        "li $t2, 0\n"
        "loop:\n"
        "addiu $t2, $t2, 10\n"
        "addiu $t1, $t1, -1\n"
        "slt $t0, $zero, $t1\n"
        "bne $t0, $zero, loop\n"
        "sltu $t3, $t1, $t2\n"
        "beq $t3, $zero, skip\n"
        "addiu $t2, $t2, 1\n"
        "skip:\n";
    TestRun run = runWith(src, ExecBackend::BBCache);
    EXPECT_EQ(run.machine().reg(8), 0u);    // final slt result
    EXPECT_EQ(run.machine().reg(10), 31u);  // 3*10 + 1
    EXPECT_EQ(run.machine().reg(11), 1u);   // sltu survives the fuse
    expectBackendsAgree(src);
}

TEST(BBCache, LoadUseFusionHandlesAliasing)
{
    const std::string src =
        ".data\n"
        "word: .word 100\n"
        ".text\n"
        "la $t1, word\n"
        "lw $t0, 0($t1)\n"
        "addiu $t0, $t0, 5\n"       // lw+addiu, same register
        "lw $t2, 0($t1)\n"
        "addu $t3, $t2, $t2\n"      // lw+addu, both operands aliased
        "lw $t4, 0($t1)\n"
        "addu $t4, $t4, $t0\n";     // lw+addu into the loaded register
    TestRun run = runWith(src, ExecBackend::BBCache);
    EXPECT_EQ(run.machine().reg(8), 105u);
    EXPECT_EQ(run.machine().reg(11), 200u);
    EXPECT_EQ(run.machine().reg(12), 205u);
    expectBackendsAgree(src);
}

// A budget boundary inside a block must retire exactly the budget —
// the cache single-steps the tail through the interpreter body.
TEST(BBCache, InstructionBudgetIsExact)
{
    const std::string loop =
        "li $t0, 1000\n"
        "loop:\n"
        "addiu $t1, $t1, 3\n"
        "xor $t2, $t1, $t0\n"
        "addiu $t0, $t0, -1\n"
        "bne $t0, $zero, loop\n";
    TestRun bbcache(loop);
    bbcache.machine().setExecBackend(ExecBackend::BBCache);
    TestRun interp(loop);

    // Prime-sized chunks land nearly every boundary mid-block.
    for (int i = 0; i < 40; ++i) {
        const uint64_t a = bbcache.machine().run(97);
        const uint64_t b = interp.machine().run(97);
        ASSERT_EQ(a, b) << "chunk " << i;
        ASSERT_EQ(bbcache.machine().instret(),
                  interp.machine().instret());
        ASSERT_EQ(bbcache.machine().pc(), interp.machine().pc());
    }
    bbcache.run();
    interp.run();
    expectSameState(interp.machine(), bbcache.machine());
}

TEST(BBCache, ObservedExecutionMatchesFastPath)
{
    struct Counter : sim::Observer
    {
        uint64_t retired = 0;
        void onRetire(const sim::InstrRecord &) override { ++retired; }
    };
    const std::string src =
        "li $t0, 50\n"
        "loop:\n"
        "addiu $t1, $t1, 7\n"
        "addiu $t0, $t0, -1\n"
        "bne $t0, $zero, loop\n";
    TestRun fast = runWith(src, ExecBackend::BBCache);
    TestRun observed(src);
    observed.machine().setExecBackend(ExecBackend::BBCache);
    Counter counter;
    observed.machine().addObserver(&counter);
    observed.run();
    EXPECT_EQ(counter.retired, observed.machine().instret());
    expectSameState(fast.machine(), observed.machine());
}

// Self-modifying-code regression: a store into a translated page must
// invalidate the page's blocks, and the retranslated block must
// execute identically (translation reads the immutable pre-decode, so
// only the cache bookkeeping may change).
TEST(BBCache, StoreIntoTextInvalidatesAndRetranslates)
{
    const std::string src =
        "lui $t3, 0x0040\n"     // textBase = 0x00400000
        "li $t0, 10\n"
        "loop:\n"
        "sw $t0, 0($t3)\n"      // store into the executing page
        "addiu $t1, $t1, 2\n"
        "addiu $t0, $t0, -1\n"
        "bne $t0, $zero, loop\n";
    TestRun run(src);
    sim::Machine &machine = run.machine();
    machine.setExecBackend(ExecBackend::BBCache);
    run.run();
    EXPECT_EQ(machine.reg(9), 20u);
    // Every re-entry of the loop block sees a stale generation.
    EXPECT_GE(machine.blockCache().invalidations(), 5u);
    expectBackendsAgree(src);
}

// A read syscall landing its bytes in the text segment must count as
// stores for invalidation (writeBlock, not write8/16/32).
TEST(BBCache, ReadSyscallIntoTextInvalidates)
{
    // Loop so the block holding the syscall is *re-entered* after its
    // page was written — only re-entry can observe the stale snapshot.
    const std::string src =
        "li $t0, 2\n"
        "loop:\n"
        "lui $a0, 0x0040\n"     // read buffer = textBase
        "li $a1, 4\n"
        "li $v0, 2\n"
        "syscall\n"
        "addiu $t1, $t1, 1\n"
        "addiu $t0, $t0, -1\n"
        "bne $t0, $zero, loop\n";
    TestRun run(src);
    sim::Machine &machine = run.machine();
    machine.setExecBackend(ExecBackend::BBCache);
    machine.setInput("ABCDEFGH");
    run.run();
    EXPECT_EQ(machine.reg(9), 2u);
    EXPECT_GE(machine.blockCache().invalidations(), 1u);
}

TEST(BBCache, CapacityBoundEvictsWithoutChangingResults)
{
    // Four alternating blocks: a bound of one block forces constant
    // eviction while results must stay exact.
    const std::string src =
        "li $t0, 100\n"
        "loop:\n"
        "andi $t2, $t0, 1\n"
        "beq $t2, $zero, even\n"
        "addiu $t1, $t1, 3\n"
        "j join\n"
        "even:\n"
        "addiu $t1, $t1, 5\n"
        "join:\n"
        "addiu $t0, $t0, -1\n"
        "bne $t0, $zero, loop\n";
    TestRun run(src);
    sim::Machine &machine = run.machine();
    machine.setExecBackend(ExecBackend::BBCache);
    machine.blockCache().setCapacity(1);
    run.run();
    EXPECT_EQ(machine.reg(9), 400u);    // 50*3 + 50*5
    EXPECT_GT(machine.blockCache().evictions(), 0u);
    EXPECT_LE(machine.blockCache().liveBlocks(), 1u);

    TestRun interp = runWith(src, ExecBackend::Interp);
    expectSameState(interp.machine(), machine);
}

TEST(BBCache, CountersTrackTranslation)
{
    const std::string src =
        "li $t0, 3\n"
        "loop:\n"
        "addiu $t0, $t0, -1\n"
        "bne $t0, $zero, loop\n";
    TestRun run(src);
    sim::Machine &machine = run.machine();
    machine.setExecBackend(ExecBackend::BBCache);
    run.run();
    EXPECT_GT(machine.blockCache().blocksTranslated(), 0u);
    EXPECT_EQ(machine.blockCache().blocksTranslated(),
              machine.blockCache().liveBlocks());
    EXPECT_EQ(machine.blockCache().invalidations(), 0u);
    EXPECT_EQ(machine.blockCache().evictions(), 0u);
}

// Faults must surface with the interpreter's exact pc/instret/message.
TEST(BBCache, FaultsMatchInterpreterDiagnostics)
{
    const std::string src =
        "li $t0, 2\n"
        "lw $t1, 1($t0)\n";     // misaligned load, mid-block
    std::string interpWhat, bbcacheWhat;
    uint64_t interpRetired = 0, bbcacheRetired = 0;
    uint32_t interpPc = 0, bbcachePc = 0;
    {
        TestRun run(src);
        try {
            run.run();
            FAIL() << "expected a fault";
        } catch (const FatalError &e) {
            interpWhat = e.what();
            interpRetired = run.machine().instret();
            interpPc = run.machine().pc();
        }
    }
    {
        TestRun run(src);
        run.machine().setExecBackend(ExecBackend::BBCache);
        try {
            run.run();
            FAIL() << "expected a fault";
        } catch (const FatalError &e) {
            bbcacheWhat = e.what();
            bbcacheRetired = run.machine().instret();
            bbcachePc = run.machine().pc();
        }
    }
    EXPECT_EQ(interpWhat, bbcacheWhat);
    EXPECT_EQ(interpRetired, bbcacheRetired);
    EXPECT_EQ(interpPc, bbcachePc);
}

// A jump leaving the text segment faults on the *next* fetch: the
// jump itself has retired and pc names the bad target — the block
// cache must report exactly the interpreter's state, not the
// terminator's.
TEST(BBCache, BlockExitFaultsMatchInterpreterDiagnostics)
{
    const std::string src =
        "li $t0, 0x10000000\n"
        "jr $t0\n";     // aligned target far outside text
    std::string interpWhat, bbcacheWhat;
    uint64_t interpRetired = 0, bbcacheRetired = 0;
    uint32_t interpPc = 0, bbcachePc = 0;
    {
        TestRun run(src);
        try {
            run.run();
            FAIL() << "expected a fault";
        } catch (const FatalError &e) {
            interpWhat = e.what();
            interpRetired = run.machine().instret();
            interpPc = run.machine().pc();
        }
    }
    {
        TestRun run(src);
        run.machine().setExecBackend(ExecBackend::BBCache);
        try {
            run.run();
            FAIL() << "expected a fault";
        } catch (const FatalError &e) {
            bbcacheWhat = e.what();
            bbcacheRetired = run.machine().instret();
            bbcachePc = run.machine().pc();
        }
    }
    EXPECT_EQ(interpWhat, bbcacheWhat);
    EXPECT_EQ(interpRetired, bbcacheRetired);
    EXPECT_EQ(interpPc, bbcachePc);
}

} // namespace
} // namespace irep
