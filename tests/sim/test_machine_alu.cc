/**
 * @file
 * ALU semantics: a parameterized sweep over every integer operation
 * with edge-case operands (wrap-around, sign boundaries, shift
 * amounts, division corner cases).
 */

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "isa/registers.hh"
#include "sim_test_util.hh"

namespace irep
{
namespace
{

/** Run "li a; li b; <op> $t2, $t0, $t1" and return $t2. */
uint32_t
evalRRR(const std::string &op, uint32_t a, uint32_t b)
{
    test::TestRun run(
        "li $t0, " + std::to_string(int64_t(int32_t(a))) + "\n" +
        "li $t1, " + std::to_string(int64_t(int32_t(b))) + "\n" +
        op + " $t2, $t0, $t1\n");
    run.run();
    EXPECT_TRUE(run.machine().halted());
    return run.machine().reg(isa::regT0 + 2);
}

/** Run "li a; <op> $t2, $t0, imm" and return $t2. */
uint32_t
evalRRI(const std::string &op, uint32_t a, int imm)
{
    test::TestRun run(
        "li $t0, " + std::to_string(int64_t(int32_t(a))) + "\n" + op +
        " $t2, $t0, " + std::to_string(imm) + "\n");
    run.run();
    return run.machine().reg(isa::regT0 + 2);
}

struct RRRCase
{
    const char *op;
    uint32_t a;
    uint32_t b;
    uint32_t expect;
};

class AluRRRTest : public ::testing::TestWithParam<RRRCase>
{
};

TEST_P(AluRRRTest, ComputesExpected)
{
    const RRRCase &c = GetParam();
    EXPECT_EQ(evalRRR(c.op, c.a, c.b), c.expect)
        << c.op << "(" << c.a << ", " << c.b << ")";
}

constexpr uint32_t intMin = 0x80000000u;

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, AluRRRTest,
    ::testing::Values(
        RRRCase{"addu", 1, 2, 3},
        RRRCase{"addu", 0xffffffffu, 1, 0},                 // wrap
        RRRCase{"addu", 0x7fffffffu, 1, 0x80000000u},
        RRRCase{"add", 40, 2, 42},
        RRRCase{"subu", 5, 7, uint32_t(-2)},
        RRRCase{"subu", 0, 1, 0xffffffffu},
        RRRCase{"sub", 10, 3, 7},
        RRRCase{"and", 0xff00ff00u, 0x0ff00ff0u, 0x0f000f00u},
        RRRCase{"or", 0xf0f0f0f0u, 0x0f0f0f0fu, 0xffffffffu},
        RRRCase{"xor", 0xaaaaaaaau, 0xffffffffu, 0x55555555u},
        RRRCase{"nor", 0, 0, 0xffffffffu},
        RRRCase{"nor", 0xf0f0f0f0u, 0x0f0f0f0fu, 0}));

INSTANTIATE_TEST_SUITE_P(
    Compare, AluRRRTest,
    ::testing::Values(
        RRRCase{"slt", 1, 2, 1},
        RRRCase{"slt", 2, 1, 0},
        RRRCase{"slt", 2, 2, 0},
        RRRCase{"slt", uint32_t(-1), 0, 1},         // signed
        RRRCase{"slt", intMin, 0, 1},
        RRRCase{"sltu", uint32_t(-1), 0, 0},        // unsigned
        RRRCase{"sltu", 0, uint32_t(-1), 1},
        RRRCase{"sltu", intMin, 1, 0}));

INSTANTIATE_TEST_SUITE_P(
    VariableShifts, AluRRRTest,
    ::testing::Values(
        // sllv/srlv/srav take the shift amount in rs (our assembler
        // syntax is `sllv rd, rt, rs`, so a=value is $t0... note:
        // assembler maps `sllv $t2, $t0, $t1` to rt=$t0 rs=$t1).
        RRRCase{"sllv", 1, 4, 16},
        RRRCase{"sllv", 1, 33, 2},                  // shift mod 32
        RRRCase{"srlv", 0x80000000u, 31, 1},
        RRRCase{"srav", 0x80000000u, 31, 0xffffffffu},
        RRRCase{"srav", 0x40000000u, 30, 1}));

TEST(Alu, ShiftImmediates)
{
    EXPECT_EQ(evalRRI("sll", 1, 4), 16u);
    EXPECT_EQ(evalRRI("sll", 0xffffffffu, 31), 0x80000000u);
    EXPECT_EQ(evalRRI("srl", 0x80000000u, 31), 1u);
    EXPECT_EQ(evalRRI("sra", 0x80000000u, 31), 0xffffffffu);
    EXPECT_EQ(evalRRI("sll", 123, 0), 123u);
}

TEST(Alu, ImmediateOps)
{
    EXPECT_EQ(evalRRI("addiu", 40, 2), 42u);
    EXPECT_EQ(evalRRI("addiu", 0, -1), 0xffffffffu);
    EXPECT_EQ(evalRRI("andi", 0xffffu, 0xff00), 0xff00u);
    EXPECT_EQ(evalRRI("ori", 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(evalRRI("xori", 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(evalRRI("slti", 5, 6), 1u);
    EXPECT_EQ(evalRRI("slti", uint32_t(-5), -6), 0u);
    // sltiu: immediate is sign-extended then compared unsigned, so
    // -1 becomes 0xffffffff (everything except 0xffffffff is below).
    EXPECT_EQ(evalRRI("sltiu", 5, -1), 1u);
    EXPECT_EQ(evalRRI("sltiu", 0xffffffffu, -1), 0u);
}

TEST(Alu, Lui)
{
    test::TestRun run("lui $t2, 0x1234\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 0x12340000u);
}

TEST(Alu, ZeroRegisterIsImmutable)
{
    test::TestRun run("li $t0, 7\naddu $zero, $t0, $t0\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regZero), 0u);
}

// ---------------------------------------------------------------------
// Multiply / divide through HI/LO.
// ---------------------------------------------------------------------

struct MulDivCase
{
    const char *op;     //!< mult/multu/div/divu
    uint32_t a;
    uint32_t b;
    uint32_t expectHi;
    uint32_t expectLo;
};

class MulDivTest : public ::testing::TestWithParam<MulDivCase>
{
};

TEST_P(MulDivTest, HiLoAreCorrect)
{
    const MulDivCase &c = GetParam();
    test::TestRun run(
        "li $t0, " + std::to_string(int64_t(int32_t(c.a))) + "\n" +
        "li $t1, " + std::to_string(int64_t(int32_t(c.b))) + "\n" +
        std::string(c.op) + " $t0, $t1\n" +
        "mfhi $t2\n"
        "mflo $t3\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), c.expectHi) << "hi";
    EXPECT_EQ(run.machine().reg(isa::regT0 + 3), c.expectLo) << "lo";
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MulDivTest,
    ::testing::Values(
        MulDivCase{"mult", 6, 7, 0, 42},
        MulDivCase{"mult", uint32_t(-3), 7, 0xffffffffu,
                   uint32_t(-21)},
        MulDivCase{"mult", 0x10000u, 0x10000u, 1, 0},
        MulDivCase{"multu", 0xffffffffu, 2, 1, 0xfffffffeu},
        MulDivCase{"multu", 0x80000000u, 2, 1, 0},
        MulDivCase{"div", 42, 5, 2, 8},
        MulDivCase{"div", uint32_t(-42), 5, uint32_t(-2),
                   uint32_t(-8)},                    // trunc toward 0
        MulDivCase{"div", 42, uint32_t(-5), 2, uint32_t(-8)},
        MulDivCase{"div", 7, 0, 0, 0},               // defined as 0
        MulDivCase{"div", intMin, uint32_t(-1), 0, intMin},
        MulDivCase{"divu", 42, 5, 2, 8},
        MulDivCase{"divu", 0xffffffffu, 0x10000u, 0xffffu, 0xffffu},
        MulDivCase{"divu", 7, 0, 0, 0}));

TEST(Alu, MthiMtlo)
{
    test::TestRun run(
        "li $t0, 11\n"
        "li $t1, 22\n"
        "mthi $t0\n"
        "mtlo $t1\n"
        "mfhi $t2\n"
        "mflo $t3\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 11u);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 3), 22u);
}

} // namespace
} // namespace irep
