/**
 * @file
 * Helpers for simulator and analysis tests: assemble a snippet, run
 * it on a Machine, inspect the final state. Snippets must end by
 * exiting (the helper appends an exit sequence unless asked not to).
 */

#ifndef IREP_TESTS_SIM_TEST_UTIL_HH
#define IREP_TESTS_SIM_TEST_UTIL_HH

#include <memory>
#include <string>

#include "asm/assembler.hh"
#include "sim/machine.hh"

namespace irep::test
{

/** An assembled program plus a machine executing it. */
class TestRun
{
  public:
    /**
     * @param source      Assembly source.
     * @param append_exit Append `li $v0,1; move $a0,$zero; syscall`
     *                    so straight-line snippets halt cleanly.
     */
    explicit TestRun(const std::string &source, bool append_exit = true)
        : program_(assem::assemble(
              append_exit ? source + exitSequence() : source)),
          machine_(std::make_unique<sim::Machine>(program_))
    {}

    static std::string
    exitSequence()
    {
        return "\nli $v0, 1\nmove $a0, $zero\nsyscall\n";
    }

    sim::Machine &machine() { return *machine_; }
    const assem::Program &program() const { return program_; }

    /** Run to completion (caps at @p max_instructions). */
    sim::Machine &
    run(uint64_t max_instructions = 1'000'000)
    {
        machine_->run(max_instructions);
        return *machine_;
    }

  private:
    assem::Program program_;
    std::unique_ptr<sim::Machine> machine_;
};

} // namespace irep::test

#endif // IREP_TESTS_SIM_TEST_UTIL_HH
