/**
 * @file
 * Sparse-memory unit tests: widths, page behaviour, block transfers
 * across page boundaries, alignment enforcement.
 */

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "sim/memory.hh"
#include "support/logging.hh"

namespace irep::sim
{
namespace
{

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    EXPECT_EQ(mem.read8(0), 0);
    EXPECT_EQ(mem.read32(0x7ffffffcu), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory mem;
    mem.write8(100, 0xab);
    EXPECT_EQ(mem.read8(100), 0xab);
    EXPECT_EQ(mem.read8(99), 0);
    EXPECT_EQ(mem.read8(101), 0);
}

TEST(Memory, WordRoundTrip)
{
    Memory mem;
    mem.write32(0x1000, 0xdeadbeefu);
    EXPECT_EQ(mem.read32(0x1000), 0xdeadbeefu);
    // Little-endian byte view.
    EXPECT_EQ(mem.read8(0x1000), 0xef);
    EXPECT_EQ(mem.read8(0x1003), 0xde);
}

TEST(Memory, HalfRoundTrip)
{
    Memory mem;
    mem.write16(0x2000, 0x1234);
    EXPECT_EQ(mem.read16(0x2000), 0x1234);
    EXPECT_EQ(mem.read8(0x2000), 0x34);
}

TEST(Memory, MisalignedAccessesAreFatal)
{
    Memory mem;
    EXPECT_THROW(mem.read32(2), FatalError);
    EXPECT_THROW(mem.read16(1), FatalError);
    EXPECT_THROW(mem.write32(6, 0), FatalError);
    EXPECT_THROW(mem.write16(3, 0), FatalError);
}

TEST(Memory, PagesAllocatedSparsely)
{
    Memory mem;
    mem.write8(0, 1);
    mem.write8(0x40000000u, 2);
    mem.write8(0x7fffffffu, 3);
    EXPECT_EQ(mem.numPages(), 3u);
}

TEST(Memory, BlockTransferWithinPage)
{
    Memory mem;
    const std::string data = "hello, world";
    mem.writeBlock(0x100, data.data(), uint32_t(data.size()));
    char out[32] = {};
    mem.readBlock(0x100, out, uint32_t(data.size()));
    EXPECT_EQ(std::string(out), data);
}

TEST(Memory, BlockTransferAcrossPageBoundary)
{
    Memory mem;
    std::string data(3 * Memory::pageSize / 2, '\0');
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = char(i * 31 + 7);
    const uint32_t base = Memory::pageSize - 100;
    mem.writeBlock(base, data.data(), uint32_t(data.size()));

    std::string out(data.size(), '\0');
    mem.readBlock(base, out.data(), uint32_t(out.size()));
    EXPECT_EQ(out, data);
    EXPECT_GE(mem.numPages(), 2u);
}

TEST(Memory, ZeroLengthBlockIsNoop)
{
    Memory mem;
    EXPECT_NO_THROW(mem.writeBlock(0, nullptr, 0));
    EXPECT_NO_THROW(mem.readBlock(0, nullptr, 0));
}

TEST(Memory, PageBoundaryWordAccess)
{
    Memory mem;
    // Last word of one page, first word of the next.
    const uint32_t boundary = Memory::pageSize;
    mem.write32(boundary - 4, 0x11111111u);
    mem.write32(boundary, 0x22222222u);
    EXPECT_EQ(mem.read32(boundary - 4), 0x11111111u);
    EXPECT_EQ(mem.read32(boundary), 0x22222222u);
}

} // namespace
} // namespace irep::sim
