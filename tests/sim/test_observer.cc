/**
 * @file
 * InstrRecord contract tests: the analyses depend on exact semantics
 * of the per-retire record (source values, result packing, memory
 * addresses, static indices, sequence numbers).
 */

#include <vector>

#include <gtest/gtest.h>

#include "isa/registers.hh"
#include "sim_test_util.hh"

namespace irep
{
namespace
{

struct Capture : sim::Observer
{
    std::vector<sim::InstrRecord> records;

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        records.push_back(rec);
    }
};

/** Run a snippet and capture every retired record. */
std::vector<sim::InstrRecord>
trace(const std::string &source, const std::string &input = "")
{
    static std::vector<std::unique_ptr<test::TestRun>> keep_alive;
    keep_alive.push_back(std::make_unique<test::TestRun>(source));
    auto &run = *keep_alive.back();
    auto capture = std::make_unique<Capture>();
    run.machine().setInput(input);
    run.machine().addObserver(capture.get());
    run.run();
    auto records = std::move(capture->records);
    return records;
}

TEST(Observer, SequenceNumbersAreDense)
{
    const auto records = trace("nop\nnop\nnop\n");
    ASSERT_GE(records.size(), 3u);
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].seq, i);
}

TEST(Observer, StaticIndexMatchesPc)
{
    const auto records = trace("nop\nnop\n");
    for (const auto &rec : records) {
        EXPECT_EQ(rec.staticIndex,
                  (rec.pc - assem::Layout::textBase) / 4);
    }
}

TEST(Observer, AluRecordHasSourcesAndResult)
{
    const auto records = trace(
        "li $t0, 6\n"
        "li $t1, 7\n"
        "addu $t2, $t0, $t1\n");
    const auto &add = records[2];
    EXPECT_EQ(add.inst->op, isa::Op::ADDU);
    EXPECT_EQ(add.numSrcRegs, 2);
    EXPECT_EQ(add.srcVal[0], 6u);
    EXPECT_EQ(add.srcVal[1], 7u);
    EXPECT_TRUE(add.writesReg);
    EXPECT_EQ(add.destReg, isa::regT0 + 2);
    EXPECT_EQ(add.result, 13u);
    EXPECT_FALSE(add.isMemAccess);
}

TEST(Observer, LoadRecordHasAddressAndLoadedValue)
{
    const auto records = trace(
        ".data\nv: .word 0x1234\n.text\n"
        "la $t0, v\n"
        "lw $t1, 0($t0)\n");
    // la = lui+ori, so the lw is record 2.
    const auto &lw = records[2];
    ASSERT_EQ(lw.inst->op, isa::Op::LW);
    EXPECT_TRUE(lw.isMemAccess);
    EXPECT_EQ(lw.memAddr, assem::Layout::dataBase);
    EXPECT_EQ(lw.result, 0x1234u);
    EXPECT_EQ(lw.numSrcRegs, 1);
    EXPECT_EQ(lw.srcVal[0], assem::Layout::dataBase);
}

TEST(Observer, StoreRecordHasAddressAndStoredValue)
{
    const auto records = trace(
        ".data\nv: .word 0\n.text\n"
        "la $t0, v\n"
        "li $t1, 55\n"
        "sw $t1, 0($t0)\n");
    const auto &sw = records[3];
    ASSERT_EQ(sw.inst->op, isa::Op::SW);
    EXPECT_TRUE(sw.isMemAccess);
    EXPECT_FALSE(sw.writesReg);
    EXPECT_EQ(sw.memAddr, assem::Layout::dataBase);
    EXPECT_EQ(sw.result, 55u);
    EXPECT_EQ(sw.numSrcRegs, 2);
    EXPECT_EQ(sw.srcVal[1], 55u);   // rt value (rs, rt) order
}

TEST(Observer, BranchRecordEncodesTakenness)
{
    const auto records = trace(
        "li $t0, 1\n"
        "beq $t0, $zero, skip\n"     // not taken
        "bne $t0, $zero, skip\n"     // taken
        "nop\n"
        "skip:\n");
    const auto &not_taken = records[1];
    const auto &taken = records[2];
    EXPECT_EQ(not_taken.result, 0u);
    EXPECT_EQ(not_taken.nextPc, not_taken.pc + 4);
    EXPECT_EQ(taken.result, 1u);
    EXPECT_NE(taken.nextPc, taken.pc + 4);
}

TEST(Observer, JalRecordLinksAndJumps)
{
    const auto records = trace(
        "jal f\n"
        "b done\n"
        "f: jr $ra\n"
        "done:\n");
    const auto &jal = records[0];
    EXPECT_TRUE(jal.writesReg);
    EXPECT_EQ(jal.destReg, isa::regRA);
    EXPECT_EQ(jal.result, jal.pc + 4);
    EXPECT_EQ(jal.nextPc, assem::Layout::textBase + 8);

    const auto &jr = records[1];
    ASSERT_EQ(jr.inst->op, isa::Op::JR);
    EXPECT_EQ(jr.nextPc, assem::Layout::textBase + 4);
    EXPECT_EQ(jr.numSrcRegs, 1);
}

TEST(Observer, MultRecordPacksHiLo)
{
    const auto records = trace(
        "li $t0, 0x10000\n"
        "li $t1, 0x10000\n"
        "mult $t0, $t1\n");
    const auto &mult = records[2];
    EXPECT_EQ(mult.result, uint64_t(1) << 32);
    EXPECT_FALSE(mult.writesReg);
}

TEST(Observer, MfhiExposesHiAsSource)
{
    const auto records = trace(
        "li $t0, 3\n"
        "li $t1, 5\n"
        "mult $t0, $t1\n"
        "mfhi $t2\n"
        "mflo $t3\n");
    EXPECT_EQ(records[3].numSrcRegs, 1);
    EXPECT_EQ(records[3].srcVal[0], 0u);    // hi
    EXPECT_EQ(records[4].numSrcRegs, 1);
    EXPECT_EQ(records[4].srcVal[0], 15u);   // lo
}

TEST(Observer, SyscallRecordHasInputsAndResult)
{
    const auto records = trace(
        ".data\nbuf: .space 4\n.text\n"
        "la $a0, buf\n"
        "li $a1, 4\n"
        "li $v0, 2\n"
        "syscall\n",
        "ab");
    const auto &sys = records[4];
    ASSERT_EQ(sys.inst->op, isa::Op::SYSCALL);
    EXPECT_EQ(sys.numSrcRegs, 2);
    EXPECT_EQ(sys.srcVal[0], 2u);   // syscall number from $v0
    EXPECT_TRUE(sys.writesReg);
    EXPECT_EQ(sys.destReg, isa::regV0);
    EXPECT_EQ(sys.result, 2u);      // bytes read
}

TEST(Observer, MultipleObserversAllNotified)
{
    test::TestRun run("nop\n");
    Capture a;
    Capture b;
    run.machine().addObserver(&a);
    run.machine().addObserver(&b);
    run.run();
    EXPECT_EQ(a.records.size(), b.records.size());
    EXPECT_GE(a.records.size(), 1u);
}


TEST(Observer, RemoveObserverStopsNotifications)
{
    test::TestRun run("nop\nnop\nnop\n");
    Capture a;
    Capture b;
    run.machine().addObserver(&a);
    run.machine().addObserver(&b);
    run.machine().step();
    run.machine().removeObserver(&a);
    run.run();
    EXPECT_EQ(a.records.size(), 1u);
    EXPECT_GT(b.records.size(), 1u);
}

TEST(Observer, RemoveUnknownObserverIsANoop)
{
    test::TestRun run("nop\n");
    Capture a;
    run.machine().removeObserver(&a);    // never attached
    run.machine().addObserver(&a);
    run.machine().removeObserver(&a);
    run.machine().removeObserver(&a);    // already detached
    run.run();
    EXPECT_TRUE(a.records.empty());
}

} // namespace
} // namespace irep
