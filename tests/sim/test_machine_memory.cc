/**
 * @file
 * Load/store semantics: sizes, sign/zero extension, data-section
 * initialization, endianness, stack accesses.
 */

#include <gtest/gtest.h>

#include "isa/registers.hh"
#include "sim_test_util.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

TEST(MachineMemory, DataSectionIsLoaded)
{
    test::TestRun run(
        ".data\n"
        "val: .word 0xcafebabe\n"
        ".text\n"
        "la $t0, val\n"
        "lw $t1, 0($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 1), 0xcafebabeu);
}

TEST(MachineMemory, StoreThenLoadWord)
{
    test::TestRun run(
        ".data\n"
        "buf: .space 16\n"
        ".text\n"
        "la $t0, buf\n"
        "li $t1, 0x11223344\n"
        "sw $t1, 8($t0)\n"
        "lw $t2, 8($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 0x11223344u);
}

TEST(MachineMemory, ByteSignExtension)
{
    test::TestRun run(
        ".data\n"
        "b: .byte 0x80, 0x7f\n"
        ".text\n"
        "la $t0, b\n"
        "lb $t1, 0($t0)\n"
        "lb $t2, 1($t0)\n"
        "lbu $t3, 0($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 1), 0xffffff80u);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 0x7fu);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 3), 0x80u);
}

TEST(MachineMemory, HalfSignExtension)
{
    test::TestRun run(
        ".data\n"
        "h: .half 0x8000, 0x1234\n"
        ".text\n"
        "la $t0, h\n"
        "lh $t1, 0($t0)\n"
        "lhu $t2, 0($t0)\n"
        "lh $t3, 2($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 1), 0xffff8000u);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 0x8000u);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 3), 0x1234u);
}

TEST(MachineMemory, ByteStoresTruncate)
{
    test::TestRun run(
        ".data\n"
        "buf: .word 0\n"
        ".text\n"
        "la $t0, buf\n"
        "li $t1, 0x1ff\n"
        "sb $t1, 0($t0)\n"
        "lw $t2, 0($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 0xffu);
}

TEST(MachineMemory, LittleEndianByteOrder)
{
    test::TestRun run(
        ".data\n"
        "w: .word 0x04030201\n"
        ".text\n"
        "la $t0, w\n"
        "lbu $t1, 0($t0)\n"
        "lbu $t2, 3($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 1), 1u);
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 4u);
}

TEST(MachineMemory, HalfStore)
{
    test::TestRun run(
        ".data\nbuf: .word 0xffffffff\n.text\n"
        "la $t0, buf\n"
        "li $t1, 0x1234\n"
        "sh $t1, 0($t0)\n"
        "lw $t2, 0($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 0xffff1234u);
}

TEST(MachineMemory, StackIsWritable)
{
    test::TestRun run(
        "addiu $sp, $sp, -16\n"
        "li $t1, 77\n"
        "sw $t1, 4($sp)\n"
        "lw $t2, 4($sp)\n"
        "addiu $sp, $sp, 16\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 2), 77u);
}

TEST(MachineMemory, NegativeOffsets)
{
    test::TestRun run(
        ".data\n.word 0\nval: .word 99\n.text\n"
        "la $t0, val\n"
        "addiu $t0, $t0, 4\n"
        "lw $t1, -4($t0)\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0 + 1), 99u);
}

TEST(MachineMemory, MisalignedWordAccessIsFatal)
{
    test::TestRun run(
        "li $t0, 0x10000001\n"
        "lw $t1, 0($t0)\n",
        false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(MachineMemory, MisalignedHalfAccessIsFatal)
{
    test::TestRun run(
        "li $t0, 0x10000001\n"
        "sh $t1, 0($t0)\n",
        false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(MachineMemory, GpPointsIntoDataSegment)
{
    test::TestRun run("move $t0, $gp\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), assem::Layout::gpValue);
}

TEST(MachineMemory, SpStartsAtStackTop)
{
    test::TestRun run("move $t0, $sp\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), assem::Layout::stackTop);
}

} // namespace
} // namespace irep
