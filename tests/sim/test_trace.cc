/**
 * @file
 * Retire-tracer and progress-meter tests: sampling arithmetic (first
 * and last retired instruction, interval boundaries), PC filtering,
 * JSONL validity, and heartbeat cadence.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "asm/program.hh"
#include "sim/trace.hh"
#include "sim_test_util.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

/** Count newline-terminated lines. */
size_t
lineCount(const std::string &text)
{
    size_t n = 0;
    for (char c : text) {
        if (c == '\n')
            ++n;
    }
    return n;
}

/** A straight-line program of exactly @p n nops (+ 3-instr exit). */
std::string
nops(size_t n)
{
    std::string src;
    for (size_t i = 0; i < n; ++i)
        src += "nop\n";
    return src;
}

TEST(RetireTracer, RecordsEveryInstructionByDefault)
{
    test::TestRun run(nops(5));    // 5 nops + 3 exit instructions
    std::ostringstream os;
    sim::RetireTracer tracer(os);
    run.machine().addObserver(&tracer);
    run.run();
    EXPECT_EQ(tracer.observed(), 8u);
    EXPECT_EQ(tracer.emitted(), 8u);
    EXPECT_EQ(lineCount(os.str()), 8u);
}

TEST(RetireTracer, SamplingKeepsFirstAndEveryNth)
{
    // 7 retired instructions, interval 3 -> seq 0, 3, 6 recorded.
    test::TestRun run(nops(4));
    std::ostringstream os;
    sim::TraceConfig config;
    config.sampleInterval = 3;
    config.format = sim::TraceConfig::Format::Jsonl;
    sim::RetireTracer tracer(os, config);
    run.machine().addObserver(&tracer);
    run.run();

    EXPECT_EQ(tracer.observed(), 7u);
    EXPECT_EQ(tracer.emitted(), 3u);

    std::istringstream lines(os.str());
    std::string line;
    std::vector<uint64_t> seqs;
    while (std::getline(lines, line))
        seqs.push_back(json::parse(line).at("seq").asU64());
    EXPECT_EQ(seqs, (std::vector<uint64_t>{0, 3, 6}));
}

TEST(RetireTracer, IntervalBoundaryExactMultiple)
{
    // 8 retired instructions, interval 4 -> seq 0 and 4; the 8th
    // instruction (seq 7) is not a sample point.
    test::TestRun run(nops(5));
    std::ostringstream os;
    sim::TraceConfig config;
    config.sampleInterval = 4;
    sim::RetireTracer tracer(os, config);
    run.machine().addObserver(&tracer);
    run.run();
    EXPECT_EQ(tracer.observed(), 8u);
    EXPECT_EQ(tracer.emitted(), 2u);
}

TEST(RetireTracer, IntervalLargerThanRunEmitsFirstOnly)
{
    test::TestRun run(nops(2));
    std::ostringstream os;
    sim::TraceConfig config;
    config.sampleInterval = 1000;
    sim::RetireTracer tracer(os, config);
    run.machine().addObserver(&tracer);
    run.run();
    EXPECT_EQ(tracer.emitted(), 1u);
    // The one record is the very first retired instruction.
    EXPECT_NE(os.str().find("         0  "), std::string::npos)
        << os.str();
}

TEST(RetireTracer, PcFilterGatesSamplingCounter)
{
    // Only the two nops at textBase and textBase+4 pass the filter;
    // with interval 2 exactly the first of them is emitted.
    test::TestRun run(nops(6));
    std::ostringstream os;
    sim::TraceConfig config;
    config.filterPc = true;
    config.pcLo = assem::Layout::textBase;
    config.pcHi = assem::Layout::textBase + 4;
    config.sampleInterval = 2;
    config.format = sim::TraceConfig::Format::Jsonl;
    sim::RetireTracer tracer(os, config);
    run.machine().addObserver(&tracer);
    run.run();
    EXPECT_EQ(tracer.observed(), 2u);
    EXPECT_EQ(tracer.emitted(), 1u);
    EXPECT_EQ(json::parse(os.str()).at("pc").asU64(),
              uint64_t(assem::Layout::textBase));
}

TEST(RetireTracer, JsonlRecordsCarryOperands)
{
    test::TestRun run(
        "li $t0, 6\n"
        "li $t1, 7\n"
        "addu $t2, $t0, $t1\n");
    std::ostringstream os;
    sim::TraceConfig config;
    config.format = sim::TraceConfig::Format::Jsonl;
    sim::RetireTracer tracer(os, config);
    run.machine().addObserver(&tracer);
    run.run();

    std::istringstream lines(os.str());
    std::string line;
    std::vector<json::Value> records;
    while (std::getline(lines, line))
        records.push_back(json::parse(line));
    ASSERT_GE(records.size(), 3u);
    const json::Value &add = records[2];
    EXPECT_EQ(add.at("src").at(0).asU64(), 6u);
    EXPECT_EQ(add.at("src").at(1).asU64(), 7u);
    EXPECT_EQ(add.at("result").asU64(), 13u);
}

TEST(RetireTracer, RejectsBadConfig)
{
    std::ostringstream os;
    sim::TraceConfig zero;
    zero.sampleInterval = 0;
    EXPECT_THROW(sim::RetireTracer(os, zero), FatalError);

    sim::TraceConfig empty;
    empty.filterPc = true;
    empty.pcLo = 8;
    empty.pcHi = 4;
    EXPECT_THROW(sim::RetireTracer(os, empty), FatalError);
}

TEST(ProgressMeter, BeatsAtConfiguredCadence)
{
    // 13 retired instructions at interval 5 -> beats after 5 and 10.
    test::TestRun run(nops(10));
    std::ostringstream os;
    sim::ProgressMeter meter(5, os);
    run.machine().addObserver(&meter);
    run.run();
    EXPECT_EQ(meter.beats(), 2u);
    EXPECT_EQ(lineCount(os.str()), 2u);
    EXPECT_NE(os.str().find("[run] 5 instret"), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("MIPS"), std::string::npos);
}

TEST(ProgressMeter, PhaseLabelAppearsInBeats)
{
    test::TestRun run(nops(5));
    std::ostringstream os;
    sim::ProgressMeter meter(4, os);
    meter.setPhase("window");
    run.machine().addObserver(&meter);
    run.run();
    EXPECT_EQ(meter.beats(), 2u);
    EXPECT_NE(os.str().find("[window]"), std::string::npos)
        << os.str();
}

TEST(ProgressMeter, RejectsZeroInterval)
{
    std::ostringstream os;
    EXPECT_THROW(sim::ProgressMeter(0, os), FatalError);
}

} // namespace
} // namespace irep
