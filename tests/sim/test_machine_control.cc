/**
 * @file
 * Control-flow semantics: branches (taken/not-taken, all conditions),
 * jumps, call/return linkage, and loops.
 */

#include <gtest/gtest.h>

#include "isa/registers.hh"
#include "sim_test_util.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

/**
 * Run a snippet where the branch under test either jumps over
 * `li $t2, 1` (so $t2 stays 0) or falls through into it.
 * @return true when the branch was taken.
 */
bool
branchTaken(const std::string &setup, const std::string &branch)
{
    test::TestRun run(setup + "\n" + branch + " over\n" +
                      "li $t2, 1\n"
                      "over:\n");
    run.run();
    return run.machine().reg(isa::regT0 + 2) == 0;
}

struct BranchCase
{
    const char *name;
    const char *setup;
    const char *branch;
    bool taken;
};

class BranchTest : public ::testing::TestWithParam<BranchCase>
{
};

TEST_P(BranchTest, TakenMatchesSemantics)
{
    const BranchCase &c = GetParam();
    EXPECT_EQ(branchTaken(c.setup, c.branch), c.taken) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConditions, BranchTest,
    ::testing::Values(
        BranchCase{"beq_eq", "li $t0, 5\nli $t1, 5",
                   "beq $t0, $t1,", true},
        BranchCase{"beq_ne", "li $t0, 5\nli $t1, 6",
                   "beq $t0, $t1,", false},
        BranchCase{"bne_ne", "li $t0, 5\nli $t1, 6",
                   "bne $t0, $t1,", true},
        BranchCase{"bne_eq", "li $t0, 5\nli $t1, 5",
                   "bne $t0, $t1,", false},
        BranchCase{"blez_neg", "li $t0, -1", "blez $t0,", true},
        BranchCase{"blez_zero", "li $t0, 0", "blez $t0,", true},
        BranchCase{"blez_pos", "li $t0, 1", "blez $t0,", false},
        BranchCase{"bgtz_pos", "li $t0, 1", "bgtz $t0,", true},
        BranchCase{"bgtz_zero", "li $t0, 0", "bgtz $t0,", false},
        BranchCase{"bltz_neg", "li $t0, -5", "bltz $t0,", true},
        BranchCase{"bltz_zero", "li $t0, 0", "bltz $t0,", false},
        BranchCase{"bgez_zero", "li $t0, 0", "bgez $t0,", true},
        BranchCase{"bgez_neg", "li $t0, -1", "bgez $t0,", false}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(Control, BackwardBranchLoops)
{
    test::TestRun run(
        "li $t0, 0\n"
        "li $t1, 10\n"
        "loop:\n"
        "addiu $t0, $t0, 1\n"
        "bne $t0, $t1, loop\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), 10u);
}

TEST(Control, JalSetsReturnAddress)
{
    test::TestRun run(
        "    jal func\n"
        "    b done\n"
        "func:\n"
        "    move $t0, $ra\n"
        "    jr $ra\n"
        "done:\n");
    run.run();
    EXPECT_TRUE(run.machine().halted());
    // The return address is the instruction after the jal.
    EXPECT_EQ(run.machine().reg(isa::regT0),
              assem::Layout::textBase + 4);
}

TEST(Control, JalrLinksAndJumps)
{
    test::TestRun run(
        "    la $t9, func\n"
        "    jalr $t9\n"
        "    b done\n"
        "func:\n"
        "    move $t0, $ra\n"
        "    jr $ra\n"
        "done:\n");
    run.run();
    EXPECT_TRUE(run.machine().halted());
    // jalr is the 3rd instruction (la expands to 2).
    EXPECT_EQ(run.machine().reg(isa::regT0),
              assem::Layout::textBase + 12);
}

TEST(Control, NestedCalls)
{
    test::TestRun run(
        "    li $t0, 0\n"
        "    jal outer\n"
        "    b done\n"
        "outer:\n"
        "    addiu $sp, $sp, -8\n"
        "    sw $ra, 0($sp)\n"
        "    jal inner\n"
        "    lw $ra, 0($sp)\n"
        "    addiu $sp, $sp, 8\n"
        "    addiu $t0, $t0, 1\n"
        "    jr $ra\n"
        "inner:\n"
        "    addiu $t0, $t0, 10\n"
        "    jr $ra\n"
        "done:\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), 11u);
}

TEST(Control, RecursiveFactorial)
{
    // fact(n): result in $v0; n in $a0.
    test::TestRun run(
        "    li $a0, 6\n"
        "    jal fact\n"
        "    move $t0, $v0\n"
        "    b done\n"
        "fact:\n"
        "    addiu $sp, $sp, -16\n"
        "    sw $ra, 0($sp)\n"
        "    sw $a0, 4($sp)\n"
        "    li $v0, 1\n"
        "    blez $a0, base\n"
        "    addiu $a0, $a0, -1\n"
        "    jal fact\n"
        "    lw $a0, 4($sp)\n"
        "    mul $v0, $v0, $a0\n"
        "base:\n"
        "    lw $ra, 0($sp)\n"
        "    addiu $sp, $sp, 16\n"
        "    jr $ra\n"
        "done:\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), 720u);
}

TEST(Control, PcOutOfTextIsFatal)
{
    // Fall off the end of text (no exit appended).
    test::TestRun run("nop\n", false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(Control, JrToMisalignedAddressIsFatal)
{
    test::TestRun run("li $t0, 3\njr $t0\n", false);
    EXPECT_THROW(run.run(10), FatalError);
}

TEST(Control, StepAfterHaltPanics)
{
    test::TestRun run("");
    run.run();
    ASSERT_TRUE(run.machine().halted());
    EXPECT_THROW(run.machine().step(), PanicError);
}

TEST(Control, RunReturnsExecutedCount)
{
    test::TestRun run("nop\nnop\nnop\n");
    EXPECT_EQ(run.machine().run(2), 2u);
    EXPECT_FALSE(run.machine().halted());
    // 1 nop + 3 exit-sequence instructions remain.
    EXPECT_EQ(run.machine().run(100), 4u);
    EXPECT_TRUE(run.machine().halted());
}

TEST(Control, RunZeroInstructionsIsNoop)
{
    test::TestRun run("nop\n");
    EXPECT_EQ(run.machine().run(0), 0u);
    EXPECT_EQ(run.machine().instret(), 0u);
    EXPECT_FALSE(run.machine().halted());
}

TEST(Control, SetRegCannotWriteZero)
{
    test::TestRun run("nop\n");
    run.machine().setReg(isa::regZero, 123);
    EXPECT_EQ(run.machine().reg(isa::regZero), 0u);
    run.machine().setReg(isa::regT0, 123);
    EXPECT_EQ(run.machine().reg(isa::regT0), 123u);
}

TEST(Control, EntryDefaultsWithoutStartSymbol)
{
    // No _start/main/.entry: execution begins at the text base.
    const assem::Program p = assem::assemble(
        "li $t0, 9\n" + test::TestRun::exitSequence());
    EXPECT_EQ(p.entry, assem::Layout::textBase);
    sim::Machine m(p);
    m.run(100);
    EXPECT_TRUE(m.halted());
    EXPECT_EQ(m.reg(isa::regT0), 9u);
}

TEST(Control, JumpWithinSegmentWrapsCorrectly)
{
    // j uses the 26-bit target field within the current 256MB region.
    test::TestRun run(
        "    j skip\n"
        "    nop\n"
        "skip:\n"
        "    li $t0, 3\n");
    run.run();
    EXPECT_EQ(run.machine().reg(isa::regT0), 3u);
    EXPECT_EQ(run.machine().instret(), 5u);     // j, li, exit x3
}

} // namespace
} // namespace irep
