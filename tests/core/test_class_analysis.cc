/**
 * @file
 * ClassAnalysis tests: classification of every opcode and the
 * per-class statistics.
 */

#include <gtest/gtest.h>

#include "core/class_analysis.hh"
#include "isa/instruction.hh"

namespace irep::core
{
namespace
{

using isa::Op;

isa::Instruction
instFor(Op op)
{
    isa::Instruction i;
    i.op = op;
    return i;
}

TEST(Classify, EveryOpHasAClass)
{
    for (int o = 0; o < int(Op::NUM_OPS); ++o) {
        const InstrClass c = classify(instFor(Op(o)));
        EXPECT_LT(unsigned(c), numInstrClasses)
            << isa::opInfo(Op(o)).mnemonic;
    }
}

TEST(Classify, RepresentativeOps)
{
    EXPECT_EQ(classify(instFor(Op::ADDU)), InstrClass::IntAlu);
    EXPECT_EQ(classify(instFor(Op::SLL)), InstrClass::IntAlu);
    EXPECT_EQ(classify(instFor(Op::LUI)), InstrClass::IntAlu);
    EXPECT_EQ(classify(instFor(Op::SLTIU)), InstrClass::IntAlu);
    EXPECT_EQ(classify(instFor(Op::MULT)), InstrClass::MulDiv);
    EXPECT_EQ(classify(instFor(Op::MFLO)), InstrClass::MulDiv);
    EXPECT_EQ(classify(instFor(Op::MTHI)), InstrClass::MulDiv);
    EXPECT_EQ(classify(instFor(Op::LW)), InstrClass::Load);
    EXPECT_EQ(classify(instFor(Op::LBU)), InstrClass::Load);
    EXPECT_EQ(classify(instFor(Op::SW)), InstrClass::Store);
    EXPECT_EQ(classify(instFor(Op::SB)), InstrClass::Store);
    EXPECT_EQ(classify(instFor(Op::BEQ)), InstrClass::Branch);
    EXPECT_EQ(classify(instFor(Op::BGEZ)), InstrClass::Branch);
    EXPECT_EQ(classify(instFor(Op::J)), InstrClass::Jump);
    EXPECT_EQ(classify(instFor(Op::JAL)), InstrClass::Jump);
    EXPECT_EQ(classify(instFor(Op::JR)), InstrClass::Jump);
    EXPECT_EQ(classify(instFor(Op::JALR)), InstrClass::Jump);
    EXPECT_EQ(classify(instFor(Op::SYSCALL)), InstrClass::Syscall);
}

TEST(ClassAnalysis, CountsPerClass)
{
    ClassAnalysis analysis;
    analysis.setCounting(true);

    isa::Instruction add = instFor(Op::ADDU);
    isa::Instruction lw = instFor(Op::LW);
    sim::InstrRecord rec;

    rec.inst = &add;
    analysis.onInstr(rec, false);
    analysis.onInstr(rec, true);
    rec.inst = &lw;
    analysis.onInstr(rec, true);

    const auto &stats = analysis.stats();
    EXPECT_EQ(stats.totalOverall, 3u);
    EXPECT_EQ(stats.totalRepeated, 2u);
    EXPECT_EQ(stats.overall[unsigned(InstrClass::IntAlu)], 2u);
    EXPECT_EQ(stats.repeated[unsigned(InstrClass::IntAlu)], 1u);
    EXPECT_EQ(stats.overall[unsigned(InstrClass::Load)], 1u);
    EXPECT_DOUBLE_EQ(stats.pctOfAll(InstrClass::IntAlu),
                     200.0 / 3.0);
    EXPECT_DOUBLE_EQ(stats.propensity(InstrClass::IntAlu), 50.0);
    EXPECT_DOUBLE_EQ(stats.pctOfRepetition(InstrClass::Load), 50.0);
}

TEST(ClassAnalysis, CountingGate)
{
    ClassAnalysis analysis;
    isa::Instruction add = instFor(Op::ADDU);
    sim::InstrRecord rec;
    rec.inst = &add;
    analysis.onInstr(rec, true);
    EXPECT_EQ(analysis.stats().totalOverall, 0u);
}

TEST(ClassAnalysis, EmptyStatsAreZeroSafe)
{
    ClassAnalysis analysis;
    const auto &stats = analysis.stats();
    for (unsigned c = 0; c < numInstrClasses; ++c) {
        EXPECT_DOUBLE_EQ(stats.pctOfAll(InstrClass(c)), 0.0);
        EXPECT_DOUBLE_EQ(stats.propensity(InstrClass(c)), 0.0);
        EXPECT_DOUBLE_EQ(stats.pctOfRepetition(InstrClass(c)), 0.0);
    }
}

TEST(ClassAnalysis, NamesAreDistinct)
{
    for (unsigned a = 0; a < numInstrClasses; ++a) {
        for (unsigned b = a + 1; b < numInstrClasses; ++b) {
            EXPECT_NE(instrClassName(InstrClass(a)),
                      instrClassName(InstrClass(b)));
        }
    }
}

} // namespace
} // namespace irep::core
