/**
 * @file
 * TagMemory unit tests: default tags, fills, page behaviour, and the
 * max-over-range query the taint analyses rely on.
 */

#include <gtest/gtest.h>

#include "core/tag_memory.hh"

namespace irep::core
{
namespace
{

TEST(TagMemory, UntouchedReadsDefault)
{
    TagMemory mem(3);
    EXPECT_EQ(mem.read(0), 3);
    EXPECT_EQ(mem.read(0xffffffffu), 3);
}

TEST(TagMemory, FillAndRead)
{
    TagMemory mem(0);
    mem.fill(100, 4, 2);
    EXPECT_EQ(mem.read(99), 0);
    EXPECT_EQ(mem.read(100), 2);
    EXPECT_EQ(mem.read(103), 2);
    EXPECT_EQ(mem.read(104), 0);
}

TEST(TagMemory, OverwriteWins)
{
    TagMemory mem(0);
    mem.fill(0x1000, 8, 1);
    mem.fill(0x1002, 2, 5);
    EXPECT_EQ(mem.read(0x1001), 1);
    EXPECT_EQ(mem.read(0x1002), 5);
    EXPECT_EQ(mem.read(0x1003), 5);
    EXPECT_EQ(mem.read(0x1004), 1);
}

TEST(TagMemory, ReadMaxOverRange)
{
    TagMemory mem(0);
    mem.fill(0x2000, 1, 1);
    mem.fill(0x2002, 1, 3);
    EXPECT_EQ(mem.readMax(0x2000, 4), 3);
    EXPECT_EQ(mem.readMax(0x2000, 2), 1);
    EXPECT_EQ(mem.readMax(0x2003, 1), 0);
}

TEST(TagMemory, ReadMaxSeesDefaultInGaps)
{
    TagMemory mem(2);
    mem.fill(0x3000, 1, 1);     // lower than the default!
    EXPECT_EQ(mem.readMax(0x3000, 2), 2);   // gap byte carries 2
    EXPECT_EQ(mem.readMax(0x3000, 1), 1);
}

TEST(TagMemory, FillAcrossPageBoundary)
{
    TagMemory mem(0);
    const uint32_t boundary = TagMemory::pageSize;
    mem.fill(boundary - 2, 4, 7);
    EXPECT_EQ(mem.read(boundary - 2), 7);
    EXPECT_EQ(mem.read(boundary - 1), 7);
    EXPECT_EQ(mem.read(boundary), 7);
    EXPECT_EQ(mem.read(boundary + 1), 7);
    EXPECT_EQ(mem.read(boundary + 2), 0);
}

TEST(TagMemory, NewPageInheritsDefault)
{
    TagMemory mem(9);
    mem.fill(0x5000, 1, 1);     // allocates the page
    // Every other byte of that freshly-allocated page reads the
    // default, not zero.
    EXPECT_EQ(mem.read(0x5001), 9);
    EXPECT_EQ(mem.read(0x5fff), 9);
}

TEST(TagMemory, ZeroLengthFillIsNoop)
{
    TagMemory mem(0);
    EXPECT_NO_THROW(mem.fill(0x100, 0, 5));
    EXPECT_EQ(mem.read(0x100), 0);
}

} // namespace
} // namespace irep::core
