/**
 * @file
 * RepetitionAttributionAnalysis tests: the static loop map on the
 * edge cases that break naive detectors (self-loop branches,
 * overlapping/irreducible backward edges, backward calls that are not
 * loops), and the dynamic attribution of call boundaries.
 */

#include <gtest/gtest.h>

#include "core/attribution.hh"
#include "core/pipeline.hh"
#include "sim_test_util.hh"

namespace irep::core
{
namespace
{

uint64_t
overall(const AttributionStats &stats, LoopStructure s)
{
    return stats.overall[unsigned(s)];
}

TEST(Attribution, SelfLoopBranchIsAOneInstructionRange)
{
    // `bne self` targets its own pc: the degenerate range [self, self]
    // must cover exactly the branch, nothing around it.
    test::TestRun run(
        "addiu $t0, $zero, 0\n"
        "self: bne $t0, $zero, self\n");
    RepetitionAttributionAnalysis attr(run.program());
    EXPECT_EQ(attr.numLoops(), 1u);
    EXPECT_EQ(attr.loopDepth(0), 0u);
    EXPECT_EQ(attr.loopDepth(1), 1u);
    EXPECT_EQ(attr.loopDepth(2), 0u);
    EXPECT_EQ(attr.staticStructure(1), LoopStructure::InnermostLoop);
    EXPECT_EQ(attr.staticStructure(0), LoopStructure::StraightLine);

    // Dynamically the untaken branch retires once, as loop code.
    PipelineConfig config;
    config.windowInstructions = 1'000'000;
    AnalysisPipeline pipeline(run.machine(), config);
    pipeline.run();
    const AttributionStats &stats = pipeline.attribution().stats();
    EXPECT_EQ(overall(stats, LoopStructure::InnermostLoop), 1u);
    EXPECT_EQ(overall(stats, LoopStructure::CallBoundary), 0u);
}

TEST(Attribution, IrreducibleOverlappingRangesStack)
{
    // Two backward branches whose ranges overlap without nesting —
    // the irreducible case. Containment is all attribution needs:
    // depth is the number of covering ranges, and anything covered at
    // all is loop code.
    test::TestRun run(
        "addiu $t0, $zero, 3\n"       // 0
        "head: addiu $t0, $t0, -1\n"  // 1
        "mid: addiu $t1, $t1, 1\n"    // 2
        "addiu $t2, $t2, 1\n"         // 3
        "bne $t0, $zero, head\n"      // 4 -> [1, 4]
        "bne $t1, $zero, mid\n");     // 5 -> [2, 5]
    RepetitionAttributionAnalysis attr(run.program());
    EXPECT_EQ(attr.numLoops(), 2u);
    EXPECT_EQ(attr.loopDepth(0), 0u);
    EXPECT_EQ(attr.loopDepth(1), 1u);
    EXPECT_EQ(attr.loopDepth(2), 2u);
    EXPECT_EQ(attr.loopDepth(3), 2u);
    EXPECT_EQ(attr.loopDepth(4), 2u);
    EXPECT_EQ(attr.loopDepth(5), 1u);
    EXPECT_EQ(attr.loopDepth(6), 0u);
    for (uint32_t i = 1; i <= 5; ++i)
        EXPECT_EQ(attr.staticStructure(i),
                  LoopStructure::InnermostLoop)
            << "static index " << i;
}

TEST(Attribution, RecursiveCallsAreCallBoundariesNotLoops)
{
    // A self-recursive function: the backward `jal` is a call, never
    // a loop edge, and every jal/jr retire is attributed to the
    // call boundary.
    test::TestRun run(
        "addiu $a0, $zero, 3\n"
        "jal rec\n"
        "j end\n"
        "rec: addiu $sp, $sp, -8\n"
        "sw $ra, 0($sp)\n"
        "beq $a0, $zero, base\n"
        "addiu $a0, $a0, -1\n"
        "jal rec\n"                   // backward jal: NOT a loop
        "base: lw $ra, 0($sp)\n"
        "addiu $sp, $sp, 8\n"
        "jr $ra\n"
        "end:\n");
    RepetitionAttributionAnalysis attr(run.program());
    EXPECT_EQ(attr.numLoops(), 0u);

    PipelineConfig config;
    config.windowInstructions = 1'000'000;
    AnalysisPipeline pipeline(run.machine(), config);
    pipeline.run();
    EXPECT_TRUE(run.machine().halted());
    // 4 calls (1 from main + 3 recursive) and 4 returns.
    const AttributionStats &stats = pipeline.attribution().stats();
    EXPECT_EQ(overall(stats, LoopStructure::CallBoundary), 8u);
    EXPECT_EQ(overall(stats, LoopStructure::InnermostLoop), 0u);
}

TEST(Attribution, LoopBodyDynamicCountsMatchTripCount)
{
    test::TestRun run(
        "addiu $t0, $zero, 4\n"       // 0: straight-line
        "loop: addiu $t0, $t0, -1\n"  // 1
        "addiu $t1, $t1, 1\n"         // 2
        "bne $t0, $zero, loop\n");    // 3 -> [1, 3]
    PipelineConfig config;
    config.windowInstructions = 1'000'000;
    AnalysisPipeline pipeline(run.machine(), config);
    const uint64_t executed = pipeline.run();
    EXPECT_TRUE(run.machine().halted());

    // 4 trips x 3 in-loop instructions; everything else (the init and
    // the exit sequence) is straight-line.
    const AttributionStats &stats = pipeline.attribution().stats();
    EXPECT_EQ(overall(stats, LoopStructure::InnermostLoop), 12u);
    EXPECT_EQ(overall(stats, LoopStructure::CallBoundary), 0u);
    EXPECT_EQ(stats.totalOverall, executed);
    EXPECT_EQ(overall(stats, LoopStructure::StraightLine),
              executed - 12u);

    // Shares are consistent with the raw counts.
    EXPECT_NEAR(stats.pctOfAll(LoopStructure::InnermostLoop),
                100.0 * 12.0 / double(executed), 1e-9);
}

TEST(Attribution, SkipPhaseIsNotCounted)
{
    test::TestRun run(
        "addiu $t0, $zero, 50\n"
        "loop: addiu $t0, $t0, -1\n"
        "addiu $t1, $t1, 1\n"
        "bne $t0, $zero, loop\n");
    PipelineConfig config;
    config.skipInstructions = 100;
    config.windowInstructions = 1'000'000;
    AnalysisPipeline pipeline(run.machine(), config);
    const uint64_t window = pipeline.run();
    EXPECT_EQ(pipeline.attribution().stats().totalOverall, window);
}

} // namespace
} // namespace irep::core
