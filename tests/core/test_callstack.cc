/**
 * @file
 * CallStack tests: push on jal/jalr, pop on matching jr $ra, frame
 * data propagation through the pop callback, and tolerance of
 * unmatched returns.
 */

#include <gtest/gtest.h>

#include "core/callstack.hh"
#include "isa/registers.hh"
#include "sim_test_util.hh"

namespace irep::core
{
namespace
{

struct Depth
{
    int marker = 0;
};

/** Observer wiring a CallStack to a machine. */
struct StackObserver : sim::Observer
{
    explicit StackObserver(const assem::Program &program)
        : stack(program)
    {}

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        stack.onInstr(rec);
        maxDepth = std::max(maxDepth, stack.depth());
    }

    CallStack<Depth> stack;
    size_t maxDepth = 1;
};

TEST(CallStack, StartsWithRootFrame)
{
    test::TestRun run("nop\n");
    CallStack<Depth> stack(run.program());
    EXPECT_EQ(stack.depth(), 1u);
    EXPECT_EQ(stack.current().funcAddr, run.program().entry);
}

TEST(CallStack, CallPushesReturnPops)
{
    test::TestRun run(
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  jr $ra\n"
        ".end f\n"
        "done:\n");
    StackObserver obs(run.program());
    run.machine().addObserver(&obs);
    run.run();
    EXPECT_EQ(obs.maxDepth, 2u);
    EXPECT_EQ(obs.stack.depth(), 1u);
}

TEST(CallStack, FrameCarriesFunctionInfo)
{
    test::TestRun run(
        "    jal f\n"
        "    b done\n"
        ".ent f, 3\n"
        "f:  jr $ra\n"
        ".end f\n"
        "done:\n",
        false);
    CallStack<Depth> stack(run.program());
    // Step the jal manually.
    struct Grab : sim::Observer
    {
        CallStack<Depth> *stack;
        const assem::FunctionInfo *seen = nullptr;
        void
        onRetire(const sim::InstrRecord &rec) override
        {
            if (stack->onInstr(rec) > 0)
                seen = stack->current().info;
        }
    } grab;
    grab.stack = &stack;
    run.machine().addObserver(&grab);
    run.machine().step();   // jal
    ASSERT_NE(grab.seen, nullptr);
    EXPECT_EQ(grab.seen->name, "f");
    EXPECT_EQ(grab.seen->numArgs, 3);
}

TEST(CallStack, DeepRecursionTracksDepth)
{
    test::TestRun run(
        "    li $a0, 10\n"
        "    jal rec\n"
        "    b done\n"
        ".ent rec, 1\n"
        "rec:\n"
        "    addiu $sp, $sp, -8\n"
        "    sw $ra, 0($sp)\n"
        "    blez $a0, out\n"
        "    addiu $a0, $a0, -1\n"
        "    jal rec\n"
        "out:\n"
        "    lw $ra, 0($sp)\n"
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end rec\n"
        "done:\n");
    StackObserver obs(run.program());
    run.machine().addObserver(&obs);
    run.run();
    EXPECT_EQ(obs.maxDepth, 12u);   // root + 11 recursive frames
    EXPECT_EQ(obs.stack.depth(), 1u);
}

TEST(CallStack, PopCallbackSeesPoppedAndParent)
{
    test::TestRun run(
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  jr $ra\n"
        ".end f\n"
        "done:\n");
    struct Propagate : sim::Observer
    {
        explicit Propagate(const assem::Program &p) : stack(p) {}
        CallStack<Depth> stack;
        int propagated = 0;
        void
        onRetire(const sim::InstrRecord &rec) override
        {
            const int delta = stack.onInstr(
                rec, [this](const CallStack<Depth>::Frame &popped,
                            CallStack<Depth>::Frame &parent) {
                    parent.data.marker += popped.data.marker;
                    ++propagated;
                });
            if (delta > 0)
                stack.current().data.marker = 42;
        }
    } prop(run.program());
    run.machine().addObserver(&prop);
    run.run();
    EXPECT_EQ(prop.propagated, 1);
    EXPECT_EQ(prop.stack.current().data.marker, 42);
}

TEST(CallStack, UnmatchedReturnIsIgnored)
{
    // A jr $ra with no matching frame (e.g. measurement window began
    // mid-function) must not underflow.
    test::TestRun run(
        "    la $ra, done\n"
        "    jr $ra\n"
        "done:\n");
    StackObserver obs(run.program());
    run.machine().addObserver(&obs);
    run.run();
    EXPECT_EQ(obs.stack.depth(), 1u);
}

TEST(CallStack, JrThroughNonRaRegisterIsNotAReturn)
{
    test::TestRun run(
        "    la $t9, target\n"
        "    jr $t9\n"
        "target:\n");
    StackObserver obs(run.program());
    run.machine().addObserver(&obs);
    run.run();
    EXPECT_EQ(obs.stack.depth(), 1u);
    EXPECT_EQ(obs.maxDepth, 1u);
}

TEST(CallStack, ReturnSkippingFramesPopsAll)
{
    // f calls g; g "longjmps" straight back to main's return address
    // (saved by f). Both frames must pop.
    test::TestRun run(
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  move $s0, $ra\n"
        "    jal g\n"
        "    jr $ra\n"
        ".end f\n"
        ".ent g, 0\n"
        "g:  move $ra, $s0\n"
        "    jr $ra\n"
        ".end g\n"
        "done:\n");
    StackObserver obs(run.program());
    run.machine().addObserver(&obs);
    run.run();
    EXPECT_EQ(obs.maxDepth, 3u);
    EXPECT_EQ(obs.stack.depth(), 1u);
}

} // namespace
} // namespace irep::core
