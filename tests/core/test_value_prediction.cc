/**
 * @file
 * ValuePrediction tests: the three schemes on crafted value
 * sequences — constants (last-value territory), arithmetic sequences
 * (stride territory), and short cycles (context territory).
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/value_prediction.hh"
#include "isa/instruction.hh"
#include "support/logging.hh"

namespace irep::core
{
namespace
{

/** Feed a result sequence for a single static instruction. */
void
feed(ValuePrediction &vp, uint32_t pc,
     const std::vector<uint32_t> &results)
{
    static isa::Instruction add = isa::decode(0x00851021);  // addu
    for (uint32_t r : results) {
        sim::InstrRecord rec;
        rec.pc = pc;
        rec.inst = &add;
        rec.writesReg = true;
        rec.destReg = 2;
        rec.result = r;
        vp.onInstr(rec, false);
    }
}

TEST(ValuePrediction, ConstantSequenceIsLastValuePredictable)
{
    ValuePrediction vp;
    vp.setCounting(true);
    feed(vp, 0x400000, std::vector<uint32_t>(100, 7));
    // First retire allocates; the next 99 all predict correctly.
    EXPECT_EQ(vp.lastValue().correct, 99u);
    EXPECT_DOUBLE_EQ(vp.lastValue().accuracy(), 100.0);
}

TEST(ValuePrediction, StrideSequence)
{
    ValuePrediction vp;
    vp.setCounting(true);
    std::vector<uint32_t> seq;
    for (uint32_t i = 0; i < 100; ++i)
        seq.push_back(100 + 4 * i);
    feed(vp, 0x400000, seq);
    // Last-value never predicts a strided stream correctly...
    EXPECT_EQ(vp.lastValue().correct, 0u);
    // ...stride locks on after two observations (98 correct).
    EXPECT_EQ(vp.stride().correct, 98u);
}

TEST(ValuePrediction, NegativeStride)
{
    ValuePrediction vp;
    vp.setCounting(true);
    std::vector<uint32_t> seq;
    for (int i = 0; i < 50; ++i)
        seq.push_back(uint32_t(1000 - 8 * i));
    feed(vp, 0x400000, seq);
    EXPECT_EQ(vp.stride().correct, 48u);
}

TEST(ValuePrediction, CyclicSequenceIsContextPredictable)
{
    ValuePrediction vp;   // default history depth 2
    vp.setCounting(true);
    std::vector<uint32_t> seq;
    for (int i = 0; i < 60; ++i)
        seq.push_back(uint32_t(i % 3) * 11);    // 0, 11, 22, 0, ...
    feed(vp, 0x400000, seq);
    // Last-value never fires on a 3-cycle; stride only catches the
    // one transition per cycle where the delta repeats (0->11->22),
    // i.e. a third of the stream...
    EXPECT_EQ(vp.lastValue().correct, 0u);
    EXPECT_LT(vp.stride().correct, 25u);
    // ...but the 2-deep context predictor nails it once trained:
    // after the first full cycle every context has been seen.
    EXPECT_GT(vp.context().correct, 50u);
    EXPECT_GT(vp.context().correct,
              vp.stride().correct + vp.lastValue().correct);
}

TEST(ValuePrediction, DistinctPcsDoNotInterfere)
{
    ValuePrediction vp;
    vp.setCounting(true);
    feed(vp, 0x400000, std::vector<uint32_t>(10, 1));
    feed(vp, 0x400004, std::vector<uint32_t>(10, 2));
    EXPECT_EQ(vp.lastValue().correct, 18u);
}

TEST(ValuePrediction, AliasedPcsReallocate)
{
    ValuePredictorConfig config;
    config.entries = 16;
    ValuePrediction vp(config);
    vp.setCounting(true);
    // Two pcs mapping to the same slot (16 entries * 4 bytes apart).
    feed(vp, 0x400000, {5});
    feed(vp, 0x400000 + 16 * 4, {9});
    feed(vp, 0x400000, {5});
    // The second pc evicted the first: no prediction on return.
    EXPECT_EQ(vp.lastValue().predictions, 0u);
}

TEST(ValuePrediction, NonWritingInstructionsAreIgnored)
{
    ValuePrediction vp;
    vp.setCounting(true);
    static isa::Instruction sw = isa::decode(0xafa80010);
    sim::InstrRecord rec;
    rec.pc = 0x400000;
    rec.inst = &sw;
    rec.writesReg = false;
    vp.onInstr(rec, false);
    EXPECT_EQ(vp.lastValue().eligible, 0u);
}

TEST(ValuePrediction, CountingGate)
{
    ValuePrediction vp;
    feed(vp, 0x400000, std::vector<uint32_t>(10, 1));
    EXPECT_EQ(vp.lastValue().eligible, 0u);
}

TEST(ValuePrediction, BadGeometriesRejected)
{
    ValuePredictorConfig non_pow2;
    non_pow2.entries = 100;
    EXPECT_THROW(ValuePrediction{non_pow2}, FatalError);

    ValuePredictorConfig zero_depth;
    zero_depth.historyDepth = 0;
    EXPECT_THROW(ValuePrediction{zero_depth}, FatalError);

    ValuePredictorConfig deep;
    deep.historyDepth = 5;
    EXPECT_THROW(ValuePrediction{deep}, FatalError);
}

TEST(ValuePrediction, StatsRatios)
{
    ValuePrediction vp;
    vp.setCounting(true);
    feed(vp, 0x400000, {1, 1, 2});
    const auto &stats = vp.lastValue();
    EXPECT_EQ(stats.eligible, 3u);
    EXPECT_EQ(stats.predictions, 2u);
    EXPECT_EQ(stats.correct, 1u);
    EXPECT_DOUBLE_EQ(stats.accuracy(), 50.0);
    EXPECT_NEAR(stats.pctOfEligible(), 100.0 / 3.0, 1e-9);
}

} // namespace
} // namespace irep::core
