/**
 * @file
 * LocalAnalysis tests: category classification (prologue, epilogue,
 * return, SP, glb-addr-calc, argument/global/heap/retval/internal
 * slices) on hand-written assembly with function metadata.
 */

#include <vector>

#include <gtest/gtest.h>

#include "core/local_analysis.hh"
#include "core/repetition_tracker.hh"
#include "isa/registers.hh"
#include "sim_test_util.hh"

namespace irep::core
{
namespace
{

/** Observer that records the category assigned to every pc. */
struct LocalObserver : sim::Observer
{
    LocalObserver(const assem::Program &program, uint32_t num_static)
        : local(program), tracker(num_static)
    {
        local.setCounting(true);
    }

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        const LocalCat cat = local.onInstr(rec, tracker.onInstr(rec));
        categories.emplace_back(rec.pc, cat);
    }

    /** Category of the instruction at text index `i` (first visit). */
    LocalCat
    at(uint32_t index) const
    {
        const uint32_t pc = assem::Layout::textBase + index * 4;
        for (const auto &[p, c] : categories) {
            if (p == pc)
                return c;
        }
        return LocalCat::NUM;
    }

    LocalAnalysis local;
    RepetitionTracker tracker;
    std::vector<std::pair<uint32_t, LocalCat>> categories;
};

struct Harness
{
    explicit Harness(const std::string &source)
        : run(source),
          obs(run.program(), run.machine().numStaticInstructions())
    {
        run.machine().addObserver(&obs);
        run.run();
    }

    test::TestRun run;
    LocalObserver obs;
};

TEST(LocalAnalysis, PrologueAndEpilogueDetection)
{
    Harness h(
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:\n"
        "    addiu $sp, $sp, -16\n"   // idx 2: prologue (sp adjust)
        "    sw $ra, 0($sp)\n"        // idx 3: prologue (save ra)
        "    sw $s0, 4($sp)\n"        // idx 4: prologue (save s0)
        "    li $s0, 5\n"             // idx 5: internals
        "    lw $s0, 4($sp)\n"        // idx 6: epilogue (restore s0)
        "    lw $ra, 0($sp)\n"        // idx 7: epilogue (restore ra)
        "    addiu $sp, $sp, 16\n"    // idx 8: epilogue (sp adjust)
        "    jr $ra\n"                // idx 9: return
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(2), LocalCat::Prologue);
    EXPECT_EQ(h.obs.at(3), LocalCat::Prologue);
    EXPECT_EQ(h.obs.at(4), LocalCat::Prologue);
    EXPECT_EQ(h.obs.at(5), LocalCat::FuncInternal);
    EXPECT_EQ(h.obs.at(6), LocalCat::Epilogue);
    EXPECT_EQ(h.obs.at(7), LocalCat::Epilogue);
    EXPECT_EQ(h.obs.at(8), LocalCat::Epilogue);
    EXPECT_EQ(h.obs.at(9), LocalCat::Return);
}

TEST(LocalAnalysis, SecondSaveOfWrittenRegIsNotPrologue)
{
    Harness h(
        "    addiu $sp, $sp, -8\n"
        "    li $s0, 9\n"            // writes s0
        "    sw $s0, 0($sp)\n"       // idx 2: NOT prologue (s0 written)
        "    addiu $sp, $sp, 8\n");
    EXPECT_EQ(h.obs.at(2), LocalCat::FuncInternal);
}

TEST(LocalAnalysis, GlobalAddressCalculation)
{
    Harness h(
        ".data\nw: .word 1\n.text\n"
        "    la $t0, w\n"            // idx 0-1: lui+ori glb addr calc
        "    lw $t1, 0($t0)\n"       // idx 2: global load
        "    addiu $t2, $gp, 16\n"); // idx 3: gp-relative addr calc
    EXPECT_EQ(h.obs.at(0), LocalCat::GlbAddrCalc);
    EXPECT_EQ(h.obs.at(1), LocalCat::GlbAddrCalc);
    EXPECT_EQ(h.obs.at(2), LocalCat::Global);
    EXPECT_EQ(h.obs.at(3), LocalCat::GlbAddrCalc);
}

TEST(LocalAnalysis, PlainConstantLuiIsInternal)
{
    Harness h("lui $t0, 0x0001\n");  // 0x00010000: not a data address
    EXPECT_EQ(h.obs.at(0), LocalCat::FuncInternal);
}

TEST(LocalAnalysis, SpManipulation)
{
    Harness h(
        "    addiu $t0, $sp, 16\n"   // idx 0: SP category
        "    addiu $t1, $t0, 4\n");  // idx 1: still SP slice
    EXPECT_EQ(h.obs.at(0), LocalCat::SP);
    EXPECT_EQ(h.obs.at(1), LocalCat::SP);
}

TEST(LocalAnalysis, ArgumentSlices)
{
    Harness h(
        "    li $a0, 7\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 1\n"
        "f:\n"
        "    addiu $t0, $a0, 1\n"    // idx 3: argument slice
        "    addu $t1, $t0, $t0\n"   // idx 4: still argument
        "    li $t2, 3\n"            // idx 5: internal
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(3), LocalCat::Argument);
    EXPECT_EQ(h.obs.at(4), LocalCat::Argument);
    EXPECT_EQ(h.obs.at(5), LocalCat::FuncInternal);
}

TEST(LocalAnalysis, OnlyDeclaredArgsAreArgumentTagged)
{
    Harness h(
        "    li $a0, 1\n"
        "    li $a1, 2\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 1\n"                // only 1 declared argument
        "f:\n"
        "    addiu $t0, $a0, 0\n"    // idx 4: argument
        "    addiu $t1, $a1, 0\n"    // idx 5: NOT argument
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(4), LocalCat::Argument);
    EXPECT_EQ(h.obs.at(5), LocalCat::FuncInternal);
}

TEST(LocalAnalysis, ReturnValueSlices)
{
    Harness h(
        "    jal f\n"
        "    addiu $t0, $v0, 1\n"    // idx 1: return-value slice
        "    b done\n"
        ".ent f, 0\n"
        "f:\n"
        "    li $v0, 9\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(1), LocalCat::RetVal);
}

TEST(LocalAnalysis, HeapLoads)
{
    Harness h(
        "    li $a0, 64\n"
        "    li $v0, 4\n"
        "    syscall\n"              // sbrk
        "    li $t1, 5\n"
        "    sw $t1, 0($v0)\n"
        "    lw $t2, 0($v0)\n"       // idx 5: heap load
        "    addu $t3, $t2, $t2\n"); // idx 6: heap slice
    EXPECT_EQ(h.obs.at(5), LocalCat::Heap);
    EXPECT_EQ(h.obs.at(6), LocalCat::Heap);
}

TEST(LocalAnalysis, StackLoadsPropagateStoredTag)
{
    Harness h(
        "    li $a0, 7\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 1\n"
        "f:\n"
        "    addiu $sp, $sp, -8\n"
        "    sw $a0, 0($sp)\n"       // spill the argument
        "    lw $t0, 0($sp)\n"       // idx 5: argument tag comes back
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(5), LocalCat::Argument);
}

TEST(LocalAnalysis, SupersedeArgumentOverGlobal)
{
    Harness h(
        ".data\nw: .word 3\n.text\n"
        "    li $a0, 7\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 1\n"
        "f:\n"
        "    la $t0, w\n"
        "    lw $t1, 0($t0)\n"       // global
        "    addu $t2, $t1, $a0\n"   // idx 6: argument supersedes
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(6), LocalCat::Argument);
}

TEST(LocalAnalysis, StoreTakesStoredValueCategory)
{
    Harness h(
        ".data\nw: .word 3\ndst: .word 0\n.text\n"
        "    la $t0, w\n"
        "    lw $t1, 0($t0)\n"       // global value
        "    la $t2, dst\n"
        "    sw $t1, 0($t2)\n");     // idx 5: stores a global value
    EXPECT_EQ(h.obs.at(5), LocalCat::Global);
}

TEST(LocalAnalysis, StatsSumToTotals)
{
    Harness h(
        "    li $t0, 1\n"
        "    li $t0, 1\n"
        "    addiu $t1, $sp, 4\n");
    const auto &stats = h.obs.local.stats();
    uint64_t sum = 0;
    double pct = 0;
    for (unsigned c = 0; c < numLocalCats; ++c) {
        sum += stats.overall[c];
        pct += stats.pctOverall(LocalCat(c));
    }
    EXPECT_EQ(sum, stats.totalOverall);
    EXPECT_EQ(sum, h.run.machine().instret());
    EXPECT_NEAR(pct, 100.0, 1e-9);
}

TEST(LocalAnalysis, ProEpiContributorsRanked)
{
    // Call f twice and g once; f contributes more prologue/epilogue
    // repetition.
    Harness h(
        "    jal f\n"
        "    jal f\n"
        "    jal f\n"
        "    jal g\n"
        "    jal g\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:\n"
        "    addiu $sp, $sp, -8\n"
        "    sw $s0, 0($sp)\n"
        "    lw $s0, 0($sp)\n"
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end f\n"
        ".ent g, 0\n"
        "g:\n"
        "    addiu $sp, $sp, -8\n"
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end g\n"
        "done:\n");
    const auto top = h.obs.local.topPrologueContributors(5);
    ASSERT_GE(top.size(), 2u);
    EXPECT_EQ(top[0].name, "f");
    EXPECT_EQ(top[1].name, "g");
    EXPECT_GT(top[0].repeated, top[1].repeated);
    EXPECT_EQ(top[0].staticInstructions, 5u);
    // Only f and g contribute, so the shares must sum to 1.
    EXPECT_NEAR(top[0].share + top[1].share, 1.0, 1e-9);
}

TEST(LocalAnalysis, LoadValueCoverage)
{
    // One static global load executed 3x with value 5 (2 repeats)
    // and once with 9 (no repeat): top-1 value covers everything.
    Harness h(
        ".data\nw: .word 5\n.text\n"
        "    la $t0, w\n"
        "    li $t3, 3\n"
        "loop:\n"
        "    lw $t1, 0($t0)\n"
        "    addiu $t3, $t3, -1\n"
        "    bgtz $t3, loop\n"
        "    li $t2, 9\n"
        "    sw $t2, 0($t0)\n"
        "    lw $t1, 0($t0)\n");
    EXPECT_DOUBLE_EQ(h.obs.local.loadValueCoverage(1), 1.0);
    EXPECT_DOUBLE_EQ(h.obs.local.loadValueCoverage(5), 1.0);
}

TEST(LocalAnalysis, LuiBelowDataRangeIsInternal)
{
    // 0x0fff0000 sits just below the data segment base.
    Harness h("lui $t0, 0x0fff\n");
    EXPECT_EQ(h.obs.at(0), LocalCat::FuncInternal);
}

TEST(LocalAnalysis, LuiAtDataBaseIsGlbAddr)
{
    Harness h("lui $t0, 0x1000\n");    // exactly the data base
    EXPECT_EQ(h.obs.at(0), LocalCat::GlbAddrCalc);
}

TEST(LocalAnalysis, ReturnValuePropagatesThroughArithmetic)
{
    Harness h(
        "    jal f\n"
        "    addiu $t0, $v0, 1\n"
        "    addu $t1, $t0, $t0\n"    // idx 2: still retval slice
        "    b done\n"
        ".ent f, 0\n"
        "f:\n"
        "    li $v0, 9\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(2), LocalCat::RetVal);
}

TEST(LocalAnalysis, ArgumentSupersedesRetVal)
{
    // argument >s return-value in the paper's rule.
    Harness h(
        "    li $a0, 5\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 1\n"
        "f:\n"
        "    addiu $sp, $sp, -8\n"
        "    sw $ra, 0($sp)\n"
        "    sw $a0, 4($sp)\n"
        "    jal g\n"
        "    lw $a0, 4($sp)\n"
        "    addu $t2, $v0, $a0\n"    // idx 8: arg meets retval
        "    lw $ra, 0($sp)\n"
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end f\n"
        ".ent g, 0\n"
        "g:\n"
        "    li $v0, 1\n"
        "    jr $ra\n"
        ".end g\n"
        "done:\n");
    EXPECT_EQ(h.obs.at(8), LocalCat::Argument);
}

} // namespace
} // namespace irep::core
