/**
 * @file
 * GlobalTaint tests: tag initialization, propagation through
 * registers and memory, the supersede rule, external-input tagging
 * via the read syscall, and Table 3 statistics.
 */

#include <gtest/gtest.h>

#include "core/global_taint.hh"
#include "core/repetition_tracker.hh"
#include "isa/registers.hh"
#include "sim_test_util.hh"

namespace irep::core
{
namespace
{

/** Observer running GlobalTaint with a real tracker. */
struct TaintObserver : sim::Observer
{
    TaintObserver(const assem::Program &program, uint32_t num_static)
        : taint(program), tracker(num_static)
    {
        taint.setCounting(true);
    }

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        taint.onInstr(rec, tracker.onInstr(rec));
    }

    void
    onSyscall(const sim::SyscallRecord &rec) override
    {
        taint.onSyscall(rec);
    }

    GlobalTaint taint;
    RepetitionTracker tracker;
};

struct Harness
{
    explicit Harness(const std::string &source,
                     const std::string &input = "")
        : run(source),
          obs(run.program(), run.machine().numStaticInstructions())
    {
        run.machine().setInput(input);
        run.machine().addObserver(&obs);
        run.run();
    }

    GlobalTag reg(unsigned r) { return obs.taint.regTag(r); }

    test::TestRun run;
    TaintObserver obs;
};

TEST(GlobalTaint, InitialRegisterTags)
{
    test::TestRun run("nop\n");
    GlobalTaint taint(run.program());
    EXPECT_EQ(taint.regTag(isa::regZero), GlobalTag::Internal);
    EXPECT_EQ(taint.regTag(isa::regSP), GlobalTag::Internal);
    EXPECT_EQ(taint.regTag(isa::regGP), GlobalTag::Internal);
    EXPECT_EQ(taint.regTag(isa::regT0), GlobalTag::Uninit);
    EXPECT_EQ(taint.regTag(isa::regS0), GlobalTag::Uninit);
}

TEST(GlobalTaint, DataSegmentStartsGlobalInit)
{
    test::TestRun run(".data\nw: .word 7\n.text\nnop\n");
    GlobalTaint taint(run.program());
    EXPECT_EQ(taint.memTag(assem::Layout::dataBase),
              GlobalTag::GlobalInit);
    // Untouched memory outside the image is uninit.
    EXPECT_EQ(taint.memTag(0x50000000), GlobalTag::Uninit);
}

TEST(GlobalTaint, ImmediatesAreInternal)
{
    Harness h("li $t0, 42\n");
    EXPECT_EQ(h.reg(isa::regT0), GlobalTag::Internal);
}

TEST(GlobalTaint, LoadFromDataSegmentIsGlobalInit)
{
    Harness h(
        ".data\nw: .word 7\n.text\n"
        "la $t0, w\n"
        "lw $t1, 0($t0)\n");
    EXPECT_EQ(h.reg(isa::regT0 + 1), GlobalTag::GlobalInit);
}

TEST(GlobalTaint, ReadSyscallTagsBufferExternal)
{
    Harness h(
        ".data\nbuf: .space 8\n.text\n"
        "la $a0, buf\n"
        "li $a1, 8\n"
        "li $v0, 2\n"
        "syscall\n"
        "la $t0, buf\n"
        "lbu $t1, 0($t0)\n",
        "xy");
    EXPECT_EQ(h.reg(isa::regT0 + 1), GlobalTag::External);
    // Only the actually-read bytes are external; the rest of the
    // (zero-initialized) .space keeps its global-init tag.
    EXPECT_EQ(h.obs.taint.memTag(h.run.program().symbol("buf") + 1),
              GlobalTag::External);
    EXPECT_EQ(h.obs.taint.memTag(h.run.program().symbol("buf") + 2),
              GlobalTag::GlobalInit);
}

TEST(GlobalTaint, SupersedeExternalOverInternal)
{
    Harness h(
        ".data\nbuf: .space 4\n.text\n"
        "la $a0, buf\n"
        "li $a1, 4\n"
        "li $v0, 2\n"
        "syscall\n"
        "la $t0, buf\n"
        "lbu $t1, 0($t0)\n"
        "li $t2, 10\n"
        "addu $t3, $t1, $t2\n",     // external + internal
        "abcd");
    EXPECT_EQ(h.reg(isa::regT0 + 3), GlobalTag::External);
}

TEST(GlobalTaint, SupersedeGlobalInitOverInternal)
{
    Harness h(
        ".data\nw: .word 3\n.text\n"
        "la $t0, w\n"
        "lw $t1, 0($t0)\n"
        "addiu $t2, $t1, 5\n");
    EXPECT_EQ(h.reg(isa::regT0 + 2), GlobalTag::GlobalInit);
}

TEST(GlobalTaint, InternalWinsOverUninit)
{
    Harness h("addu $t1, $s0, $zero\n");    // uninit + internal
    EXPECT_EQ(h.reg(isa::regT0 + 1), GlobalTag::Internal);
}

TEST(GlobalTaint, PureUninitStaysUninit)
{
    Harness h("addu $t1, $s0, $s1\n");
    EXPECT_EQ(h.reg(isa::regT0 + 1), GlobalTag::Uninit);
}

TEST(GlobalTaint, StoreCategorizedByStoredValue)
{
    // The prologue-style store of an uninit callee-saved register is
    // the paper's example of the uninit category.
    Harness h(
        "addiu $sp, $sp, -8\n"
        "sw $s0, 0($sp)\n"
        "lw $s0, 0($sp)\n"
        "addiu $sp, $sp, 8\n");
    const auto &stats = h.obs.taint.stats();
    EXPECT_GE(stats.overall[unsigned(GlobalTag::Uninit)], 1u);
}

TEST(GlobalTaint, TagsFlowThroughMemory)
{
    Harness h(
        ".data\nw: .word 5\ntmp: .space 64\n.text\n"
        "la $t0, w\n"
        "lw $t1, 0($t0)\n"          // global-init value
        "li $t2, 0x30000000\n"
        "sw $t1, 0($t2)\n"          // store it far away
        "lw $t3, 0($t2)\n");        // comes back global-init
    EXPECT_EQ(h.reg(isa::regT0 + 3), GlobalTag::GlobalInit);
}

TEST(GlobalTaint, HiLoPropagation)
{
    Harness h(
        ".data\nw: .word 6\n.text\n"
        "la $t0, w\n"
        "lw $t1, 0($t0)\n"
        "li $t2, 7\n"
        "mult $t1, $t2\n"
        "mflo $t3\n");
    EXPECT_EQ(h.reg(isa::regT0 + 3), GlobalTag::GlobalInit);
}

TEST(GlobalTaint, StatsSumsAreConsistent)
{
    Harness h(
        "li $t3, 3\n"
        "loop:\n"
        "li $t0, 1\n"
        "addiu $t3, $t3, -1\n"
        "bgtz $t3, loop\n");
    const auto &stats = h.obs.taint.stats();
    uint64_t sum = 0, rsum = 0;
    for (unsigned t = 0; t < numGlobalTags; ++t) {
        sum += stats.overall[t];
        rsum += stats.repeated[t];
    }
    EXPECT_EQ(sum, stats.totalOverall);
    EXPECT_EQ(rsum, stats.totalRepeated);
    EXPECT_EQ(sum, h.run.machine().instret());
    EXPECT_GE(stats.totalRepeated, 1u);     // identical li repeats
}

TEST(GlobalTaint, PropensityBounded)
{
    Harness h(
        ".data\nw: .word 2\n.text\n"
        "la $t0, w\n"
        "lw $t1, 0($t0)\n"
        "lw $t1, 0($t0)\n"
        "addu $t2, $t1, $t1\n");
    const auto &stats = h.obs.taint.stats();
    for (unsigned t = 0; t < numGlobalTags; ++t) {
        const double p = stats.propensity(GlobalTag(t));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 100.0);
    }
}

TEST(GlobalTaint, CountingGate)
{
    test::TestRun run("li $t0, 1\n");
    GlobalTaint taint(run.program());   // counting off by default
    struct Quiet : sim::Observer
    {
        GlobalTaint *taint;
        void
        onRetire(const sim::InstrRecord &rec) override
        {
            taint->onInstr(rec, false);
        }
    } quiet;
    quiet.taint = &taint;
    run.machine().addObserver(&quiet);
    run.run();
    EXPECT_EQ(taint.stats().totalOverall, 0u);
    // But the tags still propagated.
    EXPECT_EQ(taint.regTag(isa::regT0), GlobalTag::Internal);
}

TEST(GlobalTaint, TagNames)
{
    EXPECT_EQ(globalTagName(GlobalTag::Internal), "internals");
    EXPECT_EQ(globalTagName(GlobalTag::GlobalInit),
              "global init data");
    EXPECT_EQ(globalTagName(GlobalTag::External), "external input");
    EXPECT_EQ(globalTagName(GlobalTag::Uninit), "uninit");
}

} // namespace
} // namespace irep::core
