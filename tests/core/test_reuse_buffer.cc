/**
 * @file
 * ReuseBuffer unit tests: hit/miss behaviour, set mapping, LRU
 * replacement, store invalidation of load entries, and geometry
 * validation.
 */

#include <gtest/gtest.h>

#include "core/reuse_buffer.hh"
#include "isa/instruction.hh"
#include "support/logging.hh"

namespace irep::core
{
namespace
{

struct Fixture : ::testing::Test
{
    Fixture()
    {
        alu = isa::decode(0x00851021);      // addu
        load = isa::decode(0x8fa80010);     // lw
        store = isa::decode(0xafa80010);    // sw
    }

    sim::InstrRecord
    aluRec(uint32_t pc, uint32_t a, uint32_t b, uint64_t result)
    {
        sim::InstrRecord r;
        r.pc = pc;
        r.inst = &alu;
        r.numSrcRegs = 2;
        r.srcVal[0] = a;
        r.srcVal[1] = b;
        r.result = result;
        return r;
    }

    sim::InstrRecord
    loadRec(uint32_t pc, uint32_t base, uint32_t addr, uint64_t value)
    {
        sim::InstrRecord r;
        r.pc = pc;
        r.inst = &load;
        r.numSrcRegs = 1;
        r.srcVal[0] = base;
        r.isMemAccess = true;
        r.memAddr = addr;
        r.result = value;
        return r;
    }

    sim::InstrRecord
    storeRec(uint32_t pc, uint32_t addr, uint32_t value)
    {
        sim::InstrRecord r;
        r.pc = pc;
        r.inst = &store;
        r.numSrcRegs = 2;
        r.srcVal[0] = addr;
        r.srcVal[1] = value;
        r.isMemAccess = true;
        r.memAddr = addr;
        r.result = value;
        return r;
    }

    isa::Instruction alu, load, store;
};

using ReuseBufferTest = Fixture;

TEST_F(ReuseBufferTest, FirstAccessMisses)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    EXPECT_FALSE(buffer.onInstr(aluRec(0x400000, 1, 2, 3), false));
}

TEST_F(ReuseBufferTest, SameOperandsHit)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), false);
    EXPECT_TRUE(buffer.onInstr(aluRec(0x400000, 1, 2, 3), true));
    EXPECT_EQ(buffer.stats().hits, 1u);
}

TEST_F(ReuseBufferTest, DifferentOperandsMiss)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), false);
    EXPECT_FALSE(buffer.onInstr(aluRec(0x400000, 9, 2, 11), false));
    // But the new instance is installed in another way, so both hit
    // afterwards (4-way set).
    EXPECT_TRUE(buffer.onInstr(aluRec(0x400000, 1, 2, 3), true));
    EXPECT_TRUE(buffer.onInstr(aluRec(0x400000, 9, 2, 11), true));
}

TEST_F(ReuseBufferTest, DifferentPcsDoNotAlias)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), false);
    // Same set index (pc differs by sets*4), same values.
    const uint32_t aliasing_pc = 0x400000 + 2048 * 4;
    EXPECT_FALSE(buffer.onInstr(aluRec(aliasing_pc, 1, 2, 3), false));
}

TEST_F(ReuseBufferTest, LruEvictionWithinSet)
{
    ReuseConfig config;
    config.entries = 8;     // 2 sets x 4 ways
    config.ways = 4;
    ReuseBuffer buffer(config);
    buffer.setCounting(true);

    // Fill one set (same pc -> same set, different operand values).
    for (uint32_t v = 0; v < 4; ++v)
        buffer.onInstr(aluRec(0x400000, v, v, v), false);
    // Touch entries 1..3 so entry 0 is LRU.
    for (uint32_t v = 1; v < 4; ++v)
        EXPECT_TRUE(buffer.onInstr(aluRec(0x400000, v, v, v), true));
    // Insert a 5th instance: evicts v=0.
    buffer.onInstr(aluRec(0x400000, 9, 9, 9), false);
    EXPECT_FALSE(buffer.onInstr(aluRec(0x400000, 0, 0, 0), false));
    EXPECT_TRUE(buffer.onInstr(aluRec(0x400000, 9, 9, 9), true));
}

TEST_F(ReuseBufferTest, StoreInvalidatesLoadEntry)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 7), false);
    EXPECT_TRUE(
        buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 7), true));
    // A store to the same word kills the entry.
    buffer.onInstr(storeRec(0x400100, 0x10000000, 55), false);
    EXPECT_FALSE(
        buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 55), true));
    EXPECT_EQ(buffer.stats().invalidations, 1u);
}

TEST_F(ReuseBufferTest, SubWordStoreInvalidatesLoad)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 7), false);
    // A byte store inside the loaded word must invalidate too.
    auto sb = storeRec(0x400100, 0x10000002, 9);
    static isa::Instruction sb_inst = isa::decode(0xa1280002);  // sb
    sb.inst = &sb_inst;
    buffer.onInstr(sb, false);
    EXPECT_FALSE(
        buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 7), true));
}

TEST_F(ReuseBufferTest, StoreToOtherAddressKeepsLoad)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 7), false);
    buffer.onInstr(storeRec(0x400100, 0x10000004, 55), false);
    EXPECT_TRUE(
        buffer.onInstr(loadRec(0x400000, 100, 0x10000000, 7), true));
}

TEST_F(ReuseBufferTest, StoresAndSyscallsAreNeverReused)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(storeRec(0x400000, 0x10000000, 1), false);
    EXPECT_FALSE(
        buffer.onInstr(storeRec(0x400000, 0x10000000, 1), true));
    EXPECT_EQ(buffer.stats().accesses, 0u);
}

TEST_F(ReuseBufferTest, StatsRatios)
{
    ReuseBuffer buffer;
    buffer.setCounting(true);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), false);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), true);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), true);
    buffer.onInstr(aluRec(0x400004, 5, 6, 11), false);
    const auto &s = buffer.stats();
    EXPECT_EQ(s.totalInstructions, 4u);
    EXPECT_EQ(s.repeatedInstructions, 2u);
    EXPECT_EQ(s.hits, 2u);
    EXPECT_DOUBLE_EQ(s.pctOfAll(), 50.0);
    EXPECT_DOUBLE_EQ(s.pctOfRepeated(), 100.0);
}

TEST_F(ReuseBufferTest, CountingDisabledCollectsNothing)
{
    ReuseBuffer buffer;
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), false);
    buffer.onInstr(aluRec(0x400000, 1, 2, 3), true);
    EXPECT_EQ(buffer.stats().totalInstructions, 0u);
    EXPECT_EQ(buffer.stats().hits, 0u);
}

TEST_F(ReuseBufferTest, RepeatedReinstallWithoutStoresStaysCorrect)
{
    // A load evicted and reinstalled many times with no intervening
    // store exercises the load-index compaction path; behaviour must
    // stay correct throughout.
    ReuseConfig config;
    config.entries = 8;
    config.ways = 4;
    ReuseBuffer buffer(config);
    buffer.setCounting(true);

    for (int round = 0; round < 40; ++round) {
        // Fill the set with 4 other loads (evicts the probe entry)...
        for (uint32_t v = 1; v <= 4; ++v) {
            buffer.onInstr(
                loadRec(0x400000, v, 0x10000000 + 16 * v, v), false);
        }
        // ...then reinstall the probe load at the same address.
        buffer.onInstr(loadRec(0x400000, 99, 0x10000100, 7), false);
    }
    // The probe entry is live; a store must still invalidate it.
    EXPECT_TRUE(
        buffer.onInstr(loadRec(0x400000, 99, 0x10000100, 7), true));
    buffer.onInstr(storeRec(0x400200, 0x10000100, 1), false);
    EXPECT_FALSE(
        buffer.onInstr(loadRec(0x400000, 99, 0x10000100, 7), true));
}

class ReuseBufferRandomTest : public Fixture,
                              public ::testing::WithParamInterface<int>
{
};

TEST_P(ReuseBufferRandomTest, InvariantsUnderRandomTraffic)
{
    // Pseudo-random mixes of loads/stores/ALU ops: the buffer must
    // never report a reuse whose operands mismatch, and the counters
    // must stay consistent.
    ReuseConfig config;
    config.entries = 64;
    config.ways = 4;
    ReuseBuffer buffer(config);
    buffer.setCounting(true);

    uint32_t state = uint32_t(GetParam()) * 2654435761u + 1;
    auto next = [&state]() {
        state = state * 1664525u + 1013904223u;
        return state >> 8;
    };

    // A tiny shadow memory so load results are consistent with
    // store history (required for the buffer's result check).
    uint32_t shadow[16] = {};

    for (int i = 0; i < 5000; ++i) {
        const uint32_t pc = 0x400000 + (next() % 128) * 4;
        const uint32_t choice = next() % 3;
        if (choice == 0) {
            const uint32_t a = next() % 8, b = next() % 8;
            buffer.onInstr(aluRec(pc, a, b, a + b), next() % 2);
        } else if (choice == 1) {
            const uint32_t slot = next() % 16;
            buffer.onInstr(loadRec(pc, slot,
                                   0x10000000 + slot * 4,
                                   shadow[slot]),
                           next() % 2);
        } else {
            const uint32_t slot = next() % 16;
            shadow[slot] = next() % 4;
            buffer.onInstr(
                storeRec(pc, 0x10000000 + slot * 4, shadow[slot]),
                false);
        }
    }
    const auto &stats = buffer.stats();
    EXPECT_LE(stats.hits, stats.accesses);
    EXPECT_LE(stats.accesses, stats.totalInstructions);
    EXPECT_EQ(stats.totalInstructions, 5000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseBufferRandomTest,
                         ::testing::Range(1, 13));

TEST(ReuseBufferConfig, BadGeometriesRejected)
{
    ReuseConfig zero_ways;
    zero_ways.ways = 0;
    EXPECT_THROW(ReuseBuffer{zero_ways}, FatalError);

    ReuseConfig non_divisible;
    non_divisible.entries = 10;
    non_divisible.ways = 4;
    EXPECT_THROW(ReuseBuffer{non_divisible}, FatalError);

    ReuseConfig non_pow2_sets;
    non_pow2_sets.entries = 12;
    non_pow2_sets.ways = 4;
    EXPECT_THROW(ReuseBuffer{non_pow2_sets}, FatalError);
}

TEST(ReuseBufferConfig, PaperGeometryIsDefault)
{
    ReuseBuffer buffer;
    EXPECT_EQ(buffer.config().entries, 8192u);
    EXPECT_EQ(buffer.config().ways, 4u);
    EXPECT_EQ(buffer.config().sets(), 2048u);
}

} // namespace
} // namespace irep::core
