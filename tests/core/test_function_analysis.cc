/**
 * @file
 * FunctionAnalysis tests: all-argument and no-argument repetition,
 * side-effect/implicit-input tracking (Table 8), effect propagation
 * to callers, and argument-set specialization coverage (Figure 5).
 */

#include <gtest/gtest.h>

#include "core/function_analysis.hh"
#include "isa/registers.hh"
#include "sim_test_util.hh"

namespace irep::core
{
namespace
{

struct FuncObserver : sim::Observer
{
    FuncObserver(const assem::Program &program,
                 const sim::Machine &machine)
        : analysis(program, machine)
    {
        analysis.setCounting(true);
    }

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        analysis.onInstr(rec, false);
    }

    void
    onSyscall(const sim::SyscallRecord &rec) override
    {
        analysis.onSyscall(rec);
    }

    FunctionAnalysis analysis;
};

struct Harness
{
    explicit Harness(const std::string &source)
        : run(source), obs(run.program(), run.machine())
    {
        run.machine().addObserver(&obs);
        run.run();
        obs.analysis.finalize();
    }

    test::TestRun run;
    FuncObserver obs;
};

// A leaf function with one argument.
constexpr const char *leafF =
    ".ent f, 1\n"
    "f:  addu $t5, $a0, $a0\n"
    "    jr $ra\n"
    ".end f\n";

TEST(FunctionAnalysis, CountsCallsAndFunctions)
{
    Harness h(
        "    li $a0, 1\n"
        "    jal f\n"
        "    jal f\n"
        "    b done\n" +
        std::string(leafF) +
        "done:\n");
    const auto stats = h.obs.analysis.stats();
    EXPECT_EQ(stats.staticFunctionsCalled, 1u);
    EXPECT_EQ(stats.dynamicCalls, 2u);
}

TEST(FunctionAnalysis, AllArgsRepeatedOnSameValues)
{
    Harness h(
        "    li $a0, 7\n"
        "    jal f\n"
        "    jal f\n"       // same argument again
        "    li $a0, 8\n"
        "    jal f\n"       // fresh argument
        "    b done\n" +
        std::string(leafF) +
        "done:\n");
    const auto stats = h.obs.analysis.stats();
    EXPECT_EQ(stats.dynamicCalls, 3u);
    EXPECT_EQ(stats.allArgsRepeated, 1u);
    EXPECT_EQ(stats.noArgsRepeated, 2u);    // calls 1 and 3
    EXPECT_NEAR(stats.pctAllArgsRepeated(), 100.0 / 3.0, 1e-9);
}

TEST(FunctionAnalysis, ZeroArgFunctionsRepeatAfterFirstCall)
{
    Harness h(
        "    jal f\n"
        "    jal f\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  jr $ra\n"
        ".end f\n"
        "done:\n");
    const auto stats = h.obs.analysis.stats();
    EXPECT_EQ(stats.allArgsRepeated, 2u);
    EXPECT_EQ(stats.noArgsRepeated, 0u);
}

TEST(FunctionAnalysis, MultiArgTupleMatching)
{
    Harness h(
        "    li $a0, 1\n"
        "    li $a1, 2\n"
        "    jal g\n"       // (1,2) fresh
        "    li $a1, 3\n"
        "    jal g\n"       // (1,3): a0 repeated, not all
        "    li $a1, 2\n"
        "    jal g\n"       // (1,2) again: all repeated
        "    b done\n"
        ".ent g, 2\n"
        "g:  jr $ra\n"
        ".end g\n"
        "done:\n");
    const auto stats = h.obs.analysis.stats();
    EXPECT_EQ(stats.dynamicCalls, 3u);
    EXPECT_EQ(stats.allArgsRepeated, 1u);
    EXPECT_EQ(stats.noArgsRepeated, 1u);    // only the first call
}

TEST(FunctionAnalysis, CleanFunctionHasNoSideEffects)
{
    Harness h(
        "    li $a0, 1\n"
        "    jal f\n"
        "    jal f\n"
        "    b done\n" +
        std::string(leafF) +
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.dynamicCalls, 2u);
    EXPECT_EQ(memo.cleanCalls, 2u);
    EXPECT_DOUBLE_EQ(memo.pctCleanOfAll(), 100.0);
}

TEST(FunctionAnalysis, GlobalStoreIsSideEffect)
{
    Harness h(
        ".data\ng: .word 0\n.text\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  la $t0, g\n"
        "    sw $zero, 0($t0)\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.cleanCalls, 0u);
}

TEST(FunctionAnalysis, GlobalLoadIsImplicitInput)
{
    Harness h(
        ".data\ng: .word 5\n.text\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  la $t0, g\n"
        "    lw $t1, 0($t0)\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.cleanCalls, 0u);
}

TEST(FunctionAnalysis, StackAccessesAreClean)
{
    Harness h(
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  addiu $sp, $sp, -8\n"
        "    sw $s0, 0($sp)\n"
        "    lw $s0, 0($sp)\n"
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.cleanCalls, 1u);
}

TEST(FunctionAnalysis, SyscallIsSideEffect)
{
    Harness h(
        "    jal f\n"
        "    b done\n"
        ".ent f, 0\n"
        "f:  li $a0, 16\n"
        "    li $v0, 4\n"
        "    syscall\n"
        "    jr $ra\n"
        ".end f\n"
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.cleanCalls, 0u);
}

TEST(FunctionAnalysis, CalleeEffectsDirtyCaller)
{
    // outer itself is pure, but it calls dirty.
    Harness h(
        ".data\ng: .word 0\n.text\n"
        "    jal outer\n"
        "    b done\n"
        ".ent outer, 0\n"
        "outer:\n"
        "    addiu $sp, $sp, -8\n"
        "    sw $ra, 0($sp)\n"
        "    jal dirty\n"
        "    lw $ra, 0($sp)\n"
        "    addiu $sp, $sp, 8\n"
        "    jr $ra\n"
        ".end outer\n"
        ".ent dirty, 0\n"
        "dirty:\n"
        "    la $t0, g\n"
        "    sw $zero, 0($t0)\n"
        "    jr $ra\n"
        ".end dirty\n"
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.dynamicCalls, 2u);
    EXPECT_EQ(memo.cleanCalls, 0u);     // both dirty
}

TEST(FunctionAnalysis, CleanOfAllArgRepSplit)
{
    Harness h(
        ".data\ng: .word 0\n.text\n"
        "    li $a0, 1\n"
        "    jal clean\n"
        "    jal clean\n"       // all-arg repeated + clean
        "    jal dirty\n"
        "    jal dirty\n"       // all-arg repeated + dirty
        "    b done\n"
        ".ent clean, 1\n"
        "clean: jr $ra\n"
        ".end clean\n"
        ".ent dirty, 1\n"
        "dirty:\n"
        "    la $t0, g\n"
        "    sw $zero, 0($t0)\n"
        "    jr $ra\n"
        ".end dirty\n"
        "done:\n");
    const auto memo = h.obs.analysis.memoStats();
    EXPECT_EQ(memo.allArgRepCalls, 2u);
    EXPECT_EQ(memo.cleanAllArgRepCalls, 1u);
    EXPECT_DOUBLE_EQ(memo.pctCleanOfAllArgRep(), 50.0);
}

TEST(FunctionAnalysis, ArgSetCoverage)
{
    // f called with arg 1 four times, arg 2 twice, arg 3 once:
    // all-arg-repeated calls = 3 + 1 + 0 = 4.
    // top-1 tuple (arg 1) covers 3 of them.
    Harness h(
        "    li $a0, 1\n"
        "    jal f\n"
        "    jal f\n"
        "    jal f\n"
        "    jal f\n"
        "    li $a0, 2\n"
        "    jal f\n"
        "    jal f\n"
        "    li $a0, 3\n"
        "    jal f\n"
        "    b done\n" +
        std::string(leafF) +
        "done:\n");
    EXPECT_DOUBLE_EQ(h.obs.analysis.argSetCoverage(1), 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(h.obs.analysis.argSetCoverage(2), 1.0);
    EXPECT_DOUBLE_EQ(h.obs.analysis.argSetCoverage(5), 1.0);
}

TEST(FunctionAnalysis, FinalizeSettlesOpenFrames)
{
    // The program exits inside f (no return): finalize must still
    // account the invocation.
    test::TestRun run(
        "    li $a0, 5\n"
        "    jal f\n"
        "    b done\n"
        ".ent f, 1\n"
        "f:\n" +
            test::TestRun::exitSequence() +
        ".end f\n"
        "done:\n",
        false);
    FuncObserver obs(run.program(), run.machine());
    run.machine().addObserver(&obs);
    run.run();
    obs.analysis.finalize();
    EXPECT_EQ(obs.analysis.memoStats().dynamicCalls, 1u);
    // The exit syscall dirtied it.
    EXPECT_EQ(obs.analysis.memoStats().cleanCalls, 0u);
}

TEST(FunctionAnalysis, CountingGateSkipsSkipPhase)
{
    test::TestRun run(
        "    li $a0, 1\n"
        "    jal f\n"
        "    b done\n" +
        std::string(leafF) +
        "done:\n");
    FunctionAnalysis analysis(run.program(), run.machine());
    struct Wire : sim::Observer
    {
        FunctionAnalysis *a;
        void
        onRetire(const sim::InstrRecord &rec) override
        {
            a->onInstr(rec, false);
        }
    } wire;
    wire.a = &analysis;
    run.machine().addObserver(&wire);
    run.run();      // counting never enabled
    analysis.finalize();
    EXPECT_EQ(analysis.stats().dynamicCalls, 0u);
    EXPECT_EQ(analysis.memoStats().dynamicCalls, 0u);
}

} // namespace
} // namespace irep::core
