/**
 * @file
 * RepetitionTracker unit tests: the paper's §2 definition (repeated =
 * same inputs AND same outputs as a buffered instance), the 2000-
 * instance cap, and the Table/Figure statistics.
 */

#include <gtest/gtest.h>

#include "core/repetition_tracker.hh"
#include "isa/instruction.hh"
#include "support/logging.hh"

namespace irep::core
{
namespace
{

/** Build a minimal record for static instruction `index`. */
sim::InstrRecord
rec(uint32_t index, std::initializer_list<uint32_t> srcs,
    uint64_t result)
{
    static isa::Instruction dummy = isa::decode(0x00851021); // addu
    sim::InstrRecord r;
    r.staticIndex = index;
    r.inst = &dummy;
    r.numSrcRegs = uint8_t(srcs.size());
    int i = 0;
    for (uint32_t s : srcs)
        r.srcVal[i++] = s;
    r.result = result;
    return r;
}

TEST(Tracker, FirstInstanceIsNotRepeated)
{
    RepetitionTracker t(4);
    EXPECT_FALSE(t.onInstr(rec(0, {1, 2}, 3)));
}

TEST(Tracker, SameInputsAndOutputRepeat)
{
    RepetitionTracker t(4);
    t.onInstr(rec(0, {1, 2}, 3));
    EXPECT_TRUE(t.onInstr(rec(0, {1, 2}, 3)));
    EXPECT_TRUE(t.onInstr(rec(0, {1, 2}, 3)));
}

TEST(Tracker, DifferentInputsDoNotRepeat)
{
    RepetitionTracker t(4);
    t.onInstr(rec(0, {1, 2}, 3));
    EXPECT_FALSE(t.onInstr(rec(0, {1, 9}, 3)));
    EXPECT_FALSE(t.onInstr(rec(0, {9, 2}, 3)));
}

TEST(Tracker, DifferentOutputDoesNotRepeat)
{
    // A load from the same address (same inputs) returning a changed
    // value is NOT repeated — the paper's §2 example.
    RepetitionTracker t(4);
    t.onInstr(rec(0, {100}, 1));
    EXPECT_FALSE(t.onInstr(rec(0, {100}, 2)));
    EXPECT_TRUE(t.onInstr(rec(0, {100}, 1)));
}

TEST(Tracker, InstancesAreScopedToStaticInstruction)
{
    RepetitionTracker t(4);
    t.onInstr(rec(0, {1, 2}, 3));
    // Same values at a different static instruction: new instance.
    EXPECT_FALSE(t.onInstr(rec(1, {1, 2}, 3)));
    EXPECT_TRUE(t.onInstr(rec(1, {1, 2}, 3)));
}

TEST(Tracker, CapLimitsBufferedInstances)
{
    RepetitionTracker t(4, /*instance_cap=*/2);
    t.onInstr(rec(0, {1}, 1));
    t.onInstr(rec(0, {2}, 2));
    t.onInstr(rec(0, {3}, 3));      // over cap: not buffered
    EXPECT_TRUE(t.onInstr(rec(0, {1}, 1)));
    EXPECT_TRUE(t.onInstr(rec(0, {2}, 2)));
    EXPECT_FALSE(t.onInstr(rec(0, {3}, 3)));    // was never buffered
}

TEST(Tracker, ZeroCapIsRejected)
{
    EXPECT_THROW(RepetitionTracker(4, 0), FatalError);
}

TEST(Tracker, OutOfRangeStaticIndexPanics)
{
    RepetitionTracker t(2);
    EXPECT_THROW(t.onInstr(rec(2, {1}, 1)), PanicError);
}

TEST(Tracker, StatsTable1Fields)
{
    RepetitionTracker t(10);
    // static 0: executed 3x, 2 repeats.
    t.onInstr(rec(0, {1}, 1));
    t.onInstr(rec(0, {1}, 1));
    t.onInstr(rec(0, {1}, 1));
    // static 1: executed once, no repeats.
    t.onInstr(rec(1, {5}, 5));
    const auto s = t.stats();
    EXPECT_EQ(s.dynTotal, 4u);
    EXPECT_EQ(s.dynRepeated, 2u);
    EXPECT_EQ(s.staticTotal, 10u);
    EXPECT_EQ(s.staticExecuted, 2u);
    EXPECT_EQ(s.staticRepeated, 1u);
    EXPECT_DOUBLE_EQ(s.pctDynRepeated(), 50.0);
    EXPECT_DOUBLE_EQ(s.pctStaticExecuted(), 20.0);
    EXPECT_DOUBLE_EQ(s.pctStaticRepeatedOfExecuted(), 50.0);
}

TEST(Tracker, StatsTable2UniqueInstances)
{
    RepetitionTracker t(4);
    // Two unique repeatable instances at static 0: one repeats 3x,
    // one 1x. One non-repeating instance at static 1.
    for (int i = 0; i < 4; ++i)
        t.onInstr(rec(0, {7}, 7));
    t.onInstr(rec(0, {8}, 8));
    t.onInstr(rec(0, {8}, 8));
    t.onInstr(rec(1, {9}, 9));
    const auto s = t.stats();
    EXPECT_EQ(s.uniqueRepeatableInstances, 2u);
    EXPECT_DOUBLE_EQ(s.avgRepeatsPerInstance, (3 + 1) / 2.0);
}

TEST(Tracker, PerStaticAccessors)
{
    RepetitionTracker t(4);
    t.onInstr(rec(2, {1}, 1));
    t.onInstr(rec(2, {1}, 1));
    EXPECT_EQ(t.execCount(2), 2u);
    EXPECT_EQ(t.repeatCount(2), 1u);
    EXPECT_EQ(t.execCount(0), 0u);
}

TEST(Tracker, StaticCoverageCurve)
{
    RepetitionTracker t(4);
    // static 0 contributes 9 repeats, static 1 contributes 1.
    for (int i = 0; i < 10; ++i)
        t.onInstr(rec(0, {1}, 1));
    t.onInstr(rec(1, {2}, 2));
    t.onInstr(rec(1, {2}, 2));
    const auto curve = t.staticCoverage({0.5, 0.9, 1.0});
    ASSERT_EQ(curve.size(), 3u);
    // 50% and 90% of 10 total repeats come from the single top
    // static (9/10 = 90%), i.e. half the repeated statics.
    EXPECT_DOUBLE_EQ(curve[0].contributors, 0.5);
    EXPECT_DOUBLE_EQ(curve[1].contributors, 0.5);
    EXPECT_DOUBLE_EQ(curve[2].contributors, 1.0);
}

TEST(Tracker, CoverageOnEmptyTrackerIsZero)
{
    RepetitionTracker t(4);
    const auto curve = t.staticCoverage({0.5, 1.0});
    EXPECT_DOUBLE_EQ(curve[0].contributors, 0.0);
    EXPECT_DOUBLE_EQ(curve[1].contributors, 0.0);
}

TEST(Tracker, InstanceCoverageCurve)
{
    RepetitionTracker t(4);
    // Instance A repeats 8x, instance B repeats 2x.
    for (int i = 0; i < 9; ++i)
        t.onInstr(rec(0, {1}, 1));
    for (int i = 0; i < 3; ++i)
        t.onInstr(rec(0, {2}, 2));
    const auto curve = t.instanceCoverage({0.75, 1.0});
    EXPECT_DOUBLE_EQ(curve[0].contributors, 0.5);   // top instance = 80%
    EXPECT_DOUBLE_EQ(curve[1].contributors, 1.0);
}

TEST(Tracker, InstanceBuckets)
{
    RepetitionTracker t(8);
    // static 0: 1 unique repeatable instance, 5 repeats -> bucket "1".
    for (int i = 0; i < 6; ++i)
        t.onInstr(rec(0, {1}, 1));
    // static 1: 3 unique repeatable instances (bucket "2-10"),
    // 3 repeats total.
    for (int v = 0; v < 3; ++v) {
        t.onInstr(rec(1, {uint32_t(v)}, uint64_t(v)));
        t.onInstr(rec(1, {uint32_t(v)}, uint64_t(v)));
    }
    const auto buckets = t.instanceBuckets();
    ASSERT_EQ(buckets.size(), 5u);
    EXPECT_EQ(buckets[0].repetition, 5u);
    EXPECT_EQ(buckets[1].repetition, 3u);
    EXPECT_EQ(buckets[2].repetition, 0u);
    EXPECT_DOUBLE_EQ(buckets[0].share, 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(buckets[1].share, 3.0 / 8.0);
}

TEST(Tracker, SourceCountDisambiguatesInstances)
{
    // (1 src: [5]) vs (2 src: [5,0]) must not collide even when the
    // trailing values look alike.
    RepetitionTracker t(4);
    t.onInstr(rec(0, {5}, 9));
    EXPECT_FALSE(t.onInstr(rec(0, {5, 0}, 9)));
}

} // namespace
} // namespace irep::core
