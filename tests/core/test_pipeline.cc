/**
 * @file
 * AnalysisPipeline tests: skip/window protocol, counting gates,
 * cross-analysis consistency, and config handling.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hh"
#include "minicc/compiler.hh"
#include "sim_test_util.hh"
#include "support/prof.hh"

namespace irep::core
{
namespace
{

/** A small MiniC program with calls, globals and loops. */
assem::Program
sampleProgram()
{
    return minicc::compileToProgram(
        "int g[16];\n"
        "int f(int x) { return x * 2 + 1; }\n"
        "int main() {\n"
        "  int s; s = 0;\n"
        "  for (int i = 0; i < 200; i++) {\n"
        "    g[i & 15] = f(i & 7);\n"
        "    s += g[i & 15];\n"
        "  }\n"
        "  return s & 0xff;\n"
        "}\n");
}

TEST(Pipeline, WindowBoundsExecution)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.skipInstructions = 100;
    config.windowInstructions = 500;
    AnalysisPipeline pipeline(machine, config);
    const uint64_t executed = pipeline.run();
    EXPECT_EQ(executed, 500u);
    EXPECT_EQ(machine.instret(), 600u);
    EXPECT_EQ(pipeline.tracker().stats().dynTotal, 500u);
}

TEST(Pipeline, RunsToCompletionWhenWindowIsLarge)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 100'000'000;
    AnalysisPipeline pipeline(machine, config);
    pipeline.run();
    EXPECT_TRUE(machine.halted());
}

TEST(Pipeline, SkipPhaseIsNotCounted)
{
    const auto program = sampleProgram();

    // Full-program measurement...
    sim::Machine m1(program);
    PipelineConfig c1;
    c1.windowInstructions = 100'000'000;
    AnalysisPipeline p1(m1, c1);
    const uint64_t full = p1.run();

    // ...vs skipping half of it.
    sim::Machine m2(program);
    PipelineConfig c2;
    c2.skipInstructions = full / 2;
    c2.windowInstructions = 100'000'000;
    AnalysisPipeline p2(m2, c2);
    const uint64_t window = p2.run();

    EXPECT_EQ(window + full / 2, full);
    EXPECT_EQ(p2.tracker().stats().dynTotal, window);
}

TEST(Pipeline, AnalysesShareTheRepetitionVerdict)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 100'000'000;
    AnalysisPipeline pipeline(machine, config);
    pipeline.run();

    const auto tracker_stats = pipeline.tracker().stats();
    const auto &taint_stats = pipeline.taint().stats();
    const auto &local_stats = pipeline.local().stats();

    EXPECT_EQ(taint_stats.totalOverall, tracker_stats.dynTotal);
    EXPECT_EQ(taint_stats.totalRepeated, tracker_stats.dynRepeated);
    EXPECT_EQ(local_stats.totalOverall, tracker_stats.dynTotal);
    EXPECT_EQ(local_stats.totalRepeated, tracker_stats.dynRepeated);
    EXPECT_EQ(pipeline.reuse().stats().totalInstructions,
              tracker_stats.dynTotal);
    EXPECT_EQ(pipeline.reuse().stats().repeatedInstructions,
              tracker_stats.dynRepeated);
}

TEST(Pipeline, ReuseHitsNeverExceedAccesses)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 100'000'000;
    AnalysisPipeline pipeline(machine, config);
    pipeline.run();
    const auto &reuse = pipeline.reuse().stats();
    EXPECT_LE(reuse.hits, reuse.accesses);
    EXPECT_LE(reuse.accesses, reuse.totalInstructions);
}

TEST(Pipeline, DisabledAnalysesAreAbsent)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 1000;
    config.enableGlobal = false;
    config.enableLocal = false;
    config.enableFunction = false;
    config.enableReuse = false;
    AnalysisPipeline pipeline(machine, config);
    EXPECT_EQ(pipeline.run(), 1000u);
    EXPECT_EQ(pipeline.tracker().stats().dynTotal, 1000u);
}

TEST(Pipeline, InstanceCapIsForwarded)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.instanceCap = 7;
    config.windowInstructions = 1000;
    AnalysisPipeline pipeline(machine, config);
    EXPECT_EQ(pipeline.tracker().instanceCap(), 7u);
}

TEST(Pipeline, SmallerCapMeasuresLessRepetition)
{
    const auto program = sampleProgram();

    auto measure = [&program](unsigned cap) {
        sim::Machine machine(program);
        PipelineConfig config;
        config.instanceCap = cap;
        config.windowInstructions = 100'000'000;
        config.enableGlobal = false;
        config.enableLocal = false;
        config.enableFunction = false;
        config.enableReuse = false;
        AnalysisPipeline pipeline(machine, config);
        pipeline.run();
        return pipeline.tracker().stats().dynRepeated;
    };

    EXPECT_LE(measure(1), measure(8));
    EXPECT_LE(measure(8), measure(2000));
}

TEST(Pipeline, ClassCountsCoverTheWindow)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 100'000'000;
    AnalysisPipeline pipeline(machine, config);
    const uint64_t executed = pipeline.run();

    const auto &classes = pipeline.classes().stats();
    EXPECT_EQ(classes.totalOverall, executed);
    uint64_t sum = 0;
    for (unsigned c = 0; c < numInstrClasses; ++c)
        sum += classes.overall[c];
    EXPECT_EQ(sum, executed);
    // A compiled program certainly has ALU ops, loads, stores,
    // branches, and jumps.
    EXPECT_GT(classes.overall[unsigned(InstrClass::IntAlu)], 0u);
    EXPECT_GT(classes.overall[unsigned(InstrClass::Load)], 0u);
    EXPECT_GT(classes.overall[unsigned(InstrClass::Store)], 0u);
    EXPECT_GT(classes.overall[unsigned(InstrClass::Branch)], 0u);
    EXPECT_GT(classes.overall[unsigned(InstrClass::Jump)], 0u);
}

TEST(Pipeline, PredictorsTrackEligibleWrites)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 100'000'000;
    AnalysisPipeline pipeline(machine, config);
    pipeline.run();

    const auto &pred = pipeline.prediction();
    EXPECT_GT(pred.lastValue().eligible, 0u);
    EXPECT_EQ(pred.lastValue().eligible, pred.stride().eligible);
    EXPECT_EQ(pred.lastValue().eligible, pred.context().eligible);
    EXPECT_LE(pred.lastValue().correct, pred.lastValue().predictions);
    EXPECT_LE(pred.lastValue().predictions,
              pred.lastValue().eligible);
    // This loopy program is highly predictable by at least one
    // scheme.
    const double best = std::max(
        {pred.lastValue().pctOfEligible(),
         pred.stride().pctOfEligible(),
         pred.context().pctOfEligible()});
    EXPECT_GT(best, 30.0);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const auto program = sampleProgram();
    auto run_once = [&program]() {
        sim::Machine machine(program);
        PipelineConfig config;
        config.windowInstructions = 100'000'000;
        AnalysisPipeline pipeline(machine, config);
        pipeline.run();
        return pipeline.tracker().stats();
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.dynTotal, b.dynTotal);
    EXPECT_EQ(a.dynRepeated, b.dynRepeated);
    EXPECT_EQ(a.uniqueRepeatableInstances,
              b.uniqueRepeatableInstances);
}


/** Destroying a pipeline while its machine lives used to leave a
 *  dangling observer pointer; re-analysis of one machine with a
 *  fresh config must be safe. */
TEST(Pipeline, DestructorDetachesFromMachine)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    {
        PipelineConfig config;
        config.windowInstructions = 300;
        AnalysisPipeline first(machine, config);
        first.run();
    }
    // The first pipeline is gone; running the machine again must not
    // notify it. A second pipeline sees only its own window.
    PipelineConfig config;
    config.windowInstructions = 400;
    AnalysisPipeline second(machine, config);
    const uint64_t executed = second.run();
    EXPECT_EQ(executed, 400u);
    EXPECT_EQ(second.tracker().stats().dynTotal, 400u);
    EXPECT_EQ(machine.instret(), 700u);
}

TEST(Pipeline, ReanalysisWithFreshConfigsObservesOnlyItsOwnRun)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    uint64_t before = 0;
    {
        PipelineConfig config;
        config.windowInstructions = 250;
        AnalysisPipeline pipeline(machine, config);
        pipeline.run();
        before = pipeline.tracker().stats().dynTotal;
    }
    {
        PipelineConfig config;
        config.windowInstructions = 250;
        config.enableReuse = false;
        AnalysisPipeline pipeline(machine, config);
        pipeline.run();
        EXPECT_EQ(pipeline.tracker().stats().dynTotal, before);
    }
}

TEST(Pipeline, SampledProfilingResetsBetweenRuns)
{
    // Regression: a second run() on the same pipeline must start its
    // ProfSample accumulation from zero, not stack samples (and
    // nanoseconds) on top of the first run's.
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 1500;   // ~2 samples per window
    AnalysisPipeline pipeline(machine, config);

    prof::enable(true);
    pipeline.run();
    const uint64_t first = pipeline.profSample().samples;
    pipeline.run();
    const uint64_t second = pipeline.profSample().samples;
    prof::enable(false);
    prof::reset();

    EXPECT_GT(first, 0u);
    // Not first + second — the accumulator was reset.
    EXPECT_LE(second, first);
    EXPECT_GT(second, 0u);
}

TEST(Pipeline, TimingResetsBetweenRuns)
{
    // Regression: with skip configured to 0, a second run used to
    // keep the first run's skip timing in timing().skip.
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig skip_config;
    skip_config.skipInstructions = 100;
    skip_config.windowInstructions = 200;
    AnalysisPipeline pipeline(machine, skip_config);
    pipeline.run();
    EXPECT_EQ(pipeline.timing().skip.instructions, 100u);

    // A fresh pipeline without a skip phase must report zero skip
    // instructions even after the machine has executed plenty.
    PipelineConfig no_skip;
    no_skip.windowInstructions = 200;
    AnalysisPipeline second(machine, no_skip);
    second.run();
    second.run();
    EXPECT_EQ(second.timing().skip.instructions, 0u);
    EXPECT_EQ(second.timing().skip.seconds, 0.0);
}

TEST(Pipeline, ShardedSampledProfilingCountsMatchSerial)
{
    // The producer marks every 512th counting retire in sharded mode;
    // the sample *count* must match serial cadence exactly (the
    // nanosecond payloads are timings and may differ).
    const auto program = sampleProgram();
    const uint64_t window = 4096;

    auto samplesAt = [&](unsigned jobs) {
        sim::Machine machine(program);
        PipelineConfig config;
        config.windowInstructions = window;
        config.windowJobs = jobs;
        AnalysisPipeline pipeline(machine, config);
        prof::enable(true);
        pipeline.run();
        prof::enable(false);
        prof::reset();
        return pipeline.profSample().samples;
    };

    const uint64_t serial = samplesAt(1);
    EXPECT_EQ(serial, window / AnalysisPipeline::ProfSample::interval);
    EXPECT_EQ(samplesAt(4), serial);
}

TEST(Pipeline, ApplyAnalysisSetSelectsExactlyTheNamed)
{
    PipelineConfig config;
    std::string error;
    ASSERT_TRUE(
        applyAnalysisSet("classes,attribution", config, &error))
        << error;
    EXPECT_TRUE(config.enableClass);
    EXPECT_TRUE(config.enableAttribution);
    EXPECT_FALSE(config.enableGlobal);
    EXPECT_FALSE(config.enableLocal);
    EXPECT_FALSE(config.enableFunction);
    EXPECT_FALSE(config.enableReuse);
    EXPECT_FALSE(config.enableValuePrediction);
}

TEST(Pipeline, ApplyAnalysisSetAllAndTrackerSpellings)
{
    PipelineConfig all;
    ASSERT_TRUE(applyAnalysisSet("all", all));
    EXPECT_TRUE(all.enableGlobal && all.enableLocal &&
                all.enableFunction && all.enableReuse &&
                all.enableClass && all.enableValuePrediction &&
                all.enableAttribution);

    // "tracker" is a valid no-op name: the tracker always runs, so
    // naming only it means "nothing but the tracker".
    PipelineConfig tracker;
    ASSERT_TRUE(applyAnalysisSet("tracker", tracker));
    EXPECT_FALSE(tracker.enableGlobal || tracker.enableLocal ||
                 tracker.enableFunction || tracker.enableReuse ||
                 tracker.enableClass ||
                 tracker.enableValuePrediction ||
                 tracker.enableAttribution);
}

TEST(Pipeline, ApplyAnalysisSetRejectsBadSetsUntouched)
{
    PipelineConfig config;
    config.enableReuse = false;     // a non-default marker
    std::string error;
    EXPECT_FALSE(applyAnalysisSet("classes,bogus", config, &error));
    EXPECT_NE(error.find("bogus"), std::string::npos);
    // A failed apply must not half-commit.
    EXPECT_TRUE(config.enableGlobal);
    EXPECT_FALSE(config.enableReuse);

    EXPECT_FALSE(applyAnalysisSet("", config, &error));
    EXPECT_FALSE(applyAnalysisSet("classes,,local", config, &error));
}

TEST(Pipeline, DisabledAnalysesAreNotConstructed)
{
    const auto program = sampleProgram();
    sim::Machine machine(program);
    PipelineConfig config;
    config.windowInstructions = 100'000'000;
    ASSERT_TRUE(applyAnalysisSet("attribution", config));
    AnalysisPipeline pipeline(machine, config);
    const uint64_t executed = pipeline.run();
    EXPECT_TRUE(machine.halted());
    // The enabled analysis saw every window instruction; the tracker
    // always runs regardless of the set.
    EXPECT_EQ(pipeline.attribution().stats().totalOverall, executed);
    EXPECT_EQ(pipeline.tracker().stats().dynTotal, executed);
}

} // namespace
} // namespace irep::core
