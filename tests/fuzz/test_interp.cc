/**
 * @file
 * Unit tests for the reference MiniC interpreter — the ground truth of
 * the differential fuzzer. Each case pins one piece of the normative
 * semantics in docs/minic.md (wrap-around int32, MIPS-I division and
 * shift edge cases, unsigned char narrowing, syscalls, resource
 * limits).
 */

#include <gtest/gtest.h>

#include "fuzz/interp.hh"
#include "minicc/compiler.hh"

namespace irep
{
namespace
{

fuzz::InterpResult
runInterp(const std::string &source, const std::string &input = "",
          const fuzz::InterpLimits &limits = {})
{
    const auto unit = minicc::compileToUnit(source);
    return fuzz::interpret(*unit, input, limits);
}

int
evalInterp(const std::string &expression)
{
    const auto r =
        runInterp("int main(void) { return " + expression + "; }");
    EXPECT_TRUE(r.halted) << r.errorText;
    return r.exitCode;
}

// ---------------------------------------------------------------------
// Arithmetic edge cases (MIPS-I semantics).
// ---------------------------------------------------------------------

TEST(InterpArith, TruncatingDivision)
{
    EXPECT_EQ(evalInterp("100 / 7"), 14);
    EXPECT_EQ(evalInterp("(0 - 100) / 7"), -14);
    EXPECT_EQ(evalInterp("100 % 7"), 2);
    EXPECT_EQ(evalInterp("(0 - 100) % 7"), -2);
}

TEST(InterpArith, DivisionByZeroYieldsZero)
{
    EXPECT_EQ(evalInterp("7 / 0"), 0);
    EXPECT_EQ(evalInterp("7 % 0"), 0);
    EXPECT_EQ(evalInterp("(0 - 7) / 0"), 0);
}

TEST(InterpArith, IntMinOverflowCases)
{
    EXPECT_EQ(evalInterp("0x80000000 / (0 - 1)"), INT32_MIN);
    EXPECT_EQ(evalInterp("0x80000000 % (0 - 1)"), 0);
}

TEST(InterpArith, WrapAroundAddMul)
{
    EXPECT_EQ(evalInterp("0x7fffffff + 1"), INT32_MIN);
    EXPECT_EQ(evalInterp("0x10001 * 0x10001"), 131073);
}

TEST(InterpArith, ShiftCountsAreMod32)
{
    EXPECT_EQ(evalInterp("1 << 33"), 2);   // sllv masks to 1
    EXPECT_EQ(evalInterp("256 >> 40"), 1); // srav masks to 8
}

TEST(InterpArith, RightShiftIsArithmetic)
{
    EXPECT_EQ(evalInterp("(0 - 8) >> 1"), -4);
    EXPECT_EQ(evalInterp("0x80000000 >> 31"), -1);
}

TEST(InterpArith, ShortCircuitYieldsZeroOrOne)
{
    EXPECT_EQ(evalInterp("5 && 7"), 1);
    EXPECT_EQ(evalInterp("0 || 9"), 1);
    EXPECT_EQ(evalInterp("0 && (1 / 0)"), 0);
    // The rhs must not be evaluated at all: a diverging rhs would
    // otherwise blow the step budget.
    const auto r = runInterp(
        "int f(void) { while (1) {} return 0; }\n"
        "int main(void) { return 1 || f(); }");
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitCode, 1);
}

// ---------------------------------------------------------------------
// char narrowing.
// ---------------------------------------------------------------------

TEST(InterpChar, AssignmentNarrowsAndYieldsNarrowed)
{
    const auto r = runInterp(
        "int main(void) { char c; c = 0; return (c = 300); }");
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitCode, 44);
}

TEST(InterpChar, CharIsUnsigned)
{
    const auto r = runInterp(
        "int main(void) { char c; c = 0 - 1; return c; }");
    EXPECT_EQ(r.exitCode, 255);
}

TEST(InterpChar, CastMasksLowByte)
{
    EXPECT_EQ(evalInterp("(char)0x1ff"), 0xff);
    EXPECT_EQ(evalInterp("(char)(0 - 1)"), 0xff);
}

TEST(InterpChar, ReturnFromCharFunctionNarrows)
{
    const auto r = runInterp(
        "char f(void) { return 300; }\n"
        "int main(void) { return f(); }");
    EXPECT_EQ(r.exitCode, 44);
}

TEST(InterpChar, CharParameterNarrows)
{
    const auto r = runInterp(
        "int f(char c) { return c; }\n"
        "int main(void) { return f(300); }");
    EXPECT_EQ(r.exitCode, 44);
}

// ---------------------------------------------------------------------
// Globals, arrays, pointers.
// ---------------------------------------------------------------------

TEST(InterpData, GlobalsAreZeroInitialized)
{
    const auto r = runInterp(
        "int g[4];\n"
        "int s;\n"
        "int main(void) { return g[2] + s; }");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(InterpData, GlobalInitializerList)
{
    const auto r = runInterp(
        "int g[4] = {10, 20, 30, 40};\n"
        "int main(void) { return g[0] + g[3]; }");
    EXPECT_EQ(r.exitCode, 50);
}

TEST(InterpData, StringLiteralContents)
{
    const auto r = runInterp(
        "char *s = \"AB\";\n"
        "int main(void) { return s[0] + s[1] + s[2]; }");
    EXPECT_EQ(r.exitCode, 'A' + 'B');
}

TEST(InterpData, PointerArithmeticScales)
{
    const auto r = runInterp(
        "int a[4] = {1, 2, 3, 4};\n"
        "int main(void) { int *p = &a[0]; int *q = p + 3;\n"
        "                 return (*q) + (q - p); }");
    EXPECT_EQ(r.exitCode, 7);
}

TEST(InterpData, StructMembers)
{
    const auto r = runInterp(
        "struct P { int x; char tag; int v[2]; };\n"
        "struct P g;\n"
        "int main(void) { g.x = 5; g.tag = 300; g.v[1] = 7;\n"
        "                 return g.x + g.tag + g.v[1]; }");
    EXPECT_EQ(r.exitCode, 5 + 44 + 7);
}

// ---------------------------------------------------------------------
// Syscalls.
// ---------------------------------------------------------------------

TEST(InterpSyscall, WriteCollectsOutput)
{
    const auto r = runInterp(
        "char msg[4] = \"hi\\n\";\n"
        "int main(void) { __write(msg, 3); return 0; }");
    EXPECT_EQ(r.output, "hi\n");
}

TEST(InterpSyscall, ReadConsumesInput)
{
    const auto r = runInterp(
        "int main(void) { char b[8]; int i;\n"
        "  for (i = 0; i < 8; i++) { b[i] = 0; }\n"
        "  int n = __read(b, 8);\n"
        "  return n * 100 + b[0]; }",
        "xy");
    EXPECT_EQ(r.exitCode, 2 * 100 + 'x');
}

TEST(InterpSyscall, ReadPastEofReturnsZero)
{
    const auto r = runInterp(
        "int main(void) { char b[4];\n"
        "  __read(b, 4);\n"
        "  return __read(b, 4); }",
        "abcd");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(InterpSyscall, SbrkReturnsZeroedMemory)
{
    const auto r = runInterp(
        "int main(void) { int *p = (int *)__sbrk(64);\n"
        "  int s = p[0] + p[15]; p[3] = 9; return s + p[3]; }");
    EXPECT_EQ(r.exitCode, 9);
}

TEST(InterpSyscall, ExplicitExit)
{
    const auto r = runInterp(
        "int main(void) { __exit(7); return 1; }");
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.exitCode, 7);
}

// ---------------------------------------------------------------------
// Resource limits.
// ---------------------------------------------------------------------

TEST(InterpLimits, StepBudgetStopsInfiniteLoop)
{
    fuzz::InterpLimits limits;
    limits.maxSteps = 10'000;
    const auto r =
        runInterp("int main(void) { while (1) {} return 0; }", "",
                  limits);
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.error);
}

TEST(InterpLimits, CallDepthGuardStopsRunawayRecursion)
{
    fuzz::InterpLimits limits;
    limits.maxCallDepth = 50;
    const auto r = runInterp(
        "int f(int n) { return f(n + 1); }\n"
        "int main(void) { return f(0); }",
        "", limits);
    EXPECT_FALSE(r.halted);
    EXPECT_TRUE(r.error);
}

} // namespace
} // namespace irep
