/**
 * @file
 * Differential-fuzzing pipeline tests: the fixed-seed smoke campaign
 * that gates every commit, sensitivity to an injected miscompile, and
 * the repro-dumping driver.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "asm/assembler.hh"
#include "fuzz/differ.hh"
#include "fuzz/fuzz.hh"
#include "fuzz/interp.hh"
#include "minicc/compiler.hh"
#include "sim/machine.hh"

namespace irep
{
namespace
{

TEST(Differential, HandwrittenProgramMatches)
{
    const auto outcome = fuzz::runDifferential(
        "int fib(int n) { if (n < 2) { return n; }\n"
        "                 return fib(n - 1) + fib(n - 2); }\n"
        "int main(void) { return fib(12); }",
        "", {});
    EXPECT_EQ(outcome.status, fuzz::DiffStatus::Match)
        << outcome.detail;
    EXPECT_EQ(outcome.refExit, 144);
}

TEST(Differential, CompileErrorIsReported)
{
    const auto outcome =
        fuzz::runDifferential("int main(void) { return x; }", "", {});
    EXPECT_EQ(outcome.status, fuzz::DiffStatus::CompileError);
    EXPECT_NE(outcome.detail.find("x"), std::string::npos);
}

// A program the simulator cannot finish within its budget is only a
// sim bug when the interpreter proved the program light; when the
// reference trace is itself heavy relative to the budget, the program
// may simply need more instructions than the budget allows, and the
// differ must call it undecided rather than convict the pipeline.
TEST(Differential, HeavyProgramOverSimBudgetIsUndecided)
{
    fuzz::DiffLimits limits;
    limits.maxInstructions = 1'000;
    limits.interp.maxSteps = 100'000'000;
    const auto outcome = fuzz::runDifferential(
        "int main(void) { int i; int s; s = 0;\n"
        "  for (i = 0; i < 1000000; i++) { s = s + i; }\n"
        "  return s & 255; }",
        "", limits);
    EXPECT_EQ(outcome.status, fuzz::DiffStatus::Match)
        << outcome.detail;
    EXPECT_NE(outcome.detail.find("undecided"), std::string::npos)
        << outcome.detail;
}

// An artificial miscompile — the assembly is patched behind the
// compiler's back — must be flagged as a mismatch. This is the
// sensitivity check for the whole differential setup: if this test
// fails, fuzz campaigns prove nothing.
TEST(Differential, InjectedMiscompileIsCaught)
{
    const std::string source = "int main(void) { return 41; }";
    const auto unit = minicc::compileToUnit(source);
    std::string asmText = minicc::generateAsm(*unit);

    const auto pos = asmText.find("41");
    ASSERT_NE(pos, std::string::npos) << asmText;
    asmText.replace(pos, 2, "42");

    const auto program = assem::assemble(asmText);
    const auto sim = sim::runToHalt(program, "");
    const auto ref = fuzz::interpret(*unit, "");

    ASSERT_TRUE(sim.halted);
    ASSERT_TRUE(ref.halted);
    EXPECT_EQ(ref.exitCode, 41);
    EXPECT_EQ(sim.exitCode, 42);
    EXPECT_NE(ref.exitCode, sim.exitCode);
}

// The same sensitivity, end to end through runFuzz: a failing seed
// must produce a minimized on-disk repro.
TEST(Differential, FailingProgramProducesMinimizedRepro)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::path(::testing::TempDir()) / "irep_fuzz_repro_test";
    fs::remove_all(dir);

    // A mismatch cannot be staged through the real compiler (that
    // would require a live bug), so exercise the dump path by denying
    // the interpreter any call depth: every program then fails
    // deterministically at the entry to main — a minimizable
    // ref-error.
    fuzz::FuzzOptions options;
    options.seed = 1;
    options.count = 3;
    options.reproDir = dir.string();
    options.interp.maxCallDepth = 0;
    std::ostringstream log;
    const auto report = fuzz::runFuzz(options, log);

    EXPECT_FALSE(report.ok());
    ASSERT_FALSE(report.failures.empty());
    for (const auto &failure : report.failures) {
        ASSERT_FALSE(failure.reproPath.empty()) << log.str();
        EXPECT_TRUE(fs::exists(failure.reproPath));
        std::ifstream in(failure.reproPath);
        std::stringstream text;
        text << in.rdbuf();
        EXPECT_NE(text.str().find("int main(void)"),
                  std::string::npos);
    }
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// The commit-gating smoke campaign: 200 fixed seeds, zero divergence.
// ---------------------------------------------------------------------

TEST(DifferentialSmoke, TwoHundredSeedsMatch)
{
    fuzz::FuzzOptions options;
    options.seed = 1;
    options.count = 200;
    options.reproDir = (std::filesystem::path(::testing::TempDir()) /
                        "irep_fuzz_smoke")
                           .string();
    std::ostringstream log;
    const auto report = fuzz::runFuzz(options, log);
    EXPECT_EQ(report.matches, report.total) << log.str();
    EXPECT_TRUE(report.ok()) << log.str();
}

// The same campaign through the block-cache backend: the fuzzer's
// random programs hammer translation, fusion, chaining and budget
// tails far from the workloads' idioms.
TEST(DifferentialSmoke, TwoHundredSeedsMatchBBCache)
{
    fuzz::FuzzOptions options;
    options.seed = 1;
    options.count = 200;
    options.reproDir = (std::filesystem::path(::testing::TempDir()) /
                        "irep_fuzz_smoke_bbcache")
                           .string();
    options.exec = sim::ExecBackend::BBCache;
    std::ostringstream log;
    const auto report = fuzz::runFuzz(options, log);
    EXPECT_EQ(report.matches, report.total) << log.str();
    EXPECT_TRUE(report.ok()) << log.str();
}

} // namespace
} // namespace irep
