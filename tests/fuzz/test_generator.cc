/**
 * @file
 * Tests for the random-program generator and the repro minimizer:
 * determinism per seed, well-formedness of the emitted programs, and
 * predicate-driven minimization.
 */

#include <gtest/gtest.h>

#include "fuzz/generator.hh"
#include "fuzz/minimize.hh"
#include "minicc/compiler.hh"

namespace irep
{
namespace
{

TEST(Generator, SameSeedSameProgram)
{
    fuzz::GenOptions options;
    options.seed = 7;
    const auto a = fuzz::generateProgram(options);
    const auto b = fuzz::generateProgram(options);
    EXPECT_EQ(a.render(), b.render());
    EXPECT_EQ(a.input, b.input);
}

TEST(Generator, DifferentSeedsDiverge)
{
    fuzz::GenOptions a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(fuzz::generateProgram(a).render(),
              fuzz::generateProgram(b).render());
}

TEST(Generator, ProgramsCompile)
{
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        fuzz::GenOptions options;
        options.seed = seed;
        const auto program = fuzz::generateProgram(options);
        EXPECT_NO_THROW({ minicc::compileToUnit(program.render()); })
            << "seed " << seed << ":\n"
            << program.render();
    }
}

TEST(Generator, StatementBudgetScalesProgramSize)
{
    fuzz::GenOptions small, large;
    small.seed = large.seed = 3;
    small.maxStmts = 4;
    large.maxStmts = 60;
    EXPECT_LT(fuzz::generateProgram(small).render().size(),
              fuzz::generateProgram(large).render().size());
}

// ---------------------------------------------------------------------
// Minimizer: pure predicate, no compilation involved.
// ---------------------------------------------------------------------

fuzz::GenProgram
syntheticProgram()
{
    fuzz::GenProgram p;
    p.structs = {"struct A {};"};
    p.globals = {"int g1;", "int g2;", "int NEEDLE_g;"};
    p.helpers = {"void h1(void) {}", "void h2(void) {}"};
    p.mainBody = {"{ a; }", "{ NEEDLE; }", "{ b; }", "{ c; }",
                  "{ d; }"};
    return p;
}

bool
hasNeedle(const fuzz::GenProgram &p)
{
    return p.render().find("NEEDLE;") != std::string::npos &&
           p.render().find("NEEDLE_g") != std::string::npos;
}

TEST(Minimizer, KeepsOnlyWhatThePredicateNeeds)
{
    const auto minimal =
        fuzz::minimizeProgram(syntheticProgram(), hasNeedle);
    EXPECT_TRUE(hasNeedle(minimal));
    EXPECT_EQ(minimal.mainBody.size(), 1u);
    EXPECT_EQ(minimal.mainBody[0], "{ NEEDLE; }");
    EXPECT_EQ(minimal.globals.size(), 1u);
    EXPECT_EQ(minimal.globals[0], "int NEEDLE_g;");
    EXPECT_TRUE(minimal.helpers.empty());
    EXPECT_TRUE(minimal.structs.empty());
}

TEST(Minimizer, FailingEverythingKeepsNothing)
{
    const auto minimal = fuzz::minimizeProgram(
        syntheticProgram(),
        [](const fuzz::GenProgram &) { return true; });
    EXPECT_TRUE(minimal.mainBody.empty());
    EXPECT_TRUE(minimal.globals.empty());
}

TEST(Minimizer, RollsBackRemovalsThatLoseTheFailure)
{
    // The predicate needs both of two distant chunks: halving alone
    // cannot isolate them, the single-chunk pass must.
    fuzz::GenProgram p;
    p.mainBody = {"{ x1; }", "{ x2; }", "{ x3; }", "{ x4; }",
                  "{ x5; }", "{ x6; }"};
    const auto minimal = fuzz::minimizeProgram(
        p, [](const fuzz::GenProgram &candidate) {
            const std::string text = candidate.render();
            return text.find("x2;") != std::string::npos &&
                   text.find("x6;") != std::string::npos;
        });
    ASSERT_EQ(minimal.mainBody.size(), 2u);
    EXPECT_EQ(minimal.mainBody[0], "{ x2; }");
    EXPECT_EQ(minimal.mainBody[1], "{ x6; }");
}

} // namespace
} // namespace irep
