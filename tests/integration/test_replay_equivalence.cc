/**
 * @file
 * Replay equivalence: an AnalysisPipeline driven from a recorded
 * trace (runFromSource) must produce exactly the statistics of the
 * live simulation it was recorded from — every analysis, every
 * counter, for multiple workloads — so any analysis can run off a
 * trace without a simulator.
 */

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "trace_io/reader.hh"
#include "trace_io/writer.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

std::unique_ptr<sim::Machine>
makeMachine(const std::string &name)
{
    const auto &w = workloads::workloadByName(name);
    auto machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    machine->setInput(w.input);
    return machine;
}

/** Structural JSON equality, ignoring wall-clock-derived stats. */
void
expectJsonEqual(const json::Value &a, const json::Value &b,
                const std::string &path)
{
    ASSERT_EQ(int(a.kind()), int(b.kind())) << path;
    switch (a.kind()) {
      case json::Value::Kind::Object: {
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.members().size(); ++i) {
            const auto &[key, value] = a.members()[i];
            ASSERT_EQ(key, b.members()[i].first) << path;
            if (key == "skip_seconds" || key == "window_seconds" ||
                key == "window_mips") {
                continue;
            }
            expectJsonEqual(value, b.members()[i].second,
                            path + "." + key);
        }
        break;
      }
      case json::Value::Kind::Array:
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.elements().size(); ++i) {
            expectJsonEqual(a.elements()[i], b.elements()[i],
                            path + "[" + std::to_string(i) + "]");
        }
        break;
      case json::Value::Kind::Number:
        EXPECT_EQ(a.asNumber(), b.asNumber()) << path;
        break;
      case json::Value::Kind::String:
        EXPECT_EQ(a.asString(), b.asString()) << path;
        break;
      case json::Value::Kind::Bool:
        EXPECT_EQ(a.asBool(), b.asBool()) << path;
        break;
      case json::Value::Kind::Null:
        break;
    }
}

json::Value
statsDocument(const core::AnalysisPipeline &pipeline)
{
    stats::Group root;
    pipeline.registerStats(root);
    std::ostringstream os;
    json::Writer writer(os);
    stats::dumpJson(root, writer);
    return json::parse(os.str());
}

void
expectReplayMatchesLive(const std::string &workload)
{
    const auto &w = workloads::workloadByName(workload);
    const std::string path =
        testing::TempDir() + workload + "-equiv.irtrace";

    // Deliberately un-round phase lengths so both the skip/window
    // boundary and the window end land mid-basic-block.
    core::PipelineConfig config;
    config.skipInstructions = 12'347;
    config.windowInstructions = 123'457;

    // Live run, recording as it goes (exactly how the bench-suite
    // cache records on a cold run).
    auto live_machine = makeMachine(workload);
    core::AnalysisPipeline live(*live_machine, config);
    trace_io::TraceWriter writer(path, *live_machine, w.input,
                                 config.skipInstructions,
                                 config.windowInstructions);
    live_machine->addObserver(&writer);
    const uint64_t live_measured = live.run();
    live_machine->removeObserver(&writer);
    writer.commit();

    // Replay into a fresh machine + pipeline.
    auto replay_machine = makeMachine(workload);
    core::AnalysisPipeline replayed(*replay_machine, config);
    trace_io::TraceReader reader(path);
    reader.bind(*replay_machine, w.input);
    const uint64_t replay_measured = replayed.runFromSource(reader);

    EXPECT_EQ(live_measured, replay_measured);
    expectJsonEqual(statsDocument(live), statsDocument(replayed),
                    workload + ".stats");
    std::filesystem::remove(path);
}

TEST(ReplayEquivalence, CompressStatsIdentical)
{
    expectReplayMatchesLive("compress");
}

TEST(ReplayEquivalence, LiStatsIdentical)
{
    expectReplayMatchesLive("li");
}

} // namespace
} // namespace irep
