/**
 * @file
 * Sharded-window equivalence: an AnalysisPipeline with windowJobs > 1
 * fans the retire stream out to per-analysis worker threads
 * (core/shard.hh) and must produce *exactly* the statistics of serial
 * dispatch — every analysis, every counter, live and replayed from a
 * trace, profiled or not. These tests (and the "Sharded" name) also
 * run under the ThreadSanitizer CI job, so a data race in the fan-out
 * fails the build.
 */

#include <cstdint>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "support/json.hh"
#include "support/prof.hh"
#include "support/stats.hh"
#include "trace_io/reader.hh"
#include "trace_io/writer.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

std::unique_ptr<sim::Machine>
makeMachine(const std::string &name)
{
    const auto &w = workloads::workloadByName(name);
    auto machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    machine->setInput(w.input);
    return machine;
}

/** Un-round phase lengths, so batch/phase boundaries land mid-block
 *  and the final batch is partial. */
core::PipelineConfig
testConfig(unsigned window_jobs)
{
    core::PipelineConfig config;
    config.skipInstructions = 12'347;
    config.windowInstructions = 123'457;
    config.windowJobs = window_jobs;
    return config;
}

/** Structural JSON equality, ignoring wall-clock-derived stats. */
void
expectJsonEqual(const json::Value &a, const json::Value &b,
                const std::string &path)
{
    ASSERT_EQ(int(a.kind()), int(b.kind())) << path;
    switch (a.kind()) {
      case json::Value::Kind::Object: {
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.members().size(); ++i) {
            const auto &[key, value] = a.members()[i];
            ASSERT_EQ(key, b.members()[i].first) << path;
            if (key == "skip_seconds" || key == "window_seconds" ||
                key == "window_mips") {
                continue;
            }
            expectJsonEqual(value, b.members()[i].second,
                            path + "." + key);
        }
        break;
      }
      case json::Value::Kind::Array:
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.elements().size(); ++i) {
            expectJsonEqual(a.elements()[i], b.elements()[i],
                            path + "[" + std::to_string(i) + "]");
        }
        break;
      case json::Value::Kind::Number:
        EXPECT_EQ(a.asNumber(), b.asNumber()) << path;
        break;
      case json::Value::Kind::String:
        EXPECT_EQ(a.asString(), b.asString()) << path;
        break;
      case json::Value::Kind::Bool:
        EXPECT_EQ(a.asBool(), b.asBool()) << path;
        break;
      case json::Value::Kind::Null:
        break;
    }
}

json::Value
statsDocument(const core::AnalysisPipeline &pipeline)
{
    stats::Group root;
    pipeline.registerStats(root);
    std::ostringstream os;
    json::Writer writer(os);
    stats::dumpJson(root, writer);
    return json::parse(os.str());
}

/** Live run at the given shard count; returns the stats document. */
json::Value
runLive(const std::string &workload, unsigned window_jobs,
        uint64_t *measured = nullptr)
{
    auto machine = makeMachine(workload);
    core::AnalysisPipeline pipeline(*machine,
                                    testConfig(window_jobs));
    const uint64_t executed = pipeline.run();
    if (measured)
        *measured = executed;
    return statsDocument(pipeline);
}

void
expectShardedMatchesSerial(const std::string &workload,
                           unsigned window_jobs)
{
    uint64_t serial_measured = 0, sharded_measured = 0;
    const json::Value serial = runLive(workload, 1, &serial_measured);
    const json::Value sharded =
        runLive(workload, window_jobs, &sharded_measured);
    EXPECT_EQ(serial_measured, sharded_measured);
    expectJsonEqual(serial, sharded,
                    workload + ".wj" + std::to_string(window_jobs));
}

TEST(ShardedWindow, CompressStatsIdenticalAtFourJobs)
{
    expectShardedMatchesSerial("compress", 4);
}

TEST(ShardedWindow, CompressStatsIdenticalAtSevenJobs)
{
    // One worker per analysis — the maximum useful fan-out.
    expectShardedMatchesSerial("compress", 7);
}

TEST(ShardedWindow, LiStatsIdenticalAtFourJobs)
{
    // li is the most call-heavy workload: the strongest check that
    // the producer-side CallRegs snapshots feed FunctionAnalysis the
    // exact register values serial dispatch reads live.
    expectShardedMatchesSerial("li", 4);
}

TEST(ShardedWindow, TraceReplayStatsIdenticalToSerialReplay)
{
    // The flagship path: one decoder thread producing, N shards
    // consuming, no simulator in the loop.
    const std::string workload = "compress";
    const auto &w = workloads::workloadByName(workload);
    const std::string path =
        testing::TempDir() + workload + "-sharded.irtrace";

    const core::PipelineConfig config = testConfig(1);
    auto live_machine = makeMachine(workload);
    core::AnalysisPipeline live(*live_machine, config);
    trace_io::TraceWriter writer(path, *live_machine, w.input,
                                 config.skipInstructions,
                                 config.windowInstructions);
    live_machine->addObserver(&writer);
    live.run();
    live_machine->removeObserver(&writer);
    writer.commit();

    auto replayOnce = [&](unsigned window_jobs) {
        auto machine = makeMachine(workload);
        core::AnalysisPipeline pipeline(*machine,
                                        testConfig(window_jobs));
        trace_io::TraceReader reader(path);
        reader.bind(*machine, w.input);
        pipeline.runFromSource(reader);
        return statsDocument(pipeline);
    };

    const json::Value serial = replayOnce(1);
    const json::Value sharded = replayOnce(4);
    expectJsonEqual(statsDocument(live), serial, "live-vs-replay");
    expectJsonEqual(serial, sharded, "replay-wj1-vs-wj4");
    std::filesystem::remove(path);
}

TEST(ShardedWindow, ProfiledShardedStatsStayBitFaithful)
{
    // With the profiler on, every 512th window retire takes the timed
    // dispatch path on the workers; counted statistics must not move.
    const json::Value plain = runLive("compress", 1);
    prof::enable(true);
    const json::Value profiled_sharded = runLive("compress", 4);
    prof::enable(false);
    prof::reset();
    expectJsonEqual(plain, profiled_sharded, "profiled-sharded");
}

TEST(ShardedWindow, SecondRunOnSamePipelineMatchesSerial)
{
    // Worker lifetime is per-run: a pipeline must shard, join, and
    // shard again cleanly, and the second run's stats must equal a
    // serial pipeline's second run.
    auto run_twice = [](unsigned window_jobs) {
        auto machine = makeMachine("compress");
        core::AnalysisPipeline pipeline(*machine,
                                        testConfig(window_jobs));
        pipeline.run();
        pipeline.run();     // continues execution; fresh timing
        return statsDocument(pipeline);
    };
    expectJsonEqual(run_twice(1), run_twice(4), "second-run");
}

TEST(ShardedWindow, EffectiveJobsClampToEnabledAnalyses)
{
    auto machine = makeMachine("compress");
    core::PipelineConfig config = testConfig(64);
    core::AnalysisPipeline all(*machine, config);
    // Tracker + 7 other analyses: at most 8 workers are useful.
    EXPECT_EQ(all.effectiveWindowJobs(), 8u);

    config.enableGlobal = false;
    config.enableLocal = false;
    config.enableFunction = false;
    config.enableReuse = false;
    config.enableClass = false;
    config.enableValuePrediction = false;
    config.enableAttribution = false;
    auto machine2 = makeMachine("compress");
    core::AnalysisPipeline tracker_only(*machine2, config);
    // Nothing to shard: the tracker-only pipeline stays serial.
    EXPECT_EQ(tracker_only.effectiveWindowJobs(), 1u);
}

TEST(ShardedWindow, TrackerOnlyPipelineRunsSerialEvenWithJobs)
{
    core::PipelineConfig config = testConfig(4);
    config.enableGlobal = false;
    config.enableLocal = false;
    config.enableFunction = false;
    config.enableReuse = false;
    config.enableClass = false;
    config.enableValuePrediction = false;
    config.enableAttribution = false;

    auto machine = makeMachine("compress");
    core::AnalysisPipeline pipeline(*machine, config);
    const uint64_t measured = pipeline.run();
    EXPECT_EQ(measured, config.windowInstructions);
    EXPECT_GT(pipeline.tracker().stats().dynRepeated, 0u);
}

} // namespace
} // namespace irep
