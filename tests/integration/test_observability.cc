/**
 * @file
 * Integration: the profiler must observe without perturbing. Running
 * a workload with profiling enabled yields exactly the same analysis
 * statistics as running it disabled (the sampled dispatch is
 * bit-faithful to the plain one), the sampled per-analysis window
 * attribution is populated and consistent, and the pipeline's spans
 * land in the export with per-phase and per-analysis cost.
 */

#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "support/json.hh"
#include "support/prof.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

struct RunResult
{
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<core::AnalysisPipeline> pipeline;
};

RunResult
runWorkload(const char *name, uint64_t skip, uint64_t window)
{
    RunResult result;
    const auto &w = workloads::workloadByName(name);
    result.machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    result.machine->setInput(w.input);
    core::PipelineConfig config;
    config.skipInstructions = skip;
    config.windowInstructions = window;
    result.pipeline = std::make_unique<core::AnalysisPipeline>(
        *result.machine, config);
    result.pipeline->run();
    return result;
}

/** The full stats tree as JSON — every counted statistic — with the
 *  wall-clock scalars dropped, for cross-run comparison. */
std::string
countedStats(core::AnalysisPipeline &pipeline)
{
    stats::Group root;
    pipeline.registerStats(root);
    std::ostringstream os;
    json::Writer w(os);
    stats::dumpJson(root, w);

    std::istringstream in(os.str());
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.find("seconds") != std::string::npos ||
            line.find("mips") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

class Observability : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prof::enable(false);
        prof::reset();
    }

    void
    TearDown() override
    {
        prof::enable(false);
        prof::reset();
    }
};

TEST_F(Observability, ProfilingDoesNotPerturbAnalysisResults)
{
    // > 512 window retires, so the sampled dispatch definitely runs.
    RunResult plain = runWorkload("compress", 50'000, 200'000);

    prof::enable();
    RunResult profiled = runWorkload("compress", 50'000, 200'000);
    prof::enable(false);

    EXPECT_EQ(countedStats(*plain.pipeline),
              countedStats(*profiled.pipeline));
    // The plain run sampled nothing; the profiled run did.
    EXPECT_EQ(plain.pipeline->profSample().samples, 0u);
    EXPECT_GT(profiled.pipeline->profSample().samples, 0u);
}

TEST_F(Observability, SampledAttributionCoversEveryAnalysis)
{
    prof::enable();
    RunResult run = runWorkload("compress", 50'000, 200'000);
    prof::enable(false);

    const auto &sample = run.pipeline->profSample();
    // Every 512th of 200k window retires: ~390 samples.
    EXPECT_GT(sample.samples, 300u);
    EXPECT_LT(sample.samples, 500u);
    for (unsigned i = 0;
         i < core::AnalysisPipeline::ProfSample::numAnalyses; ++i) {
        EXPECT_GT(sample.ns[i], 0u)
            << core::AnalysisPipeline::profAnalysisName(i);
    }
}

TEST_F(Observability, PipelineSpansAndCountersLandInTheExport)
{
    prof::enable();
    RunResult run = runWorkload("compress", 50'000, 200'000);

    std::ostringstream trace;
    prof::writeTraceJson(trace);
    const json::Value doc = json::parse(trace.str());

    bool sawSkip = false, sawWindow = false;
    for (const json::Value &event :
         doc.at("traceEvents").elements()) {
        if (event.at("ph").asString() != "X")
            continue;
        const std::string &name = event.at("name").asString();
        if (name == "skip" && event.at("cat").asString() == "pipeline")
            sawSkip = true;
        if (name == "window" &&
            event.at("cat").asString() == "pipeline") {
            sawWindow = true;
            // The window span carries per-analysis cost estimates.
            const json::Value &args = event.at("args");
            EXPECT_EQ(args.at("instructions").asNumber(), 200'000.0);
            for (const char *analysis :
                 {"tracker", "taint", "local", "functions", "reuse",
                  "classes", "prediction"}) {
                EXPECT_GT(args.at(std::string(analysis) + "_ns_est")
                              .asNumber(),
                          0.0)
                    << analysis;
            }
        }
    }
    EXPECT_TRUE(sawSkip);
    EXPECT_TRUE(sawWindow);

    const prof::Report report = prof::snapshot();
    EXPECT_EQ(report.counters.at("pipeline/windows"), 1.0);
    EXPECT_EQ(report.counters.at("pipeline/window_retires"),
              200'000.0);
    EXPECT_GT(
        report.counters.at("analysis/tracker/window_ns_est"), 0.0);
}

TEST_F(Observability, DisabledProfilerLeavesNoTrace)
{
    RunResult run = runWorkload("compress", 20'000, 60'000);
    EXPECT_FALSE(prof::anythingRecorded());
    EXPECT_EQ(run.pipeline->profSample().samples, 0u);
}

} // namespace
} // namespace irep
