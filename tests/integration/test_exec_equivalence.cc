/**
 * @file
 * Backend equivalence: the block-cache backend must be observationally
 * identical to the interpreter on every workload — final registers,
 * memory image, output, the retire-record stream seen by observers,
 * and the full analysis stats document (live and window-sharded). The
 * interpreter is normative; any disagreement convicts the cache.
 */

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "sim/memory.hh"
#include "sim/observer.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

using sim::ExecBackend;
using sim::Machine;

std::unique_ptr<Machine>
makeMachine(const std::string &name, ExecBackend backend)
{
    const auto &w = workloads::workloadByName(name);
    auto machine =
        std::make_unique<Machine>(workloads::buildProgram(w));
    machine->setExecBackend(backend);
    machine->setInput(w.input);
    return machine;
}

const char *const allWorkloads[] = {"compress", "go",     "m88ksim",
                                    "ijpeg",    "perl",   "vortex",
                                    "li",       "gcc"};

void
expectSameState(const Machine &a, const Machine &b)
{
    for (unsigned r = 0; r < 32; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "register " << r;
    EXPECT_EQ(a.hi(), b.hi());
    EXPECT_EQ(a.lo(), b.lo());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.instret(), b.instret());
    EXPECT_EQ(a.halted(), b.halted());
    EXPECT_EQ(a.exitCode(), b.exitCode());
    EXPECT_EQ(a.output(), b.output());

    const std::vector<uint32_t> pages_a = a.memory().touchedPages();
    const std::vector<uint32_t> pages_b = b.memory().touchedPages();
    ASSERT_EQ(pages_a, pages_b);
    std::vector<uint8_t> buf_a(sim::Memory::pageSize);
    std::vector<uint8_t> buf_b(sim::Memory::pageSize);
    for (uint32_t page : pages_a) {
        const uint32_t addr = page << sim::Memory::pageBits;
        a.memory().readBlock(addr, buf_a.data(), sim::Memory::pageSize);
        b.memory().readBlock(addr, buf_b.data(), sim::Memory::pageSize);
        EXPECT_EQ(buf_a, buf_b) << "page at 0x" << std::hex << addr;
    }
}

/** Every InstrRecord field except the decoded-instruction pointer,
 *  which legitimately differs between machines; staticIndex pins the
 *  instruction identity instead. */
struct PackedRecord
{
    uint64_t seq;
    uint32_t pc;
    uint32_t staticIndex;
    uint8_t numSrcRegs;
    uint32_t srcVal[2];
    bool isMemAccess;
    uint32_t memAddr;
    bool writesReg;
    uint8_t destReg;
    uint64_t result;
    uint32_t nextPc;

    bool operator==(const PackedRecord &o) const
    {
        return seq == o.seq && pc == o.pc &&
               staticIndex == o.staticIndex &&
               numSrcRegs == o.numSrcRegs && srcVal[0] == o.srcVal[0] &&
               srcVal[1] == o.srcVal[1] &&
               isMemAccess == o.isMemAccess && memAddr == o.memAddr &&
               writesReg == o.writesReg && destReg == o.destReg &&
               result == o.result && nextPc == o.nextPc;
    }
};

struct RecordCollector : sim::Observer
{
    std::vector<PackedRecord> records;

    void
    onRetire(const sim::InstrRecord &r) override
    {
        records.push_back({r.seq, r.pc, r.staticIndex, r.numSrcRegs,
                           {r.srcVal[0], r.srcVal[1]}, r.isMemAccess,
                           r.memAddr, r.writesReg, r.destReg, r.result,
                           r.nextPc});
    }
};

TEST(ExecEquivalence, AllWorkloadsSameStateAndRetireStream)
{
    constexpr uint64_t n = 250'000;
    for (const char *name : allWorkloads) {
        SCOPED_TRACE(name);
        auto interp = makeMachine(name, ExecBackend::Interp);
        auto bbcache = makeMachine(name, ExecBackend::BBCache);
        RecordCollector interpStream, bbcacheStream;
        interp->addObserver(&interpStream);
        bbcache->addObserver(&bbcacheStream);

        EXPECT_EQ(interp->run(n), bbcache->run(n));
        expectSameState(*interp, *bbcache);

        ASSERT_EQ(interpStream.records.size(),
                  bbcacheStream.records.size());
        for (size_t i = 0; i < interpStream.records.size(); ++i) {
            ASSERT_TRUE(interpStream.records[i] ==
                        bbcacheStream.records[i])
                << name << " diverges at retire " << i << " (pc 0x"
                << std::hex << interpStream.records[i].pc << " vs 0x"
                << bbcacheStream.records[i].pc << ")";
        }
    }
}

// The unobserved fast path (threaded dispatch, fusion, chaining) must
// land on exactly the state the observed path produces.
TEST(ExecEquivalence, FastPathMatchesObservedPath)
{
    struct Counter : sim::Observer
    {
        uint64_t retired = 0;
        void onRetire(const sim::InstrRecord &) override { ++retired; }
    };
    constexpr uint64_t n = 250'000;
    for (const char *name : {"compress", "go", "vortex"}) {
        SCOPED_TRACE(name);
        auto fast = makeMachine(name, ExecBackend::BBCache);
        auto observed = makeMachine(name, ExecBackend::BBCache);
        Counter counter;
        observed->addObserver(&counter);
        EXPECT_EQ(fast->run(n), observed->run(n));
        EXPECT_EQ(counter.retired, observed->instret());
        expectSameState(*fast, *observed);
    }
}

/** Structural JSON equality, ignoring wall-clock-derived stats. */
void
expectJsonEqual(const json::Value &a, const json::Value &b,
                const std::string &path)
{
    ASSERT_EQ(int(a.kind()), int(b.kind())) << path;
    switch (a.kind()) {
      case json::Value::Kind::Object: {
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.members().size(); ++i) {
            const auto &[key, value] = a.members()[i];
            ASSERT_EQ(key, b.members()[i].first) << path;
            if (key == "skip_seconds" || key == "window_seconds" ||
                key == "window_mips") {
                continue;
            }
            expectJsonEqual(value, b.members()[i].second,
                            path + "." + key);
        }
        break;
      }
      case json::Value::Kind::Array:
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.elements().size(); ++i) {
            expectJsonEqual(a.elements()[i], b.elements()[i],
                            path + "[" + std::to_string(i) + "]");
        }
        break;
      case json::Value::Kind::Number:
        EXPECT_EQ(a.asNumber(), b.asNumber()) << path;
        break;
      case json::Value::Kind::String:
        EXPECT_EQ(a.asString(), b.asString()) << path;
        break;
      case json::Value::Kind::Bool:
        EXPECT_EQ(a.asBool(), b.asBool()) << path;
        break;
      case json::Value::Kind::Null:
        break;
    }
}

json::Value
statsDocument(Machine &machine, unsigned window_jobs)
{
    // Un-round phase lengths so both the skip/window boundary and the
    // window end land mid-basic-block.
    core::PipelineConfig config;
    config.skipInstructions = 12'347;
    config.windowInstructions = 123'457;
    config.windowJobs = window_jobs;
    core::AnalysisPipeline pipeline(machine, config);
    pipeline.run();

    stats::Group root;
    pipeline.registerStats(root);
    std::ostringstream os;
    json::Writer writer(os);
    stats::dumpJson(root, writer);
    return json::parse(os.str());
}

// The backend must never change analysis output: the stats document
// is identical between interp and bbcache, serial and window-sharded.
TEST(ExecEquivalence, AnalysisStatsIdenticalAcrossBackends)
{
    for (const char *name : {"compress", "li", "gcc"}) {
        SCOPED_TRACE(name);
        auto interp = makeMachine(name, ExecBackend::Interp);
        auto bbcache = makeMachine(name, ExecBackend::BBCache);
        auto sharded = makeMachine(name, ExecBackend::BBCache);
        const json::Value reference = statsDocument(*interp, 1);
        expectJsonEqual(reference, statsDocument(*bbcache, 1),
                        "stats");
        expectJsonEqual(reference, statsDocument(*sharded, 3),
                        "stats(window-jobs=3)");
    }
}

} // namespace
} // namespace irep
