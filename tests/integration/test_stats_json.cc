/**
 * @file
 * Integration: the stats-JSON export must parse and agree with the
 * numbers the text report prints — Table 1 (repetition), Table 3
 * (global sources) and Table 5 (local sources) — plus the run-timing
 * block `irep analyze --stats-json` embeds.
 */

#include <memory>
#include <sstream>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

/** One pipeline run plus its parsed stats-JSON, shared across tests. */
struct JsonRun
{
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<core::AnalysisPipeline> pipeline;
    std::unique_ptr<stats::Group> root;
    json::Value doc;
};

const JsonRun &
theRun()
{
    static JsonRun run;
    if (!run.pipeline) {
        const auto &w = workloads::workloadByName("compress");
        run.machine = std::make_unique<sim::Machine>(
            workloads::buildProgram(w));
        run.machine->setInput(w.input);
        core::PipelineConfig config;
        config.skipInstructions = 200'000;
        config.windowInstructions = 500'000;
        run.pipeline = std::make_unique<core::AnalysisPipeline>(
            *run.machine, config);
        run.pipeline->run();

        run.root = std::make_unique<stats::Group>();
        run.pipeline->registerStats(*run.root);
        std::ostringstream os;
        json::Writer writer(os);
        stats::dumpJson(*run.root, writer);
        run.doc = json::parse(os.str());
    }
    return run;
}

TEST(StatsJson, RunBlockMatchesPipelineTiming)
{
    const JsonRun &run = theRun();
    const json::Value &r = run.doc.at("run");
    EXPECT_EQ(r.at("skip_config").asU64(), 200'000u);
    EXPECT_EQ(r.at("window_config").asU64(), 500'000u);
    EXPECT_EQ(r.at("skip_instructions").asU64(),
              run.pipeline->timing().skip.instructions);
    EXPECT_EQ(r.at("window_instructions").asU64(),
              run.pipeline->timing().window.instructions);
    EXPECT_GT(r.at("window_seconds").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(r.at("window_mips").asNumber(),
                     run.pipeline->timing().window.mips());
}

TEST(StatsJson, Table1NumbersMatchTextReport)
{
    const JsonRun &run = theRun();
    const auto s = run.pipeline->tracker().stats();
    const json::Value &rep = run.doc.at("repetition");

    EXPECT_EQ(rep.at("dyn_total").asU64(), s.dynTotal);
    EXPECT_EQ(rep.at("dyn_repeated").asU64(), s.dynRepeated);
    EXPECT_DOUBLE_EQ(rep.at("pct_dyn_repeated").asNumber(),
                     s.pctDynRepeated());
    EXPECT_EQ(rep.at("static_total").asU64(), s.staticTotal);
    EXPECT_EQ(rep.at("static_executed").asU64(), s.staticExecuted);
    EXPECT_EQ(rep.at("static_repeated").asU64(), s.staticRepeated);
    EXPECT_DOUBLE_EQ(rep.at("pct_static_executed").asNumber(),
                     s.pctStaticExecuted());
    EXPECT_DOUBLE_EQ(
        rep.at("pct_static_repeated_of_executed").asNumber(),
        s.pctStaticRepeatedOfExecuted());

    // Sanity: the window actually measured something repetitive.
    EXPECT_EQ(s.dynTotal, 500'000u);
    EXPECT_GT(s.pctDynRepeated(), 50.0);
}

TEST(StatsJson, Table3GlobalSourcesMatch)
{
    const JsonRun &run = theRun();
    const auto &s = run.pipeline->taint().stats();
    const json::Value &global = run.doc.at("global");

    EXPECT_EQ(global.at("total_overall").asU64(), s.totalOverall);
    EXPECT_EQ(global.at("total_repeated").asU64(), s.totalRepeated);
    uint64_t overall_sum = 0;
    for (size_t i = 0; i < core::numGlobalTags; ++i) {
        const auto tag = core::GlobalTag(i);
        const std::string name{core::globalTagName(tag)};
        EXPECT_EQ(global.at("overall").at(name).asU64(), s.overall[i])
            << name;
        EXPECT_EQ(global.at("repeated").at(name).asU64(),
                  s.repeated[i])
            << name;
        EXPECT_DOUBLE_EQ(global.at("pct_overall").at(name).asNumber(),
                         s.pctOverall(tag))
            << name;
        overall_sum += s.overall[i];
    }
    // Every counted instruction carries exactly one source tag.
    EXPECT_EQ(overall_sum, s.totalOverall);
}

TEST(StatsJson, Table5LocalSourcesMatch)
{
    const JsonRun &run = theRun();
    const auto &s = run.pipeline->local().stats();
    const json::Value &local = run.doc.at("local");

    EXPECT_EQ(local.at("total_overall").asU64(), s.totalOverall);
    EXPECT_EQ(local.at("total_repeated").asU64(), s.totalRepeated);
    for (size_t i = 0; i < core::numLocalCats; ++i) {
        const auto cat = core::LocalCat(i);
        const std::string name{core::localCatName(cat)};
        EXPECT_EQ(local.at("overall").at(name).asU64(), s.overall[i])
            << name;
        EXPECT_DOUBLE_EQ(
            local.at("pct_overall").at(name).asNumber(),
            s.pctOverall(cat))
            << name;
    }
}

TEST(StatsJson, EveryEnabledAnalysisHasAGroup)
{
    const JsonRun &run = theRun();
    for (const char *group : {"run", "repetition", "global", "local",
                              "functions", "reuse", "classes",
                              "prediction"}) {
        EXPECT_TRUE(run.doc.contains(group)) << group;
    }
}

TEST(StatsJson, TextDumpCoversSameTree)
{
    const JsonRun &run = theRun();
    const std::string text = stats::dumpText(*run.root);
    EXPECT_NE(text.find("repetition.pct_dyn_repeated"),
              std::string::npos);
    EXPECT_NE(text.find("run.window_mips"), std::string::npos);
}

} // namespace
} // namespace irep
