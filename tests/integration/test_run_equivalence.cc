/**
 * @file
 * Fast-loop equivalence: Machine::run()'s fused loop — both the
 * no-observer fast path and the instrumented path — must leave exactly
 * the architectural state of the one-instruction step() path, and
 * AnalysisPipeline::run() must produce exactly the statistics of
 * runStepwise(), including when run boundaries fall mid-basic-block.
 */

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "sim/memory.hh"
#include "sim/observer.hh"
#include "support/json.hh"
#include "support/stats.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

using sim::Machine;

std::unique_ptr<Machine>
makeMachine(const std::string &name)
{
    const auto &w = workloads::workloadByName(name);
    auto machine =
        std::make_unique<Machine>(workloads::buildProgram(w));
    machine->setInput(w.input);
    return machine;
}

/** Step @p machine up to @p n instructions, like the pre-fused loop. */
uint64_t
stepN(Machine &machine, uint64_t n)
{
    uint64_t done = 0;
    while (done < n && !machine.halted()) {
        machine.step();
        ++done;
    }
    return done;
}

void
expectSameRegisters(const Machine &a, const Machine &b)
{
    for (unsigned r = 0; r < 32; ++r)
        EXPECT_EQ(a.reg(r), b.reg(r)) << "register " << r;
    EXPECT_EQ(a.hi(), b.hi());
    EXPECT_EQ(a.lo(), b.lo());
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.instret(), b.instret());
    EXPECT_EQ(a.halted(), b.halted());
}

void
expectSameState(const Machine &a, const Machine &b)
{
    expectSameRegisters(a, b);
    EXPECT_EQ(a.exitCode(), b.exitCode());
    EXPECT_EQ(a.output(), b.output());

    const std::vector<uint32_t> pages_a = a.memory().touchedPages();
    const std::vector<uint32_t> pages_b = b.memory().touchedPages();
    ASSERT_EQ(pages_a, pages_b);
    std::vector<uint8_t> buf_a(sim::Memory::pageSize);
    std::vector<uint8_t> buf_b(sim::Memory::pageSize);
    for (uint32_t page : pages_a) {
        const uint32_t addr = page << sim::Memory::pageBits;
        a.memory().readBlock(addr, buf_a.data(), sim::Memory::pageSize);
        b.memory().readBlock(addr, buf_b.data(), sim::Memory::pageSize);
        EXPECT_EQ(buf_a, buf_b) << "page at 0x" << std::hex << addr;
    }
}

TEST(RunEquivalence, FastPathMatchesStepwise)
{
    auto fused = makeMachine("compress");
    auto stepped = makeMachine("compress");

    constexpr uint64_t n = 400'000;
    EXPECT_EQ(fused->run(n), stepN(*stepped, n));
    expectSameState(*fused, *stepped);
}

TEST(RunEquivalence, ChunkedRunsMatchStepwiseMidBasicBlock)
{
    auto fused = makeMachine("li");
    auto stepped = makeMachine("li");

    // Prime-sized chunks make nearly every boundary fall in the middle
    // of a basic block.
    constexpr uint64_t chunk = 997;
    for (int i = 0; i < 40; ++i) {
        EXPECT_EQ(fused->run(chunk), stepN(*stepped, chunk));
        expectSameRegisters(*fused, *stepped);
    }
    expectSameState(*fused, *stepped);
}

TEST(RunEquivalence, ObservedRunMatchesFastPath)
{
    struct Counter : sim::Observer
    {
        uint64_t retired = 0;
        void onRetire(const sim::InstrRecord &) override { ++retired; }
    };

    auto fast = makeMachine("go");
    auto observed = makeMachine("go");
    Counter counter;
    observed->addObserver(&counter);

    constexpr uint64_t n = 300'000;
    EXPECT_EQ(fast->run(n), observed->run(n));
    EXPECT_EQ(counter.retired, observed->instret());
    expectSameState(*fast, *observed);
}

TEST(RunEquivalence, DetachingObserverSwitchesToFastPath)
{
    struct Counter : sim::Observer
    {
        uint64_t retired = 0;
        void onRetire(const sim::InstrRecord &) override { ++retired; }
    };

    auto mixed = makeMachine("compress");
    auto stepped = makeMachine("compress");
    Counter counter;

    // Observed, fast, observed again — state must track stepwise
    // execution across every switch.
    mixed->addObserver(&counter);
    mixed->run(50'000);
    mixed->removeObserver(&counter);
    mixed->run(50'000);
    mixed->addObserver(&counter);
    mixed->run(50'000);
    stepN(*stepped, 150'000);

    EXPECT_EQ(counter.retired, 100'000u);
    expectSameState(*mixed, *stepped);
}

/** Structural JSON equality, ignoring wall-clock-derived stats. */
void
expectJsonEqual(const json::Value &a, const json::Value &b,
                const std::string &path)
{
    ASSERT_EQ(int(a.kind()), int(b.kind())) << path;
    switch (a.kind()) {
      case json::Value::Kind::Object: {
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.members().size(); ++i) {
            const auto &[key, value] = a.members()[i];
            ASSERT_EQ(key, b.members()[i].first) << path;
            if (key == "skip_seconds" || key == "window_seconds" ||
                key == "window_mips") {
                continue;
            }
            expectJsonEqual(value, b.members()[i].second,
                            path + "." + key);
        }
        break;
      }
      case json::Value::Kind::Array:
        ASSERT_EQ(a.size(), b.size()) << path;
        for (size_t i = 0; i < a.elements().size(); ++i) {
            expectJsonEqual(a.elements()[i], b.elements()[i],
                            path + "[" + std::to_string(i) + "]");
        }
        break;
      case json::Value::Kind::Number:
        EXPECT_EQ(a.asNumber(), b.asNumber()) << path;
        break;
      case json::Value::Kind::String:
        EXPECT_EQ(a.asString(), b.asString()) << path;
        break;
      case json::Value::Kind::Bool:
        EXPECT_EQ(a.asBool(), b.asBool()) << path;
        break;
      case json::Value::Kind::Null:
        break;
    }
}

json::Value
statsDocument(const core::AnalysisPipeline &pipeline)
{
    stats::Group root;
    pipeline.registerStats(root);
    std::ostringstream os;
    json::Writer writer(os);
    stats::dumpJson(root, writer);
    return json::parse(os.str());
}

TEST(RunEquivalence, PipelineRunMatchesStepwise)
{
    auto fused = makeMachine("compress");
    auto stepped = makeMachine("compress");

    // Deliberately un-round phase lengths so both the skip/window
    // boundary and the window end land mid-basic-block.
    core::PipelineConfig config;
    config.skipInstructions = 12'347;
    config.windowInstructions = 123'457;

    core::AnalysisPipeline fused_pipe(*fused, config);
    core::AnalysisPipeline stepped_pipe(*stepped, config);
    EXPECT_EQ(fused_pipe.run(), stepped_pipe.runStepwise());

    expectSameState(*fused, *stepped);
    expectJsonEqual(statsDocument(fused_pipe),
                    statsDocument(stepped_pipe), "stats");
}

} // namespace
} // namespace irep
