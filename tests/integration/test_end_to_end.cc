/**
 * @file
 * End-to-end integration: run real workloads through the full
 * AnalysisPipeline and verify cross-analysis invariants and the
 * paper's qualitative headline results at reduced scale.
 */

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace irep
{
namespace
{

/** One cached pipeline run per workload (shared across tests). */
struct PipelineRun
{
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<core::AnalysisPipeline> pipeline;
    uint64_t executed = 0;
};

const PipelineRun &
runFor(const std::string &name)
{
    static std::map<std::string, PipelineRun> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        const auto &w = workloads::workloadByName(name);
        PipelineRun run;
        run.machine = std::make_unique<sim::Machine>(
            workloads::buildProgram(w));
        run.machine->setInput(w.input);
        core::PipelineConfig config;
        config.skipInstructions = 1'000'000;
        config.windowInstructions = 1'500'000;
        run.pipeline = std::make_unique<core::AnalysisPipeline>(
            *run.machine, config);
        run.executed = run.pipeline->run();
        it = cache.emplace(name, std::move(run)).first;
    }
    return it->second;
}

class EndToEndTest : public ::testing::TestWithParam<const char *>
{
  protected:
    const PipelineRun &run() { return runFor(GetParam()); }
};

TEST_P(EndToEndTest, WindowFullyExecuted)
{
    EXPECT_EQ(run().executed, 1'500'000u);
}

TEST_P(EndToEndTest, MostInstructionsAreRepeated)
{
    // The paper's headline (Table 1): the clear majority of dynamic
    // instructions repeat.
    const auto stats = run().pipeline->tracker().stats();
    EXPECT_GT(stats.pctDynRepeated(), 50.0);
    EXPECT_LT(stats.pctDynRepeated(), 100.0);
}

TEST_P(EndToEndTest, MostExecutedStaticsRepeat)
{
    const auto stats = run().pipeline->tracker().stats();
    EXPECT_GT(stats.pctStaticRepeatedOfExecuted(), 60.0);
    EXPECT_LT(stats.pctStaticExecuted(), 100.0);
}

TEST_P(EndToEndTest, FewStaticsCoverMostRepetition)
{
    // Figure 1's headline: a minority of repeated statics cover 90%
    // of the repetition.
    const auto curve =
        run().pipeline->tracker().staticCoverage({0.9});
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_LT(curve[0].contributors, 0.6);
}

TEST_P(EndToEndTest, GlobalCategorySumsTo100)
{
    const auto &stats = run().pipeline->taint().stats();
    double overall = 0, repeated = 0;
    for (unsigned t = 0; t < core::numGlobalTags; ++t) {
        overall += stats.pctOverall(core::GlobalTag(t));
        repeated += stats.pctRepeated(core::GlobalTag(t));
        EXPECT_LE(stats.propensity(core::GlobalTag(t)), 100.0);
    }
    EXPECT_NEAR(overall, 100.0, 1e-6);
    EXPECT_NEAR(repeated, 100.0, 1e-6);
}

TEST_P(EndToEndTest, InternalsDominateGlobalAnalysis)
{
    // Table 3's headline: most computation is on program-internal
    // and global-init data, not external input.
    const auto &stats = run().pipeline->taint().stats();
    const double internal_ish =
        stats.pctOverall(core::GlobalTag::Internal) +
        stats.pctOverall(core::GlobalTag::GlobalInit);
    EXPECT_GT(internal_ish, 45.0);
}

TEST_P(EndToEndTest, LocalCategoriesSumTo100)
{
    const auto &stats = run().pipeline->local().stats();
    double overall = 0;
    for (unsigned c = 0; c < core::numLocalCats; ++c) {
        overall += stats.pctOverall(core::LocalCat(c));
        EXPECT_LE(stats.propensity(core::LocalCat(c)), 100.0);
    }
    EXPECT_NEAR(overall, 100.0, 1e-6);
    EXPECT_EQ(stats.totalOverall, run().executed);
}

TEST_P(EndToEndTest, PrologueEpilogueAreSymmetric)
{
    // Every save has a restore: the two categories must be within a
    // few percent of each other (Table 5 shows them equal).
    const auto &stats = run().pipeline->local().stats();
    const double pro =
        stats.pctOverall(core::LocalCat::Prologue);
    const double epi =
        stats.pctOverall(core::LocalCat::Epilogue);
    EXPECT_GT(pro, 0.0);
    EXPECT_NEAR(pro, epi, 1.5);
}

TEST_P(EndToEndTest, MostCallsHaveAllArgsRepeated)
{
    // Table 4's headline.
    const auto stats = run().pipeline->functions().stats();
    EXPECT_GT(stats.dynamicCalls, 1000u);
    EXPECT_GT(stats.pctAllArgsRepeated(), 50.0);
    EXPECT_LT(stats.pctNoArgsRepeated(), 30.0);
    EXPECT_LE(stats.allArgsRepeated + stats.noArgsRepeated,
              stats.dynamicCalls);
}

TEST_P(EndToEndTest, AlmostNoCallsAreMemoizable)
{
    // Table 8's headline: side effects and implicit inputs are
    // everywhere.
    const auto memo = run().pipeline->functions().memoStats();
    EXPECT_LT(memo.pctCleanOfAll(), 35.0);
}

TEST_P(EndToEndTest, ReuseBufferCapturesLessThanTotalRepetition)
{
    // Table 10's headline: the 8K buffer captures a solid fraction,
    // but clearly less than the Table 1 repetition.
    const auto &reuse = run().pipeline->reuse().stats();
    const auto tracker = run().pipeline->tracker().stats();
    EXPECT_GT(reuse.pctOfAll(), 10.0);
    EXPECT_LT(reuse.pctOfAll() + 1.0, tracker.pctDynRepeated());
    EXPECT_LE(reuse.pctOfRepeated(), 100.0);
}

TEST_P(EndToEndTest, CoverageCurvesAreMonotonic)
{
    const auto curve = run().pipeline->tracker().staticCoverage(
        {0.25, 0.5, 0.75, 0.9, 1.0});
    for (size_t i = 1; i < curve.size(); ++i)
        EXPECT_GE(curve[i].contributors, curve[i - 1].contributors);
    const auto icurve = run().pipeline->tracker().instanceCoverage(
        {0.25, 0.5, 0.75, 1.0});
    for (size_t i = 1; i < icurve.size(); ++i)
        EXPECT_GE(icurve[i].contributors, icurve[i - 1].contributors);
}

TEST_P(EndToEndTest, InstanceBucketsPartitionRepetition)
{
    const auto buckets = run().pipeline->tracker().instanceBuckets();
    const auto stats = run().pipeline->tracker().stats();
    uint64_t sum = 0;
    for (const auto &b : buckets)
        sum += b.repetition;
    EXPECT_EQ(sum, stats.dynRepeated);
}

TEST_P(EndToEndTest, LoadValueCoverageIsMonotonicInK)
{
    const auto &local = run().pipeline->local();
    double prev = 0.0;
    for (unsigned k = 1; k <= 5; ++k) {
        const double c = local.loadValueCoverage(k);
        EXPECT_GE(c, prev);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
}

TEST_P(EndToEndTest, ArgSetCoverageIsMonotonicInK)
{
    const auto &funcs = run().pipeline->functions();
    double prev = 0.0;
    for (unsigned k = 1; k <= 5; ++k) {
        const double c = funcs.argSetCoverage(k);
        EXPECT_GE(c, prev);
        EXPECT_LE(c, 1.0);
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, EndToEndTest,
    ::testing::Values("go", "m88ksim", "ijpeg", "perl", "vortex",
                      "li", "gcc", "compress"),
    [](const auto &info) { return std::string(info.param); });

} // namespace
} // namespace irep
