/**
 * @file
 * Keeps the CLI help text, its committed golden copy, and docs/cli.md
 * from drifting apart. The golden file is what `irep --help` prints;
 * regenerate it with:
 *
 *     build/tools/irep --help > tools/help.golden
 *
 * and update docs/cli.md to match.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "usage.hh"

namespace irep
{
namespace
{

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::stringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Every --flag and IREP_* env knob mentioned in `text`. */
std::set<std::string>
knobs(const std::string &text)
{
    std::set<std::string> out;
    const std::regex pattern("--[a-z][a-z-]+|IREP_[A-Z_]+");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        pattern);
         it != std::sregex_iterator(); ++it)
        out.insert(it->str());
    return out;
}

TEST(CliHelp, MatchesCommittedGolden)
{
    EXPECT_EQ(readFile(IREP_CLI_HELP_GOLDEN), cli::usageText)
        << "tools/help.golden is stale; regenerate with "
           "`build/tools/irep --help > tools/help.golden` and update "
           "docs/cli.md";
}

TEST(CliHelp, EveryKnobIsInTheCliReference)
{
    const std::string reference = readFile(IREP_CLI_DOC);
    for (const std::string &knob : knobs(cli::usageText)) {
        EXPECT_NE(reference.find(knob), std::string::npos)
            << "docs/cli.md does not mention " << knob;
    }
}

TEST(CliHelp, EverySubcommandIsInTheCliReference)
{
    const std::string reference = readFile(IREP_CLI_DOC);
    for (const char *command :
         {"compile", "disasm", "run", "analyze", "bench", "record",
          "fuzz", "serve", "version"}) {
        EXPECT_NE(reference.find(std::string("irep ") + command),
                  std::string::npos)
            << "docs/cli.md does not document `irep " << command
            << "`";
    }
}

} // namespace
} // namespace irep
