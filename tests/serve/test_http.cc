/**
 * @file
 * Wire-layer tests: listener lifecycle (ephemeral port, close wakes
 * accept), request parsing through real loopback sockets, framing
 * limits, and that malformed input is an error return — never a
 * crash, never a fatal.
 */

#include <cstring>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "serve/http.hh"

namespace irep
{
namespace
{

using serve::HttpRequest;
using serve::HttpResponse;
using serve::Listener;

/** One raw exchange: send @p raw to the listener, parse server-side,
 *  fill @p request / @p error. @return readRequest's verdict. */
bool
exchange(Listener &listener, const std::string &raw,
         HttpRequest &request, std::string &error)
{
    bool ok = false;
    std::thread client([&] {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(listener.port());
        ASSERT_EQ(::connect(fd, (const sockaddr *)&addr,
                            sizeof(addr)),
                  0);
        ASSERT_EQ(::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL),
                  ssize_t(raw.size()));
        ::shutdown(fd, SHUT_WR);
        char sink[256];
        while (::recv(fd, sink, sizeof(sink), 0) > 0) {
        }
        ::close(fd);
    });
    const int conn = listener.accept();
    EXPECT_GE(conn, 0);
    ok = serve::readRequest(conn, request, error);
    serve::writeResponse(conn, HttpResponse());
    ::close(conn);
    client.join();
    return ok;
}

TEST(ServeHttp, EphemeralPortIsBoundAndReported)
{
    Listener listener(0);
    EXPECT_GT(listener.port(), 0);

    // A second listener must get a different port, proving the first
    // is really bound.
    Listener other(0);
    EXPECT_NE(listener.port(), other.port());
}

TEST(ServeHttp, CloseWakesBlockedAccept)
{
    Listener listener(0);
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        listener.close();
    });
    EXPECT_EQ(listener.accept(), -1);
    closer.join();
}

TEST(ServeHttp, ParsesRequestLineHeadersAndBody)
{
    Listener listener(0);
    HttpRequest request;
    std::string error;
    ASSERT_TRUE(exchange(listener,
                         "POST /analyze?workload=li HTTP/1.1\r\n"
                         "Host: 127.0.0.1\r\n"
                         "Content-Length: 11\r\n"
                         "X-Custom: HeLLo\r\n"
                         "\r\n"
                         "hello world",
                         request, error))
        << error;
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.path, "/analyze");
    EXPECT_EQ(request.query, "workload=li");
    EXPECT_EQ(request.queryParam("workload"), "li");
    EXPECT_EQ(request.queryParam("absent"), "");
    EXPECT_EQ(request.body, "hello world");
    // Header names are case-insensitive per RFC; values keep case.
    EXPECT_EQ(request.headers.at("x-custom"), "HeLLo");
}

TEST(ServeHttp, RejectsMalformedAndOversized)
{
    Listener listener(0);
    HttpRequest request;
    std::string error;

    EXPECT_FALSE(
        exchange(listener, "NONSENSE\r\n\r\n", request, error));
    EXPECT_FALSE(error.empty());

    request = HttpRequest();
    EXPECT_FALSE(exchange(listener,
                          "GET /health SMTP/1.0\r\n\r\n", request,
                          error));

    request = HttpRequest();
    EXPECT_FALSE(exchange(listener,
                          "POST / HTTP/1.1\r\n"
                          "Content-Length: 999999999999\r\n\r\nx",
                          request, error));
    EXPECT_NE(error.find("exceeds"), std::string::npos);

    // A peer that hangs up before finishing its declared body.
    request = HttpRequest();
    EXPECT_FALSE(exchange(listener,
                          "POST / HTTP/1.1\r\n"
                          "Content-Length: 50\r\n\r\nshort",
                          request, error));
}

TEST(ServeHttp, ClientRoundTripsAgainstEchoServer)
{
    Listener listener(0);
    std::thread server([&] {
        const int conn = listener.accept();
        ASSERT_GE(conn, 0);
        HttpRequest request;
        std::string error;
        ASSERT_TRUE(serve::readRequest(conn, request, error))
            << error;
        HttpResponse response;
        response.status = 200;
        response.body = request.method + " " + request.path + " " +
                        request.body;
        serve::writeResponse(conn, response);
        ::close(conn);
    });
    const HttpResponse response = serve::httpRequest(
        listener.port(), "POST", "/echo", "payload");
    server.join();
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "POST /echo payload");
    EXPECT_EQ(response.contentType, "application/json");
}

} // namespace
} // namespace irep
