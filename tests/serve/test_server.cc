/**
 * @file
 * Daemon tests. Routing, error mapping and document contents go
 * through Server::route() in-process; the acceptance-criteria tests
 * (concurrent requests byte-identical, repeats served from the trace
 * cache without re-simulation, graceful shutdown) go through real
 * loopback sockets via httpRequest().
 */

#include <cstdlib>
#include <filesystem>

#include <unistd.h>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace irep
{
namespace
{

namespace fs = std::filesystem;

using serve::HttpRequest;
using serve::HttpResponse;
using serve::Server;
using serve::ServerConfig;

/** Drop the wall-clock-derived stat lines so two runs of the same
 *  config compare equal — the same exclusion set as
 *  ci/compare_stats.py. Everything else in an irep-stats-1 document
 *  is deterministic and must match byte for byte. */
std::string
stripTiming(const std::string &doc)
{
    std::istringstream in(doc);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"skip_seconds\"") != std::string::npos ||
            line.find("\"window_seconds\"") != std::string::npos ||
            line.find("\"window_mips\"") != std::string::npos ||
            line.find("\"wall_seconds\"") != std::string::npos)
            continue;
        out << line << '\n';
    }
    return out.str();
}

HttpRequest
post(const std::string &path, const std::string &body)
{
    HttpRequest request;
    request.method = "POST";
    request.path = path;
    request.body = body;
    return request;
}

HttpRequest
get(const std::string &path)
{
    HttpRequest request;
    request.method = "GET";
    request.path = path;
    return request;
}

class ServeServer : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::unsetenv("IREP_TRACE_DIR");
        ::unsetenv("IREP_TRACE_FORMAT");
        ::unsetenv("IREP_TRACE_CODEC");
        const auto *info =
            testing::UnitTest::GetInstance()->current_test_info();
        dir_ = testing::TempDir() + "irep_serve_" + info->name();
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void
    TearDown() override
    {
        ::unsetenv("IREP_TRACE_DIR");
        fs::remove_all(dir_);
    }

    void
    useTraceCache()
    {
        ::setenv("IREP_TRACE_DIR", dir_.c_str(), 1);
    }

    std::string dir_;
};

TEST_F(ServeServer, HealthVersionAndMetricsRoutes)
{
    Server server(ServerConfig{0, 1});

    const HttpResponse health = server.route(get("/health"));
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(json::parse(health.body).at("status").asString(),
              "ok");

    const HttpResponse version = server.route(get("/version"));
    EXPECT_EQ(version.status, 200);
    const json::Value vdoc = json::parse(version.body);
    EXPECT_EQ(vdoc.at("schema").asString(), "irep-version-1");
    EXPECT_FALSE(vdoc.at("build").asString().empty());
    EXPECT_EQ(vdoc.at("schemas").at("stats").asString(),
              "irep-stats-1");
    EXPECT_GE(vdoc.at("trace").at("format").asU64(), 2u);
    EXPECT_EQ(vdoc.at("trace").at("min_read").asU64(), 1u);
    bool hasStore = false, hasLz = false;
    for (const json::Value &codec :
         vdoc.at("trace").at("codecs").elements()) {
        hasStore |= codec.asString() == "store";
        hasLz |= codec.asString() == "lz";
    }
    EXPECT_TRUE(hasStore);
    EXPECT_TRUE(hasLz);
    bool hasServe = false;
    for (const json::Value &feature :
         vdoc.at("features").elements())
        hasServe |= feature.asString() == "serve";
    EXPECT_TRUE(hasServe);

    const HttpResponse metrics = server.route(get("/metrics"));
    EXPECT_EQ(metrics.status, 200);
    const json::Value mdoc = json::parse(metrics.body);
    EXPECT_EQ(mdoc.at("schema").asString(), "irep-serve-metrics-1");
    EXPECT_EQ(mdoc.at("analyses").asU64(), 0u);
    EXPECT_EQ(mdoc.at("in_flight").asU64(), 0u);

    const HttpResponse missing = server.route(get("/nope"));
    EXPECT_EQ(missing.status, 404);
    EXPECT_EQ(server.counters().errors.load(), 1u);
}

TEST_F(ServeServer, AnalyzeRouteMatchesTheServiceDocument)
{
    Server server(ServerConfig{0, 1});
    const HttpResponse response = server.route(post(
        "/analyze",
        "{\"workload\": \"compress\", \"skip\": 20000, "
        "\"window\": 60000}"));
    ASSERT_EQ(response.status, 200) << response.body;

    const json::Value doc = json::parse(response.body);
    EXPECT_EQ(doc.at("schema").asString(), "irep-stats-1");
    EXPECT_EQ(doc.at("command").asString(), "bench");
    EXPECT_EQ(doc.at("target").asString(), "compress");
    EXPECT_EQ(doc.at("config").at("skip").asU64(), 20000u);
    EXPECT_EQ(doc.at("config").at("window").asU64(), 60000u);
    EXPECT_EQ(doc.at("config").at("workload").asString(),
              "compress");

    // The same request through the service layer directly — the
    // route must add nothing and drop nothing.
    serve::AnalysisRequest request;
    request.workload = "compress";
    request.skip = 20000;
    request.window = 60000;
    const serve::AnalysisOutcome outcome =
        serve::runAnalysis(request);
    EXPECT_TRUE(outcome.simulated);
    EXPECT_EQ(stripTiming(response.body),
              stripTiming(outcome.statsJson));

    EXPECT_EQ(server.counters().analyses.load(), 1u);
    EXPECT_EQ(server.counters().simulations.load(), 1u);
    EXPECT_EQ(server.counters().cacheHits.load(), 0u);
    EXPECT_EQ(server.counters().errors.load(), 0u);
}

TEST_F(ServeServer, BadRequestsAre400AndCounted)
{
    Server server(ServerConfig{0, 1});
    const char *bad[] = {
        "not json at all",
        "{\"workload\": \"no-such-workload\"}",
        "{\"workload\": \"\"}",
        "{\"workload\": \"compress\", \"windw\": 1000}",
        "{\"workload\": \"compress\", \"window\": 0}",
        "[\"compress\"]",
    };
    for (const char *body : bad) {
        const HttpResponse response =
            server.route(post("/analyze", body));
        EXPECT_EQ(response.status, 400) << body;
        EXPECT_FALSE(
            json::parse(response.body).at("error").asString().empty())
            << body;
    }
    EXPECT_EQ(server.counters().errors.load(), std::size(bad));
    EXPECT_EQ(server.counters().analyses.load(), 0u);

    const HttpResponse batch = server.route(
        post("/batch", "{\"requests\": \"compress\"}"));
    EXPECT_EQ(batch.status, 400);
    const HttpResponse upload =
        server.route(post("/analyze/trace", "bytes"));
    EXPECT_EQ(upload.status, 400);    // missing ?workload=
}

TEST_F(ServeServer, BatchAnswersEveryRequestInOrder)
{
    Server server(ServerConfig{0, 1});
    const HttpResponse response = server.route(post(
        "/batch",
        "{\"requests\": ["
        "{\"workload\": \"compress\", \"skip\": 20000, "
        "\"window\": 60000},"
        "{\"workload\": \"compress\", \"skip\": 20000, "
        "\"window\": 80000}]}"));
    ASSERT_EQ(response.status, 200) << response.body;

    const json::Value doc = json::parse(response.body);
    EXPECT_EQ(doc.at("schema").asString(), "irep-serve-batch-1");
    ASSERT_EQ(doc.at("results").size(), 2u);
    EXPECT_EQ(doc.at("results").at(size_t(0)).at("config")
                  .at("window").asU64(),
              60000u);
    EXPECT_EQ(doc.at("results").at(size_t(1)).at("config")
                  .at("window").asU64(),
              80000u);
    EXPECT_EQ(server.counters().analyses.load(), 2u);
}

TEST_F(ServeServer, RepeatedConfigIsServedFromTheTraceCache)
{
    useTraceCache();
    Server server(ServerConfig{0, 1});
    const std::string body =
        "{\"workload\": \"compress\", \"skip\": 20000, "
        "\"window\": 60000}";

    const HttpResponse first = server.route(post("/analyze", body));
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(server.counters().simulations.load(), 1u);
    EXPECT_EQ(server.counters().recorded.load(), 1u);
    EXPECT_EQ(server.counters().cacheHits.load(), 0u);

    const HttpResponse second = server.route(post("/analyze", body));
    ASSERT_EQ(second.status, 200) << second.body;
    EXPECT_EQ(server.counters().simulations.load(), 1u)
        << "the repeat must replay, not re-simulate";
    EXPECT_EQ(server.counters().cacheHits.load(), 1u);
    EXPECT_EQ(server.counters().analyses.load(), 2u);

    EXPECT_EQ(stripTiming(first.body), stripTiming(second.body));
}

TEST_F(ServeServer, UploadedTraceAnswersLikeTheCachedConfig)
{
    useTraceCache();
    Server server(ServerConfig{0, 1});
    const HttpResponse reference = server.route(post(
        "/analyze",
        "{\"workload\": \"compress\", \"skip\": 20000, "
        "\"window\": 60000}"));
    ASSERT_EQ(reference.status, 200) << reference.body;

    // The first request published exactly one cache entry; upload
    // those bytes back as the request body.
    std::string tracePath;
    for (const auto &entry : fs::directory_iterator(dir_))
        tracePath = entry.path().string();
    ASSERT_FALSE(tracePath.empty());
    std::ifstream in(tracePath, std::ios::binary);
    std::ostringstream raw;
    raw << in.rdbuf();

    HttpRequest upload = post("/analyze/trace", raw.str());
    upload.query = "workload=compress";
    const HttpResponse response = server.route(upload);
    ASSERT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(stripTiming(response.body),
              stripTiming(reference.body));

    // The staged upload file must be gone again (match this
    // process's pid so concurrently running test processes don't
    // interfere).
    const std::string prefix =
        "irep_upload." + std::to_string(::getpid()) + ".";
    unsigned leftovers = 0;
    for (const auto &entry :
         fs::directory_iterator(fs::temp_directory_path())) {
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) == 0)
            ++leftovers;
    }
    EXPECT_EQ(leftovers, 0u);
}

TEST_F(ServeServer, ConcurrentRequestsAgreeAndSimulateOnce)
{
    useTraceCache();
    Server server(ServerConfig{0, 4});
    server.start();
    const std::string body =
        "{\"workload\": \"compress\", \"skip\": 20000, "
        "\"window\": 60000}";

    constexpr unsigned kClients = 8;
    std::vector<HttpResponse> responses(kClients);
    std::vector<std::thread> clients;
    for (unsigned i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            responses[i] = serve::httpRequest(
                server.port(), "POST", "/analyze", body);
        });
    for (std::thread &client : clients)
        client.join();

    for (unsigned i = 0; i < kClients; ++i) {
        ASSERT_EQ(responses[i].status, 200) << responses[i].body;
        EXPECT_EQ(stripTiming(responses[i].body),
                  stripTiming(responses[0].body))
            << "client " << i << " got a different answer";
    }

    EXPECT_EQ(server.counters().requests.load(), kClients);
    EXPECT_EQ(server.counters().analyses.load(), kClients);
    EXPECT_EQ(server.counters().simulations.load(), 1u)
        << "the claim protocol must collapse the stampede to one "
           "simulation";
    EXPECT_EQ(server.counters().recorded.load(), 1u);
    EXPECT_EQ(server.counters().cacheHits.load(), kClients - 1);
    EXPECT_EQ(server.counters().errors.load(), 0u);

    server.stop();
    EXPECT_EQ(server.counters().inFlight.load(), 0u);
}

TEST_F(ServeServer, ShutdownEndpointRequestsAGracefulStop)
{
    Server server(ServerConfig{0, 2});
    server.start();
    EXPECT_FALSE(server.stopRequested());

    const HttpResponse health =
        serve::httpRequest(server.port(), "GET", "/health");
    EXPECT_EQ(health.status, 200);

    const HttpResponse response =
        serve::httpRequest(server.port(), "POST", "/shutdown");
    EXPECT_EQ(response.status, 202);
    EXPECT_EQ(json::parse(response.body).at("status").asString(),
              "stopping");
    EXPECT_TRUE(server.stopRequested());

    server.waitForStop();   // must not block: the flag is already set
    server.stop();          // drains and joins; double stop is a noop
    server.stop();
}

} // namespace
} // namespace irep
