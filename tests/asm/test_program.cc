/**
 * @file
 * Program-image query tests: functionAt lookup, symbol access,
 * layout invariants.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "asm/program.hh"
#include "support/logging.hh"

namespace irep::assem
{
namespace
{

Program
twoFunctions()
{
    return assemble(
        ".ent f, 1\n"
        "f:  nop\n"
        "    nop\n"
        "    jr $ra\n"
        ".end f\n"
        "gap: nop\n"
        ".ent g, 2\n"
        "g:  jr $ra\n"
        ".end g\n");
}

TEST(Program, FunctionAtFindsContainingFunction)
{
    const Program p = twoFunctions();
    const FunctionInfo *f = p.functionAt(Layout::textBase);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->name, "f");
    // Last instruction of f.
    const FunctionInfo *f_end = p.functionAt(Layout::textBase + 8);
    ASSERT_NE(f_end, nullptr);
    EXPECT_EQ(f_end->name, "f");
}

TEST(Program, FunctionAtGapReturnsNull)
{
    const Program p = twoFunctions();
    // `gap:` is not inside any .ent region.
    EXPECT_EQ(p.functionAt(Layout::textBase + 12), nullptr);
}

TEST(Program, FunctionAtSecondFunction)
{
    const Program p = twoFunctions();
    const FunctionInfo *g = p.functionAt(Layout::textBase + 16);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->name, "g");
    EXPECT_EQ(g->numArgs, 2);
}

TEST(Program, FunctionAtOutsideText)
{
    const Program p = twoFunctions();
    EXPECT_EQ(p.functionAt(0), nullptr);
    EXPECT_EQ(p.functionAt(Layout::dataBase), nullptr);
}

TEST(Program, FunctionContains)
{
    FunctionInfo f;
    f.addr = 100;
    f.size = 8;
    EXPECT_TRUE(f.contains(100));
    EXPECT_TRUE(f.contains(104));
    EXPECT_FALSE(f.contains(108));
    EXPECT_FALSE(f.contains(96));
}

TEST(Program, SymbolLookupThrowsOnMissing)
{
    const Program p = twoFunctions();
    EXPECT_EQ(p.symbol("f"), Layout::textBase);
    EXPECT_THROW(p.symbol("missing"), FatalError);
}

TEST(Program, TextBytes)
{
    const Program p = twoFunctions();
    EXPECT_EQ(p.textBytes(), p.text.size() * 4);
}

TEST(Program, LayoutConstantsAreSane)
{
    EXPECT_LT(Layout::textBase, Layout::dataBase);
    EXPECT_LT(Layout::dataBase, Layout::stackTop);
    EXPECT_EQ(Layout::gpValue, Layout::dataBase + 0x8000);
    EXPECT_EQ(Layout::textBase % 4, 0u);
    EXPECT_EQ(Layout::stackTop % 8, 0u);
}

} // namespace
} // namespace irep::assem
