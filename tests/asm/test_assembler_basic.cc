/**
 * @file
 * Assembler tests: sections, labels, data directives, relocations,
 * function metadata, entry points.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"
#include "support/logging.hh"

namespace irep::assem
{
namespace
{

using isa::Op;

isa::Instruction
inst(const Program &prog, size_t index)
{
    return isa::decode(prog.text.at(index));
}

TEST(Assembler, EmptyProgram)
{
    const Program p = assemble("");
    EXPECT_TRUE(p.text.empty());
    EXPECT_TRUE(p.data.empty());
    EXPECT_EQ(p.entry, Layout::textBase);
}

TEST(Assembler, SingleInstruction)
{
    const Program p = assemble("addu $v0, $a0, $a1\n");
    ASSERT_EQ(p.text.size(), 1u);
    const auto i = inst(p, 0);
    EXPECT_EQ(i.op, Op::ADDU);
    EXPECT_EQ(i.rd, isa::regV0);
    EXPECT_EQ(i.rs, isa::regA0);
    EXPECT_EQ(i.rt, isa::regA1);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = assemble(
        "# full line comment\n"
        "\n"
        "addu $v0, $a0, $a1   # trailing comment\n");
    EXPECT_EQ(p.text.size(), 1u);
}

TEST(Assembler, LabelsResolveToTextAddresses)
{
    const Program p = assemble(
        "start:\n"
        "    nop\n"
        "next: nop\n");
    EXPECT_EQ(p.symbol("start"), Layout::textBase);
    EXPECT_EQ(p.symbol("next"), Layout::textBase + 4);
}

TEST(Assembler, MultipleLabelsOneAddress)
{
    const Program p = assemble("a: b: c: nop\n");
    EXPECT_EQ(p.symbol("a"), p.symbol("b"));
    EXPECT_EQ(p.symbol("b"), p.symbol("c"));
}

TEST(Assembler, BranchOffsetsAreRelative)
{
    const Program p = assemble(
        "top:\n"
        "    nop\n"
        "    beq $zero, $zero, top\n"
        "    bne $a0, $a1, fwd\n"
        "    nop\n"
        "fwd:\n"
        "    nop\n");
    // beq at index 1, target index 0: offset = (0 - 2) = -2.
    EXPECT_EQ(inst(p, 1).imm, -2);
    // bne at index 2, target index 4: offset = (4 - 3) = 1.
    EXPECT_EQ(inst(p, 2).imm, 1);
}

TEST(Assembler, JumpTargets)
{
    const Program p = assemble(
        "    j end\n"
        "    nop\n"
        "end: jal end\n");
    const uint32_t end = Layout::textBase + 8;
    EXPECT_EQ(inst(p, 0).target, end >> 2);
    EXPECT_EQ(inst(p, 2).target, end >> 2);
}

TEST(Assembler, DataDirectives)
{
    const Program p = assemble(
        ".data\n"
        "w: .word 0x12345678, 257\n"
        "h: .half 0xabcd\n"
        "b: .byte 1, 2, 3\n");
    EXPECT_EQ(p.symbol("w"), Layout::dataBase);
    EXPECT_EQ(p.symbol("h"), Layout::dataBase + 8);
    EXPECT_EQ(p.symbol("b"), Layout::dataBase + 10);
    // Little-endian layout.
    EXPECT_EQ(p.data[0], 0x78);
    EXPECT_EQ(p.data[1], 0x56);
    EXPECT_EQ(p.data[2], 0x34);
    EXPECT_EQ(p.data[3], 0x12);
    EXPECT_EQ(p.data[4], 0x01);     // 257 = 0x101
    EXPECT_EQ(p.data[5], 0x01);
    EXPECT_EQ(p.data[8], 0xcd);
    EXPECT_EQ(p.data[9], 0xab);
    EXPECT_EQ(p.data[10], 1);
    EXPECT_EQ(p.data[12], 3);
}

TEST(Assembler, WordWithLabelOperand)
{
    const Program p = assemble(
        ".data\n"
        "ptr: .word target\n"
        "target: .word 7\n");
    const uint32_t target = Layout::dataBase + 4;
    EXPECT_EQ(p.data[0], uint8_t(target));
    EXPECT_EQ(p.data[1], uint8_t(target >> 8));
    EXPECT_EQ(p.data[2], uint8_t(target >> 16));
    EXPECT_EQ(p.data[3], uint8_t(target >> 24));
}

TEST(Assembler, AsciizAndEscapes)
{
    const Program p = assemble(
        ".data\n"
        "s: .asciiz \"hi\\n\\t\\\"x\\\\\"\n");
    const std::string expect = "hi\n\t\"x\\";
    ASSERT_GE(p.data.size(), expect.size() + 1);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(char(p.data[i]), expect[i]) << i;
    EXPECT_EQ(p.data[expect.size()], 0);
}

TEST(Assembler, AsciiHasNoTerminator)
{
    const Program p = assemble(".data\ns: .ascii \"ab\"\n");
    EXPECT_EQ(p.data.size(), 2u);
}

TEST(Assembler, SpaceZeroFills)
{
    const Program p = assemble(
        ".data\n.byte 9\nz: .space 5\ne: .byte 1\n");
    EXPECT_EQ(p.symbol("e") - p.symbol("z"), 5u);
    for (uint32_t i = 1; i < 6; ++i)
        EXPECT_EQ(p.data[i], 0);
}

TEST(Assembler, AlignPadsDataSection)
{
    const Program p = assemble(
        ".data\n.byte 1\n.align 2\nw: .word 5\n");
    EXPECT_EQ(p.symbol("w") % 4, 0u);
    EXPECT_EQ(p.symbol("w"), Layout::dataBase + 4);
}

TEST(Assembler, HiLoRelocationPairs)
{
    // %hi/%lo use the signed-adjusted convention: hi compensates when
    // lo's sign bit is set.
    const Program p = assemble(
        ".data\n.space 0x9000\nsym: .word 1\n"
        ".text\n"
        "lui $t1, %hi(sym)\n"
        "lw $t0, %lo(sym)($t1)\n");
    const uint32_t addr = Layout::dataBase + 0x9000;
    const auto lui = inst(p, 0);
    const auto lw = inst(p, 1);
    const uint32_t hi = uint32_t(lui.imm) << 16;
    const int32_t lo = lw.imm;
    EXPECT_EQ(hi + uint32_t(lo), addr);
}

TEST(Assembler, EntDirectiveRecordsFunctions)
{
    const Program p = assemble(
        ".ent f, 2\n"
        "f:  nop\n"
        "    jr $ra\n"
        ".end f\n"
        ".ent g\n"
        "g:  jr $ra\n"
        ".end\n");
    ASSERT_EQ(p.functions.size(), 2u);
    EXPECT_EQ(p.functions[0].name, "f");
    EXPECT_EQ(p.functions[0].addr, Layout::textBase);
    EXPECT_EQ(p.functions[0].size, 8u);
    EXPECT_EQ(p.functions[0].numArgs, 2);
    EXPECT_EQ(p.functions[1].name, "g");
    EXPECT_EQ(p.functions[1].numArgs, 0);
}

TEST(Assembler, EntryDirective)
{
    const Program p = assemble(
        "other: nop\n"
        "main2: nop\n"
        ".entry main2\n");
    EXPECT_EQ(p.entry, Layout::textBase + 4);
}

TEST(Assembler, DefaultEntryIsStart)
{
    const Program p = assemble("nop\n_start: nop\n");
    EXPECT_EQ(p.entry, Layout::textBase + 4);
}

TEST(Assembler, HeapStartIsPastDataAndAligned)
{
    const Program p = assemble(".data\n.space 100\n");
    EXPECT_GE(p.heapStart(), Layout::dataBase + 100);
    EXPECT_EQ(p.heapStart() % 0x1000, 0u);
}

TEST(Assembler, CharImmediates)
{
    const Program p = assemble("addiu $t0, $zero, 'A'\n");
    EXPECT_EQ(inst(p, 0).imm, 65);
}

TEST(Assembler, NegativeAndHexImmediates)
{
    const Program p = assemble(
        "addiu $t0, $zero, -5\n"
        "ori $t1, $zero, 0xff\n");
    EXPECT_EQ(inst(p, 0).imm, -5);
    EXPECT_EQ(inst(p, 1).imm, 0xff);
}

} // namespace
} // namespace irep::assem
