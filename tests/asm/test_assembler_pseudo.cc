/**
 * @file
 * Pseudo-instruction expansion tests: li/la/move/branches/set-
 * compares/mul-div-rem expand to the documented base sequences.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/instruction.hh"
#include "isa/registers.hh"

namespace irep::assem
{
namespace
{

using isa::Op;

isa::Instruction
inst(const Program &prog, size_t index)
{
    return isa::decode(prog.text.at(index));
}

TEST(Pseudo, NopIsSllZero)
{
    const Program p = assemble("nop\n");
    ASSERT_EQ(p.text.size(), 1u);
    EXPECT_EQ(p.text[0], 0u);
}

TEST(Pseudo, MoveIsAdduWithZero)
{
    const Program p = assemble("move $t0, $s1\n");
    const auto i = inst(p, 0);
    EXPECT_EQ(i.op, Op::ADDU);
    EXPECT_EQ(i.rd, isa::regT0);
    EXPECT_EQ(i.rs, isa::regS0 + 1);
    EXPECT_EQ(i.rt, isa::regZero);
}

TEST(Pseudo, LiSmallSignedUsesAddiu)
{
    const Program p = assemble("li $t0, -42\n");
    ASSERT_EQ(p.text.size(), 1u);
    const auto i = inst(p, 0);
    EXPECT_EQ(i.op, Op::ADDIU);
    EXPECT_EQ(i.rs, isa::regZero);
    EXPECT_EQ(i.imm, -42);
}

TEST(Pseudo, LiMediumUnsignedUsesOri)
{
    const Program p = assemble("li $t0, 0x8000\n");
    ASSERT_EQ(p.text.size(), 1u);
    const auto i = inst(p, 0);
    EXPECT_EQ(i.op, Op::ORI);
    EXPECT_EQ(i.imm, 0x8000);
}

TEST(Pseudo, LiLargeUsesLuiOri)
{
    const Program p = assemble("li $t0, 0x12345678\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(inst(p, 0).op, Op::LUI);
    EXPECT_EQ(inst(p, 0).imm, 0x1234);
    EXPECT_EQ(inst(p, 1).op, Op::ORI);
    EXPECT_EQ(inst(p, 1).imm, 0x5678);
}

TEST(Pseudo, LiLargeRoundValueSkipsOri)
{
    const Program p = assemble("li $t0, 0x12340000\n");
    ASSERT_EQ(p.text.size(), 1u);
    EXPECT_EQ(inst(p, 0).op, Op::LUI);
}

TEST(Pseudo, LaExpandsToLuiOri)
{
    const Program p = assemble(
        ".data\nsym: .word 0\n.text\nla $t0, sym\n");
    ASSERT_EQ(p.text.size(), 2u);
    const auto lui = inst(p, 0);
    const auto ori = inst(p, 1);
    EXPECT_EQ(lui.op, Op::LUI);
    EXPECT_EQ(ori.op, Op::ORI);
    const uint32_t value =
        (uint32_t(lui.imm) << 16) | uint32_t(ori.imm);
    EXPECT_EQ(value, Layout::dataBase);
}

TEST(Pseudo, UnconditionalBranch)
{
    const Program p = assemble("top: b top\n");
    const auto i = inst(p, 0);
    EXPECT_EQ(i.op, Op::BEQ);
    EXPECT_EQ(i.rs, isa::regZero);
    EXPECT_EQ(i.rt, isa::regZero);
    EXPECT_EQ(i.imm, -1);
}

TEST(Pseudo, BeqzBnez)
{
    const Program p = assemble(
        "top: beqz $a0, top\n"
        "     bnez $a1, top\n");
    EXPECT_EQ(inst(p, 0).op, Op::BEQ);
    EXPECT_EQ(inst(p, 0).rs, isa::regA0);
    EXPECT_EQ(inst(p, 0).rt, isa::regZero);
    EXPECT_EQ(inst(p, 1).op, Op::BNE);
    EXPECT_EQ(inst(p, 1).rs, isa::regA1);
}

struct CompareBranchCase
{
    const char *mnemonic;
    Op sltOp;
    Op branchOp;
    bool swapped;   //!< operands swapped into the slt
};

class CompareBranchTest
    : public ::testing::TestWithParam<CompareBranchCase>
{
};

TEST_P(CompareBranchTest, ExpandsToSltPlusBranch)
{
    const auto &c = GetParam();
    const Program p = assemble(
        std::string("top: ") + c.mnemonic + " $a0, $a1, top\n");
    ASSERT_EQ(p.text.size(), 2u);
    const auto slt = inst(p, 0);
    const auto br = inst(p, 1);
    EXPECT_EQ(slt.op, c.sltOp);
    EXPECT_EQ(slt.rd, isa::regAT);
    if (c.swapped) {
        EXPECT_EQ(slt.rs, isa::regA1);
        EXPECT_EQ(slt.rt, isa::regA0);
    } else {
        EXPECT_EQ(slt.rs, isa::regA0);
        EXPECT_EQ(slt.rt, isa::regA1);
    }
    EXPECT_EQ(br.op, c.branchOp);
    EXPECT_EQ(br.imm, -2);
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, CompareBranchTest,
    ::testing::Values(
        CompareBranchCase{"blt", Op::SLT, Op::BNE, false},
        CompareBranchCase{"bge", Op::SLT, Op::BEQ, false},
        CompareBranchCase{"bgt", Op::SLT, Op::BNE, true},
        CompareBranchCase{"ble", Op::SLT, Op::BEQ, true},
        CompareBranchCase{"bltu", Op::SLTU, Op::BNE, false},
        CompareBranchCase{"bgeu", Op::SLTU, Op::BEQ, false},
        CompareBranchCase{"bgtu", Op::SLTU, Op::BNE, true},
        CompareBranchCase{"bleu", Op::SLTU, Op::BEQ, true}),
    [](const auto &info) {
        return std::string(info.param.mnemonic);
    });

TEST(Pseudo, MulExpandsToMultMflo)
{
    const Program p = assemble("mul $t0, $t1, $t2\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(inst(p, 0).op, Op::MULT);
    EXPECT_EQ(inst(p, 1).op, Op::MFLO);
    EXPECT_EQ(inst(p, 1).rd, isa::regT0);
}

TEST(Pseudo, ThreeOperandDivExpands)
{
    const Program p = assemble("div $t0, $t1, $t2\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(inst(p, 0).op, Op::DIV);
    EXPECT_EQ(inst(p, 1).op, Op::MFLO);
}

TEST(Pseudo, TwoOperandDivIsBaseInstruction)
{
    const Program p = assemble("div $t1, $t2\n");
    ASSERT_EQ(p.text.size(), 1u);
    EXPECT_EQ(inst(p, 0).op, Op::DIV);
}

TEST(Pseudo, RemExpandsToDivMfhi)
{
    const Program p = assemble("rem $t0, $t1, $t2\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(inst(p, 0).op, Op::DIV);
    EXPECT_EQ(inst(p, 1).op, Op::MFHI);
}

TEST(Pseudo, NegAndNot)
{
    const Program p = assemble("neg $t0, $t1\nnot $t2, $t3\n");
    EXPECT_EQ(inst(p, 0).op, Op::SUBU);
    EXPECT_EQ(inst(p, 0).rs, isa::regZero);
    EXPECT_EQ(inst(p, 1).op, Op::NOR);
    EXPECT_EQ(inst(p, 1).rt, isa::regZero);
}

TEST(Pseudo, SeqSne)
{
    const Program p = assemble(
        "seq $t0, $t1, $t2\n"
        "sne $t3, $t4, $t5\n");
    // seq = subu + sltiu rd, rd, 1
    EXPECT_EQ(inst(p, 0).op, Op::SUBU);
    EXPECT_EQ(inst(p, 1).op, Op::SLTIU);
    EXPECT_EQ(inst(p, 1).imm, 1);
    // sne = subu + sltu rd, $zero, rd
    EXPECT_EQ(inst(p, 2).op, Op::SUBU);
    EXPECT_EQ(inst(p, 3).op, Op::SLTU);
    EXPECT_EQ(inst(p, 3).rs, isa::regZero);
}

TEST(Pseudo, SgeSleXorCompensation)
{
    const Program p = assemble("sge $t0, $t1, $t2\n");
    EXPECT_EQ(inst(p, 0).op, Op::SLT);
    EXPECT_EQ(inst(p, 1).op, Op::XORI);
    EXPECT_EQ(inst(p, 1).imm, 1);
}

TEST(Pseudo, JalrDefaultLinkRegister)
{
    const Program p = assemble("jalr $t9\n");
    const auto i = inst(p, 0);
    EXPECT_EQ(i.op, Op::JALR);
    EXPECT_EQ(i.rd, isa::regRA);
    EXPECT_EQ(i.rs, isa::regT9);
}

} // namespace
} // namespace irep::assem
