/**
 * @file
 * Assembler error handling: every malformed input must raise a
 * FatalError (never crash or silently mis-assemble).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "support/logging.hh"

namespace irep::assem
{
namespace
{

class AsmErrorTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AsmErrorTest, RaisesFatalError)
{
    EXPECT_THROW(assemble(GetParam()), FatalError) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, AsmErrorTest,
    ::testing::Values(
        // Unknown things.
        "frobnicate $t0, $t1\n",
        ".bogus 1\n",
        // Bad operands.
        "addu $t0, $t1\n",
        "addu $t0, $t1, $t2, $t3\n",
        "addu $zz, $t1, $t2\n",
        "lw $t0, $t1\n",
        "addiu $t0, $zero, 40000\n",        // imm out of signed range
        "andi $t0, $zero, -1\n",            // imm out of unsigned range
        "addiu $t0, $zero, 'ab'\n",         // bad char literal
        "sll $t0, $t1, 32\n",               // shift out of range
        // Labels.
        "dup: nop\ndup: nop\n",
        "beq $zero, $zero, nowhere\n",
        "j nowhere\n",
        "la $t0, nowhere\n",
        // Sections.
        ".word 1\n",                        // data directive in .text
        ".data\nnop\n",                     // instruction in .data
        // Function metadata.
        ".ent f\nf: nop\n",                 // missing .end
        ".end f\n",                         // .end without .ent
        ".ent f\n.ent g\n",                 // nested .ent
        ".ent f, 9\nf: nop\n.end f\n",      // too many args
        // Strings.
        ".data\n.asciiz bad\n",
        // Branch out of range.
        "b far\n.space 1\n"));

TEST(AsmError, BranchOutOfRange)
{
    // 2^15 instructions forward exceeds the 16-bit signed offset.
    std::string src = "b far\n";
    for (int i = 0; i < (1 << 15) + 8; ++i)
        src += "nop\n";
    src += "far: nop\n";
    EXPECT_THROW(assemble(src), FatalError);
}

TEST(AsmError, MessagesIncludeLineNumbers)
{
    try {
        assemble("nop\nnop\nbogus_mnemonic\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(AsmError, UndefinedSymbolNamesTheSymbol)
{
    try {
        assemble("j missing_target\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("missing_target"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace irep::assem
