/**
 * @file
 * Population-suite tests: the generated-program study must be a
 * stable, citable corpus — same seed means byte-identical output, at
 * any parallelism, live or replayed from the trace cache — and its
 * `irep-pop-1` document must keep all nondeterminism inside `perf`.
 */

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/population.hh"
#include "support/json.hh"
#include "support/logging.hh"

namespace irep::bench
{
namespace
{

namespace fs = std::filesystem;

PopulationConfig
smallConfig()
{
    PopulationConfig config;
    config.count = 12;
    config.popSeed = 7;
    config.pipeline.skipInstructions = 0;
    config.pipeline.windowInstructions = 200'000;
    return config;
}

/** Re-serialize with the `perf` subtree (the only nondeterministic
 *  block of irep-pop-1) removed. */
void
writeStripped(const json::Value &value, json::Writer &w)
{
    switch (value.kind()) {
      case json::Value::Kind::Object:
        w.beginObject();
        for (const auto &[key, sub] : value.members()) {
            if (key == "perf")
                continue;
            w.key(key);
            writeStripped(sub, w);
        }
        w.endObject();
        break;
      case json::Value::Kind::Array:
        w.beginArray();
        for (const json::Value &sub : value.elements())
            writeStripped(sub, w);
        w.endArray();
        break;
      case json::Value::Kind::String:
        w.value(value.asString());
        break;
      case json::Value::Kind::Number:
        w.value(value.asNumber());
        break;
      case json::Value::Kind::Bool:
        w.value(value.asBool());
        break;
      case json::Value::Kind::Null:
        w.null();
        break;
    }
}

std::string
stripPerf(const std::string &json)
{
    std::ostringstream out;
    json::Writer w(out);
    writeStripped(json::parse(json), w);
    return out.str();
}

std::string
jsonOf(PopulationSuite &suite)
{
    std::ostringstream out;
    suite.writeJson(out);
    return out.str();
}

TEST(Population, SameSeedIsByteIdentical)
{
    PopulationSuite a(smallConfig());
    PopulationSuite b(smallConfig());
    EXPECT_EQ(a.renderTable(), b.renderTable());
    EXPECT_EQ(stripPerf(jsonOf(a)), stripPerf(jsonOf(b)));
    // The stripped document still carries the real content.
    EXPECT_NE(stripPerf(jsonOf(a)).find("\"pct_dyn_repeated\""),
              std::string::npos);
    EXPECT_NE(stripPerf(jsonOf(a)).find("\"attribution/"),
              std::string::npos);
}

TEST(Population, ParallelAndShardedMatchSerial)
{
    PopulationConfig serial = smallConfig();
    serial.jobs = 1;
    PopulationConfig wide = smallConfig();
    wide.jobs = 4;
    wide.pipeline.windowJobs = 4;
    PopulationSuite a(serial);
    PopulationSuite b(wide);
    EXPECT_EQ(a.renderTable(), b.renderTable());
    EXPECT_EQ(stripPerf(jsonOf(a)), stripPerf(jsonOf(b)));
}

TEST(Population, ReplayedPopulationMatchesLive)
{
    const std::string dir =
        testing::TempDir() + "population_cache_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    setenv("IREP_TRACE_DIR", dir.c_str(), 1);

    PopulationSuite live(smallConfig());
    const std::string liveTable = live.renderTable();
    EXPECT_EQ(live.tracesRecorded(), smallConfig().count);
    EXPECT_EQ(live.tracesReplayed(), 0u);

    PopulationSuite replayed(smallConfig());
    const std::string replayedTable = replayed.renderTable();
    EXPECT_EQ(replayed.tracesReplayed(), smallConfig().count);
    EXPECT_EQ(replayed.tracesRecorded(), 0u);

    EXPECT_EQ(liveTable, replayedTable);
    EXPECT_EQ(stripPerf(jsonOf(live)), stripPerf(jsonOf(replayed)));

    unsetenv("IREP_TRACE_DIR");
    fs::remove_all(dir);
}

TEST(Population, ResultsAlignWithMetricNames)
{
    PopulationSuite suite(smallConfig());
    const auto &results = suite.results();
    ASSERT_EQ(results.size(), smallConfig().count);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].seed, smallConfig().popSeed + i);
        EXPECT_EQ(results[i].metrics.size(),
                  suite.metricNames().size());
        EXPECT_GT(results[i].instructions, 0u);
    }
}

TEST(Population, DisabledAnalysesShrinkTheMetricSet)
{
    PopulationConfig config = smallConfig();
    std::string error;
    ASSERT_TRUE(core::applyAnalysisSet("tracker", config.pipeline,
                                       &error));
    PopulationSuite suite(config);
    // Only the run + repetition headline metrics remain.
    EXPECT_EQ(suite.metricNames().size(), 5u);
    EXPECT_EQ(jsonOf(suite).find("\"attribution/"),
              std::string::npos);
}

TEST(Population, ZeroCountIsFatal)
{
    PopulationConfig config = smallConfig();
    config.count = 0;
    EXPECT_THROW(PopulationSuite suite(config), FatalError);
}

} // namespace
} // namespace irep::bench
