/**
 * @file
 * Bench-harness tests: the parallel suite must be a pure speedup —
 * canonical entry order, byte-identical JSON modulo wall-clock
 * timing — the irep-bench-2 report must carry honest repetition
 * statistics, and malformed configuration must fail loudly. The
 * `Suite.*` tests also run under ThreadSanitizer in CI, including
 * the profiled parallel run.
 */

#include <cstdint>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/suite.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/prof.hh"

namespace irep::bench
{
namespace
{

SuiteConfig
smallConfig(unsigned jobs)
{
    SuiteConfig config;
    config.skip = 20'000;
    config.window = 60'000;
    config.filter = {"perl", "compress"};
    config.jobs = jobs;
    return config;
}

/** Re-serialize @p value with every wall-clock-derived field removed
 *  (the same set ci/compare_stats.py strips): scalar `*_seconds` /
 *  `*_mips` stats plus the `perf` and `profile` subtrees, the only
 *  content allowed to differ between serial and parallel runs. */
void
writeStripped(const json::Value &value, json::Writer &w)
{
    switch (value.kind()) {
      case json::Value::Kind::Object:
        w.beginObject();
        for (const auto &[key, sub] : value.members()) {
            if (key == "perf" || key == "profile" ||
                key.find("seconds") != std::string::npos ||
                key.find("mips") != std::string::npos)
                continue;
            w.key(key);
            writeStripped(sub, w);
        }
        w.endObject();
        break;
      case json::Value::Kind::Array:
        w.beginArray();
        for (const json::Value &sub : value.elements())
            writeStripped(sub, w);
        w.endArray();
        break;
      case json::Value::Kind::String:
        w.value(value.asString());
        break;
      case json::Value::Kind::Number:
        w.value(value.asNumber());
        break;
      case json::Value::Kind::Bool:
        w.value(value.asBool());
        break;
      case json::Value::Kind::Null:
        w.null();
        break;
    }
}

std::string
stripTimingFields(const std::string &json)
{
    std::ostringstream out;
    json::Writer w(out);
    writeStripped(json::parse(json), w);
    return out.str();
}

TEST(Suite, ParallelJsonIdenticalToSerialModuloTiming)
{
    Suite serial(smallConfig(1));
    Suite parallel(smallConfig(4));
    serial.entries();
    parallel.entries();
    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_EQ(parallel.jobs(), 4u);

    std::ostringstream a, b;
    serial.writeJson(a);
    parallel.writeJson(b);
    EXPECT_EQ(stripTimingFields(a.str()), stripTimingFields(b.str()));
    // The stripped document must still carry real content.
    EXPECT_NE(a.str(), stripTimingFields(a.str()));
    EXPECT_NE(stripTimingFields(a.str()).find("\"repetition\""),
              std::string::npos);
}

TEST(Suite, EntriesKeepCanonicalWorkloadOrder)
{
    SuiteConfig config = smallConfig(4);
    // Filter deliberately lists names against paper order; entries
    // must come back in paper order (go before compress).
    config.filter = {"compress", "go"};
    Suite suite(config);
    const auto &entries = suite.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "go");
    EXPECT_EQ(entries[1].name, "compress");
}

TEST(Suite, WindowExecutedAndTimingArePopulated)
{
    Suite suite(smallConfig(2));
    const auto &entries = suite.entries();
    ASSERT_EQ(entries.size(), 2u);
    for (const auto &entry : entries) {
        EXPECT_EQ(entry.windowExecuted, 60'000u);
        EXPECT_GT(entry.pipeline->timing().window.seconds, 0.0);
        // One timed run (the stats pass itself) at repetitions=1.
        ASSERT_EQ(entry.runSeconds.size(), 1u);
        EXPECT_GT(entry.runSeconds[0], 0.0);
    }
    EXPECT_GT(suite.suiteSeconds(), 0.0);
    EXPECT_GT(suite.workloadSeconds(), 0.0);
}

TEST(Suite, BenchTwoSchemaCarriesPerfBlock)
{
    SuiteConfig config = smallConfig(2);
    config.repetitions = 3;
    Suite suite(config);
    suite.entries();

    std::ostringstream out;
    suite.writeJson(out);
    const json::Value doc = json::parse(out.str());
    EXPECT_EQ(doc.at("schema").asString(), "irep-bench-2");
    EXPECT_EQ(doc.at("repetitions").asU64(), 3u);
    for (const char *name : {"perl", "compress"}) {
        const json::Value &workload = doc.at("workloads").at(name);
        EXPECT_TRUE(workload.at("stats").isObject());
        const json::Value &perf = workload.at("perf");
        ASSERT_EQ(perf.at("runs_seconds").size(), 3u);
        const double median = perf.at("median_seconds").asNumber();
        EXPECT_GT(median, 0.0);
        const json::Value &ci = perf.at("median_ci95_seconds");
        EXPECT_LE(ci.at("lo").asNumber(), median);
        EXPECT_GE(ci.at("hi").asNumber(), median);
        EXPECT_GE(perf.at("noise_rel_iqr").asNumber(), 0.0);
        const std::string mode =
            perf.at("timing_mode").asString();
        EXPECT_TRUE(mode == "live" || mode == "replay") << mode;
    }
    // Profiling off: no profile block rides along.
    EXPECT_FALSE(doc.contains("profile"));
}

TEST(Suite, DedicatedTimingPassesCollectRepetitionRuns)
{
    SuiteConfig config = smallConfig(1);
    config.repetitions = 2;
    Suite suite(config);
    for (const auto &entry : suite.entries()) {
        EXPECT_EQ(entry.runSeconds.size(), 2u);
        for (double s : entry.runSeconds)
            EXPECT_GT(s, 0.0);
    }
}

TEST(Suite, ZeroRepetitionsIsFatal)
{
    SuiteConfig config = smallConfig(1);
    config.repetitions = 0;
    Suite suite(config);
    EXPECT_THROW(suite.entries(), FatalError);
}

/** A typo in the benchmark filter used to be silently dropped and
 *  could run a zero-workload suite; now it is fatal and names the
 *  valid workloads. */
TEST(Suite, UnknownFilterNameIsFatal)
{
    SuiteConfig config = smallConfig(1);
    config.filter = {"ijepg"};
    Suite suite(config);
    try {
        suite.entries();
        FAIL() << "unknown workload name did not throw";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("ijepg"), std::string::npos);
        EXPECT_NE(msg.find("valid names"), std::string::npos);
        EXPECT_NE(msg.find("ijpeg"), std::string::npos);
    }
}

TEST(Suite, RunOneMatchesSuiteEntry)
{
    Suite suite(smallConfig(2));
    const auto &entries = suite.entries();
    core::PipelineConfig config;
    config.skipInstructions = suite.skip();
    config.windowInstructions = suite.window();
    const SuiteEntry alone = Suite::runOne("perl", config);
    EXPECT_EQ(alone.windowExecuted, entries[0].windowExecuted);
    EXPECT_EQ(alone.pipeline->tracker().stats().dynRepeated,
              entries[0].pipeline->tracker().stats().dynRepeated);
}

/**
 * The profiler must not perturb results or break determinism: with
 * profiling enabled, a parallel suite run still produces stats
 * byte-identical (modulo timing) to a serial run, and the merged
 * trace-event export is one well-formed document containing worker
 * spans from the pool threads. Runs under TSan in CI (`Suite\.`),
 * covering the record-while-merging paths.
 */
TEST(Suite, ProfiledParallelJsonIdenticalToSerialModuloTiming)
{
    prof::reset();
    prof::enable();

    Suite serial(smallConfig(1));
    Suite parallel(smallConfig(4));
    serial.entries();
    parallel.entries();

    std::ostringstream a, b;
    serial.writeJson(a);
    parallel.writeJson(b);

    std::ostringstream trace;
    prof::writeTraceJson(trace);
    prof::enable(false);
    prof::reset();

    EXPECT_EQ(stripTimingFields(a.str()), stripTimingFields(b.str()));
    // Both documents carry the profile block while profiling is on.
    EXPECT_NE(a.str().find("irep-prof-1"), std::string::npos);

    // The merged trace parses, and the parallel run's workload spans
    // landed on more than one profiler thread.
    const json::Value doc = json::parse(trace.str());
    const json::Value &events = doc.at("traceEvents");
    ASSERT_GT(events.size(), 0u);
    std::set<uint64_t> workloadTids;
    size_t workloadSpans = 0;
    for (const json::Value &event : events.elements()) {
        if (event.at("ph").asString() != "X")
            continue;
        const std::string &name = event.at("name").asString();
        if (name.rfind("workload:", 0) == 0) {
            ++workloadSpans;
            workloadTids.insert(event.at("tid").asU64());
        }
    }
    // Two workloads ran in each suite: 4 workload spans in total.
    EXPECT_EQ(workloadSpans, 4u);
    EXPECT_GE(workloadTids.size(), 2u);
}

} // namespace
} // namespace irep::bench
