/**
 * @file
 * Bench-harness tests: the parallel suite must be a pure speedup —
 * canonical entry order, byte-identical JSON modulo wall-clock
 * timing fields — and malformed configuration must fail loudly.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/suite.hh"
#include "support/logging.hh"

namespace irep::bench
{
namespace
{

SuiteConfig
smallConfig(unsigned jobs)
{
    SuiteConfig config;
    config.skip = 20'000;
    config.window = 60'000;
    config.filter = {"perl", "compress"};
    config.jobs = jobs;
    return config;
}

/** Drop the wall-clock timing lines (`*_seconds`, `*_mips`) — the
 *  only fields allowed to differ between serial and parallel runs. */
std::string
stripTimingFields(const std::string &json)
{
    std::istringstream in(json);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.find("seconds") != std::string::npos ||
            line.find("mips") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

TEST(Suite, ParallelJsonIdenticalToSerialModuloTiming)
{
    Suite serial(smallConfig(1));
    Suite parallel(smallConfig(4));
    serial.entries();
    parallel.entries();
    EXPECT_EQ(serial.jobs(), 1u);
    EXPECT_EQ(parallel.jobs(), 4u);

    std::ostringstream a, b;
    serial.writeJson(a);
    parallel.writeJson(b);
    EXPECT_EQ(stripTimingFields(a.str()), stripTimingFields(b.str()));
    // The stripped document must still carry real content.
    EXPECT_NE(a.str(), stripTimingFields(a.str()));
    EXPECT_NE(stripTimingFields(a.str()).find("\"repetition\""),
              std::string::npos);
}

TEST(Suite, EntriesKeepCanonicalWorkloadOrder)
{
    SuiteConfig config = smallConfig(4);
    // Filter deliberately lists names against paper order; entries
    // must come back in paper order (go before compress).
    config.filter = {"compress", "go"};
    Suite suite(config);
    const auto &entries = suite.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "go");
    EXPECT_EQ(entries[1].name, "compress");
}

TEST(Suite, WindowExecutedAndTimingArePopulated)
{
    Suite suite(smallConfig(2));
    const auto &entries = suite.entries();
    ASSERT_EQ(entries.size(), 2u);
    for (const auto &entry : entries) {
        EXPECT_EQ(entry.windowExecuted, 60'000u);
        EXPECT_GT(entry.pipeline->timing().window.seconds, 0.0);
    }
    EXPECT_GT(suite.suiteSeconds(), 0.0);
    EXPECT_GT(suite.workloadSeconds(), 0.0);
}

/** A typo in the benchmark filter used to be silently dropped and
 *  could run a zero-workload suite; now it is fatal and names the
 *  valid workloads. */
TEST(Suite, UnknownFilterNameIsFatal)
{
    SuiteConfig config = smallConfig(1);
    config.filter = {"ijepg"};
    Suite suite(config);
    try {
        suite.entries();
        FAIL() << "unknown workload name did not throw";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("ijepg"), std::string::npos);
        EXPECT_NE(msg.find("valid names"), std::string::npos);
        EXPECT_NE(msg.find("ijpeg"), std::string::npos);
    }
}

TEST(Suite, RunOneMatchesSuiteEntry)
{
    Suite suite(smallConfig(2));
    const auto &entries = suite.entries();
    core::PipelineConfig config;
    config.skipInstructions = suite.skip();
    config.windowInstructions = suite.window();
    const SuiteEntry alone = Suite::runOne("perl", config);
    EXPECT_EQ(alone.windowExecuted, entries[0].windowExecuted);
    EXPECT_EQ(alone.pipeline->tracker().stats().dynRepeated,
              entries[0].pipeline->tracker().stats().dynRepeated);
}

} // namespace
} // namespace irep::bench
