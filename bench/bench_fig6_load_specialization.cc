/**
 * @file
 * Regenerates Figure 6: the share of global+heap load repetition
 * covered when every such static load is specialized for its 1..5
 * most frequently repeated values. The paper quotes top-1 coverage of
 * 18% (go), 71% (m88ksim), 39% (vortex), 22% (gcc).
 */

#include <cstdio>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Figure 6: global+heap load repetition covered by top values",
        "Sodani & Sohi ASPLOS'98, Figure 6");

    TextTable table;
    table.header({"bench", "top-1", "top-2", "top-3", "top-4",
                  "top-5"});
    for (auto &entry : bench::Suite::instance().entries()) {
        std::vector<std::string> row = {entry.name};
        for (unsigned k = 1; k <= 5; ++k) {
            row.push_back(TextTable::num(
                100.0 * entry.pipeline->local().loadValueCoverage(k),
                1) + "%");
        }
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nPaper top-1 reference: go 18%, m88ksim 71%, vortex "
              "39%, gcc 22%.");
    return 0;
}
