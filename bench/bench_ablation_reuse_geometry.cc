/**
 * @file
 * Ablation (ours): reuse-buffer geometry sweep around the paper's 8K
 * 4-way point (Table 10) — the "room for improvement" the paper's §7
 * gestures at. Sweeps total entries and associativity.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "support/parallel.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Ablation: reuse-buffer geometry sweep",
        "Sodani & Sohi ASPLOS'98, Table 10 (paper point: 8K 4-way)");

    struct Geometry
    {
        uint32_t entries;
        uint32_t ways;
    };
    const std::vector<Geometry> sweep = {
        {1024, 4}, {2048, 4}, {4096, 4}, {8192, 1}, {8192, 4},
        {8192, 8}, {16384, 4},
    };

    bench::Suite &suite = bench::Suite::instance();
    TextTable table;
    std::vector<std::string> header = {"bench"};
    for (const auto &g : sweep) {
        header.push_back(std::to_string(g.entries) + "e/" +
                         std::to_string(g.ways) + "w");
    }
    table.header(header);

    // Flatten the (workload, geometry) grid and sweep it in
    // parallel; the table is printed from the indexed results.
    const auto &entries = suite.entries();
    std::vector<double> captured(entries.size() * sweep.size());
    parallel::parallelFor(captured.size(), [&](size_t i) {
        const Geometry &g = sweep[i % sweep.size()];
        core::PipelineConfig config;
        config.skipInstructions = suite.skip();
        config.windowInstructions = suite.window();
        config.enableGlobal = false;
        config.enableLocal = false;
        config.enableFunction = false;
        config.reuse.entries = g.entries;
        config.reuse.ways = g.ways;
        auto run = bench::Suite::runOne(
            entries[i / sweep.size()].name, config);
        captured[i] = run.pipeline->reuse().stats().pctOfAll();
    });

    for (size_t e = 0; e < entries.size(); ++e) {
        std::vector<std::string> row = {entries[e].name};
        for (size_t s = 0; s < sweep.size(); ++s)
            row.push_back(
                TextTable::num(captured[e * sweep.size() + s]));
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nEach cell: % of all dynamic instructions captured "
              "(Table 10 col 2) at that geometry.");
    return 0;
}
