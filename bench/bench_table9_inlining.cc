/**
 * @file
 * Regenerates Table 9: the five functions contributing the most
 * prologue+epilogue repetition, their static sizes (the inlining
 * trade-off), and how much of the prologue/epilogue repetition those
 * five cover.
 */

#include <cstdio>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Table 9: top prologue+epilogue contributors (inlining "
        "candidates)",
        "Sodani & Sohi ASPLOS'98, Table 9");

    for (auto &entry : bench::Suite::instance().entries()) {
        const auto top =
            entry.pipeline->local().topPrologueContributors(5);
        std::printf("%s:\n", entry.name.c_str());
        TextTable table;
        table.header(
            {"rank", "function", "static instrs", "share of "
             "pro+epi repetition"});
        double covered = 0.0;
        int rank = 1;
        for (const auto &c : top) {
            table.row({
                std::to_string(rank++),
                c.name,
                std::to_string(c.staticInstructions),
                TextTable::num(100.0 * c.share, 1) + "%",
            });
            covered += c.share;
        }
        std::fputs(table.render().c_str(), stdout);
        std::printf("coverage of top 5: %.0f%% (paper: 40%%, 66%%, "
                    "81%%, 59%%, 49%%, 60%%, 17%%, 100%% across the "
                    "eight benchmarks)\n\n",
                    100.0 * covered);
    }
    return 0;
}
