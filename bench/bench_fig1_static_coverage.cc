/**
 * @file
 * Regenerates Figure 1: the fraction of repeated static instructions
 * (sorted by contribution) needed to cover 10%..100% of the dynamic
 * repetition. The paper's headline: <20% of repeated statics cover
 * >90% of the repetition for all benchmarks except m88ksim.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Figure 1: static-instruction coverage of dynamic repetition",
        "Sodani & Sohi ASPLOS'98, Figure 1");

    const std::vector<double> targets = {0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9, 1.0};
    TextTable table;
    std::vector<std::string> header = {"bench"};
    for (double t : targets)
        header.push_back(TextTable::num(100 * t, 0) + "% rep");
    table.header(header);

    for (auto &entry : bench::Suite::instance().entries()) {
        const auto curve =
            entry.pipeline->tracker().staticCoverage(targets);
        std::vector<std::string> row = {entry.name};
        for (const auto &point : curve)
            row.push_back(
                TextTable::num(100.0 * point.contributors, 1) + "%");
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nEach cell: %% of repeated static instructions needed "
              "to cover that share of dynamic repetition.");
    return 0;
}
