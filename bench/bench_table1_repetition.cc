/**
 * @file
 * Regenerates Table 1: dynamic instructions and the fraction repeated;
 * static instructions, the fraction executed, and the fraction of
 * executed statics that repeat.
 */

#include <cstdio>

#include "harness/paper_reference.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using bench::paper::benchIndex;

int
main()
{
    bench::printHeader("Table 1: instruction repetition overview",
                       "Sodani & Sohi ASPLOS'98, Table 1");

    TextTable table;
    table.header({"bench", "dyn total", "repeat%", "paper",
                  "static total", "exec%", "paper", "rep% of exec",
                  "paper"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto stats = entry.pipeline->tracker().stats();
        const int p = benchIndex(entry.name);
        table.row({
            entry.name,
            TextTable::count(stats.dynTotal),
            TextTable::num(stats.pctDynRepeated()),
            TextTable::num(bench::paper::t1DynRepeatPct[size_t(p)]),
            TextTable::count(stats.staticTotal),
            TextTable::num(stats.pctStaticExecuted()),
            TextTable::num(bench::paper::t1StaticExecPct[size_t(p)]),
            TextTable::num(stats.pctStaticRepeatedOfExecuted()),
            TextTable::num(bench::paper::t1StaticRepeatPct[size_t(p)]),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
