/**
 * @file
 * Reproduces the paper's §3 methodology check: the overall local
 * analysis run over a short window matches a much longer window,
 * suggesting the short window samples steady-state behaviour. The
 * paper compared 1B-instruction windows against 10B-instruction runs;
 * we compare our default window against a 4x longer one.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/local_analysis.hh"
#include "harness/suite.hh"
#include "support/parallel.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Steady-state check: short vs long window, overall local "
        "analysis",
        "Sodani & Sohi ASPLOS'98, Section 3 (methodology validation)");

    bench::Suite &suite = bench::Suite::instance();
    TextTable table;
    table.header({"bench", "category", "short%", "long%", "|delta|"});

    core::PipelineConfig long_config;
    long_config.skipInstructions = suite.skip();
    long_config.windowInstructions = suite.window() * 4;
    // Repetition tracking is not needed for this check (as in the
    // paper, which is what made their 10B runs cheap); keep only
    // the local analysis.
    long_config.enableGlobal = false;
    long_config.enableFunction = false;
    long_config.enableReuse = false;

    // The 4x-window re-runs dominate this bench; run them in
    // parallel, one per workload, and print in suite order.
    const auto &entries = suite.entries();
    std::vector<bench::SuiteEntry> long_runs(entries.size());
    parallel::parallelFor(entries.size(), [&](size_t i) {
        long_runs[i] = bench::Suite::runOne(entries[i].name,
                                            long_config);
    });

    for (size_t i = 0; i < entries.size(); ++i) {
        const auto &entry = entries[i];
        const auto &short_stats = entry.pipeline->local().stats();
        const auto &long_stats = long_runs[i].pipeline->local().stats();
        double max_delta = 0.0;
        for (unsigned c = 0; c < core::numLocalCats; ++c) {
            const auto cat = core::LocalCat(c);
            const double s = short_stats.pctOverall(cat);
            const double l = long_stats.pctOverall(cat);
            max_delta = std::max(max_delta, std::fabs(s - l));
            if (std::fabs(s - l) >= 1.0 || c < 2) {
                table.row({
                    entry.name,
                    std::string(core::localCatName(cat)),
                    TextTable::num(s, 2),
                    TextTable::num(l, 2),
                    TextTable::num(std::fabs(s - l), 2),
                });
            }
        }
        table.row({entry.name, "max |delta| over all categories",
                   "", "", TextTable::num(max_delta, 2)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nSmall deltas = the short window samples steady-state "
              "behaviour, matching the paper's validation.");
    return 0;
}
