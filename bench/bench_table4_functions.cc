/**
 * @file
 * Regenerates Table 4: number of functions called, dynamic calls, and
 * the fraction of calls with all-argument / no-argument repetition.
 */

#include <cstdio>

#include "harness/paper_reference.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using bench::paper::benchIndex;

int
main()
{
    bench::printHeader("Table 4: function-level argument repetition",
                       "Sodani & Sohi ASPLOS'98, Table 4");

    TextTable table;
    table.header({"bench", "funcs", "dyn calls", "all-args rep%",
                  "paper", "no-args rep%", "paper"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto stats = entry.pipeline->functions().stats();
        const int p = benchIndex(entry.name);
        table.row({
            entry.name,
            TextTable::count(stats.staticFunctionsCalled),
            TextTable::count(stats.dynamicCalls),
            TextTable::num(stats.pctAllArgsRepeated()),
            TextTable::num(bench::paper::t4AllArgsPct[size_t(p)], 0),
            TextTable::num(stats.pctNoArgsRepeated(), 2),
            TextTable::num(bench::paper::t4NoArgsPct[size_t(p)], 2),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
