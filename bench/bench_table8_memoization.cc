/**
 * @file
 * Regenerates Table 8: the fraction of dynamic calls (and of
 * all-argument-repeated calls) to functions free of side effects and
 * implicit inputs — the memoization candidates.
 */

#include <cstdio>

#include "harness/paper_reference.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using bench::paper::benchIndex;

int
main()
{
    bench::printHeader(
        "Table 8: memoization candidates (no side effects / "
        "implicit inputs)",
        "Sodani & Sohi ASPLOS'98, Table 8");

    TextTable table;
    table.header({"bench", "% of all calls", "paper",
                  "% of all-arg-rep calls", "paper"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto stats = entry.pipeline->functions().memoStats();
        const int p = benchIndex(entry.name);
        table.row({
            entry.name,
            TextTable::num(stats.pctCleanOfAll(), 1),
            TextTable::num(bench::paper::t8CleanOfAllPct[size_t(p)], 1),
            TextTable::num(stats.pctCleanOfAllArgRep(), 1),
            TextTable::num(
                bench::paper::t8CleanOfAllArgRepPct[size_t(p)], 1),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe paper's headline: almost no calls are memoizable "
              "even though most have repeated arguments.");
    return 0;
}
