/**
 * @file
 * Extension (the paper's §7 comparison point): classic value
 * predictors mining the same repetition the reuse buffer captures.
 * For each benchmark we print last-value / stride / context (FCM)
 * prediction rates next to the reuse buffer's capture rate and the
 * total repetition bound from Table 1.
 */

#include <cstdio>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Extension: value prediction vs instruction reuse",
        "Sodani & Sohi ASPLOS'98, Section 7 (refs [8,9,10,14])");

    TextTable table;
    table.header({"bench", "last-value", "stride", "context(FCM)",
                  "reuse %all", "repetition bound"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto &pred = entry.pipeline->prediction();
        table.row({
            entry.name,
            TextTable::num(pred.lastValue().pctOfEligible()) + "%",
            TextTable::num(pred.stride().pctOfEligible()) + "%",
            TextTable::num(pred.context().pctOfEligible()) + "%",
            TextTable::num(
                entry.pipeline->reuse().stats().pctOfAll()) + "%",
            TextTable::num(entry.pipeline->tracker()
                               .stats()
                               .pctDynRepeated()) + "%",
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nPredictor columns: correctly predicted results as % "
              "of register-writing instructions. All mechanisms chase "
              "the same repetition; none reaches the Table 1 bound — "
              "the paper's closing argument for smarter structures.");
    return 0;
}
