/**
 * @file
 * Regenerates Table 10: repetition captured by an 8K-entry 4-way
 * set-associative reuse buffer, as % of all instructions and % of
 * repeated instructions.
 */

#include <cstdio>

#include "harness/paper_reference.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using bench::paper::benchIndex;

int
main()
{
    bench::printHeader(
        "Table 10: 8K-entry 4-way reuse buffer capture",
        "Sodani & Sohi ASPLOS'98, Table 10");

    TextTable table;
    table.header({"bench", "% of all inst", "paper",
                  "% of repeated inst", "paper"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto &stats = entry.pipeline->reuse().stats();
        const int p = benchIndex(entry.name);
        table.row({
            entry.name,
            TextTable::num(stats.pctOfAll()),
            TextTable::num(bench::paper::t10PctOfAll[size_t(p)]),
            TextTable::num(stats.pctOfRepeated()),
            TextTable::num(bench::paper::t10PctOfRepeated[size_t(p)]),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe paper's point: a fixed-size buffer captures "
              "clearly less than the total repetition of Table 1 — "
              "there is headroom for smarter management.");
    return 0;
}
