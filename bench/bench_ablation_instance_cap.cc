/**
 * @file
 * Ablation (ours): sensitivity of the measured repetition to the
 * per-static-instruction unique-instance buffer cap. The paper fixed
 * the cap at 2000 without studying it; this sweep shows how much
 * repetition a smaller tracker would miss — context both for the
 * paper's methodology and for sizing reuse/prediction structures.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "support/parallel.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Ablation: unique-instance buffer cap vs measured repetition",
        "methodology knob behind every table (paper fixed cap=2000)");

    const std::vector<unsigned> caps = {1, 4, 16, 64, 256, 2000};
    bench::Suite &suite = bench::Suite::instance();

    TextTable table;
    std::vector<std::string> header = {"bench"};
    for (unsigned cap : caps)
        header.push_back("cap=" + std::to_string(cap));
    table.header(header);

    // The sweep is a grid of independent runs: flatten (workload,
    // cap) pairs, run them all in parallel, print in grid order.
    const auto &entries = suite.entries();
    std::vector<double> repeated(entries.size() * caps.size());
    parallel::parallelFor(repeated.size(), [&](size_t i) {
        core::PipelineConfig config;
        config.skipInstructions = suite.skip();
        config.windowInstructions = suite.window();
        config.instanceCap = caps[i % caps.size()];
        config.enableGlobal = false;
        config.enableLocal = false;
        config.enableFunction = false;
        config.enableReuse = false;
        auto run = bench::Suite::runOne(
            entries[i / caps.size()].name, config);
        repeated[i] = run.pipeline->tracker().stats().pctDynRepeated();
    });

    for (size_t e = 0; e < entries.size(); ++e) {
        std::vector<std::string> row = {entries[e].name};
        for (size_t c = 0; c < caps.size(); ++c)
            row.push_back(
                TextTable::num(repeated[e * caps.size() + c]));
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nEach cell: % of dynamic instructions classified "
              "repeated at that cap.");
    return 0;
}
