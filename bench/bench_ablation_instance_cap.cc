/**
 * @file
 * Ablation (ours): sensitivity of the measured repetition to the
 * per-static-instruction unique-instance buffer cap. The paper fixed
 * the cap at 2000 without studying it; this sweep shows how much
 * repetition a smaller tracker would miss — context both for the
 * paper's methodology and for sizing reuse/prediction structures.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Ablation: unique-instance buffer cap vs measured repetition",
        "methodology knob behind every table (paper fixed cap=2000)");

    const std::vector<unsigned> caps = {1, 4, 16, 64, 256, 2000};
    bench::Suite &suite = bench::Suite::instance();

    TextTable table;
    std::vector<std::string> header = {"bench"};
    for (unsigned cap : caps)
        header.push_back("cap=" + std::to_string(cap));
    table.header(header);

    for (auto &entry : suite.entries()) {
        std::vector<std::string> row = {entry.name};
        for (unsigned cap : caps) {
            core::PipelineConfig config;
            config.skipInstructions = suite.skip();
            config.windowInstructions = suite.window();
            config.instanceCap = cap;
            config.enableGlobal = false;
            config.enableLocal = false;
            config.enableFunction = false;
            config.enableReuse = false;
            auto run = bench::Suite::runOne(entry.name, config);
            row.push_back(TextTable::num(
                run.pipeline->tracker().stats().pctDynRepeated()));
        }
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nEach cell: % of dynamic instructions classified "
              "repeated at that cap.");
    return 0;
}
