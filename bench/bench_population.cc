/**
 * @file
 * Extension (beyond the paper's 8 hand-picked SPEC'95 binaries): the
 * same headline repetition metrics measured across a *population* of
 * generated MiniC programs, reported as distributions — median,
 * distribution-free 95% CI, quartiles, extremes — plus where each
 * paper workload lands inside that population. This is the
 * `irep bench --generated N` study in bench-binary form so the
 * EXPERIMENTS.md regeneration loop (`for b in build/bench/bench_*`)
 * emits it alongside the per-table experiments.
 *
 * Knobs: IREP_POP (population size, default 1000), IREP_POP_SEED
 * (seed of program 0, default 1), IREP_WINDOW (per-program window,
 * default 4M — generated programs usually halt far earlier), and the
 * usual IREP_TRACE_DIR cache (each program is simulated once, ever).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/population.hh"
#include "harness/suite.hh"
#include "support/parse.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Extension: population-scale repetition (generated programs)",
        "Sodani & Sohi ASPLOS'98 measured 8 binaries; this is the "
        "same study over a generated population");

    bench::PopulationConfig config;
    config.count =
        uint32_t(parse::envU64("IREP_POP", 1000));
    config.popSeed = parse::envU64("IREP_POP_SEED", 1);
    config.pipeline.skipInstructions = 0;
    config.pipeline.windowInstructions =
        parse::envU64("IREP_WINDOW", 4'000'000);
    bench::PopulationSuite suite(config);

    std::printf("-- %u generated programs (seeds %llu..%llu), "
                "per-metric distribution --\n",
                unsigned(config.count),
                (unsigned long long)config.popSeed,
                (unsigned long long)(config.popSeed + config.count - 1));
    std::fputs(suite.renderTable().c_str(), stdout);

    // Where do the paper's workloads sit inside the population?
    // Percentile rank of each workload's repetition rate against the
    // generated corpus — "are the hand-picked benchmarks typical?"
    size_t slot = 0;
    const auto &names = suite.metricNames();
    for (size_t j = 0; j < names.size(); ++j) {
        if (names[j] == "repetition/pct_dyn_repeated")
            slot = j;
    }
    std::vector<double> population;
    for (const auto &r : suite.results())
        population.push_back(r.metrics[slot]);
    std::sort(population.begin(), population.end());

    std::printf("\n-- paper workloads vs the population "
                "(dynamic repetition) --\n");
    TextTable table;
    table.header({"bench", "repeat%", "population percentile"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const double v =
            entry.pipeline->tracker().stats().pctDynRepeated();
        const auto below = std::lower_bound(population.begin(),
                                            population.end(), v);
        const double pct = 100.0 *
            double(below - population.begin()) /
            double(population.size());
        table.row({entry.name, TextTable::num(v),
                   TextTable::num(pct, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
    std::puts("Reading guide: the workload suite sits in the upper "
              "half of the population — hand-written kernels loop "
              "harder than arbitrary programs — while the population "
              "floor shows repetition survives even in branchy, "
              "straight-line-heavy code.");
    return 0;
}
