/**
 * @file
 * Extension (named but not run in the paper, §2): the total analysis
 * per instruction class — how much of the dynamic stream each class
 * is, its repetition propensity, and its share of all repetition.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/class_analysis.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using core::InstrClass;

int
main()
{
    bench::printHeader(
        "Extension: repetition by instruction class",
        "Sodani & Sohi ASPLOS'98, Section 2 (proposed, not reported)");

    for (const char *metric : {"share of stream", "propensity",
                               "share of repetition"}) {
        std::printf("-- %s --\n", metric);
        TextTable table;
        std::vector<std::string> header = {"bench"};
        for (unsigned c = 0; c < core::numInstrClasses; ++c)
            header.push_back(
                std::string(core::instrClassName(InstrClass(c))));
        table.header(header);
        for (auto &entry : bench::Suite::instance().entries()) {
            const auto &stats = entry.pipeline->classes().stats();
            std::vector<std::string> row = {entry.name};
            for (unsigned c = 0; c < core::numInstrClasses; ++c) {
                double v = 0;
                if (std::string(metric) == "share of stream")
                    v = stats.pctOfAll(InstrClass(c));
                else if (std::string(metric) == "propensity")
                    v = stats.propensity(InstrClass(c));
                else
                    v = stats.pctOfRepetition(InstrClass(c));
                row.push_back(TextTable::num(v));
            }
            table.row(row);
        }
        std::fputs(table.render().c_str(), stdout);
        std::puts("");
    }
    std::puts("Reading guide: classes with high propensity but a low "
              "stream share (jumps, branches) are cheap reuse-buffer "
              "wins; loads repeat less than ALU ops because memory "
              "state changes under them.");
    return 0;
}
