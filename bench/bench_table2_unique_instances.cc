/**
 * @file
 * Regenerates Table 2: the number of unique repeatable instances and
 * the average number of times each is repeated.
 */

#include <cstdio>

#include "harness/paper_reference.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using bench::paper::benchIndex;

int
main()
{
    bench::printHeader("Table 2: unique repeatable instances",
                       "Sodani & Sohi ASPLOS'98, Table 2");

    TextTable table;
    table.header({"bench", "count", "paper(1B window)", "avg repeats",
                  "paper"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto stats = entry.pipeline->tracker().stats();
        const int p = benchIndex(entry.name);
        table.row({
            entry.name,
            TextTable::count(stats.uniqueRepeatableInstances),
            TextTable::count(
                bench::paper::t2UniqueInstances[size_t(p)]),
            TextTable::num(stats.avgRepeatsPerInstance, 0),
            TextTable::num(bench::paper::t2AvgRepeats[size_t(p)], 0),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nNote: counts scale with the window length; compare "
              "avg-repeat ordering and count magnitudes relative to "
              "window size, not absolute counts.");
    return 0;
}
