/**
 * @file
 * google-benchmark microbenchmarks for the hot structures: the bare
 * simulator, the repetition tracker, the reuse buffer, and the full
 * pipeline — documents the throughput cost of each analysis layer.
 */

#include <benchmark/benchmark.h>

#include "core/pipeline.hh"
#include "minicc/compiler.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace irep;

namespace
{

const workloads::Workload &
bm_workload()
{
    return workloads::workloadByName("compress");
}

void
BM_SimulatorOnly(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        machine.run(uint64_t(state.range(0)));
        benchmark::DoNotOptimize(machine.instret());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_TrackerPipeline(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        core::PipelineConfig config;
        config.windowInstructions = uint64_t(state.range(0));
        config.enableGlobal = false;
        config.enableLocal = false;
        config.enableFunction = false;
        config.enableReuse = false;
        core::AnalysisPipeline pipeline(machine, config);
        benchmark::DoNotOptimize(pipeline.run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_FullPipeline(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        core::PipelineConfig config;
        config.windowInstructions = uint64_t(state.range(0));
        core::AnalysisPipeline pipeline(machine, config);
        benchmark::DoNotOptimize(pipeline.run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_CompileWorkload(benchmark::State &state)
{
    for (auto _ : state) {
        auto program =
            minicc::compileToProgram(bm_workload().source);
        benchmark::DoNotOptimize(program.text.size());
    }
}

} // namespace

BENCHMARK(BM_SimulatorOnly)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrackerPipeline)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullPipeline)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileWorkload)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
