/**
 * @file
 * google-benchmark microbenchmarks for the hot structures: the bare
 * simulator (the skip-phase fast path), the repetition tracker, the
 * full pipeline, and the per-layer primitives underneath them —
 * memory translation, observer dispatch, and flat-map probes —
 * documenting the throughput cost of each layer.
 */

#include <cstdio>
#include <unistd.h>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "core/repetition_tracker.hh"
#include "minicc/compiler.hh"
#include "sim/machine.hh"
#include "support/flat_map.hh"
#include "support/hash.hh"
#include "trace_io/format.hh"
#include "trace_io/writer.hh"
#include "workloads/workloads.hh"

using namespace irep;

namespace
{

const workloads::Workload &
bm_workload()
{
    return workloads::workloadByName("compress");
}

void
BM_SimulatorOnly(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        machine.run(uint64_t(state.range(0)));
        benchmark::DoNotOptimize(machine.instret());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

/** The same skip-phase fast path through the block-cache backend:
 *  pre-decoded superblocks, threaded dispatch, direct chaining. */
void
BM_SimulatorOnly_BBCache(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setExecBackend(sim::ExecBackend::BBCache);
        machine.setInput(bm_workload().input);
        machine.run(uint64_t(state.range(0)));
        benchmark::DoNotOptimize(machine.instret());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

/**
 * Translation churn: a store-heavy self-modifying loop keeps every
 * block's page generation stale, so the cache retranslates on each
 * re-entry — the worst case for translation overhead, bounding what a
 * pathological workload could cost relative to the interpreter.
 */
void
BM_BBCacheTranslationChurn(benchmark::State &state)
{
    // The loop stores into its own text page every iteration.
    static const char *const churn =
        "main:\n"
        "  lui $t3, 0x0040\n"
        "  li  $t0, 0\n"
        "loop:\n"
        "  sw  $t0, 0($t3)\n"
        "  addiu $t1, $t1, 3\n"
        "  xor $t2, $t1, $t0\n"
        "  addiu $t0, $t0, 1\n"
        "  bne $t0, $t4, loop\n"
        "  li $v0, 1\n"
        "  move $a0, $zero\n"
        "  syscall\n";
    const assem::Program prog = assem::assemble(churn);
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setExecBackend(sim::ExecBackend::BBCache);
        machine.run(uint64_t(state.range(0)));
        benchmark::DoNotOptimize(machine.instret());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

/**
 * The `irep record` hot loop: the machine runs observed with a
 * TraceWriter encoding every retire. Recording wall clock is
 * dominated by this path (observed execution + per-record varint
 * encoding), not by the simulator backend, so this pins the writer's
 * records/s alongside the simulator-only numbers above.
 */
void
BM_TraceWrite(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    const std::string path =
        "/tmp/irep_bm_trace_" + std::to_string(::getpid()) +
        ".irtrace";
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setExecBackend(sim::ExecBackend::BBCache);
        machine.setInput(bm_workload().input);
        trace_io::TraceWriter writer(path, machine,
                                     bm_workload().input, 0,
                                     uint64_t(state.range(0)));
        machine.addObserver(&writer);
        machine.run(uint64_t(state.range(0)));
        machine.removeObserver(&writer);
        writer.commit();
        benchmark::DoNotOptimize(writer.bytesWritten());
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

/**
 * One block's worth of real encoded trace payload, built once: a
 * million retires of the compress workload recorded under the Store
 * codec, so the bytes are the exact varint stream the block codecs
 * see in production — not synthetic noise, whose entropy would make
 * every ratio meaningless.
 */
const std::vector<uint8_t> &
bm_tracePayload()
{
    static const std::vector<uint8_t> payload = [] {
        const auto &prog = workloads::buildProgram(bm_workload());
        const std::string path =
            "/tmp/irep_bm_codec_" + std::to_string(::getpid()) +
            ".irtrace";
        sim::Machine machine(prog);
        machine.setExecBackend(sim::ExecBackend::BBCache);
        machine.setInput(bm_workload().input);
        trace_io::TraceWriterOptions options;
        options.codec = trace_io::Codec::Store;
        trace_io::TraceWriter writer(path, machine,
                                     bm_workload().input, 0,
                                     1u << 20, options);
        machine.addObserver(&writer);
        machine.run(1u << 20);
        machine.removeObserver(&writer);
        writer.commit();
        std::vector<uint8_t> bytes;
        if (FILE *f = std::fopen(path.c_str(), "rb")) {
            std::fseek(f, 0, SEEK_END);
            bytes.resize(size_t(std::ftell(f)));
            std::fseek(f, 0, SEEK_SET);
            if (std::fread(bytes.data(), 1, bytes.size(), f) !=
                bytes.size())
                bytes.clear();
            std::fclose(f);
        }
        std::remove(path.c_str());
        // Trim to one block's worth — what codecCompress sees.
        if (bytes.size() > trace_io::blockTarget) {
            bytes.erase(bytes.begin(),
                        bytes.begin() + sizeof(trace_io::TraceHeader));
            bytes.resize(trace_io::blockTarget);
        }
        return bytes;
    }();
    return payload;
}

/** Codec compression throughput on real trace payload; the reported
 *  `ratio` counter is stored/raw. */
void
BM_CodecCompress(benchmark::State &state)
{
    const trace_io::Codec codec = trace_io::Codec(state.range(0));
    const std::vector<uint8_t> &raw = bm_tracePayload();
    std::vector<uint8_t> dst(raw.size() + raw.size() / 2 + 4096);
    size_t stored = 0;
    for (auto _ : state) {
        stored = trace_io::codecCompress(codec, raw.data(),
                                         raw.size(), dst.data(),
                                         dst.size());
        benchmark::DoNotOptimize(stored);
    }
    state.SetBytesProcessed(int64_t(state.iterations() * raw.size()));
    state.counters["ratio"] =
        raw.empty() ? 0.0 : double(stored) / double(raw.size());
    state.SetLabel(trace_io::codecName(codec));
}

void
BM_CodecDecompress(benchmark::State &state)
{
    const trace_io::Codec codec = trace_io::Codec(state.range(0));
    const std::vector<uint8_t> &raw = bm_tracePayload();
    std::vector<uint8_t> stored(raw.size() + raw.size() / 2 + 4096);
    const size_t storedBytes = trace_io::codecCompress(
        codec, raw.data(), raw.size(), stored.data(), stored.size());
    std::vector<uint8_t> out(raw.size());
    for (auto _ : state) {
        const bool ok = trace_io::codecDecompress(
            codec, stored.data(), storedBytes, out.data(),
            out.size());
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(int64_t(state.iterations() * raw.size()));
    state.SetLabel(trace_io::codecName(codec));
}

void
BM_TrackerPipeline(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        core::PipelineConfig config;
        config.windowInstructions = uint64_t(state.range(0));
        config.enableGlobal = false;
        config.enableLocal = false;
        config.enableFunction = false;
        config.enableReuse = false;
        core::AnalysisPipeline pipeline(machine, config);
        benchmark::DoNotOptimize(pipeline.run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_FullPipeline(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        core::PipelineConfig config;
        config.windowInstructions = uint64_t(state.range(0));
        core::AnalysisPipeline pipeline(machine, config);
        benchmark::DoNotOptimize(pipeline.run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_CompileWorkload(benchmark::State &state)
{
    for (auto _ : state) {
        auto program =
            minicc::compileToProgram(bm_workload().source);
        benchmark::DoNotOptimize(program.text.size());
    }
}

/** The skip phase proper: observers attached but counting disabled. */
void
BM_PipelineSkipPhase(benchmark::State &state)
{
    const auto &prog = workloads::buildProgram(bm_workload());
    for (auto _ : state) {
        sim::Machine machine(prog);
        machine.setInput(bm_workload().input);
        core::PipelineConfig config;
        config.skipInstructions = uint64_t(state.range(0));
        config.windowInstructions = 1;
        core::AnalysisPipeline pipeline(machine, config);
        benchmark::DoNotOptimize(pipeline.run());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

/** Raw memory-translation throughput: strided 32-bit loads. */
void
BM_MemoryRead32(benchmark::State &state)
{
    sim::Memory mem;
    mem.pin(0x10000000, 1 << 20);
    uint32_t addr = 0x10000000;
    uint32_t sum = 0;
    for (auto _ : state) {
        sum += mem.read32(0x10000000 + (addr & 0xffffc));
        addr += 64;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}

/** Tracker insert/probe on a synthetic stream: @p range(0) statics,
 *  each cycling through range(1) distinct instances. */
void
BM_TrackerOnInstr(benchmark::State &state)
{
    const uint32_t num_static = uint32_t(state.range(0));
    const uint32_t instances = uint32_t(state.range(1));
    core::RepetitionTracker tracker(num_static);
    isa::Instruction inst = isa::decode(0x00430820);    // add $1,$2,$3
    sim::InstrRecord rec;
    rec.inst = &inst;
    rec.numSrcRegs = 2;
    uint64_t n = 0;
    for (auto _ : state) {
        rec.staticIndex = uint32_t(n) % num_static;
        rec.srcVal[0] = uint32_t(n) % instances;
        rec.srcVal[1] = 7;
        rec.result = rec.srcVal[0] + 7;
        benchmark::DoNotOptimize(tracker.onInstr(rec));
        ++n;
    }
    state.SetItemsProcessed(state.iterations());
}

/** FlatMap vs std::unordered_map probe throughput on hot keys. */
template <typename Map>
void
mapProbeLoop(benchmark::State &state)
{
    Map map;
    std::mt19937_64 rng(42);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 512; ++i) {
        keys.push_back(hashMix(0, rng()));
        map[keys.back()] = uint64_t(i);
    }
    uint64_t sum = 0;
    size_t at = 0;
    for (auto _ : state) {
        sum += map[keys[at]];
        at = (at + 1) & 511;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}

void
BM_FlatMapProbe(benchmark::State &state)
{
    mapProbeLoop<FlatMap<uint64_t, uint64_t, IdentityHash>>(state);
}

void
BM_UnorderedMapProbe(benchmark::State &state)
{
    mapProbeLoop<std::unordered_map<uint64_t, uint64_t>>(state);
}

} // namespace

BENCHMARK(BM_SimulatorOnly)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SimulatorOnly_BBCache)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BBCacheTranslationChurn)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceWrite)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
// One registration per available codec: probe availability instead
// of hardcoding the zstd build flavor.
namespace
{
const bool codecBenchmarksRegistered = [] {
    for (trace_io::Codec codec :
         {trace_io::Codec::IrepLz, trace_io::Codec::Zstd}) {
        if (!trace_io::codecAvailable(codec))
            continue;
        const std::string name = trace_io::codecName(codec);
        benchmark::RegisterBenchmark(
            ("BM_CodecCompress/" + name).c_str(), BM_CodecCompress)
            ->Arg(int64_t(codec))
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("BM_CodecDecompress/" + name).c_str(),
            BM_CodecDecompress)
            ->Arg(int64_t(codec))
            ->Unit(benchmark::kMillisecond);
    }
    return true;
}();
} // namespace
BENCHMARK(BM_TrackerPipeline)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullPipeline)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileWorkload)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PipelineSkipPhase)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MemoryRead32);
BENCHMARK(BM_TrackerOnInstr)->Args({1024, 4})->Args({1024, 1024});
BENCHMARK(BM_FlatMapProbe);
BENCHMARK(BM_UnorderedMapProbe);

BENCHMARK_MAIN();
