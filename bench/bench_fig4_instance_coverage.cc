/**
 * @file
 * Regenerates Figure 4: the fraction of unique repeatable instances
 * (sorted by repeat count) needed to cover 25%..100% of the dynamic
 * repetition. The paper's headline: <30% of instances cover >75% of
 * the repetition in most benchmarks.
 */

#include <cstdio>
#include <vector>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Figure 4: unique-instance coverage of dynamic repetition",
        "Sodani & Sohi ASPLOS'98, Figure 4");

    const std::vector<double> targets = {0.25, 0.5, 0.75, 0.9, 1.0};
    TextTable table;
    std::vector<std::string> header = {"bench"};
    for (double t : targets)
        header.push_back(TextTable::num(100 * t, 0) + "% rep");
    table.header(header);

    for (auto &entry : bench::Suite::instance().entries()) {
        const auto curve =
            entry.pipeline->tracker().instanceCoverage(targets);
        std::vector<std::string> row = {entry.name};
        for (const auto &point : curve)
            row.push_back(
                TextTable::num(100.0 * point.contributors, 1) + "%");
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nEach cell: %% of unique repeatable instances needed "
              "to cover that share of dynamic repetition.");
    return 0;
}
