/** @file Regenerates Table 5: local analysis, % of all dynamic
 *  instructions per within-function category. */
#define LOCAL_TITLE "Table 5: local analysis, overall breakdown"
#define LOCAL_PAPER_REF "Sodani & Sohi ASPLOS'98, Table 5"
#define LOCAL_METRIC &irep::core::LocalStats::pctOverall
#define LOCAL_PAPER_TABLE irep::bench::paper::t5Overall
#include "bench_local_tables.inc"
