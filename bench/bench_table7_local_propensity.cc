/** @file Regenerates Table 7: local analysis, propensity of each
 *  category for repetition. */
#define LOCAL_TITLE "Table 7: local analysis, propensity"
#define LOCAL_PAPER_REF "Sodani & Sohi ASPLOS'98, Table 7"
#define LOCAL_METRIC &irep::core::LocalStats::propensity
#define LOCAL_PAPER_TABLE irep::bench::paper::t7Propensity
#include "bench_local_tables.inc"
