/** @file Regenerates Table 6: local analysis, % of all repeated
 *  dynamic instructions per within-function category. */
#define LOCAL_TITLE "Table 6: local analysis, repetition breakdown"
#define LOCAL_PAPER_REF "Sodani & Sohi ASPLOS'98, Table 6"
#define LOCAL_METRIC &irep::core::LocalStats::pctRepeated
#define LOCAL_PAPER_TABLE irep::bench::paper::t6Repeated
#include "bench_local_tables.inc"
