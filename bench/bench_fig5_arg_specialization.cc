/**
 * @file
 * Regenerates Figure 5: the share of all-argument repetition covered
 * when every function is specialized for its 1..5 most frequent
 * argument tuples. The paper quotes top-1 coverage of 5% (go), 42%
 * (perl), 17% (vortex), 7% (gcc), and notes that even top-5 rarely
 * exceeds 50%.
 */

#include <cstdio>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Figure 5: all-arg repetition covered by top argument sets",
        "Sodani & Sohi ASPLOS'98, Figure 5");

    TextTable table;
    table.header({"bench", "top-1", "top-2", "top-3", "top-4",
                  "top-5"});
    for (auto &entry : bench::Suite::instance().entries()) {
        std::vector<std::string> row = {entry.name};
        for (unsigned k = 1; k <= 5; ++k) {
            row.push_back(TextTable::num(
                100.0 * entry.pipeline->functions().argSetCoverage(k),
                1) + "%");
        }
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nPaper top-1 reference: go 5%, perl 42%, vortex 17%, "
              "gcc 7%.");
    return 0;
}
