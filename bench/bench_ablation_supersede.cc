/**
 * @file
 * Ablation (ours): how much does the supersede rule matter? The paper
 * resolves meeting slices in favor of the least repeatable source
 * (external >s global-init >s internal >s uninit). This bench re-runs
 * the global analysis with the rule inverted and prints both Table 3
 * "overall" breakdowns; the gap measures how often slices actually
 * meet with different tags.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/global_taint.hh"
#include "core/repetition_tracker.hh"
#include "harness/suite.hh"
#include "sim/machine.hh"
#include "support/parallel.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace irep;
using core::GlobalTag;

namespace
{

core::GlobalTaintStats
runTaint(const std::string &name, bool inverted, uint64_t skip,
         uint64_t window)
{
    const auto &w = workloads::workloadByName(name);
    sim::Machine machine(workloads::buildProgram(w));
    machine.setInput(w.input);

    struct Observer : sim::Observer
    {
        Observer(const assem::Program &p, uint32_t n)
            : taint(p), tracker(n)
        {}
        void
        onRetire(const sim::InstrRecord &rec) override
        {
            const bool repeated =
                counting ? tracker.onInstr(rec) : false;
            taint.onInstr(rec, repeated);
        }
        void
        onSyscall(const sim::SyscallRecord &rec) override
        {
            taint.onSyscall(rec);
        }
        core::GlobalTaint taint;
        core::RepetitionTracker tracker;
        bool counting = false;
    } obs(machine.program(), machine.numStaticInstructions());

    obs.taint.setInvertedSupersede(inverted);
    machine.addObserver(&obs);
    machine.run(skip);
    obs.taint.setCounting(true);
    obs.counting = true;
    machine.run(window);
    return obs.taint.stats();
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: supersede-rule direction in the global analysis",
        "Sodani & Sohi ASPLOS'98, Section 5.1 (rule definition)");

    bench::Suite &suite = bench::Suite::instance();
    TextTable table;
    table.header({"bench", "rule", "internals", "glb init",
                  "external", "uninit"});
    const std::vector<std::string> names = {
        "go", "m88ksim", "ijpeg", "perl", "vortex", "li", "gcc",
        "compress"};

    // 8 workloads x 2 rule directions, all independent: run the grid
    // in parallel and print rows in the fixed order.
    std::vector<core::GlobalTaintStats> results(names.size() * 2);
    parallel::parallelFor(results.size(), [&](size_t i) {
        results[i] = runTaint(names[i / 2], i % 2 != 0, suite.skip(),
                              suite.window());
    });

    for (size_t i = 0; i < results.size(); ++i) {
        const auto &stats = results[i];
        table.row({
            names[i / 2],
            i % 2 ? "inverted" : "paper",
            TextTable::num(stats.pctOverall(GlobalTag::Internal)),
            TextTable::num(stats.pctOverall(GlobalTag::GlobalInit)),
            TextTable::num(stats.pctOverall(GlobalTag::External)),
            TextTable::num(stats.pctOverall(GlobalTag::Uninit)),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nLarge paper-vs-inverted gaps = many instructions sit "
              "where slices of different origin meet, i.e. the rule "
              "choice materially shapes Table 3.");
    return 0;
}
