/**
 * @file
 * Regenerates Figure 3: the contribution to total dynamic repetition
 * of static instructions grouped by their number of unique repeatable
 * instances (1, 2-10, 11-100, 101-1000, >1000). The paper's headline:
 * repetition is not limited to instructions with few unique
 * instances.
 */

#include <cstdio>
#include <string>

#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;

int
main()
{
    bench::printHeader(
        "Figure 3: repetition by unique-repeatable-instance count",
        "Sodani & Sohi ASPLOS'98, Figure 3");

    TextTable table;
    table.header({"bench", "1", "2-10", "11-100", "101-1000",
                  ">1000"});
    for (auto &entry : bench::Suite::instance().entries()) {
        const auto buckets =
            entry.pipeline->tracker().instanceBuckets();
        std::vector<std::string> row = {entry.name};
        for (const auto &b : buckets)
            row.push_back(TextTable::num(100.0 * b.share, 1) + "%");
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nPaper reference points: instructions with 101-1000 "
              "unique instances account for 47% (ijpeg), 28% (li), "
              "28% (vortex) of repetition.");
    return 0;
}
