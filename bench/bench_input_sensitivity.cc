/**
 * @file
 * Reproduces the paper's §3 input-sensitivity check: "We ran similar
 * experiments using other program inputs ... and found similar trends
 * with the second set of inputs." Every workload runs under both its
 * primary and alternate input; the repetition headline (Table 1) and
 * the global-analysis breakdown (Table 3) are printed side by side.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/pipeline.hh"
#include "harness/suite.hh"
#include "sim/machine.hh"
#include "support/parallel.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace irep;
using core::GlobalTag;

namespace
{

struct Row
{
    double repeatPct;
    double internals;
    double globalInit;
    double external;
    double allArgsPct;
};

Row
measure(const workloads::Workload &workload, const std::string &input,
        uint64_t skip, uint64_t window)
{
    sim::Machine machine(workloads::buildProgram(workload));
    machine.setInput(input);
    core::PipelineConfig config;
    config.skipInstructions = skip;
    config.windowInstructions = window;
    config.enableLocal = false;
    config.enableReuse = false;
    config.enableClass = false;
    config.enableValuePrediction = false;
    core::AnalysisPipeline pipeline(machine, config);
    pipeline.run();
    Row row;
    row.repeatPct = pipeline.tracker().stats().pctDynRepeated();
    row.internals =
        pipeline.taint().stats().pctOverall(GlobalTag::Internal);
    row.globalInit =
        pipeline.taint().stats().pctOverall(GlobalTag::GlobalInit);
    row.external =
        pipeline.taint().stats().pctOverall(GlobalTag::External);
    row.allArgsPct =
        pipeline.functions().stats().pctAllArgsRepeated();
    return row;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Input sensitivity: primary vs alternate input set",
        "Sodani & Sohi ASPLOS'98, Section 3 (robustness check)");

    bench::Suite &suite = bench::Suite::instance();
    TextTable table;
    table.header({"bench", "input", "repeat%", "internals%",
                  "glb-init%", "external%", "all-args%"});

    // Every (workload, input) run is independent: measure them all in
    // parallel, indexed so the table stays in canonical order.
    const auto &all = workloads::allWorkloads();
    std::vector<Row> rows(all.size() * 2);
    parallel::parallelFor(rows.size(), [&](size_t i) {
        const workloads::Workload &w = all[i / 2];
        rows[i] = measure(w, i % 2 ? w.altInput : w.input,
                          suite.skip(), suite.window());
    });

    for (size_t i = 0; i < all.size(); ++i) {
        const Row &a = rows[i * 2];
        const Row &b = rows[i * 2 + 1];
        const std::string &name = all[i].name;
        table.row({name, "primary", TextTable::num(a.repeatPct),
                   TextTable::num(a.internals),
                   TextTable::num(a.globalInit),
                   TextTable::num(a.external),
                   TextTable::num(a.allArgsPct)});
        table.row({name, "alternate", TextTable::num(b.repeatPct),
                   TextTable::num(b.internals),
                   TextTable::num(b.globalInit),
                   TextTable::num(b.external),
                   TextTable::num(b.allArgsPct)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe paper's claim holds when the two rows of each "
              "benchmark tell the same story: repetition is a "
              "property of the program, not the input.");
    return 0;
}
