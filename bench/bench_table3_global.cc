/**
 * @file
 * Regenerates Table 3: the global analysis — overall, repeated, and
 * propensity percentages per input-source category (program
 * internals, global initialized data, external input, uninit).
 */

#include <cstdio>
#include <string>

#include "core/global_taint.hh"
#include "harness/paper_reference.hh"
#include "harness/suite.hh"
#include "support/table.hh"

using namespace irep;
using bench::paper::benchIndex;
using core::GlobalTag;

namespace
{

// Table 3 row order in the paper.
constexpr GlobalTag rowOrder[4] = {
    GlobalTag::Internal,
    GlobalTag::GlobalInit,
    GlobalTag::External,
    GlobalTag::Uninit,
};

// paper_reference row index for each displayed row.
constexpr int paperRow[4] = {0, 1, 2, 3};

void
section(const char *title,
        double (core::GlobalTaintStats::*metric)(GlobalTag) const,
        const std::array<std::array<double, 8>, 4> &paper_table)
{
    std::printf("-- %s --\n", title);
    TextTable table;
    std::vector<std::string> header = {"category"};
    for (auto &entry : bench::Suite::instance().entries()) {
        header.push_back(entry.name);
        header.push_back("(paper)");
    }
    table.header(header);
    for (int r = 0; r < 4; ++r) {
        std::vector<std::string> row = {
            std::string(core::globalTagName(rowOrder[r]))};
        for (auto &entry : bench::Suite::instance().entries()) {
            const auto &stats = entry.pipeline->taint().stats();
            const int p = benchIndex(entry.name);
            row.push_back(TextTable::num((stats.*metric)(rowOrder[r])));
            row.push_back(TextTable::num(
                paper_table[size_t(paperRow[r])][size_t(p)]));
        }
        table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
}

} // namespace

int
main()
{
    bench::printHeader(
        "Table 3: global analysis (sources of input data)",
        "Sodani & Sohi ASPLOS'98, Table 3");

    section("Overall: % of all dynamic instructions",
            &core::GlobalTaintStats::pctOverall,
            bench::paper::t3Overall);
    section("Repeated: % of all repeated dynamic instructions",
            &core::GlobalTaintStats::pctRepeated,
            bench::paper::t3Repeated);
    section("Propensity: % of each category that repeated",
            &core::GlobalTaintStats::propensity,
            bench::paper::t3Propensity);
    return 0;
}
