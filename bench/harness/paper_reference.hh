/**
 * @file
 * The paper's reported numbers (Sodani & Sohi, ASPLOS 1998), keyed by
 * SPEC '95 benchmark name, printed next to our measurements so each
 * bench binary is a self-contained paper-vs-measured comparison.
 * Order everywhere: go, m88ksim, ijpeg, perl, vortex, li, gcc,
 * compress (the paper's table order).
 */

#ifndef IREP_BENCH_PAPER_REFERENCE_HH
#define IREP_BENCH_PAPER_REFERENCE_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace irep::bench::paper
{

constexpr int numBenches = 8;

constexpr std::array<std::string_view, numBenches> benchOrder = {
    "go", "m88ksim", "ijpeg", "perl", "vortex", "li", "gcc",
    "compress",
};

/** Index of a benchmark in the canonical order, or -1. */
constexpr int
benchIndex(std::string_view name)
{
    for (int i = 0; i < numBenches; ++i) {
        if (benchOrder[size_t(i)] == name)
            return i;
    }
    return -1;
}

// ----- Table 1: repetition overview ---------------------------------
constexpr std::array<double, numBenches> t1DynRepeatPct = {
    85.2, 98.8, 79.3, 84.2, 93.2, 77.8, 75.5, 56.9};
constexpr std::array<double, numBenches> t1StaticExecPct = {
    62.9, 4.5, 25.4, 22.3, 28.3, 23.6, 39.5, 13.1};
constexpr std::array<double, numBenches> t1StaticRepeatPct = {
    93.4, 97.7, 98.1, 65.6, 93.5, 92.0, 87.7, 66.3};

// ----- Table 2: unique repeatable instances --------------------------
constexpr std::array<uint64_t, numBenches> t2UniqueInstances = {
    3947406, 74628, 1672546, 330120, 1922845, 743530, 8947200,
    263747};
constexpr std::array<double, numBenches> t2AvgRepeats = {
    216, 13232, 447, 1416, 485, 1046, 36, 2155};

// ----- Table 3: global analysis (rows: internals, global init,
//       external input, uninit) --------------------------------------
constexpr std::array<std::array<double, numBenches>, 4> t3Overall = {{
    {86.2, 54.6, 63.2, 46.6, 53.6, 51.4, 59.4, 68.5},   // internals
    {13.7, 26.3, 20.3, 19.0, 28.5, 12.0, 25.2, 29.5},   // global init
    {0.0, 19.0, 16.5, 34.0, 17.9, 36.1, 15.3, 2.0},     // external
    {0.0, 0.1, 0.0, 0.4, 0.0, 0.5, 0.1, 0.0},           // uninit
}};
constexpr std::array<std::array<double, numBenches>, 4> t3Repeated = {{
    {85.9, 54.4, 62.2, 52.1, 54.7, 55.5, 64.6, 77.1},
    {14.1, 26.2, 20.7, 22.6, 28.7, 14.5, 29.2, 22.9},
    {0.0, 19.3, 17.1, 24.7, 16.6, 29.5, 6.1, 0.0},
    {0.0, 0.1, 0.0, 0.6, 0.0, 0.5, 0.1, 0.0},
}};
constexpr std::array<std::array<double, numBenches>, 4> t3Propensity =
{{
    {84.9, 98.5, 78.0, 94.2, 95.2, 89.2, 82.0, 64.0},
    {87.3, 98.4, 81.0, 99.7, 93.9, 99.7, 87.8, 44.1},
    {97.1, 99.9, 82.2, 61.2, 86.1, 67.5, 30.2, 0.0},
    {98.7, 100.0, 99.3, 99.3, 99.0, 99.7, 96.2, 60.6},
}};

// ----- Table 4: function-level analysis ------------------------------
constexpr std::array<double, numBenches> t4AllArgsPct = {
    78, 83, 98, 76, 67, 69, 59, 60};
constexpr std::array<double, numBenches> t4NoArgsPct = {
    0.49, 0.03, 0.01, 1.36, 0.07, 15.1, 9.00, 1.77};

// ----- Tables 5/6/7: local analysis. Rows in LocalCat order:
//       prologue, epilogue, function internals, glb_addr_calc,
//       return, SP, return values, arguments, global, heap ----------
constexpr std::array<std::array<double, numBenches>, 10> t5Overall = {{
    {3.12, 4.93, 1.17, 7.42, 12.40, 9.48, 8.71, 1.90},
    {3.12, 4.93, 1.17, 7.40, 12.40, 9.47, 8.71, 1.90},
    {9.77, 17.22, 9.33, 9.08, 18.02, 7.96, 15.50, 5.41},
    {15.78, 14.79, 0.44, 4.51, 3.35, 1.26, 3.07, 10.27},
    {1.12, 1.75, 0.16, 1.14, 2.11, 2.72, 1.33, 2.79},
    {1.34, 0.17, 0.65, 1.05, 4.14, 1.71, 2.41, 0.00},
    {1.57, 4.45, 1.81, 2.67, 1.52, 3.90, 2.32, 16.72},
    {9.94, 15.40, 26.63, 21.85, 24.27, 6.76, 16.15, 5.02},
    {54.23, 26.97, 3.06, 9.74, 7.63, 10.95, 17.03, 56.00},
    {0.00, 9.45, 55.61, 35.27, 14.16, 45.78, 24.75, 0.00},
}};
constexpr std::array<std::array<double, numBenches>, 10> t6Repeated = {{
    {3.59, 4.99, 1.38, 8.15, 12.42, 9.41, 6.76, 2.83},
    {3.59, 4.99, 1.38, 8.13, 12.42, 9.40, 6.75, 2.83},
    {11.34, 17.44, 11.76, 10.76, 19.29, 9.62, 19.34, 9.51},
    {18.49, 14.97, 0.56, 5.36, 3.59, 1.53, 4.06, 18.06},
    {1.31, 1.77, 0.20, 1.35, 2.26, 3.29, 1.76, 4.91},
    {1.57, 0.17, 0.82, 1.25, 4.44, 2.07, 2.99, 0.00},
    {1.82, 4.50, 2.27, 1.12, 1.60, 4.50, 2.23, 9.28},
    {10.13, 15.36, 26.07, 21.40, 22.41, 7.32, 12.07, 3.79},
    {48.18, 26.26, 3.19, 8.38, 7.95, 13.14, 20.81, 48.78},
    {0.00, 9.56, 52.38, 34.09, 13.62, 39.71, 23.22, 0.00},
}};
constexpr std::array<std::array<double, numBenches>, 10> t7Propensity =
{{
    {97.95, 99.99, 93.76, 92.53, 93.35, 82.06, 58.57, 84.72},
    {97.95, 99.99, 93.76, 92.51, 93.35, 82.05, 58.54, 84.72},
    {98.89, 100.00, 99.97, 99.77, 99.75, 99.98, 94.23, 100.00},
    {99.85, 100.00, 99.98, 99.99, 99.99, 100.00, 99.78, 100.00},
    {99.99, 100.00, 99.97, 99.99, 99.99, 100.00, 99.90, 100.00},
    {99.90, 100.00, 99.89, 99.99, 99.86, 99.79, 93.85, 77.16},
    {98.85, 99.99, 99.67, 35.37, 97.83, 95.46, 72.67, 31.55},
    {86.82, 98.56, 77.64, 82.45, 86.05, 89.68, 56.44, 42.93},
    {75.69, 96.21, 82.65, 72.48, 97.07, 99.26, 92.27, 49.54},
    {-1, 99.96, 74.69, 81.38, 89.63, 71.73, 70.84, -1},   // -1 = n.a.
}};

// ----- Table 8: memoization candidates -------------------------------
constexpr std::array<double, numBenches> t8CleanOfAllPct = {
    0.0, 7.8, 0.3, 0.0, 0.0, 0.3, 0.6, 0.0};
constexpr std::array<double, numBenches> t8CleanOfAllArgRepPct = {
    0.0, 9.3, 0.2, 0.0, 0.0, 0.2, 0.9, 0.0};

// ----- Figure 5: top-1 argument-set coverage (% of all-arg
//       repetition; the paper quotes these four in the text) --------
constexpr double fig5Top1Go = 5.0;
constexpr double fig5Top1Perl = 42.0;
constexpr double fig5Top1Vortex = 17.0;
constexpr double fig5Top1Gcc = 7.0;

// ----- Figure 6: top-1 load-value coverage (% of global slice
//       repetition; quoted in the text) ------------------------------
constexpr double fig6Top1Go = 18.0;
constexpr double fig6Top1M88k = 71.0;
constexpr double fig6Top1Vortex = 39.0;
constexpr double fig6Top1Gcc = 22.0;

// ----- Table 10: reuse buffer ----------------------------------------
constexpr std::array<double, numBenches> t10PctOfAll = {
    46.5, 73.7, 28.0, 49.0, 55.6, 45.8, 47.5, 30.2};
constexpr std::array<double, numBenches> t10PctOfRepeated = {
    65.4, 74.9, 45.8, 61.2, 67.0, 66.6, 69.9, 53.3};

} // namespace irep::bench::paper

#endif // IREP_BENCH_PAPER_REFERENCE_HH
