#include "harness/population.hh"

#include <chrono>
#include <utility>

#include "asm/assembler.hh"
#include "core/attribution.hh"
#include "core/class_analysis.hh"
#include "fuzz/generator.hh"
#include "harness/suite.hh"
#include "minicc/compiler.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/outfile.hh"
#include "support/parallel.hh"
#include "support/prof.hh"
#include "support/stat_math.hh"
#include "support/table.hh"
#include "trace_io/cache.hh"

namespace irep::bench
{

namespace
{

/** Index of pct_dyn_repeated in every metrics vector (after
 *  window_instructions) — the per_program block reads it by slot. */
constexpr size_t pctDynRepeatedSlot = 1;

std::vector<std::string>
buildMetricNames(const core::PipelineConfig &config)
{
    std::vector<std::string> names = {
        "run/window_instructions",
        "repetition/pct_dyn_repeated",
        "repetition/pct_static_executed",
        "repetition/pct_static_repeated",
        "repetition/avg_repeats_per_instance",
    };
    if (config.enableClass) {
        for (const char *what : {"propensity", "pct_of_repetition"}) {
            for (unsigned c = 0; c < core::numInstrClasses; ++c) {
                names.push_back(
                    std::string("classes/") + what + "/" +
                    std::string(core::instrClassName(
                        core::InstrClass(c))));
            }
        }
    }
    if (config.enableAttribution) {
        for (const char *what :
             {"pct_of_all", "propensity", "pct_of_repetition"}) {
            for (unsigned s = 0; s < core::numLoopStructures; ++s) {
                names.push_back(
                    std::string("attribution/") + what + "/" +
                    std::string(core::loopStructureName(
                        core::LoopStructure(s))));
            }
        }
    }
    return names;
}

/** The per-program metric vector, parallel to buildMetricNames(). */
std::vector<double>
extractMetrics(const core::AnalysisPipeline &pipe, uint64_t executed)
{
    std::vector<double> m;
    m.push_back(double(executed));
    const core::RepetitionStats rep = pipe.tracker().stats();
    m.push_back(rep.pctDynRepeated());
    m.push_back(rep.pctStaticExecuted());
    m.push_back(rep.pctStaticRepeatedOfExecuted());
    m.push_back(rep.avgRepeatsPerInstance);
    if (pipe.config().enableClass) {
        const core::ClassStats &cls = pipe.classes().stats();
        for (unsigned c = 0; c < core::numInstrClasses; ++c)
            m.push_back(cls.propensity(core::InstrClass(c)));
        for (unsigned c = 0; c < core::numInstrClasses; ++c)
            m.push_back(cls.pctOfRepetition(core::InstrClass(c)));
    }
    if (pipe.config().enableAttribution) {
        const core::AttributionStats &attr =
            pipe.attribution().stats();
        for (unsigned s = 0; s < core::numLoopStructures; ++s)
            m.push_back(attr.pctOfAll(core::LoopStructure(s)));
        for (unsigned s = 0; s < core::numLoopStructures; ++s)
            m.push_back(attr.propensity(core::LoopStructure(s)));
        for (unsigned s = 0; s < core::numLoopStructures; ++s)
            m.push_back(attr.pctOfRepetition(core::LoopStructure(s)));
    }
    return m;
}

/** One generated, compiled population member. */
struct BuiltProgram
{
    uint64_t seed = 0;
    assem::Program program;
    std::string input;
};

BuiltProgram
buildProgram(uint64_t seed, int max_stmts)
{
    fuzz::GenOptions options;
    options.seed = seed;
    options.maxStmts = max_stmts;
    const fuzz::GenProgram gen = fuzz::generateProgram(options);
    BuiltProgram built;
    built.seed = seed;
    built.input = gen.input;
    try {
        const auto unit = minicc::compileToUnit(gen.render());
        built.program = assem::assemble(minicc::generateAsm(*unit));
    } catch (const std::exception &e) {
        // The generator's discipline guarantees compilable programs
        // (the differential fuzz gate proves it across seeds); a
        // failure here is a build bug worth a loud stop.
        fatal("generated program (seed ", seed,
              ") failed to compile: ", e.what());
    }
    return built;
}

void
writeSummary(json::Writer &w, const stat::Summary &s)
{
    w.beginObject();
    w.field("n", uint64_t(s.n));
    w.field("median", s.median);
    w.key("ci95");
    w.beginObject();
    w.field("lo", s.ci.lo);
    w.field("hi", s.ci.hi);
    w.endObject();
    w.field("q1", s.q1);
    w.field("q3", s.q3);
    w.field("min", s.min);
    w.field("max", s.max);
    w.endObject();
}

} // namespace

PopulationSuite::PopulationSuite(const PopulationConfig &config)
    : config_(config),
      metricNames_(buildMetricNames(config.pipeline))
{
    fatalIf(config_.count == 0,
            "--generated must be a positive program count");
}

void
PopulationSuite::runAll()
{
    // Generate + compile the whole population up front, serially, in
    // seed order: generation is deterministic per seed and minicc
    // compiles behind a lock anyway (workloads::buildProgram), so
    // there is nothing to win by racing it — and the analysis loop
    // below then fans out over identical, immutable programs.
    std::vector<BuiltProgram> built;
    built.reserve(config_.count);
    {
        prof::Span span("population:generate", "bench");
        for (uint32_t i = 0; i < config_.count; ++i)
            built.push_back(buildProgram(config_.popSeed + i,
                                         config_.maxStmts));
        span.arg("programs", double(config_.count));
    }

    results_.resize(config_.count);
    const std::string trace_dir = trace_io::cacheDir();
    const unsigned jobs =
        config_.jobs ? config_.jobs : parallel::defaultJobs();
    const auto start = std::chrono::steady_clock::now();
    parallel::parallelFor(
        config_.count,
        [this, &built, &trace_dir](size_t i) {
            const BuiltProgram &b = built[i];
            SuiteEntry entry;
            entry.name = "gen" + std::to_string(b.seed);
            entry.input = b.input;
            entry.machine = std::make_unique<sim::Machine>(b.program);
            if (config_.exec)
                entry.machine->setExecBackend(*config_.exec);
            entry.machine->setInput(entry.input);
            entry.pipeline =
                std::make_unique<core::AnalysisPipeline>(
                    *entry.machine, config_.pipeline);

            prof::Span span("population:" + entry.name, "bench");
            const uint64_t executed = runCachedEntry(
                entry, trace_dir,
                config_.pipeline.skipInstructions,
                config_.pipeline.windowInstructions);
            span.arg("window_executed", double(executed));
            span.arg("replayed", entry.replayed ? 1.0 : 0.0);

            // Everything the reports need is extracted here, then the
            // machine and pipeline die with this iteration — the
            // population never holds more than `jobs` machines alive.
            PopulationResult &r = results_[i];
            r.seed = b.seed;
            r.instructions = executed;
            r.replayed = entry.replayed;
            const core::RunTiming &t = entry.pipeline->timing();
            r.seconds = t.skip.seconds + t.window.seconds;
            r.traceRawBytes = entry.traceRawBytes;
            r.traceStoredBytes = entry.traceStoredBytes;
            r.traceInstrRecords = entry.traceInstrRecords;
            r.metrics = extractMetrics(*entry.pipeline, executed);
        },
        jobs);
    suiteSeconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    ran_ = true;
}

const std::vector<PopulationResult> &
PopulationSuite::results()
{
    if (!ran_)
        runAll();
    return results_;
}

unsigned
PopulationSuite::tracesReplayed() const
{
    unsigned count = 0;
    for (const PopulationResult &r : results_)
        count += r.replayed ? 1 : 0;
    return count;
}

unsigned
PopulationSuite::tracesRecorded() const
{
    unsigned count = 0;
    for (const PopulationResult &r : results_)
        count += (!r.replayed && r.traceInstrRecords != 0) ? 1 : 0;
    return count;
}

std::string
PopulationSuite::renderTable()
{
    results();
    TextTable table;
    table.header({"metric", "median", "ci95_lo", "ci95_hi", "q1",
                  "q3", "min", "max"});
    std::vector<double> column(results_.size());
    for (size_t j = 0; j < metricNames_.size(); ++j) {
        for (size_t i = 0; i < results_.size(); ++i)
            column[i] = results_[i].metrics[j];
        const stat::Summary s = stat::summarize(column);
        table.row({metricNames_[j], TextTable::num(s.median, 2),
                   TextTable::num(s.ci.lo, 2),
                   TextTable::num(s.ci.hi, 2),
                   TextTable::num(s.q1, 2), TextTable::num(s.q3, 2),
                   TextTable::num(s.min, 2),
                   TextTable::num(s.max, 2)});
    }
    return table.render();
}

void
PopulationSuite::writeJson(std::ostream &out)
{
    results();
    json::Writer w(out);
    w.beginObject();
    w.field("schema", "irep-pop-1");
    w.key("config");
    w.beginObject();
    w.field("generated", uint64_t(config_.count));
    w.field("pop_seed", config_.popSeed);
    w.field("max_stmts", int64_t(config_.maxStmts));
    w.field("skip", config_.pipeline.skipInstructions);
    w.field("window", config_.pipeline.windowInstructions);
    // Deliberately no jobs / window-jobs fields: the document is
    // byte-identical at any parallelism, and serializing them would
    // break that contract for no information.
    w.key("analyses");
    w.beginObject();
    w.field("global", config_.pipeline.enableGlobal);
    w.field("local", config_.pipeline.enableLocal);
    w.field("functions", config_.pipeline.enableFunction);
    w.field("reuse", config_.pipeline.enableReuse);
    w.field("classes", config_.pipeline.enableClass);
    w.field("prediction", config_.pipeline.enableValuePrediction);
    w.field("attribution", config_.pipeline.enableAttribution);
    w.endObject();
    w.endObject();

    w.key("population");
    w.beginObject();
    w.field("programs", uint64_t(results_.size()));
    w.key("metrics");
    w.beginObject();
    std::vector<double> column(results_.size());
    for (size_t j = 0; j < metricNames_.size(); ++j) {
        for (size_t i = 0; i < results_.size(); ++i)
            column[i] = results_[i].metrics[j];
        w.key(metricNames_[j]);
        writeSummary(w, stat::summarize(column));
    }
    w.endObject();
    w.endObject();

    // Raw per-program values (seed order) for plotting and drill-down;
    // deterministic, so they participate in the byte-identity checks.
    w.key("per_program");
    w.beginObject();
    w.key("seed");
    w.beginArray();
    for (const PopulationResult &r : results_)
        w.value(r.seed);
    w.endArray();
    w.key("window_instructions");
    w.beginArray();
    for (const PopulationResult &r : results_)
        w.value(r.instructions);
    w.endArray();
    w.key("pct_dyn_repeated");
    w.beginArray();
    for (const PopulationResult &r : results_)
        w.value(r.metrics[pctDynRepeatedSlot]);
    w.endArray();
    w.endObject();

    // Timing and cache provenance: the only nondeterministic block,
    // named `perf` so ci/compare_stats.py strips it like the bench
    // suite's timing. recorded vs replayed is the simulate-once
    // evidence (second run: recorded == 0).
    w.key("perf");
    w.beginObject();
    w.field("wall_seconds", suiteSeconds_);
    double programSeconds = 0.0;
    uint64_t raw = 0, stored = 0, records = 0;
    for (const PopulationResult &r : results_) {
        programSeconds += r.seconds;
        raw += r.traceRawBytes;
        stored += r.traceStoredBytes;
        records += r.traceInstrRecords;
    }
    w.field("program_seconds", programSeconds);
    w.field("replayed", uint64_t(tracesReplayed()));
    w.field("recorded", uint64_t(tracesRecorded()));
    if (records != 0) {
        w.key("trace");
        w.beginObject();
        w.field("raw_bytes", raw);
        w.field("stored_bytes", stored);
        w.field("instr_records", records);
        w.endObject();
    }
    w.endObject();
    w.endObject();
    out << '\n';
}

void
PopulationSuite::writeJson(const std::string &path)
{
    AtomicOutFile file(path);
    writeJson(file.stream());
    file.commit();
}

} // namespace irep::bench
