/**
 * @file
 * Shared bench harness: runs every workload through one fully
 * instrumented AnalysisPipeline pass and hands the per-benchmark
 * pipelines to the table printers.
 *
 * The eight workloads share nothing (each owns its Machine and
 * pipeline), so the suite dispatches them to a thread pool
 * (support/parallel.hh). Entries are built up front and kept in
 * canonical workload order, so every table printer and writeJson()
 * emit byte-identical output regardless of scheduling; only
 * wall-clock timing fields vary between serial and parallel runs.
 *
 * Environment knobs:
 *   IREP_SKIP        instructions to skip before measuring (default
 *                    1M; the paper skipped 0.5-2.5 B at SPEC scale)
 *   IREP_WINDOW      measurement window length (default 4M; paper:
 *                    1 B)
 *   IREP_BENCH       comma-separated subset of workload names to run
 *                    (unknown names are fatal)
 *   IREP_JOBS        worker threads (default: hardware concurrency;
 *                    1 = serial, today's behaviour)
 *   IREP_BENCH_REPS  timed repetitions per workload (default 1; 0 is
 *                    fatal). With more than one, each workload gets
 *                    dedicated timing passes after the stats pass and
 *                    irep-bench-2 reports the run array, median,
 *                    confidence interval and noise estimate
 *   IREP_BENCH_JSON  write one JSON document with every workload's
 *                    full stats report (the perf-trajectory
 *                    `BENCH_*.json` format) to this path after the
 *                    suite runs
 *   IREP_TRACE_DIR   retire-trace cache directory (src/trace_io):
 *                    each (workload, skip, window) is simulated and
 *                    recorded once, then replayed from its trace on
 *                    later runs; key or format-version mismatches
 *                    re-record automatically. Unset = no caching.
 */

#ifndef IREP_BENCH_SUITE_HH
#define IREP_BENCH_SUITE_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace irep::bench
{

/** One instrumented benchmark run. */
struct SuiteEntry
{
    std::string name;
    std::string input;
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<core::AnalysisPipeline> pipeline;
    uint64_t windowExecuted = 0;
    bool replayed = false;  //!< served from the trace cache

    // Trace-store economics for the perf block, filled whenever the
    // run went through the cache (recorded or replayed): payload
    // bytes before/after compression and the record count they cover.
    uint64_t traceRawBytes = 0;
    uint64_t traceStoredBytes = 0;
    uint64_t traceInstrRecords = 0;
    uint32_t traceFormatVersion = 0;

    /** Wall-clock skip+window seconds of every timed run. One entry
     *  (the stats pass itself) at repetitions=1; otherwise one per
     *  dedicated timing pass. */
    std::vector<double> runSeconds;
    bool timingReplayed = false;    //!< timed runs came from the cache
};

/** Explicit suite configuration (tools and tests; the shared
 *  instance() reads the same knobs from the environment). */
struct SuiteConfig
{
    uint64_t skip = 1'000'000;
    uint64_t window = 4'000'000;
    std::vector<std::string> filter;    //!< empty = all workloads
    unsigned jobs = 0;                  //!< 0 = parallel::defaultJobs()
    unsigned windowJobs = 0;    //!< intra-window shards per pipeline
                                //!< (0 = IREP_WINDOW_JOBS, 1 = serial)
    unsigned repetitions = 1;           //!< timed runs per workload
    /** Simulator execution backend for every workload machine
     *  (unset = the machine's IREP_EXEC-resolved default). */
    std::optional<sim::ExecBackend> exec;
};

/** A benchmark suite run: all (filtered) workloads, in paper order. */
class Suite
{
  public:
    /** The shared, environment-configured instance (runs the
     *  workloads on first use). */
    static Suite &instance();

    /** A suite with explicit configuration (lazy, like instance()). */
    explicit Suite(const SuiteConfig &config);

    const std::vector<SuiteEntry> &entries();

    uint64_t skip() const { return config_.skip; }
    uint64_t window() const { return config_.window; }

    /** Worker threads the run used (resolved from config/env). */
    unsigned jobs() const { return jobs_; }

    /** Timed repetitions per workload (resolved from config/env). */
    unsigned repetitions() const { return config_.repetitions; }

    /** Wall-clock seconds of the whole suite run (dispatch+join). */
    double suiteSeconds() const { return suiteSeconds_; }

    /** Entries served from the trace cache (0 when IREP_TRACE_DIR is
     *  unset or every workload recorded cold). */
    unsigned tracesReplayed() const;

    /** Sum of every workload's skip+window wall-clock seconds — the
     *  serial-equivalent cost; suiteSeconds() below this = speedup. */
    double workloadSeconds() const;

    /** Run one workload with a custom pipeline config (ablations). */
    static SuiteEntry runOne(const std::string &name,
                             const core::PipelineConfig &config);

    /**
     * Write the `irep-bench-2` document: `{schema, skip, window,
     * repetitions, workloads: {name: {stats, perf}}, suite}` — `stats`
     * is the full registry, `perf` the run-seconds array with median,
     * 95% confidence interval, noise estimate and timing mode. When
     * the profiler is enabled an `irep-prof-1` `profile` block rides
     * along. Called automatically after runAll() when IREP_BENCH_JSON
     * is set; public so harness users can emit extra snapshots. The
     * @p path variant publishes atomically (`-` = stdout).
     */
    void writeJson(const std::string &path);

    /** Same document, to an already-open stream. */
    void writeJson(std::ostream &out);

  private:
    Suite();
    void runAll();
    void timeEntry(SuiteEntry &entry, const std::string &traceDir);

    SuiteConfig config_;
    unsigned jobs_ = 1;
    double suiteSeconds_ = 0.0;
    std::vector<SuiteEntry> entries_;
    bool ran_ = false;
};

/**
 * Run one entry's pipeline through the trace cache: a valid cached
 * trace for this exact (name, program identity, skip, window) key is
 * replayed; otherwise the entry runs live under a single-flight
 * RecordClaim with a TraceWriter attached and publishes its trace for
 * the next run. Fills the entry's replay/trace-economics fields.
 * An empty @p trace_dir means no caching: a plain live run. Shared by
 * the workload suite and the generated-population suite.
 */
uint64_t runCachedEntry(SuiteEntry &entry,
                        const std::string &trace_dir, uint64_t skip,
                        uint64_t window);

/** Print the standard header naming the experiment and the scale. */
void printHeader(const std::string &experiment,
                 const std::string &paperRef);

} // namespace irep::bench

#endif // IREP_BENCH_SUITE_HH
