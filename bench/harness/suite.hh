/**
 * @file
 * Shared bench harness: runs every workload through one fully
 * instrumented AnalysisPipeline pass and hands the per-benchmark
 * pipelines to the table printers.
 *
 * Environment knobs:
 *   IREP_SKIP        instructions to skip before measuring (default
 *                    1M; the paper skipped 0.5-2.5 B at SPEC scale)
 *   IREP_WINDOW      measurement window length (default 4M; paper:
 *                    1 B)
 *   IREP_BENCH       comma-separated subset of workload names to run
 *   IREP_BENCH_JSON  write one JSON document with every workload's
 *                    full stats report (the perf-trajectory
 *                    `BENCH_*.json` format) to this path after the
 *                    suite runs
 */

#ifndef IREP_BENCH_SUITE_HH
#define IREP_BENCH_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace irep::bench
{

/** One instrumented benchmark run. */
struct SuiteEntry
{
    std::string name;
    std::unique_ptr<sim::Machine> machine;
    std::unique_ptr<core::AnalysisPipeline> pipeline;
    uint64_t windowExecuted = 0;
};

/** Lazily-run, process-wide benchmark suite. */
class Suite
{
  public:
    /** The shared instance (runs the workloads on first use). */
    static Suite &instance();

    const std::vector<SuiteEntry> &entries();

    uint64_t skip() const { return skip_; }
    uint64_t window() const { return window_; }

    /** Run one workload with a custom pipeline config (ablations). */
    static SuiteEntry runOne(const std::string &name,
                             const core::PipelineConfig &config);

    /**
     * Write every entry's stats registry as one JSON document:
     * `{schema, skip, window, workloads: {name: {stats...}}}`.
     * Called automatically after runAll() when IREP_BENCH_JSON is
     * set; public so harness users can emit extra snapshots.
     */
    void writeJson(const std::string &path);

  private:
    Suite();
    void runAll();

    uint64_t skip_;
    uint64_t window_;
    std::vector<std::string> filter_;
    std::vector<SuiteEntry> entries_;
    bool ran_ = false;
};

/** Print the standard header naming the experiment and the scale. */
void printHeader(const std::string &experiment,
                 const std::string &paperRef);

} // namespace irep::bench

#endif // IREP_BENCH_SUITE_HH
