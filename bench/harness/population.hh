/**
 * @file
 * The generated-population study (`irep bench --generated N`): mint N
 * deterministic, terminating MiniC programs from the fuzz generator,
 * compile them through minicc, run the full analysis pipeline over
 * every one, and report how the paper's headline metrics *distribute*
 * across the population — median, distribution-free 95% CI, quartiles
 * and extremes per metric (support/stat_math.hh) instead of one number
 * per hand-picked workload.
 *
 * Determinism and caching discipline:
 *  - program i is generated from seed popSeed + i with a fixed
 *    statement budget; same (seed, budget) -> byte-identical source,
 *    so the population is a stable, citable corpus;
 *  - generation + compilation happen up front, serially, in seed
 *    order (minicc compiles behind a lock anyway — see
 *    workloads::buildProgram); only the analysis runs fan out to the
 *    thread pool, and results are kept in seed order, so every report
 *    is byte-identical serial vs parallel vs sharded (`--window-jobs`)
 *    outside the `perf` block;
 *  - each run goes through the IREP_TRACE_DIR cache under the bench
 *    suite's probe -> claim -> re-probe -> record protocol
 *    (runCachedEntry), so a population is simulated exactly once and
 *    replayed on every later run — the `perf` block reports how many
 *    entries recorded vs replayed;
 *  - a program halts on its own (the generator's termination
 *    discipline: literal loop bounds, decreasing recursion guards) or
 *    is clipped by the skip+window budget, whichever comes first.
 */

#ifndef IREP_BENCH_POPULATION_HH
#define IREP_BENCH_POPULATION_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "sim/machine.hh"

namespace irep::bench
{

/** Configuration of one population study. */
struct PopulationConfig
{
    uint32_t count = 0;         //!< programs to generate (N)
    uint64_t popSeed = 1;       //!< seed of program 0; program i uses
                                //!< popSeed + i
    int maxStmts = 24;          //!< generator statement budget
    unsigned jobs = 0;          //!< pool workers (0 = defaultJobs())
    /** Analysis toggles, skip/window and window-jobs for every
     *  program's pipeline. Population default: skip 0 (whole-program
     *  measurement — generated programs are small). */
    core::PipelineConfig pipeline;
    /** Simulator backend (unset = IREP_EXEC-resolved default). */
    std::optional<sim::ExecBackend> exec;
};

/** What one generated program's run contributed. */
struct PopulationResult
{
    uint64_t seed = 0;
    uint64_t instructions = 0;      //!< retired in the window
    bool replayed = false;          //!< served from the trace cache
    double seconds = 0.0;           //!< skip+window wall clock
    uint64_t traceRawBytes = 0;
    uint64_t traceStoredBytes = 0;
    uint64_t traceInstrRecords = 0;
    std::vector<double> metrics;    //!< parallel to metricNames()
};

/** A population study run (lazy, like bench::Suite). */
class PopulationSuite
{
  public:
    explicit PopulationSuite(const PopulationConfig &config);

    /** Per-program results in seed order (runs on first use). */
    const std::vector<PopulationResult> &results();

    /** Names of the per-program metrics (config-dependent: class and
     *  attribution metrics appear when those analyses are enabled). */
    const std::vector<std::string> &metricNames() const
    {
        return metricNames_;
    }

    const PopulationConfig &config() const { return config_; }

    /** Entries served from / recorded into the trace cache. */
    unsigned tracesReplayed() const;
    unsigned tracesRecorded() const;

    /** Wall-clock seconds of the whole population run. */
    double suiteSeconds() const { return suiteSeconds_; }

    /**
     * The deterministic population table: one row per metric with
     * median, 95% CI bounds, quartiles, min and max across programs.
     * Identical bytes for identical (config, build) regardless of
     * jobs, window-jobs, or cache state — this is the table
     * docs/population-study.md reproduces verbatim.
     */
    std::string renderTable();

    /**
     * Write the `irep-pop-1` document: `{schema, config, population:
     * {programs, metrics: {name: {n, median, ci95, q1, q3, min,
     * max}}}, per_program, perf}`. Everything outside `perf` is
     * deterministic; `perf` carries timing and cache provenance
     * (recorded vs replayed) and is stripped by ci/compare_stats.py
     * like every other timing block. The @p path variant publishes
     * atomically (`-` = stdout).
     */
    void writeJson(std::ostream &out);
    void writeJson(const std::string &path);

  private:
    void runAll();

    PopulationConfig config_;
    std::vector<std::string> metricNames_;
    std::vector<PopulationResult> results_;
    double suiteSeconds_ = 0.0;
    bool ran_ = false;
};

} // namespace irep::bench

#endif // IREP_BENCH_POPULATION_HH
