#include "harness/suite.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/outfile.hh"
#include "support/parallel.hh"
#include "support/parse.hh"
#include "support/prof.hh"
#include "support/stat_math.hh"
#include "support/stats.hh"
#include "trace_io/cache.hh"
#include "trace_io/writer.hh"

namespace irep::bench
{

namespace
{

std::vector<std::string>
envList(const char *name)
{
    std::vector<std::string> out;
    const char *value = std::getenv(name);
    if (!value || !*value)
        return out;
    std::istringstream in(value);
    std::string item;
    while (std::getline(in, item, ','))
        out.push_back(item);
    return out;
}

/** fatal() naming the valid workloads when @p filter holds a typo
 *  ("ijepg"): a misspelt IREP_BENCH used to silently run nothing. */
void
validateFilter(const std::vector<std::string> &filter)
{
    for (const std::string &f : filter) {
        bool known = false;
        for (const workloads::Workload &w : workloads::allWorkloads())
            known = known || f == w.name;
        if (known)
            continue;
        std::string valid;
        for (const workloads::Workload &w : workloads::allWorkloads())
            valid += (valid.empty() ? "" : ", ") + w.name;
        fatal("unknown workload '", f, "' in benchmark filter "
              "(valid names: ", valid, ")");
    }
}

SuiteEntry
buildEntry(const workloads::Workload &w,
           const core::PipelineConfig &config,
           std::optional<sim::ExecBackend> exec)
{
    SuiteEntry entry;
    entry.name = w.name;
    entry.input = w.input;
    entry.machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    if (exec)
        entry.machine->setExecBackend(*exec);
    entry.machine->setInput(w.input);
    entry.pipeline = std::make_unique<core::AnalysisPipeline>(
        *entry.machine, config);
    return entry;
}

} // namespace

/**
 * Suite workers touch disjoint cache files, but the cache directory
 * may be shared with a serving daemon or a second suite, so a miss is
 * recorded under a RecordClaim: exactly one thread simulates, and
 * every other requester of the same key blocks briefly and then
 * replays the published file (probe -> claim -> re-probe -> record).
 */
uint64_t
runCachedEntry(SuiteEntry &entry, const std::string &trace_dir,
               uint64_t skip, uint64_t window)
{
    if (trace_dir.empty())
        return entry.pipeline->run();

    const uint64_t identity = trace_io::identityHash(
        entry.machine->program(), entry.input);

    const auto replayFrom = [&](trace_io::TraceReader &reader) {
        entry.traceRawBytes = reader.rawPayloadBytes();
        entry.traceStoredBytes = reader.storedPayloadBytes();
        entry.traceInstrRecords = reader.totalInstrRecords();
        entry.traceFormatVersion = reader.header().version;
        reader.bind(*entry.machine, entry.input);
        entry.replayed = true;
        return entry.pipeline->runFromSource(reader);
    };

    if (auto reader = trace_io::findCached(trace_dir, entry.name,
                                           identity, skip, window))
        return replayFrom(*reader);

    const std::string path = trace_io::cachePath(
        trace_dir, entry.name, identity, skip, window);
    trace_io::RecordClaim claim(path);
    // Whoever held the claim before us may have published the trace
    // while we blocked; replaying it keeps one simulation per key.
    if (auto reader = trace_io::findCached(trace_dir, entry.name,
                                           identity, skip, window))
        return replayFrom(*reader);

    trace_io::TraceWriter writer(path, *entry.machine, entry.input,
                                 skip, window);
    entry.machine->addObserver(&writer);
    const uint64_t executed = entry.pipeline->run();
    entry.machine->removeObserver(&writer);
    writer.commit();
    entry.traceRawBytes = writer.rawPayloadBytes();
    entry.traceStoredBytes = writer.storedPayloadBytes();
    entry.traceInstrRecords = writer.instrRecords();
    entry.traceFormatVersion = writer.version();
    return executed;
}

Suite::Suite()
{
    config_.skip = parse::envU64("IREP_SKIP", 1'000'000);
    config_.window = parse::envU64("IREP_WINDOW", 4'000'000);
    config_.filter = envList("IREP_BENCH");
    config_.repetitions =
        unsigned(parse::envU64("IREP_BENCH_REPS", 1));
}

Suite::Suite(const SuiteConfig &config) : config_(config) {}

Suite &
Suite::instance()
{
    static Suite suite;
    return suite;
}

void
Suite::runAll()
{
    validateFilter(config_.filter);
    fatalIf(config_.repetitions == 0,
            "IREP_BENCH_REPS/--repetitions must be at least 1");

    // Build every entry up front (workload compilation is memoized
    // and the pipelines register no global state), in the paper's
    // canonical order — scheduling then cannot affect any output.
    core::PipelineConfig config;
    config.skipInstructions = config_.skip;
    config.windowInstructions = config_.window;
    config.windowJobs = config_.windowJobs;
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        if (!config_.filter.empty()) {
            bool found = false;
            for (const std::string &f : config_.filter)
                found = found || f == w.name;
            if (!found)
                continue;
        }
        entries_.push_back(buildEntry(w, config, config_.exec));
    }

    jobs_ = config_.jobs ? config_.jobs : parallel::defaultJobs();
    const std::string trace_dir = trace_io::cacheDir();
    const auto start = std::chrono::steady_clock::now();
    parallel::parallelFor(
        entries_.size(),
        [this, &trace_dir](size_t i) {
            SuiteEntry &entry = entries_[i];
            {
                prof::Span span("workload:" + entry.name, "bench");
                entry.windowExecuted = runCachedEntry(
                    entry, trace_dir, config_.skip, config_.window);
                span.arg("window_executed",
                         double(entry.windowExecuted));
                span.arg("replayed", entry.replayed ? 1.0 : 0.0);
            }
            timeEntry(entry, trace_dir);
        },
        jobs_);
    suiteSeconds_ = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    ran_ = true;

    const char *json_path = std::getenv("IREP_BENCH_JSON");
    if (json_path && *json_path)
        writeJson(json_path);
}

/**
 * Collect @p entry's timed runs. At repetitions=1 the stats pass is
 * the one timed run. With more, every measured run is a dedicated
 * pass *after* the stats pass so all of them are in one mode: with
 * the trace cache enabled the stats pass may have recorded live while
 * its successors replay, and mixing those modes in one sample would
 * make the median meaningless.
 */
void
Suite::timeEntry(SuiteEntry &entry, const std::string &trace_dir)
{
    if (config_.repetitions <= 1) {
        const core::RunTiming &t = entry.pipeline->timing();
        entry.runSeconds.push_back(t.skip.seconds +
                                   t.window.seconds);
        entry.timingReplayed = entry.replayed;
        return;
    }

    core::PipelineConfig config;
    config.skipInstructions = config_.skip;
    config.windowInstructions = config_.window;
    config.windowJobs = config_.windowJobs;
    const workloads::Workload &w =
        workloads::workloadByName(entry.name);
    for (unsigned r = 0; r < config_.repetitions; ++r) {
        SuiteEntry fresh = buildEntry(w, config, config_.exec);
        prof::Span span("timing:" + entry.name, "bench");
        fresh.windowExecuted = runCachedEntry(
            fresh, trace_dir, config_.skip, config_.window);
        span.arg("repetition", double(r));
        const core::RunTiming &t = fresh.pipeline->timing();
        entry.runSeconds.push_back(t.skip.seconds +
                                   t.window.seconds);
        entry.timingReplayed = fresh.replayed;
    }
}

unsigned
Suite::tracesReplayed() const
{
    unsigned count = 0;
    for (const SuiteEntry &entry : entries_)
        count += entry.replayed ? 1 : 0;
    return count;
}

double
Suite::workloadSeconds() const
{
    double sum = 0.0;
    for (const SuiteEntry &entry : entries_) {
        const core::RunTiming &t = entry.pipeline->timing();
        sum += t.skip.seconds + t.window.seconds;
    }
    return sum;
}

namespace
{

/** The `perf` block of one workload: the honest timing numbers. */
void
writePerf(json::Writer &w, const SuiteEntry &entry)
{
    const std::vector<double> &runs = entry.runSeconds;
    w.beginObject();
    w.key("runs_seconds");
    w.beginArray();
    for (double s : runs)
        w.value(s);
    w.endArray();
    w.field("median_seconds", stat::median(runs));
    const stat::Interval ci = stat::medianCI(runs);
    w.key("median_ci95_seconds");
    w.beginObject();
    w.field("lo", ci.lo);
    w.field("hi", ci.hi);
    w.endObject();
    w.field("noise_rel_iqr", stat::relativeIQR(runs));
    w.field("timing_mode",
            entry.timingReplayed ? "replay" : "live");
    // Trace-store economics whenever the run went through the cache:
    // raw vs stored payload bytes and bytes-per-instruction, the
    // numbers BENCH_serve.json and docs/serving.md quote.
    if (entry.traceInstrRecords != 0) {
        w.key("trace");
        w.beginObject();
        w.field("format_version",
                uint64_t(entry.traceFormatVersion));
        w.field("raw_bytes", entry.traceRawBytes);
        w.field("stored_bytes", entry.traceStoredBytes);
        w.field("raw_bytes_per_instr",
                double(entry.traceRawBytes) /
                    double(entry.traceInstrRecords));
        w.field("stored_bytes_per_instr",
                double(entry.traceStoredBytes) /
                    double(entry.traceInstrRecords));
        w.field("source", entry.replayed ? "cache" : "recorded");
        w.endObject();
    }
    w.endObject();
}

} // namespace

void
Suite::writeJson(std::ostream &out)
{
    json::Writer w(out);
    w.beginObject();
    w.field("schema", "irep-bench-2");
    w.field("skip", config_.skip);
    w.field("window", config_.window);
    w.field("repetitions", uint64_t(config_.repetitions));
    w.key("workloads");
    w.beginObject();
    for (const SuiteEntry &entry : entries_) {
        w.key(entry.name);
        w.beginObject();
        w.key("stats");
        stats::Group root;
        entry.pipeline->registerStats(root);
        stats::dumpJson(root, w);
        w.key("perf");
        writePerf(w, entry);
        w.endObject();
    }
    w.endObject();
    // Suite-level wall-clock timing: how long the (possibly
    // parallel) run took vs. the serial-equivalent sum. Timing
    // fields — `perf`, `profile` and the two below — are the only
    // ones that may differ between serial and parallel runs.
    w.key("suite");
    w.beginObject();
    w.field("wall_seconds", suiteSeconds_);
    w.field("workload_seconds", workloadSeconds());
    w.endObject();
    if (prof::enabled()) {
        w.key("profile");
        prof::writeSummary(w);
    }
    w.endObject();
    out << '\n';
}

void
Suite::writeJson(const std::string &path)
{
    AtomicOutFile file(path);
    writeJson(file.stream());
    file.commit();
}

const std::vector<SuiteEntry> &
Suite::entries()
{
    if (!ran_)
        runAll();
    return entries_;
}

SuiteEntry
Suite::runOne(const std::string &name,
              const core::PipelineConfig &config)
{
    SuiteEntry entry = buildEntry(workloads::workloadByName(name),
                                  config, {});
    // The retire stream is independent of the analysis configuration,
    // so ablation reruns share cache entries with the plain suite
    // whenever their skip/window match.
    entry.windowExecuted = runCachedEntry(
        entry, trace_io::cacheDir(), config.skipInstructions,
        config.windowInstructions);
    return entry;
}

void
printHeader(const std::string &experiment, const std::string &paperRef)
{
    Suite &suite = Suite::instance();
    std::printf("=== %s ===\n", experiment.c_str());
    std::printf("reproduces: %s\n", paperRef.c_str());
    std::printf("scale: skip=%llu window=%llu instructions "
                "(paper: skip 0.5-2.5B, window 1B; shapes, not "
                "absolutes, are comparable)\n\n",
                (unsigned long long)suite.skip(),
                (unsigned long long)suite.window());
}

} // namespace irep::bench
