#include "harness/suite.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::bench
{

namespace
{

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

std::vector<std::string>
envList(const char *name)
{
    std::vector<std::string> out;
    const char *value = std::getenv(name);
    if (!value || !*value)
        return out;
    std::istringstream in(value);
    std::string item;
    while (std::getline(in, item, ','))
        out.push_back(item);
    return out;
}

} // namespace

Suite::Suite()
    : skip_(envU64("IREP_SKIP", 1'000'000)),
      window_(envU64("IREP_WINDOW", 4'000'000)),
      filter_(envList("IREP_BENCH"))
{
}

Suite &
Suite::instance()
{
    static Suite suite;
    return suite;
}

void
Suite::runAll()
{
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        if (!filter_.empty()) {
            bool found = false;
            for (const std::string &f : filter_)
                found = found || f == w.name;
            if (!found)
                continue;
        }
        SuiteEntry entry;
        entry.name = w.name;
        entry.machine =
            std::make_unique<sim::Machine>(workloads::buildProgram(w));
        entry.machine->setInput(w.input);
        core::PipelineConfig config;
        config.skipInstructions = skip_;
        config.windowInstructions = window_;
        entry.pipeline = std::make_unique<core::AnalysisPipeline>(
            *entry.machine, config);
        entry.windowExecuted = entry.pipeline->run();
        entries_.push_back(std::move(entry));
    }
    ran_ = true;

    const char *json_path = std::getenv("IREP_BENCH_JSON");
    if (json_path && *json_path)
        writeJson(json_path);
}

void
Suite::writeJson(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatalIf(!out, "cannot open '", path, "'");

    json::Writer w(out);
    w.beginObject();
    w.field("schema", "irep-bench-1");
    w.field("skip", skip_);
    w.field("window", window_);
    w.key("workloads");
    w.beginObject();
    for (const SuiteEntry &entry : entries_) {
        w.key(entry.name);
        stats::Group root;
        entry.pipeline->registerStats(root);
        stats::dumpJson(root, w);
    }
    w.endObject();
    w.endObject();
    out << '\n';
    fatalIf(!out, "write to '", path, "' failed");
}

const std::vector<SuiteEntry> &
Suite::entries()
{
    if (!ran_)
        runAll();
    return entries_;
}

SuiteEntry
Suite::runOne(const std::string &name,
              const core::PipelineConfig &config)
{
    const workloads::Workload &w = workloads::workloadByName(name);
    SuiteEntry entry;
    entry.name = name;
    entry.machine =
        std::make_unique<sim::Machine>(workloads::buildProgram(w));
    entry.machine->setInput(w.input);
    entry.pipeline = std::make_unique<core::AnalysisPipeline>(
        *entry.machine, config);
    entry.windowExecuted = entry.pipeline->run();
    return entry;
}

void
printHeader(const std::string &experiment, const std::string &paperRef)
{
    Suite &suite = Suite::instance();
    std::printf("=== %s ===\n", experiment.c_str());
    std::printf("reproduces: %s\n", paperRef.c_str());
    std::printf("scale: skip=%llu window=%llu instructions "
                "(paper: skip 0.5-2.5B, window 1B; shapes, not "
                "absolutes, are comparable)\n\n",
                (unsigned long long)suite.skip(),
                (unsigned long long)suite.window());
}

} // namespace irep::bench
