/**
 * @file
 * Quickstart: compile a MiniC program, run it under the instrumented
 * simulator, and print the paper's headline repetition numbers.
 *
 *   $ example_quickstart
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "minicc/compiler.hh"
#include "sim/machine.hh"

using namespace irep;

int
main()
{
    // 1. A program. Any C-subset source works; this one mixes loops,
    //    calls, globals, and pointer chasing.
    const char *source = R"(
        int table[64];
        int hash(int x) { return (x * 2654435761) >> 26; }
        int main() {
            int hits; hits = 0;
            for (int round = 0; round < 50; round++) {
                for (int i = 0; i < 200; i++) {
                    int h; h = hash(i & 31) & 63;
                    if (table[h] == i) hits++;
                    table[h] = i;
                }
            }
            return hits & 0xff;
        }
    )";

    // 2. Compile to a MIPS-I program image and load it into a
    //    functional simulator.
    const assem::Program program = minicc::compileToProgram(source);
    sim::Machine machine(program);

    // 3. Attach the full analysis pipeline (repetition tracker,
    //    global taint, local analysis, function analysis, reuse
    //    buffer) and run: skip the first 10k instructions, then
    //    measure 500k — the paper's skip-and-measure protocol.
    core::PipelineConfig config;
    config.skipInstructions = 10'000;
    config.windowInstructions = 500'000;
    core::AnalysisPipeline pipeline(machine, config);
    const uint64_t measured = pipeline.run();

    // 4. Read out the results.
    const auto stats = pipeline.tracker().stats();
    std::printf("measured %llu dynamic instructions\n",
                (unsigned long long)measured);
    std::printf("repeated: %.1f%% of dynamic instructions "
                "(paper saw 56.9%%-98.8%% on SPEC95)\n",
                stats.pctDynRepeated());
    std::printf("executed statics that repeat: %.1f%%\n",
                stats.pctStaticRepeatedOfExecuted());
    std::printf("unique repeatable instances: %llu "
                "(avg %.0f repeats each)\n",
                (unsigned long long)stats.uniqueRepeatableInstances,
                stats.avgRepeatsPerInstance);

    const auto &reuse = pipeline.reuse().stats();
    std::printf("8K reuse buffer would capture %.1f%% of all "
                "instructions\n",
                reuse.pctOfAll());

    const auto funcs = pipeline.functions().stats();
    std::printf("calls with all arguments repeated: %.1f%%\n",
                funcs.pctAllArgsRepeated());
    return 0;
}
