/**
 * @file
 * Memoization explorer: the paper's §6 software question, applied to
 * one benchmark. For each SPEC-like workload function we report the
 * dynamic call count, argument repetition, and whether memoization is
 * blocked by side effects/implicit inputs — the per-function view
 * behind Table 4 / Table 8.
 *
 *   $ example_memoization_explorer [workload]     (default: li)
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/callstack.hh"
#include "isa/registers.hh"
#include "sim/machine.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace irep;

namespace
{

/** Per-function memoization profile. */
struct Profile
{
    uint64_t calls = 0;
    uint64_t argRepeated = 0;
    uint64_t dirtyCalls = 0;
    std::map<uint64_t, uint64_t> tuples;
};

/** A small special-purpose observer: per-function stats with names. */
struct Explorer : sim::Observer
{
    struct Frame
    {
        bool dirty = false;
        uint32_t spAtEntry = 0;
    };

    Explorer(const assem::Program &program, const sim::Machine &m)
        : machine(m), stack(program)
    {}

    void
    onRetire(const sim::InstrRecord &rec) override
    {
        const isa::OpInfo &info = isa::opInfo(rec.inst->op);
        if ((info.isStore &&
             (rec.memAddr < 0x70000000u ||
              rec.memAddr >= stack.current().data.spAtEntry)) ||
            (info.isLoad && rec.memAddr < 0x70000000u &&
             rec.memAddr >= assem::Layout::dataBase)) {
            stack.current().data.dirty = true;
        }

        const int delta = stack.onInstr(
            rec,
            [this](const core::CallStack<Frame>::Frame &popped,
                   core::CallStack<Frame>::Frame &parent) {
                parent.data.dirty |= popped.data.dirty;
                if (popped.info) {
                    auto &p = profiles[popped.info->name];
                    if (popped.data.dirty)
                        ++p.dirtyCalls;
                }
            });
        if (delta > 0 && stack.current().info) {
            const auto *finfo = stack.current().info;
            stack.current().data.spAtEntry =
                machine.reg(isa::regSP);
            Profile &p = profiles[finfo->name];
            ++p.calls;
            uint64_t key = 1469598103934665603ull;
            for (unsigned i = 0; i < finfo->numArgs; ++i) {
                key = (key ^ machine.reg(isa::regA0 + i)) *
                      1099511628211ull;
            }
            if (p.tuples[key]++ > 0)
                ++p.argRepeated;
        }
    }

    void
    onSyscall(const sim::SyscallRecord &) override
    {
        stack.current().data.dirty = true;
    }

    const sim::Machine &machine;
    core::CallStack<Frame> stack;
    std::map<std::string, Profile> profiles;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "li";
    const auto &workload = workloads::workloadByName(name);
    sim::Machine machine(workloads::buildProgram(workload));
    machine.setInput(workload.input);

    Explorer explorer(machine.program(), machine);
    machine.addObserver(&explorer);
    machine.run(5'000'000);

    std::printf("Memoization explorer: %s (%s)\n", name.c_str(),
                workload.specAnalogue.c_str());
    std::printf("%s\n\n", workload.description.c_str());

    std::vector<std::pair<std::string, Profile>> rows(
        explorer.profiles.begin(), explorer.profiles.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second.calls > b.second.calls;
              });

    TextTable table;
    table.header({"function", "calls", "arg-rep%", "dirty%",
                  "memoizable?"});
    for (const auto &[func, p] : rows) {
        if (p.calls < 10)
            continue;
        const double arg_rep =
            100.0 * double(p.argRepeated) / double(p.calls);
        const double dirty =
            100.0 * double(p.dirtyCalls) / double(p.calls);
        table.row({
            func,
            TextTable::count(p.calls),
            TextTable::num(arg_rep),
            TextTable::num(dirty),
            (arg_rep > 50.0 && dirty < 1.0) ? "yes" : "no",
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nThe paper's Table 8 finding, per function: high "
              "argument repetition almost never coincides with "
              "side-effect freedom.");
    return 0;
}
