/**
 * @file
 * Value profiler: the §6 code-specialization view. For the hottest
 * repeated static instructions of a workload, show the disassembly,
 * the owning function, and how concentrated their repetition is —
 * the per-instruction picture behind Figures 1 and 6.
 *
 *   $ example_value_profiler [workload] [topN]   (default: gcc 15)
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "isa/instruction.hh"
#include "sim/machine.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace irep;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gcc";
    const size_t top_n = argc > 2 ? size_t(std::atoi(argv[2])) : 15;

    const auto &workload = workloads::workloadByName(name);
    const auto &program = workloads::buildProgram(workload);
    sim::Machine machine(program);
    machine.setInput(workload.input);

    core::PipelineConfig config;
    config.skipInstructions = 500'000;
    config.windowInstructions = 2'000'000;
    config.enableGlobal = false;
    config.enableLocal = false;
    config.enableFunction = false;
    config.enableReuse = false;
    core::AnalysisPipeline pipeline(machine, config);
    pipeline.run();

    const auto &tracker = pipeline.tracker();
    const auto stats = tracker.stats();

    std::printf("Value profile: %s — %.1f%% of the %llu measured "
                "instructions repeat\n\n",
                name.c_str(), stats.pctDynRepeated(),
                (unsigned long long)stats.dynTotal);

    // Rank static instructions by repetition contribution.
    struct Row
    {
        uint32_t index;
        uint64_t repeats;
        uint64_t execs;
    };
    std::vector<Row> rows;
    for (uint32_t i = 0; i < machine.numStaticInstructions(); ++i) {
        if (tracker.repeatCount(i))
            rows.push_back(
                {i, tracker.repeatCount(i), tracker.execCount(i)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) {
                  return a.repeats > b.repeats;
              });

    TextTable table;
    table.header({"pc", "instruction", "function", "execs",
                  "repeats", "rep%", "cum% of repetition"});
    uint64_t cumulative = 0;
    for (size_t i = 0; i < rows.size() && i < top_n; ++i) {
        const Row &row = rows[i];
        const uint32_t pc = assem::Layout::textBase + row.index * 4;
        const isa::Instruction inst =
            isa::decode(program.text[row.index]);
        const assem::FunctionInfo *func = program.functionAt(pc);
        cumulative += row.repeats;
        char pc_text[16];
        std::snprintf(pc_text, sizeof(pc_text), "0x%08x", pc);
        table.row({
            pc_text,
            isa::disassemble(inst, pc),
            func ? func->name : "?",
            TextTable::count(row.execs),
            TextTable::count(row.repeats),
            TextTable::num(100.0 * double(row.repeats) /
                           double(row.execs)),
            TextTable::num(100.0 * double(cumulative) /
                           double(stats.dynRepeated)),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n%zu static instructions shown out of %llu with "
                "repetition — the concentration Figure 1 plots.\n",
                std::min(top_n, rows.size()),
                (unsigned long long)stats.staticRepeated);
    return 0;
}
