/**
 * @file
 * Reuse-buffer design-space sweep on one workload: how much of the
 * paper's Table 1 repetition can hardware of different sizes capture
 * (the question §7 leaves open)?
 *
 *   $ example_reuse_buffer_sweep [workload]      (default: compress)
 */

#include <cstdio>
#include <string>

#include "core/pipeline.hh"
#include "sim/machine.hh"
#include "support/table.hh"
#include "workloads/workloads.hh"

using namespace irep;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "compress";
    const auto &workload = workloads::workloadByName(name);

    std::printf("Reuse-buffer sweep on %s\n\n", name.c_str());

    TextTable table;
    table.header({"entries", "ways", "% of all inst",
                  "% of repeated", "invalidations"});

    double total_repetition = 0.0;
    for (uint32_t entries : {256u, 1024u, 4096u, 8192u, 32768u}) {
        sim::Machine machine(workloads::buildProgram(workload));
        machine.setInput(workload.input);
        core::PipelineConfig config;
        config.skipInstructions = 500'000;
        config.windowInstructions = 2'000'000;
        config.enableGlobal = false;
        config.enableLocal = false;
        config.enableFunction = false;
        config.reuse.entries = entries;
        config.reuse.ways = 4;
        core::AnalysisPipeline pipeline(machine, config);
        pipeline.run();

        const auto &stats = pipeline.reuse().stats();
        total_repetition =
            pipeline.tracker().stats().pctDynRepeated();
        table.row({
            TextTable::count(entries),
            "4",
            TextTable::num(stats.pctOfAll()),
            TextTable::num(stats.pctOfRepeated()),
            TextTable::count(stats.invalidations),
        });
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\ntotal repetition in this window (infinite "
                "buffer bound): %.1f%%\n",
                total_repetition);
    std::puts("The gap between the last column of Table 1 and any row "
              "here is the paper's \"room for improvement\".");
    return 0;
}
