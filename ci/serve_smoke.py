#!/usr/bin/env python3
"""End-to-end smoke test for the `irep serve` daemon.

    serve_smoke.py [--irep build/tools/irep] [--jobs N]

Starts a daemon against a cold trace cache and drives the full
client surface from outside the process — the things the in-process
tests (tests/serve/) cannot pin:

  * /health, /version, /metrics answer over real sockets;
  * a stampede of identical cold /analyze requests all succeed, agree
    byte-for-byte modulo wall-clock fields, and cost exactly ONE
    simulation (the /metrics counter is the proof);
  * a daemon answer equals `irep bench --stats-json` for the same
    config (compare_stats.py exact mode);
  * /batch answers every request in order;
  * a malformed request is a 400, and the daemon keeps serving;
  * SIGTERM drains: the daemon exits 0 by itself.

Exits nonzero on the first violated expectation.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from compare_stats import strip_timing, diff

SKIP, WINDOW = 50000, 200000
BODY = json.dumps(
    {"workload": "compress", "skip": SKIP, "window": WINDOW})


def request(port, method, path, body=None):
    """One HTTP exchange; returns (status, parsed JSON body)."""
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body.encode() if body is not None else None,
        method=method)
    try:
        with urllib.request.urlopen(req, timeout=120) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as e:
        return e.code, json.load(e)


def expect(condition, message):
    if not condition:
        sys.exit(f"serve_smoke: FAIL: {message}")
    print(f"  ok: {message}")


def expect_same_stats(a, b, message):
    differences = []
    diff(strip_timing(a), strip_timing(b), "$", differences)
    expect(not differences,
           f"{message} ({len(differences)} differing paths)"
           if differences else message)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--irep", default="build/tools/irep")
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv[1:])

    with tempfile.TemporaryDirectory(prefix="irep_serve_smoke.") as tmp:
        daemon = subprocess.Popen(
            [args.irep, "serve", "--port", "0",
             "--jobs", str(args.jobs)],
            env=dict(os.environ,
                     IREP_TRACE_DIR=os.path.join(tmp, "cache")),
            stderr=subprocess.PIPE, text=True)
        try:
            # The daemon announces its kernel-picked port on stderr.
            line = daemon.stderr.readline()
            match = re.search(r"127\.0\.0\.1:(\d+)", line)
            if not match:
                sys.exit(f"serve_smoke: no port in banner: {line!r}")
            port = int(match.group(1))
            print(f"  daemon on port {port}")

            status, health = request(port, "GET", "/health")
            expect(status == 200 and health["status"] == "ok",
                   "/health answers ok")

            status, version = request(port, "GET", "/version")
            expect(status == 200 and
                   version["schema"] == "irep-version-1" and
                   version["schemas"]["stats"] == "irep-stats-1",
                   "/version reports build identity")

            # The stampede: identical cold requests, all at once.
            clients = 8
            with ThreadPoolExecutor(max_workers=clients) as pool:
                results = list(pool.map(
                    lambda _: request(port, "POST", "/analyze", BODY),
                    range(clients)))
            expect(all(status == 200 for status, _ in results),
                   f"{clients} concurrent cold requests all succeed")
            for status, doc in results[1:]:
                expect_same_stats(
                    results[0][1], doc,
                    "concurrent answers agree byte-for-byte "
                    "(timing excluded)")

            status, metrics = request(port, "GET", "/metrics")
            expect(metrics["simulations"] == 1,
                   f"stampede cost one simulation "
                   f"(got {metrics['simulations']})")
            expect(metrics["cache_hits"] == clients - 1,
                   "every other request replayed from the cache")
            expect(metrics["errors"] == 0, "no errors so far")

            # A warm repeat must not simulate either.
            status, warm = request(port, "POST", "/analyze", BODY)
            expect(status == 200, "warm repeat succeeds")
            _, metrics = request(port, "GET", "/metrics")
            expect(metrics["simulations"] == 1,
                   "warm repeat did not re-simulate")

            # The contract: a daemon answer is a CLI answer.
            cli_path = os.path.join(tmp, "cli.json")
            subprocess.run(
                [args.irep, "bench", "compress",
                 "--skip", str(SKIP), "--window", str(WINDOW),
                 "--stats-json", cli_path],
                check=True, stdout=subprocess.DEVNULL)
            with open(cli_path) as f:
                cli_doc = json.load(f)
            expect_same_stats(cli_doc, warm,
                             "daemon answer equals the CLI's "
                             "--stats-json document")

            # Batch: in-order answers, second entry warm.
            batch = json.dumps({"requests": [
                json.loads(BODY),
                {"workload": "compress", "skip": SKIP,
                 "window": WINDOW // 2},
            ]})
            status, doc = request(port, "POST", "/batch", batch)
            expect(status == 200 and
                   doc["schema"] == "irep-serve-batch-1" and
                   len(doc["results"]) == 2 and
                   doc["results"][0]["config"]["window"] == WINDOW and
                   doc["results"][1]["config"]["window"] == WINDOW // 2,
                   "/batch answers both requests in order")

            # A restricted analysis set: still a cache hit (the trace
            # is analysis-agnostic), and the disabled analyses'
            # stats blocks disappear from the answer.
            _, before = request(port, "GET", "/metrics")
            subset = json.dumps(
                {"workload": "compress", "skip": SKIP,
                 "window": WINDOW, "analyses": "classes,attribution"})
            status, doc = request(port, "POST", "/analyze", subset)
            expect(status == 200 and
                   "classes" in doc["stats"] and
                   "attribution" in doc["stats"] and
                   "reuse" not in doc["stats"] and
                   "functions" not in doc["stats"],
                   "analyses subset runs exactly the named analyses")
            _, metrics = request(port, "GET", "/metrics")
            expect(metrics["simulations"] == before["simulations"] and
                   metrics["cache_hits"] == before["cache_hits"] + 1,
                   "analyses subset replayed the cached trace")

            # Client mistakes are 400s, and the daemon survives them.
            status, error = request(port, "POST", "/analyze",
                                    '{"workload": "no-such"}')
            expect(status == 400 and "error" in error,
                   "unknown workload is a 400")
            status, error = request(
                port, "POST", "/analyze",
                '{"workload": "compress", "analyses": "bogus"}')
            expect(status == 400 and "error" in error,
                   "unknown analysis name is a 400")
            status, _ = request(port, "GET", "/health")
            expect(status == 200, "daemon still serves after a 400")

            # Graceful drain: SIGTERM, then the process exits 0 on
            # its own.
            daemon.send_signal(signal.SIGTERM)
            expect(daemon.wait(timeout=60) == 0,
                   "SIGTERM drains and exits 0")
            banner = daemon.stderr.read()
            expect("served" in banner,
                   f"exit banner summarizes the run: "
                   f"{banner.strip().splitlines()[-1]!r}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    print("serve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
