#!/usr/bin/env python3
"""Compare two irep stats/bench JSON documents.

Two modes:

Exact mode (default):
    compare_stats.py GOLDEN ACTUAL
  Every counted statistic the toolchain reports is deterministic;
  only wall-clock-derived fields legitimately differ between runs
  (see docs/performance.md and docs/parallelism.md). CI uses this
  mode to diff a freshly generated stats report against the
  checked-in golden copy, so any change to the simulator or the
  analyses that perturbs the numbers must also update the golden
  file — deliberately. Exits 0 when the documents match modulo
  timing, 1 with a list of differing paths otherwise.

Speedup mode (Touati et al.'s Speedup-Test, docs/observability.md):
    compare_stats.py --speedup BASELINE CANDIDATE \
        [--alpha 0.05] [--min-effect 0.02]
  Both inputs must be irep-bench-2 documents with per-workload
  `perf.runs_seconds` arrays (irep bench all --repetitions N).
  For each workload the two run samples are compared with a
  two-sided Mann-Whitney U test; a workload *fails* only when the
  difference is statistically significant (p < alpha) AND the
  candidate's median is slower than the baseline's by more than
  min-effect (relative). Noisy-but-insignificant differences and
  significant *improvements* both pass — the gate only fires on
  regressions it can defend. Exits 1 when any workload fails.
"""

import argparse
import json
import math
import sys

# Wall-clock-derived fields, excluded from the exact comparison.
# `perf` (irep-bench-2 run timing) and `profile` (irep-prof-1
# spans/counters) are whole subtrees of wall-clock data.
TIMING_KEYS = {
    "skip_seconds",
    "window_seconds",
    "window_mips",
    "wall_seconds",
    "workload_seconds",
    "perf",
    "profile",
}


def strip_timing(value):
    if isinstance(value, dict):
        return {
            key: strip_timing(sub)
            for key, sub in value.items()
            if key not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [strip_timing(sub) for sub in value]
    return value


def diff(golden, actual, path, out):
    if type(golden) is not type(actual):
        out.append(f"{path}: type {type(golden).__name__} != "
                   f"{type(actual).__name__}")
    elif isinstance(golden, dict):
        for key in sorted(set(golden) | set(actual)):
            sub = f"{path}.{key}"
            if key not in golden:
                out.append(f"{sub}: only in actual")
            elif key not in actual:
                out.append(f"{sub}: only in golden")
            else:
                diff(golden[key], actual[key], sub, out)
    elif isinstance(golden, list):
        if len(golden) != len(actual):
            out.append(f"{path}: length {len(golden)} != {len(actual)}")
        else:
            for i, (g, a) in enumerate(zip(golden, actual)):
                diff(g, a, f"{path}[{i}]", out)
    elif golden != actual:
        out.append(f"{path}: {golden!r} != {actual!r}")


def median(values):
    values = sorted(values)
    n = len(values)
    mid = n // 2
    if n % 2:
        return values[mid]
    return (values[mid - 1] + values[mid]) / 2.0


def mann_whitney_p(a, b):
    """Two-sided Mann-Whitney U p-value, normal approximation with
    tie and continuity corrections — the same computation as
    src/support/stat_math.cc, so the CLI and the CI gate agree."""
    na, nb = len(a), len(b)
    if na == 0 or nb == 0:
        return 1.0
    pooled = sorted([(v, 0) for v in a] + [(v, 1) for v in b])
    n = na + nb
    ranks = [0.0] * n
    tie_term = 0.0
    i = 0
    while i < n:
        j = i
        while j + 1 < n and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        mid_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = mid_rank
        t = j - i + 1
        tie_term += t * (t * t - 1.0)
        i = j + 1
    rank_sum_a = sum(r for r, (_, which) in zip(ranks, pooled)
                     if which == 0)
    u = rank_sum_a - na * (na + 1) / 2.0
    mean_u = na * nb / 2.0
    var_u = (na * nb / 12.0) * (n + 1.0 - tie_term / (n * (n - 1.0)))
    if var_u <= 0.0:
        return 1.0
    z = (abs(u - mean_u) - 0.5) / math.sqrt(var_u)
    if z < 0.0:
        z = 0.0
    return math.erfc(z / math.sqrt(2.0))


def run_seconds(doc, path):
    if doc.get("schema") != "irep-bench-2":
        sys.exit(f"{path}: --speedup needs an irep-bench-2 document "
                 f"(got schema {doc.get('schema')!r})")
    out = {}
    for name, workload in doc.get("workloads", {}).items():
        runs = workload.get("perf", {}).get("runs_seconds", [])
        if not runs:
            sys.exit(f"{path}: workload {name!r} has no "
                     f"perf.runs_seconds (re-run with --repetitions)")
        out[name] = runs
    return out


def speedup_main(args):
    with open(args.baseline) as f:
        base = run_seconds(json.load(f), args.baseline)
    with open(args.candidate) as f:
        cand = run_seconds(json.load(f), args.candidate)

    shared = sorted(set(base) & set(cand))
    if not shared:
        sys.exit("no workloads in common between the two documents")

    failures = 0
    for name in shared:
        b, c = base[name], cand[name]
        mb, mc = median(b), median(c)
        slowdown = (mc - mb) / mb if mb > 0 else 0.0
        p = mann_whitney_p(b, c)
        significant = p < args.alpha
        regressed = significant and slowdown > args.min_effect
        verdict = "REGRESSED" if regressed else (
            "faster" if significant and slowdown < 0 else "ok")
        print(f"  {name:12s} median {mb:.4f}s -> {mc:.4f}s "
              f"({slowdown:+.1%}, n={len(b)}/{len(c)}, "
              f"p={p:.3f}) {verdict}")
        failures += regressed
    if failures:
        print(f"\n{failures} workload(s) show a statistically "
              f"significant slowdown beyond {args.min_effect:.0%} "
              f"(alpha={args.alpha}).")
        return 1
    print(f"\nno significant regression (alpha={args.alpha}, "
          f"min effect {args.min_effect:.0%})")
    return 0


def exact_main(args):
    with open(args.baseline) as f:
        golden = strip_timing(json.load(f))
    with open(args.candidate) as f:
        actual = strip_timing(json.load(f))

    differences = []
    diff(golden, actual, "$", differences)
    if differences:
        print(f"stats mismatch vs golden ({len(differences)} paths):")
        for line in differences:
            print(f"  {line}")
        print(f"\nIf the change is intentional, regenerate "
              f"{args.baseline} with the command in "
              f".github/workflows/ci.yml.")
        return 1
    print("stats match golden (timing fields excluded)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--speedup", action="store_true",
                        help="statistical comparison of perf runs "
                             "instead of exact stats diff")
    parser.add_argument("--alpha", type=float, default=0.05,
                        help="significance level (default 0.05)")
    parser.add_argument("--min-effect", type=float, default=0.02,
                        help="minimum relative slowdown to flag "
                             "(default 0.02 = 2%%)")
    args = parser.parse_args(argv[1:])
    if args.speedup:
        return speedup_main(args)
    return exact_main(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
