#!/usr/bin/env python3
"""Compare two irep --stats-json documents, ignoring timing fields.

Every counted statistic the toolchain reports is deterministic; only
wall-clock-derived fields legitimately differ between runs (see
docs/performance.md and docs/parallelism.md). CI uses this script to
diff a freshly generated stats report against the checked-in golden
copy, so any change to the simulator or the analyses that perturbs
the numbers must also update the golden file — deliberately.

Usage: compare_stats.py GOLDEN ACTUAL
Exits 0 when the documents match modulo timing, 1 with a list of
differing paths otherwise.
"""

import json
import sys

# Wall-clock-derived fields, excluded from the comparison.
TIMING_KEYS = {
    "skip_seconds",
    "window_seconds",
    "window_mips",
    "wall_seconds",
    "workload_seconds",
}


def strip_timing(value):
    if isinstance(value, dict):
        return {
            key: strip_timing(sub)
            for key, sub in value.items()
            if key not in TIMING_KEYS
        }
    if isinstance(value, list):
        return [strip_timing(sub) for sub in value]
    return value


def diff(golden, actual, path, out):
    if type(golden) is not type(actual):
        out.append(f"{path}: type {type(golden).__name__} != "
                   f"{type(actual).__name__}")
    elif isinstance(golden, dict):
        for key in sorted(set(golden) | set(actual)):
            sub = f"{path}.{key}"
            if key not in golden:
                out.append(f"{sub}: only in actual")
            elif key not in actual:
                out.append(f"{sub}: only in golden")
            else:
                diff(golden[key], actual[key], sub, out)
    elif isinstance(golden, list):
        if len(golden) != len(actual):
            out.append(f"{path}: length {len(golden)} != {len(actual)}")
        else:
            for i, (g, a) in enumerate(zip(golden, actual)):
                diff(g, a, f"{path}[{i}]", out)
    elif golden != actual:
        out.append(f"{path}: {golden!r} != {actual!r}")


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        golden = strip_timing(json.load(f))
    with open(argv[2]) as f:
        actual = strip_timing(json.load(f))

    differences = []
    diff(golden, actual, "$", differences)
    if differences:
        print(f"stats mismatch vs golden ({len(differences)} paths):")
        for line in differences:
            print(f"  {line}")
        print(f"\nIf the change is intentional, regenerate {argv[1]} "
              f"with the command in .github/workflows/ci.yml.")
        return 1
    print("stats match golden (timing fields excluded)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
