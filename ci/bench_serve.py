#!/usr/bin/env python3
"""Measure the trace store's compression across the workload suite.

Runs a cold `irep bench all` pass with the trace cache enabled so
every workload records a format-v2 trace, then distills the per-
workload `perf.trace` blocks (raw vs stored payload bytes) into a
compact report:

    bench_serve.py [--irep build/tools/irep] [--skip N] [--window N]
        [--codec lz|zstd|store] [--out BENCH_serve.json]

The report is the committed BENCH_serve.json: per-workload bytes per
instruction raw and stored, plus the suite median. Exits 1 when the
median stored size reaches 2 bytes per instruction — the trace
store's economy claim (docs/trace-format.md), enforced rather than
asserted in prose.
"""

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--irep", default="build/tools/irep")
    parser.add_argument("--skip", type=int, default=100000)
    parser.add_argument("--window", type=int, default=400000)
    parser.add_argument("--codec", default=None,
                        help="IREP_TRACE_CODEC for the recording "
                             "pass (default: the build's default)")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--max-median", type=float, default=2.0,
                        help="fail when the median stored "
                             "bytes/instr reaches this (default 2.0)")
    args = parser.parse_args(argv[1:])

    with tempfile.TemporaryDirectory(prefix="irep_bench_serve.") as cache:
        env = dict(os.environ, IREP_TRACE_DIR=cache)
        if args.codec:
            env["IREP_TRACE_CODEC"] = args.codec
        suite_path = os.path.join(cache, "suite.json")
        subprocess.run(
            [args.irep, "bench", "all",
             "--skip", str(args.skip), "--window", str(args.window),
             "--stats-json", suite_path],
            env=env, check=True, stdout=subprocess.DEVNULL)
        with open(suite_path) as f:
            suite = json.load(f)

    workloads = {}
    for name, doc in sorted(suite["workloads"].items()):
        trace = doc.get("perf", {}).get("trace")
        if trace is None:
            sys.exit(f"workload {name!r} has no perf.trace block — "
                     f"was the cache really cold?")
        if trace["source"] != "recorded":
            sys.exit(f"workload {name!r} replayed instead of "
                     f"recording; ratios would not be this build's")
        workloads[name] = {
            "format_version": trace["format_version"],
            "raw_bytes": trace["raw_bytes"],
            "stored_bytes": trace["stored_bytes"],
            "raw_bytes_per_instr":
                round(trace["raw_bytes_per_instr"], 4),
            "stored_bytes_per_instr":
                round(trace["stored_bytes_per_instr"], 4),
            "compression_ratio":
                round(trace["raw_bytes"] / trace["stored_bytes"], 2)
                if trace["stored_bytes"] else 0.0,
        }

    stored = [w["stored_bytes_per_instr"] for w in workloads.values()]
    raw = [w["raw_bytes_per_instr"] for w in workloads.values()]
    report = {
        "schema": "irep-serve-bench-1",
        "config": {"skip": args.skip, "window": args.window,
                   "codec": args.codec or "default"},
        "workloads": workloads,
        "median_raw_bytes_per_instr":
            round(statistics.median(raw), 4),
        "median_stored_bytes_per_instr":
            round(statistics.median(stored), 4),
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for name, w in workloads.items():
        print(f"  {name:10s} {w['raw_bytes_per_instr']:6.2f} B/instr "
              f"raw -> {w['stored_bytes_per_instr']:6.2f} stored "
              f"({w['compression_ratio']:.1f}x, "
              f"v{w['format_version']})")
    median = report["median_stored_bytes_per_instr"]
    print(f"\nmedian stored: {median:.2f} B/instr "
          f"(limit {args.max_median}) -> {args.out}")
    if median >= args.max_median:
        print(f"FAIL: median stored bytes/instr {median:.2f} is not "
              f"under {args.max_median}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
