#!/usr/bin/env python3
"""Check relative links and anchors in the repository's Markdown.

Scans every tracked .md file for inline links, verifies that relative
targets exist on disk, and that #fragment targets name a real heading
(GitHub slug rules: lowercase, spaces to dashes, punctuation dropped)
in the linked file. External (scheme://) and mailto links are ignored.

Exit code 0 iff no broken links. Usage:

    python3 ci/check_links.py [root]
"""

import os
import re
import sys

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
SKIP_DIRS = {".git", "build", "third_party", "node_modules"}


def slugify(heading):
    """GitHub's anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            text = CODE_FENCE.sub("", f.read())
        cache[path] = {slugify(h) for h in HEADING.findall(text)}
    return cache[path]


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE.sub("", f.read())
    for target in LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # scheme: URLs
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                errors.append(f"{path}: broken link '{target}' "
                              f"(no such file: {resolved})")
                continue
        else:
            resolved = path
        if fragment:
            if not resolved.endswith(".md"):
                continue  # anchors into non-markdown: not checkable
            if fragment not in anchors_of(resolved):
                errors.append(f"{path}: broken anchor '{target}' "
                              f"(no heading '#{fragment}' in "
                              f"{resolved})")
    return errors


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    errors = []
    checked = 0
    for path in sorted(markdown_files(root)):
        checked += 1
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_links: {checked} markdown files, "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
