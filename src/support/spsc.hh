/**
 * @file
 * A bounded single-producer/single-consumer ring, the transport under
 * the sharded analysis window (core/shard.hh): one thread pushes, one
 * thread pops, order is preserved exactly, and capacity is fixed so a
 * slow consumer exerts backpressure instead of growing a queue.
 *
 * Design rules:
 *
 *  - *One producer, one consumer.* head_ is written only by the
 *    consumer, tail_ only by the producer; each side reads the other's
 *    index with acquire ordering and publishes its own with release.
 *    Any second thread on either end is a usage bug, not a supported
 *    mode — use a mutex queue for that.
 *  - *Slots move.* Payloads are moved in on push and moved out on pop,
 *    so move-only types (std::unique_ptr, batches owning buffers)
 *    work; T must be default-constructible for the slot storage.
 *  - *Blocking calls spin briefly, then park.* The fast path is two
 *    atomic loads and a store; only when the ring stays full/empty
 *    does a side take the mutex and wait on the condition variable.
 *    Waiters advertise themselves through sleepers_, so the hot path
 *    never touches the mutex when nobody is parked. This matters on
 *    oversubscribed hosts (CI runners, --jobs x --window-jobs): a
 *    pure spin ring livelocks when producer and consumer time-share
 *    one core.
 *  - *close() ends the stream.* The producer closes after its final
 *    push; pop() then drains the remaining items and returns false.
 *    Pushing after close is a panic (an irep bug, not user input).
 */

#ifndef IREP_SUPPORT_SPSC_HH
#define IREP_SUPPORT_SPSC_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "support/logging.hh"

namespace irep::parallel
{

template <typename T>
class SpscRing
{
  public:
    /** A ring holding at least @p min_capacity items (rounded up to a
     *  power of two; fatal on 0). */
    explicit SpscRing(size_t min_capacity)
    {
        fatalIf(min_capacity == 0,
                "SpscRing capacity must be positive");
        size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    size_t capacity() const { return slots_.size(); }

    /** Producer only: move @p item into the ring if there is space.
     *  @return false (item untouched) when the ring is full. */
    bool
    tryPush(T &item)
    {
        const uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire) >
            mask_) {
            return false;
        }
        slots_[tail & mask_] = std::move(item);
        tail_.store(tail + 1, std::memory_order_release);
        wake();
        return true;
    }

    /** Producer only: push, parking while the ring is full. */
    void
    push(T item)
    {
        panicIf(closed_.load(std::memory_order_relaxed),
                "SpscRing::push() after close()");
        while (!tryPush(item)) {
            park([this] {
                const uint64_t tail =
                    tail_.load(std::memory_order_relaxed);
                return tail - head_.load(std::memory_order_acquire) <=
                    mask_;
            });
        }
    }

    /** Consumer only: move the oldest item into @p out.
     *  @return false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        const uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire))
            return false;
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        wake();
        return true;
    }

    /**
     * Consumer only: pop, parking while the ring is empty.
     * @return false only once the ring is closed *and* drained — every
     *         item pushed before close() is still delivered.
     */
    bool
    pop(T &out)
    {
        for (;;) {
            if (tryPop(out))
                return true;
            if (closed_.load(std::memory_order_acquire)) {
                // close() happens after the final push; one re-check
                // catches an item published between the failed pop and
                // the closed_ load.
                return tryPop(out);
            }
            park([this] {
                return head_.load(std::memory_order_relaxed) !=
                    tail_.load(std::memory_order_acquire) ||
                    closed_.load(std::memory_order_acquire);
            });
        }
    }

    /** Producer only: no more pushes will come; parked consumers wake
     *  and drain. */
    void
    close()
    {
        closed_.store(true, std::memory_order_release);
        wake();
    }

    bool
    closed() const
    {
        return closed_.load(std::memory_order_acquire);
    }

  private:
    /** Spin briefly on @p ready, then block on the condition variable
     *  (predicate re-checked under the mutex, so a wake() between the
     *  last spin and the wait cannot be lost). */
    template <typename Ready>
    void
    park(Ready &&ready)
    {
        for (int spin = 0; spin < 64; ++spin) {
            if (ready())
                return;
            std::this_thread::yield();
        }
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, ready);
        }
        sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    }

    /** Notify parked peers; a single relaxed-free load keeps the
     *  no-waiter fast path syscall-free. Taking the mutex before
     *  notifying serializes with park()'s wait entry, closing the
     *  missed-wakeup window. */
    void
    wake()
    {
        if (sleepers_.load(std::memory_order_seq_cst) == 0)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        wake_.notify_all();
    }

    std::vector<T> slots_;
    size_t mask_ = 0;

    alignas(64) std::atomic<uint64_t> head_{0};     //!< consumer index
    alignas(64) std::atomic<uint64_t> tail_{0};     //!< producer index
    std::atomic<bool> closed_{false};

    std::mutex mutex_;
    std::condition_variable wake_;
    std::atomic<uint32_t> sleepers_{0};
};

} // namespace irep::parallel

#endif // IREP_SUPPORT_SPSC_HH
