/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (a bug in irep itself);
 * fatal() is for user-caused conditions (bad input program, bad
 * configuration). Both format a message and throw a typed exception so
 * that library users (and tests) can catch them.
 */

#ifndef IREP_SUPPORT_LOGGING_HH
#define IREP_SUPPORT_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace irep
{

/** Thrown by fatal(): the user supplied something invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

inline void
streamAll(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    streamAll(os, rest...);
}

} // namespace detail

/**
 * Abort with a message describing a condition that is the user's fault
 * (bad program, bad configuration).
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    detail::streamAll(os, args...);
    throw FatalError(os.str());
}

/**
 * Abort with a message describing a condition that should never happen
 * regardless of user input (an irep bug).
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    detail::streamAll(os, args...);
    throw PanicError(os.str());
}

/** fatal() unless the condition holds. */
template <typename... Args>
void
fatalIf(bool condition, const Args &...args)
{
    if (condition)
        fatal(args...);
}

/** panic() unless the condition holds. */
template <typename... Args>
void
panicIf(bool condition, const Args &...args)
{
    if (condition)
        panic(args...);
}

} // namespace irep

#endif // IREP_SUPPORT_LOGGING_HH
