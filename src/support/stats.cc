#include "support/stats.hh"

#include <algorithm>
#include <sstream>

#include "support/json.hh"
#include "support/logging.hh"

namespace irep::stats
{

void
Scalar::accept(Visitor &v) const
{
    v.visit(*this);
}

void
Vector::accept(Visitor &v) const
{
    v.visit(*this);
}

Distribution::Distribution(std::string name, std::string desc,
                           std::vector<double> upper_bounds)
    : Stat(std::move(name), std::move(desc)),
      bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0)
{
    fatalIf(bounds_.empty(), "distribution '", this->name(),
            "' needs at least one bucket bound");
    fatalIf(!std::is_sorted(bounds_.begin(), bounds_.end()),
            "distribution '", this->name(),
            "' bucket bounds must be ascending");
}

void
Distribution::sample(double value, uint64_t count)
{
    if (!count)
        return;
    size_t bucket = bounds_.size();    // overflow by default
    for (size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    counts_[bucket] += count;
    if (!count_ || value < min_)
        min_ = value;
    if (!count_ || value > max_)
        max_ = value;
    count_ += count;
    sum_ += value * double(count);
}

void
Distribution::accept(Visitor &v) const
{
    v.visit(*this);
}

void
Group::checkName(const std::string &name) const
{
    fatalIf(name.empty(), "stats: empty name in group '", name_, "'");
    fatalIf(find(name) || findGroup(name), "stats: duplicate name '",
            name, "' in group '", name_, "'");
}

Group &
Group::group(std::string_view name)
{
    for (auto &child : children_) {
        if (child->name() == name)
            return *child;
    }
    fatalIf(find(name), "stats: group name '", std::string(name),
            "' collides with a stat in group '", name_, "'");
    children_.push_back(std::make_unique<Group>(std::string(name)));
    return *children_.back();
}

Scalar &
Group::scalar(std::string name, std::string desc)
{
    checkName(name);
    auto stat =
        std::make_unique<Scalar>(std::move(name), std::move(desc));
    Scalar &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Scalar &
Group::scalar(std::string name, std::string desc,
              Scalar::Source source)
{
    checkName(name);
    auto stat = std::make_unique<Scalar>(
        std::move(name), std::move(desc), std::move(source));
    Scalar &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Vector &
Group::vector(std::string name, std::string desc,
              std::vector<std::string> subnames)
{
    checkName(name);
    auto stat = std::make_unique<Vector>(
        std::move(name), std::move(desc), std::move(subnames));
    Vector &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Vector &
Group::vector(std::string name, std::string desc,
              std::vector<std::string> subnames, Vector::Source source)
{
    checkName(name);
    auto stat = std::make_unique<Vector>(
        std::move(name), std::move(desc), std::move(subnames),
        std::move(source));
    Vector &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

Distribution &
Group::distribution(std::string name, std::string desc,
                    std::vector<double> upper_bounds)
{
    checkName(name);
    auto stat = std::make_unique<Distribution>(
        std::move(name), std::move(desc), std::move(upper_bounds));
    Distribution &ref = *stat;
    stats_.push_back(std::move(stat));
    return ref;
}

const Stat *
Group::find(std::string_view name) const
{
    for (const auto &stat : stats_) {
        if (stat->name() == name)
            return stat.get();
    }
    return nullptr;
}

const Group *
Group::findGroup(std::string_view name) const
{
    for (const auto &child : children_) {
        if (child->name() == name)
            return child.get();
    }
    return nullptr;
}

void
Group::accept(Visitor &v) const
{
    v.beginGroup(*this);
    for (const auto &stat : stats_)
        stat->accept(v);
    for (const auto &child : children_)
        child->accept(v);
    v.endGroup(*this);
}

namespace
{

/** Formats one `path.name  value  # desc` line per stat. */
class TextDumper : public Visitor
{
  public:
    std::string
    str() const
    {
        return os_.str();
    }

    void
    beginGroup(const Group &group) override
    {
        if (!group.name().empty())
            path_.push_back(group.name());
    }

    void
    endGroup(const Group &group) override
    {
        if (!group.name().empty())
            path_.pop_back();
    }

    void
    visit(const Scalar &stat) override
    {
        line(stat.name(), stat.value(), stat.desc());
    }

    void
    visit(const Vector &stat) override
    {
        for (size_t i = 0; i < stat.size(); ++i) {
            line(stat.name() + "::" + stat.subnames()[i],
                 stat.value(i), stat.desc());
        }
    }

    void
    visit(const Distribution &stat) override
    {
        line(stat.name() + "::count", double(stat.count()),
             stat.desc());
        line(stat.name() + "::mean", stat.mean(), stat.desc());
        for (size_t i = 0; i < stat.numBuckets(); ++i) {
            std::ostringstream label;
            label << stat.name() << "::";
            if (i < stat.upperBounds().size())
                label << "le_" << stat.upperBounds()[i];
            else
                label << "overflow";
            line(label.str(), double(stat.bucketCount(i)),
                 stat.desc());
        }
    }

  private:
    void
    line(const std::string &name, double value,
         const std::string &desc)
    {
        std::string full;
        for (const std::string &part : path_)
            full += part + '.';
        full += name;
        os_ << full;
        if (full.size() < 44)
            os_ << std::string(44 - full.size(), ' ');
        os_ << "  " << value;
        if (!desc.empty())
            os_ << "  # " << desc;
        os_ << '\n';
    }

    std::vector<std::string> path_;
    std::ostringstream os_;
};

/** Streams the tree into a json::Writer as nested objects. */
class JsonDumper : public Visitor
{
  public:
    explicit JsonDumper(json::Writer &w) : w_(w) {}

    void
    beginGroup(const Group &group) override
    {
        if (root_) {
            root_ = false;
        } else {
            w_.key(group.name());
        }
        w_.beginObject();
    }

    void
    endGroup(const Group &) override
    {
        w_.endObject();
    }

    void
    visit(const Scalar &stat) override
    {
        w_.field(stat.name(), stat.value());
    }

    void
    visit(const Vector &stat) override
    {
        w_.key(stat.name());
        w_.beginObject();
        for (size_t i = 0; i < stat.size(); ++i)
            w_.field(stat.subnames()[i], stat.value(i));
        w_.endObject();
    }

    void
    visit(const Distribution &stat) override
    {
        w_.key(stat.name());
        w_.beginObject();
        w_.key("buckets");
        w_.beginArray();
        for (size_t i = 0; i < stat.numBuckets(); ++i) {
            w_.beginObject();
            if (i < stat.upperBounds().size())
                w_.field("le", stat.upperBounds()[i]);
            else
                w_.field("le", "inf");
            w_.field("count", stat.bucketCount(i));
            w_.endObject();
        }
        w_.endArray();
        w_.field("count", stat.count());
        w_.field("sum", stat.sum());
        w_.field("min", stat.min());
        w_.field("max", stat.max());
        w_.field("mean", stat.mean());
        w_.endObject();
    }

  private:
    json::Writer &w_;
    bool root_ = true;
};

} // namespace

std::string
dumpText(const Group &root)
{
    TextDumper dumper;
    root.accept(dumper);
    return dumper.str();
}

void
dumpJson(const Group &root, json::Writer &writer)
{
    JsonDumper dumper(writer);
    root.accept(dumper);
}

} // namespace irep::stats
