#include "support/stat_math.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"

namespace irep::stat
{

double
median(std::vector<double> values)
{
    fatalIf(values.empty(), "median of an empty sample");
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    return n % 2 ? values[n / 2]
                 : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    fatalIf(sorted.empty(), "quantile of an empty sample");
    fatalIf(q < 0.0 || q > 1.0, "quantile q out of [0, 1]");
    const double pos = q * double(sorted.size() - 1);
    const size_t lo = size_t(pos);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    const double frac = pos - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Interval
medianCI(std::vector<double> values, double confidence)
{
    fatalIf(values.empty(), "confidence interval of an empty sample");
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    if (n == 1)
        return {values[0], values[0]};

    // Coverage of (x_(k), x_(n+1-k)) is P(k <= X <= n-k) for
    // X ~ Bin(n, 1/2). Walk k up from 1 (full range) while coverage
    // stays at or above the requested confidence.
    std::vector<double> pmf(n + 1);
    double coeff = std::pow(0.5, double(n));    // C(n,0) / 2^n
    for (size_t i = 0; i <= n; ++i) {
        pmf[i] = coeff;
        if (i < n)
            coeff = coeff * double(n - i) / double(i + 1);
    }
    size_t best = 1;
    for (size_t k = 2; 2 * k <= n; ++k) {
        double coverage = 0.0;
        for (size_t i = k; i + k <= n; ++i)
            coverage += pmf[i];
        if (coverage < confidence)
            break;
        best = k;
    }
    return {values[best - 1], values[n - best]};
}

double
relativeIQR(std::vector<double> values)
{
    if (values.size() < 2)
        return 0.0;
    std::sort(values.begin(), values.end());
    const double med = median(values);
    if (med == 0.0)
        return 0.0;
    return (quantileSorted(values, 0.75) -
            quantileSorted(values, 0.25)) /
        med;
}

Summary
summarize(std::vector<double> values)
{
    fatalIf(values.empty(), "summary of an empty sample");
    Summary s;
    s.n = values.size();
    s.ci = medianCI(values);    // sorts a copy
    std::sort(values.begin(), values.end());
    s.median = quantileSorted(values, 0.5);
    s.q1 = quantileSorted(values, 0.25);
    s.q3 = quantileSorted(values, 0.75);
    s.min = values.front();
    s.max = values.back();
    return s;
}

double
mannWhitneyP(const std::vector<double> &a, const std::vector<double> &b)
{
    const size_t na = a.size(), nb = b.size();
    if (na == 0 || nb == 0)
        return 1.0;

    // Midranks over the pooled sample, tracking tie groups for the
    // variance correction.
    struct Tagged
    {
        double value;
        bool fromA;
    };
    std::vector<Tagged> pool;
    pool.reserve(na + nb);
    for (double v : a)
        pool.push_back({v, true});
    for (double v : b)
        pool.push_back({v, false});
    std::sort(pool.begin(), pool.end(),
              [](const Tagged &x, const Tagged &y) {
                  return x.value < y.value;
              });

    const double n = double(na + nb);
    double rankSumA = 0.0;
    double tieTerm = 0.0;   // sum of t^3 - t over tie groups
    for (size_t i = 0; i < pool.size();) {
        size_t j = i;
        while (j < pool.size() && pool[j].value == pool[i].value)
            ++j;
        const double t = double(j - i);
        // Ranks are 1-based; tied values share the group's midrank.
        const double midrank = 0.5 * (double(i + 1) + double(j));
        for (size_t k = i; k < j; ++k) {
            if (pool[k].fromA)
                rankSumA += midrank;
        }
        tieTerm += t * t * t - t;
        i = j;
    }

    const double u =
        rankSumA - double(na) * double(na + 1) / 2.0;
    const double meanU = double(na) * double(nb) / 2.0;
    const double var = double(na) * double(nb) / 12.0 *
        (n + 1.0 - tieTerm / (n * (n - 1.0)));
    if (var <= 0.0)
        return 1.0;     // every value tied — no evidence of difference

    // Continuity correction toward the mean, two-sided normal tail.
    const double z =
        (std::fabs(u - meanU) - 0.5) / std::sqrt(var);
    if (z <= 0.0)
        return 1.0;
    return std::erfc(z / std::sqrt(2.0));
}

} // namespace irep::stat
