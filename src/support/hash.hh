/**
 * @file
 * Hash-combining utilities used by the repetition tracker, which hashes
 * (input operands, output) tuples for billions-scale instance lookup.
 */

#ifndef IREP_SUPPORT_HASH_HH
#define IREP_SUPPORT_HASH_HH

#include <cstddef>
#include <cstdint>

namespace irep
{

/**
 * Mix a 64-bit value into a running hash (splitmix64 finalizer, a
 * well-distributed and cheap mixer).
 */
constexpr uint64_t
hashMix(uint64_t h, uint64_t v)
{
    uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

/** Hash an initializer list of 64-bit values. */
constexpr uint64_t
hashValues(std::initializer_list<uint64_t> values)
{
    uint64_t h = 0x51ed270b35a4c9c1ull;
    for (uint64_t v : values)
        h = hashMix(h, v);
    return h;
}

} // namespace irep

#endif // IREP_SUPPORT_HASH_HH
