/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * (used by `stats::dumpJson`, the JSONL retire tracer and the bench
 * harness) and a small recursive-descent parser (used by tests and by
 * anything that wants to diff two stats reports).
 *
 * The writer guarantees valid RFC 8259 output: strings are escaped,
 * integers print exactly, doubles round-trip (shortest form via
 * std::to_chars), and non-finite doubles — which JSON cannot
 * represent — are emitted as null.
 */

#ifndef IREP_SUPPORT_JSON_HH
#define IREP_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace irep::json
{

/**
 * Streaming JSON writer. Call begin/end for containers, key() before
 * each object member, value() for leaves. Nesting and comma placement
 * are tracked internally; misuse (a value where a key is required,
 * unbalanced end calls) panics.
 */
class Writer
{
  public:
    /** @param pretty Indent output (2 spaces per level). */
    explicit Writer(std::ostream &out, bool pretty = true);

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start an object member; must be followed by a value or
     *  container. */
    void key(std::string_view name);

    void value(std::string_view text);
    void value(const char *text) { value(std::string_view(text)); }
    void value(double number);
    void value(uint64_t number);
    void value(int64_t number);
    void value(int number) { value(int64_t(number)); }
    void value(unsigned number) { value(uint64_t(number)); }
    void value(bool flag);
    void null();

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view name, T v)
    {
        key(name);
        value(v);
    }

    /** Depth of open containers (0 when the document is complete). */
    size_t depth() const { return stack_.size(); }

    /** Append @p text escaped as a JSON string (with quotes) to
     *  @p out. */
    static void writeEscaped(std::ostream &out, std::string_view text);

  private:
    struct Level
    {
        bool isArray;
        size_t members = 0;
    };

    void beforeValue();
    void newline();

    std::ostream &out_;
    bool pretty_;
    bool keyPending_ = false;
    bool done_ = false;
    std::vector<Level> stack_;
};

/**
 * A parsed JSON document node. Numbers are stored as double (plus the
 * original text so integer callers can recover full uint64 precision).
 */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Numeric value; fatal() when not a number. */
    double asNumber() const;
    /** Numeric value parsed as uint64 (full precision). */
    uint64_t asU64() const;
    bool asBool() const;
    const std::string &asString() const;

    /** Object member access; fatal() on missing key / wrong kind. */
    const Value &at(std::string_view key) const;
    bool contains(std::string_view key) const;
    /** Array element access; fatal() when out of range. */
    const Value &at(size_t index) const;
    /** Array length or object member count. */
    size_t size() const;

    const std::vector<std::pair<std::string, Value>> &members() const
    {
        return object_;
    }
    const std::vector<Value> &elements() const { return array_; }

  private:
    friend class Parser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string text_;      //!< string value, or raw number text
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

/** Parse a complete JSON document; fatal() on malformed input. */
Value parse(std::string_view text);

} // namespace irep::json

#endif // IREP_SUPPORT_JSON_HH
