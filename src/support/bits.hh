/**
 * @file
 * Fixed-width bit-manipulation helpers used by the ISA encoder/decoder.
 */

#ifndef IREP_SUPPORT_BITS_HH
#define IREP_SUPPORT_BITS_HH

#include <cstdint>

#include "support/logging.hh"

namespace irep
{

/**
 * Extract bits [hi:lo] (inclusive, hi >= lo) of a 32-bit word.
 *
 * @param word  Source word.
 * @param hi    Most-significant bit position (0..31).
 * @param lo    Least-significant bit position (0..31).
 * @return The extracted field, right-justified.
 */
constexpr uint32_t
bits(uint32_t word, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    const uint32_t mask =
        width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (word >> lo) & mask;
}

/**
 * Insert a field into bits [hi:lo] of a word (previous contents of the
 * field are cleared).
 */
constexpr uint32_t
insertBits(uint32_t word, unsigned hi, unsigned lo, uint32_t value)
{
    const unsigned width = hi - lo + 1;
    const uint32_t mask =
        width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
    return (word & ~(mask << lo)) | ((value & mask) << lo);
}

/** Sign-extend the low @p width bits of @p value to 32 bits. */
constexpr int32_t
signExtend(uint32_t value, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<int32_t>(value << shift) >> shift;
}

/** True if @p value fits in a signed @p width -bit immediate. */
constexpr bool
fitsSigned(int64_t value, unsigned width)
{
    const int64_t lo = -(int64_t(1) << (width - 1));
    const int64_t hi = (int64_t(1) << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** True if @p value fits in an unsigned @p width -bit immediate. */
constexpr bool
fitsUnsigned(int64_t value, unsigned width)
{
    return value >= 0 && value < (int64_t(1) << width);
}

} // namespace irep

#endif // IREP_SUPPORT_BITS_HH
