#include "support/checksum.hh"

#include <array>
#include <cstring>

namespace irep
{

namespace
{

/**
 * Slicing-by-8 tables for the reflected 0xEDB88320 polynomial:
 * table[0] is the classic byte-at-a-time table; table[k][b] is the
 * CRC of byte b followed by k zero bytes, which lets the hot loop
 * fold eight input bytes per iteration. Trace replay checksums every
 * block payload (~8 bytes per retired instruction), so the
 * byte-at-a-time loop would show up in end-to-end replay throughput.
 */
constexpr std::array<std::array<uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = t[0][i];
        for (size_t k = 1; k < 8; ++k) {
            c = t[0][c & 0xff] ^ (c >> 8);
            t[k][i] = c;
        }
    }
    return t;
}

constexpr std::array<std::array<uint32_t, 256>, 8> tables =
    makeTables();

} // namespace

uint32_t
crc32Update(uint32_t crc, const void *data, size_t size)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    crc = ~crc;
    while (size >= 8) {
        uint32_t lo;
        uint32_t hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= crc;
        crc = tables[7][lo & 0xff] ^ tables[6][(lo >> 8) & 0xff] ^
              tables[5][(lo >> 16) & 0xff] ^ tables[4][lo >> 24] ^
              tables[3][hi & 0xff] ^ tables[2][(hi >> 8) & 0xff] ^
              tables[1][(hi >> 16) & 0xff] ^ tables[0][hi >> 24];
        p += 8;
        size -= 8;
    }
    while (size--)
        crc = tables[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return ~crc;
}

} // namespace irep
