#include "support/parse.hh"

#include <cerrno>
#include <cstdlib>

#include "support/logging.hh"

namespace irep::parse
{

uint64_t
parseU64(const std::string &what, const std::string &text)
{
    fatalIf(text.empty(), what, " needs a number");
    errno = 0;
    char *end = nullptr;
    const uint64_t value = std::strtoull(text.c_str(), &end, 10);
    fatalIf(end == text.c_str() || *end != '\0',
            what, ": '", text, "' is not a number");
    fatalIf(errno == ERANGE, what, ": '", text, "' is out of range");
    fatalIf(text[0] == '-', what, ": '", text, "' is negative");
    return value;
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return parseU64(name, value);
}

bool
envFlag(const char *name)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return false;
    const std::string text = value;
    fatalIf(text != "0" && text != "1",
            name, ": '", text, "' is not a flag (use 0 or 1)");
    return text == "1";
}

} // namespace irep::parse
