/**
 * @file
 * A low-overhead, pipeline-wide profiler and metrics registry.
 *
 * Two kinds of probe, both safe to leave compiled into hot code:
 *
 *  - **Spans** — scoped wall-clock intervals (`Span s("window",
 *    "pipeline");` or the explicit `recordSpan()`), each tagged with a
 *    name, a category, the recording thread, and optional numeric
 *    args. Spans are what the Chrome trace-event export renders as
 *    bars in Perfetto / chrome://tracing.
 *  - **Counters** — named accumulating metrics (`counterAdd("trace_io/
 *    records", n)`). Counters from every thread merge additively at
 *    report time.
 *
 * Cost model: profiling is off by default. Every probe starts with a
 * single relaxed atomic load (`enabled()`); when it is false the probe
 * is a branch and nothing else — no clock read, no allocation, no
 * lock. Defining `IREP_PROF_DISABLED` at compile time turns
 * `enabled()` into a constant `false`, folding every probe away
 * entirely. When profiling *is* on, each recording thread appends into
 * its own buffer under an uncontended per-thread mutex (taken only so
 * a report can be merged while worker threads are still alive —
 * TSan-clean by construction); nothing in the process is globally
 * serialized except thread registration and the final merge.
 *
 * Probes are deliberately coarse (phases, workloads, replay calls,
 * fuzz programs). Per-retire costs are never spanned directly — the
 * analysis pipeline *samples* them (see AnalysisPipeline) and
 * publishes the aggregate through counters.
 *
 * Reports:
 *  - `writeTraceJson()` — Chrome trace-event JSON (`--profile-json`),
 *    loadable in Perfetto; published atomically via AtomicOutFile.
 *  - `writeSummary()` — the `irep-prof-1` block embedded in
 *    `--stats-json` documents: spans aggregated by category/name
 *    (count, total/min/max ns) plus every merged counter, in
 *    deterministic (sorted) order.
 */

#ifndef IREP_SUPPORT_PROF_HH
#define IREP_SUPPORT_PROF_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace irep::json
{
class Writer;
}

namespace irep::prof
{

namespace detail
{
extern std::atomic<bool> enabledFlag;
}

/** Is profiling on? One relaxed load; constant false when compiled
 *  out with IREP_PROF_DISABLED. */
inline bool
enabled()
{
#ifdef IREP_PROF_DISABLED
    return false;
#else
    return detail::enabledFlag.load(std::memory_order_relaxed);
#endif
}

/** Turn profiling on or off process-wide (CLI: --profile-json or
 *  IREP_PROF=1). A no-op under IREP_PROF_DISABLED. */
void enable(bool on = true);

/** Monotonic nanoseconds since the profiler epoch (first use). */
uint64_t nowNs();

/** Optional numeric annotations attached to a span (rendered as
 *  `args` in the trace-event export). */
using SpanArgs = std::vector<std::pair<std::string, double>>;

/**
 * Record one completed span on the calling thread. @p start_ns /
 * @p dur_ns come from nowNs(). Does nothing when profiling is off.
 */
void recordSpan(std::string name, std::string cat, uint64_t start_ns,
                uint64_t dur_ns, SpanArgs args = {});

/** Add @p delta to the named counter (created on first use). Does
 *  nothing when profiling is off. */
void counterAdd(const std::string &name, double delta);

/**
 * RAII span: stamps the clock at construction, records on
 * destruction. When profiling is off both ends are a single branch.
 */
class Span
{
  public:
    explicit Span(std::string name, std::string cat = "irep")
    {
        if (enabled()) {
            live_ = true;
            name_ = std::move(name);
            cat_ = std::move(cat);
            start_ = nowNs();
        }
    }

    ~Span()
    {
        if (live_)
            recordSpan(std::move(name_), std::move(cat_), start_,
                       nowNs() - start_, std::move(args_));
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a numeric annotation to the span being recorded. */
    void
    arg(std::string key, double value)
    {
        if (live_)
            args_.emplace_back(std::move(key), value);
    }

  private:
    bool live_ = false;
    std::string name_;
    std::string cat_;
    uint64_t start_ = 0;
    SpanArgs args_;
};

/** One recorded span, as merged into a report. */
struct Event
{
    std::string name;
    std::string cat;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    unsigned tid = 0;   //!< profiler thread id (registration order)
    SpanArgs args;
};

/** Aggregate of every span sharing one (cat, name). */
struct SpanStat
{
    std::string name;
    std::string cat;
    uint64_t count = 0;
    uint64_t totalNs = 0;
    uint64_t minNs = 0;
    uint64_t maxNs = 0;
};

/** A merged snapshot of every thread's buffer. */
struct Report
{
    std::vector<Event> events;      //!< by (startNs, tid)
    std::vector<SpanStat> spans;    //!< by (cat, name)
    std::map<std::string, double> counters;
};

/** Merge every thread buffer (live threads included) into a report. */
Report snapshot();

/** Any span or counter recorded since the last reset()? */
bool anythingRecorded();

/**
 * Write the merged trace as Chrome trace-event JSON. The @p path
 * variant publishes atomically (tmp + fsync + rename; `-` = stdout).
 */
void writeTraceJson(std::ostream &out);
void writeTraceJson(const std::string &path);

/** Write the `irep-prof-1` summary object at the writer's current
 *  position (caller supplies the surrounding key). */
void writeSummary(json::Writer &w);

/** Drop every recorded event and counter (tests). Threads keep
 *  recording into fresh buffers afterwards. */
void reset();

} // namespace irep::prof

#endif // IREP_SUPPORT_PROF_HH
