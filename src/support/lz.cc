#include "support/lz.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

namespace irep::lz
{
namespace
{

/*
 * Adaptive binary range coder, the LZMA construction: 11-bit
 * probabilities, shift-5 adaptation, 32-bit range with a 64-bit low
 * accumulator whose carry is resolved through a cache byte. The
 * first output byte is always the initial zero cache; the decoder
 * reads it back as part of its 5-byte priming sequence.
 */
using Prob = uint16_t;

constexpr unsigned probBits = 11;
constexpr Prob probInit = 1u << (probBits - 1);
constexpr unsigned moveBits = 5;
constexpr uint32_t topValue = 1u << 24;

class RangeEncoder
{
  public:
    RangeEncoder(uint8_t *out, size_t cap)
        : out_(out), end_(out + cap), begin_(out)
    {
    }

    void
    encodeBit(Prob &p, unsigned bit)
    {
        const uint32_t bound = (range_ >> probBits) * p;
        if (bit == 0) {
            range_ = bound;
            p = Prob(p + (((1u << probBits) - p) >> moveBits));
        } else {
            low_ += bound;
            range_ -= bound;
            p = Prob(p - (p >> moveBits));
        }
        if (range_ < topValue) {
            range_ <<= 8;
            shiftLow();
        }
    }

    void
    encodeDirect(uint32_t value, unsigned numBits)
    {
        for (unsigned i = numBits; i-- > 0;) {
            range_ >>= 1;
            if ((value >> i) & 1)
                low_ += range_;
            if (range_ < topValue) {
                range_ <<= 8;
                shiftLow();
            }
        }
    }

    void
    flush()
    {
        for (int i = 0; i < 5; ++i)
            shiftLow();
    }

    bool
    overflowed() const
    {
        return overflow_;
    }

    size_t
    bytesWritten() const
    {
        return size_t(out_ - begin_);
    }

  private:
    void
    shiftLow()
    {
        if (uint32_t(low_) < 0xff000000u || (low_ >> 32) != 0) {
            uint8_t carry = uint8_t(low_ >> 32);
            do {
                putByte(uint8_t(cache_ + carry));
                cache_ = 0xff;
            } while (--cacheSize_ != 0);
            cache_ = uint8_t(low_ >> 24);
        }
        ++cacheSize_;
        // Bits 24-31 have been handed to the cache byte (or counted
        // in cacheSize as pending 0xff); only bits 0-23 carry over.
        low_ = (low_ & 0x00ffffffu) << 8;
    }

    void
    putByte(uint8_t b)
    {
        if (out_ == end_) {
            overflow_ = true;
            return;
        }
        *out_++ = b;
    }

    uint64_t low_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint8_t cache_ = 0;
    uint64_t cacheSize_ = 1;
    uint8_t *out_;
    uint8_t *end_;
    uint8_t *begin_;
    bool overflow_ = false;
};

class RangeDecoder
{
  public:
    RangeDecoder(const uint8_t *in, size_t n) : in_(in), end_(in + n)
    {
        // Priming: skip the encoder's initial cache byte, then load
        // four code bytes. Truncated input pads with zeros; the
        // caller's CRC rejects whatever that decodes to.
        readByte();
        for (int i = 0; i < 4; ++i)
            code_ = (code_ << 8) | readByte();
    }

    unsigned
    decodeBit(Prob &p)
    {
        const uint32_t bound = (range_ >> probBits) * p;
        unsigned bit;
        if (code_ < bound) {
            range_ = bound;
            p = Prob(p + (((1u << probBits) - p) >> moveBits));
            bit = 0;
        } else {
            code_ -= bound;
            range_ -= bound;
            p = Prob(p - (p >> moveBits));
            bit = 1;
        }
        if (range_ < topValue) {
            range_ <<= 8;
            code_ = (code_ << 8) | readByte();
        }
        return bit;
    }

    uint32_t
    decodeDirect(unsigned numBits)
    {
        uint32_t value = 0;
        for (unsigned i = 0; i < numBits; ++i) {
            range_ >>= 1;
            unsigned bit = 0;
            if (code_ >= range_) {
                code_ -= range_;
                bit = 1;
            }
            value = (value << 1) | bit;
            if (range_ < topValue) {
                range_ <<= 8;
                code_ = (code_ << 8) | readByte();
            }
        }
        return value;
    }

  private:
    uint8_t
    readByte()
    {
        return in_ < end_ ? *in_++ : 0;
    }

    uint32_t range_ = 0xffffffffu;
    uint32_t code_ = 0;
    const uint8_t *in_;
    const uint8_t *end_;
};

/* ------------------------------------------------------------------ */
/* Bit-model layout                                                    */

constexpr unsigned minMatch = 2;
constexpr unsigned minFind = 4;
// Length coding covers [minMatch, minMatch + 8 + 8 + 256).
constexpr unsigned maxMatch = minMatch + 8 + 8 + 256 - 1;
constexpr unsigned numSlotBits = 6;
constexpr unsigned startPosModelSlot = 4;
constexpr unsigned endPosModelSlot = 14;
constexpr unsigned numAlignBits = 4;
// Distances below 1 << (endPosModelSlot / 2) use fully adaptive low
// bits out of one shared region, LZMA's SpecPos layout.
constexpr unsigned numSpecPos =
    (1u << (endPosModelSlot / 2)) - endPosModelSlot;

struct LenModel {
    Prob choice;
    Prob choice2;
    Prob low[8];
    Prob mid[8];
    Prob high[256];
};

struct Models {
    Prob isMatch[2]; // context: last symbol was a match
    Prob isRep[2];
    Prob lit[256][256]; // order-1 context -> 8-bit tree
    LenModel len;
    LenModel repLen;
    Prob slot[1u << numSlotBits];
    Prob specPos[numSpecPos];
    Prob align[1u << numAlignBits];

    void
    reset()
    {
        auto fill = [](Prob *p, size_t count) {
            std::fill(p, p + count, probInit);
        };
        fill(isMatch, 2);
        fill(isRep, 2);
        fill(&lit[0][0], 256 * 256);
        for (LenModel *lm : {&len, &repLen}) {
            lm->choice = lm->choice2 = probInit;
            fill(lm->low, 8);
            fill(lm->mid, 8);
            fill(lm->high, 256);
        }
        fill(slot, 1u << numSlotBits);
        fill(specPos, numSpecPos);
        fill(align, 1u << numAlignBits);
    }
};

void
encodeTree(RangeEncoder &rc, Prob *probs, unsigned numBits,
           unsigned symbol)
{
    unsigned m = 1;
    for (unsigned i = numBits; i-- > 0;) {
        const unsigned bit = (symbol >> i) & 1;
        rc.encodeBit(probs[m], bit);
        m = (m << 1) | bit;
    }
}

unsigned
decodeTree(RangeDecoder &rc, Prob *probs, unsigned numBits)
{
    unsigned m = 1;
    for (unsigned i = 0; i < numBits; ++i)
        m = (m << 1) | rc.decodeBit(probs[m]);
    return m - (1u << numBits);
}

void
encodeTreeReverse(RangeEncoder &rc, Prob *probs, unsigned numBits,
                  unsigned symbol)
{
    unsigned m = 1;
    for (unsigned i = 0; i < numBits; ++i) {
        const unsigned bit = (symbol >> i) & 1;
        rc.encodeBit(probs[m], bit);
        m = (m << 1) | bit;
    }
}

unsigned
decodeTreeReverse(RangeDecoder &rc, Prob *probs, unsigned numBits)
{
    unsigned m = 1;
    unsigned value = 0;
    for (unsigned i = 0; i < numBits; ++i) {
        const unsigned bit = rc.decodeBit(probs[m]);
        m = (m << 1) | bit;
        value |= bit << i;
    }
    return value;
}

void
encodeLen(RangeEncoder &rc, LenModel &lm, unsigned len)
{
    // len is zero-based (actual length - minMatch).
    if (len < 8) {
        rc.encodeBit(lm.choice, 0);
        encodeTree(rc, lm.low, 3, len);
    } else if (len < 16) {
        rc.encodeBit(lm.choice, 1);
        rc.encodeBit(lm.choice2, 0);
        encodeTree(rc, lm.mid, 3, len - 8);
    } else {
        rc.encodeBit(lm.choice, 1);
        rc.encodeBit(lm.choice2, 1);
        encodeTree(rc, lm.high, 8, len - 16);
    }
}

unsigned
decodeLen(RangeDecoder &rc, LenModel &lm)
{
    if (rc.decodeBit(lm.choice) == 0)
        return decodeTree(rc, lm.low, 3);
    if (rc.decodeBit(lm.choice2) == 0)
        return 8 + decodeTree(rc, lm.mid, 3);
    return 16 + decodeTree(rc, lm.high, 8);
}

unsigned
slotOf(uint32_t distVal)
{
    if (distVal < startPosModelSlot)
        return distVal;
    const unsigned lg = 31 - unsigned(__builtin_clz(distVal));
    return (lg << 1) + ((distVal >> (lg - 1)) & 1);
}

void
encodeDist(RangeEncoder &rc, Models &m, uint32_t distVal)
{
    const unsigned slot = slotOf(distVal);
    encodeTree(rc, m.slot, numSlotBits, slot);
    if (slot < startPosModelSlot)
        return;
    const unsigned footerBits = (slot >> 1) - 1;
    const uint32_t base = (2u | (slot & 1)) << footerBits;
    const uint32_t rest = distVal - base;
    if (slot < endPosModelSlot) {
        encodeTreeReverse(rc, m.specPos + base - slot - 1,
                          footerBits, rest);
    } else {
        rc.encodeDirect(rest >> numAlignBits,
                        footerBits - numAlignBits);
        encodeTreeReverse(rc, m.align, numAlignBits,
                          rest & ((1u << numAlignBits) - 1));
    }
}

uint32_t
decodeDist(RangeDecoder &rc, Models &m)
{
    const unsigned slot = decodeTree(rc, m.slot, numSlotBits);
    if (slot < startPosModelSlot)
        return slot;
    const unsigned footerBits = (slot >> 1) - 1;
    uint32_t distVal = (2u | (slot & 1)) << footerBits;
    if (slot < endPosModelSlot) {
        distVal += decodeTreeReverse(rc, m.specPos + distVal - slot - 1,
                                     footerBits);
    } else {
        distVal += rc.decodeDirect(footerBits - numAlignBits)
                   << numAlignBits;
        distVal += decodeTreeReverse(rc, m.align, numAlignBits);
    }
    return distVal;
}

/* ------------------------------------------------------------------ */
/* Match finder: hash chains over 4-byte prefixes, full-block window. */

constexpr unsigned hashBits = 16;
constexpr int maxChainDepth = 48;

class MatchFinder
{
  public:
    MatchFinder(const uint8_t *src, size_t n)
        : src_(src), n_(n), head_(size_t(1) << hashBits, -1),
          prev_(n, -1)
    {
    }

    void
    insert(size_t pos)
    {
        if (pos + 4 > n_)
            return;
        const uint32_t h = hash4(pos);
        prev_[pos] = head_[h];
        head_[h] = int32_t(pos);
    }

    /** Longest match at @p pos among inserted positions; returns the
     *  length (0 when below the find threshold) and sets @p off. */
    unsigned
    find(size_t pos, uint32_t &off) const
    {
        off = 0;
        if (pos + 4 > n_)
            return 0;
        const size_t limit = std::min(size_t(maxMatch), n_ - pos);
        unsigned best = 0;
        int32_t cand = head_[hash4(pos)];
        int depth = maxChainDepth;
        while (cand >= 0 && depth-- > 0) {
            const size_t c = size_t(cand);
            // Cheap reject: a longer match must extend past best.
            if (best == 0 || src_[c + best] == src_[pos + best]) {
                size_t len = 0;
                while (len < limit && src_[c + len] == src_[pos + len])
                    ++len;
                if (len > best) {
                    best = unsigned(len);
                    off = uint32_t(pos - c);
                    if (len >= limit)
                        break;
                }
            }
            cand = prev_[c];
        }
        return best >= minFind ? best : 0;
    }

  private:
    uint32_t
    hash4(size_t pos) const
    {
        uint32_t v;
        std::memcpy(&v, src_ + pos, 4);
        return (v * 2654435761u) >> (32 - hashBits);
    }

    const uint8_t *src_;
    size_t n_;
    std::vector<int32_t> head_;
    std::vector<int32_t> prev_;
};

unsigned
matchLenAt(const uint8_t *src, size_t n, size_t pos, uint32_t off)
{
    if (off == 0 || off > pos)
        return 0;
    const size_t limit = std::min(size_t(maxMatch), n - pos);
    size_t len = 0;
    while (len < limit && src[pos - off + len] == src[pos + len])
        ++len;
    return unsigned(len);
}

} // namespace

size_t
maxCompressedSize(size_t rawSize)
{
    // The range coder expands incompressible data by well under 1/8;
    // the constant covers the 5-byte flush and tiny inputs.
    return rawSize + rawSize / 8 + 64;
}

size_t
compress(const uint8_t *src, size_t n, uint8_t *dst, size_t cap)
{
    RangeEncoder rc(dst, cap);
    auto models = std::make_unique<Models>();
    Models &m = *models;
    m.reset();
    MatchFinder finder(src, n);

    size_t pos = 0;
    uint32_t rep0 = 0;
    unsigned state = 0; // 0 after literal, 1 after match
    while (pos < n && !rc.overflowed()) {
        const unsigned repLen = matchLenAt(src, n, pos, rep0);
        uint32_t off = 0;
        unsigned len = finder.find(pos, off);
        finder.insert(pos);
        // Lazy step: prefer a literal when the next position holds a
        // strictly longer match.
        if (len >= minFind && len < 64 && pos + 1 < n) {
            uint32_t off2 = 0;
            const unsigned len2 = finder.find(pos + 1, off2);
            if (len2 > len)
                len = 0;
        }
        size_t advance;
        if (repLen >= minMatch && repLen + 2 >= len) {
            rc.encodeBit(m.isMatch[state], 1);
            rc.encodeBit(m.isRep[state], 1);
            encodeLen(rc, m.repLen, repLen - minMatch);
            state = 1;
            advance = repLen;
        } else if (len >= minFind) {
            rc.encodeBit(m.isMatch[state], 1);
            rc.encodeBit(m.isRep[state], 0);
            encodeLen(rc, m.len, len - minMatch);
            encodeDist(rc, m, off - 1);
            rep0 = off;
            state = 1;
            advance = len;
        } else {
            rc.encodeBit(m.isMatch[state], 0);
            const uint8_t prev = pos > 0 ? src[pos - 1] : 0;
            encodeTree(rc, m.lit[prev], 8, src[pos]);
            state = 0;
            advance = 1;
        }
        for (size_t i = 1; i < advance; ++i)
            finder.insert(pos + i);
        pos += advance;
    }
    rc.flush();
    if (rc.overflowed())
        return 0;
    return rc.bytesWritten();
}

bool
decompress(const uint8_t *src, size_t n, uint8_t *dst,
           size_t rawSize)
{
    if (rawSize == 0)
        return true;
    RangeDecoder rc(src, n);
    auto models = std::make_unique<Models>();
    Models &m = *models;
    m.reset();

    size_t outPos = 0;
    uint32_t rep0 = 0;
    unsigned state = 0;
    while (outPos < rawSize) {
        if (rc.decodeBit(m.isMatch[state]) == 0) {
            const uint8_t prev = outPos > 0 ? dst[outPos - 1] : 0;
            dst[outPos++] =
                uint8_t(decodeTree(rc, m.lit[prev], 8));
            state = 0;
            continue;
        }
        unsigned len;
        uint32_t off;
        if (rc.decodeBit(m.isRep[state]) != 0) {
            if (rep0 == 0)
                return false;
            len = decodeLen(rc, m.repLen) + minMatch;
            off = rep0;
        } else {
            len = decodeLen(rc, m.len) + minMatch;
            off = decodeDist(rc, m) + 1;
            rep0 = off;
        }
        if (off > outPos || outPos + len > rawSize)
            return false;
        const uint8_t *from = dst + (outPos - off);
        for (unsigned i = 0; i < len; ++i)
            dst[outPos + i] = from[i];
        outPos += len;
        state = 1;
    }
    return true;
}

} // namespace irep::lz
