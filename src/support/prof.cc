#include "support/prof.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

#include "support/json.hh"
#include "support/outfile.hh"

namespace irep::prof
{

namespace detail
{
std::atomic<bool> enabledFlag{false};
}

namespace
{

/**
 * One thread's recording buffer. Owned by the global registry (so it
 * survives its thread — pool workers die before the report is
 * written), written only by its thread, read by whichever thread
 * merges the snapshot; the per-buffer mutex makes both directions
 * race-free and is uncontended in the steady state.
 */
struct ThreadBuf
{
    std::mutex mutex;
    std::vector<Event> events;
    std::map<std::string, double> counters;
    unsigned tid = 0;
};

struct Registry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadBuf>> buffers;
    std::atomic<uint64_t> epoch{0};     //!< bumped by reset()
};

Registry &
registry()
{
    static Registry r;
    return r;
}

/** The calling thread's buffer, re-acquired after any reset(). */
ThreadBuf &
threadBuf()
{
    thread_local ThreadBuf *buf = nullptr;
    thread_local uint64_t bufEpoch = ~uint64_t(0);

    Registry &reg = registry();
    const uint64_t epoch = reg.epoch.load(std::memory_order_acquire);
    if (buf && bufEpoch == epoch)
        return *buf;

    std::lock_guard<std::mutex> lock(reg.mutex);
    auto fresh = std::make_unique<ThreadBuf>();
    fresh->tid = unsigned(reg.buffers.size()) + 1;
    buf = fresh.get();
    bufEpoch = reg.epoch.load(std::memory_order_relaxed);
    reg.buffers.push_back(std::move(fresh));
    return *buf;
}

std::chrono::steady_clock::time_point
epochStart()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

} // namespace

void
enable(bool on)
{
#ifdef IREP_PROF_DISABLED
    (void)on;
#else
    epochStart();   // pin the clock epoch before the first probe
    detail::enabledFlag.store(on, std::memory_order_relaxed);
#endif
}

uint64_t
nowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - epochStart())
                        .count());
}

void
recordSpan(std::string name, std::string cat, uint64_t start_ns,
           uint64_t dur_ns, SpanArgs args)
{
    if (!enabled())
        return;
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    Event event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.startNs = start_ns;
    event.durNs = dur_ns;
    event.tid = buf.tid;
    event.args = std::move(args);
    buf.events.push_back(std::move(event));
}

void
counterAdd(const std::string &name, double delta)
{
    if (!enabled())
        return;
    ThreadBuf &buf = threadBuf();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.counters[name] += delta;
}

Report
snapshot()
{
    Report report;
    Registry &reg = registry();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (const auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        report.events.insert(report.events.end(), buf->events.begin(),
                             buf->events.end());
        for (const auto &[name, value] : buf->counters)
            report.counters[name] += value;
    }

    std::sort(report.events.begin(), report.events.end(),
              [](const Event &a, const Event &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.name < b.name;
              });

    // Aggregate by (cat, name), deterministically ordered.
    std::map<std::pair<std::string, std::string>, SpanStat> agg;
    for (const Event &event : report.events) {
        SpanStat &stat = agg[{event.cat, event.name}];
        if (stat.count == 0) {
            stat.name = event.name;
            stat.cat = event.cat;
            stat.minNs = event.durNs;
            stat.maxNs = event.durNs;
        }
        ++stat.count;
        stat.totalNs += event.durNs;
        stat.minNs = std::min(stat.minNs, event.durNs);
        stat.maxNs = std::max(stat.maxNs, event.durNs);
    }
    report.spans.reserve(agg.size());
    for (auto &[key, stat] : agg)
        report.spans.push_back(std::move(stat));
    return report;
}

bool
anythingRecorded()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (const auto &buf : reg.buffers) {
        std::lock_guard<std::mutex> lock(buf->mutex);
        if (!buf->events.empty() || !buf->counters.empty())
            return true;
    }
    return false;
}

void
writeTraceJson(std::ostream &out)
{
    const Report report = snapshot();
    json::Writer w(out, /*pretty=*/false);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.field("tool", "irep");
    w.field("schema", "irep-prof-trace-1");
    w.endObject();
    w.key("traceEvents");
    w.beginArray();
    for (const Event &event : report.events) {
        w.beginObject();
        w.field("name", event.name);
        w.field("cat", event.cat);
        w.field("ph", "X");
        w.field("pid", 1);
        w.field("tid", event.tid);
        // Trace-event timestamps are microseconds (doubles).
        w.field("ts", double(event.startNs) / 1e3);
        w.field("dur", double(event.durNs) / 1e3);
        if (!event.args.empty()) {
            w.key("args");
            w.beginObject();
            for (const auto &[key, value] : event.args)
                w.field(key, value);
            w.endObject();
        }
        w.endObject();
    }
    // Merged counters ride along as one counter event at the end of
    // the recorded interval, so Perfetto shows them next to the spans.
    if (!report.counters.empty()) {
        uint64_t end_ns = 0;
        for (const Event &event : report.events)
            end_ns = std::max(end_ns, event.startNs + event.durNs);
        w.beginObject();
        w.field("name", "counters");
        w.field("cat", "irep");
        w.field("ph", "C");
        w.field("pid", 1);
        w.field("tid", 0);
        w.field("ts", double(end_ns) / 1e3);
        w.key("args");
        w.beginObject();
        for (const auto &[name, value] : report.counters)
            w.field(name, value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << '\n';
}

void
writeTraceJson(const std::string &path)
{
    AtomicOutFile out(path);
    writeTraceJson(out.stream());
    out.commit();
}

void
writeSummary(json::Writer &w)
{
    const Report report = snapshot();
    w.beginObject();
    w.field("schema", "irep-prof-1");
    w.key("spans");
    w.beginObject();
    for (const SpanStat &stat : report.spans) {
        w.key(stat.cat + "/" + stat.name);
        w.beginObject();
        w.field("count", stat.count);
        w.field("total_ns", stat.totalNs);
        w.field("min_ns", stat.minNs);
        w.field("max_ns", stat.maxNs);
        w.endObject();
    }
    w.endObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, value] : report.counters)
        w.field(name, value);
    w.endObject();
    w.endObject();
}

void
reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.buffers.clear();
    reg.epoch.fetch_add(1, std::memory_order_release);
}

} // namespace irep::prof
