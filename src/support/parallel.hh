/**
 * @file
 * A fixed-size worker pool and an ordered parallel-for on top of it,
 * for embarrassingly parallel work (the bench suite's independent
 * workload simulations).
 *
 * Design rules:
 *
 *  - *Determinism is the caller's job to preserve, ours to enable.*
 *    parallelFor() indexes results by iteration number, so callers
 *    that only write slot i from iteration i get output identical to
 *    a serial loop regardless of scheduling.
 *  - *jobs == 1 means no threads.* The serial path runs the jobs
 *    inline on the calling thread, byte-for-byte today's behaviour —
 *    `--jobs 1` / `IREP_JOBS=1` is the escape hatch.
 *  - *Exceptions propagate.* A job that throws fails the whole
 *    parallelFor(): the first exception (by iteration order, so the
 *    report is deterministic too) is rethrown on the caller after
 *    every job has finished.
 */

#ifndef IREP_SUPPORT_PARALLEL_HH
#define IREP_SUPPORT_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace irep::parallel
{

/**
 * The default worker count: `IREP_JOBS` when set (strictly parsed;
 * 0 or malformed is fatal), otherwise std::thread::hardware_concurrency
 * (at least 1).
 */
unsigned defaultJobs();

/** Fixed pool of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (fatal if 0). If spawning fails
     *  partway, the threads already started are joined before the
     *  exception propagates. */
    explicit ThreadPool(unsigned workers);

    /** Calls stop(). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const { return unsigned(threads_.size()); }

    /**
     * Enqueue @p job. The future resolves when it finishes and
     * rethrows anything the job threw. Calling submit() on a stopped
     * (or stopping) pool is a use-after-stop bug and panics loudly
     * instead of silently queueing a job no worker will ever run.
     */
    std::future<void> submit(std::function<void()> job);

    /**
     * Stop accepting new work, let the workers finish the queue, and
     * join them. Every future handed out by submit() is ready when
     * stop() returns — jobs are never dropped, so no outstanding
     * future can dangle past the workers' lifetime. Idempotent (the
     * destructor calls it); must be driven by the owning thread.
     */
    void stop();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::packaged_task<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

/**
 * Run `body(i)` for every i in [0, count) on @p jobs workers
 * (defaultJobs() when 0). With jobs <= 1 the loop runs serially
 * inline. Blocks until every iteration finished; if any threw, the
 * lowest-index exception is rethrown.
 */
void parallelFor(size_t count, const std::function<void(size_t)> &body,
                 unsigned jobs = 0);

} // namespace irep::parallel

#endif // IREP_SUPPORT_PARALLEL_HH
