/**
 * @file
 * Atomic publication of generated report files (stats JSON, profile
 * JSON), following the same discipline trace_io uses for traces:
 * build the full document, then write it to `<path>.tmp.<pid>`,
 * fsync, and rename over the target. A run killed mid-write leaves
 * either the old file or nothing — never a truncated JSON a consumer
 * would choke on.
 *
 * The path `-` selects stdout: the document is written straight to
 * it at commit() (no atomicity possible, none expected).
 */

#ifndef IREP_SUPPORT_OUTFILE_HH
#define IREP_SUPPORT_OUTFILE_HH

#include <sstream>
#include <string>

namespace irep
{

/**
 * Buffered, atomically published output file. stream() collects the
 * document in memory; commit() publishes it. Destroying an
 * uncommitted instance leaves the target path untouched.
 */
class AtomicOutFile
{
  public:
    /** @param path Target file, or `-` for stdout. */
    explicit AtomicOutFile(std::string path);

    /** Nothing was published if commit() never ran. */
    ~AtomicOutFile() = default;

    AtomicOutFile(const AtomicOutFile &) = delete;
    AtomicOutFile &operator=(const AtomicOutFile &) = delete;

    /** The in-memory document being built. */
    std::ostream &stream() { return buffer_; }

    bool toStdout() const { return path_ == "-"; }
    const std::string &path() const { return path_; }

    /**
     * Publish: write the buffered bytes to `<path>.tmp.<pid>`,
     * flush + fsync, and rename onto the target (or write to stdout
     * for `-`). fatal()s on any I/O failure, removing the temporary.
     * Must be called at most once.
     */
    void commit();

  private:
    std::string path_;
    std::ostringstream buffer_;
    bool committed_ = false;
};

} // namespace irep

#endif // IREP_SUPPORT_OUTFILE_HH
