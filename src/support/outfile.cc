#include "support/outfile.hh"

#include <unistd.h>

#include <cstdio>

#include "support/logging.hh"

namespace irep
{

AtomicOutFile::AtomicOutFile(std::string path) : path_(std::move(path))
{
    fatalIf(path_.empty(), "output path must not be empty");
}

void
AtomicOutFile::commit()
{
    panicIf(committed_, "AtomicOutFile committed twice");
    committed_ = true;
    const std::string doc = buffer_.str();

    if (toStdout()) {
        fatalIf(std::fwrite(doc.data(), 1, doc.size(), stdout) !=
                    doc.size(),
                "write to stdout failed");
        std::fflush(stdout);
        return;
    }

    const std::string tmp =
        path_ + ".tmp." + std::to_string(::getpid());
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    fatalIf(!file, "cannot open '", tmp, "'");

    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), file) == doc.size() &&
        std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
    if (!wrote || std::fclose(file) != 0) {
        if (!wrote)
            std::fclose(file);
        std::remove(tmp.c_str());
        fatal("write to '", tmp, "' failed");
    }
    // The rename must never become visible ahead of the data it
    // names (same rule as trace publication): only now does `path_`
    // change, and it changes to a complete document or not at all.
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        fatal("cannot rename '", tmp, "' to '", path_, "'");
    }
}

} // namespace irep
