/**
 * @file
 * Build identity: the commit the build was configured from and the
 * schema identifiers of every machine-readable document this build
 * emits. `irep version` and the daemon's /version endpoint report
 * these so a consumer can tell which producer wrote a document and
 * whether the formats it needs are spoken.
 */

#ifndef IREP_SUPPORT_VERSION_HH
#define IREP_SUPPORT_VERSION_HH

namespace irep::version
{

/** The git commit the build was configured from, or "unknown" when
 *  configured outside a checkout. */
const char *buildId();

/** The per-run stats report (`--stats-json`, POST /analyze). */
constexpr const char *statsSchema = "irep-stats-1";
/** The bench-suite report (`irep bench all --stats-json`). */
constexpr const char *benchSchema = "irep-bench-2";
/** The profiler summary block embedded in stats documents. */
constexpr const char *profSchema = "irep-prof-1";

} // namespace irep::version

#endif // IREP_SUPPORT_VERSION_HH
