/**
 * @file
 * Strict numeric parsing shared by CLI flags and environment knobs.
 * Rejects empty strings, trailing garbage, negatives and overflow —
 * `--window 5m` or `IREP_SKIP=4m` fail loudly instead of silently
 * becoming 5 or 4.
 */

#ifndef IREP_SUPPORT_PARSE_HH
#define IREP_SUPPORT_PARSE_HH

#include <cstdint>
#include <string>

namespace irep::parse
{

/**
 * Parse @p text as a decimal uint64_t. @p what names the flag or
 * variable being parsed ("--window", "IREP_SKIP") for the error
 * message. fatal()s on anything but a plain non-negative decimal.
 */
uint64_t parseU64(const std::string &what, const std::string &text);

/**
 * Read environment variable @p name as a decimal uint64_t, returning
 * @p fallback when unset or empty. Malformed values are fatal, not
 * silently truncated.
 */
uint64_t envU64(const char *name, uint64_t fallback);

/**
 * Read environment variable @p name as a boolean switch: unset,
 * empty, or `0` is false; `1` is true; anything else —
 * `IREP_PROF=yes`, `IREP_PROF=01` — is fatal, matching the
 * IREP_SKIP/WINDOW/JOBS discipline of never guessing at junk.
 */
bool envFlag(const char *name);

} // namespace irep::parse

#endif // IREP_SUPPORT_PARSE_HH
