/**
 * @file
 * LEB128 variable-length integers and zigzag signed mapping, used by
 * the binary retire-trace codec (src/trace_io). Encoding appends to a
 * std::string buffer; decoding reads from a bounded byte range and
 * fatal()s on truncation or over-length sequences instead of reading
 * past the end.
 */

#ifndef IREP_SUPPORT_VARINT_HH
#define IREP_SUPPORT_VARINT_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

#include "support/logging.hh"

namespace irep::varint
{

/** Append @p value as LEB128 (7 bits per byte, MSB = continuation). */
inline void
put(std::string &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(char(uint8_t(value) | 0x80));
        value >>= 7;
    }
    out.push_back(char(uint8_t(value)));
}

/**
 * Append @p value as LEB128 through a raw cursor. The caller
 * guarantees space for the worst case (10 bytes for a uint64_t);
 * the trace writer's per-record encoder uses this to skip the
 * byte-at-a-time capacity checks of the std::string overload.
 */
inline void
put(uint8_t *&p, uint64_t value)
{
    while (value >= 0x80) {
        *p++ = uint8_t(value) | 0x80;
        value >>= 7;
    }
    *p++ = uint8_t(value);
}

/**
 * Decode one LEB128 integer from [@p p, @p end).
 *
 * @param p Advanced past the consumed bytes on success.
 * @return The decoded value. fatal()s when the buffer ends inside a
 *         sequence or the sequence exceeds 10 bytes (the longest a
 *         uint64_t needs), so corrupt data cannot spin or overflow.
 */
inline uint64_t
get(const uint8_t *&p, const uint8_t *end)
{
    uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        fatalIf(p == end, "truncated varint in trace data");
        const uint8_t byte = *p++;
        value |= uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        fatalIf(shift >= 64, "over-long varint in trace data");
    }
}

/** Map a signed value to unsigned so small magnitudes stay short
 *  (0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...). */
constexpr uint64_t
zigzag(int64_t value)
{
    return (uint64_t(value) << 1) ^ uint64_t(value >> 63);
}

/** Inverse of zigzag(). */
constexpr int64_t
unzigzag(uint64_t value)
{
    return int64_t(value >> 1) ^ -int64_t(value & 1);
}

/** put(zigzag(value)) */
inline void
putSigned(std::string &out, int64_t value)
{
    put(out, zigzag(value));
}

/** put(zigzag(value)) through a raw cursor. */
inline void
putSigned(uint8_t *&p, int64_t value)
{
    put(p, zigzag(value));
}

/**
 * Branchless LEB128 append for values below 2^35 (at most five
 * encoded bytes): spreads the 7-bit groups into one 64-bit word, ORs
 * in the continuation bits, and issues a single eight-byte store —
 * the cursor only advances by the encoded length, so up to seven
 * bytes past it are scribbled and the caller's buffer must absorb
 * that. The byte-at-a-time loop's data-dependent trip count costs a
 * branch mispredict per value on mixed-magnitude streams (register
 * values in the trace writer's case); this is the same bytes without
 * the loop. Values 2^35 and above take the plain loop.
 */
inline void
putShort(uint8_t *&p, uint64_t value)
{
    if (value >> 35) [[unlikely]] {
        put(p, value);
        return;
    }
    const unsigned len =
        (unsigned(std::bit_width(value | 1)) + 6) / 7;
    uint64_t spread = (value & 0x7f) | ((value & 0x3f80) << 1) |
                      ((value & 0x1fc000) << 2) |
                      ((value & 0xfe00000) << 3) |
                      ((value & 0x7f0000000) << 4);
    spread |= ((1ull << (8 * (len - 1))) - 1) & 0x8080808080808080ull;
    std::memcpy(p, &spread, 8);
    p += len;
}

/** putShort(zigzag(value)); the same sub-2^35 bound applies to the
 *  zigzag-mapped magnitude (any 32-bit delta fits). */
inline void
putShortSigned(uint8_t *&p, int64_t value)
{
    putShort(p, zigzag(value));
}

/** unzigzag(get(...)) */
inline int64_t
getSigned(const uint8_t *&p, const uint8_t *end)
{
    return unzigzag(get(p, end));
}

} // namespace irep::varint

#endif // IREP_SUPPORT_VARINT_HH
