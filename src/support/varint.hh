/**
 * @file
 * LEB128 variable-length integers and zigzag signed mapping, used by
 * the binary retire-trace codec (src/trace_io). Encoding appends to a
 * std::string buffer; decoding reads from a bounded byte range and
 * fatal()s on truncation or over-length sequences instead of reading
 * past the end.
 */

#ifndef IREP_SUPPORT_VARINT_HH
#define IREP_SUPPORT_VARINT_HH

#include <cstdint>
#include <string>

#include "support/logging.hh"

namespace irep::varint
{

/** Append @p value as LEB128 (7 bits per byte, MSB = continuation). */
inline void
put(std::string &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(char(uint8_t(value) | 0x80));
        value >>= 7;
    }
    out.push_back(char(uint8_t(value)));
}

/**
 * Decode one LEB128 integer from [@p p, @p end).
 *
 * @param p Advanced past the consumed bytes on success.
 * @return The decoded value. fatal()s when the buffer ends inside a
 *         sequence or the sequence exceeds 10 bytes (the longest a
 *         uint64_t needs), so corrupt data cannot spin or overflow.
 */
inline uint64_t
get(const uint8_t *&p, const uint8_t *end)
{
    uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        fatalIf(p == end, "truncated varint in trace data");
        const uint8_t byte = *p++;
        value |= uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        fatalIf(shift >= 64, "over-long varint in trace data");
    }
}

/** Map a signed value to unsigned so small magnitudes stay short
 *  (0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...). */
constexpr uint64_t
zigzag(int64_t value)
{
    return (uint64_t(value) << 1) ^ uint64_t(value >> 63);
}

/** Inverse of zigzag(). */
constexpr int64_t
unzigzag(uint64_t value)
{
    return int64_t(value >> 1) ^ -int64_t(value & 1);
}

/** put(zigzag(value)) */
inline void
putSigned(std::string &out, int64_t value)
{
    put(out, zigzag(value));
}

/** unzigzag(get(...)) */
inline int64_t
getSigned(const uint8_t *&p, const uint8_t *end)
{
    return unzigzag(get(p, end));
}

} // namespace irep::varint

#endif // IREP_SUPPORT_VARINT_HH
