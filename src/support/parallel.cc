#include "support/parallel.hh"

#include "support/logging.hh"
#include "support/parse.hh"

namespace irep::parallel
{

unsigned
defaultJobs()
{
    const uint64_t jobs =
        parse::envU64("IREP_JOBS", std::thread::hardware_concurrency());
    fatalIf(std::getenv("IREP_JOBS") && jobs == 0,
            "IREP_JOBS must be positive");
    return jobs ? unsigned(jobs) : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    fatalIf(workers == 0, "thread pool needs at least one worker");
    threads_.reserve(workers);
    try {
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Thread spawn failed partway: join the workers that did
        // start, or their std::thread destructors terminate the
        // whole process during unwinding.
        stop();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    stop();
}

void
ThreadPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    // Workers drain the queue before exiting (see workerLoop), so
    // every submitted job runs and every outstanding future is ready
    // once the joins return. joinable() makes repeated stop() a no-op.
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

std::future<void>
ThreadPool::submit(std::function<void()> job)
{
    std::packaged_task<void()> task(std::move(job));
    std::future<void> future = task.get_future();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        panicIf(stopping_,
                "ThreadPool::submit() after stop(): the pool is "
                "stopped and would never run this job (use-after-stop)");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
    return future;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;     // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();             // exceptions land in the future
    }
}

void
parallelFor(size_t count, const std::function<void(size_t)> &body,
            unsigned jobs)
{
    if (count == 0)
        return;
    if (jobs == 0)
        jobs = defaultJobs();

    if (jobs <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    ThreadPool pool(jobs < count ? jobs : unsigned(count));
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&body, i] { body(i); }));

    // Join everything before rethrowing so no job outlives the call,
    // and rethrow the lowest-index failure for a deterministic report.
    std::exception_ptr first;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace irep::parallel
