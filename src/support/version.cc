#include "support/version.hh"

#ifndef IREP_BUILD_ID
#define IREP_BUILD_ID "unknown"
#endif

namespace irep::version
{

const char *
buildId()
{
    return IREP_BUILD_ID;
}

} // namespace irep::version
