#include "support/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace irep
{

void
TextTable::header(std::vector<std::string> cells)
{
    rows_.insert(rows_.begin(), std::move(cells));
    hasHeader_ = true;
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths;
    for (const auto &r : rows_) {
        if (widths.size() < r.size())
            widths.resize(r.size(), 0);
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    std::ostringstream os;
    for (size_t i = 0; i < rows_.size(); ++i) {
        const auto &r = rows_[i];
        for (size_t c = 0; c < r.size(); ++c) {
            if (c)
                os << "  ";
            os << r[c];
            if (c + 1 < r.size())
                os << std::string(widths[c] - r[c].size(), ' ');
        }
        os << '\n';
        if (i == 0 && hasHeader_) {
            size_t total = 0;
            for (size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c ? 2 : 0);
            os << std::string(total, '-') << '\n';
        }
    }
    return os.str();
}

namespace
{

std::string
csvCell(const std::string &cell)
{
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

std::string
TextTable::renderCsv() const
{
    std::string out;
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c) {
            if (c)
                out.push_back(',');
            out += csvCell(r[c]);
        }
        out.push_back('\n');
    }
    return out;
}

std::string
TextTable::num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TextTable::count(uint64_t value)
{
    std::string raw = std::to_string(value);
    std::string out;
    int pos = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (pos && pos % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++pos;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace irep
