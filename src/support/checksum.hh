/**
 * @file
 * CRC-32 (the IEEE 802.3 polynomial, as used by gzip and zlib) for
 * integrity-checking binary trace blocks. Incremental: feed chunks
 * into crc32Update() starting from crc32Init.
 */

#ifndef IREP_SUPPORT_CHECKSUM_HH
#define IREP_SUPPORT_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace irep
{

/** Initial CRC-32 accumulator value. */
constexpr uint32_t crc32Init = 0;

/** Fold @p size bytes at @p data into the running checksum @p crc. */
uint32_t crc32Update(uint32_t crc, const void *data, size_t size);

/** One-shot CRC-32 of a buffer. */
inline uint32_t
crc32(const void *data, size_t size)
{
    return crc32Update(crc32Init, data, size);
}

} // namespace irep

#endif // IREP_SUPPORT_CHECKSUM_HH
