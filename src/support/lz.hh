/**
 * @file
 * Self-contained block compressor for the trace store ("irep-lz"):
 * LZ77 with a hash-chain match finder feeding an adaptive binary
 * range coder (LZMA-style bit models: order-1 literals, slot-coded
 * distances, a last-offset repeat). Retire traces are overwhelmingly
 * repetitive — the paper's thesis — so the delta/varint record
 * stream compresses well past the gzip class with no external
 * dependency. Blocks are independent: every call starts from freshly
 * reset models, so any block of a trace can be decoded alone.
 *
 * Corruption policy: decompress() never reads or writes out of
 * bounds and always terminates, but a corrupt input can silently
 * yield wrong bytes — callers must checksum the decompressed output
 * (trace format v2 stores a raw CRC per block for exactly this).
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace irep::lz
{

/** Upper bound on compress() output for @p rawSize input bytes. */
size_t maxCompressedSize(size_t rawSize);

/**
 * Compress @p src[0..n) into @p dst[0..cap). Returns the compressed
 * size, or 0 when the result would not fit in @p cap — callers store
 * the block raw in that case (pass cap < n to demand net shrink).
 * Deterministic: identical input yields identical output.
 */
size_t compress(const uint8_t *src, size_t n, uint8_t *dst,
                size_t cap);

/**
 * Decompress @p src[0..n) into exactly @p rawSize bytes at @p dst.
 * Returns false on structurally malformed input; a true return still
 * requires the caller's checksum to vouch for the bytes.
 */
bool decompress(const uint8_t *src, size_t n, uint8_t *dst,
                size_t rawSize);

} // namespace irep::lz
