#include "support/signals.hh"

#include <csignal>
#include <cstring>
#include <unistd.h>

#include "support/logging.hh"

namespace irep::signals
{
namespace
{

// The handler may fire on any thread at any instruction, so the path
// lives in a fixed buffer guarded by an "armed" flag: the flag is
// cleared before the buffer is rewritten and set only once the buffer
// holds a complete path. sig_atomic_t is the only type the standard
// guarantees for handler communication.
constexpr size_t pathCap = 4096;
char pendingPath[pathCap];
volatile std::sig_atomic_t armed = 0;
bool handlersInstalled = false;

const int fatalSignals[] = {SIGINT, SIGTERM, SIGHUP};

extern "C" void
onFatalSignal(int sig)
{
    if (armed) {
        armed = 0;
        ::unlink(pendingPath);
    }
    // Re-deliver with the default disposition so the exit status (and
    // any core dump) is what the signal would have produced anyway.
    std::signal(sig, SIG_DFL);
    ::raise(sig);
}

void
installHandlers()
{
    if (handlersInstalled)
        return;
    for (int sig : fatalSignals) {
        struct sigaction action;
        std::memset(&action, 0, sizeof(action));
        action.sa_handler = onFatalSignal;
        sigemptyset(&action.sa_mask);
        ::sigaction(sig, &action, nullptr);
    }
    handlersInstalled = true;
}

} // namespace

void
removeOnFatalSignal(const std::string &path)
{
    fatalIf(path.size() + 1 > pathCap, "cannot track '", path,
            "' for signal cleanup: path exceeds ", pathCap - 1,
            " bytes");
    armed = 0;
    std::memcpy(pendingPath, path.c_str(), path.size() + 1);
    installHandlers();
    armed = 1;
}

void
clearRemoveOnFatalSignal()
{
    armed = 0;
}

} // namespace irep::signals
