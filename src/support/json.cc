#include "support/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "support/logging.hh"

namespace irep::json
{

// --- Writer ---------------------------------------------------------

Writer::Writer(std::ostream &out, bool pretty)
    : out_(out), pretty_(pretty)
{
}

void
Writer::writeEscaped(std::ostream &out, std::string_view text)
{
    out.put('"');
    for (char c : text) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\r':
            out << "\\r";
            break;
          case '\t':
            out << "\\t";
            break;
          case '\b':
            out << "\\b";
            break;
          case '\f':
            out << "\\f";
            break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out.put(c);
            }
        }
    }
    out.put('"');
}

void
Writer::newline()
{
    if (!pretty_)
        return;
    out_.put('\n');
    for (size_t i = 0; i < stack_.size(); ++i)
        out_ << "  ";
}

void
Writer::beforeValue()
{
    panicIf(done_, "json: write past end of document");
    if (stack_.empty()) {
        // Document root: exactly one value allowed.
        return;
    }
    Level &level = stack_.back();
    if (level.isArray) {
        if (level.members++)
            out_.put(',');
        newline();
    } else {
        panicIf(!keyPending_, "json: object member without key()");
        keyPending_ = false;
    }
}

void
Writer::key(std::string_view name)
{
    panicIf(stack_.empty() || stack_.back().isArray,
            "json: key() outside an object");
    panicIf(keyPending_, "json: key() after key()");
    if (stack_.back().members++)
        out_.put(',');
    newline();
    writeEscaped(out_, name);
    out_.put(':');
    if (pretty_)
        out_.put(' ');
    keyPending_ = true;
}

void
Writer::beginObject()
{
    beforeValue();
    out_.put('{');
    stack_.push_back({false});
}

void
Writer::endObject()
{
    panicIf(stack_.empty() || stack_.back().isArray,
            "json: endObject() without beginObject()");
    panicIf(keyPending_, "json: endObject() after dangling key()");
    const bool had = stack_.back().members > 0;
    stack_.pop_back();
    if (had)
        newline();
    out_.put('}');
    if (stack_.empty())
        done_ = true;
}

void
Writer::beginArray()
{
    beforeValue();
    out_.put('[');
    stack_.push_back({true});
}

void
Writer::endArray()
{
    panicIf(stack_.empty() || !stack_.back().isArray,
            "json: endArray() without beginArray()");
    const bool had = stack_.back().members > 0;
    stack_.pop_back();
    if (had)
        newline();
    out_.put(']');
    if (stack_.empty())
        done_ = true;
}

void
Writer::value(std::string_view text)
{
    beforeValue();
    writeEscaped(out_, text);
    if (stack_.empty())
        done_ = true;
}

void
Writer::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        out_ << "null";
    } else if (number == std::floor(number) &&
               std::abs(number) < 9.007199254740992e15) {
        // Exactly-integral and representable: print without exponent
        // so integer counters survive the double round-trip readably.
        out_ << int64_t(number);
    } else {
        char buf[32];
        const auto res =
            std::to_chars(buf, buf + sizeof(buf), number);
        out_ << std::string_view(buf, size_t(res.ptr - buf));
    }
    if (stack_.empty())
        done_ = true;
}

void
Writer::value(uint64_t number)
{
    beforeValue();
    out_ << number;
    if (stack_.empty())
        done_ = true;
}

void
Writer::value(int64_t number)
{
    beforeValue();
    out_ << number;
    if (stack_.empty())
        done_ = true;
}

void
Writer::value(bool flag)
{
    beforeValue();
    out_ << (flag ? "true" : "false");
    if (stack_.empty())
        done_ = true;
}

void
Writer::null()
{
    beforeValue();
    out_ << "null";
    if (stack_.empty())
        done_ = true;
}

// --- Value ----------------------------------------------------------

double
Value::asNumber() const
{
    fatalIf(kind_ != Kind::Number, "json: not a number");
    return number_;
}

uint64_t
Value::asU64() const
{
    fatalIf(kind_ != Kind::Number, "json: not a number");
    uint64_t out = 0;
    const auto res =
        std::from_chars(text_.data(), text_.data() + text_.size(), out);
    if (res.ec == std::errc() && res.ptr == text_.data() + text_.size())
        return out;
    // Not a plain non-negative integer literal; round the double.
    return uint64_t(number_);
}

bool
Value::asBool() const
{
    fatalIf(kind_ != Kind::Bool, "json: not a bool");
    return bool_;
}

const std::string &
Value::asString() const
{
    fatalIf(kind_ != Kind::String, "json: not a string");
    return text_;
}

const Value &
Value::at(std::string_view key) const
{
    fatalIf(kind_ != Kind::Object, "json: not an object");
    for (const auto &[name, member] : object_) {
        if (name == key)
            return member;
    }
    fatal("json: no member '", std::string(key), "'");
}

bool
Value::contains(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &[name, member] : object_) {
        if (name == key)
            return true;
    }
    return false;
}

const Value &
Value::at(size_t index) const
{
    fatalIf(kind_ != Kind::Array, "json: not an array");
    fatalIf(index >= array_.size(), "json: index ", index,
            " out of range (size ", array_.size(), ")");
    return array_[index];
}

size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    fatal("json: size() on a non-container");
}

// --- Parser ---------------------------------------------------------

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value
    document()
    {
        Value v = element();
        skipSpace();
        fatalIf(pos_ != text_.size(),
                "json: trailing characters at offset ", pos_);
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        fatalIf(pos_ >= text_.size(), "json: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        fatalIf(peek() != c, "json: expected '", c, "' at offset ",
                pos_);
        ++pos_;
    }

    bool
    consume(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    Value
    element()
    {
        skipSpace();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"': {
            Value v;
            v.kind_ = Value::Kind::String;
            v.text_ = string();
            return v;
          }
          case 't': {
            fatalIf(!consume("true"), "json: bad literal");
            Value v;
            v.kind_ = Value::Kind::Bool;
            v.bool_ = true;
            return v;
          }
          case 'f': {
            fatalIf(!consume("false"), "json: bad literal");
            Value v;
            v.kind_ = Value::Kind::Bool;
            return v;
          }
          case 'n': {
            fatalIf(!consume("null"), "json: bad literal");
            return Value();
          }
          default:
            return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Value v;
        v.kind_ = Value::Kind::Object;
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipSpace();
            std::string key = string();
            skipSpace();
            expect(':');
            v.object_.emplace_back(std::move(key), element());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    array()
    {
        expect('[');
        Value v;
        v.kind_ = Value::Kind::Array;
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(element());
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            fatalIf(pos_ >= text_.size(),
                    "json: unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            fatalIf(pos_ >= text_.size(), "json: unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"':
              case '\\':
              case '/':
                out.push_back(c);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                fatalIf(pos_ + 4 > text_.size(),
                        "json: truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fatal("json: bad \\u escape digit '", h, "'");
                }
                // UTF-8 encode (BMP only; surrogates unsupported).
                if (code < 0x80) {
                    out.push_back(char(code));
                } else if (code < 0x800) {
                    out.push_back(char(0xc0 | (code >> 6)));
                    out.push_back(char(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(char(0xe0 | (code >> 12)));
                    out.push_back(char(0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(char(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                fatal("json: bad escape '\\", c, "'");
            }
        }
    }

    Value
    number()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(uint8_t(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        const std::string_view raw = text_.substr(start, pos_ - start);
        Value v;
        v.kind_ = Value::Kind::Number;
        v.text_ = std::string(raw);
        const auto res = std::from_chars(raw.data(),
                                         raw.data() + raw.size(),
                                         v.number_);
        fatalIf(res.ec != std::errc() ||
                    res.ptr != raw.data() + raw.size(),
                "json: bad number '", v.text_, "' at offset ", start);
        return v;
    }

    std::string_view text_;
    size_t pos_ = 0;
};

Value
parse(std::string_view text)
{
    return Parser(text).document();
}

} // namespace irep::json
