/**
 * @file
 * A gem5-style statistics registry: named scalar / vector /
 * distribution stats with one-line descriptions, organized into a
 * hierarchy of groups, walked by visitors, dumpable as aligned text or
 * JSON.
 *
 * Two flavours of stat coexist:
 *
 *  - *storage* stats own their value (`Scalar s = group.scalar(...);
 *    s += 3;`) — used for counters the observability layer itself
 *    maintains (timing, trace bookkeeping);
 *  - *derived* stats evaluate a callback at dump time — used by the
 *    analyses in src/core/, whose counters already live in their own
 *    result structs. `registerStats()` on an analysis binds callbacks
 *    into a group without duplicating state, so a dump always reflects
 *    the live values.
 *
 * Lifetime rule: a Group owns its stats and child groups; anything a
 * derived stat's callback captures must outlive the group (in
 * practice: build the group tree after run(), dump, discard).
 */

#ifndef IREP_SUPPORT_STATS_HH
#define IREP_SUPPORT_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace irep::json
{
class Writer;
}

namespace irep::stats
{

class Visitor;

/** Base of every named statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    virtual void accept(Visitor &v) const = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single named value — storage-backed or derived. */
class Scalar : public Stat
{
  public:
    using Source = std::function<double()>;

    Scalar(std::string name, std::string desc)
        : Stat(std::move(name), std::move(desc))
    {}
    Scalar(std::string name, std::string desc, Source source)
        : Stat(std::move(name), std::move(desc)),
          source_(std::move(source))
    {}

    double value() const { return source_ ? source_() : value_; }
    bool derived() const { return bool(source_); }

    Scalar &
    operator=(double v)
    {
        value_ = v;
        return *this;
    }
    Scalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }
    Scalar &
    operator++()
    {
        ++value_;
        return *this;
    }

    void accept(Visitor &v) const override;

  private:
    double value_ = 0.0;
    Source source_;
};

/** A named vector with per-element subnames. */
class Vector : public Stat
{
  public:
    /** Derived element source: index -> value. */
    using Source = std::function<double(size_t)>;

    Vector(std::string name, std::string desc,
           std::vector<std::string> subnames)
        : Stat(std::move(name), std::move(desc)),
          subnames_(std::move(subnames)),
          values_(subnames_.size(), 0.0)
    {}
    Vector(std::string name, std::string desc,
           std::vector<std::string> subnames, Source source)
        : Stat(std::move(name), std::move(desc)),
          subnames_(std::move(subnames)),
          values_(subnames_.size(), 0.0),
          source_(std::move(source))
    {}

    size_t size() const { return subnames_.size(); }
    const std::vector<std::string> &subnames() const
    {
        return subnames_;
    }

    double
    value(size_t i) const
    {
        return source_ ? source_(i) : values_.at(i);
    }
    void set(size_t i, double v) { values_.at(i) = v; }
    void
    add(size_t i, double v)
    {
        values_.at(i) += v;
    }

    void accept(Visitor &v) const override;

  private:
    std::vector<std::string> subnames_;
    std::vector<double> values_;
    Source source_;
};

/**
 * A bucketed distribution. Bucket i counts samples with
 * value <= upperBounds[i] (and greater than the previous bound); one
 * implicit overflow bucket counts everything above the last bound.
 */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc,
                 std::vector<double> upper_bounds);

    void sample(double value, uint64_t count = 1);

    /** Number of buckets including the overflow bucket. */
    size_t numBuckets() const { return counts_.size(); }
    const std::vector<double> &upperBounds() const { return bounds_; }
    uint64_t bucketCount(size_t i) const { return counts_.at(i); }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

    void accept(Visitor &v) const override;

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_;  //!< bounds_.size() + 1 (overflow)
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A node in the stats hierarchy. Owns its stats and child groups;
 * names are unique within a group (duplicate registration is fatal).
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return name_; }

    /** Find-or-create a child group. */
    Group &group(std::string_view name);

    Scalar &scalar(std::string name, std::string desc);
    Scalar &scalar(std::string name, std::string desc,
                   Scalar::Source source);
    Vector &vector(std::string name, std::string desc,
                   std::vector<std::string> subnames);
    Vector &vector(std::string name, std::string desc,
                   std::vector<std::string> subnames,
                   Vector::Source source);
    Distribution &distribution(std::string name, std::string desc,
                               std::vector<double> upper_bounds);

    /** Stats in registration order. */
    const std::vector<std::unique_ptr<Stat>> &statList() const
    {
        return stats_;
    }
    /** Child groups in registration order. */
    const std::vector<std::unique_ptr<Group>> &groups() const
    {
        return children_;
    }

    /** Stat lookup by name in this group; nullptr when absent. */
    const Stat *find(std::string_view name) const;
    /** Child-group lookup by name; nullptr when absent. */
    const Group *findGroup(std::string_view name) const;

    /** Depth-first walk: beginGroup, stats, children, endGroup. */
    void accept(Visitor &v) const;

  private:
    void checkName(const std::string &name) const;

    std::string name_;
    std::vector<std::unique_ptr<Stat>> stats_;
    std::vector<std::unique_ptr<Group>> children_;
};

/** Double-dispatch target for walking a stats tree. */
class Visitor
{
  public:
    virtual ~Visitor() = default;

    virtual void beginGroup(const Group &group) { (void)group; }
    virtual void endGroup(const Group &group) { (void)group; }
    virtual void visit(const Scalar &stat) { (void)stat; }
    virtual void visit(const Vector &stat) { (void)stat; }
    virtual void visit(const Distribution &stat) { (void)stat; }
};

/**
 * Render the tree as aligned text, one `path.name  value  # desc`
 * line per stat — the gem5 stats.txt convention.
 */
std::string dumpText(const Group &root);

/**
 * Write the *contents* of @p root as a JSON object at the writer's
 * current position: scalars as numbers, vectors as subname-keyed
 * objects, distributions as {buckets, count, sum, min, max, mean},
 * child groups as nested objects. Usable both for whole documents and
 * nested inside a larger document.
 */
void dumpJson(const Group &root, json::Writer &writer);

} // namespace irep::stats

#endif // IREP_SUPPORT_STATS_HH
