/**
 * @file
 * The statistics behind `irep-bench-2`'s honest performance numbers,
 * after Touati et al.'s Speedup-Test methodology: report the *median*
 * of repeated runs, bound it with a distribution-free confidence
 * interval from order statistics, quantify run-to-run noise, and test
 * significance of a difference with the Mann-Whitney U test rather
 * than eyeballing raw deltas.
 *
 * Everything here is distribution-free on purpose: execution times
 * are skewed and multi-modal, so mean ± t-interval assumptions do not
 * hold. With very few repetitions the interval degrades gracefully to
 * [min, max] (conservative, still honest).
 */

#ifndef IREP_SUPPORT_STAT_MATH_HH
#define IREP_SUPPORT_STAT_MATH_HH

#include <cstddef>
#include <vector>

namespace irep::stat
{

/** Sample median (average of central pair for even sizes). Empty
 *  input is fatal. */
double median(std::vector<double> values);

/** Linear-interpolation quantile of @p sorted (ascending), q in
 *  [0, 1]. Empty input is fatal. */
double quantileSorted(const std::vector<double> &sorted, double q);

struct Interval
{
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Distribution-free confidence interval for the median via binomial
 * order statistics: the widest pair of order statistics (x_(k),
 * x_(n+1-k)) whose binomial coverage is at least @p confidence. For
 * small n this is [min, max] — the honest answer when five runs are
 * all the data there is.
 */
Interval medianCI(std::vector<double> values,
                  double confidence = 0.95);

/**
 * Relative spread of the runs: interquartile range divided by the
 * median — the "noise estimate" irep-bench-2 reports. 0 for fewer
 * than two values or a zero median.
 */
double relativeIQR(std::vector<double> values);

/**
 * Distribution-free summary of one metric across a population: the
 * five-number spread plus a median confidence interval — what the
 * `irep-pop-1` population report emits per metric. All order
 * statistics, so skew and outliers (some generated programs are
 * pathological on purpose) cannot poison the headline numbers.
 */
struct Summary
{
    size_t n = 0;
    double median = 0.0;
    Interval ci;        //!< distribution-free 95% CI of the median
    double q1 = 0.0;    //!< first quartile
    double q3 = 0.0;    //!< third quartile
    double min = 0.0;
    double max = 0.0;
};

/** Summarize a sample. Empty input is fatal. */
Summary summarize(std::vector<double> values);

/**
 * Two-sided Mann-Whitney U p-value for samples @p a vs @p b (normal
 * approximation with tie correction and continuity correction).
 * Small p means the two run distributions genuinely differ; which
 * direction is the caller's comparison of medians. Either sample
 * empty, or all values tied, yields p = 1.
 */
double mannWhitneyP(const std::vector<double> &a,
                    const std::vector<double> &b);

} // namespace irep::stat

#endif // IREP_SUPPORT_STAT_MATH_HH
