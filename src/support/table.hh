/**
 * @file
 * Plain-text table formatter used by the bench harness to print rows in
 * the same layout as the paper's tables.
 */

#ifndef IREP_SUPPORT_TABLE_HH
#define IREP_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace irep
{

/**
 * A simple column-aligned text table. Columns are sized to the widest
 * cell; the first row added is treated as the header.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render the table with a rule under the header. */
    std::string render() const;

    /**
     * Render as RFC 4180 CSV (for plotting / spreadsheet import):
     * header first, CRLF-free "\n" line endings, cells containing a
     * comma, quote or newline quoted with embedded quotes doubled.
     */
    std::string renderCsv() const;

    /** Format a double with @p digits fractional digits. */
    static std::string num(double value, int digits = 1);

    /** Format an integer with thousands separators. */
    static std::string count(uint64_t value);

  private:
    std::vector<std::vector<std::string>> rows_;
    bool hasHeader_ = false;
};

} // namespace irep

#endif // IREP_SUPPORT_TABLE_HH
