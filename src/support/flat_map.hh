/**
 * @file
 * Open-addressing flat hash containers for the simulate-and-measure
 * hot path. The per-retire analyses key millions of lookups by small
 * integers (instance hashes, static indices, function addresses);
 * node-based std::unordered_map pays an allocation and a pointer
 * chase per entry, which dominates the tracker's insert/probe cost.
 *
 * FlatMap stores entries densely (insertion order) and probes a
 * separate power-of-two index array of 32-bit slots, so a probe
 * touches one small cache line and a hit costs one extra indirection
 * into the dense array. Erase is deliberately unsupported: every hot
 * consumer (repetition tracker, argument tuples, load-value profiles)
 * only ever inserts.
 *
 * SmallFlatMap adds an inline buffer for the common
 * few-instances-per-static case: the first N entries live inside the
 * object and are scanned linearly, and only statics with more unique
 * instances spill to a heap-backed FlatMap.
 */

#ifndef IREP_SUPPORT_FLAT_MAP_HH
#define IREP_SUPPORT_FLAT_MAP_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/hash.hh"

namespace irep
{

/** Default hasher: splitmix-style finalizer, good for raw integers
 *  (addresses, values, dense indices) with clustered low bits. */
template <typename Key>
struct FlatHash
{
    uint64_t operator()(const Key &key) const
    {
        return hashMix(0x8f1bbcdcbfa53e0bull, uint64_t(key));
    }
};

/** Pass-through hasher for keys that are already well-mixed hashes
 *  (e.g. the tracker's instance keys, themselves hashMix output). */
struct IdentityHash
{
    uint64_t operator()(uint64_t key) const { return key; }
};

/**
 * Insert-only open-addressing hash map with dense, insertion-ordered
 * storage.
 *
 * Iteration (const) runs over the dense entry array in insertion
 * order. Pointers returned by find()/operator[] are invalidated by
 * any subsequent insertion (the dense array may grow).
 */
template <typename Key, typename T, typename Hash = FlatHash<Key>>
class FlatMap
{
  public:
    using value_type = std::pair<Key, T>;
    using const_iterator =
        typename std::vector<value_type>::const_iterator;

    FlatMap() = default;

    size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    const_iterator begin() const { return entries_.begin(); }
    const_iterator end() const { return entries_.end(); }

    /** Pre-size the index for @p n entries (optional). */
    void
    reserve(size_t n)
    {
        entries_.reserve(n);
        const size_t needed = indexSizeFor(n);
        if (needed > index_.size())
            rehash(needed);
    }

    /** @return the mapped value for @p key, or nullptr. */
    T *
    find(const Key &key)
    {
        return const_cast<T *>(std::as_const(*this).find(key));
    }

    const T *
    find(const Key &key) const
    {
        if (entries_.empty())
            return nullptr;
        size_t slot = Hash{}(key) & mask_;
        while (true) {
            const uint32_t idx = index_[slot];
            if (idx == kEmptySlot)
                return nullptr;
            if (entries_[idx].first == key)
                return &entries_[idx].second;
            slot = (slot + 1) & mask_;
        }
    }

    /**
     * Insert (key, value) unless the key is present.
     * @return {pointer to the mapped value, true when inserted}.
     */
    std::pair<T *, bool>
    tryEmplace(const Key &key, T value = T())
    {
        if (entries_.size() + 1 > capacityLimit())
            rehash(index_.empty() ? kMinIndexSize : index_.size() * 2);
        size_t slot = Hash{}(key) & mask_;
        while (true) {
            const uint32_t idx = index_[slot];
            if (idx == kEmptySlot)
                break;
            if (entries_[idx].first == key)
                return {&entries_[idx].second, false};
            slot = (slot + 1) & mask_;
        }
        index_[slot] = uint32_t(entries_.size());
        entries_.emplace_back(key, std::move(value));
        return {&entries_.back().second, true};
    }

    /** The mapped value for @p key, default-constructed on first
     *  access. */
    T &operator[](const Key &key) { return *tryEmplace(key).first; }

    void
    clear()
    {
        entries_.clear();
        index_.clear();
        mask_ = 0;
    }

  private:
    static constexpr uint32_t kEmptySlot = 0xffffffffu;
    static constexpr size_t kMinIndexSize = 8;

    /** Index slots needed to keep the load factor under ~0.75. */
    static size_t
    indexSizeFor(size_t entries)
    {
        size_t size = kMinIndexSize;
        while (entries + 1 > size - size / 4)
            size *= 2;
        return size;
    }

    size_t
    capacityLimit() const
    {
        return index_.empty() ? 0 : index_.size() - index_.size() / 4;
    }

    void
    rehash(size_t new_size)
    {
        index_.assign(new_size, kEmptySlot);
        mask_ = new_size - 1;
        for (size_t i = 0; i < entries_.size(); ++i) {
            size_t slot = Hash{}(entries_[i].first) & mask_;
            while (index_[slot] != kEmptySlot)
                slot = (slot + 1) & mask_;
            index_[slot] = uint32_t(i);
        }
    }

    std::vector<value_type> entries_;
    std::vector<uint32_t> index_;
    size_t mask_ = 0;
};

/**
 * FlatMap with an inline buffer for the first @p InlineN entries.
 * Small maps (the overwhelmingly common few-instances-per-static
 * case) never touch the heap; larger ones spill every entry into the
 * backing FlatMap and stay there.
 */
template <typename Key, typename T, size_t InlineN,
          typename Hash = FlatHash<Key>>
class SmallFlatMap
{
    static_assert(InlineN > 0, "use FlatMap for no inline buffer");

  public:
    using value_type = std::pair<Key, T>;

    size_t
    size() const
    {
        return spilled() ? rest_.size() : inlineCount_;
    }

    bool empty() const { return size() == 0; }

    T *
    find(const Key &key)
    {
        return const_cast<T *>(std::as_const(*this).find(key));
    }

    const T *
    find(const Key &key) const
    {
        if (spilled())
            return rest_.find(key);
        for (uint32_t i = 0; i < inlineCount_; ++i) {
            if (inline_[i].first == key)
                return &inline_[i].second;
        }
        return nullptr;
    }

    std::pair<T *, bool>
    tryEmplace(const Key &key, T value = T())
    {
        if (spilled())
            return rest_.tryEmplace(key, std::move(value));
        for (uint32_t i = 0; i < inlineCount_; ++i) {
            if (inline_[i].first == key)
                return {&inline_[i].second, false};
        }
        if (inlineCount_ < InlineN) {
            inline_[inlineCount_] = {key, std::move(value)};
            return {&inline_[inlineCount_++].second, true};
        }
        spill();
        return rest_.tryEmplace(key, std::move(value));
    }

    T &operator[](const Key &key) { return *tryEmplace(key).first; }

    /** Visit every (key, value) pair in insertion order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (spilled()) {
            for (const auto &[key, value] : rest_)
                fn(key, value);
        } else {
            for (uint32_t i = 0; i < inlineCount_; ++i)
                fn(inline_[i].first, inline_[i].second);
        }
    }

  private:
    bool spilled() const { return inlineCount_ > InlineN; }

    void
    spill()
    {
        rest_.reserve(InlineN + 1);
        for (uint32_t i = 0; i < InlineN; ++i) {
            rest_.tryEmplace(inline_[i].first,
                             std::move(inline_[i].second));
        }
        inlineCount_ = uint32_t(InlineN) + 1;   // spilled marker
    }

    std::array<value_type, InlineN> inline_ = {};
    uint32_t inlineCount_ = 0;
    FlatMap<Key, T, Hash> rest_;
};

/** Insert-only flat hash set (FlatMap with no mapped payload). */
template <typename Key, typename Hash = FlatHash<Key>>
class FlatSet
{
  public:
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    bool count(const Key &key) const
    {
        return map_.find(key) != nullptr;
    }

    /** @return true when @p key was newly inserted. */
    bool insert(const Key &key)
    {
        return map_.tryEmplace(key, Empty{}).second;
    }

  private:
    struct Empty
    {};

    FlatMap<Key, Empty, Hash> map_;
};

} // namespace irep

#endif // IREP_SUPPORT_FLAT_MAP_HH
