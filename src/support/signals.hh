/**
 * @file
 * Fatal-signal cleanup: arrange for a partially written file to be
 * unlink()ed when SIGINT/SIGTERM/SIGHUP kills the process mid-write.
 *
 * The writer protocol (support/outfile.hh, trace_io/writer.hh) is
 * tmp + rename, so a crash can never publish a torn file — but it
 * *can* leave the temporary behind, and a cache directory slowly
 * filling with orphaned `.tmp.<pid>` files is how "my disk is full"
 * bug reports start. `irep record` registers its temporary here for
 * the duration of the recording.
 *
 * The handler does only async-signal-safe work (unlink, sigaction,
 * raise) and then re-raises the signal with its default disposition,
 * so exit status and core behaviour stay exactly what the signal
 * would have produced anyway.
 */

#ifndef IREP_SUPPORT_SIGNALS_HH
#define IREP_SUPPORT_SIGNALS_HH

#include <string>

namespace irep::signals
{

/**
 * Unlink @p path if a fatal signal arrives before
 * clearRemoveOnFatalSignal(). One path is tracked at a time (a new
 * registration replaces the old); paths longer than the internal
 * fixed buffer are fatal — silently truncating would unlink the
 * wrong file.
 */
void removeOnFatalSignal(const std::string &path);

/** Stop tracking; call once the file is committed (or removed). */
void clearRemoveOnFatalSignal();

} // namespace irep::signals

#endif // IREP_SUPPORT_SIGNALS_HH
