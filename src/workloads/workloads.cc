#include "workloads/workloads.hh"

#include <mutex>
#include <unordered_map>

#include "minicc/compiler.hh"
#include "support/logging.hh"
#include "workloads/runtime.hh"

namespace irep::workloads
{

namespace
{

Workload
make(const std::string &name, const std::string &analogue,
     const std::string &description, std::string body,
     std::string input, std::string alt_input, std::string expected)
{
    Workload w;
    w.name = name;
    w.specAnalogue = analogue;
    w.description = description;
    w.source = runtimeSource() + body;
    w.input = std::move(input);
    w.altInput = std::move(alt_input);
    w.expectedOutput = std::move(expected);
    return w;
}

std::vector<Workload>
buildAll()
{
    std::vector<Workload> all;
    all.push_back(make(
        "go", "099.go",
        "board-game engine: influence maps, flood-fill liberties",
        goSource(), goInput(), goAltInput(),
        "go: moves=300 black=106 white=110\n"));
    all.push_back(make(
        "m88ksim", "124.m88ksim",
        "CPU simulator interpreting a target program from input",
        m88ksimSource(), m88ksimInput(), m88ksimAltInput(),
        "m88ksim: cycles=150000 r1=0 csum=57edad91\n"));
    all.push_back(make(
        "ijpeg", "132.ijpeg",
        "integer DCT image codec over a synthetic image",
        ijpegSource(), ijpegInput(), ijpegAltInput(),
        "ijpeg: bytes=120449 csum=94847c84\n"));
    all.push_back(make(
        "perl", "134.perl",
        "script interpreter running a word-scoring script",
        perlSource(), perlInput(), perlAltInput(),
        "perl: ops=8884 csum=0f7ca6b4\n"));
    all.push_back(make(
        "vortex", "147.vortex",
        "object database processing a transaction stream",
        vortexSource(), vortexInput(), vortexAltInput(),
        "vortex: live=2053 ops=19514 csum=98a14040\n"));
    all.push_back(make(
        "li", "130.li",
        "lisp interpreter evaluating list benchmarks",
        liSource(), liInput(), liAltInput(),
        "li: evals=163397 cells=189318 csum=088b5428\n"));
    all.push_back(make(
        "gcc", "126.gcc",
        "expression compiler with folding and value numbering",
        gccSource(), gccInput(), gccAltInput(),
        "gcc: stmts=2724 emitted=13979 folds=1137 cse=1915 csum=7321f9a5\n"));
    all.push_back(make(
        "compress", "129.compress",
        "LZW compressor over skewed synthetic text",
        compressSource(), compressInput(), compressAltInput(),
        "compress: in=400000 out=63730 csum=f7d4ab0e\n"));
    return all;
}

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> all = buildAll();
    return all;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload '", name, "'");
}

const assem::Program &
buildProgram(const Workload &workload)
{
    static std::mutex mutex;
    static std::unordered_map<std::string, assem::Program> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(workload.name);
    if (it == cache.end()) {
        it = cache
                 .emplace(workload.name,
                          minicc::compileToProgram(workload.source))
                 .first;
    }
    return it->second;
}

} // namespace irep::workloads
