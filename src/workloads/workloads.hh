/**
 * @file
 * The workload suite: eight MiniC programs mirroring the SPEC '95
 * integer benchmarks the paper measured (see DESIGN.md for the
 * mapping), each with a deterministic synthetic input.
 */

#ifndef IREP_WORKLOADS_WORKLOADS_HH
#define IREP_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "asm/program.hh"

namespace irep::workloads
{

/** One benchmark: MiniC source plus its external input bytes. */
struct Workload
{
    std::string name;           //!< short name ("compress", "li", ...)
    std::string specAnalogue;   //!< the SPEC '95 benchmark it mirrors
    std::string description;
    std::string source;         //!< full MiniC source (runtime incl.)
    std::string input;          //!< bytes served by the read syscall
    std::string altInput;       //!< second input set (paper §3 check)
    std::string expectedOutput; //!< empty = don't check
};

/** All eight workloads, in the paper's table order. */
const std::vector<Workload> &allWorkloads();

/** Look up one workload by name (fatal if unknown). */
const Workload &workloadByName(const std::string &name);

/** Compile + assemble a workload (results are memoized per name). */
const assem::Program &buildProgram(const Workload &workload);

// Per-benchmark source/input factories (exposed for tests).
std::string compressSource();
std::string compressInput();
std::string compressAltInput();
std::string goSource();
std::string goInput();
std::string goAltInput();
std::string m88ksimSource();
std::string m88ksimInput();
std::string m88ksimAltInput();
std::string ijpegSource();
std::string ijpegInput();
std::string ijpegAltInput();
std::string perlSource();
std::string perlInput();
std::string perlAltInput();
std::string vortexSource();
std::string vortexInput();
std::string vortexAltInput();
std::string liSource();
std::string liInput();
std::string liAltInput();
std::string gccSource();
std::string gccInput();
std::string gccAltInput();

} // namespace irep::workloads

#endif // IREP_WORKLOADS_WORKLOADS_HH
