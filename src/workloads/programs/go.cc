/**
 * @file
 * `go` analogue: a 19x19 board-game engine that alternates placing
 * stones for two players using an influence heuristic, recomputing
 * liberties with flood fill and evaluating positions — the
 * board-scanning, global-state-heavy style of SPEC 099.go. Takes no
 * external input (SPEC go's null.in is empty too, which is why the
 * paper's Table 3 shows 0.0% external input for go).
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
goSource()
{
    return R"MC(
/* -------------- go engine (SPEC go analogue) --------------------- */

int board[361];       /* 0 empty, 1 black, 2 white */

/* Statically initialized influence falloff by Manhattan distance
 * (SPEC go carries large static pattern/weight tables). */
int falloff[4] = { 4, 3, 2, 1 };
int influence[361];
int visited[361];
int libcount;
int moves_made;
int eval_black;
int eval_white;
int rngstate;

int xrand() {
    rngstate = rngstate * 69069 + 1;
    return (rngstate >> 16) & 32767;
}

int at(int x, int y) {
    return board[y * 19 + x];
}

void setat(int x, int y, int v) {
    board[y * 19 + x] = v;
}

/* Count liberties of the group at (x, y) with a recursive flood
 * fill (livesordies-style). */
void addlist(int x, int y, int color) {
    int p;
    p = y * 19 + x;
    if (visited[p]) return;
    visited[p] = 1;
    if (board[p] == 0) { libcount = libcount + 1; return; }
    if (board[p] != color) return;
    if (x > 0) addlist(x - 1, y, color);
    if (x < 18) addlist(x + 1, y, color);
    if (y > 0) addlist(x, y - 1, color);
    if (y < 18) addlist(x, y + 1, color);
}

int getefflibs(int x, int y) {
    int i;
    for (i = 0; i < 361; i = i + 1) visited[i] = 0;
    libcount = 0;
    addlist(x, y, at(x, y));
    return libcount;
}

/* Spread influence of every stone across the board (lupdate-style). */
void lupdate() {
    int x;
    int y;
    int sx;
    int sy;
    int d;
    int c;
    for (x = 0; x < 361; x = x + 1) influence[x] = 0;
    for (sy = 0; sy < 19; sy = sy + 1) {
        for (sx = 0; sx < 19; sx = sx + 1) {
            c = at(sx, sy);
            if (c == 0) continue;
            for (y = sy - 3; y <= sy + 3; y = y + 1) {
                if (y < 0 || y > 18) continue;
                for (x = sx - 3; x <= sx + 3; x = x + 1) {
                    int dx;
                    int dy;
                    if (x < 0 || x > 18) continue;
                    /* Manhattan distance, inlined like SPEC go's
                     * macro style. */
                    dx = x - sx;
                    if (dx < 0) dx = -dx;
                    dy = y - sy;
                    if (dy < 0) dy = -dy;
                    d = dx + dy;
                    if (d > 3) continue;
                    if (c == 1)
                        influence[y * 19 + x] =
                            influence[y * 19 + x] + falloff[d];
                    else
                        influence[y * 19 + x] =
                            influence[y * 19 + x] - falloff[d];
                }
            }
        }
    }
}

/* Remove a captured group (ldndate-style). */
void ldndate(int x, int y, int color) {
    int p;
    p = y * 19 + x;
    if (board[p] != color) return;
    board[p] = 0;
    if (x > 0) ldndate(x - 1, y, color);
    if (x < 18) ldndate(x + 1, y, color);
    if (y > 0) ldndate(x, y - 1, color);
    if (y < 18) ldndate(x, y + 1, color);
}

/* Does the group at (x,y) live after the move? */
int livesordies(int x, int y) {
    if (at(x, y) == 0) return 1;
    if (getefflibs(x, y) == 0) return 0;
    return 1;
}

/* Evaluate the whole position. */
void evaluate() {
    int i;
    eval_black = 0;
    eval_white = 0;
    for (i = 0; i < 361; i = i + 1) {
        if (influence[i] > 0) eval_black = eval_black + 1;
        if (influence[i] < 0) eval_white = eval_white + 1;
    }
}

/* Pick the empty point with the best influence for `color`. */
int pickmove(int color) {
    int best;
    int bestp;
    int i;
    int v;
    best = -100000;
    bestp = -1;
    for (i = 0; i < 361; i = i + 1) {
        if (board[i] != 0) continue;
        v = influence[i];
        if (color == 2) v = -v;
        v = v + (xrand() & 7);
        if (v > best) { best = v; bestp = i; }
    }
    return bestp;
}

void capture_neighbors(int x, int y, int enemy) {
    if (x > 0 && at(x - 1, y) == enemy && livesordies(x - 1, y) == 0)
        ldndate(x - 1, y, enemy);
    if (x < 18 && at(x + 1, y) == enemy && livesordies(x + 1, y) == 0)
        ldndate(x + 1, y, enemy);
    if (y > 0 && at(x, y - 1) == enemy && livesordies(x, y - 1) == 0)
        ldndate(x, y - 1, enemy);
    if (y < 18 && at(x, y + 1) == enemy && livesordies(x, y + 1) == 0)
        ldndate(x, y + 1, enemy);
}

int main() {
    int game;
    int move;
    int color;
    int p;
    int x;
    int y;
    char cfg[16];
    /* Optional input: a tie-break seed (SPEC go varied its position
     * file between null.in and 9stone21.in). */
    rngstate = 12345;
    if (readline(cfg, 16) >= 0) {
        p = atoi(cfg);
        if (p > 0) rngstate = p;
    }
    for (game = 0; game < 2; game = game + 1) {
        for (p = 0; p < 361; p = p + 1) board[p] = 0;
        color = 1;
        for (move = 0; move < 150; move = move + 1) {
            lupdate();
            p = pickmove(color);
            if (p < 0) break;
            x = p % 19;
            y = p / 19;
            setat(x, y, color);
            capture_neighbors(x, y, 3 - color);
            if (livesordies(x, y) == 0) ldndate(x, y, color);
            color = 3 - color;
            moves_made = moves_made + 1;
        }
        evaluate();
    }
    puts("go: moves=");
    putint(moves_made);
    puts(" black=");
    putint(eval_black);
    puts(" white=");
    putint(eval_white);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
goInput()
{
    return std::string();   // go takes no external input (like null.in)
}

std::string
goAltInput()
{
    return "98765\n";       // different tie-break seed (9stone21-ish)
}

} // namespace irep::workloads
