/**
 * @file
 * `compress` analogue: LZW compression with a hash-probed code table,
 * structured like SPEC '95 129.compress (getcode/output/readbytes
 * decomposition, 12-bit codes, global tables). Input is synthetic
 * text with skewed word statistics.
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
compressSource()
{
    return R"MC(
/* ------------- LZW compressor (SPEC compress analogue) ----------- */

int htab[5003];
int codetab[5003];
int n_bits;
int maxcode;
int free_ent;
int clear_flg;

int bitbuf;
int bitcnt;
int out_count;
int checksum;

int in_count;
int gen_left;
int gen_state;
int passes_left;

/* Vocabulary for the internally synthesized text (like SPEC
 * compress, which builds its data buffer from a small config). */
char vocab[256] = "the of and a to in is it was for that on with instruction repetition value program dynamic ";
int vocab_len;

/* Next byte of the synthesized stream, or -1 when done. SPEC '95
 * compress generates its input internally from the byte count and
 * ratio given in bigtest.in; we do the same, so external input
 * stays a tiny slice (the paper reports 2.0% for compress). */
int gen_pos;
int run_left;

int readbytes() {
    int r;
    if (gen_left <= 0) return -1;
    gen_left = gen_left - 1;
    in_count = in_count + 1;
    if (run_left <= 0) {
        /* Jump to a random spot and copy a run from the vocabulary,
         * giving the stream the repeated substrings of real text. */
        gen_state = gen_state * 1103515245 + 12345;
        r = (gen_state >> 16) & 32767;
        gen_pos = r % vocab_len;
        run_left = 4 + (r % 24);
    }
    run_left = run_left - 1;
    gen_pos = gen_pos + 1;
    if (gen_pos >= vocab_len) gen_pos = 0;
    return vocab[gen_pos];
}

/* Emit one n_bits-wide code into the bit-packed output stream. */
void output(int code) {
    bitbuf = bitbuf | (code << bitcnt);
    bitcnt = bitcnt + n_bits;
    while (bitcnt >= 8) {
        checksum = checksum * 31 + (bitbuf & 255);
        out_count = out_count + 1;
        bitbuf = bitbuf >> 8;
        bitcnt = bitcnt - 8;
    }
    if (free_ent > maxcode) {
        n_bits = n_bits + 1;
        if (n_bits > 12) n_bits = 12;
        maxcode = (1 << n_bits) - 1;
    }
}

void cl_hash() {
    int i;
    for (i = 0; i < 5003; i = i + 1) htab[i] = -1;
}

void cl_block() {
    cl_hash();
    free_ent = 257;
    clear_flg = 1;
    n_bits = 9;
    maxcode = (1 << 9) - 1;
}

int getcode(int ent, int c) {
    int fcode;
    int i;
    int disp;
    fcode = (c << 13) + ent;
    i = ((c << 5) ^ ent) % 5003;
    if (i < 0) i = i + 5003;
    disp = 5003 - i;
    if (i == 0) disp = 1;
    while (htab[i] >= 0) {
        if (htab[i] == fcode) return codetab[i];
        i = i - disp;
        if (i < 0) i = i + 5003;
    }
    /* Not found: install if room. */
    if (free_ent < 4096) {
        codetab[i] = free_ent;
        htab[i] = fcode;
        free_ent = free_ent + 1;
    } else {
        cl_block();
    }
    return -1;
}

void compress_stream() {
    int ent;
    int c;
    int code;
    ent = readbytes();
    if (ent < 0) return;
    c = readbytes();
    while (c >= 0) {
        code = getcode(ent, c);
        if (code >= 0) {
            ent = code;
        } else {
            output(ent);
            ent = c;
        }
        c = readbytes();
    }
    output(ent);
    /* Flush remaining bits. */
    if (bitcnt > 0) {
        checksum = checksum * 31 + (bitbuf & 255);
        out_count = out_count + 1;
        bitbuf = 0;
        bitcnt = 0;
    }
}

int main() {
    char cfg[32];
    int count;
    int seed;
    /* Like bigtest.in: the input supplies only the byte count; the
     * generator seed is a program constant (as in SPEC compress), so
     * the synthesized data is a program-internal slice. */
    readline(cfg, 32);
    count = atoi(cfg);
    seed = 97531;
    passes_left = 1;
    checksum = 7;
    vocab_len = strlen(vocab);
    gen_state = seed;
    gen_left = count;
    while (passes_left > 0) {
        gen_left = count;
        gen_state = seed;
        cl_hash();
        free_ent = 257;
        n_bits = 9;
        maxcode = (1 << 9) - 1;
        bitbuf = 0;
        bitcnt = 0;
        compress_stream();
        passes_left = passes_left - 1;
    }
    puts("compress: in=");
    putint(in_count);
    puts(" out=");
    putint(out_count);
    puts(" csum=");
    puthex(checksum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
compressInput()
{
    // Like bigtest.in: just the byte count to synthesize.
    return "400000\n";
}

std::string
compressAltInput()
{
    // test.in analogue: a shorter stream.
    return "150000\n";
}

} // namespace irep::workloads
