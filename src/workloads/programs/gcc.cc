/**
 * @file
 * `gcc` analogue: a small optimizing expression compiler — tokenizer,
 * recursive-descent parser building heap-allocated trees, constant
 * folding, common-subexpression hashing (canon_reg style), virtual
 * register allocation and pseudo-assembly emission — compiling a
 * stream of C-like statements from external input, like SPEC 126.gcc
 * chewing through reload.i.
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
gccSource()
{
    return R"MC(
/* ------------ expression compiler (SPEC gcc analogue) ------------ */

/* node kinds: 0 num, 1 var, 2 binop */
struct node {
    int kind;
    int value;          /* num: value, var: 'a'..'z', binop: op char */
    struct node *lhs;
    struct node *rhs;
};

char srcline[128];
int srcpos;

int nodes_made;
int stmts_compiled;
int folds_done;
int cse_hits;
int emit_csum;
int emitted;

int vreg_next;
int vartab[26];         /* variable -> holding vreg (or -1) */

/* CSE hash table: value-numbering of (op, l, r). */
int cse_op[509];
int cse_l[509];
int cse_r[509];
int cse_v[509];

struct node *newnode(int kind, int value) {
    struct node *n;
    n = (struct node *)malloc(sizeof(struct node));
    n->kind = kind;
    n->value = value;
    n->lhs = (struct node *)0;
    n->rhs = (struct node *)0;
    nodes_made = nodes_made + 1;
    return n;
}

/* ---- tokenizer over srcline ---- */
int peekch() {
    while (srcline[srcpos] == ' ') srcpos = srcpos + 1;
    return srcline[srcpos];
}

int nextch() {
    int c;
    c = peekch();
    if (c) srcpos = srcpos + 1;
    return c;
}

/* ---- parser: expr = term (+|- term)*, term = factor (*|/ factor)*,
 *      factor = num | var | ( expr ) ---- */
struct node *parse_expr();

struct node *parse_factor() {
    int c;
    int v;
    struct node *n;
    c = peekch();
    if (c == '(') {
        nextch();
        n = parse_expr();
        nextch();   /* ')' */
        return n;
    }
    if (c >= '0' && c <= '9') {
        v = 0;
        while (c >= '0' && c <= '9') {
            v = v * 10 + (c - '0');
            nextch();
            c = peekch();
        }
        return newnode(0, v);
    }
    nextch();
    return newnode(1, c);
}

struct node *parse_term() {
    struct node *n;
    struct node *r;
    struct node *b;
    int c;
    n = parse_factor();
    c = peekch();
    while (c == '*' || c == '/') {
        nextch();
        r = parse_factor();
        b = newnode(2, c);
        b->lhs = n;
        b->rhs = r;
        n = b;
        c = peekch();
    }
    return n;
}

struct node *parse_expr() {
    struct node *n;
    struct node *r;
    struct node *b;
    int c;
    n = parse_term();
    c = peekch();
    while (c == '+' || c == '-') {
        nextch();
        r = parse_term();
        b = newnode(2, c);
        b->lhs = n;
        b->rhs = r;
        n = b;
        c = peekch();
    }
    return n;
}

/* ---- constant folding pass ---- */
struct node *fold(struct node *n) {
    int a;
    int b;
    int op;
    if (n->kind != 2) return n;
    n->lhs = fold(n->lhs);
    n->rhs = fold(n->rhs);
    if (n->lhs->kind != 0 || n->rhs->kind != 0) return n;
    a = n->lhs->value;
    b = n->rhs->value;
    op = n->value;
    folds_done = folds_done + 1;
    if (op == '+') return newnode(0, a + b);
    if (op == '-') return newnode(0, a - b);
    if (op == '*') return newnode(0, a * b);
    if (b != 0) return newnode(0, a / b);
    return newnode(0, 0);
}

/* ---- code emission with value numbering ---- */
void emit3(int op, int dst, int src) {
    emit_csum = emit_csum * 31 + op * 256 + dst * 16 + src;
    emitted = emitted + 1;
}

int canon_reg(int op, int l, int r) {
    int h;
    h = (op * 31 + l * 17 + r * 7) % 509;
    if (h < 0) h = h + 509;
    while (cse_op[h]) {
        if (cse_op[h] == op && cse_l[h] == l && cse_r[h] == r) {
            cse_hits = cse_hits + 1;
            return cse_v[h];
        }
        h = h + 1;
        if (h >= 509) h = 0;
    }
    cse_op[h] = op;
    cse_l[h] = l;
    cse_r[h] = r;
    cse_v[h] = vreg_next;
    vreg_next = vreg_next + 1;
    return -1;
}

/* Returns the vreg holding the expression's value. */
int codegen(struct node *n) {
    int l;
    int r;
    int v;
    if (n->kind == 0) {
        v = canon_reg(1000, n->value, 0);
        if (v >= 0) return v;
        emit3(1, vreg_next - 1, n->value);  /* li */
        return vreg_next - 1;
    }
    if (n->kind == 1) {
        if (vartab[n->value - 'a'] >= 0)
            return vartab[n->value - 'a'];
        v = canon_reg(2000, n->value, 0);
        if (v >= 0) return v;
        emit3(2, vreg_next - 1, n->value);  /* load var */
        return vreg_next - 1;
    }
    l = codegen(n->lhs);
    r = codegen(n->rhs);
    v = canon_reg(n->value, l, r);
    if (v >= 0) return v;
    emit3(n->value, l, r);
    return vreg_next - 1;
}

void cse_clear() {
    int i;
    for (i = 0; i < 509; i = i + 1) cse_op[i] = 0;
    vreg_next = 1;
}

/* Compile one statement "x = expr". */
void compile_stmt() {
    int target;
    struct node *n;
    int v;
    srcpos = 0;
    target = nextch();
    nextch();       /* '=' */
    n = parse_expr();
    n = fold(n);
    v = codegen(n);
    vartab[target - 'a'] = v;
    emit3(3, target, v);    /* store */
    stmts_compiled = stmts_compiled + 1;
}

int main() {
    int n;
    int i;
    int pass;
    for (pass = 0; pass < 1; pass = pass + 1) {
        for (i = 0; i < 26; i = i + 1) vartab[i] = -1;
        cse_clear();
        n = readline(srcline, 128);
        while (n >= 0) {
            if (n > 2) compile_stmt();
            /* A "function boundary" resets the value numbering. */
            if (n == 1 && srcline[0] == ';') {
                cse_clear();
                for (i = 0; i < 26; i = i + 1) vartab[i] = -1;
            }
            n = readline(srcline, 128);
        }
    }
    puts("gcc: stmts=");
    putint(stmts_compiled);
    puts(" emitted=");
    putint(emitted);
    puts(" folds=");
    putint(folds_done);
    puts(" cse=");
    putint(cse_hits);
    puts(" csum=");
    puthex(emit_csum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
gccInput()
{
    // A deterministic stream of assignment statements grouped into
    // "functions" separated by ';' lines.
    std::string out;
    uint32_t seed = 0x5eed1234;
    auto next = [&seed]() {
        seed = seed * 1664525u + 1013904223u;
        return (seed >> 10) & 0x7fff;
    };
    auto gen_expr = [&next](auto &&self, int depth) -> std::string {
        if (depth <= 0 || next() % 3 == 0) {
            if (next() % 2)
                return std::string(1, char('a' + next() % 12));
            return std::to_string(next() % 100);
        }
        const char ops[] = {'+', '-', '*', '/'};
        std::string l = self(self, depth - 1);
        std::string r = self(self, depth - 1);
        std::string e = l + " " + ops[next() % 4] + " " + r;
        if (next() % 2)
            return "(" + e + ")";
        return e;
    };
    for (int func = 0; func < 150; ++func) {
        const int stmts = 8 + int(next()) % 20;
        for (int s = 0; s < stmts; ++s) {
            char target = char('a' + next() % 12);
            out += std::string(1, target) + " = " +
                   gen_expr(gen_expr, 2 + int(next()) % 3) + "\n";
        }
        out += ";\n";
    }
    return out;
}

std::string
gccAltInput()
{
    // A second source file: deeper expressions, fewer functions,
    // different seed (reload.i vs 1stmt.i in the paper).
    std::string out;
    uint32_t seed = 0xfeedf00d;
    auto next = [&seed]() {
        seed = seed * 1664525u + 1013904223u;
        return (seed >> 10) & 0x7fff;
    };
    auto gen_expr = [&next](auto &&self, int depth) -> std::string {
        if (depth <= 0 || next() % 4 == 0) {
            if (next() % 2)
                return std::string(1, char('a' + next() % 8));
            return std::to_string(next() % 50);
        }
        const char ops[] = {'+', '-', '*', '/'};
        std::string l = self(self, depth - 1);
        std::string r = self(self, depth - 1);
        return "(" + l + " " + ops[next() % 4] + " " + r + ")";
    };
    for (int func = 0; func < 80; ++func) {
        const int stmts = 12 + int(next()) % 12;
        for (int s = 0; s < stmts; ++s) {
            out += std::string(1, char('a' + next() % 8)) + " = " +
                   gen_expr(gen_expr, 3 + int(next()) % 2) + "\n";
        }
        out += ";\n";
    }
    return out;
}

} // namespace irep::workloads
