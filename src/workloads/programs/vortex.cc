/**
 * @file
 * `vortex` analogue: an in-memory object database with typed records,
 * a hash index, chunked memory accessors and a transaction stream of
 * inserts/lookups/updates/deletes read from external input. The
 * deliberately deep accessor decomposition (Mem_GetWord /
 * Chunk_ChkGetChunk / Tm_FetchObject style) mirrors SPEC 147.vortex,
 * whose prologue/epilogue costs dominate the paper's Table 5.
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
vortexSource()
{
    return R"MC(
/* ------------ object database (SPEC vortex analogue) ------------- */

struct object {
    int id;
    int type;
    int status;
    char name[16];
    int fields[8];
    struct object *next;    /* hash chain */
};

/* Statically initialized schema: per-field multipliers and
 * validation weights (vortex reads its DB schema into static
 * descriptor tables). */
int schema_mult[8] = { 3, 5, 7, 11, 13, 17, 19, 23 };
int schema_weight[8] = { 1, 2, 1, 3, 1, 2, 1, 4 };

struct object *buckets[256];
int live_objects;
int lookups_done;
int updates_done;
int deletes_done;
int inserts_done;
int db_csum;

/* ---- low-level accessors (Mem_* style) ---- */
int Mem_GetWord(struct object *o, int idx) {
    return o->fields[idx];
}

void Mem_PutWord(struct object *o, int idx, int v) {
    o->fields[idx] = v;
}

int Mem_GetAddr(int id) {
    return (id * 2654435761) & 255;
}

/* ---- chunk layer (Chunk_* style) ---- */
struct object *Chunk_ChkGetChunk(int id) {
    struct object *o;
    o = buckets[Mem_GetAddr(id)];
    while (o) {
        if (o->id == id) return o;
        o = o->next;
    }
    return (struct object *)0;
}

void Chunk_InsertChunk(struct object *o) {
    int b;
    b = Mem_GetAddr(o->id);
    o->next = buckets[b];
    buckets[b] = o;
    live_objects = live_objects + 1;
}

int Chunk_DeleteChunk(int id) {
    int b;
    struct object *o;
    struct object *prev;
    b = Mem_GetAddr(id);
    o = buckets[b];
    prev = (struct object *)0;
    while (o) {
        if (o->id == id) {
            if (prev) prev->next = o->next;
            else buckets[b] = o->next;
            live_objects = live_objects - 1;
            free((char *)o);
            return 1;
        }
        prev = o;
        o = o->next;
    }
    return 0;
}

/* ---- transaction manager (Tm_* style) ---- */
struct object *TmFetchObject(int id) {
    struct object *o;
    o = Chunk_ChkGetChunk(id);
    lookups_done = lookups_done + 1;
    return o;
}

void TmSetName(struct object *o, int id) {
    int i;
    int v;
    v = id;
    for (i = 0; i < 12; i = i + 1) {
        o->name[i] = (char)('a' + (v & 15));
        v = v >> 2;
    }
    o->name[12] = (char)0;
}

struct object *TmCreateObject(int id, int type) {
    struct object *o;
    int i;
    o = (struct object *)malloc(sizeof(struct object));
    o->id = id;
    o->type = type;
    o->status = 1;
    TmSetName(o, id);
    for (i = 0; i < 8; i = i + 1)
        Mem_PutWord(o, i, id * schema_mult[i]);
    o->next = (struct object *)0;
    Chunk_InsertChunk(o);
    inserts_done = inserts_done + 1;
    return o;
}

int TmUpdateObject(int id, int field, int delta) {
    struct object *o;
    o = TmFetchObject(id);
    if (o == 0) return 0;
    Mem_PutWord(o, field, Mem_GetWord(o, field) + delta);
    o->status = o->status + 1;
    updates_done = updates_done + 1;
    return 1;
}

int TmValidateObject(struct object *o) {
    int i;
    int s;
    if (o == 0) return 0;
    s = o->id + o->type;
    for (i = 0; i < 8; i = i + 1)
        s = s + Mem_GetWord(o, i) * schema_weight[i];
    s = s + strlen(o->name);
    return s;
}

/* ---- transaction stream: "op id" per line ----
 *  i = insert, l = lookup, u = update, d = delete, v = validate    */
void runstream() {
    char line[32];
    int n;
    int id;
    int op;
    struct object *o;
    n = readline(line, 32);
    while (n >= 0) {
        if (n >= 3) {
            op = line[0];
            id = atoi(&line[2]);
            if (op == 'i') {
                TmCreateObject(id, id % 7);
            } else if (op == 'l') {
                o = TmFetchObject(id);
                db_csum = db_csum * 31 + TmValidateObject(o);
            } else if (op == 'u') {
                TmUpdateObject(id, id % 8, id % 13);
            } else if (op == 'd') {
                if (Chunk_DeleteChunk(id))
                    deletes_done = deletes_done + 1;
            } else if (op == 'v') {
                o = TmFetchObject(id);
                db_csum = db_csum * 31 + TmValidateObject(o);
            }
        }
        n = readline(line, 32);
    }
}

int main() {
    runstream();
    puts("vortex: live=");
    putint(live_objects);
    puts(" ops=");
    putint(inserts_done + lookups_done + updates_done + deletes_done);
    puts(" csum=");
    puthex(db_csum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
vortexInput()
{
    // A deterministic transaction mix: build a working set, then a
    // skewed lookup/update/delete stream over it.
    std::string out;
    uint32_t seed = 0xbeefcafe;
    auto next = [&seed]() {
        seed = seed * 1664525u + 1013904223u;
        return (seed >> 12) & 0xffff;
    };
    constexpr int population = 1200;
    for (int i = 0; i < population; ++i)
        out += "i " + std::to_string(i * 7 + 1) + "\n";
    for (int t = 0; t < 14000; ++t) {
        const int r = int(next()) % 100;
        // Skew id choice toward a hot subset (repeated arguments!).
        int id;
        if (next() % 4 != 0)
            id = (int(next()) % 60) * 7 + 1;
        else
            id = (int(next()) % population) * 7 + 1;
        if (r < 55)
            out += "l " + std::to_string(id) + "\n";
        else if (r < 80)
            out += "u " + std::to_string(id) + "\n";
        else if (r < 88)
            out += "v " + std::to_string(id) + "\n";
        else if (r < 94) {
            out += "d " + std::to_string(id) + "\n";
            out += "i " + std::to_string(id) + "\n";
        } else {
            out += "i " + std::to_string(100000 + t) + "\n";
        }
    }
    return out;
}

std::string
vortexAltInput()
{
    // A second transaction mix: smaller population, update-heavy,
    // different seed.
    std::string out;
    uint32_t seed = 0x13572468;
    auto next = [&seed]() {
        seed = seed * 1664525u + 1013904223u;
        return (seed >> 12) & 0xffff;
    };
    constexpr int population = 600;
    for (int i = 0; i < population; ++i)
        out += "i " + std::to_string(i * 3 + 2) + "\n";
    for (int t = 0; t < 16000; ++t) {
        const int r = int(next()) % 100;
        const int id = (int(next()) % population) * 3 + 2;
        if (r < 30)
            out += "l " + std::to_string(id) + "\n";
        else if (r < 80)
            out += "u " + std::to_string(id) + "\n";
        else
            out += "v " + std::to_string(id) + "\n";
    }
    return out;
}

} // namespace irep::workloads
