/**
 * @file
 * `ijpeg` analogue: forward integer DCT, quantization, zigzag and
 * Huffman-style entropy coding of 8x8 blocks of a synthetic image
 * read from external input — the emit_bits/encode_one_block/
 * jpeg_idct pipeline of SPEC 132.ijpeg. Runs several qualities per
 * image, like ijpeg's multi-pass harness.
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
ijpegSource()
{
    return R"MC(
/* --------- block image codec (SPEC ijpeg analogue) --------------- */

int IMGW;
int IMGH;
char *image;             /* heap-allocated, like ijpeg's buffers */
int *block;              /* DCT workspace, heap-allocated */
int *coef;
int lastdc;

/* Statically initialized tables: zigzag order and base quant matrix
 * (the paper's "global init data" slices). */
int zigzag[64] = {
     0,  1,  8, 16,  9,  2,  3, 10,
    17, 24, 32, 25, 18, 11,  4,  5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13,  6,  7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63 };

int basequant[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68,109,103, 77,
    24, 35, 55, 64, 81,104,113, 92,
    49, 64, 78, 87,103,121,120,101,
    72, 92, 95, 98,112,100,103, 99 };

int quant[64];

/* Bit-packing output (emit_bits). */
int bitbuf;
int bitcnt;
int out_bytes;
int out_csum;

void emit_bits(int code, int size) {
    bitbuf = (bitbuf << size) | (code & ((1 << size) - 1));
    bitcnt = bitcnt + size;
    while (bitcnt >= 8) {
        out_csum = out_csum * 31 + ((bitbuf >> (bitcnt - 8)) & 255);
        out_bytes = out_bytes + 1;
        bitcnt = bitcnt - 8;
    }
}

/* Magnitude category of a coefficient (Huffman symbol). */
int csize(int v) {
    int n;
    if (v < 0) v = -v;
    n = 0;
    while (v) { n = n + 1; v = v >> 1; }
    return n;
}

/* 1-D integer DCT on 8 samples (in-place, scaled). */
void dct1d(int *d, int stride) {
    int s07; int s16; int s25; int s34;
    int d07; int d16; int d25; int d34;
    s07 = d[0] + d[stride * 7];
    s16 = d[stride] + d[stride * 6];
    s25 = d[stride * 2] + d[stride * 5];
    s34 = d[stride * 3] + d[stride * 4];
    d07 = d[0] - d[stride * 7];
    d16 = d[stride] - d[stride * 6];
    d25 = d[stride * 2] - d[stride * 5];
    d34 = d[stride * 3] - d[stride * 4];
    d[0] = s07 + s34 + s16 + s25;
    d[stride * 4] = s07 + s34 - s16 - s25;
    d[stride * 2] = ((s07 - s34) * 17 + (s16 - s25) * 7) >> 4;
    d[stride * 6] = ((s07 - s34) * 7 - (s16 - s25) * 17) >> 4;
    d[stride] = (d07 * 23 + d16 * 19 + d25 * 13 + d34 * 4) >> 4;
    d[stride * 3] = (d07 * 19 - d16 * 4 - d25 * 23 - d34 * 13) >> 4;
    d[stride * 5] = (d07 * 13 - d16 * 23 + d25 * 4 + d34 * 19) >> 4;
    d[stride * 7] = (d07 * 4 - d16 * 13 + d25 * 19 - d34 * 23) >> 4;
}

void fdct(int *d) {
    int i;
    for (i = 0; i < 8; i = i + 1) dct1d(&d[i * 8], 1);
    for (i = 0; i < 8; i = i + 1) dct1d(&d[i], 8);
}

void setquality(int q) {
    int i;
    int v;
    for (i = 0; i < 64; i = i + 1) {
        v = (basequant[i] * q + 50) / 100;
        if (v < 1) v = 1;
        if (v > 255) v = 255;
        quant[i] = v;
    }
}

/* DCT + quantize + zigzag + entropy-code one 8x8 block. */
void encode_one_block(int bx, int by) {
    int x;
    int y;
    int i;
    int v;
    int run;
    int size;
    int diff;
    for (y = 0; y < 8; y = y + 1) {
        for (x = 0; x < 8; x = x + 1) {
            block[y * 8 + x] =
                (int)image[(by * 8 + y) * IMGW + bx * 8 + x] - 128;
        }
    }
    fdct(block);
    for (i = 0; i < 64; i = i + 1) {
        v = block[zigzag[i]];
        if (v >= 0) coef[i] = v / quant[i];
        else coef[i] = -((-v) / quant[i]);
    }
    /* DC difference. */
    diff = coef[0] - lastdc;
    lastdc = coef[0];
    size = csize(diff);
    emit_bits(size, 4);
    if (size) emit_bits(diff, size);
    /* AC run-length coding. */
    run = 0;
    for (i = 1; i < 64; i = i + 1) {
        if (coef[i] == 0) {
            run = run + 1;
        } else {
            while (run > 15) { emit_bits(240, 8); run = run - 16; }
            size = csize(coef[i]);
            emit_bits(run * 16 + size, 8);
            emit_bits(coef[i], size);
            run = 0;
        }
    }
    if (run) emit_bits(0, 8);   /* EOB */
}

void readimage() {
    int got;
    int total;
    total = IMGW * IMGH;
    got = 0;
    while (got < total) {
        int n;
        n = __read(&image[got], total - got);
        if (n <= 0) return;
        got = got + n;
    }
}

int main() {
    int q;
    int bx;
    int by;
    int pass;
    IMGW = 128;
    IMGH = 128;
    image = malloc(IMGW * IMGH);
    block = (int *)malloc(64 * sizeof(int));
    coef = (int *)malloc(64 * sizeof(int));
    readimage();
    for (pass = 0; pass < 8; pass = pass + 1) {
        q = 30 + (pass % 3) * 30;   /* qualities 30, 60, 90 */
        setquality(q);
        lastdc = 0;
        bitbuf = 0;
        bitcnt = 0;
        for (by = 0; by < 16; by = by + 1) {
            for (bx = 0; bx < 16; bx = bx + 1) {
                encode_one_block(bx, by);
            }
        }
    }
    puts("ijpeg: bytes=");
    putint(out_bytes);
    puts(" csum=");
    puthex(out_csum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
ijpegInput()
{
    // A deterministic 128x128 synthetic "photo": smooth gradients plus
    // texture, so blocks have realistic mixed-frequency content.
    std::string img(128 * 128, '\0');
    for (int y = 0; y < 128; ++y) {
        for (int x = 0; x < 128; ++x) {
            int v = 128 + ((x * 5 + y * 3) % 64) - 32;
            v += ((x / 16 + y / 16) % 2) ? 24 : -24;      // checkers
            v += ((x * x + y * y) / 37) % 17 - 8;         // texture
            if (v < 0)
                v = 0;
            if (v > 255)
                v = 255;
            img[size_t(y) * 128 + size_t(x)] = char(v);
        }
    }
    return img;
}

std::string
ijpegAltInput()
{
    // A different 128x128 image: radial rings plus diagonal stripes
    // (like swapping vigo.ppm for specmun.ppm).
    std::string img(128 * 128, '\0');
    for (int y = 0; y < 128; ++y) {
        for (int x = 0; x < 128; ++x) {
            const int cx = x - 64, cy = y - 64;
            int v = 128 + ((cx * cx + cy * cy) / 23) % 97 - 48;
            v += ((x + y) % 16 < 8) ? 15 : -15;
            if (v < 0)
                v = 0;
            if (v > 255)
                v = 255;
            img[size_t(y) * 128 + size_t(x)] = char(v);
        }
    }
    return img;
}

} // namespace irep::workloads
