/**
 * @file
 * `m88ksim` analogue: a functional simulator for a small 16-register
 * RISC target, decomposed SPEC-style (Data_path/execute/alu/
 * loadstore/test_issue), interpreting a target program that is loaded
 * from external input — the simulator-simulating-a-program structure
 * of SPEC 124.m88ksim running ctl.in.
 */

#include <cstdint>
#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
m88ksimSource()
{
    return R"MC(
/* --------- toy RISC simulator (SPEC m88ksim analogue) ------------ */
/* Target ISA, 16 regs, word-addressed 1024-word memory.
 * Encoding: op*16777216 + rd*65536 + rs*256 + imm8
 *   op 0 halt | 1 li rd,imm | 2 add rd,rs,imm(reg idx) | 3 sub
 *   4 mul | 5 ld rd,[rs+imm] | 6 st rd,[rs+imm] | 7 beq rd,rs,imm
 *   8 bne | 9 jmp imm | 10 addi rd,rs,imm | 11 shl | 12 shr
 *   13 and | 14 or | 15 xor                                         */

int tregs[16];
int *tmem;               /* simulated memory image, heap-allocated */
int *tprog;              /* loaded target program, heap-allocated */
int tproglen;
int tpc;
int trunning;
int cycles;
int trace_csum;

int opcount[16];

int fetch() {
    int w;
    if (tpc < 0 || tpc >= tproglen) { trunning = 0; return 0; }
    w = tprog[tpc];
    tpc = tpc + 1;
    return w;
}

int alu(int op, int a, int b) {
    if (op == 2) return a + b;
    if (op == 3) return a - b;
    if (op == 4) return a * b;
    if (op == 11) return a << (b & 31);
    if (op == 12) return a >> (b & 31);
    if (op == 13) return a & b;
    if (op == 14) return a | b;
    return a ^ b;
}

int loadstore(int op, int rd, int addr) {
    if (addr < 0) addr = 0;
    if (addr >= 1024) addr = addr % 1024;
    if (op == 5) { tregs[rd] = tmem[addr]; return tregs[rd]; }
    tmem[addr] = tregs[rd];
    return tregs[rd];
}

void display_trace(int op, int rd) {
    trace_csum = trace_csum * 17 + op * 4 + rd;
}

int test_issue(int op) {
    opcount[op] = opcount[op] + 1;
    if (op == 0) return 0;
    return 1;
}

void execute(int w) {
    int op;
    int rd;
    int rs;
    int imm;
    op = (w >> 24) & 255;
    rd = (w >> 16) & 255;
    rs = (w >> 8) & 255;
    imm = w & 255;
    if (imm > 127) imm = imm - 256;   /* sign-extend imm8 */
    if (test_issue(op) == 0) { trunning = 0; return; }
    if (op == 1) {
        tregs[rd] = imm;
    } else if (op >= 2 && op <= 4) {
        tregs[rd] = alu(op, tregs[rs], tregs[imm & 15]);
    } else if (op >= 11 && op <= 15) {
        tregs[rd] = alu(op, tregs[rs], tregs[imm & 15]);
    } else if (op == 5 || op == 6) {
        loadstore(op, rd, tregs[rs] + imm);
    } else if (op == 7) {
        if (tregs[rd] == tregs[rs]) tpc = tpc + imm;
    } else if (op == 8) {
        if (tregs[rd] != tregs[rs]) tpc = tpc + imm;
    } else if (op == 9) {
        tpc = tpc + imm;
    } else if (op == 10) {
        tregs[rd] = tregs[rs] + imm;
    }
    display_trace(op, rd);
}

void Data_path() {
    int w;
    w = fetch();
    if (trunning == 0) return;
    execute(w);
    cycles = cycles + 1;
}

/* Load the target program: one decimal word per input line. */
void loadprog() {
    char line[32];
    int n;
    tmem = (int *)malloc(1024 * sizeof(int));
    tprog = (int *)malloc(512 * sizeof(int));
    tproglen = 0;
    n = readline(line, 32);
    while (n >= 0 && tproglen < 512) {
        if (n > 0) {
            tprog[tproglen] = atoi(line);
            tproglen = tproglen + 1;
        }
        n = readline(line, 32);
    }
}

int main() {
    int run;
    int i;
    int maxcycles;
    loadprog();
    maxcycles = 150000;
    for (run = 0; run < 8; run = run + 1) {
        for (i = 0; i < 16; i = i + 1) tregs[i] = 0;
        for (i = 0; i < 1024; i = i + 1) tmem[i] = 0;
        tpc = 0;
        trunning = 1;
        while (trunning && cycles < maxcycles) Data_path();
    }
    puts("m88ksim: cycles=");
    putint(cycles);
    puts(" r1=");
    putint(tregs[1]);
    puts(" csum=");
    puthex(trace_csum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
m88ksimInput()
{
    // The target program, one decimal instruction word per line: a
    // triangular-sum kernel that stores partial sums to target memory
    // and restarts forever (the host's cycle budget stops it).
    // Branch immediates are relative to the already-incremented pc.
    auto word = [](int op, int rd, int rs, int imm) {
        return (op << 24) | (rd << 16) | (rs << 8) | (imm & 255);
    };
    std::string out;
    auto put = [&out](int w) { out += std::to_string(w) + "\n"; };

    put(word(1, 1, 0, 0));      //  0: li r1, 0      i = 0
    put(word(1, 2, 0, 100));    //  1: li r2, 100    n = 100
    put(word(1, 3, 0, 0));      //  2: li r3, 0      sum = 0
    put(word(1, 4, 0, 0));      //  3: li r4, 0      j = 0
    put(word(7, 4, 1, 3));      //  4: beq r4, r1, +3  -> 8
    put(word(2, 3, 3, 4));      //  5: add r3, r3, r4  sum += j
    put(word(10, 4, 4, 1));     //  6: addi r4, r4, 1  j++
    put(word(9, 0, 0, -4));     //  7: jmp -4          -> 4
    put(word(6, 3, 1, 0));      //  8: st r3, [r1+0]   mem[i] = sum
    put(word(10, 1, 1, 1));     //  9: addi r1, r1, 1  i++
    put(word(8, 1, 2, -8));     // 10: bne r1, r2, -8  -> 3
    put(word(5, 5, 0, 0));      // 11: ld r5, [r0+0]   r5 = mem[0]
    put(word(9, 0, 0, -13));    // 12: jmp -13         -> 0 (restart)
    return out;
}

std::string
m88ksimAltInput()
{
    // A different target program: iterative fibonacci into memory,
    // restarting forever.
    auto word = [](int op, int rd, int rs, int imm) {
        return (op << 24) | (rd << 16) | (rs << 8) | (imm & 255);
    };
    std::string out;
    auto put = [&out](int w) { out += std::to_string(w) + "\n"; };

    put(word(1, 1, 0, 0));      //  0: li r1, 0     a = 0
    put(word(1, 2, 0, 1));      //  1: li r2, 1     b = 1
    put(word(1, 3, 0, 30));     //  2: li r3, 30    n
    put(word(1, 4, 0, 0));      //  3: li r4, 0     i = 0
    put(word(2, 5, 1, 2));      //  4: add r5, r1, r2   t = a + b
    put(word(2, 1, 2, 7));      //  5: add r1, r2, r7   a = b
    put(word(2, 2, 5, 7));      //  6: add r2, r5, r7   b = t
    put(word(6, 1, 4, 0));      //  7: st r1, [r4+0]
    put(word(10, 4, 4, 1));     //  8: addi r4, r4, 1
    put(word(8, 4, 3, -6));     //  9: bne r4, r3, -6  -> 4
    put(word(9, 0, 0, -11));    // 10: jmp -11         -> 0 (restart)
    return out;
}

} // namespace irep::workloads
