/**
 * @file
 * `perl` analogue: an interpreter for a tiny scripting language
 * (variables, arithmetic, string hashing, while loops), running a
 * word-scoring script over a word list — the eval/hash/string-op
 * profile of SPEC 134.perl on scrabbl.pl. The script itself arrives
 * via external input, so the interpreter's behaviour is input-driven
 * exactly like perl's.
 *
 * Script language (one statement per line):
 *   set X N        X = N
 *   add X Y        X = X + var(Y)
 *   sub X Y        X = X - var(Y)
 *   mul X Y        X = X * var(Y)
 *   score X word   X = scrabble score of `word`
 *   hash X word    X = string hash of `word`
 *   loop N         repeat following block N times
 *   end            end of loop block
 *   out X          append var(X) to the output checksum
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
perlSource()
{
    return R"MC(
/* ---------- tiny script interpreter (SPEC perl analogue) --------- */

/* Letter values (global init data), scrabble-style. */
int letterval[26] = { 1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
                      1, 1, 3,10, 1, 1, 1, 1, 4, 4, 8, 4,10 };

/* Variable table: single-letter names A..Z. */
int vars[26];

/* The loaded program lives in a heap arena (perl keeps its script
 * and strings on the heap). */
char *progtext;
int *linestart;
int nlines;

int out_csum;
int ops_run;

/* str_nset-style helper: copy up to n chars. */
void str_nset(char *dst, char *src, int n) {
    int i;
    i = 0;
    while (i < n && src[i]) { dst[i] = src[i]; i = i + 1; }
    dst[i] = (char)0;
}

int varindex(char *name) {
    return *name - 'A';
}

/* Scrabble score of a lowercase word. */
int word_score(char *w) {
    int s;
    int mult;
    s = 0;
    mult = 1;
    while (*w) {
        if (*w >= 'a' && *w <= 'z')
            s = s + letterval[*w - 'a'];
        if (*w == 'q' || *w == 'z') mult = 2;
        w = w + 1;
    }
    return s * mult;
}

/* perl-style string hash. */
int str_hash(char *w) {
    int h;
    h = 0;
    while (*w) {
        h = h * 33 + *w;
        w = w + 1;
    }
    return h & 0x7fffffff;
}

/* Split a line into up to 3 fields; returns field count. */
int fields(char *line, char **f1, char **f2, char **f3) {
    int n;
    char *p;
    p = line;
    n = 0;
    while (*p) {
        while (*p == ' ') { *p = (char)0; p = p + 1; }
        if (*p == 0) break;
        if (n == 0) *f1 = p;
        if (n == 1) *f2 = p;
        if (n == 2) *f3 = p;
        n = n + 1;
        while (*p && *p != ' ') p = p + 1;
    }
    return n;
}

void loadprog() {
    char line[64];
    int n;
    int pos;
    progtext = malloc(24576);
    linestart = (int *)malloc(512 * sizeof(int));
    nlines = 0;
    pos = 0;
    n = readline(line, 64);
    while (n >= 0 && nlines < 512) {
        linestart[nlines] = pos;
        memcpy(&progtext[pos], line, n + 1);
        pos = pos + n + 1;
        nlines = nlines + 1;
        n = readline(line, 64);
    }
}

/* Evaluate lines [from, to); returns nothing. Loops recurse. */
void eval(int from, int to) {
    int i;
    int depth;
    char linebuf[64];
    char *f1; char *f2; char *f3;
    int nf;
    int count;
    int j;
    int body;
    i = from;
    while (i < to) {
        /* Work on a copy because fields() punches holes. */
        str_nset(linebuf, &progtext[linestart[i]], 63);
        nf = fields(linebuf, &f1, &f2, &f3);
        ops_run = ops_run + 1;
        if (nf == 0) { i = i + 1; continue; }
        if (strcmp(f1, "set") == 0) {
            vars[varindex(f2)] = atoi(f3);
        } else if (strcmp(f1, "add") == 0) {
            vars[varindex(f2)] = vars[varindex(f2)] + vars[varindex(f3)];
        } else if (strcmp(f1, "sub") == 0) {
            vars[varindex(f2)] = vars[varindex(f2)] - vars[varindex(f3)];
        } else if (strcmp(f1, "mul") == 0) {
            vars[varindex(f2)] = vars[varindex(f2)] * vars[varindex(f3)];
        } else if (strcmp(f1, "score") == 0) {
            vars[varindex(f2)] = word_score(f3);
        } else if (strcmp(f1, "hash") == 0) {
            vars[varindex(f2)] = str_hash(f3);
        } else if (strcmp(f1, "out") == 0) {
            out_csum = out_csum * 31 + vars[varindex(f2)];
        } else if (strcmp(f1, "loop") == 0) {
            count = atoi(f2);
            /* Find the matching end. */
            depth = 1;
            body = i + 1;
            j = body;
            while (j < to && depth > 0) {
                str_nset(linebuf, &progtext[linestart[j]], 63);
                nf = fields(linebuf, &f1, &f2, &f3);
                if (nf > 0 && strcmp(f1, "loop") == 0)
                    depth = depth + 1;
                if (nf > 0 && strcmp(f1, "end") == 0)
                    depth = depth - 1;
                j = j + 1;
            }
            while (count > 0) {
                eval(body, j - 1);
                count = count - 1;
            }
            i = j;
            continue;
        }
        i = i + 1;
    }
}

int main() {
    loadprog();
    eval(0, nlines);
    puts("perl: ops=");
    putint(ops_run);
    puts(" csum=");
    puthex(out_csum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
perlInput()
{
    // A scoring script over a word list, nested loops for volume.
    static const char *const words[] = {
        "quartz", "jazzy", "lexicon", "program", "repeat", "value",
        "cache", "buffer", "squeeze", "oxygen", "wizard", "syntax",
        "kernel", "octave", "matrix", "vector", "puzzle", "quorum",
    };
    std::string script;
    script += "set T 0\n";
    script += "set I 0\n";
    script += "loop 120\n";
    for (const char *w : words) {
        script += std::string("score S ") + w + "\n";
        script += "add T S\n";
        script += std::string("hash H ") + w + "\n";
        script += "add I H\n";
    }
    script += "out T\n";
    script += "out I\n";
    script += "end\n";
    script += "out T\n";
    return script;
}

std::string
perlAltInput()
{
    // A different script in the same language: arithmetic-heavy
    // nested loops (primes.pl vs scrabble.in in the paper).
    std::string script;
    script += "set A 1\n";
    script += "set B 1\n";
    script += "set T 0\n";
    script += "loop 90\n";
    script += "loop 25\n";
    script += "add A B\n";
    script += "mul B A\n";
    script += "sub B A\n";
    script += "hash H topaz\n";
    script += "add T H\n";
    script += "score S quizzical\n";
    script += "add T S\n";
    script += "end\n";
    script += "out T\n";
    script += "end\n";
    return script;
}

} // namespace irep::workloads
