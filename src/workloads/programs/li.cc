/**
 * @file
 * `li` analogue: a lisp interpreter with cons cells, interned
 * symbols, assoc-list environments, special forms and user-defined
 * functions, running classic list benchmarks (fib, naive reverse)
 * read from external input — the xlisp eval/cons profile of SPEC
 * 130.li (livecar/livecdr/xlevlist in the paper's Table 9).
 */

#include <string>

#include "workloads/workloads.hh"

namespace irep::workloads
{

std::string
liSource()
{
    return R"MC(
/* ------------- lisp interpreter (SPEC li analogue) --------------- */

/* Cell tags. */
/* 0 = cons, 1 = fixnum, 2 = symbol */

struct cell {
    int tag;
    int car;        /* cons: cell*, fixnum: value, symbol: symtab idx */
    int cdr;        /* cons: cell* */
};

char symnames[2048];
int symstart[128];
int nsyms;

struct cell *nil;
struct cell *tsym;

int cells_made;
int evals_done;
int out_csum;

struct cell *newcell(int tag) {
    struct cell *c;
    c = (struct cell *)malloc(sizeof(struct cell));
    c->tag = tag;
    c->car = 0;
    c->cdr = 0;
    cells_made = cells_made + 1;
    return c;
}

struct cell *mknum(int v) {
    struct cell *c;
    c = newcell(1);
    c->car = v;
    return c;
}

struct cell *cons(struct cell *a, struct cell *d) {
    struct cell *c;
    c = newcell(0);
    c->car = (int)a;
    c->cdr = (int)d;
    return c;
}

struct cell *livecar(struct cell *c) {
    if (c->tag != 0) return nil;
    return (struct cell *)c->car;
}

struct cell *livecdr(struct cell *c) {
    if (c->tag != 0) return nil;
    return (struct cell *)c->cdr;
}

/* Intern a symbol name; returns a symbol cell index. */
int intern(char *name) {
    int i;
    for (i = 0; i < nsyms; i = i + 1) {
        if (strcmp(&symnames[symstart[i]], name) == 0) return i;
    }
    symstart[nsyms] = (nsyms == 0) ? 0
        : symstart[nsyms - 1] + strlen(&symnames[symstart[nsyms - 1]]) + 1;
    strcpy(&symnames[symstart[nsyms]], name);
    nsyms = nsyms + 1;
    return nsyms - 1;
}

struct cell *mksym(char *name) {
    struct cell *c;
    c = newcell(2);
    c->car = intern(name);
    return c;
}

int symis(struct cell *c, char *name) {
    if (c->tag != 2) return 0;
    return strcmp(&symnames[symstart[c->car]], name) == 0;
}

/* ---------------- reader ---------------- */
int peeked;
int havepeek;

int rdchar() {
    if (havepeek) { havepeek = 0; return peeked; }
    return getchar();
}

void unread(int c) { peeked = c; havepeek = 1; }

int skipspace() {
    int c;
    c = rdchar();
    while (c == ' ' || c == '\n' || c == '\t') c = rdchar();
    return c;
}

struct cell *readexpr();

struct cell *readlist() {
    int c;
    struct cell *head;
    struct cell *tail;
    struct cell *e;
    head = nil;
    tail = nil;
    c = skipspace();
    while (c >= 0 && c != ')') {
        unread(c);
        e = readexpr();
        e = cons(e, nil);
        if (head == nil) head = e;
        else tail->cdr = (int)e;
        tail = e;
        c = skipspace();
    }
    return head;
}

struct cell *readexpr() {
    int c;
    char tok[32];
    int i;
    c = skipspace();
    if (c < 0) return nil;
    if (c == '(') return readlist();
    i = 0;
    while (c > ' ' && c != '(' && c != ')') {
        if (i < 31) { tok[i] = (char)c; i = i + 1; }
        c = rdchar();
    }
    unread(c);
    tok[i] = (char)0;
    if ((tok[0] >= '0' && tok[0] <= '9') ||
        (tok[0] == '-' && tok[1] >= '0' && tok[1] <= '9'))
        return mknum(atoi(tok));
    return mksym(tok);
}

/* -------------- environment -------------- */
/* env is a list of (symidx . value) pairs built with cons, where the
 * pair's tag-1 car holds the symbol index. */

struct cell *xlsave(int symidx, struct cell *val, struct cell *env) {
    struct cell *pair;
    pair = newcell(0);
    pair->car = symidx;
    pair->cdr = (int)val;
    return cons(pair, env);
}

struct cell *xlobgetvalue(int symidx, struct cell *env) {
    struct cell *pair;
    while (env != nil) {
        pair = livecar(env);
        if (pair->car == symidx) return (struct cell *)pair->cdr;
        env = livecdr(env);
    }
    return nil;
}

/* -------------- functions table -------------- */
int fnname[64];
struct cell *fnparams[64];
struct cell *fnbody[64];
int nfns;

int findfn(int symidx) {
    int i;
    for (i = 0; i < nfns; i = i + 1) {
        if (fnname[i] == symidx) return i;
    }
    return -1;
}

/* -------------- evaluator -------------- */
struct cell *eval(struct cell *e, struct cell *env);

/* Evaluate every element of a list (xlevlist). */
struct cell *xlevlist(struct cell *args, struct cell *env) {
    struct cell *head;
    struct cell *tail;
    struct cell *v;
    head = nil;
    tail = nil;
    while (args != nil) {
        v = cons(eval(livecar(args), env), nil);
        if (head == nil) head = v;
        else tail->cdr = (int)v;
        tail = v;
        args = livecdr(args);
    }
    return head;
}

int numval(struct cell *c) {
    if (c->tag == 1) return c->car;
    return 0;
}

struct cell *apply(int fnidx, struct cell *argvals) {
    struct cell *env;
    struct cell *p;
    env = nil;
    p = fnparams[fnidx];
    while (p != nil && argvals != nil) {
        env = xlsave(livecar(p)->car, livecar(argvals), env);
        p = livecdr(p);
        argvals = livecdr(argvals);
    }
    return eval(fnbody[fnidx], env);
}

struct cell *eval(struct cell *e, struct cell *env) {
    struct cell *head;
    struct cell *args;
    struct cell *a;
    struct cell *b;
    int fnidx;
    evals_done = evals_done + 1;
    if (e == nil) return nil;
    if (e->tag == 1) return e;
    if (e->tag == 2) {
        if (symis(e, "nil")) return nil;
        if (symis(e, "t")) return tsym;
        return xlobgetvalue(e->car, env);
    }
    head = livecar(e);
    args = livecdr(e);
    if (head->tag == 2) {
        if (symis(head, "quote")) return livecar(args);
        if (symis(head, "if")) {
            a = eval(livecar(args), env);
            if (a != nil) return eval(livecar(livecdr(args)), env);
            return eval(livecar(livecdr(livecdr(args))), env);
        }
        if (symis(head, "defun")) {
            fnname[nfns] = livecar(args)->car;
            fnparams[nfns] = livecar(livecdr(args));
            fnbody[nfns] = livecar(livecdr(livecdr(args)));
            nfns = nfns + 1;
            return tsym;
        }
        if (symis(head, "+")) {
            args = xlevlist(args, env);
            return mknum(numval(livecar(args)) +
                         numval(livecar(livecdr(args))));
        }
        if (symis(head, "-")) {
            args = xlevlist(args, env);
            return mknum(numval(livecar(args)) -
                         numval(livecar(livecdr(args))));
        }
        if (symis(head, "*")) {
            args = xlevlist(args, env);
            return mknum(numval(livecar(args)) *
                         numval(livecar(livecdr(args))));
        }
        if (symis(head, "<")) {
            args = xlevlist(args, env);
            if (numval(livecar(args)) <
                numval(livecar(livecdr(args)))) return tsym;
            return nil;
        }
        if (symis(head, "=")) {
            args = xlevlist(args, env);
            if (numval(livecar(args)) ==
                numval(livecar(livecdr(args)))) return tsym;
            return nil;
        }
        if (symis(head, "car")) {
            args = xlevlist(args, env);
            return livecar(livecar(args));
        }
        if (symis(head, "cdr")) {
            args = xlevlist(args, env);
            return livecdr(livecar(args));
        }
        if (symis(head, "cons")) {
            args = xlevlist(args, env);
            return cons(livecar(args), livecar(livecdr(args)));
        }
        if (symis(head, "null")) {
            args = xlevlist(args, env);
            if (livecar(args) == nil) return tsym;
            return nil;
        }
        fnidx = findfn(head->car);
        if (fnidx >= 0) {
            args = xlevlist(args, env);
            return apply(fnidx, args);
        }
    }
    return nil;
}

int listsum(struct cell *l) {
    int s;
    s = 0;
    while (l != nil) {
        s = s * 31 + numval(livecar(l));
        l = livecdr(l);
    }
    return s;
}

int main() {
    struct cell *e;
    struct cell *v;
    nil = (struct cell *)0;
    /* nil must be a distinguishable non-null sentinel. */
    nil = newcell(2);
    nil->car = intern("nil");
    tsym = newcell(2);
    tsym->car = intern("t");
    e = readexpr();
    while (e != nil) {
        v = eval(e, nil);
        if (v != nil && v->tag == 1)
            out_csum = out_csum * 31 + v->car;
        if (v != nil && v->tag == 0)
            out_csum = out_csum * 31 + listsum(v);
        e = readexpr();
    }
    puts("li: evals=");
    putint(evals_done);
    puts(" cells=");
    putint(cells_made);
    puts(" csum=");
    puthex(out_csum);
    putchar('\n');
    flushout();
    return 0;
}
)MC";
}

std::string
liInput()
{
    std::string s;
    s += "(defun fib (n) (if (< n 2) n "
         "(+ (fib (- n 1)) (fib (- n 2)))))\n";
    s += "(defun app (a b) (if (null a) b "
         "(cons (car a) (app (cdr a) b))))\n";
    s += "(defun nrev (l) (if (null l) nil "
         "(app (nrev (cdr l)) (cons (car l) nil))))\n";
    s += "(defun iota (n) (if (= n 0) nil (cons n (iota (- n 1)))))\n";
    s += "(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))\n";
    s += "(defun bench (k) (if (= k 0) 0 "
         "(+ (len (nrev (iota 24))) (bench (- k 1)))))\n";
    s += "(fib 14)\n";
    s += "(bench 40)\n";
    s += "(nrev (iota 30))\n";
    s += "(fib 12)\n";
    return s;
}

std::string
liAltInput()
{
    // Different lisp programs: list summation and deeper fib.
    std::string s;
    s += "(defun fib (n) (if (< n 2) n "
         "(+ (fib (- n 1)) (fib (- n 2)))))\n";
    s += "(defun iota (n) (if (= n 0) nil (cons n (iota (- n 1)))))\n";
    s += "(defun suml (l) (if (null l) 0 "
         "(+ (car l) (suml (cdr l)))))\n";
    s += "(defun spin (k) (if (= k 0) 0 "
         "(+ (suml (iota 40)) (spin (- k 1)))))\n";
    s += "(spin 120)\n";
    s += "(fib 13)\n";
    s += "(suml (iota 50))\n";
    return s;
}

} // namespace irep::workloads
