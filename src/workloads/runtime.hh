/**
 * @file
 * The MiniC runtime library linked into every workload: buffered I/O
 * over the read/write syscalls, a bump allocator over sbrk, string
 * and formatting helpers, and a deterministic PRNG. Written in MiniC
 * so that library code executes inside the simulator exactly like the
 * libc routines (memcpy, malloc, ...) that show up in the paper's
 * per-function tables.
 */

#ifndef IREP_WORKLOADS_RUNTIME_HH
#define IREP_WORKLOADS_RUNTIME_HH

#include <string>

namespace irep::workloads
{

/** MiniC source of the runtime library. Prepend to workload source. */
const std::string &runtimeSource();

} // namespace irep::workloads

#endif // IREP_WORKLOADS_RUNTIME_HH
