#include "workloads/runtime.hh"

namespace irep::workloads
{

namespace
{

const char *const runtime_mc = R"MC(
/* ================= irep MiniC runtime library ==================== */

/* ---- buffered input over the read syscall ---- */
char __ibuf[512];
int __ipos;
int __ilen;
int __ieof;

int getchar() {
    if (__ipos >= __ilen) {
        if (__ieof) return -1;
        __ilen = __read(__ibuf, 512);
        __ipos = 0;
        if (__ilen == 0) { __ieof = 1; return -1; }
    }
    __ipos = __ipos + 1;
    return __ibuf[__ipos - 1];
}

/* ---- buffered output over the write syscall ---- */
char __obuf[512];
int __opos;

void flushout() {
    if (__opos > 0) { __write(__obuf, __opos); __opos = 0; }
}

void putchar(int c) {
    __obuf[__opos] = (char)c;
    __opos = __opos + 1;
    if (__opos >= 512) flushout();
}

void puts(char *s) {
    while (*s) { putchar(*s); s = s + 1; }
}

/* Print a signed integer in decimal. */
void putint(int v) {
    char tmp[12];
    int i;
    if (v == 0) { putchar('0'); return; }
    if (v < 0) { putchar('-'); v = -v; }
    i = 0;
    while (v > 0) { tmp[i] = (char)('0' + v % 10); v = v / 10; i = i + 1; }
    while (i > 0) { i = i - 1; putchar(tmp[i]); }
}

/* Print an unsigned value in hex (for checksums). */
void puthex(int v) {
    char digits[17];
    int i;
    int d;
    strcpy(digits, "0123456789abcdef");
    i = 28;
    while (i >= 0) {
        d = (v >> i) & 15;
        putchar(digits[d]);
        i = i - 4;
    }
}

/* ---- heap: sbrk-backed allocator with size-class free lists ----
 * Blocks carry an 8-byte header holding the payload size; freed
 * blocks up to 128 bytes are recycled through per-class free lists
 * (the link reuses the header word). Larger freed blocks are leaked,
 * like many simple allocators of the era. */
int __heap_ptr;
int __heap_end;
int __freehead[16];     /* class k holds payloads of 8*(k+1) bytes */

char *malloc(int n) {
    int p;
    int k;
    int total;
    n = (n + 7) & ~7;
    if (n == 0) n = 8;
    if (n <= 128) {
        k = n / 8 - 1;
        n = (k + 1) * 8;        /* round payload up to the class */
        p = __freehead[k];
        if (p) {
            __freehead[k] = *(int *)p;
            *(int *)p = n;      /* restore the size header */
            return (char *)(p + 8);
        }
    }
    total = n + 8;
    if (__heap_ptr + total > __heap_end) {
        int chunk;
        chunk = 65536;
        if (total > chunk) chunk = (total + 65535) & ~65535;
        if (__heap_ptr == 0) {
            __heap_ptr = __sbrk(chunk);
            __heap_end = __heap_ptr + chunk;
        } else {
            __sbrk(chunk);
            __heap_end = __heap_end + chunk;
        }
    }
    p = __heap_ptr;
    __heap_ptr = __heap_ptr + total;
    *(int *)p = n;
    return (char *)(p + 8);
}

void free(char *q) {
    int p;
    int n;
    int k;
    if (q == 0) return;
    p = (int)q - 8;
    n = *(int *)p;
    if (n > 128) return;        /* large blocks are not recycled */
    k = n / 8 - 1;
    *(int *)p = __freehead[k];
    __freehead[k] = p;
}

/* ---- strings ---- */
int strlen(char *s) {
    int n;
    n = 0;
    while (s[n]) n = n + 1;
    return n;
}

int strcmp(char *a, char *b) {
    while (*a && *a == *b) { a = a + 1; b = b + 1; }
    return (int)*a - (int)*b;
}

int strncmp(char *a, char *b, int n) {
    while (n > 0 && *a && *a == *b) { a = a + 1; b = b + 1; n = n - 1; }
    if (n == 0) return 0;
    return (int)*a - (int)*b;
}

char *strcpy(char *dst, char *src) {
    char *d;
    d = dst;
    while (*src) { *d = *src; d = d + 1; src = src + 1; }
    *d = (char)0;
    return dst;
}

void memset(char *p, int v, int n) {
    while (n > 0) { *p = (char)v; p = p + 1; n = n - 1; }
}

void memcpy(char *dst, char *src, int n) {
    while (n > 0) { *dst = *src; dst = dst + 1; src = src + 1; n = n - 1; }
}

/* ---- misc ---- */
int __seed;

void srand(int s) { __seed = s; }

int rand() {
    __seed = __seed * 1103515245 + 12345;
    return (__seed >> 16) & 32767;
}

int abs(int v) {
    if (v < 0) return -v;
    return v;
}

int atoi(char *s) {
    int v;
    int neg;
    v = 0;
    neg = 0;
    while (*s == ' ') s = s + 1;
    if (*s == '-') { neg = 1; s = s + 1; }
    while (*s >= '0' && *s <= '9') {
        v = v * 10 + (*s - '0');
        s = s + 1;
    }
    if (neg) return -v;
    return v;
}

/* Read one line (up to n-1 chars) into buf; returns length or -1 at
 * end of input. The newline is consumed but not stored. */
int readline(char *buf, int n) {
    int c;
    int i;
    i = 0;
    c = getchar();
    if (c < 0) return -1;
    while (c >= 0 && c != '\n') {
        if (i < n - 1) { buf[i] = (char)c; i = i + 1; }
        c = getchar();
    }
    buf[i] = (char)0;
    return i;
}
/* ================ end of runtime library ========================= */
)MC";

const std::string runtimeStr(runtime_mc);

} // namespace

const std::string &
runtimeSource()
{
    return runtimeStr;
}

} // namespace irep::workloads
