/**
 * @file
 * The replay side of the instrumentation interface: a ReplaySource
 * produces the retired-instruction stream an already-executed run
 * generated — from a trace file, a buffer, anywhere — and dispatches
 * it into an Observer, so analyses run identically whether records
 * come from live simulation or from storage.
 */

#ifndef IREP_SIM_REPLAY_HH
#define IREP_SIM_REPLAY_HH

#include <cstdint>

#include "sim/observer.hh"

namespace irep::sim
{

/** A source of previously recorded InstrRecord/SyscallRecord streams. */
class ReplaySource
{
  public:
    virtual ~ReplaySource() = default;

    /**
     * Dispatch up to @p max_instructions retired-instruction records
     * into @p observer, preserving the recorded syscall interleaving
     * (syscall records do not count toward the limit, exactly as
     * syscalls retire as part of their SYSCALL instruction live).
     *
     * @return The number of instruction records dispatched (less than
     *         @p max_instructions only at end of stream).
     */
    virtual uint64_t replay(Observer &observer,
                            uint64_t max_instructions) = 0;

    /** True once the stream is exhausted. */
    virtual bool atEnd() const = 0;
};

} // namespace irep::sim

#endif // IREP_SIM_REPLAY_HH
