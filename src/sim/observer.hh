/**
 * @file
 * The instrumentation interface of the functional simulator. Analyses
 * attach Observer implementations to a Machine and receive one
 * InstrRecord per retired instruction plus syscall notifications —
 * the same visibility the paper's SimpleScalar-based tooling had.
 */

#ifndef IREP_SIM_OBSERVER_HH
#define IREP_SIM_OBSERVER_HH

#include <cstdint>

#include "isa/instruction.hh"

namespace irep::sim
{

/**
 * Everything an analysis can see about one retired dynamic
 * instruction.
 *
 * `result` packs the architectural outcome: the destination register
 * value for register-writing instructions, HI:LO for multiply/divide,
 * the stored value for stores, taken/not-taken for branches, and the
 * target for jumps.
 */
struct InstrRecord
{
    uint64_t seq = 0;           //!< dynamic instruction number (from 0)
    uint32_t pc = 0;
    uint32_t staticIndex = 0;   //!< (pc - textBase) / 4, dense id
    const isa::Instruction *inst = nullptr;

    uint8_t numSrcRegs = 0;
    uint32_t srcVal[2] = {0, 0};    //!< source register values

    bool isMemAccess = false;
    uint32_t memAddr = 0;       //!< effective address for loads/stores

    bool writesReg = false;
    uint8_t destReg = 0;

    uint64_t result = 0;        //!< see struct comment
    uint32_t nextPc = 0;
};

/** Syscall numbers of the simulated OS interface. */
enum class Syscall : uint32_t
{
    Exit = 1,   //!< a0 = exit code
    Read = 2,   //!< a0 = buffer, a1 = length; v0 = bytes read
    Write = 3,  //!< a0 = buffer, a1 = length; v0 = bytes written
    Sbrk = 4,   //!< a0 = increment; v0 = previous break
};

/** What an analysis can see about one executed syscall. */
struct SyscallRecord
{
    Syscall num;
    uint32_t arg0 = 0;
    uint32_t arg1 = 0;
    uint32_t result = 0;
    /** For Read: the buffer region that received external bytes. */
    uint32_t writtenAddr = 0;
    uint32_t writtenLen = 0;
};

/** Base class for analyses observing the instruction stream. */
class Observer
{
  public:
    virtual ~Observer() = default;

    /** Called after each instruction retires. */
    virtual void onRetire(const InstrRecord &record) = 0;

    /** Called after each syscall completes (before its SYSCALL
     *  instruction's onRetire). */
    virtual void onSyscall(const SyscallRecord &record) { (void)record; }
};

} // namespace irep::sim

#endif // IREP_SIM_OBSERVER_HH
