/**
 * @file
 * The basic-block translation cache — the simulator's second
 * execution backend (`--exec bbcache` / `IREP_EXEC=bbcache`).
 *
 * On first execution of a block the cache translates it once into
 * pre-decoded micro-ops (sim/decode.hh) and thereafter executes it
 * through a computed-goto threaded dispatch loop: no per-instruction
 * fetch, no opcode switch, no per-iteration bounds or budget checks —
 * those hoist to block granularity. Taken/fall-through edges chain
 * directly to the successor block, so steady-state execution never
 * touches the lookup table for static control flow.
 *
 * Honesty machinery:
 *  - Blocks are keyed by start pc (dense, one slot per static
 *    instruction) and snapshot the per-page store generation that
 *    `sim::Memory` keeps for the text segment; any store into a
 *    translated page (self-modifying code, a Read syscall landing in
 *    text) makes the snapshot stale and the block retranslates on
 *    next entry.
 *  - Translated blocks are bounded by a clock sweep: blocks evicted
 *    under pressure drop their micro-ops but keep their shell, so
 *    chain pointers never dangle — entry revalidates via the
 *    emptiness + generation check either way.
 *  - The interpreter stays normative: observer-attached execution
 *    runs each block's instructions through the interpreter body
 *    (`Machine::exec1<true>`), so retire records are bit-for-bit
 *    identical; instruction budgets that end inside a block fall back
 *    to single-stepping, so `run(n)` semantics match exactly.
 *
 * Profiling: `translate`/`execute` spans (category `bbcache`) and the
 * `bbcache/{blocks,evictions,invalidations}` counters keep the
 * profiler's skip/window attribution honest about translation cost.
 */

#ifndef IREP_SIM_BBCACHE_HH
#define IREP_SIM_BBCACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/decode.hh"

namespace irep::sim
{

class Machine;

/** Per-machine translation cache and block-threaded executor. */
class BlockCache
{
  public:
    /** Default bound on simultaneously translated blocks. */
    static constexpr size_t defaultCapacity = 4096;

    /** Translated blocks never exceed this many instructions. */
    static constexpr uint32_t maxBlockInstrs = 64;

    /** Attach to @p machine and start watching its text segment for
     *  stores (the invalidation channel). */
    explicit BlockCache(Machine &machine);

    /**
     * Execute up to @p max_instructions through the cache, exactly
     * like Machine::runLoop — same pc/instret/halt semantics, same
     * fatal diagnostics. The Observed instantiation dispatches
     * bit-identical retire records via the interpreter body.
     * @return the number of instructions executed.
     */
    template <bool Observed>
    uint64_t run(uint64_t max_instructions);

    /** Cap the number of translated blocks (testing eviction). */
    void setCapacity(size_t blocks);

    // Introspection for tests and assertions.
    uint64_t blocksTranslated() const { return blocksTranslated_; }
    uint64_t invalidations() const { return invalidations_; }
    uint64_t evictions() const { return evictions_; }
    size_t liveBlocks() const { return liveBlocks_; }

  private:
    /** One cached block. An empty `ops` means not (or no longer)
     *  translated; the shell survives eviction so chain pointers
     *  stay valid. */
    struct Block
    {
        std::vector<MicroOp> ops;
        uint32_t start = 0;         //!< static index of the first instr
        uint32_t instrCount = 0;    //!< architectural instrs covered
        uint32_t gen = 0;           //!< page-generation snapshot
        Block *chainTaken = nullptr;
        Block *chainFall = nullptr;
        bool referenced = false;    //!< clock bit
    };

    Block &blockFor(uint32_t index);
    void translate(Block &blk);
    uint32_t genOf(const Block &blk) const;

    /** Evict translated blocks until the capacity bound holds,
     *  never touching @p keep (the block about to execute). */
    void evictUntilBounded(const Block *keep);

    /**
     * The unobserved run loop: lookup, chaining, revalidation, budget
     * accounting, and the threaded micro-op dispatch all live in one
     * function, so a chained block transition never leaves it — no
     * call/return or out-param handshake per block. Same
     * pc/instret/halt/fault semantics as Machine::runLoop.
     */
    uint64_t runFast(uint64_t max_instructions);

    /** Execute @p blk through the interpreter body with observers. */
    uint32_t executeObserved(Block &blk, uint32_t pc);

    Machine &m_;
    std::vector<std::unique_ptr<Block>> blocks_;    //!< by static index
    size_t capacity_ = defaultCapacity;
    size_t liveBlocks_ = 0;
    size_t clockHand_ = 0;
    uint64_t blocksTranslated_ = 0;
    uint64_t invalidations_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace irep::sim

#endif // IREP_SIM_BBCACHE_HH
