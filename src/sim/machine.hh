/**
 * @file
 * The functional MIPS-I simulator. Executes an assembled Program
 * in-order with full operand visibility, dispatching an InstrRecord to
 * attached observers after every retired instruction.
 *
 * run() is a fused loop with two instantiations of one instruction
 * body: the instrumented path builds the InstrRecord and dispatches
 * observers exactly like step(); the fast path — taken whenever no
 * observer is attached — skips record construction and dispatch
 * entirely and hoists the pc alignment check out of the
 * per-instruction body.
 */

#ifndef IREP_SIM_MACHINE_HH
#define IREP_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asm/program.hh"
#include "isa/instruction.hh"
#include "sim/memory.hh"
#include "sim/observer.hh"

namespace irep::sim
{

class BlockCache;

/**
 * How Machine::run() executes instructions. The interpreter is the
 * normative reference; the basic-block translation cache
 * (sim/bbcache.hh) is the fast backend and must be observationally
 * identical — registers, memory, retire records, diagnostics.
 */
enum class ExecBackend : uint8_t
{
    Interp,     //!< fused interpreter loop (reference semantics)
    BBCache,    //!< pre-decoded superblock execution
};

/**
 * Parse an execution-backend name (`interp` / `bbcache`). @p what
 * names the flag or variable for the error message; anything else is
 * fatal, never silently defaulted.
 */
ExecBackend parseExecBackend(const std::string &what,
                             const std::string &text);

/** The IREP_EXEC default: Interp when unset or empty, otherwise
 *  strictly parsed. */
ExecBackend envExecBackend();

/** One simulated machine executing one program. */
class Machine
{
  public:
    /**
     * Build a machine and load @p program: text is predecoded, data is
     * copied to memory, $sp/$gp are initialized, the heap break is set
     * past the data section. The data segment and the top of the stack
     * are pre-pinned so steady-state accesses never allocate.
     */
    explicit Machine(const assem::Program &program);

    ~Machine();

    /** Select the execution backend for subsequent run() calls. The
     *  default comes from IREP_EXEC (Interp when unset). */
    void setExecBackend(ExecBackend backend) { backend_ = backend; }

    ExecBackend execBackend() const { return backend_; }

    /** The machine's block cache, created on first use — exposed so
     *  tests can bound its capacity and read its counters. */
    BlockCache &blockCache();

    /** Provide the byte stream returned by the Read syscall. */
    void setInput(std::string bytes);

    /** Bytes emitted through the Write syscall so far. */
    const std::string &output() const { return output_; }

    /** Attach an observer (not owned; must outlive the machine or
     *  detach with removeObserver() first). */
    void addObserver(Observer *observer);

    /** Detach a previously attached observer (no-op when absent). */
    void removeObserver(Observer *observer);

    /**
     * Execute up to @p max_instructions more instructions.
     * @return the number actually executed (less when the program
     *         exits).
     */
    uint64_t run(uint64_t max_instructions);

    /** Execute exactly one instruction (the program must not have
     *  halted). */
    void step();

    bool halted() const { return halted_; }
    int exitCode() const { return exitCode_; }
    uint64_t instret() const { return instret_; }

    uint32_t pc() const { return pc_; }
    uint32_t reg(unsigned index) const { return regs_[index]; }
    void setReg(unsigned index, uint32_t value);

    uint32_t hi() const { return hi_; }
    uint32_t lo() const { return lo_; }

    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    const assem::Program &program() const { return program_; }

    /** Dense static-instruction count (text words). */
    uint32_t numStaticInstructions() const
    {
        return uint32_t(decoded_.size());
    }

  private:
    /**
     * Execute one decoded instruction at @p pc and return the next pc.
     * The Observed instantiation fills an InstrRecord, syncs pc_, and
     * dispatches observers; the fast instantiation compiles the record
     * bookkeeping out and leaves pc_ to the caller. The caller has
     * already checked pc bounds.
     */
    template <bool Observed>
    uint32_t exec1(const isa::Instruction &inst, uint32_t index,
                   uint32_t pc);

    /** The fused run loop: per-iteration bounds/validity checks, the
     *  alignment check hoisted to loop entry. */
    template <bool Observed>
    uint64_t runLoop(uint64_t max_instructions);

    void dispatchRetire(const InstrRecord &record);

    /** Execute a syscall. @p record is filled with the syscall's
     *  repetition-relevant inputs/outputs when non-null (observed
     *  execution) and ignored when null (fast path). */
    void doSyscall(InstrRecord *record);

    /** The block cache reads machine state directly and writes it
     *  through the same invariants as the interpreter body. */
    friend class BlockCache;

    const assem::Program &program_;
    std::vector<isa::Instruction> decoded_;
    /** Destination register per static instruction (-1 = none),
     *  precomputed at decode so the retire loop never consults the op
     *  table. */
    std::vector<int8_t> destRegs_;
    Memory mem_;

    /** Slot 32 is the $zero write sink: the block cache remaps $zero
     *  destinations there at translate time, so its hot path writes
     *  unconditionally while reads of slot 0 always see zero. */
    uint32_t regs_[33] = {};
    uint32_t hi_ = 0;
    uint32_t lo_ = 0;
    uint32_t pc_;
    uint32_t brk_;          //!< heap break for Sbrk
    uint32_t heapStart_;    //!< lower bound for the break

    bool halted_ = false;
    int exitCode_ = 0;
    uint64_t instret_ = 0;

    std::string input_;
    size_t inputPos_ = 0;
    std::string output_;

    std::vector<Observer *> observers_;

    ExecBackend backend_;
    std::unique_ptr<BlockCache> bbcache_;   //!< lazily created
};

/** Outcome of one run-to-completion execution (runToHalt). */
struct RunResult
{
    bool halted = false;        //!< false = instruction budget hit
    int exitCode = 0;
    uint64_t instructions = 0;
    std::string output;         //!< bytes written through Write
};

/**
 * Load @p program into a fresh machine, feed it @p input, and run it
 * until it exits or @p max_instructions retire. Convenience wrapper
 * for programmatic batch execution (e.g. the differential fuzzer).
 * @p backend overrides the machine's IREP_EXEC-resolved default when
 * set.
 */
RunResult runToHalt(const assem::Program &program,
                    const std::string &input,
                    uint64_t max_instructions = 100'000'000,
                    std::optional<ExecBackend> backend = {});

} // namespace irep::sim

#endif // IREP_SIM_MACHINE_HH
