#include "sim/decode.hh"

#include "asm/program.hh"
#include "isa/registers.hh"
#include "support/logging.hh"

namespace irep::sim
{

using isa::Instruction;
using isa::Op;

namespace
{

/** Destination-slot remap: writes to $zero land in the sink. */
uint8_t
sink(uint8_t reg)
{
    return reg == 0 ? regZeroSink : reg;
}

uint32_t
pcOf(uint32_t index)
{
    return assem::Layout::textBase + index * 4;
}

/** Absolute target of a conditional branch at static @p index. */
uint32_t
branchTarget(uint32_t index, const Instruction &inst)
{
    return pcOf(index) + 4 + (uint32_t(inst.imm) << 2);
}

/** Absolute target of a j/jal at static @p index. */
uint32_t
jumpTarget(uint32_t index, const Instruction &inst)
{
    return ((pcOf(index) + 4) & 0xf0000000u) | (inst.target << 2);
}

/** Map a branch op to its (unfused) terminator kind. */
UopKind
branchKind(Op op)
{
    switch (op) {
      case Op::BEQ: return UopKind::BEQ;
      case Op::BNE: return UopKind::BNE;
      case Op::BLEZ: return UopKind::BLEZ;
      case Op::BGTZ: return UopKind::BGTZ;
      case Op::BLTZ: return UopKind::BLTZ;
      case Op::BGEZ: return UopKind::BGEZ;
      default: panic("branchKind on non-branch");
    }
}

/**
 * Try to fuse the pair (first at @p index, second right after) into
 * one micro-op. Returns true and fills @p u when the fusion is
 * architecturally equivalent to executing the pair in sequence.
 */
bool
fusePair(const Instruction &first, const Instruction &second,
         uint32_t index, MicroOp &u)
{
    // lui rd + ori/addiu rd, rd, lo  ->  rd = full 32-bit constant.
    // Requires the same destination (otherwise the lui value stays
    // architecturally visible) and a real register (lui $zero keeps
    // the pair's discard semantics only when executed separately).
    if (first.op == Op::LUI && first.rt != 0 &&
        (second.op == Op::ORI || second.op == Op::ADDIU ||
         second.op == Op::ADDI) &&
        second.rs == first.rt && second.rt == first.rt) {
        const uint32_t hi = uint32_t(first.imm) << 16;
        u.kind = UopKind::LI32;
        u.rd = first.rt;
        u.imm = second.op == Op::ORI
            ? int32_t(hi | uint32_t(second.imm))
            : int32_t(hi + uint32_t(second.imm));
        return true;
    }

    // slti/sltiu rd + beq/bne rd, $zero — the immediate-compare
    // sibling of the slt fusion below. The branch targets occupy
    // imm and aux, so the 16-bit compare immediate rides in rt|rd2.
    if ((first.op == Op::SLTI || first.op == Op::SLTIU) &&
        first.rt != 0 &&
        (second.op == Op::BEQ || second.op == Op::BNE) &&
        second.rs == first.rt && second.rt == 0) {
        const bool is_slti = first.op == Op::SLTI;
        const bool is_bne = second.op == Op::BNE;
        u.kind = is_slti
            ? (is_bne ? UopKind::SLTI_BNE : UopKind::SLTI_BEQ)
            : (is_bne ? UopKind::SLTIU_BNE : UopKind::SLTIU_BEQ);
        u.rd = first.rt;
        u.rs = first.rs;
        u.rt = uint8_t(uint16_t(first.imm));
        u.rd2 = uint8_t(uint16_t(first.imm) >> 8);
        u.imm = int32_t(branchTarget(index + 1, second));
        u.aux = pcOf(index + 2);
        return true;
    }

    // slt/sltu rd + beq/bne rd, $zero  ->  compare-and-branch that
    // still writes the condition register. rd must be a real register
    // (a $zero destination would make the branch read a constant 0,
    // not the comparison).
    if ((first.op == Op::SLT || first.op == Op::SLTU) &&
        first.rd != 0 &&
        (second.op == Op::BEQ || second.op == Op::BNE) &&
        second.rs == first.rd && second.rt == 0) {
        const bool is_slt = first.op == Op::SLT;
        const bool is_bne = second.op == Op::BNE;
        u.kind = is_slt
            ? (is_bne ? UopKind::SLT_BNE : UopKind::SLT_BEQ)
            : (is_bne ? UopKind::SLTU_BNE : UopKind::SLTU_BEQ);
        u.rd = first.rd;
        u.rs = first.rs;
        u.rt = first.rt;
        u.imm = int32_t(branchTarget(index + 1, second));
        u.aux = pcOf(index + 2);
        return true;
    }

    // lw rd + alu consuming rd  ->  load-use pair. The loaded
    // register must be real (lw $zero discards, so the consumer
    // would read 0, not the loaded value).
    if (first.op == Op::LW && first.rt != 0) {
        if ((second.op == Op::ADDIU || second.op == Op::ADDI) &&
            second.rs == first.rt) {
            u.kind = UopKind::LW_ADDIU;
            u.rd = first.rt;
            u.rs = first.rs;
            u.imm = first.imm;
            u.rd2 = sink(second.rt);
            u.aux = uint32_t(second.imm);
            return true;
        }
        if (second.op == Op::ADDU &&
            (second.rs == first.rt || second.rt == first.rt)) {
            u.kind = UopKind::LW_ADDU;
            u.rd = first.rt;
            u.rs = first.rs;
            u.imm = first.imm;
            u.rd2 = sink(second.rd);
            // The other addu operand, read *after* the load writes
            // its register, so aliasing the loaded register is
            // handled by plain sequential semantics.
            u.rt = second.rs == first.rt ? second.rt : second.rs;
            return true;
        }
    }

    // Back-to-back word accesses. Either access can fault, so the
    // executor raises the second access's faults with a +1 bias on
    // index/retiredBefore; the second base/offset ride in aux.
    if (first.op == Op::LW && second.op == Op::LW) {
        u.kind = UopKind::LW_LW;
        u.rd = sink(first.rt);
        u.rs = first.rs;
        u.imm = first.imm;
        u.rd2 = sink(second.rt);
        u.aux = uint32_t(second.rs) |
                uint32_t(uint16_t(second.imm)) << 16;
        return true;
    }
    if (first.op == Op::SW && second.op == Op::SW) {
        u.kind = UopKind::SW_SW;
        u.rs = first.rs;
        u.rt = first.rt;
        u.imm = first.imm;
        u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8 |
                uint32_t(uint16_t(second.imm)) << 16;
        return true;
    }

    // Generic ALU pairs: the first op's destination is written, then
    // the second op's sources are read back from the register file
    // (packed into aux bytes), so any aliasing — including a $zero
    // first destination — resolves by sequential semantics with no
    // operand constraints at all.
    const bool first_addu = first.op == Op::ADD || first.op == Op::ADDU;
    if (first_addu) {
        u.rd = sink(first.rd);
        u.rs = first.rs;
        u.rt = first.rt;
        if (second.op == Op::ADD || second.op == Op::ADDU) {
            u.kind = UopKind::ADDU_ADDU;
            u.rd2 = sink(second.rd);
            u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8;
            return true;
        }
        if (second.op == Op::SLL) {
            u.kind = UopKind::ADDU_SLL;
            u.rd2 = sink(second.rd);
            u.aux = uint32_t(second.rt) | uint32_t(second.shamt) << 8;
            return true;
        }
        if (second.op == Op::ADDIU || second.op == Op::ADDI) {
            u.kind = UopKind::ADDU_ADDIU;
            u.rd2 = sink(second.rt);
            u.aux = second.rs;
            u.imm = second.imm;
            return true;
        }
        if (second.op == Op::SLTI) {
            u.kind = UopKind::ADDU_SLTI;
            u.rd2 = sink(second.rt);
            u.aux = second.rs;
            u.imm = second.imm;
            return true;
        }
        if (second.op == Op::LW) {
            u.kind = UopKind::ADDU_LW;
            u.rd2 = sink(second.rt);
            u.aux = second.rs;
            u.imm = second.imm;
            return true;
        }
        if (second.op == Op::SW) {
            u.kind = UopKind::ADDU_SW;
            u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8;
            u.imm = second.imm;
            return true;
        }
        if (second.op == Op::LBU) {
            u.kind = UopKind::ADDU_LBU;
            u.rd2 = sink(second.rt);
            u.aux = second.rs;
            u.imm = second.imm;
            return true;
        }
        if (second.op == Op::BEQ || second.op == Op::BNE) {
            u.kind = second.op == Op::BEQ ? UopKind::ADDU_BEQ
                                          : UopKind::ADDU_BNE;
            u.shamt = second.rs;
            u.rd2 = second.rt;  // branch source, raw index
            u.imm = int32_t(branchTarget(index + 1, second));
            u.aux = pcOf(index + 2);
            return true;
        }
    }
    if (first.op == Op::SLL) {
        if (second.op == Op::ADD || second.op == Op::ADDU) {
            u.kind = UopKind::SLL_ADDU;
            u.rd = sink(first.rd);
            u.rt = first.rt;
            u.shamt = first.shamt;
            u.rd2 = sink(second.rd);
            u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8;
            return true;
        }
        if (second.op == Op::LW) {
            u.kind = UopKind::SLL_LW;
            u.rd = sink(first.rd);
            u.rt = first.rt;
            u.shamt = first.shamt;
            u.rd2 = sink(second.rt);
            u.aux = second.rs;
            u.imm = second.imm;
            return true;
        }
    }
    if (first.op == Op::SUB || first.op == Op::SUBU) {
        u.rd = sink(first.rd);
        u.rs = first.rs;
        u.rt = first.rt;
        if (second.op == Op::ADD || second.op == Op::ADDU) {
            u.kind = UopKind::SUBU_ADDU;
            u.rd2 = sink(second.rd);
            u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8;
            return true;
        }
        if (second.op == Op::SLTIU) {
            u.kind = UopKind::SUBU_SLTIU;
            u.rd2 = sink(second.rt);
            u.aux = second.rs;
            u.imm = second.imm;
            return true;
        }
    }
    if (first.op == Op::ADDIU || first.op == Op::ADDI) {
        if (second.op == Op::SLT) {
            u.kind = UopKind::ADDIU_SLT;
            u.rd = sink(first.rt);
            u.rs = first.rs;
            u.imm = first.imm;
            u.rd2 = sink(second.rd);
            u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8;
            return true;
        }
        if (second.op == Op::SW) {
            u.kind = UopKind::ADDIU_SW;
            u.rd = sink(first.rt);
            u.rs = first.rs;
            u.imm = first.imm;
            u.aux = uint32_t(second.rs) | uint32_t(second.rt) << 8 |
                    uint32_t(uint16_t(second.imm)) << 16;
            return true;
        }
        if (second.op == Op::JR) {
            u.kind = UopKind::ADDIU_JR;
            u.rd = sink(first.rt);
            u.rs = first.rs;
            u.imm = first.imm;
            u.rt = second.rs;
            return true;
        }
    }
    if (first.op == Op::SLT && second.op == Op::XORI) {
        u.kind = UopKind::SLT_XORI;
        u.rd = sink(first.rd);
        u.rs = first.rs;
        u.rt = first.rt;
        u.rd2 = sink(second.rt);
        u.aux = second.rs;
        u.imm = second.imm;    // already zero-extended by the decoder
        return true;
    }
    // xori rd, rs, k + beq/bne: branch sources read after the write.
    // k must fit the shamt byte (imm and aux carry branch targets).
    if (first.op == Op::XORI && uint32_t(first.imm) <= 0xff &&
        (second.op == Op::BEQ || second.op == Op::BNE)) {
        u.kind = second.op == Op::BEQ ? UopKind::XORI_BEQ
                                      : UopKind::XORI_BNE;
        u.rd = sink(first.rt);
        u.rs = first.rs;
        u.shamt = uint8_t(first.imm);
        u.rt = second.rs;
        u.rd2 = second.rt;  // branch source, raw index
        u.imm = int32_t(branchTarget(index + 1, second));
        u.aux = pcOf(index + 2);
        return true;
    }

    return false;
}

/**
 * Try to absorb a third instruction into an already-fused pair
 * micro-op @p u (whose first instruction sits at @p index). Fusions
 * containing a faultable memory access move index/retiredBefore onto
 * the memory instruction — every architectural effect preceding it is
 * complete before the access executes, so fault state stays exact.
 */
bool
fuseTriple(MicroOp &u, const Instruction &third, uint32_t index)
{
    // li rd, imm32 + lw/sw through the constant address.
    if (u.kind == UopKind::LI32 && third.op == Op::LW &&
        third.rs == u.rd) {
        u.kind = UopKind::LI32_LW;
        u.rd2 = sink(third.rt);
        u.aux = uint32_t(third.imm);
        u.index = index + 2;
        u.retiredBefore += 2;
        return true;
    }
    if (u.kind == UopKind::LI32 && third.op == Op::SW &&
        third.rs == u.rd) {
        u.kind = UopKind::LI32_SW;
        u.rt = third.rt;
        u.aux = uint32_t(third.imm);
        u.index = index + 2;
        u.retiredBefore += 2;
        return true;
    }
    // sll + addu + lw: the array-read idiom. The lw destination slot
    // rides in aux byte 2; its base register (usually the addu sum)
    // is read after both writes, so aliasing is sequential.
    if (u.kind == UopKind::SLL_ADDU && third.op == Op::LW) {
        u.kind = UopKind::SLL_ADDU_LW;
        u.rs = third.rs;
        u.imm = third.imm;
        u.aux |= uint32_t(sink(third.rt)) << 16;
        u.index = index + 2;
        u.retiredBefore += 2;
        return true;
    }
    // slt c,a,b; xori c,c,1; beq/bne c,$zero — the compiler's
    // "branch if a >= b" idiom: branch directly on the comparison,
    // still writing the inverted condition register.
    if (u.kind == UopKind::SLT_XORI &&
        (third.op == Op::BEQ || third.op == Op::BNE) &&
        u.rd != regZeroSink && u.rd2 == u.rd &&
        (u.aux & 0xff) == u.rd && u.imm == 1 &&
        third.rs == u.rd && third.rt == 0) {
        u.kind = third.op == Op::BEQ ? UopKind::SLT_XORI_BEQ
                                     : UopKind::SLT_XORI_BNE;
        u.imm = int32_t(branchTarget(index + 2, third));
        u.aux = pcOf(index + 3);
        return true;
    }
    return false;
}

/** Translate one instruction into an (unfused) micro-op. */
MicroOp
translateOne(const Instruction &inst, uint32_t index)
{
    MicroOp u;
    u.index = index;
    switch (inst.op) {
      case Op::SLL:
      case Op::SRL:
      case Op::SRA:
        u.kind = inst.op == Op::SLL ? UopKind::SLL
            : inst.op == Op::SRL ? UopKind::SRL : UopKind::SRA;
        u.rd = sink(inst.rd);
        u.rt = inst.rt;
        u.shamt = inst.shamt;
        break;
      case Op::SLLV:
      case Op::SRLV:
      case Op::SRAV:
        u.kind = inst.op == Op::SLLV ? UopKind::SLLV
            : inst.op == Op::SRLV ? UopKind::SRLV : UopKind::SRAV;
        u.rd = sink(inst.rd);
        u.rs = inst.rs;
        u.rt = inst.rt;
        break;
      case Op::ADD:
      case Op::ADDU:
      case Op::SUB:
      case Op::SUBU:
      case Op::AND:
      case Op::OR:
      case Op::XOR:
      case Op::NOR:
      case Op::SLT:
      case Op::SLTU: {
        switch (inst.op) {
          case Op::ADD:
          case Op::ADDU: u.kind = UopKind::ADDU; break;
          case Op::SUB:
          case Op::SUBU: u.kind = UopKind::SUBU; break;
          case Op::AND: u.kind = UopKind::AND; break;
          case Op::OR: u.kind = UopKind::OR; break;
          case Op::XOR: u.kind = UopKind::XOR; break;
          case Op::NOR: u.kind = UopKind::NOR; break;
          case Op::SLT: u.kind = UopKind::SLT; break;
          default: u.kind = UopKind::SLTU; break;
        }
        u.rd = sink(inst.rd);
        u.rs = inst.rs;
        u.rt = inst.rt;
        break;
      }
      case Op::ADDI:
      case Op::ADDIU:
      case Op::SLTI:
      case Op::SLTIU:
      case Op::ANDI:
      case Op::ORI:
      case Op::XORI: {
        switch (inst.op) {
          case Op::ADDI:
          case Op::ADDIU: u.kind = UopKind::ADDIU; break;
          case Op::SLTI: u.kind = UopKind::SLTI; break;
          case Op::SLTIU: u.kind = UopKind::SLTIU; break;
          case Op::ANDI: u.kind = UopKind::ANDI; break;
          case Op::ORI: u.kind = UopKind::ORI; break;
          default: u.kind = UopKind::XORI; break;
        }
        u.rd = sink(inst.rt);
        u.rs = inst.rs;
        u.imm = inst.imm;
        break;
      }
      case Op::LUI:
        u.kind = UopKind::LUI;
        u.rd = sink(inst.rt);
        u.imm = int32_t(uint32_t(inst.imm) << 16);
        break;
      case Op::MFHI:
      case Op::MFLO:
        u.kind = inst.op == Op::MFHI ? UopKind::MFHI : UopKind::MFLO;
        u.rd = sink(inst.rd);
        break;
      case Op::MTHI:
      case Op::MTLO:
        u.kind = inst.op == Op::MTHI ? UopKind::MTHI : UopKind::MTLO;
        u.rs = inst.rs;
        break;
      case Op::MULT:
      case Op::MULTU:
      case Op::DIV:
      case Op::DIVU:
        u.kind = inst.op == Op::MULT ? UopKind::MULT
            : inst.op == Op::MULTU ? UopKind::MULTU
            : inst.op == Op::DIV ? UopKind::DIV : UopKind::DIVU;
        u.rs = inst.rs;
        u.rt = inst.rt;
        break;
      case Op::LB:
      case Op::LBU:
      case Op::LH:
      case Op::LHU:
      case Op::LW:
        u.kind = inst.op == Op::LB ? UopKind::LB
            : inst.op == Op::LBU ? UopKind::LBU
            : inst.op == Op::LH ? UopKind::LH
            : inst.op == Op::LHU ? UopKind::LHU : UopKind::LW;
        u.rd = sink(inst.rt);
        u.rs = inst.rs;
        u.imm = inst.imm;
        break;
      case Op::SB:
      case Op::SH:
      case Op::SW:
        u.kind = inst.op == Op::SB ? UopKind::SB
            : inst.op == Op::SH ? UopKind::SH : UopKind::SW;
        u.rs = inst.rs;
        u.rt = inst.rt;
        u.imm = inst.imm;
        break;
      case Op::BEQ:
      case Op::BNE:
        u.kind = branchKind(inst.op);
        u.rs = inst.rs;
        u.rt = inst.rt;
        u.imm = int32_t(branchTarget(index, inst));
        u.aux = pcOf(index + 1);
        break;
      case Op::BLEZ:
      case Op::BGTZ:
      case Op::BLTZ:
      case Op::BGEZ:
        u.kind = branchKind(inst.op);
        u.rs = inst.rs;
        u.imm = int32_t(branchTarget(index, inst));
        u.aux = pcOf(index + 1);
        break;
      case Op::J:
        u.kind = UopKind::J;
        u.imm = int32_t(jumpTarget(index, inst));
        break;
      case Op::JAL:
        u.kind = UopKind::JAL;
        u.rd = isa::regRA;
        u.imm = int32_t(jumpTarget(index, inst));
        u.aux = pcOf(index + 1);
        break;
      case Op::JR:
        u.kind = UopKind::JR;
        u.rs = inst.rs;
        break;
      case Op::JALR:
        u.kind = UopKind::JALR;
        u.rd = sink(inst.rd);
        u.rs = inst.rs;
        u.aux = pcOf(index + 1);
        break;
      case Op::SYSCALL:
        u.kind = UopKind::SYSCALL;
        break;
      default:
        // BREAK and invalid encodings: route through the interpreter
        // body at execution time for its exact fatal diagnostics.
        u.kind = UopKind::TRAP;
        break;
    }
    return u;
}

} // namespace

BlockCode
translateBlock(const std::vector<isa::Instruction> &code,
               uint32_t start, uint32_t max_instrs)
{
    panicIf(start >= code.size(), "translateBlock out of text");

    BlockCode out;
    const uint32_t n = uint32_t(code.size());
    uint32_t i = start;
    uint32_t retired = 0;
    while (i < n && retired < max_instrs) {
        const Instruction &inst = code[i];

        MicroOp u;
        const bool pair_fits = i + 1 < n && retired + 2 <= max_instrs;
        if (pair_fits && fusePair(inst, code[i + 1], i, u)) {
            u.index = i;
            u.retiredBefore = uint16_t(retired);
            // Pairs whose faultable memory access is the second
            // instruction report faults from there — the first op's
            // write completes before the access executes.
            if (u.kind == UopKind::ADDU_LW ||
                u.kind == UopKind::ADDU_SW ||
                u.kind == UopKind::SLL_LW ||
                u.kind == UopKind::ADDIU_SW ||
                u.kind == UopKind::ADDIU_JR) {
                u.index = i + 1;
                u.retiredBefore = uint16_t(retired + 1);
            }
            // Second-level fusion: some pairs absorb the instruction
            // after them (li + memory access, slt + xori + branch).
            const uint32_t width =
                i + 2 < n && retired + 3 <= max_instrs &&
                u.kind < firstTerminator &&
                fuseTriple(u, code[i + 2], i) ? 3 : 2;
            const bool ends = u.kind >= firstTerminator;
            out.ops.push_back(u);
            retired += width;
            i += width;
            if (ends) {
                out.instrCount = retired;
                return out;
            }
            continue;
        }

        u = translateOne(inst, i);
        u.retiredBefore = uint16_t(retired);
        out.ops.push_back(u);
        retired += 1;
        i += 1;
        if (u.kind >= firstTerminator) {
            out.instrCount = retired;
            return out;
        }
    }

    // Block capped or text exhausted mid-straight-line: a synthetic
    // END hands the fall-through pc back to the dispatch loop (which
    // bounds-checks it, exactly like the interpreter would).
    MicroOp end;
    end.kind = UopKind::END;
    end.index = i;
    end.retiredBefore = uint16_t(retired);
    end.aux = pcOf(i);
    out.ops.push_back(end);
    out.instrCount = retired;
    return out;
}

} // namespace irep::sim
