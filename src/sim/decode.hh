/**
 * @file
 * Basic-block translation: turn a straight-line run of pre-decoded
 * MIPS-I instructions into a dense array of micro-ops the block cache
 * executes without per-instruction fetch/decode dispatch.
 *
 * A micro-op resolves everything the interpreter recomputes on every
 * dynamic execution: the semantic opcode collapses to one enumerator
 * (ADD/ADDU share a kind, LUI's shift is folded into the immediate),
 * register operands become direct indices into the machine's register
 * file (with $zero destinations remapped to a write sink), and
 * branch/jump targets are absolute next-pc values computed at
 * translate time. The hottest two-instruction idioms fuse into
 * superinstructions (see UopKind) — the dominant repetition the paper
 * measures is exactly what makes this amortization pay.
 *
 * Translation reads only the machine's immutable pre-decoded text, so
 * retranslating an invalidated block always reproduces the same
 * micro-ops; invalidation exists to keep the cache honest about
 * stores into translated pages, not to change semantics.
 */

#ifndef IREP_SIM_DECODE_HH
#define IREP_SIM_DECODE_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"

namespace irep::sim
{

/** Register-file slot that swallows writes to $zero. Reads always use
 *  the architectural index, so slot 0 stays zero. */
constexpr uint8_t regZeroSink = 32;

/**
 * Micro-op kinds. Non-terminators fall through to the next micro-op;
 * terminators (everything from BEQ on) end the block and produce the
 * next pc. The enumerator order defines the threaded-dispatch jump
 * table in the block cache — keep them in sync.
 */
enum class UopKind : uint8_t
{
    // Shifts.
    SLL, SRL, SRA, SLLV, SRLV, SRAV,
    // Three-register ALU (ADD folds into ADDU, SUB into SUBU — the
    // simulator does not trap on overflow).
    ADDU, SUBU, AND, OR, XOR, NOR, SLT, SLTU,
    // Immediate ALU (ADDI folds into ADDIU; LUI's immediate is
    // pre-shifted).
    ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
    // HI/LO.
    MFHI, MTHI, MFLO, MTLO, MULT, MULTU, DIV, DIVU,
    // Memory.
    LB, LBU, LH, LHU, LW, SB, SH, SW,
    // Fused straight-line superinstructions.
    LI32,       //!< lui rd + ori/addiu rd: rd = imm (full constant)
    LW_ADDIU,   //!< lw rd + addiu rd2, rd, aux
    LW_ADDU,    //!< lw rd + addu rd2, rd, rt (rt read after the load)
    // Fused ALU pairs: the first op writes rd, then the second op
    // reads its sources from the register file (packed into aux /
    // imm), so aliasing the first destination follows sequential
    // semantics by construction. rd2 is the second destination.
    ADDU_ADDU,  //!< rd = rs+rt; rd2 = R[aux.b0] + R[aux.b1]
    SLL_ADDU,   //!< rd = rt<<shamt; rd2 = R[aux.b0] + R[aux.b1]
    ADDU_SLL,   //!< rd = rs+rt; rd2 = R[aux.b0] << aux.b1
    ADDU_ADDIU, //!< rd = rs+rt; rd2 = R[aux.b0] + imm
    ADDU_SLTI,  //!< rd = rs+rt; rd2 = (R[aux.b0] < imm) signed
    ADDIU_SLT,  //!< rd = rs+imm; rd2 = (R[aux.b0] < R[aux.b1]) signed
    SLT_XORI,   //!< rd = (rs<rt) signed; rd2 = R[aux.b0] ^ imm
    SUBU_SLTIU, //!< rd = rs-rt; rd2 = (R[aux.b0] < imm) unsigned
    SUBU_ADDU,  //!< rd = rs-rt; rd2 = R[aux.b0] + R[aux.b1]
    // Address-compute + memory access. The access can fault, so
    // index/retiredBefore point at the memory instruction and every
    // preceding write lands before the access executes — fault state
    // stays exact.
    ADDU_LW,    //!< rd = rs+rt; rd2 = mem32[R[aux.b0] + imm]
    ADDU_SW,    //!< rd = rs+rt; mem32[R[aux.b0] + imm] = R[aux.b1]
    ADDU_LBU,   //!< rd = rs+rt; rd2 = mem8[R[aux.b0] + imm]
    SLL_LW,     //!< rd = rt<<shamt; rd2 = mem32[R[aux.b0] + imm]
    ADDIU_SW,   //!< rd = rs+imm; mem32[R[aux.b0]+aux.h1] = R[aux.b1]
    // Back-to-back memory pairs. Either access can fault; the
    // executor tracks which one it is in (fault bias), so index can
    // stay on the first instruction.
    LW_LW,      //!< rd = mem32[rs+imm]; rd2 = mem32[R[aux.b0]+aux.h1]
    SW_SW,      //!< mem32[rs+imm] = rt; mem32[R[aux.b0]+aux.h1] = R[aux.b1]
    // Fused triples around a 32-bit constant (lui+ori/addiu + memory
    // access through the constant).
    LI32_LW,    //!< rd = imm; rd2 = mem32[imm + aux]
    LI32_SW,    //!< rd = imm; mem32[imm + aux] = rt
    // The array-read idiom sll t,i,s; addu t,b,t; lw x,off(t):
    // shift into rd, sum into rd2, load into the aux.b2 slot.
    SLL_ADDU_LW,
    // Terminators.
    BEQ, BNE, BLEZ, BGTZ, BLTZ, BGEZ,
    // Fused compare-and-branch: rd = (rs < rt), branch on the result.
    SLT_BEQ, SLT_BNE, SLTU_BEQ, SLTU_BNE,
    // Fused ALU-and-branch. XORI_*: rd = rs^shamt, branch compares
    // R[rt] with R[rd2] (both read after the write). ADDU_*:
    // rd = rs+rt, branch compares R[shamt] with R[rd2].
    XORI_BEQ, XORI_BNE, ADDU_BEQ, ADDU_BNE,
    // slt c,a,b; xori c,c,1; beq/bne c,$zero — branch on the signed
    // comparison while writing the inverted condition register.
    SLT_XORI_BEQ, SLT_XORI_BNE,
    // slti/sltiu rd + beq/bne rd, $zero: the 16-bit compare immediate
    // rides in rt|rd2 (imm and aux carry the branch targets).
    SLTI_BEQ, SLTI_BNE, SLTIU_BEQ, SLTIU_BNE,
    J, JAL, JR, JALR,
    ADDIU_JR,   //!< rd = rs+imm; jump to R[rt] (read after the write)
    SYSCALL,    //!< executed through the interpreter body
    TRAP,       //!< break / invalid encoding: interpreter fatal
    END,        //!< synthetic fall-through (block cap or text end)

    NUM_KINDS,
};

/** First terminator kind (every kind >= this ends the block). */
constexpr UopKind firstTerminator = UopKind::BEQ;

/**
 * One pre-decoded micro-op (20 bytes, three per cache line pair).
 * Field use by kind:
 *  - rd / rd2: destination register slots, $zero remapped to
 *    regZeroSink; rd2 is the second destination of load-use pairs.
 *  - rs / rt: source register indices (architectural, never
 *    remapped). For LW_ADDU, rt is the addu operand that is not the
 *    loaded register.
 *  - imm: immediate, pre-shifted LUI constant, fused LI32 constant,
 *    memory offset, or the absolute taken-branch / jump target.
 *  - aux: fall-through pc for terminators (doubles as the jal/jalr
 *    link value), or the fused pair's second immediate.
 *  - index: static index of the micro-op's first instruction — with
 *    retiredBefore this reconstructs the exact architectural pc and
 *    instret at any fault.
 */
struct MicroOp
{
    UopKind kind = UopKind::TRAP;
    uint8_t rd = regZeroSink;
    uint8_t rs = 0;
    uint8_t rt = 0;
    uint8_t shamt = 0;
    uint8_t rd2 = regZeroSink;
    uint16_t retiredBefore = 0;
    int32_t imm = 0;
    uint32_t aux = 0;
    uint32_t index = 0;
};

static_assert(sizeof(MicroOp) == 20, "keep micro-ops dense");

/** Result of translating one basic block. */
struct BlockCode
{
    std::vector<MicroOp> ops;
    uint32_t instrCount = 0;    //!< architectural instructions covered
};

/**
 * Translate the block starting at static index @p start: consume
 * instructions until a terminator or @p max_instrs, fusing adjacent
 * pairs where the superinstruction is architecturally equivalent.
 * @p code is the machine's full pre-decoded text.
 */
BlockCode translateBlock(const std::vector<isa::Instruction> &code,
                         uint32_t start, uint32_t max_instrs);

} // namespace irep::sim

#endif // IREP_SIM_DECODE_HH
