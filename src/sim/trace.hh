/**
 * @file
 * Retire-stream observability: a sampling tracer that writes one
 * record per selected retired instruction (compact text or JSONL),
 * and a progress heartbeat that reports instret, phase and simulation
 * throughput while a long window executes.
 *
 * Both are plain Observers: when neither is requested nothing is
 * attached to the Machine, so the default path pays nothing.
 */

#ifndef IREP_SIM_TRACE_HH
#define IREP_SIM_TRACE_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/observer.hh"

namespace irep::sim
{

/** Retire-tracer configuration. */
struct TraceConfig
{
    /**
     * Emit every Nth instruction that passes the PC filter: the 1st,
     * (N+1)th, (2N+1)th, ... observed instruction is recorded. 1
     * records everything. Must be positive.
     */
    uint64_t sampleInterval = 1;

    /** When set, only instructions with pcLo <= pc <= pcHi are
     *  considered (they alone advance the sampling counter). */
    bool filterPc = false;
    uint32_t pcLo = 0;
    uint32_t pcHi = UINT32_MAX;

    enum class Format
    {
        Text,   //!< one aligned text line per record
        Jsonl,  //!< one JSON object per line
    };
    Format format = Format::Text;
};

/**
 * Writes sampled retire records to a stream.
 *
 * Text format:   `<seq> <pc> <disassembly> = <result>`
 * JSONL format:  `{"seq":..,"pc":..,"op":"..","asm":"..","result":..}`
 * (plus src/mem fields when present).
 */
class RetireTracer : public Observer
{
  public:
    RetireTracer(std::ostream &out,
                 const TraceConfig &config = TraceConfig());

    void onRetire(const InstrRecord &rec) override;

    /** Instructions that passed the PC filter. */
    uint64_t observed() const { return observed_; }
    /** Records actually written. */
    uint64_t emitted() const { return emitted_; }

    const TraceConfig &config() const { return config_; }

  private:
    void emitText(const InstrRecord &rec);
    void emitJsonl(const InstrRecord &rec);

    std::ostream &out_;
    TraceConfig config_;
    uint64_t observed_ = 0;
    uint64_t emitted_ = 0;
};

/**
 * Periodic stderr-style heartbeat: every @p interval retired
 * instructions, print total instret, the current phase label (the
 * pipeline reports "skip" / "window"; standalone runs stay "run") and
 * the wall-clock simulation rate since the previous beat, in
 * simulated MIPS.
 */
class ProgressMeter : public Observer
{
  public:
    ProgressMeter(uint64_t interval, std::ostream &out);

    /** Label the current execution phase (e.g. "skip", "window"). */
    void setPhase(std::string_view phase) { phase_ = phase; }
    const std::string &phase() const { return phase_; }

    void onRetire(const InstrRecord &rec) override;

    /** Heartbeats emitted so far. */
    uint64_t beats() const { return beats_; }

  private:
    uint64_t interval_;
    std::ostream &out_;
    std::string phase_ = "run";
    uint64_t sinceBeat_ = 0;
    uint64_t total_ = 0;
    uint64_t beats_ = 0;
    std::chrono::steady_clock::time_point lastBeat_;
};

} // namespace irep::sim

#endif // IREP_SIM_TRACE_HH
