#include "sim/bbcache.hh"

#include <limits>

#include "asm/program.hh"
#include "sim/machine.hh"
#include "support/logging.hh"
#include "support/prof.hh"

// The threaded dispatch loop uses GNU labels-as-values (computed
// goto): each micro-op jumps straight to the next op's handler with
// no central dispatch branch, which is what lets the translated hot
// path retire an instruction in a handful of machine instructions.
// Other compilers fall back to a switch in a loop — same semantics,
// one extra indirect branch per micro-op.
#if defined(__GNUC__) || defined(__clang__)
#define IREP_BB_THREADED 1
#endif

namespace irep::sim
{

BlockCache::BlockCache(Machine &machine)
    : m_(machine), blocks_(machine.decoded_.size())
{
    // Watch the text segment: any store landing in it bumps the
    // containing page's generation, which stales every block
    // translated from that page.
    m_.mem_.watchStores(assem::Layout::textBase,
                       uint32_t(machine.decoded_.size()) * 4);
}

void
BlockCache::setCapacity(size_t blocks)
{
    capacity_ = blocks ? blocks : 1;
    evictUntilBounded(nullptr);
}

BlockCache::Block &
BlockCache::blockFor(uint32_t index)
{
    std::unique_ptr<Block> &slot = blocks_[index];
    if (!slot) {
        slot = std::make_unique<Block>();
        slot->start = index;
    }
    return *slot;
}

uint32_t
BlockCache::genOf(const Block &blk) const
{
    // Sum the generations of the first and last instruction's pages
    // (equal pages sum consistently): generations only grow, so any
    // store into either page changes the snapshot.
    const uint32_t first = assem::Layout::textBase + blk.start * 4;
    const uint32_t count = blk.instrCount ? blk.instrCount : 1;
    return m_.mem_.storeGeneration(first) +
           m_.mem_.storeGeneration(first + (count - 1) * 4);
}

void
BlockCache::translate(Block &blk)
{
    prof::Span span("translate", "bbcache");
    if (!blk.ops.empty()) {
        // Stale translation: a store hit the block's pages since the
        // generation snapshot. Drop the micro-ops and redo them from
        // the machine's (immutable) pre-decoded text.
        ++invalidations_;
        prof::counterAdd("bbcache/invalidations", 1);
        blk.ops.clear();
        --liveBlocks_;
    }

    BlockCode code =
        translateBlock(m_.decoded_, blk.start, maxBlockInstrs);
    blk.ops = std::move(code.ops);
    blk.instrCount = code.instrCount;
    blk.gen = genOf(blk);
    blk.referenced = true;
    ++liveBlocks_;
    ++blocksTranslated_;
    prof::counterAdd("bbcache/blocks", 1);
    span.arg("instructions", double(blk.instrCount));

    evictUntilBounded(&blk);
}

void
BlockCache::evictUntilBounded(const Block *keep)
{
    // Clock sweep: referenced blocks get a second chance; victims
    // drop their micro-ops but keep the shell, so chain pointers into
    // them stay valid and entry revalidation retranslates in place.
    while (liveBlocks_ > capacity_) {
        Block *blk = blocks_[clockHand_].get();
        clockHand_ = clockHand_ + 1 == blocks_.size()
            ? 0 : clockHand_ + 1;
        if (!blk || blk->ops.empty() || blk == keep)
            continue;
        if (blk->referenced) {
            blk->referenced = false;
            continue;
        }
        blk->ops.clear();
        blk->ops.shrink_to_fit();
        --liveBlocks_;
        ++evictions_;
        prof::counterAdd("bbcache/evictions", 1);
    }
}

uint64_t
BlockCache::runFast(uint64_t max)
{
    prof::Span span("execute", "bbcache");
    Machine &m = m_;

    // Alignment checked once: every block exit either checks its
    // target (jr/jalr) or constructs a 4-aligned one.
    fatalIf(m.pc_ & 3, "pc out of text segment: 0x", std::hex, m.pc_);

    const uint32_t num_static = uint32_t(m.decoded_.size());
    uint32_t *const R = m.regs_;
    Memory &mem = m.mem_;
    // instret_ is kept as a local delta (`done`) over this base and
    // only flushed where someone could observe it: syscalls, the
    // single-stepped tail, faults, and exit. Terminators then touch
    // no machine state at all.
    const uint64_t instret_base = m.instret_;
    uint64_t done = 0;
    uint32_t pc = m.pc_;
    Block *blk = nullptr;
    // Chain slot of the previous block's terminator: filled on first
    // transition, after which the successor comes straight from the
    // chain with no lookup.
    Block **slot = nullptr;
    // Null between blocks (lookup/translate/tail), pointing at the
    // live micro-op inside one — the fault handler reads it to
    // rebuild the exact architectural pc and instret.
    const MicroOp *op = nullptr;
    // Dual-memory micro-ops (LW_LW, SW_SW) set this to 1 around their
    // second access, shifting the fault handler's pc/instret onto the
    // second instruction — its only consumer.
    uint32_t fault_bias = 0;

    if (max == 0 || m.halted_)
        return 0;

// Terminators account every retire in the block at once; the
// per-micro-op hot path touches no machine state but registers.
#define BB_END_BLOCK() (done += blk->instrCount)

    try {
#ifdef IREP_BB_THREADED
        // One entry per UopKind, in enumerator order.
        static const void *const kDispatch[] = {
            &&U_SLL, &&U_SRL, &&U_SRA, &&U_SLLV, &&U_SRLV, &&U_SRAV,
            &&U_ADDU, &&U_SUBU, &&U_AND, &&U_OR, &&U_XOR, &&U_NOR,
            &&U_SLT, &&U_SLTU,
            &&U_ADDIU, &&U_SLTI, &&U_SLTIU, &&U_ANDI, &&U_ORI,
            &&U_XORI, &&U_LUI,
            &&U_MFHI, &&U_MTHI, &&U_MFLO, &&U_MTLO,
            &&U_MULT, &&U_MULTU, &&U_DIV, &&U_DIVU,
            &&U_LB, &&U_LBU, &&U_LH, &&U_LHU, &&U_LW,
            &&U_SB, &&U_SH, &&U_SW,
            &&U_LI32, &&U_LW_ADDIU, &&U_LW_ADDU,
            &&U_ADDU_ADDU, &&U_SLL_ADDU, &&U_ADDU_SLL,
            &&U_ADDU_ADDIU, &&U_ADDU_SLTI, &&U_ADDIU_SLT,
            &&U_SLT_XORI, &&U_SUBU_SLTIU, &&U_SUBU_ADDU,
            &&U_ADDU_LW, &&U_ADDU_SW, &&U_ADDU_LBU, &&U_SLL_LW,
            &&U_ADDIU_SW, &&U_LW_LW, &&U_SW_SW,
            &&U_LI32_LW, &&U_LI32_SW, &&U_SLL_ADDU_LW,
            &&U_BEQ, &&U_BNE, &&U_BLEZ, &&U_BGTZ, &&U_BLTZ, &&U_BGEZ,
            &&U_SLT_BEQ, &&U_SLT_BNE, &&U_SLTU_BEQ, &&U_SLTU_BNE,
            &&U_XORI_BEQ, &&U_XORI_BNE, &&U_ADDU_BEQ, &&U_ADDU_BNE,
            &&U_SLT_XORI_BEQ, &&U_SLT_XORI_BNE,
            &&U_SLTI_BEQ, &&U_SLTI_BNE, &&U_SLTIU_BEQ, &&U_SLTIU_BNE,
            &&U_J, &&U_JAL, &&U_JR, &&U_JALR, &&U_ADDIU_JR,
            &&U_SYSCALL, &&U_TRAP, &&U_END,
        };
        static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                          size_t(UopKind::NUM_KINDS),
                      "dispatch table out of sync with UopKind");
#define BB_CASE(k) U_##k:
#define BB_NEXT()                                                     \
    do {                                                              \
        ++op;                                                         \
        goto *kDispatch[size_t(op->kind)];                            \
    } while (0)
#endif

        // Block transitions are gotos inside this one function, so a
        // chained steady-state transition is: account the block,
        // follow the chain pointer, revalidate, re-enter the threaded
        // dispatch — no call, no return, no out-params.
        // op must be nulled *before* the out-of-text checks below: the
        // previous block is fully executed and accounted by the time a
        // transition faults, so the handler's between-blocks state
        // (pc_ = bad target, instret_ = base + done) is the correct
        // one — the interpreter retires the terminator and faults on
        // the next fetch.
    enter_pc:   // indirect target (jr/jalr/syscall): full lookup
        op = nullptr;
        {
            const uint32_t index =
                (pc - assem::Layout::textBase) >> 2;
            fatalIf(index >= num_static,
                    "pc out of text segment: 0x", std::hex, pc);
            blk = &blockFor(index);
        }
        goto validate;

    enter_chain:    // static edge: slot points at the chain pointer
        op = nullptr;
        if (*slot) {
            blk = *slot;
        } else {
            const uint32_t index =
                (pc - assem::Layout::textBase) >> 2;
            fatalIf(index >= num_static,
                    "pc out of text segment: 0x", std::hex, pc);
            blk = &blockFor(index);
            *slot = blk;
        }

    validate:
        // No store has ever hit the text segment (the common case) ⇒
        // no generation can have moved, so only the emptiness check
        // (fresh or evicted shell) remains on the hot path.
        if (blk->ops.empty() ||
            (mem.watchedStoreCount() != 0 && blk->gen != genOf(*blk)))
            translate(*blk);
        if (max - done < blk->instrCount)
            goto tail;
        blk->referenced = true;
        op = blk->ops.data();
#ifdef IREP_BB_THREADED
        goto *kDispatch[size_t(op->kind)];
#else
#define BB_CASE(k) case UopKind::k:
#define BB_NEXT() break
        for (;;) {
            switch (op->kind) {
#endif

        BB_CASE(SLL) R[op->rd] = R[op->rt] << op->shamt; BB_NEXT();
        BB_CASE(SRL) R[op->rd] = R[op->rt] >> op->shamt; BB_NEXT();
        BB_CASE(SRA)
            R[op->rd] = uint32_t(int32_t(R[op->rt]) >> op->shamt);
            BB_NEXT();
        BB_CASE(SLLV)
            R[op->rd] = R[op->rt] << (R[op->rs] & 31);
            BB_NEXT();
        BB_CASE(SRLV)
            R[op->rd] = R[op->rt] >> (R[op->rs] & 31);
            BB_NEXT();
        BB_CASE(SRAV)
            R[op->rd] =
                uint32_t(int32_t(R[op->rt]) >> (R[op->rs] & 31));
            BB_NEXT();
        BB_CASE(ADDU) R[op->rd] = R[op->rs] + R[op->rt]; BB_NEXT();
        BB_CASE(SUBU) R[op->rd] = R[op->rs] - R[op->rt]; BB_NEXT();
        BB_CASE(AND) R[op->rd] = R[op->rs] & R[op->rt]; BB_NEXT();
        BB_CASE(OR) R[op->rd] = R[op->rs] | R[op->rt]; BB_NEXT();
        BB_CASE(XOR) R[op->rd] = R[op->rs] ^ R[op->rt]; BB_NEXT();
        BB_CASE(NOR) R[op->rd] = ~(R[op->rs] | R[op->rt]); BB_NEXT();
        BB_CASE(SLT)
            R[op->rd] =
                int32_t(R[op->rs]) < int32_t(R[op->rt]) ? 1 : 0;
            BB_NEXT();
        BB_CASE(SLTU)
            R[op->rd] = R[op->rs] < R[op->rt] ? 1 : 0;
            BB_NEXT();
        BB_CASE(ADDIU)
            R[op->rd] = R[op->rs] + uint32_t(op->imm);
            BB_NEXT();
        BB_CASE(SLTI)
            R[op->rd] = int32_t(R[op->rs]) < op->imm ? 1 : 0;
            BB_NEXT();
        BB_CASE(SLTIU)
            R[op->rd] = R[op->rs] < uint32_t(op->imm) ? 1 : 0;
            BB_NEXT();
        BB_CASE(ANDI)
            R[op->rd] = R[op->rs] & uint32_t(op->imm);
            BB_NEXT();
        BB_CASE(ORI)
            R[op->rd] = R[op->rs] | uint32_t(op->imm);
            BB_NEXT();
        BB_CASE(XORI)
            R[op->rd] = R[op->rs] ^ uint32_t(op->imm);
            BB_NEXT();
        BB_CASE(LUI) R[op->rd] = uint32_t(op->imm); BB_NEXT();
        BB_CASE(MFHI) R[op->rd] = m.hi_; BB_NEXT();
        BB_CASE(MTHI) m.hi_ = R[op->rs]; BB_NEXT();
        BB_CASE(MFLO) R[op->rd] = m.lo_; BB_NEXT();
        BB_CASE(MTLO) m.lo_ = R[op->rs]; BB_NEXT();
        BB_CASE(MULT) {
            const int64_t p =
                int64_t(int32_t(R[op->rs])) * int32_t(R[op->rt]);
            m.hi_ = uint32_t(uint64_t(p) >> 32);
            m.lo_ = uint32_t(uint64_t(p));
        } BB_NEXT();
        BB_CASE(MULTU) {
            const uint64_t p = uint64_t(R[op->rs]) * R[op->rt];
            m.hi_ = uint32_t(p >> 32);
            m.lo_ = uint32_t(p);
        } BB_NEXT();
        BB_CASE(DIV) {
            const int32_t a = int32_t(R[op->rs]);
            const int32_t b = int32_t(R[op->rt]);
            if (b == 0) {
                m.lo_ = 0;
                m.hi_ = 0;
            } else if (a == std::numeric_limits<int32_t>::min() &&
                       b == -1) {
                m.lo_ = uint32_t(a);
                m.hi_ = 0;
            } else {
                m.lo_ = uint32_t(a / b);
                m.hi_ = uint32_t(a % b);
            }
        } BB_NEXT();
        BB_CASE(DIVU) {
            const uint32_t a = R[op->rs], b = R[op->rt];
            if (b == 0) {
                m.lo_ = 0;
                m.hi_ = 0;
            } else {
                m.lo_ = a / b;
                m.hi_ = a % b;
            }
        } BB_NEXT();
        BB_CASE(LB)
            R[op->rd] = uint32_t(int32_t(int8_t(
                mem.read8(R[op->rs] + uint32_t(op->imm)))));
            BB_NEXT();
        BB_CASE(LBU)
            R[op->rd] = mem.read8(R[op->rs] + uint32_t(op->imm));
            BB_NEXT();
        BB_CASE(LH)
            R[op->rd] = uint32_t(int32_t(int16_t(
                mem.read16(R[op->rs] + uint32_t(op->imm)))));
            BB_NEXT();
        BB_CASE(LHU)
            R[op->rd] = mem.read16(R[op->rs] + uint32_t(op->imm));
            BB_NEXT();
        BB_CASE(LW)
            R[op->rd] = mem.read32(R[op->rs] + uint32_t(op->imm));
            BB_NEXT();
        BB_CASE(SB)
            mem.write8(R[op->rs] + uint32_t(op->imm),
                       uint8_t(R[op->rt]));
            BB_NEXT();
        BB_CASE(SH)
            mem.write16(R[op->rs] + uint32_t(op->imm),
                        uint16_t(R[op->rt]));
            BB_NEXT();
        BB_CASE(SW)
            mem.write32(R[op->rs] + uint32_t(op->imm), R[op->rt]);
            BB_NEXT();
        BB_CASE(LI32) R[op->rd] = uint32_t(op->imm); BB_NEXT();
        BB_CASE(LW_ADDIU) {
            const uint32_t v =
                mem.read32(R[op->rs] + uint32_t(op->imm));
            R[op->rd] = v;
            R[op->rd2] = v + op->aux;
        } BB_NEXT();
        BB_CASE(LW_ADDU) {
            const uint32_t v =
                mem.read32(R[op->rs] + uint32_t(op->imm));
            // Write the load first: the second operand may alias the
            // loaded register, in which case sequential semantics
            // read the freshly loaded value.
            R[op->rd] = v;
            R[op->rd2] = v + R[op->rt];
        } BB_NEXT();
        // Fused ALU pairs: first destination written, then the second
        // op's sources read back from the register file — aliasing
        // resolves by sequential semantics.
        BB_CASE(ADDU_ADDU) {
            R[op->rd] = R[op->rs] + R[op->rt];
            R[op->rd2] =
                R[op->aux & 0xff] + R[(op->aux >> 8) & 0xff];
        } BB_NEXT();
        BB_CASE(SLL_ADDU) {
            R[op->rd] = R[op->rt] << op->shamt;
            R[op->rd2] =
                R[op->aux & 0xff] + R[(op->aux >> 8) & 0xff];
        } BB_NEXT();
        BB_CASE(ADDU_SLL) {
            R[op->rd] = R[op->rs] + R[op->rt];
            R[op->rd2] = R[op->aux & 0xff] << ((op->aux >> 8) & 31);
        } BB_NEXT();
        BB_CASE(ADDU_ADDIU) {
            R[op->rd] = R[op->rs] + R[op->rt];
            R[op->rd2] = R[op->aux & 0xff] + uint32_t(op->imm);
        } BB_NEXT();
        BB_CASE(ADDU_SLTI) {
            R[op->rd] = R[op->rs] + R[op->rt];
            R[op->rd2] =
                int32_t(R[op->aux & 0xff]) < op->imm ? 1 : 0;
        } BB_NEXT();
        BB_CASE(ADDIU_SLT) {
            R[op->rd] = R[op->rs] + uint32_t(op->imm);
            R[op->rd2] = int32_t(R[op->aux & 0xff]) <
                         int32_t(R[(op->aux >> 8) & 0xff]) ? 1 : 0;
        } BB_NEXT();
        BB_CASE(SLT_XORI) {
            R[op->rd] =
                int32_t(R[op->rs]) < int32_t(R[op->rt]) ? 1 : 0;
            R[op->rd2] = R[op->aux & 0xff] ^ uint32_t(op->imm);
        } BB_NEXT();
        BB_CASE(SUBU_SLTIU) {
            R[op->rd] = R[op->rs] - R[op->rt];
            R[op->rd2] =
                R[op->aux & 0xff] < uint32_t(op->imm) ? 1 : 0;
        } BB_NEXT();
        BB_CASE(SUBU_ADDU) {
            R[op->rd] = R[op->rs] - R[op->rt];
            R[op->rd2] =
                R[op->aux & 0xff] + R[(op->aux >> 8) & 0xff];
        } BB_NEXT();
        // Address-compute + memory fusions: every write preceding the
        // (faultable) access lands first, matching the interpreter's
        // state at the memory instruction — which op->index names.
        BB_CASE(ADDU_LW) {
            R[op->rd] = R[op->rs] + R[op->rt];
            R[op->rd2] =
                mem.read32(R[op->aux & 0xff] + uint32_t(op->imm));
        } BB_NEXT();
        BB_CASE(ADDU_SW) {
            R[op->rd] = R[op->rs] + R[op->rt];
            mem.write32(R[op->aux & 0xff] + uint32_t(op->imm),
                        R[(op->aux >> 8) & 0xff]);
        } BB_NEXT();
        BB_CASE(ADDU_LBU) {
            R[op->rd] = R[op->rs] + R[op->rt];
            R[op->rd2] =
                mem.read8(R[op->aux & 0xff] + uint32_t(op->imm));
        } BB_NEXT();
        BB_CASE(SLL_LW) {
            R[op->rd] = R[op->rt] << op->shamt;
            R[op->rd2] =
                mem.read32(R[op->aux & 0xff] + uint32_t(op->imm));
        } BB_NEXT();
        BB_CASE(ADDIU_SW) {
            R[op->rd] = R[op->rs] + uint32_t(op->imm);
            mem.write32(R[op->aux & 0xff] +
                            uint32_t(int32_t(int16_t(op->aux >> 16))),
                        R[(op->aux >> 8) & 0xff]);
        } BB_NEXT();
        BB_CASE(LW_LW) {
            R[op->rd] = mem.read32(R[op->rs] + uint32_t(op->imm));
            fault_bias = 1;
            R[op->rd2] = mem.read32(
                R[op->aux & 0xff] +
                uint32_t(int32_t(int16_t(op->aux >> 16))));
            fault_bias = 0;
        } BB_NEXT();
        BB_CASE(SW_SW) {
            mem.write32(R[op->rs] + uint32_t(op->imm), R[op->rt]);
            fault_bias = 1;
            mem.write32(R[op->aux & 0xff] +
                            uint32_t(int32_t(int16_t(op->aux >> 16))),
                        R[(op->aux >> 8) & 0xff]);
            fault_bias = 0;
        } BB_NEXT();
        BB_CASE(LI32_LW) {
            R[op->rd] = uint32_t(op->imm);
            R[op->rd2] = mem.read32(uint32_t(op->imm) + op->aux);
        } BB_NEXT();
        BB_CASE(LI32_SW) {
            R[op->rd] = uint32_t(op->imm);
            mem.write32(uint32_t(op->imm) + op->aux, R[op->rt]);
        } BB_NEXT();
        BB_CASE(SLL_ADDU_LW) {
            R[op->rd] = R[op->rt] << op->shamt;
            R[op->rd2] =
                R[op->aux & 0xff] + R[(op->aux >> 8) & 0xff];
            R[(op->aux >> 16) & 0xff] =
                mem.read32(R[op->rs] + uint32_t(op->imm));
        } BB_NEXT();
        BB_CASE(BEQ) {
            BB_END_BLOCK();
            if (R[op->rs] == R[op->rt]) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(BNE) {
            BB_END_BLOCK();
            if (R[op->rs] != R[op->rt]) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(BLEZ) {
            BB_END_BLOCK();
            if (int32_t(R[op->rs]) <= 0) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(BGTZ) {
            BB_END_BLOCK();
            if (int32_t(R[op->rs]) > 0) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(BLTZ) {
            BB_END_BLOCK();
            if (int32_t(R[op->rs]) < 0) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(BGEZ) {
            BB_END_BLOCK();
            if (int32_t(R[op->rs]) >= 0) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLT_BEQ) {
            const uint32_t c =
                int32_t(R[op->rs]) < int32_t(R[op->rt]) ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (!c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLT_BNE) {
            const uint32_t c =
                int32_t(R[op->rs]) < int32_t(R[op->rt]) ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLTU_BEQ) {
            const uint32_t c = R[op->rs] < R[op->rt] ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (!c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLTU_BNE) {
            const uint32_t c = R[op->rs] < R[op->rt] ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(XORI_BEQ) {
            R[op->rd] = R[op->rs] ^ op->shamt;
            BB_END_BLOCK();
            if (R[op->rt] == R[op->rd2]) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(XORI_BNE) {
            R[op->rd] = R[op->rs] ^ op->shamt;
            BB_END_BLOCK();
            if (R[op->rt] != R[op->rd2]) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(ADDU_BEQ) {
            R[op->rd] = R[op->rs] + R[op->rt];
            BB_END_BLOCK();
            if (R[op->shamt] == R[op->rd2]) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(ADDU_BNE) {
            R[op->rd] = R[op->rs] + R[op->rt];
            BB_END_BLOCK();
            if (R[op->shamt] != R[op->rd2]) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLT_XORI_BEQ) {
            // beq on the xori'd condition: taken exactly when the
            // original slt was 1.
            const uint32_t c =
                int32_t(R[op->rs]) < int32_t(R[op->rt]) ? 1 : 0;
            R[op->rd] = c ^ 1;
            BB_END_BLOCK();
            if (c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLT_XORI_BNE) {
            const uint32_t c =
                int32_t(R[op->rs]) < int32_t(R[op->rt]) ? 1 : 0;
            R[op->rd] = c ^ 1;
            BB_END_BLOCK();
            if (!c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLTI_BEQ) {
            const int32_t k = int32_t(int16_t(
                uint16_t(op->rt) | uint16_t(op->rd2) << 8));
            const uint32_t c = int32_t(R[op->rs]) < k ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (!c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLTI_BNE) {
            const int32_t k = int32_t(int16_t(
                uint16_t(op->rt) | uint16_t(op->rd2) << 8));
            const uint32_t c = int32_t(R[op->rs]) < k ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLTIU_BEQ) {
            const uint32_t k = uint32_t(int32_t(int16_t(
                uint16_t(op->rt) | uint16_t(op->rd2) << 8)));
            const uint32_t c = R[op->rs] < k ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (!c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(SLTIU_BNE) {
            const uint32_t k = uint32_t(int32_t(int16_t(
                uint16_t(op->rt) | uint16_t(op->rd2) << 8)));
            const uint32_t c = R[op->rs] < k ? 1 : 0;
            R[op->rd] = c;
            BB_END_BLOCK();
            if (c) {
                pc = uint32_t(op->imm);
                slot = &blk->chainTaken;
            } else {
                pc = op->aux;
                slot = &blk->chainFall;
            }
            goto enter_chain;
        }
        BB_CASE(J) {
            BB_END_BLOCK();
            pc = uint32_t(op->imm);
            slot = &blk->chainTaken;
            goto enter_chain;
        }
        BB_CASE(JAL) {
            R[op->rd] = op->aux;
            BB_END_BLOCK();
            pc = uint32_t(op->imm);
            slot = &blk->chainTaken;
            goto enter_chain;
        }
        BB_CASE(JR) {
            const uint32_t target = R[op->rs];
            fatalIf(target & 3, "jr to misaligned address 0x",
                    std::hex, target);
            BB_END_BLOCK();
            pc = target;
            goto enter_pc;
        }
        BB_CASE(JALR) {
            const uint32_t target = R[op->rs];
            fatalIf(target & 3, "jalr to misaligned address 0x",
                    std::hex, target);
            R[op->rd] = op->aux;
            BB_END_BLOCK();
            pc = target;
            goto enter_pc;
        }
        BB_CASE(ADDIU_JR) {
            R[op->rd] = R[op->rs] + uint32_t(op->imm);
            const uint32_t target = R[op->rt];
            fatalIf(target & 3, "jr to misaligned address 0x",
                    std::hex, target);
            BB_END_BLOCK();
            pc = target;
            goto enter_pc;
        }
        BB_CASE(SYSCALL) {
            // Through the interpreter body: syscall handling needs
            // the architectural pc and updates machine state the
            // micro-op hot path never touches. Flush instret first so
            // the syscall observes the exact retire count; exec1 then
            // accounts its own retire. A syscall always terminates
            // its block, so instrCount covers it.
            m.instret_ = instret_base + done + op->retiredBefore;
            pc = m.exec1<false>(
                m.decoded_[op->index], op->index,
                assem::Layout::textBase + op->index * 4);
            done += blk->instrCount;
            if (m.halted_)
                goto out;
            goto enter_pc;
        }
        BB_CASE(TRAP) {
            // break / invalid encoding: the interpreter body raises
            // the exact fatal; never returns.
            m.exec1<false>(m.decoded_[op->index], op->index,
                           assem::Layout::textBase + op->index * 4);
            panic("trap micro-op fell through");
        }
        BB_CASE(END) {
            BB_END_BLOCK();
            pc = op->aux;
            slot = &blk->chainFall;
            goto enter_chain;
        }

#ifndef IREP_BB_THREADED
              case UopKind::NUM_KINDS:
                panic("invalid micro-op kind");
            }
            ++op;
        }
#endif
#undef BB_CASE
#undef BB_NEXT
#undef BB_END_BLOCK

    tail:
        // The budget ends inside this block: single-step the tail
        // through the interpreter body so run(n) semantics are exact.
        // exec1 accounts each retire itself, so flush first to keep
        // the instret == base + done invariant through the loop.
        m.instret_ = instret_base + done;
        while (done < max && !m.halted_) {
            const uint32_t index =
                (pc - assem::Layout::textBase) >> 2;
            fatalIf(index >= num_static,
                    "pc out of text segment: 0x", std::hex, pc);
            pc = m.exec1<false>(m.decoded_[index], index, pc);
            ++done;
        }

    out:
        m.pc_ = pc;
        m.instret_ = instret_base + done;
        return done;
    } catch (...) {
        // Restore the exact architectural fault state the interpreter
        // would leave: pc at the faulting instruction, instret
        // counting only the retires before it. Between blocks
        // (lookup, translation, the single-stepped tail) op is null
        // and pc already names the faulting instruction. (The syscall
        // path set pc_ itself and exec1 had not yet retired, so the
        // same adjustment is correct there too.)
        if (op) {
            m_.pc_ = assem::Layout::textBase +
                     (op->index + fault_bias) * 4;
            m_.instret_ = instret_base + done + op->retiredBefore +
                          fault_bias;
        } else {
            m_.pc_ = pc;
            m_.instret_ = instret_base + done;
        }
        throw;
    }
}

uint32_t
BlockCache::executeObserved(Block &blk, uint32_t pc)
{
    // Observed execution runs the block's instructions through the
    // interpreter body, so retire records (and their dispatch order,
    // including onSyscall) are bit-for-bit those of the interpreter
    // backend; the cache still drives translation, invalidation and
    // eviction. Interior instructions are straight-line by
    // construction — only the final micro-op can redirect pc or halt.
    const uint32_t start = blk.start;
    try {
        for (uint32_t i = 0; i < blk.instrCount && !m_.halted_; ++i) {
            pc = m_.exec1<true>(m_.decoded_[start + i], start + i,
                                pc);
        }
    } catch (...) {
        m_.pc_ = pc;
        throw;
    }
    return pc;
}

template <bool Observed>
uint64_t
BlockCache::run(uint64_t max_instructions)
{
    if constexpr (!Observed)
        return runFast(max_instructions);

    prof::Span span("execute", "bbcache");
    Machine &m = m_;

    // Alignment checked once: every block exit either checks its
    // target (jr/jalr) or constructs a 4-aligned one.
    fatalIf(m.pc_ & 3, "pc out of text segment: 0x", std::hex, m.pc_);

    const uint32_t num_static = uint32_t(m.decoded_.size());
    uint64_t done = 0;
    uint32_t pc = m.pc_;

    while (done < max_instructions && !m.halted_) {
        const uint32_t index = (pc - assem::Layout::textBase) >> 2;
        fatalIf(index >= num_static,
                "pc out of text segment: 0x", std::hex, pc);
        Block *blk = &blockFor(index);

        if (blk->ops.empty() ||
            (m.mem_.watchedStoreCount() != 0 &&
             blk->gen != genOf(*blk)))
            translate(*blk);

        if (max_instructions - done < blk->instrCount) {
            // The budget ends inside this block: single-step the tail
            // through the interpreter body so run(n) semantics are
            // exact.
            try {
                while (done < max_instructions && !m.halted_) {
                    const uint32_t tix =
                        (pc - assem::Layout::textBase) >> 2;
                    fatalIf(tix >= num_static,
                            "pc out of text segment: 0x", std::hex,
                            pc);
                    pc = m.exec1<Observed>(m.decoded_[tix], tix, pc);
                    ++done;
                }
            } catch (...) {
                m.pc_ = pc;
                throw;
            }
            break;
        }

        blk->referenced = true;
        pc = executeObserved(*blk, pc);
        done += blk->instrCount;
    }

    m.pc_ = pc;
    return done;
}

template uint64_t BlockCache::run<false>(uint64_t);
template uint64_t BlockCache::run<true>(uint64_t);

} // namespace irep::sim
