#include "sim/machine.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "isa/registers.hh"
#include "sim/bbcache.hh"
#include "support/logging.hh"

namespace irep::sim
{

using isa::Instruction;
using isa::Op;

ExecBackend
parseExecBackend(const std::string &what, const std::string &text)
{
    if (text == "interp")
        return ExecBackend::Interp;
    if (text == "bbcache")
        return ExecBackend::BBCache;
    fatal(what, " must be `interp` or `bbcache`, not '", text, "'");
}

ExecBackend
envExecBackend()
{
    const char *value = std::getenv("IREP_EXEC");
    if (!value || !*value)
        return ExecBackend::Interp;
    return parseExecBackend("IREP_EXEC", value);
}

Machine::Machine(const assem::Program &program)
    : program_(program), pc_(program.entry),
      brk_(program.heapStart()), heapStart_(program.heapStart()),
      backend_(envExecBackend())
{
    decoded_.reserve(program.text.size());
    destRegs_.reserve(program.text.size());
    for (uint32_t word : program.text) {
        decoded_.push_back(isa::decode(word));
        const isa::Instruction &inst = decoded_.back();
        destRegs_.push_back(int8_t(inst.valid() ? inst.destReg() : -1));
    }

    if (!program.data.empty())
        mem_.writeBlock(assem::Layout::dataBase, program.data.data(),
                        uint32_t(program.data.size()));

    regs_[isa::regSP] = assem::Layout::stackTop;
    regs_[isa::regGP] = assem::Layout::gpValue;

    // Pre-pin the segments the program touches from the first
    // instruction, so the hot path's page-allocation branch is never
    // taken for them.
    mem_.pin(assem::Layout::dataBase, uint32_t(program.data.size()));
    mem_.pin(assem::Layout::stackTop - Memory::pageSize,
             Memory::pageSize);
}

// Out of line: BlockCache is incomplete in the header.
Machine::~Machine() = default;

BlockCache &
Machine::blockCache()
{
    if (!bbcache_)
        bbcache_ = std::make_unique<BlockCache>(*this);
    return *bbcache_;
}

void
Machine::setInput(std::string bytes)
{
    input_ = std::move(bytes);
    inputPos_ = 0;
}

void
Machine::addObserver(Observer *observer)
{
    observers_.push_back(observer);
}

void
Machine::removeObserver(Observer *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
}

void
Machine::setReg(unsigned index, uint32_t value)
{
    if (index != isa::regZero)
        regs_[index] = value;
}

void
Machine::dispatchRetire(const InstrRecord &record)
{
    for (Observer *obs : observers_)
        obs->onRetire(record);
}

void
Machine::doSyscall(InstrRecord *record)
{
    SyscallRecord sys;
    sys.num = Syscall(regs_[isa::regV0]);
    sys.arg0 = regs_[isa::regA0];
    sys.arg1 = regs_[isa::regA1];

    // Expose the syscall's data inputs for repetition tracking.
    if (record) {
        record->numSrcRegs = 2;
        record->srcVal[0] = regs_[isa::regV0];
        record->srcVal[1] = regs_[isa::regA0];
    }

    switch (sys.num) {
      case Syscall::Exit:
        halted_ = true;
        exitCode_ = int(sys.arg0);
        sys.result = sys.arg0;
        break;
      case Syscall::Read: {
        const uint32_t want = sys.arg1;
        const uint32_t avail = uint32_t(input_.size() - inputPos_);
        const uint32_t n = std::min(want, avail);
        if (n)
            mem_.writeBlock(sys.arg0, input_.data() + inputPos_, n);
        inputPos_ += n;
        sys.result = n;
        sys.writtenAddr = sys.arg0;
        sys.writtenLen = n;
        regs_[isa::regV0] = n;
        break;
      }
      case Syscall::Write: {
        // Copy straight from simulated memory into the tail of the
        // accumulated output; no per-call scratch allocation.
        const uint32_t n = sys.arg1;
        if (n) {
            const size_t old_size = output_.size();
            output_.resize(old_size + n);
            mem_.readBlock(sys.arg0, output_.data() + old_size, n);
        }
        sys.result = n;
        regs_[isa::regV0] = n;
        break;
      }
      case Syscall::Sbrk: {
        // The increment is signed; the break must stay inside the
        // heap segment [heapStart, stack region).
        const uint32_t old = brk_;
        const int64_t increment = int64_t(int32_t(sys.arg0));
        const int64_t new_brk = int64_t(old) + increment;
        fatalIf(new_brk < int64_t(heapStart_) ||
                    new_brk >= int64_t(assem::Layout::stackRegionBase),
                "sbrk(", increment, ") at pc 0x", std::hex, pc_,
                std::dec, " would move the break to ", new_brk,
                ", outside the heap segment [", heapStart_, ", ",
                assem::Layout::stackRegionBase, ")");
        brk_ = uint32_t(new_brk);
        sys.result = old;
        regs_[isa::regV0] = old;
        break;
      }
      default:
        fatal("unknown syscall ", uint32_t(sys.num), " at pc 0x",
              std::hex, pc_);
    }

    for (Observer *obs : observers_)
        obs->onSyscall(sys);

    if (record) {
        record->writesReg = sys.num != Syscall::Exit;
        record->destReg = isa::regV0;
        record->result = regs_[isa::regV0];
    }
}

template <bool Observed>
uint32_t
Machine::exec1(const isa::Instruction &inst, uint32_t index, uint32_t pc)
{
    InstrRecord rec;
    uint32_t next_pc = pc + 4;

    // Gather data inputs. srcVal holds (rs, rt) values in order, or
    // HI/LO for mfhi/mflo.
    const uint32_t rs_val = regs_[inst.rs];
    const uint32_t rt_val = regs_[inst.rt];

    if constexpr (Observed) {
        // Checked here (not per-iteration in the run loop) because the
        // op-table lookup below requires a valid op.
        fatalIf(!inst.valid(), "executing invalid instruction at 0x",
                std::hex, pc);
        const isa::OpInfo &info = isa::opInfo(inst.op);
        rec.seq = instret_;
        rec.pc = pc;
        rec.staticIndex = index;
        rec.inst = &inst;
        rec.nextPc = next_pc;

        int n = 0;
        if (info.readsRs)
            rec.srcVal[n++] = rs_val;
        if (info.readsRt)
            rec.srcVal[n++] = rt_val;
        if (info.readsHi)
            rec.srcVal[n++] = hi_;
        if (info.readsLo)
            rec.srcVal[n++] = lo_;
        rec.numSrcRegs = uint8_t(n);
    }

    uint32_t dest_val = 0;
    bool writes = false;
    uint32_t mem_addr = 0;

    auto branch = [&](bool taken) {
        if constexpr (Observed)
            rec.result = taken ? 1 : 0;
        if (taken)
            next_pc = pc + 4 + (uint32_t(inst.imm) << 2);
    };

    auto memAccess = [&]() {
        mem_addr = rs_val + uint32_t(inst.imm);
        if constexpr (Observed) {
            rec.memAddr = mem_addr;
            rec.isMemAccess = true;
        }
    };

    switch (inst.op) {
      case Op::SLL:
        dest_val = rt_val << inst.shamt;
        writes = true;
        break;
      case Op::SRL:
        dest_val = rt_val >> inst.shamt;
        writes = true;
        break;
      case Op::SRA:
        dest_val = uint32_t(int32_t(rt_val) >> inst.shamt);
        writes = true;
        break;
      case Op::SLLV:
        dest_val = rt_val << (rs_val & 31);
        writes = true;
        break;
      case Op::SRLV:
        dest_val = rt_val >> (rs_val & 31);
        writes = true;
        break;
      case Op::SRAV:
        dest_val = uint32_t(int32_t(rt_val) >> (rs_val & 31));
        writes = true;
        break;
      case Op::JR:
        fatalIf(rs_val & 3, "jr to misaligned address 0x", std::hex,
                rs_val);
        next_pc = rs_val;
        if constexpr (Observed)
            rec.result = rs_val;
        break;
      case Op::JALR:
        fatalIf(rs_val & 3, "jalr to misaligned address 0x", std::hex,
                rs_val);
        dest_val = pc + 4;
        writes = true;
        next_pc = rs_val;
        if constexpr (Observed)
            rec.result = (uint64_t(rs_val) << 32) | dest_val;
        break;
      case Op::SYSCALL:
        // Sync the architectural pc: syscall handling (and anything it
        // reports) must see the syscall instruction's address.
        pc_ = pc;
        doSyscall(Observed ? &rec : nullptr);
        break;
      case Op::BREAK:
        fatal("break instruction at pc 0x", std::hex, pc);
      case Op::MFHI:
        dest_val = hi_;
        writes = true;
        break;
      case Op::MTHI:
        hi_ = rs_val;
        if constexpr (Observed)
            rec.result = rs_val;
        break;
      case Op::MFLO:
        dest_val = lo_;
        writes = true;
        break;
      case Op::MTLO:
        lo_ = rs_val;
        if constexpr (Observed)
            rec.result = rs_val;
        break;
      case Op::MULT: {
        const int64_t p = int64_t(int32_t(rs_val)) * int32_t(rt_val);
        hi_ = uint32_t(uint64_t(p) >> 32);
        lo_ = uint32_t(uint64_t(p));
        if constexpr (Observed)
            rec.result = uint64_t(p);
        break;
      }
      case Op::MULTU: {
        const uint64_t p = uint64_t(rs_val) * rt_val;
        hi_ = uint32_t(p >> 32);
        lo_ = uint32_t(p);
        if constexpr (Observed)
            rec.result = p;
        break;
      }
      case Op::DIV: {
        const int32_t a = int32_t(rs_val), b = int32_t(rt_val);
        if (b == 0) {
            lo_ = 0;
            hi_ = 0;
        } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
            lo_ = uint32_t(a);
            hi_ = 0;
        } else {
            lo_ = uint32_t(a / b);
            hi_ = uint32_t(a % b);
        }
        if constexpr (Observed)
            rec.result = (uint64_t(hi_) << 32) | lo_;
        break;
      }
      case Op::DIVU: {
        if (rt_val == 0) {
            lo_ = 0;
            hi_ = 0;
        } else {
            lo_ = rs_val / rt_val;
            hi_ = rs_val % rt_val;
        }
        if constexpr (Observed)
            rec.result = (uint64_t(hi_) << 32) | lo_;
        break;
      }
      case Op::ADD:
      case Op::ADDU:
        dest_val = rs_val + rt_val;
        writes = true;
        break;
      case Op::SUB:
      case Op::SUBU:
        dest_val = rs_val - rt_val;
        writes = true;
        break;
      case Op::AND:
        dest_val = rs_val & rt_val;
        writes = true;
        break;
      case Op::OR:
        dest_val = rs_val | rt_val;
        writes = true;
        break;
      case Op::XOR:
        dest_val = rs_val ^ rt_val;
        writes = true;
        break;
      case Op::NOR:
        dest_val = ~(rs_val | rt_val);
        writes = true;
        break;
      case Op::SLT:
        dest_val = int32_t(rs_val) < int32_t(rt_val) ? 1 : 0;
        writes = true;
        break;
      case Op::SLTU:
        dest_val = rs_val < rt_val ? 1 : 0;
        writes = true;
        break;
      case Op::BLTZ:
        branch(int32_t(rs_val) < 0);
        break;
      case Op::BGEZ:
        branch(int32_t(rs_val) >= 0);
        break;
      case Op::J:
        next_pc = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
        if constexpr (Observed)
            rec.result = next_pc;
        break;
      case Op::JAL:
        dest_val = pc + 4;
        writes = true;
        next_pc = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
        if constexpr (Observed)
            rec.result = dest_val;
        break;
      case Op::BEQ:
        branch(rs_val == rt_val);
        break;
      case Op::BNE:
        branch(rs_val != rt_val);
        break;
      case Op::BLEZ:
        branch(int32_t(rs_val) <= 0);
        break;
      case Op::BGTZ:
        branch(int32_t(rs_val) > 0);
        break;
      case Op::ADDI:
      case Op::ADDIU:
        dest_val = rs_val + uint32_t(inst.imm);
        writes = true;
        break;
      case Op::SLTI:
        dest_val = int32_t(rs_val) < inst.imm ? 1 : 0;
        writes = true;
        break;
      case Op::SLTIU:
        dest_val = rs_val < uint32_t(inst.imm) ? 1 : 0;
        writes = true;
        break;
      case Op::ANDI:
        dest_val = rs_val & uint32_t(inst.imm);
        writes = true;
        break;
      case Op::ORI:
        dest_val = rs_val | uint32_t(inst.imm);
        writes = true;
        break;
      case Op::XORI:
        dest_val = rs_val ^ uint32_t(inst.imm);
        writes = true;
        break;
      case Op::LUI:
        dest_val = uint32_t(inst.imm) << 16;
        writes = true;
        break;
      case Op::LB:
        memAccess();
        dest_val = uint32_t(int32_t(int8_t(mem_.read8(mem_addr))));
        writes = true;
        break;
      case Op::LBU:
        memAccess();
        dest_val = mem_.read8(mem_addr);
        writes = true;
        break;
      case Op::LH:
        memAccess();
        dest_val = uint32_t(int32_t(int16_t(mem_.read16(mem_addr))));
        writes = true;
        break;
      case Op::LHU:
        memAccess();
        dest_val = mem_.read16(mem_addr);
        writes = true;
        break;
      case Op::LW:
        memAccess();
        dest_val = mem_.read32(mem_addr);
        writes = true;
        break;
      case Op::SB:
        memAccess();
        mem_.write8(mem_addr, uint8_t(rt_val));
        if constexpr (Observed)
            rec.result = uint8_t(rt_val);
        break;
      case Op::SH:
        memAccess();
        mem_.write16(mem_addr, uint16_t(rt_val));
        if constexpr (Observed)
            rec.result = uint16_t(rt_val);
        break;
      case Op::SW:
        memAccess();
        mem_.write32(mem_addr, rt_val);
        if constexpr (Observed)
            rec.result = rt_val;
        break;
      case Op::INVALID:
        fatal("executing invalid instruction at 0x", std::hex, pc);
      default:
        panic("unhandled op in exec1()");
    }

    if (writes) {
        const int dest = destRegs_[index];
        panicIf(dest < 0, "writes with no destination");
        setReg(unsigned(dest), dest_val);
        if constexpr (Observed) {
            rec.writesReg = true;
            rec.destReg = uint8_t(dest);
            if (inst.op != Op::JALR)
                rec.result = regs_[dest];
        }
    }

    ++instret_;
    if constexpr (Observed) {
        pc_ = next_pc;
        rec.nextPc = next_pc;
        dispatchRetire(rec);
    }
    return next_pc;
}

void
Machine::step()
{
    panicIf(halted_, "step() on a halted machine");

    const uint32_t text_base = assem::Layout::textBase;
    fatalIf(pc_ < text_base || pc_ >= text_base + program_.textBytes() ||
                (pc_ & 3),
            "pc out of text segment: 0x", std::hex, pc_);

    const uint32_t index = (pc_ - text_base) >> 2;
    pc_ = exec1<true>(decoded_[index], index, pc_);
}

template <bool Observed>
uint64_t
Machine::runLoop(uint64_t max_instructions)
{
    // Every control transfer either checks its target's alignment
    // (jr/jalr) or constructs a 4-aligned one (branches, j/jal,
    // fall-through), so checking once at loop entry covers the run.
    fatalIf(pc_ & 3, "pc out of text segment: 0x", std::hex, pc_);

    const uint32_t num_static = uint32_t(decoded_.size());
    const Instruction *code = decoded_.data();
    uint64_t done = 0;
    // The pc lives in a local across the loop; invalid instructions
    // surface through exec1's Op::INVALID case, so the only
    // per-iteration check is the bounds compare.
    uint32_t pc = pc_;
    try {
        while (done < max_instructions && !halted_) {
            // Aligned pc below textBase wraps to a huge index, so one
            // compare covers both bounds.
            const uint32_t index =
                (pc - assem::Layout::textBase) >> 2;
            fatalIf(index >= num_static, "pc out of text segment: 0x",
                    std::hex, pc);
            pc = exec1<Observed>(code[index], index, pc);
            ++done;
        }
    } catch (...) {
        // Leave the architectural pc at the faulting instruction,
        // exactly like the stepwise path.
        pc_ = pc;
        throw;
    }
    pc_ = pc;
    return done;
}

uint64_t
Machine::run(uint64_t max_instructions)
{
    if (halted_ || max_instructions == 0)
        return 0;
    if (backend_ == ExecBackend::BBCache) {
        BlockCache &cache = blockCache();
        return observers_.empty()
            ? cache.run<false>(max_instructions)
            : cache.run<true>(max_instructions);
    }
    return observers_.empty() ? runLoop<false>(max_instructions)
                              : runLoop<true>(max_instructions);
}

// The block cache executes syscalls, traps, and budget tails through
// the interpreter body; give it linkable instantiations.
template uint32_t Machine::exec1<false>(const isa::Instruction &,
                                        uint32_t, uint32_t);
template uint32_t Machine::exec1<true>(const isa::Instruction &,
                                       uint32_t, uint32_t);

RunResult
runToHalt(const assem::Program &program, const std::string &input,
          uint64_t max_instructions,
          std::optional<ExecBackend> backend)
{
    Machine machine(program);
    if (backend)
        machine.setExecBackend(*backend);
    machine.setInput(input);
    machine.run(max_instructions);

    RunResult result;
    result.halted = machine.halted();
    result.exitCode = machine.exitCode();
    result.instructions = machine.instret();
    result.output = machine.output();
    return result;
}

} // namespace irep::sim
