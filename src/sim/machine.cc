#include "sim/machine.hh"

#include <algorithm>
#include <limits>

#include "isa/registers.hh"
#include "support/logging.hh"

namespace irep::sim
{

using isa::Instruction;
using isa::Op;

Machine::Machine(const assem::Program &program)
    : program_(program), pc_(program.entry),
      brk_(program.heapStart())
{
    decoded_.reserve(program.text.size());
    for (uint32_t word : program.text)
        decoded_.push_back(isa::decode(word));

    if (!program.data.empty())
        mem_.writeBlock(assem::Layout::dataBase, program.data.data(),
                        uint32_t(program.data.size()));

    regs_[isa::regSP] = assem::Layout::stackTop;
    regs_[isa::regGP] = assem::Layout::gpValue;
}

void
Machine::setInput(std::string bytes)
{
    input_ = std::move(bytes);
    inputPos_ = 0;
}

void
Machine::addObserver(Observer *observer)
{
    observers_.push_back(observer);
}

void
Machine::removeObserver(Observer *observer)
{
    observers_.erase(
        std::remove(observers_.begin(), observers_.end(), observer),
        observers_.end());
}

void
Machine::setReg(unsigned index, uint32_t value)
{
    if (index != isa::regZero)
        regs_[index] = value;
}

void
Machine::dispatchRetire(const InstrRecord &record)
{
    for (Observer *obs : observers_)
        obs->onRetire(record);
}

void
Machine::doSyscall(InstrRecord &record)
{
    SyscallRecord sys;
    sys.num = Syscall(regs_[isa::regV0]);
    sys.arg0 = regs_[isa::regA0];
    sys.arg1 = regs_[isa::regA1];

    // Expose the syscall's data inputs for repetition tracking.
    record.numSrcRegs = 2;
    record.srcVal[0] = regs_[isa::regV0];
    record.srcVal[1] = regs_[isa::regA0];

    switch (sys.num) {
      case Syscall::Exit:
        halted_ = true;
        exitCode_ = int(sys.arg0);
        sys.result = sys.arg0;
        break;
      case Syscall::Read: {
        const uint32_t want = sys.arg1;
        const uint32_t avail = uint32_t(input_.size() - inputPos_);
        const uint32_t n = std::min(want, avail);
        if (n)
            mem_.writeBlock(sys.arg0, input_.data() + inputPos_, n);
        inputPos_ += n;
        sys.result = n;
        sys.writtenAddr = sys.arg0;
        sys.writtenLen = n;
        regs_[isa::regV0] = n;
        break;
      }
      case Syscall::Write: {
        const uint32_t n = sys.arg1;
        std::string buf(n, '\0');
        if (n)
            mem_.readBlock(sys.arg0, buf.data(), n);
        output_ += buf;
        sys.result = n;
        regs_[isa::regV0] = n;
        break;
      }
      case Syscall::Sbrk: {
        const uint32_t old = brk_;
        brk_ += sys.arg0;
        sys.result = old;
        regs_[isa::regV0] = old;
        break;
      }
      default:
        fatal("unknown syscall ", uint32_t(sys.num), " at pc 0x",
              std::hex, pc_);
    }

    for (Observer *obs : observers_)
        obs->onSyscall(sys);

    record.writesReg = sys.num != Syscall::Exit;
    record.destReg = isa::regV0;
    record.result = regs_[isa::regV0];
}

void
Machine::step()
{
    panicIf(halted_, "step() on a halted machine");

    const uint32_t text_base = assem::Layout::textBase;
    fatalIf(pc_ < text_base || pc_ >= text_base + program_.textBytes() ||
                (pc_ & 3),
            "pc out of text segment: 0x", std::hex, pc_);

    const uint32_t index = (pc_ - text_base) >> 2;
    const Instruction &inst = decoded_[index];
    fatalIf(!inst.valid(), "executing invalid instruction at 0x",
            std::hex, pc_);
    const isa::OpInfo &info = isa::opInfo(inst.op);

    InstrRecord rec;
    rec.seq = instret_;
    rec.pc = pc_;
    rec.staticIndex = index;
    rec.inst = &inst;
    rec.nextPc = pc_ + 4;

    // Gather data inputs. srcVal holds (rs, rt) values in order, or
    // HI/LO for mfhi/mflo.
    const uint32_t rs_val = regs_[inst.rs];
    const uint32_t rt_val = regs_[inst.rt];
    int n = 0;
    if (info.readsRs)
        rec.srcVal[n++] = rs_val;
    if (info.readsRt)
        rec.srcVal[n++] = rt_val;
    if (info.readsHi)
        rec.srcVal[n++] = hi_;
    if (info.readsLo)
        rec.srcVal[n++] = lo_;
    rec.numSrcRegs = uint8_t(n);

    uint32_t dest_val = 0;
    bool writes = false;

    auto branch = [&](bool taken) {
        rec.result = taken ? 1 : 0;
        if (taken)
            rec.nextPc = pc_ + 4 + (uint32_t(inst.imm) << 2);
    };

    switch (inst.op) {
      case Op::SLL:
        dest_val = rt_val << inst.shamt;
        writes = true;
        break;
      case Op::SRL:
        dest_val = rt_val >> inst.shamt;
        writes = true;
        break;
      case Op::SRA:
        dest_val = uint32_t(int32_t(rt_val) >> inst.shamt);
        writes = true;
        break;
      case Op::SLLV:
        dest_val = rt_val << (rs_val & 31);
        writes = true;
        break;
      case Op::SRLV:
        dest_val = rt_val >> (rs_val & 31);
        writes = true;
        break;
      case Op::SRAV:
        dest_val = uint32_t(int32_t(rt_val) >> (rs_val & 31));
        writes = true;
        break;
      case Op::JR:
        fatalIf(rs_val & 3, "jr to misaligned address 0x", std::hex,
                rs_val);
        rec.nextPc = rs_val;
        rec.result = rs_val;
        break;
      case Op::JALR:
        fatalIf(rs_val & 3, "jalr to misaligned address 0x", std::hex,
                rs_val);
        dest_val = pc_ + 4;
        writes = true;
        rec.nextPc = rs_val;
        rec.result = (uint64_t(rs_val) << 32) | dest_val;
        break;
      case Op::SYSCALL:
        doSyscall(rec);
        break;
      case Op::BREAK:
        fatal("break instruction at pc 0x", std::hex, pc_);
      case Op::MFHI:
        dest_val = hi_;
        writes = true;
        break;
      case Op::MTHI:
        hi_ = rs_val;
        rec.result = rs_val;
        break;
      case Op::MFLO:
        dest_val = lo_;
        writes = true;
        break;
      case Op::MTLO:
        lo_ = rs_val;
        rec.result = rs_val;
        break;
      case Op::MULT: {
        const int64_t p = int64_t(int32_t(rs_val)) * int32_t(rt_val);
        hi_ = uint32_t(uint64_t(p) >> 32);
        lo_ = uint32_t(uint64_t(p));
        rec.result = uint64_t(p);
        break;
      }
      case Op::MULTU: {
        const uint64_t p = uint64_t(rs_val) * rt_val;
        hi_ = uint32_t(p >> 32);
        lo_ = uint32_t(p);
        rec.result = p;
        break;
      }
      case Op::DIV: {
        const int32_t a = int32_t(rs_val), b = int32_t(rt_val);
        if (b == 0) {
            lo_ = 0;
            hi_ = 0;
        } else if (a == std::numeric_limits<int32_t>::min() && b == -1) {
            lo_ = uint32_t(a);
            hi_ = 0;
        } else {
            lo_ = uint32_t(a / b);
            hi_ = uint32_t(a % b);
        }
        rec.result = (uint64_t(hi_) << 32) | lo_;
        break;
      }
      case Op::DIVU: {
        if (rt_val == 0) {
            lo_ = 0;
            hi_ = 0;
        } else {
            lo_ = rs_val / rt_val;
            hi_ = rs_val % rt_val;
        }
        rec.result = (uint64_t(hi_) << 32) | lo_;
        break;
      }
      case Op::ADD:
      case Op::ADDU:
        dest_val = rs_val + rt_val;
        writes = true;
        break;
      case Op::SUB:
      case Op::SUBU:
        dest_val = rs_val - rt_val;
        writes = true;
        break;
      case Op::AND:
        dest_val = rs_val & rt_val;
        writes = true;
        break;
      case Op::OR:
        dest_val = rs_val | rt_val;
        writes = true;
        break;
      case Op::XOR:
        dest_val = rs_val ^ rt_val;
        writes = true;
        break;
      case Op::NOR:
        dest_val = ~(rs_val | rt_val);
        writes = true;
        break;
      case Op::SLT:
        dest_val = int32_t(rs_val) < int32_t(rt_val) ? 1 : 0;
        writes = true;
        break;
      case Op::SLTU:
        dest_val = rs_val < rt_val ? 1 : 0;
        writes = true;
        break;
      case Op::BLTZ:
        branch(int32_t(rs_val) < 0);
        break;
      case Op::BGEZ:
        branch(int32_t(rs_val) >= 0);
        break;
      case Op::J:
        rec.nextPc = ((pc_ + 4) & 0xf0000000u) | (inst.target << 2);
        rec.result = rec.nextPc;
        break;
      case Op::JAL:
        dest_val = pc_ + 4;
        writes = true;
        rec.nextPc = ((pc_ + 4) & 0xf0000000u) | (inst.target << 2);
        rec.result = dest_val;
        break;
      case Op::BEQ:
        branch(rs_val == rt_val);
        break;
      case Op::BNE:
        branch(rs_val != rt_val);
        break;
      case Op::BLEZ:
        branch(int32_t(rs_val) <= 0);
        break;
      case Op::BGTZ:
        branch(int32_t(rs_val) > 0);
        break;
      case Op::ADDI:
      case Op::ADDIU:
        dest_val = rs_val + uint32_t(inst.imm);
        writes = true;
        break;
      case Op::SLTI:
        dest_val = int32_t(rs_val) < inst.imm ? 1 : 0;
        writes = true;
        break;
      case Op::SLTIU:
        dest_val = rs_val < uint32_t(inst.imm) ? 1 : 0;
        writes = true;
        break;
      case Op::ANDI:
        dest_val = rs_val & uint32_t(inst.imm);
        writes = true;
        break;
      case Op::ORI:
        dest_val = rs_val | uint32_t(inst.imm);
        writes = true;
        break;
      case Op::XORI:
        dest_val = rs_val ^ uint32_t(inst.imm);
        writes = true;
        break;
      case Op::LUI:
        dest_val = uint32_t(inst.imm) << 16;
        writes = true;
        break;
      case Op::LB:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        dest_val = uint32_t(int32_t(int8_t(mem_.read8(rec.memAddr))));
        writes = true;
        break;
      case Op::LBU:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        dest_val = mem_.read8(rec.memAddr);
        writes = true;
        break;
      case Op::LH:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        dest_val = uint32_t(int32_t(int16_t(mem_.read16(rec.memAddr))));
        writes = true;
        break;
      case Op::LHU:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        dest_val = mem_.read16(rec.memAddr);
        writes = true;
        break;
      case Op::LW:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        dest_val = mem_.read32(rec.memAddr);
        writes = true;
        break;
      case Op::SB:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        mem_.write8(rec.memAddr, uint8_t(rt_val));
        rec.result = uint8_t(rt_val);
        break;
      case Op::SH:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        mem_.write16(rec.memAddr, uint16_t(rt_val));
        rec.result = uint16_t(rt_val);
        break;
      case Op::SW:
        rec.memAddr = rs_val + uint32_t(inst.imm);
        rec.isMemAccess = true;
        mem_.write32(rec.memAddr, rt_val);
        rec.result = rt_val;
        break;
      default:
        panic("unhandled op in step()");
    }

    if (writes) {
        const int dest = inst.destReg();
        panicIf(dest < 0, "writes with no destination");
        setReg(unsigned(dest), dest_val);
        rec.writesReg = true;
        rec.destReg = uint8_t(dest);
        if (inst.op != Op::JALR)
            rec.result = regs_[dest];
    }

    pc_ = rec.nextPc;
    ++instret_;
    dispatchRetire(rec);
}

uint64_t
Machine::run(uint64_t max_instructions)
{
    uint64_t done = 0;
    while (done < max_instructions && !halted_) {
        step();
        ++done;
    }
    return done;
}

} // namespace irep::sim
