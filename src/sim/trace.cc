#include "sim/trace.hh"

#include <cstdio>

#include "support/json.hh"
#include "support/logging.hh"
#include "support/table.hh"

namespace irep::sim
{

RetireTracer::RetireTracer(std::ostream &out,
                           const TraceConfig &config)
    : out_(out), config_(config)
{
    fatalIf(config.sampleInterval == 0,
            "trace sample interval must be positive");
    fatalIf(config.filterPc && config.pcLo > config.pcHi,
            "trace pc filter range is empty");
}

void
RetireTracer::onRetire(const InstrRecord &rec)
{
    if (config_.filterPc &&
        (rec.pc < config_.pcLo || rec.pc > config_.pcHi)) {
        return;
    }
    const bool emit = observed_ % config_.sampleInterval == 0;
    ++observed_;
    if (!emit)
        return;
    ++emitted_;
    if (config_.format == TraceConfig::Format::Jsonl)
        emitJsonl(rec);
    else
        emitText(rec);
}

void
RetireTracer::emitText(const InstrRecord &rec)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%10llu  %08x  %-28s",
                  (unsigned long long)rec.seq, rec.pc,
                  isa::disassemble(*rec.inst, rec.pc).c_str());
    out_ << buf;
    if (rec.isMemAccess) {
        std::snprintf(buf, sizeof(buf), "  @%08x", rec.memAddr);
        out_ << buf;
    }
    std::snprintf(buf, sizeof(buf), "  = %llx",
                  (unsigned long long)rec.result);
    out_ << buf << '\n';
}

void
RetireTracer::emitJsonl(const InstrRecord &rec)
{
    json::Writer w(out_, /*pretty=*/false);
    w.beginObject();
    w.field("seq", rec.seq);
    w.field("pc", uint64_t(rec.pc));
    w.field("asm", isa::disassemble(*rec.inst, rec.pc));
    if (rec.numSrcRegs) {
        w.key("src");
        w.beginArray();
        for (int i = 0; i < rec.numSrcRegs; ++i)
            w.value(uint64_t(rec.srcVal[i]));
        w.endArray();
    }
    if (rec.isMemAccess)
        w.field("addr", uint64_t(rec.memAddr));
    w.field("result", rec.result);
    w.endObject();
    out_ << '\n';
}

ProgressMeter::ProgressMeter(uint64_t interval, std::ostream &out)
    : interval_(interval), out_(out),
      lastBeat_(std::chrono::steady_clock::now())
{
    fatalIf(interval == 0, "progress interval must be positive");
}

void
ProgressMeter::onRetire(const InstrRecord &)
{
    ++total_;
    if (++sinceBeat_ < interval_)
        return;

    const auto now = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(now - lastBeat_).count();
    const double mips = seconds > 0.0
        ? double(sinceBeat_) / seconds / 1e6 : 0.0;

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", mips);
    out_ << "irep: [" << phase_ << "] "
         << TextTable::count(total_) << " instret, " << buf
         << " MIPS\n";
    out_.flush();

    sinceBeat_ = 0;
    lastBeat_ = now;
    ++beats_;
}

} // namespace irep::sim
