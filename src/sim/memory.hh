/**
 * @file
 * Sparse, paged flat memory for the functional simulator. Pages are
 * allocated on first touch and zero-filled, so the large gaps between
 * text, data, heap, and stack cost nothing.
 *
 * Translation is a flat page table: one pointer slot per possible
 * 64 KiB page of the 32-bit address space (512 KiB of slots). Hot
 * accesses are a shift, an index, and a null check — no hashing —
 * and the narrow read/write entry points are inline. The loader pins
 * the data and stack segments up front so steady-state execution
 * never takes the allocation branch.
 */

#ifndef IREP_SIM_MEMORY_HH
#define IREP_SIM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "support/logging.hh"

namespace irep::sim
{

/** Byte-addressed sparse memory with 64 KiB pages. */
class Memory
{
  public:
    static constexpr unsigned pageBits = 16;
    static constexpr uint32_t pageSize = 1u << pageBits;
    /** Page-table slots covering the whole 32-bit address space. */
    static constexpr uint32_t numPageSlots = 1u << (32 - pageBits);

    Memory() : table_(numPageSlots) {}

    uint8_t
    read8(uint32_t addr) const
    {
        return *bytePtr(addr);
    }

    /** addr must be 2-aligned. */
    uint16_t
    read16(uint32_t addr) const
    {
        fatalIf(addr & 1, "misaligned 16-bit read at 0x",
                std::hex, addr);
        uint16_t v;
        std::memcpy(&v, bytePtr(addr), 2);
        return v;
    }

    /** addr must be 4-aligned. */
    uint32_t
    read32(uint32_t addr) const
    {
        fatalIf(addr & 3, "misaligned 32-bit read at 0x",
                std::hex, addr);
        uint32_t v;
        std::memcpy(&v, bytePtr(addr), 4);
        return v;
    }

    void
    write8(uint32_t addr, uint8_t value)
    {
        *bytePtr(addr) = value;
    }

    void
    write16(uint32_t addr, uint16_t value)
    {
        fatalIf(addr & 1, "misaligned 16-bit write at 0x",
                std::hex, addr);
        std::memcpy(bytePtr(addr), &value, 2);
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        fatalIf(addr & 3, "misaligned 32-bit write at 0x",
                std::hex, addr);
        std::memcpy(bytePtr(addr), &value, 4);
    }

    /** Bulk copy into memory (used by the loader and syscalls). */
    void writeBlock(uint32_t addr, const void *src, uint32_t len);

    /** Bulk copy out of memory. */
    void readBlock(uint32_t addr, void *dst, uint32_t len) const;

    /** Pre-allocate every page overlapping [addr, addr + len), so
     *  later accesses to the segment skip the allocation branch. */
    void pin(uint32_t addr, uint32_t len);

    /** Number of currently allocated pages (for tests/stats). */
    size_t numPages() const { return allocated_; }

    /** Allocated page numbers (addr >> pageBits), ascending — lets
     *  tests compare two memories without touching new pages. */
    std::vector<uint32_t> touchedPages() const;

  private:
    struct Page
    {
        uint8_t bytes[pageSize] = {};
    };

    /**
     * Pointer to the byte backing @p addr. Reads of untouched memory
     * lazily allocate a zero page (hence const + mutable state) so
     * const read paths stay simple.
     */
    uint8_t *
    bytePtr(uint32_t addr) const
    {
        Page *page = table_[addr >> pageBits].get();
        if (!page)
            page = allocatePage(addr >> pageBits);
        return page->bytes + (addr & (pageSize - 1));
    }

    Page *allocatePage(uint32_t key) const;

    mutable std::vector<std::unique_ptr<Page>> table_;
    mutable size_t allocated_ = 0;
};

} // namespace irep::sim

#endif // IREP_SIM_MEMORY_HH
