/**
 * @file
 * Sparse, paged flat memory for the functional simulator. Pages are
 * allocated on first touch and zero-filled, so the large gaps between
 * text, data, heap, and stack cost nothing.
 *
 * Translation is a flat page table: one pointer slot per possible
 * 64 KiB page of the 32-bit address space (512 KiB of slots). Hot
 * accesses are a shift, an index, and a null check — no hashing —
 * and the narrow read/write entry points are inline. The loader pins
 * the data and stack segments up front so steady-state execution
 * never takes the allocation branch.
 */

#ifndef IREP_SIM_MEMORY_HH
#define IREP_SIM_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "support/logging.hh"

namespace irep::sim
{

/** Byte-addressed sparse memory with 64 KiB pages. */
class Memory
{
  public:
    static constexpr unsigned pageBits = 16;
    static constexpr uint32_t pageSize = 1u << pageBits;
    /** Page-table slots covering the whole 32-bit address space. */
    static constexpr uint32_t numPageSlots = 1u << (32 - pageBits);

    Memory() : table_(numPageSlots) {}

    uint8_t
    read8(uint32_t addr) const
    {
        return *bytePtr(addr);
    }

    /** addr must be 2-aligned. */
    uint16_t
    read16(uint32_t addr) const
    {
        fatalIf(addr & 1, "misaligned 16-bit read at 0x",
                std::hex, addr);
        uint16_t v;
        std::memcpy(&v, bytePtr(addr), 2);
        return v;
    }

    /** addr must be 4-aligned. */
    uint32_t
    read32(uint32_t addr) const
    {
        fatalIf(addr & 3, "misaligned 32-bit read at 0x",
                std::hex, addr);
        uint32_t v;
        std::memcpy(&v, bytePtr(addr), 4);
        return v;
    }

    void
    write8(uint32_t addr, uint8_t value)
    {
        noteStore(addr);
        *bytePtr(addr) = value;
    }

    void
    write16(uint32_t addr, uint16_t value)
    {
        fatalIf(addr & 1, "misaligned 16-bit write at 0x",
                std::hex, addr);
        noteStore(addr);
        std::memcpy(bytePtr(addr), &value, 2);
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        fatalIf(addr & 3, "misaligned 32-bit write at 0x",
                std::hex, addr);
        noteStore(addr);
        std::memcpy(bytePtr(addr), &value, 4);
    }

    /** Bulk copy into memory (used by the loader and syscalls). */
    void writeBlock(uint32_t addr, const void *src, uint32_t len);

    /** Bulk copy out of memory. */
    void readBlock(uint32_t addr, void *dst, uint32_t len) const;

    /** Pre-allocate every page overlapping [addr, addr + len), so
     *  later accesses to the segment skip the allocation branch. */
    void pin(uint32_t addr, uint32_t len);

    /**
     * Watch [base, base + len) for stores: every write landing inside
     * the range bumps the containing page's generation counter. The
     * translation cache watches the text segment this way, so a store
     * into translated code (self-modifying code, or a Read syscall
     * landing in text) invalidates the affected blocks. One range;
     * len 0 disables. Unwatched stores cost a single compare.
     */
    void watchStores(uint32_t base, uint32_t len);

    /** Store generation of the watched page containing @p addr.
     *  @p addr must lie inside the watched range. */
    uint32_t
    storeGeneration(uint32_t addr) const
    {
        return storeGen_[(addr - watchBase_) >> pageBits];
    }

    /** Total stores that ever landed in the watched range. Zero means
     *  no generation can have moved, so consumers may skip per-page
     *  generation checks entirely — the common case for programs that
     *  never write their own text. */
    uint64_t watchedStoreCount() const { return watchedStores_; }

    /** Number of currently allocated pages (for tests/stats). */
    size_t numPages() const { return allocated_; }

    /** Allocated page numbers (addr >> pageBits), ascending — lets
     *  tests compare two memories without touching new pages. */
    std::vector<uint32_t> touchedPages() const;

  private:
    struct Page
    {
        uint8_t bytes[pageSize] = {};
    };

    /**
     * Pointer to the byte backing @p addr. Reads of untouched memory
     * lazily allocate a zero page (hence const + mutable state) so
     * const read paths stay simple.
     */
    uint8_t *
    bytePtr(uint32_t addr) const
    {
        Page *page = table_[addr >> pageBits].get();
        if (!page)
            page = allocatePage(addr >> pageBits);
        return page->bytes + (addr & (pageSize - 1));
    }

    Page *allocatePage(uint32_t key) const;

    /** Bump the generation of @p addr's page when it is watched.
     *  The unsigned wrap makes one compare cover both range ends
     *  (watchLen_ == 0 never matches). */
    void
    noteStore(uint32_t addr)
    {
        if (addr - watchBase_ < watchLen_) [[unlikely]] {
            ++storeGen_[(addr - watchBase_) >> pageBits];
            ++watchedStores_;
        }
    }

    /** Range form for writeBlock(): bump every watched page that
     *  [addr, addr + len) overlaps. */
    void noteStoreRange(uint32_t addr, uint32_t len);

    mutable std::vector<std::unique_ptr<Page>> table_;
    mutable size_t allocated_ = 0;

    uint32_t watchBase_ = 0;
    uint32_t watchLen_ = 0;
    uint64_t watchedStores_ = 0;
    std::vector<uint32_t> storeGen_;
};

} // namespace irep::sim

#endif // IREP_SIM_MEMORY_HH
