/**
 * @file
 * Sparse, paged flat memory for the functional simulator. Pages are
 * allocated on first touch and zero-filled, so the large gaps between
 * text, data, heap, and stack cost nothing.
 */

#ifndef IREP_SIM_MEMORY_HH
#define IREP_SIM_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace irep::sim
{

/** Byte-addressed sparse memory with 64 KiB pages. */
class Memory
{
  public:
    static constexpr unsigned pageBits = 16;
    static constexpr uint32_t pageSize = 1u << pageBits;

    uint8_t read8(uint32_t addr) const;
    uint16_t read16(uint32_t addr) const;   //!< addr must be 2-aligned
    uint32_t read32(uint32_t addr) const;   //!< addr must be 4-aligned

    void write8(uint32_t addr, uint8_t value);
    void write16(uint32_t addr, uint16_t value);
    void write32(uint32_t addr, uint32_t value);

    /** Bulk copy into memory (used by the loader and syscalls). */
    void writeBlock(uint32_t addr, const void *src, uint32_t len);

    /** Bulk copy out of memory. */
    void readBlock(uint32_t addr, void *dst, uint32_t len) const;

    /** Number of currently allocated pages (for tests/stats). */
    size_t numPages() const { return pages_.size(); }

  private:
    struct Page
    {
        uint8_t bytes[pageSize] = {};
    };

    uint8_t *pagePtr(uint32_t addr);
    const uint8_t *pagePtrConst(uint32_t addr) const;

    // mutable: reads of untouched memory lazily allocate a zero page so
    // that const read paths stay simple.
    mutable std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
};

} // namespace irep::sim

#endif // IREP_SIM_MEMORY_HH
