#include "sim/memory.hh"

#include <algorithm>

namespace irep::sim
{

Memory::Page *
Memory::allocatePage(uint32_t key) const
{
    table_[key] = std::make_unique<Page>();
    ++allocated_;
    return table_[key].get();
}

void
Memory::writeBlock(uint32_t addr, const void *src, uint32_t len)
{
    const auto *p = static_cast<const uint8_t *>(src);
    uint32_t done = 0;
    while (done < len) {
        const uint32_t in_page =
            pageSize - ((addr + done) & (pageSize - 1));
        const uint32_t chunk = std::min(in_page, len - done);
        std::memcpy(bytePtr(addr + done), p + done, chunk);
        done += chunk;
    }
}

void
Memory::readBlock(uint32_t addr, void *dst, uint32_t len) const
{
    auto *p = static_cast<uint8_t *>(dst);
    uint32_t done = 0;
    while (done < len) {
        const uint32_t in_page =
            pageSize - ((addr + done) & (pageSize - 1));
        const uint32_t chunk = std::min(in_page, len - done);
        std::memcpy(p + done, bytePtr(addr + done), chunk);
        done += chunk;
    }
}

void
Memory::pin(uint32_t addr, uint32_t len)
{
    if (len == 0)
        return;
    const uint32_t first = addr >> pageBits;
    const uint32_t last = (addr + (len - 1)) >> pageBits;
    for (uint32_t key = first; key <= last; ++key) {
        if (!table_[key])
            allocatePage(key);
    }
}

std::vector<uint32_t>
Memory::touchedPages() const
{
    std::vector<uint32_t> keys;
    keys.reserve(allocated_);
    for (uint32_t key = 0; key < numPageSlots; ++key) {
        if (table_[key])
            keys.push_back(key);
    }
    return keys;
}

} // namespace irep::sim
