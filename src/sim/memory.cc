#include "sim/memory.hh"

#include <cstring>

#include "support/logging.hh"

namespace irep::sim
{

uint8_t *
Memory::pagePtr(uint32_t addr)
{
    const uint32_t key = addr >> pageBits;
    auto &page = pages_[key];
    if (!page)
        page = std::make_unique<Page>();
    return page->bytes + (addr & (pageSize - 1));
}

const uint8_t *
Memory::pagePtrConst(uint32_t addr) const
{
    const uint32_t key = addr >> pageBits;
    auto &page = pages_[key];
    if (!page)
        page = std::make_unique<Page>();
    return page->bytes + (addr & (pageSize - 1));
}

uint8_t
Memory::read8(uint32_t addr) const
{
    return *pagePtrConst(addr);
}

uint16_t
Memory::read16(uint32_t addr) const
{
    fatalIf(addr & 1, "misaligned 16-bit read at 0x",
            std::hex, addr);
    uint16_t v;
    std::memcpy(&v, pagePtrConst(addr), 2);
    return v;
}

uint32_t
Memory::read32(uint32_t addr) const
{
    fatalIf(addr & 3, "misaligned 32-bit read at 0x",
            std::hex, addr);
    uint32_t v;
    std::memcpy(&v, pagePtrConst(addr), 4);
    return v;
}

void
Memory::write8(uint32_t addr, uint8_t value)
{
    *pagePtr(addr) = value;
}

void
Memory::write16(uint32_t addr, uint16_t value)
{
    fatalIf(addr & 1, "misaligned 16-bit write at 0x",
            std::hex, addr);
    std::memcpy(pagePtr(addr), &value, 2);
}

void
Memory::write32(uint32_t addr, uint32_t value)
{
    fatalIf(addr & 3, "misaligned 32-bit write at 0x",
            std::hex, addr);
    std::memcpy(pagePtr(addr), &value, 4);
}

void
Memory::writeBlock(uint32_t addr, const void *src, uint32_t len)
{
    const auto *p = static_cast<const uint8_t *>(src);
    uint32_t done = 0;
    while (done < len) {
        const uint32_t in_page =
            pageSize - ((addr + done) & (pageSize - 1));
        const uint32_t chunk = std::min(in_page, len - done);
        std::memcpy(pagePtr(addr + done), p + done, chunk);
        done += chunk;
    }
}

void
Memory::readBlock(uint32_t addr, void *dst, uint32_t len) const
{
    auto *p = static_cast<uint8_t *>(dst);
    uint32_t done = 0;
    while (done < len) {
        const uint32_t in_page =
            pageSize - ((addr + done) & (pageSize - 1));
        const uint32_t chunk = std::min(in_page, len - done);
        std::memcpy(p + done, pagePtrConst(addr + done), chunk);
        done += chunk;
    }
}

} // namespace irep::sim
