#include "sim/memory.hh"

#include <algorithm>

namespace irep::sim
{

Memory::Page *
Memory::allocatePage(uint32_t key) const
{
    table_[key] = std::make_unique<Page>();
    ++allocated_;
    return table_[key].get();
}

void
Memory::watchStores(uint32_t base, uint32_t len)
{
    watchBase_ = base;
    watchLen_ = len;
    storeGen_.assign(
        len ? size_t(((uint64_t(len) - 1) >> pageBits) + 1) : 0, 0);
}

void
Memory::noteStoreRange(uint32_t addr, uint32_t len)
{
    if (len == 0 || watchLen_ == 0)
        return;
    // Clip [addr, addr + len) against the watched range, then bump
    // every page the intersection touches.
    const uint64_t lo =
        std::max(uint64_t(addr), uint64_t(watchBase_));
    const uint64_t hi = std::min(uint64_t(addr) + len,
                                 uint64_t(watchBase_) + watchLen_);
    if (lo >= hi)
        return;
    const uint32_t first = uint32_t(lo - watchBase_) >> pageBits;
    const uint32_t last = uint32_t(hi - 1 - watchBase_) >> pageBits;
    for (uint32_t page = first; page <= last; ++page)
        ++storeGen_[page];
    ++watchedStores_;
}

void
Memory::writeBlock(uint32_t addr, const void *src, uint32_t len)
{
    noteStoreRange(addr, len);
    const auto *p = static_cast<const uint8_t *>(src);
    uint32_t done = 0;
    while (done < len) {
        const uint32_t in_page =
            pageSize - ((addr + done) & (pageSize - 1));
        const uint32_t chunk = std::min(in_page, len - done);
        std::memcpy(bytePtr(addr + done), p + done, chunk);
        done += chunk;
    }
}

void
Memory::readBlock(uint32_t addr, void *dst, uint32_t len) const
{
    auto *p = static_cast<uint8_t *>(dst);
    uint32_t done = 0;
    while (done < len) {
        const uint32_t in_page =
            pageSize - ((addr + done) & (pageSize - 1));
        const uint32_t chunk = std::min(in_page, len - done);
        std::memcpy(p + done, bytePtr(addr + done), chunk);
        done += chunk;
    }
}

void
Memory::pin(uint32_t addr, uint32_t len)
{
    if (len == 0)
        return;
    const uint32_t first = addr >> pageBits;
    const uint32_t last = (addr + (len - 1)) >> pageBits;
    for (uint32_t key = first; key <= last; ++key) {
        if (!table_[key])
            allocatePage(key);
    }
}

std::vector<uint32_t>
Memory::touchedPages() const
{
    std::vector<uint32_t> keys;
    keys.reserve(allocated_);
    for (uint32_t key = 0; key < numPageSlots; ++key) {
        if (table_[key])
            keys.push_back(key);
    }
    return keys;
}

} // namespace irep::sim
