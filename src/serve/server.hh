/**
 * @file
 * The `irep serve` daemon: an acceptor thread feeding a worker pool
 * (support/parallel.hh), every worker answering one connection at a
 * time through the wire layer (http.hh) and the analysis service
 * (service.hh).
 *
 * Endpoints:
 *   GET  /health          liveness: `{"status": "ok"}`
 *   GET  /version         the writeVersionDoc() document
 *   GET  /metrics         request/simulation/cache counters, plus the
 *                         `irep-prof-1` summary when the profiler is on
 *   POST /analyze         body `{"workload": ..., "skip"?, "window"?,
 *                         "window_jobs"?, "from_trace"?}` -> the
 *                         irep-stats-1 document, byte-identical to the
 *                         equivalent `irep bench ... --stats-json -`
 *   POST /analyze/trace?workload=N   body = raw trace bytes -> same
 *   POST /batch           body `{"requests": [...]}` -> every result,
 *                         in request order
 *   POST /shutdown        graceful stop: in-flight requests drain
 *
 * Lifecycle: start() spawns the threads and returns; stop() drains
 * and joins (idempotent). A client's /shutdown and the CLI's signal
 * handler both just call requestStop(); whoever owns the server
 * notices via stopRequested() and calls stop(). The listener binds
 * loopback only.
 */

#ifndef IREP_SERVE_SERVER_HH
#define IREP_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/http.hh"
#include "support/parallel.hh"

namespace irep::serve
{

struct ServerConfig
{
    uint16_t port = 0;      //!< 0 = ephemeral (tests); port() tells
    unsigned threads = 0;   //!< request workers; 0 = defaultJobs()
};

/** Monotonic request-handling counters, exposed at /metrics. */
struct ServerCounters
{
    std::atomic<uint64_t> requests{0};      //!< HTTP requests parsed
    std::atomic<uint64_t> analyses{0};      //!< analysis runs served
    std::atomic<uint64_t> simulations{0};   //!< ran the simulator
    std::atomic<uint64_t> cacheHits{0};     //!< replayed a cache entry
    std::atomic<uint64_t> recorded{0};      //!< published a new entry
    std::atomic<uint64_t> errors{0};        //!< 4xx/5xx responses
    std::atomic<uint64_t> inFlight{0};      //!< being handled now
};

class Server
{
  public:
    explicit Server(const ServerConfig &config);

    /** Calls stop(). */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port — available immediately after construction. */
    uint16_t port() const { return listener_.port(); }

    /** Spawn the acceptor and worker pool. */
    void start();

    /** Ask the server to stop; returns immediately. Thread- and
     *  signal-context-safe for the flag itself (the cv notify happens
     *  on the caller's thread, so call it from normal context or via
     *  the CLI's sigtimedwait loop, not from a raw handler). */
    void requestStop();

    /** Has /shutdown or requestStop() been seen? */
    bool stopRequested() const { return stopRequested_.load(); }

    /** Block until stopRequested() (the CLI's foreground wait). */
    void waitForStop();

    /** Stop accepting, drain in-flight requests, join every thread.
     *  Idempotent. */
    void stop();

    const ServerCounters &counters() const { return counters_; }

    /** Serve one already-parsed request (tests exercise routing
     *  without sockets). */
    HttpResponse route(const HttpRequest &request);

  private:
    void acceptLoop();
    void handleConnection(int fd);
    HttpResponse handleAnalyze(const HttpRequest &request);
    HttpResponse handleAnalyzeTrace(const HttpRequest &request);
    HttpResponse handleBatch(const HttpRequest &request);
    HttpResponse metricsResponse();

    ServerConfig config_;
    Listener listener_;
    std::unique_ptr<parallel::ThreadPool> pool_;
    std::thread acceptor_;
    bool started_ = false;
    bool stopped_ = false;

    std::atomic<bool> stopRequested_{false};
    std::mutex stopMutex_;
    std::condition_variable stopCv_;

    ServerCounters counters_;
    std::atomic<uint64_t> uploadSeq_{0};    //!< tmp-file uniquifier
};

} // namespace irep::serve

#endif // IREP_SERVE_SERVER_HH
