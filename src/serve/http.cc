#include "serve/http.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/parse.hh"

namespace irep::serve
{
namespace
{

// Anyone can connect to the loopback port, so the parser treats every
// byte as hostile: hard caps on header and body size, strict framing,
// and errors that close the connection instead of trusting a retry.
constexpr size_t maxHeaderBytes = 64 * 1024;
constexpr size_t maxBodyBytes = 256 * 1024 * 1024;

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 202: return "Accepted";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

bool
sendAll(int fd, const char *data, size_t size)
{
    while (size > 0) {
        // MSG_NOSIGNAL: a peer that closed early must surface as an
        // EPIPE return, never as a process-killing SIGPIPE.
        const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += sent;
        size -= size_t(sent);
    }
    return true;
}

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return char(std::tolower(c));
    });
    return s;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0, end = s.size();
    while (begin < end && std::isspace((unsigned char)s[begin]))
        ++begin;
    while (end > begin && std::isspace((unsigned char)s[end - 1]))
        --end;
    return s.substr(begin, end - begin);
}

/** Parse the head (request line + headers) already split off the
 *  stream. @return false with @p error on malformed syntax. */
bool
parseHead(const std::string &head, HttpRequest &request,
          std::string &error)
{
    size_t lineEnd = head.find("\r\n");
    if (lineEnd == std::string::npos) {
        error = "malformed request line";
        return false;
    }
    const std::string requestLine = head.substr(0, lineEnd);
    const size_t sp1 = requestLine.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : requestLine.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        error = "malformed request line";
        return false;
    }
    request.method = requestLine.substr(0, sp1);
    std::string target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string protocol = requestLine.substr(sp2 + 1);
    if (protocol.rfind("HTTP/1.", 0) != 0) {
        error = "unsupported protocol '" + protocol + "'";
        return false;
    }
    if (request.method.empty() || target.empty() || target[0] != '/') {
        error = "malformed request target";
        return false;
    }
    const size_t qmark = target.find('?');
    if (qmark != std::string::npos) {
        request.query = target.substr(qmark + 1);
        target.resize(qmark);
    }
    request.path = target;

    size_t pos = lineEnd + 2;
    while (pos < head.size()) {
        lineEnd = head.find("\r\n", pos);
        if (lineEnd == std::string::npos)
            lineEnd = head.size();
        const std::string line = head.substr(pos, lineEnd - pos);
        pos = lineEnd + 2;
        if (line.empty())
            continue;
        const size_t colon = line.find(':');
        if (colon == std::string::npos) {
            error = "malformed header line";
            return false;
        }
        request.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }
    return true;
}

} // namespace

std::string
HttpRequest::queryParam(const std::string &name) const
{
    size_t pos = 0;
    while (pos < query.size()) {
        size_t end = query.find('&', pos);
        if (end == std::string::npos)
            end = query.size();
        const std::string pair = query.substr(pos, end - pos);
        pos = end + 1;
        const size_t eq = pair.find('=');
        if (eq != std::string::npos && pair.substr(0, eq) == name)
            return pair.substr(eq + 1);
    }
    return "";
}

Listener::Listener(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, "serve: cannot create socket: ",
            std::strerror(errno));

    // The daemon restarts often during development; without
    // SO_REUSEADDR every restart would trip over its predecessor's
    // TIME_WAIT sockets.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("serve: cannot bind 127.0.0.1:", port, ": ",
              std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("serve: cannot listen on port ", port, ": ",
              std::strerror(err));
    }

    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, (sockaddr *)&bound, &len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = port;
    fd_.store(fd);
}

Listener::~Listener()
{
    close();
}

int
Listener::accept()
{
    for (;;) {
        const int fd = fd_.load();
        if (fd < 0)
            return -1;
        const int conn = ::accept(fd, nullptr, nullptr);
        if (conn >= 0)
            return conn;
        if (errno == EINTR)
            continue;
        // close() shut the socket down under us: clean stop.
        return -1;
    }
}

void
Listener::close()
{
    const int fd = fd_.exchange(-1);
    if (fd >= 0) {
        // shutdown() first so a concurrently blocked accept() wakes
        // immediately instead of waiting for the next connection.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

bool
readRequest(int fd, HttpRequest &request, std::string &error)
{
    std::string buffer;
    size_t headEnd;
    char chunk[8192];
    for (;;) {
        headEnd = buffer.find("\r\n\r\n");
        if (headEnd != std::string::npos)
            break;
        if (buffer.size() > maxHeaderBytes) {
            error = "request head exceeds " +
                    std::to_string(maxHeaderBytes) + " bytes";
            return false;
        }
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0) {
            error = "peer closed before a full request arrived";
            return false;
        }
        buffer.append(chunk, size_t(got));
    }

    if (!parseHead(buffer.substr(0, headEnd + 2), request, error))
        return false;

    uint64_t contentLength = 0;
    const auto it = request.headers.find("content-length");
    if (it != request.headers.end()) {
        try {
            contentLength = parse::parseU64("Content-Length",
                                            it->second);
        } catch (const FatalError &e) {
            error = e.what();
            return false;
        }
    }
    if (contentLength > maxBodyBytes) {
        error = "request body exceeds " +
                std::to_string(maxBodyBytes) + " bytes";
        return false;
    }

    request.body = buffer.substr(headEnd + 4);
    while (request.body.size() < contentLength) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0) {
            error = "peer closed mid-body";
            return false;
        }
        request.body.append(chunk, size_t(got));
    }
    if (request.body.size() > contentLength) {
        // Pipelined second request: unsupported, and silently reading
        // it as body bytes would corrupt both requests.
        error = "request body exceeds its Content-Length";
        return false;
    }
    return true;
}

void
writeResponse(int fd, const HttpResponse &response)
{
    std::string head = "HTTP/1.1 " + std::to_string(response.status) +
                       " " + statusText(response.status) + "\r\n" +
                       "Content-Type: " + response.contentType +
                       "\r\n" + "Content-Length: " +
                       std::to_string(response.body.size()) + "\r\n" +
                       "Connection: close\r\n\r\n";
    if (sendAll(fd, head.data(), head.size()))
        sendAll(fd, response.body.data(), response.body.size());
}

HttpResponse
httpRequest(uint16_t port, const std::string &method,
            const std::string &target, const std::string &body)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, "client: cannot create socket: ",
            std::strerror(errno));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        fatal("client: cannot connect to 127.0.0.1:", port, ": ",
              std::strerror(err));
    }

    const std::string head = method + " " + target + " HTTP/1.1\r\n" +
                             "Host: 127.0.0.1\r\n" +
                             "Content-Length: " +
                             std::to_string(body.size()) +
                             "\r\n\r\n";
    if (!sendAll(fd, head.data(), head.size()) ||
        !sendAll(fd, body.data(), body.size())) {
        const int err = errno;
        ::close(fd);
        fatal("client: send failed: ", std::strerror(err));
    }

    // Connection: close framing — read until EOF, then parse.
    std::string raw;
    char chunk[8192];
    for (;;) {
        const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            break;
        raw.append(chunk, size_t(got));
    }
    ::close(fd);

    const size_t headEnd = raw.find("\r\n\r\n");
    fatalIf(headEnd == std::string::npos,
            "client: malformed response from port ", port);
    const size_t statusAt = raw.find(' ');
    fatalIf(statusAt == std::string::npos || statusAt > headEnd,
            "client: malformed status line from port ", port);

    HttpResponse response;
    response.status =
        int(parse::parseU64("status", raw.substr(statusAt + 1, 3)));
    response.body = raw.substr(headEnd + 4);
    const std::string headLower = toLower(raw.substr(0, headEnd));
    const size_t ct = headLower.find("content-type:");
    if (ct != std::string::npos) {
        const size_t eol = raw.find("\r\n", ct);
        response.contentType =
            trim(raw.substr(ct + 13, eol - ct - 13));
    }
    return response;
}

} // namespace irep::serve
