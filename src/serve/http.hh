/**
 * @file
 * The daemon's wire layer: a deliberately minimal HTTP/1.1 subset
 * over POSIX sockets — enough for `irep serve` and its clients, with
 * no external dependency.
 *
 * Supported: one request per connection (`Connection: close` on every
 * response), request bodies sized by Content-Length, and
 * percent-free query strings. Not supported, by design: keep-alive,
 * chunked transfer, TLS, and multi-line headers — a curl/python
 * client speaks this subset without noticing, and the parser stays
 * small enough to audit.
 *
 * The listener binds the loopback interface only: the daemon serves
 * analysis results, not authentication, so it must never be reachable
 * off-host by default.
 */

#ifndef IREP_SERVE_HTTP_HH
#define IREP_SERVE_HTTP_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace irep::serve
{

/** One parsed request. Header names are lower-cased on parse. */
struct HttpRequest
{
    std::string method;     //!< "GET", "POST", ...
    std::string path;       //!< target up to '?', e.g. "/analyze"
    std::string query;      //!< raw text after '?', "" when absent
    std::string body;
    std::map<std::string, std::string> headers;

    /** The value of `name` in the query string ("" when absent);
     *  query syntax is `k=v&k=v` with no percent-decoding. */
    std::string queryParam(const std::string &name) const;
};

/** One response; writeResponse() adds the framing headers. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/** TCP listening socket bound to 127.0.0.1. */
class Listener
{
  public:
    /** Bind and listen; @p port 0 picks an ephemeral port. fatal()
     *  when the port is taken or the socket cannot be created. */
    explicit Listener(uint16_t port);
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** The bound port (the kernel's choice when 0 was requested). */
    uint16_t port() const { return port_; }

    /** Block for the next connection. @return a connected fd the
     *  caller owns, or -1 once close() has been called. */
    int accept();

    /** Stop accepting: wakes any blocked accept() with -1. Safe to
     *  call from another thread; idempotent. */
    void close();

  private:
    std::atomic<int> fd_{-1};
    uint16_t port_ = 0;
};

/**
 * Read and parse one request from @p fd.
 * @return false (with @p error set) on malformed input, oversized
 *         header/body, or a peer that hung up mid-request — never
 *         fatal: one bad client must not take the daemon down.
 */
bool readRequest(int fd, HttpRequest &request, std::string &error);

/** Serialize and send @p response (Content-Length framing,
 *  `Connection: close`). Send errors are swallowed: the peer may
 *  legitimately have gone away, and SIGPIPE is suppressed per-send
 *  with MSG_NOSIGNAL. */
void writeResponse(int fd, const HttpResponse &response);

/**
 * Minimal blocking client for tests and smoke scripts: one request
 * to 127.0.0.1:@p port, the parsed response back. fatal() when the
 * server cannot be reached or answers gibberish.
 */
HttpResponse httpRequest(uint16_t port, const std::string &method,
                         const std::string &target,
                         const std::string &body = "");

} // namespace irep::serve

#endif // IREP_SERVE_HTTP_HH
