#include "serve/service.hh"

#include <memory>
#include <sstream>

#include "support/logging.hh"
#include "support/prof.hh"
#include "support/stats.hh"
#include "support/version.hh"
#include "trace_io/cache.hh"
#include "trace_io/reader.hh"
#include "trace_io/writer.hh"
#include "workloads/workloads.hh"

namespace irep::serve
{

AnalysisRequest
parseAnalysisRequest(const json::Value &doc)
{
    fatalIf(!doc.isObject(), "request body must be a JSON object");
    AnalysisRequest request;
    for (const auto &[key, value] : doc.members()) {
        if (key == "workload") {
            request.workload = value.asString();
        } else if (key == "skip") {
            request.skip = value.asU64();
            request.skipSet = true;
        } else if (key == "window") {
            request.window = value.asU64();
            request.windowSet = true;
        } else if (key == "window_jobs") {
            request.windowJobs = unsigned(value.asU64());
        } else if (key == "analyses") {
            request.analyses = value.asString();
            fatalIf(request.analyses.empty(),
                    "analyses must be a non-empty analysis set");
        } else if (key == "from_trace") {
            request.fromTracePath = value.asString();
        } else {
            fatal("unknown request member '", key,
                  "' (expected workload/skip/window/window_jobs/"
                  "analyses/from_trace)");
        }
    }
    fatalIf(request.workload.empty(),
            "request must name a workload");
    fatalIf(request.windowSet && request.window == 0,
            "window must be positive");
    if (!request.analyses.empty()) {
        // Validate at parse time so a bad set is a 400 before any
        // machine is built; runAnalysis applies the same call again.
        core::PipelineConfig probe;
        std::string error;
        fatalIf(!core::applyAnalysisSet(request.analyses, probe,
                                        &error),
                error);
    }
    return request;
}

AnalysisOutcome
runAnalysis(const AnalysisRequest &request)
{
    prof::Span span("serve:analyze", "serve");
    const auto &w = workloads::workloadByName(request.workload);
    sim::Machine machine(workloads::buildProgram(w));
    machine.setInput(w.input);

    core::PipelineConfig config;
    config.skipInstructions = request.skip;
    config.windowInstructions = request.window;
    config.windowJobs = request.windowJobs;
    if (!request.analyses.empty()) {
        std::string error;
        fatalIf(!core::applyAnalysisSet(request.analyses, config,
                                        &error),
                error);
    }

    AnalysisOutcome outcome;

    // An explicit trace bypasses the cache: the client already knows
    // the exact stream it wants analyzed. The trace's skip/window are
    // adopted, and a conflicting explicit value is an error — same
    // contract as `irep bench --from-trace` (tools/irep_main.cc).
    std::unique_ptr<trace_io::TraceReader> reader;
    if (!request.fromTracePath.empty()) {
        reader = std::make_unique<trace_io::TraceReader>(
            request.fromTracePath);
        const trace_io::TraceHeader &h = reader->header();
        fatalIf(request.skipSet && request.skip != h.skip,
                "skip ", request.skip, " conflicts with '",
                request.fromTracePath, "' (recorded with skip ",
                h.skip, "); drop it to adopt the trace's value");
        fatalIf(request.windowSet && request.window != h.window,
                "window ", request.window, " conflicts with '",
                request.fromTracePath, "' (recorded with window ",
                h.window, "); drop it to adopt the trace's value");
        config.skipInstructions = h.skip;
        config.windowInstructions = h.window;
        reader->bind(machine, w.input);
    }

    core::AnalysisPipeline pipeline(machine, config);

    if (reader) {
        pipeline.runFromSource(*reader);
    } else {
        const std::string dir = trace_io::cacheDir();
        if (dir.empty()) {
            pipeline.run();
            outcome.simulated = true;
        } else {
            // Same probe -> claim -> re-probe protocol as
            // bench::runCachedEntry: one simulation per key, no
            // matter how many requests race on it.
            const uint64_t identity = trace_io::identityHash(
                machine.program(), w.input);
            const auto replayFrom =
                [&](trace_io::TraceReader &cached) {
                    cached.bind(machine, w.input);
                    pipeline.runFromSource(cached);
                    outcome.cacheHit = true;
                };
            if (auto cached = trace_io::findCached(
                    dir, w.name, identity, request.skip,
                    request.window)) {
                replayFrom(*cached);
            } else {
                const std::string path = trace_io::cachePath(
                    dir, w.name, identity, request.skip,
                    request.window);
                trace_io::RecordClaim claim(path);
                if (auto cached = trace_io::findCached(
                        dir, w.name, identity, request.skip,
                        request.window)) {
                    replayFrom(*cached);
                } else {
                    trace_io::TraceWriter writer(path, machine,
                                                 w.input,
                                                 request.skip,
                                                 request.window);
                    machine.addObserver(&writer);
                    pipeline.run();
                    machine.removeObserver(&writer);
                    writer.commit();
                    outcome.simulated = true;
                    outcome.recorded = true;
                }
            }
        }
    }

    // The response is the document `irep bench <workload>
    // --stats-json -` would write for the same config.
    std::ostringstream out;
    StatsDocSpec spec;
    spec.command = "bench";
    spec.target = request.workload;
    spec.workload = request.workload;
    writeStatsDoc(out, pipeline, spec);
    outcome.statsJson = out.str();
    return outcome;
}

void
writeStatsDoc(std::ostream &out,
              const core::AnalysisPipeline &pipeline,
              const StatsDocSpec &spec)
{
    json::Writer w(out);
    w.beginObject();
    w.field("schema", version::statsSchema);
    w.field("command", spec.command);
    w.field("target", spec.target);

    w.key("config");
    w.beginObject();
    w.field("skip", pipeline.config().skipInstructions);
    w.field("window", pipeline.config().windowInstructions);
    w.field("instance_cap",
            uint64_t(pipeline.config().instanceCap));
    if (!spec.workload.empty())
        w.field("workload", spec.workload);
    if (!spec.input.empty())
        w.field("input", spec.input);
    w.endObject();

    stats::Group root;
    pipeline.registerStats(root);
    w.key("stats");
    stats::dumpJson(root, w);

    if (spec.withProfile) {
        w.key("profile");
        prof::writeSummary(w);
    }

    w.endObject();
    out << '\n';
}

void
writeVersionDoc(json::Writer &w)
{
    w.beginObject();
    w.field("schema", "irep-version-1");
    w.field("build", version::buildId());

    w.key("schemas");
    w.beginObject();
    w.field("stats", version::statsSchema);
    w.field("bench", version::benchSchema);
    w.field("prof", version::profSchema);
    w.endObject();

    w.key("trace");
    w.beginObject();
    w.field("format", trace_io::formatVersion);
    w.field("min_read", trace_io::minReadVersion);
    w.key("codecs");
    w.beginArray();
    for (trace_io::Codec codec :
         {trace_io::Codec::Store, trace_io::Codec::IrepLz,
          trace_io::Codec::Zstd}) {
        if (trace_io::codecAvailable(codec))
            w.value(trace_io::codecName(codec));
    }
    w.endArray();
    w.endObject();

    w.key("features");
    w.beginArray();
    w.value("serve");
    w.value("trace-cache");
    w.value("window-sharding");
    w.value("bbcache");
    w.value("profiler");
    w.endArray();

    w.endObject();
}

} // namespace irep::serve
