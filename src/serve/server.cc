#include "serve/server.hh"

#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "serve/service.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/prof.hh"

namespace irep::serve
{
namespace
{

std::string
jsonError(const std::string &message)
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginObject();
    w.field("error", message);
    w.endObject();
    out << '\n';
    return out.str();
}

std::string
jsonStatus(const char *status)
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginObject();
    w.field("status", status);
    w.endObject();
    out << '\n';
    return out.str();
}

} // namespace

Server::Server(const ServerConfig &config)
    : config_(config), listener_(config.port)
{
    if (config_.threads == 0)
        config_.threads = parallel::defaultJobs();
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    panicIf(started_, "Server::start() called twice");
    started_ = true;
    pool_ = std::make_unique<parallel::ThreadPool>(config_.threads);
    acceptor_ = std::thread([this] { acceptLoop(); });
}

void
Server::requestStop()
{
    {
        std::lock_guard<std::mutex> lock(stopMutex_);
        stopRequested_.store(true);
    }
    stopCv_.notify_all();
}

void
Server::waitForStop()
{
    std::unique_lock<std::mutex> lock(stopMutex_);
    stopCv_.wait(lock, [this] { return stopRequested_.load(); });
}

void
Server::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    requestStop();
    // Order matters for a graceful drain: close the listener (no new
    // connections, acceptor unblocks), join the acceptor (no more
    // submissions), then stop the pool — which finishes every queued
    // and in-flight request before joining its workers.
    listener_.close();
    if (acceptor_.joinable())
        acceptor_.join();
    if (pool_)
        pool_->stop();
}

void
Server::acceptLoop()
{
    for (;;) {
        const int conn = listener_.accept();
        if (conn < 0)
            return;
        pool_->submit([this, conn] { handleConnection(conn); });
    }
}

void
Server::handleConnection(int fd)
{
    counters_.inFlight.fetch_add(1);
    HttpRequest request;
    std::string error;
    HttpResponse response;
    if (!readRequest(fd, request, error)) {
        counters_.errors.fetch_add(1);
        response.status = 400;
        response.body = jsonError(error);
    } else {
        counters_.requests.fetch_add(1);
        response = route(request);
    }
    writeResponse(fd, response);
    ::close(fd);
    counters_.inFlight.fetch_sub(1);
}

HttpResponse
Server::route(const HttpRequest &request)
{
    HttpResponse response;
    try {
        if (request.path == "/health" && request.method == "GET") {
            response.body = jsonStatus("ok");
        } else if (request.path == "/version" &&
                   request.method == "GET") {
            std::ostringstream out;
            json::Writer w(out);
            writeVersionDoc(w);
            out << '\n';
            response.body = out.str();
        } else if (request.path == "/metrics" &&
                   request.method == "GET") {
            response = metricsResponse();
        } else if (request.path == "/analyze" &&
                   request.method == "POST") {
            response = handleAnalyze(request);
        } else if (request.path == "/analyze/trace" &&
                   request.method == "POST") {
            response = handleAnalyzeTrace(request);
        } else if (request.path == "/batch" &&
                   request.method == "POST") {
            response = handleBatch(request);
        } else if (request.path == "/shutdown" &&
                   request.method == "POST") {
            requestStop();
            response.status = 202;
            response.body = jsonStatus("stopping");
        } else {
            response.status = 404;
            response.body = jsonError("no such endpoint: " +
                                      request.method + " " +
                                      request.path);
        }
    } catch (const FatalError &e) {
        // The request was wrong (unknown workload, bad JSON, key
        // conflict): the client's fault, the daemon keeps serving.
        response = HttpResponse();
        response.status = 400;
        response.body = jsonError(e.what());
    } catch (const std::exception &e) {
        response = HttpResponse();
        response.status = 500;
        response.body = jsonError(e.what());
    }
    if (response.status >= 400)
        counters_.errors.fetch_add(1);
    return response;
}

HttpResponse
Server::handleAnalyze(const HttpRequest &request)
{
    const AnalysisRequest parsed =
        parseAnalysisRequest(json::parse(request.body));
    const AnalysisOutcome outcome = runAnalysis(parsed);
    counters_.analyses.fetch_add(1);
    if (outcome.simulated)
        counters_.simulations.fetch_add(1);
    if (outcome.cacheHit)
        counters_.cacheHits.fetch_add(1);
    if (outcome.recorded)
        counters_.recorded.fetch_add(1);
    HttpResponse response;
    response.body = outcome.statsJson;
    return response;
}

HttpResponse
Server::handleAnalyzeTrace(const HttpRequest &request)
{
    const std::string workload = request.queryParam("workload");
    fatalIf(workload.empty(),
            "POST /analyze/trace needs ?workload=<name>");
    fatalIf(request.body.empty(), "trace upload body is empty");

    // Land the upload in a private temporary; the reader wants a
    // file, and the upload must never collide with the cache.
    namespace fs = std::filesystem;
    const std::string path =
        (fs::temp_directory_path() /
         ("irep_upload." + std::to_string(::getpid()) + "." +
          std::to_string(uploadSeq_.fetch_add(1)) + ".irtrace"))
            .string();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        fatalIf(!out, "cannot stage trace upload at '", path, "'");
        out.write(request.body.data(),
                  std::streamsize(request.body.size()));
        fatalIf(!out, "cannot write trace upload to '", path, "'");
    }

    AnalysisRequest parsed;
    parsed.workload = workload;
    parsed.fromTracePath = path;
    HttpResponse response;
    try {
        const AnalysisOutcome outcome = runAnalysis(parsed);
        counters_.analyses.fetch_add(1);
        response.body = outcome.statsJson;
    } catch (...) {
        std::error_code ec;
        fs::remove(path, ec);
        throw;
    }
    std::error_code ec;
    fs::remove(path, ec);
    return response;
}

HttpResponse
Server::handleBatch(const HttpRequest &request)
{
    const json::Value doc = json::parse(request.body);
    fatalIf(!doc.isObject() || !doc.contains("requests"),
            "batch body must be {\"requests\": [...]}");
    const json::Value &list = doc.at("requests");
    fatalIf(!list.isArray(), "\"requests\" must be an array");

    // Parse everything first so a malformed entry rejects the whole
    // batch before any simulation starts.
    std::vector<AnalysisRequest> parsed;
    parsed.reserve(list.size());
    for (const json::Value &entry : list.elements())
        parsed.push_back(parseAnalysisRequest(entry));

    // Entries run in order on this worker; concurrency comes from
    // the connection level (and repeats within the batch hit the
    // cache the first entry just recorded).
    std::string body = "{\"schema\": \"irep-serve-batch-1\",\n"
                       "\"results\": [\n";
    for (size_t i = 0; i < parsed.size(); ++i) {
        const AnalysisOutcome outcome = runAnalysis(parsed[i]);
        counters_.analyses.fetch_add(1);
        if (outcome.simulated)
            counters_.simulations.fetch_add(1);
        if (outcome.cacheHit)
            counters_.cacheHits.fetch_add(1);
        if (outcome.recorded)
            counters_.recorded.fetch_add(1);
        if (i > 0)
            body += ",\n";
        body += outcome.statsJson;
    }
    body += "]}\n";
    HttpResponse response;
    response.body = body;
    return response;
}

HttpResponse
Server::metricsResponse()
{
    std::ostringstream out;
    json::Writer w(out);
    w.beginObject();
    w.field("schema", "irep-serve-metrics-1");
    w.field("port", unsigned(port()));
    w.field("threads", config_.threads);
    w.field("requests", counters_.requests.load());
    w.field("analyses", counters_.analyses.load());
    w.field("simulations", counters_.simulations.load());
    w.field("cache_hits", counters_.cacheHits.load());
    w.field("recorded", counters_.recorded.load());
    w.field("errors", counters_.errors.load());
    w.field("in_flight", counters_.inFlight.load());
    if (prof::enabled()) {
        w.key("profile");
        prof::writeSummary(w);
    }
    w.endObject();
    out << '\n';
    HttpResponse response;
    response.body = out.str();
    return response;
}

} // namespace irep::serve
