/**
 * @file
 * The daemon's analysis service, factored apart from the wire layer
 * so tests (and the CLI) can call it in-process:
 *
 *  - writeStatsDoc() — the one `irep-stats-1` document builder. The
 *    CLI's --stats-json and every daemon response go through it, which
 *    is what makes "a daemon answer is byte-identical to the
 *    equivalent CLI invocation" a structural guarantee instead of a
 *    test hope.
 *  - runAnalysis() — one request end to end: build the workload
 *    machine, consult the IREP_TRACE_DIR cache (replay on hit,
 *    record-under-claim on miss, exactly like bench::Suite), run the
 *    pipeline, emit the document.
 *  - writeVersionDoc() — the `irep version` / GET /version document.
 *
 * Every function is thread-safe: requests share nothing but the
 * trace cache, whose single-flight claim protocol (trace_io/cache.hh)
 * already serializes recording per key.
 */

#ifndef IREP_SERVE_SERVICE_HH
#define IREP_SERVE_SERVICE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/pipeline.hh"
#include "support/json.hh"

namespace irep::serve
{

/** One analysis request, as parsed from a daemon request body. */
struct AnalysisRequest
{
    std::string workload;   //!< built-in workload name (required)
    uint64_t skip = 1'000'000;      //!< the `irep bench` default
    uint64_t window = 5'000'000;
    bool skipSet = false;   //!< `skip` given explicitly
    bool windowSet = false; //!< `window` given explicitly
    unsigned windowJobs = 0;    //!< intra-window shards (0 = env)
    /** Comma-separated analysis set (core::applyAnalysisSet names);
     *  empty = every analysis. The retire trace is analysis-agnostic,
     *  so cached streams replay under any set. */
    std::string analyses;
    /** Replay this trace instead of simulating (the trace's identity
     *  must match `workload`; its skip/window are adopted). */
    std::string fromTracePath;
};

/**
 * Parse the POST /analyze JSON body: `{"workload": "compress",
 * "skip": N?, "window": N?, "window_jobs": N?, "analyses": "..."?}`.
 * Unknown members — and unknown analysis names — are fatal: a typoed
 * "windw" must be a 400, not a silently defaulted
 * five-million-instruction run.
 */
AnalysisRequest parseAnalysisRequest(const json::Value &doc);

/** What one request did, for the metrics counters. */
struct AnalysisOutcome
{
    std::string statsJson;  //!< the full irep-stats-1 document
    bool simulated = false; //!< ran the simulator
    bool cacheHit = false;  //!< replayed an existing cache entry
    bool recorded = false;  //!< cold miss published a new entry
};

/**
 * Run one request. With IREP_TRACE_DIR set, the config-keyed cache
 * answers repeats without re-simulation; with `fromTracePath`, the
 * given trace is replayed directly. fatal() on unknown workloads,
 * unreadable traces and conflicting skip/window — the server maps
 * that to a 400.
 */
AnalysisOutcome runAnalysis(const AnalysisRequest &request);

/** Everything writeStatsDoc() needs beyond the pipeline. */
struct StatsDocSpec
{
    std::string command;    //!< "analyze" / "bench"
    std::string target;
    std::string workload;   //!< omitted from config when empty
    std::string input;      //!< --input path; omitted when empty
    /** Embed the `irep-prof-1` block. The daemon always passes false:
     *  the profiler registry is process-wide, so per-request documents
     *  would see each other's spans. */
    bool withProfile = false;
};

/**
 * Write the `irep-stats-1` document (plus trailing newline) for a
 * finished pipeline run: schema, command/target, config, every
 * registered statistic, and optionally the profiler summary.
 */
void writeStatsDoc(std::ostream &out,
                   const core::AnalysisPipeline &pipeline,
                   const StatsDocSpec &spec);

/**
 * Write the version document at the writer's current position:
 * `{schema, build, schemas: {stats, bench, prof}, trace: {format,
 * min_read, codecs: [...]}, features: [...]}`.
 */
void writeVersionDoc(json::Writer &w);

} // namespace irep::serve

#endif // IREP_SERVE_SERVICE_HH
