/**
 * @file
 * TraceReader: streams a recorded binary trace back into the
 * Observer interface, reconstructing the exact InstrRecord and
 * SyscallRecord sequence the live run dispatched — without decoding
 * or executing a single instruction.
 *
 * Opening a trace validates the whole file shape up front (header
 * CRC, every block frame, footer presence and record counts), so a
 * truncated or corrupt file is rejected with a diagnostic before any
 * record reaches an analysis; block payload CRCs are then verified
 * as each block is loaded during replay.
 */

#ifndef IREP_TRACE_IO_READER_HH
#define IREP_TRACE_IO_READER_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "sim/machine.hh"
#include "sim/replay.hh"
#include "trace_io/format.hh"

namespace irep::trace_io
{

/** Replays one trace file into observers. */
class TraceReader : public sim::ReplaySource
{
  public:
    /** Open @p path and validate header, framing and footer.
     *  fatal()s on anything malformed, truncated or version-skewed. */
    explicit TraceReader(std::string path);

    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const TraceHeader &header() const { return header_; }

    /**
     * Attach the machine the trace will be replayed against: verifies
     * the recorded identity hash against (program, @p input), decodes
     * the text section for the records' instruction pointers, and
     * arms the register write-back that keeps the machine's $sp and
     * argument registers live at recorded call sites (the only
     * machine state analyses read directly). Must be called before
     * replay().
     */
    void bind(sim::Machine &machine, const std::string &input);

    uint64_t replay(sim::Observer &observer,
                    uint64_t max_instructions) override;

    bool atEnd() const override;

    /** Instruction records dispatched so far. */
    uint64_t dispatched() const { return seq_; }

    /** Total payload bytes after decoding, summed over all blocks at
     *  open — the uncompressed stream size. */
    uint64_t rawPayloadBytes() const { return totalRawBytes_; }
    /** Total payload bytes as stored on disk; equals
     *  rawPayloadBytes() for version-1 traces. */
    uint64_t storedPayloadBytes() const { return totalStoredBytes_; }

    /** Instruction records in the whole trace (from the footer). */
    uint64_t totalInstrRecords() const { return footer_.instrRecords; }

    const std::string &path() const { return path_; }

  private:
    void validateShape();
    [[noreturn]] void corrupt(const std::string &what) const;
    void readRaw(void *data, size_t size, const char *what);
    bool loadNextBlock();
    uint64_t replayImpl(sim::Observer &observer,
                        uint64_t max_instructions);

    std::string path_;
    std::FILE *file_ = nullptr;
    TraceHeader header_;
    TraceFooter footer_;

    sim::Machine *machine_ = nullptr;
    std::vector<isa::Instruction> decoded_;
    std::vector<int8_t> destRegs_;

    std::string block_;
    std::string stored_;            //!< compressed-payload scratch
    const uint8_t *cursor_ = nullptr;
    const uint8_t *blockEnd_ = nullptr;
    uint32_t blockInstrLeft_ = 0;   //!< declared instr records left
    uint32_t blocksLoaded_ = 0;
    uint64_t payloadBytes_ = 0;     //!< decoded payload bytes replayed
    uint64_t totalRawBytes_ = 0;    //!< decoded payload, whole file
    uint64_t totalStoredBytes_ = 0; //!< on-disk payload, whole file
    bool sawFooter_ = false;

    uint64_t seq_ = 0;
    uint64_t syscallsDispatched_ = 0;
    uint32_t prevStaticIndex_ = 0;
    uint32_t prevMemAddr_ = 0;
};

} // namespace irep::trace_io

#endif // IREP_TRACE_IO_READER_HH
