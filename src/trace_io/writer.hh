/**
 * @file
 * TraceWriter: an Observer that records the retired-instruction and
 * syscall stream to a binary trace file (docs/trace-format.md).
 *
 * Writes go to `<path>.tmp.<pid>` and only an explicit commit() —
 * which seals the final block, appends the footer, fsync()s and
 * atomically renames over the target — makes the trace visible, so an
 * interrupted recording can never leave a file the replay cache would
 * pick up. A writer destroyed without commit() removes its temporary.
 */

#ifndef IREP_TRACE_IO_WRITER_HH
#define IREP_TRACE_IO_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "sim/machine.hh"
#include "sim/observer.hh"
#include "trace_io/format.hh"

namespace irep::trace_io
{

/**
 * Writer knobs, normally resolved from the environment: the format
 * version to emit (IREP_TRACE_FORMAT, default the current
 * formatVersion — 1 is kept writable for compatibility tests and
 * golden checks) and the block codec for version-2 traces
 * (IREP_TRACE_CODEC in {store, lz, zstd}, default defaultCodec();
 * ignored when writing version 1, which has no codec framing).
 */
struct TraceWriterOptions
{
    uint32_t version = formatVersion;
    Codec codec = Codec::IrepLz;

    /** Strictly parse IREP_TRACE_FORMAT / IREP_TRACE_CODEC; fatal on
     *  unusable values, defaults when unset. */
    static TraceWriterOptions fromEnv();
};

/** Records one machine's retire stream to @p path. */
class TraceWriter : public sim::Observer
{
  public:
    /**
     * Open `<path>.tmp.<pid>` and write the header.
     *
     * @param path    Final trace path (created on commit()).
     * @param machine The machine being recorded; sampled for the
     *                call-site register values function-level analysis
     *                needs, and hashed (with @p input) into the
     *                workload identity.
     * @param input   The input byte stream the run consumes.
     * @param skip    Skip-phase length this recording covers.
     * @param window  Window length this recording covers.
     * @param options Format version and codec; defaults to the
     *                environment-resolved knobs.
     */
    TraceWriter(std::string path, const sim::Machine &machine,
                const std::string &input, uint64_t skip,
                uint64_t window,
                TraceWriterOptions options =
                    TraceWriterOptions::fromEnv());

    /** Removes the temporary when commit() was never reached. */
    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void onRetire(const sim::InstrRecord &rec) override;
    void onSyscall(const sim::SyscallRecord &rec) override;

    /** Seal, fsync and atomically publish the trace. Call after the
     *  recorded run finishes; the writer must be detached first (or
     *  simply not observe any further retires). */
    void commit();

    uint64_t instrRecords() const { return instrRecords_; }
    uint64_t syscallRecords() const { return syscallRecords_; }

    /** Bytes written so far (header + sealed blocks). */
    uint64_t bytesWritten() const { return bytesWritten_; }

    /** Payload bytes before compression, over sealed blocks. */
    uint64_t rawPayloadBytes() const { return rawPayloadBytes_; }
    /** Payload bytes as stored on disk, over sealed blocks. Equal to
     *  rawPayloadBytes() for version-1 traces. */
    uint64_t storedPayloadBytes() const { return storedPayloadBytes_; }

    /** The format version being written. */
    uint32_t version() const { return options_.version; }
    /** The codec version-2 blocks compress with. */
    Codec codec() const { return options_.codec; }

    const std::string &path() const { return path_; }
    /** The temporary the writer streams into until commit(); exposed
     *  so fatal-signal cleanup can unlink it. */
    const std::string &tmpPath() const { return tmpPath_; }

  private:
    void sealBlock();
    void writeRaw(const void *data, size_t size);

    std::string path_;
    std::string tmpPath_;
    const sim::Machine &machine_;
    TraceWriterOptions options_;
    std::FILE *file_ = nullptr;
    bool committed_ = false;

    // The payload buffer is sized once (blockTarget plus worst-case
    // record slack) and filled through a raw cursor: the per-record
    // encoder is the hot loop of `irep record`, and appending varints
    // byte-by-byte through std::string's capacity checks dominated
    // recording wall clock. blockUsed_ is the live payload length.
    std::string block_;             //!< encoded payload storage
    std::string compressed_;        //!< per-block compression scratch
    size_t blockUsed_ = 0;          //!< payload bytes filled so far
    uint32_t blockInstrRecords_ = 0;
    uint32_t blockCount_ = 0;
    uint64_t instrRecords_ = 0;
    uint64_t syscallRecords_ = 0;
    uint64_t bytesWritten_ = 0;
    uint64_t rawPayloadBytes_ = 0;
    uint64_t storedPayloadBytes_ = 0;

    // Delta-encoding state (reset never; the reader decodes the
    // stream strictly in order).
    uint32_t prevStaticIndex_ = 0;
    uint32_t prevMemAddr_ = 0;
};

} // namespace irep::trace_io

#endif // IREP_TRACE_IO_WRITER_HH
