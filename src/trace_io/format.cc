#include "trace_io/format.hh"

#include "support/hash.hh"

namespace irep::trace_io
{

uint64_t
identityHash(const assem::Program &program, const std::string &input)
{
    uint64_t h = 0x7472616365696431ull; // "tracei d1"
    h = hashMix(h, program.text.size());
    for (uint32_t word : program.text)
        h = hashMix(h, word);
    h = hashMix(h, program.data.size());
    // Fold data bytes eight at a time; the tail is padded with zeros,
    // which the length mixed above disambiguates.
    uint64_t chunk = 0;
    unsigned fill = 0;
    for (uint8_t byte : program.data) {
        chunk |= uint64_t(byte) << (8 * fill);
        if (++fill == 8) {
            h = hashMix(h, chunk);
            chunk = 0;
            fill = 0;
        }
    }
    if (fill)
        h = hashMix(h, chunk);
    h = hashMix(h, program.entry);
    h = hashMix(h, input.size());
    chunk = 0;
    fill = 0;
    for (char c : input) {
        chunk |= uint64_t(uint8_t(c)) << (8 * fill);
        if (++fill == 8) {
            h = hashMix(h, chunk);
            chunk = 0;
            fill = 0;
        }
    }
    if (fill)
        h = hashMix(h, chunk);
    return h;
}

} // namespace irep::trace_io
