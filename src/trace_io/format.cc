#include "trace_io/format.hh"

#ifdef IREP_HAVE_ZSTD
#include <zstd.h>
#endif

#include "support/hash.hh"
#include "support/logging.hh"
#include "support/lz.hh"

namespace irep::trace_io
{

const char *
codecName(Codec codec)
{
    switch (codec) {
    case Codec::Store:
        return "store";
    case Codec::IrepLz:
        return "lz";
    case Codec::Zstd:
        return "zstd";
    }
    return "unknown";
}

bool
codecAvailable(Codec codec)
{
    switch (codec) {
    case Codec::Store:
    case Codec::IrepLz:
        return true;
    case Codec::Zstd:
#ifdef IREP_HAVE_ZSTD
        return true;
#else
        return false;
#endif
    }
    return false;
}

Codec
defaultCodec()
{
#ifdef IREP_HAVE_ZSTD
    return Codec::Zstd;
#else
    return Codec::IrepLz;
#endif
}

size_t
codecCompress(Codec codec, const uint8_t *src, size_t n,
              uint8_t *dst, size_t cap)
{
    switch (codec) {
    case Codec::IrepLz:
        return lz::compress(src, n, dst, cap);
    case Codec::Zstd: {
#ifdef IREP_HAVE_ZSTD
        const size_t r = ZSTD_compress(dst, cap, src, n, 3);
        return ZSTD_isError(r) ? 0 : r;
#else
        break;
#endif
    }
    case Codec::Store:
        break;
    }
    panic("codecCompress: codec ", codecName(codec),
          " is not an encoder in this build");
}

bool
codecDecompress(Codec codec, const uint8_t *src, size_t n,
                uint8_t *dst, size_t rawSize)
{
    switch (codec) {
    case Codec::IrepLz:
        return lz::decompress(src, n, dst, rawSize);
    case Codec::Zstd: {
#ifdef IREP_HAVE_ZSTD
        const size_t r = ZSTD_decompress(dst, rawSize, src, n);
        return !ZSTD_isError(r) && r == rawSize;
#else
        break;
#endif
    }
    case Codec::Store:
        break;
    }
    panic("codecDecompress: codec ", codecName(codec),
          " is not a decoder in this build");
}

uint64_t
identityHash(const assem::Program &program, const std::string &input)
{
    uint64_t h = 0x7472616365696431ull; // "tracei d1"
    h = hashMix(h, program.text.size());
    for (uint32_t word : program.text)
        h = hashMix(h, word);
    h = hashMix(h, program.data.size());
    // Fold data bytes eight at a time; the tail is padded with zeros,
    // which the length mixed above disambiguates.
    uint64_t chunk = 0;
    unsigned fill = 0;
    for (uint8_t byte : program.data) {
        chunk |= uint64_t(byte) << (8 * fill);
        if (++fill == 8) {
            h = hashMix(h, chunk);
            chunk = 0;
            fill = 0;
        }
    }
    if (fill)
        h = hashMix(h, chunk);
    h = hashMix(h, program.entry);
    h = hashMix(h, input.size());
    chunk = 0;
    fill = 0;
    for (char c : input) {
        chunk |= uint64_t(uint8_t(c)) << (8 * fill);
        if (++fill == 8) {
            h = hashMix(h, chunk);
            chunk = 0;
            fill = 0;
        }
    }
    if (fill)
        h = hashMix(h, chunk);
    return h;
}

} // namespace irep::trace_io
