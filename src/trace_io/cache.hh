/**
 * @file
 * The config-keyed trace cache. A cache entry is one committed trace
 * file whose name encodes the full replay key — workload identity
 * hash, skip, window and format version — so a key change simply
 * misses and re-records; the header carries the same key and is
 * re-verified on open, so a stale or tampered file can never replay.
 *
 * Enabled by IREP_TRACE_DIR (parsed strictly, like the other
 * environment knobs: set-but-unusable is fatal, unset disables
 * caching). bench::Suite and `irep bench`/`analyze` consult it so a
 * given (workload, skip, window) is simulated once and replayed
 * thereafter.
 */

#ifndef IREP_TRACE_IO_CACHE_HH
#define IREP_TRACE_IO_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>

#include "trace_io/reader.hh"

namespace irep::trace_io
{

/**
 * The trace-cache directory from IREP_TRACE_DIR, created if missing.
 * @return "" when the variable is unset or empty (caching disabled);
 *         fatal() when it is set but the directory cannot be created.
 */
std::string cacheDir();

/** @p name reduced to filename-safe characters ([A-Za-z0-9._-]). */
std::string sanitizeName(const std::string &name);

/** Canonical cache path for one (workload, skip, window) key under
 *  format @p version (new recordings land at the current
 *  formatVersion path). */
std::string cachePath(const std::string &dir, const std::string &name,
                      uint64_t identity, uint64_t skip,
                      uint64_t window,
                      uint32_t version = formatVersion);

/**
 * Open a cached trace and verify its header against the expected key.
 * @return nullptr on a miss — no file, an unreadable/corrupt file
 *         (noted on stderr; the caller should re-record), or a key
 *         mismatch. Never fatal for cache misses.
 */
std::unique_ptr<TraceReader> openCached(const std::string &path,
                                        uint64_t identity,
                                        uint64_t skip,
                                        uint64_t window);

/**
 * Probe the cache for one key across every readable format version,
 * newest first — so a directory recorded by an older build keeps
 * serving hits after an upgrade. @return an open, key-verified reader
 * or nullptr on a full miss.
 */
std::unique_ptr<TraceReader> findCached(const std::string &dir,
                                        const std::string &name,
                                        uint64_t identity,
                                        uint64_t skip,
                                        uint64_t window);

/**
 * Process-wide single-flight guard for recording one cache path:
 * constructing a claim blocks while another thread holds a claim on
 * the same path, so exactly one requester records a missing entry
 * while the rest wait and then replay the published file. The flow
 * is probe -> claim -> re-probe (the prior holder may have published
 * it) -> record -> release. Claims are per-path and per-process;
 * cross-process races stay benign because commits are atomic renames
 * of unique temporaries — the last writer wins with identical bytes.
 */
class RecordClaim
{
  public:
    /** Blocks until this thread is the path's sole claim holder. */
    explicit RecordClaim(const std::string &path);
    ~RecordClaim();

    RecordClaim(const RecordClaim &) = delete;
    RecordClaim &operator=(const RecordClaim &) = delete;

  private:
    std::string path_;
    void *entry_ = nullptr;
};

} // namespace irep::trace_io

#endif // IREP_TRACE_IO_CACHE_HH
