#include "trace_io/cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "support/logging.hh"

namespace irep::trace_io
{

std::string
cacheDir()
{
    const char *value = std::getenv("IREP_TRACE_DIR");
    if (!value || !*value)
        return "";
    std::error_code ec;
    std::filesystem::create_directories(value, ec);
    fatalIf(bool(ec), "IREP_TRACE_DIR: cannot create '", value,
            "': ", ec.message());
    return value;
}

std::string
sanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '_' || c == '-';
        out.push_back(safe ? c : '_');
    }
    return out.empty() ? "trace" : out;
}

std::string
cachePath(const std::string &dir, const std::string &name,
          uint64_t identity, uint64_t skip, uint64_t window,
          uint32_t version)
{
    char key[96];
    std::snprintf(key, sizeof(key),
                  ".%016llx.s%llu.w%llu.v%u.irtrace",
                  (unsigned long long)identity,
                  (unsigned long long)skip,
                  (unsigned long long)window, version);
    return dir + "/" + sanitizeName(name) + key;
}

std::unique_ptr<TraceReader>
openCached(const std::string &path, uint64_t identity, uint64_t skip,
           uint64_t window)
{
    if (!std::filesystem::exists(path))
        return nullptr;
    std::unique_ptr<TraceReader> reader;
    try {
        reader = std::make_unique<TraceReader>(path);
    } catch (const FatalError &e) {
        // Committed traces are published atomically, so a bad file
        // here means outside interference; say so, then re-record.
        std::fprintf(stderr,
                     "irep: ignoring unusable cached trace: %s\n",
                     e.what());
        return nullptr;
    }
    const TraceHeader &h = reader->header();
    if (h.identity != identity || h.skip != skip ||
        h.window != window)
        return nullptr;
    return reader;
}

std::unique_ptr<TraceReader>
findCached(const std::string &dir, const std::string &name,
           uint64_t identity, uint64_t skip, uint64_t window)
{
    for (uint32_t version = formatVersion;; --version) {
        auto reader = openCached(
            cachePath(dir, name, identity, skip, window, version),
            identity, skip, window);
        if (reader || version == minReadVersion)
            return reader;
    }
}

namespace
{

struct ClaimEntry {
    std::mutex mutex;
    int refs = 0;
};

std::mutex claimsMutex;
std::map<std::string, std::unique_ptr<ClaimEntry>> claims;

} // namespace

RecordClaim::RecordClaim(const std::string &path) : path_(path)
{
    ClaimEntry *entry;
    {
        std::lock_guard<std::mutex> lock(claimsMutex);
        auto &slot = claims[path_];
        if (!slot)
            slot = std::make_unique<ClaimEntry>();
        slot->refs++;
        entry = slot.get();
    }
    // Block outside the registry lock: the current holder needs the
    // registry to release.
    entry->mutex.lock();
    entry_ = entry;
}

RecordClaim::~RecordClaim()
{
    auto *entry = static_cast<ClaimEntry *>(entry_);
    entry->mutex.unlock();
    std::lock_guard<std::mutex> lock(claimsMutex);
    if (--entry->refs == 0)
        claims.erase(path_);
}

} // namespace irep::trace_io
