#include "trace_io/writer.hh"

#include <unistd.h>

#include <cstdio>

#include <cstdlib>

#include "isa/registers.hh"
#include "support/checksum.hh"
#include "support/logging.hh"
#include "support/parse.hh"
#include "support/varint.hh"

namespace irep::trace_io
{

namespace
{

/**
 * Worst-case encoded record size the block buffer must absorb past
 * the seal threshold: an instruction record is at most 57 bytes
 * (flags, five 5-byte varints, two single bytes, 25 bytes of call
 * registers) and a syscall record at most 31, and the seal check only
 * runs on retires — so one unsealed retire plus one syscall plus one
 * sealing retire can overshoot blockTarget by 57 + 31 - 1 bytes, and
 * varint::putShort() scribbles up to seven bytes past the cursor.
 */
constexpr size_t recordSlack = 128;
static_assert(blockTarget + recordSlack == blockRawCap,
              "readers size their decode buffers from blockRawCap");

} // namespace

TraceWriterOptions
TraceWriterOptions::fromEnv()
{
    TraceWriterOptions options;
    options.version =
        uint32_t(parse::envU64("IREP_TRACE_FORMAT", formatVersion));
    fatalIf(options.version < minReadVersion ||
                options.version > formatVersion,
            "IREP_TRACE_FORMAT: version ", options.version,
            " is not writable; this build writes ", minReadVersion,
            "-", formatVersion);
    options.codec = defaultCodec();
    if (const char *name = std::getenv("IREP_TRACE_CODEC")) {
        if (std::string(name) == "store")
            options.codec = Codec::Store;
        else if (std::string(name) == "lz")
            options.codec = Codec::IrepLz;
        else if (std::string(name) == "zstd")
            options.codec = Codec::Zstd;
        else
            fatal("IREP_TRACE_CODEC: unknown codec '", name,
                  "' (expected store, lz or zstd)");
        fatalIf(!codecAvailable(options.codec),
                "IREP_TRACE_CODEC: this build has no ", name,
                " support");
    }
    return options;
}

TraceWriter::TraceWriter(std::string path, const sim::Machine &machine,
                         const std::string &input, uint64_t skip,
                         uint64_t window, TraceWriterOptions options)
    : path_(std::move(path)), machine_(machine), options_(options)
{
    fatalIf(options_.version < minReadVersion ||
                options_.version > formatVersion,
            "trace format version ", options_.version,
            " is not writable");
    fatalIf(!codecAvailable(options_.codec),
            "trace codec ", codecName(options_.codec),
            " is not available in this build");
    block_.resize(blockRawCap);
    tmpPath_ = path_ + ".tmp." + std::to_string(::getpid());
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    fatalIf(!file_, "cannot open '", tmpPath_, "' for trace recording");

    TraceHeader header;
    header.version = options_.version;
    header.textBase = assem::Layout::textBase;
    header.textWords = machine.numStaticInstructions();
    header.entry = machine.program().entry;
    header.identity = identityHash(machine.program(), input);
    header.skip = skip;
    header.window = window;
    header.crc = crc32(&header, sizeof(header) - sizeof(header.crc));
    writeRaw(&header, sizeof(header));
}

TraceWriter::~TraceWriter()
{
    if (file_)
        std::fclose(file_);
    if (!committed_)
        std::remove(tmpPath_.c_str());
}

void
TraceWriter::writeRaw(const void *data, size_t size)
{
    fatalIf(std::fwrite(data, 1, size, file_) != size,
            "write to '", tmpPath_, "' failed");
    bytesWritten_ += size;
}

void
TraceWriter::onRetire(const sim::InstrRecord &rec)
{
    uint8_t flags = rec.numSrcRegs & flagSrcCountMask;
    if (rec.isMemAccess)
        flags |= flagMemAccess;
    if (rec.writesReg)
        flags |= flagWritesReg;
    const bool call = isa::opInfo(rec.inst->op).isCall;
    if (call)
        flags |= flagCallRegs;
    const bool control = rec.nextPc != rec.pc + 4;
    if (control)
        flags |= flagControl;

    uint8_t *const base =
        reinterpret_cast<uint8_t *>(block_.data()) + blockUsed_;
    uint8_t *p = base;
    *p++ = flags;

    varint::putShortSigned(p, int64_t(rec.staticIndex) -
                                  int64_t(prevStaticIndex_));
    prevStaticIndex_ = rec.staticIndex;

    for (int i = 0; i < rec.numSrcRegs; ++i)
        varint::putShort(p, rec.srcVal[i]);
    if (rec.isMemAccess) {
        varint::putShortSigned(p, int64_t(rec.memAddr) -
                                      int64_t(prevMemAddr_));
        prevMemAddr_ = rec.memAddr;
    }
    // The destination register is static for every op except SYSCALL
    // (which dynamically writes $v0, or nothing for Exit); the reader
    // derives it from its own decode, so only the dynamic case is
    // stored.
    if (rec.writesReg && rec.inst->destReg() < 0)
        *p++ = uint8_t(rec.destReg);
    varint::putShort(p, rec.result);
    if (control) {
        varint::putShortSigned(p, int64_t(rec.nextPc) -
                                      int64_t(rec.pc + 4));
    }
    if (call) {
        varint::put(p, machine_.reg(isa::regSP));
        for (unsigned i = 0; i < 4; ++i)
            varint::put(p, machine_.reg(isa::regA0 + i));
    }
    blockUsed_ += size_t(p - base);

    ++instrRecords_;
    ++blockInstrRecords_;
    if (blockUsed_ >= blockTarget)
        sealBlock();
}

void
TraceWriter::onSyscall(const sim::SyscallRecord &rec)
{
    uint8_t *const base =
        reinterpret_cast<uint8_t *>(block_.data()) + blockUsed_;
    uint8_t *p = base;
    *p++ = syscallRecordTag;
    varint::put(p, uint32_t(rec.num));
    varint::put(p, rec.arg0);
    varint::put(p, rec.arg1);
    varint::putShort(p, rec.result);
    varint::put(p, rec.writtenAddr);
    varint::put(p, rec.writtenLen);
    blockUsed_ += size_t(p - base);
    ++syscallRecords_;
}

void
TraceWriter::sealBlock()
{
    if (blockUsed_ == 0)
        return;
    rawPayloadBytes_ += blockUsed_;
    if (options_.version == 1) {
        BlockFrame frame;
        frame.payloadBytes = uint32_t(blockUsed_);
        frame.instrRecords = blockInstrRecords_;
        frame.payloadCrc = crc32(block_.data(), blockUsed_);
        writeRaw(&frame, sizeof(frame));
        writeRaw(block_.data(), blockUsed_);
        storedPayloadBytes_ += blockUsed_;
    } else {
        BlockFrame2 frame;
        frame.rawBytes = uint32_t(blockUsed_);
        frame.instrRecords = blockInstrRecords_;
        frame.rawCrc = crc32(block_.data(), blockUsed_);
        // Demand a net shrink (cap = raw - 1); anything else is
        // stored verbatim so no block can grow the file.
        size_t stored = 0;
        if (options_.codec != Codec::Store && blockUsed_ > 1) {
            if (compressed_.empty())
                compressed_.resize(blockRawCap);
            stored = codecCompress(
                options_.codec,
                reinterpret_cast<const uint8_t *>(block_.data()),
                blockUsed_,
                reinterpret_cast<uint8_t *>(compressed_.data()),
                blockUsed_ - 1);
        }
        if (stored != 0) {
            frame.codec = uint32_t(options_.codec);
            frame.storedBytes = uint32_t(stored);
            frame.storedCrc = crc32(compressed_.data(), stored);
            writeRaw(&frame, sizeof(frame));
            writeRaw(compressed_.data(), stored);
        } else {
            frame.codec = uint32_t(Codec::Store);
            frame.storedBytes = frame.rawBytes;
            frame.storedCrc = frame.rawCrc;
            writeRaw(&frame, sizeof(frame));
            writeRaw(block_.data(), blockUsed_);
        }
        storedPayloadBytes_ += frame.storedBytes;
    }
    blockUsed_ = 0;
    blockInstrRecords_ = 0;
    ++blockCount_;
}

void
TraceWriter::commit()
{
    panicIf(committed_, "trace committed twice");
    sealBlock();

    TraceFooter footer;
    footer.blockCount = blockCount_;
    footer.instrRecords = instrRecords_;
    footer.syscallRecords = syscallRecords_;
    footer.crc = crc32(&footer, sizeof(footer) - sizeof(footer.crc));
    writeRaw(&footer, sizeof(footer));

    // fsync before the rename: the rename must never become visible
    // ahead of the data it names (a crashed bench job would otherwise
    // publish a trace of zeros the cache would happily replay).
    fatalIf(std::fflush(file_) != 0, "flush of '", tmpPath_,
            "' failed");
    fatalIf(::fsync(::fileno(file_)) != 0, "fsync of '", tmpPath_,
            "' failed");
    fatalIf(std::fclose(file_) != 0, "close of '", tmpPath_,
            "' failed");
    file_ = nullptr;
    fatalIf(std::rename(tmpPath_.c_str(), path_.c_str()) != 0,
            "cannot rename '", tmpPath_, "' to '", path_, "'");
    committed_ = true;
}

} // namespace irep::trace_io
