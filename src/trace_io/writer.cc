#include "trace_io/writer.hh"

#include <unistd.h>

#include <cstdio>

#include "isa/registers.hh"
#include "support/checksum.hh"
#include "support/logging.hh"
#include "support/varint.hh"

namespace irep::trace_io
{

TraceWriter::TraceWriter(std::string path, const sim::Machine &machine,
                         const std::string &input, uint64_t skip,
                         uint64_t window)
    : path_(std::move(path)), machine_(machine)
{
    tmpPath_ = path_ + ".tmp." + std::to_string(::getpid());
    file_ = std::fopen(tmpPath_.c_str(), "wb");
    fatalIf(!file_, "cannot open '", tmpPath_, "' for trace recording");

    TraceHeader header;
    header.textBase = assem::Layout::textBase;
    header.textWords = machine.numStaticInstructions();
    header.entry = machine.program().entry;
    header.identity = identityHash(machine.program(), input);
    header.skip = skip;
    header.window = window;
    header.crc = crc32(&header, sizeof(header) - sizeof(header.crc));
    writeRaw(&header, sizeof(header));
}

TraceWriter::~TraceWriter()
{
    if (file_)
        std::fclose(file_);
    if (!committed_)
        std::remove(tmpPath_.c_str());
}

void
TraceWriter::writeRaw(const void *data, size_t size)
{
    fatalIf(std::fwrite(data, 1, size, file_) != size,
            "write to '", tmpPath_, "' failed");
    bytesWritten_ += size;
}

void
TraceWriter::onRetire(const sim::InstrRecord &rec)
{
    uint8_t flags = rec.numSrcRegs & flagSrcCountMask;
    if (rec.isMemAccess)
        flags |= flagMemAccess;
    if (rec.writesReg)
        flags |= flagWritesReg;
    const bool call = isa::opInfo(rec.inst->op).isCall;
    if (call)
        flags |= flagCallRegs;
    const bool control = rec.nextPc != rec.pc + 4;
    if (control)
        flags |= flagControl;
    block_.push_back(char(flags));

    varint::putSigned(block_, int64_t(rec.staticIndex) -
                                  int64_t(prevStaticIndex_));
    prevStaticIndex_ = rec.staticIndex;

    for (int i = 0; i < rec.numSrcRegs; ++i)
        varint::put(block_, rec.srcVal[i]);
    if (rec.isMemAccess) {
        varint::putSigned(block_, int64_t(rec.memAddr) -
                                      int64_t(prevMemAddr_));
        prevMemAddr_ = rec.memAddr;
    }
    // The destination register is static for every op except SYSCALL
    // (which dynamically writes $v0, or nothing for Exit); the reader
    // derives it from its own decode, so only the dynamic case is
    // stored.
    if (rec.writesReg && rec.inst->destReg() < 0)
        block_.push_back(char(rec.destReg));
    varint::put(block_, rec.result);
    if (control) {
        varint::putSigned(block_, int64_t(rec.nextPc) -
                                      int64_t(rec.pc + 4));
    }
    if (call) {
        varint::put(block_, machine_.reg(isa::regSP));
        for (unsigned i = 0; i < 4; ++i)
            varint::put(block_, machine_.reg(isa::regA0 + i));
    }

    ++instrRecords_;
    ++blockInstrRecords_;
    if (block_.size() >= blockTarget)
        sealBlock();
}

void
TraceWriter::onSyscall(const sim::SyscallRecord &rec)
{
    block_.push_back(char(syscallRecordTag));
    varint::put(block_, uint32_t(rec.num));
    varint::put(block_, rec.arg0);
    varint::put(block_, rec.arg1);
    varint::put(block_, rec.result);
    varint::put(block_, rec.writtenAddr);
    varint::put(block_, rec.writtenLen);
    ++syscallRecords_;
}

void
TraceWriter::sealBlock()
{
    if (block_.empty())
        return;
    BlockFrame frame;
    frame.payloadBytes = uint32_t(block_.size());
    frame.instrRecords = blockInstrRecords_;
    frame.payloadCrc = crc32(block_.data(), block_.size());
    writeRaw(&frame, sizeof(frame));
    writeRaw(block_.data(), block_.size());
    block_.clear();
    blockInstrRecords_ = 0;
    ++blockCount_;
}

void
TraceWriter::commit()
{
    panicIf(committed_, "trace committed twice");
    sealBlock();

    TraceFooter footer;
    footer.blockCount = blockCount_;
    footer.instrRecords = instrRecords_;
    footer.syscallRecords = syscallRecords_;
    footer.crc = crc32(&footer, sizeof(footer) - sizeof(footer.crc));
    writeRaw(&footer, sizeof(footer));

    // fsync before the rename: the rename must never become visible
    // ahead of the data it names (a crashed bench job would otherwise
    // publish a trace of zeros the cache would happily replay).
    fatalIf(std::fflush(file_) != 0, "flush of '", tmpPath_,
            "' failed");
    fatalIf(::fsync(::fileno(file_)) != 0, "fsync of '", tmpPath_,
            "' failed");
    fatalIf(std::fclose(file_) != 0, "close of '", tmpPath_,
            "' failed");
    file_ = nullptr;
    fatalIf(std::rename(tmpPath_.c_str(), path_.c_str()) != 0,
            "cannot rename '", tmpPath_, "' to '", path_, "'");
    committed_ = true;
}

} // namespace irep::trace_io
