/**
 * @file
 * The irep binary retire-trace format (see docs/trace-format.md for
 * the normative layout): a fixed header identifying the format
 * version, the program and the skip/window protocol the stream was
 * recorded under; CRC-framed blocks of delta/varint-encoded retire
 * and syscall records; and a footer whose presence distinguishes a
 * complete trace from a truncated one.
 */

#ifndef IREP_TRACE_IO_FORMAT_HH
#define IREP_TRACE_IO_FORMAT_HH

#include <bit>
#include <cstdint>
#include <string>

#include "asm/program.hh"

namespace irep::trace_io
{

// Fixed-width fields are written in host byte order and the format is
// defined as little-endian; every supported target is.
static_assert(std::endian::native == std::endian::little,
              "trace files are little-endian");

/** "IRTC" little-endian: the first four bytes of every trace file. */
constexpr uint32_t fileMagic = 0x43545249;
/** The version new traces are written as. Bumped on any incompatible
 *  layout change; the cache keys file names on it, so a bump simply
 *  misses and re-records. Readers accept every version in
 *  [minReadVersion, formatVersion]. */
constexpr uint32_t formatVersion = 2;
/** Oldest version this build still replays (v1: uncompressed block
 *  payloads behind a BlockFrame). */
constexpr uint32_t minReadVersion = 1;

/** "BLK1": starts every record block frame in a version-1 trace. */
constexpr uint32_t blockMagic = 0x314b4c42;
/** "BLK2": starts every compressed block frame in a version-2 trace. */
constexpr uint32_t blockMagic2 = 0x324b4c42;
/** "EOF1": starts the footer; a file that ends without one was
 *  truncated mid-write and must not be replayed. */
constexpr uint32_t footerMagic = 0x31464f45;

/** Target encoded-payload size at which the writer seals a block. */
constexpr size_t blockTarget = 1u << 18;
/** Hard cap on a block's decoded payload: blockTarget plus the
 *  writer's worst-case record overshoot. Readers reject any frame
 *  declaring more — it cannot have been written by us. */
constexpr size_t blockRawCap = blockTarget + 128;

/**
 * Block payload codec, recorded per frame in version-2 traces. The
 * writer falls back to Store whenever compression fails to shrink a
 * block, so every codec id can appear within one file.
 */
enum class Codec : uint32_t
{
    Store = 0,  //!< payload stored verbatim
    IrepLz = 1, //!< built-in LZ + range coder (support/lz)
    Zstd = 2,   //!< zstd frame (only when built with zstd)
};

/** Human-readable codec name ("store", "lz", "zstd"). */
const char *codecName(Codec codec);

/** Whether this build can decode/encode @p codec. */
bool codecAvailable(Codec codec);

/** The codec new traces compress with: Zstd when built in, else the
 *  self-contained IrepLz. */
Codec defaultCodec();

/**
 * Compress @p n bytes at @p src into @p dst (capacity @p cap) with
 * @p codec. @return the stored size, or 0 when the output would not
 * fit @p cap — pass cap < n to demand net shrink. Store is not a
 * valid argument (the caller handles that fallback itself).
 */
size_t codecCompress(Codec codec, const uint8_t *src, size_t n,
                     uint8_t *dst, size_t cap);

/**
 * Decompress @p n stored bytes into exactly @p rawSize bytes at
 * @p dst. @return false on malformed input; the caller must still
 * verify the frame's raw CRC afterwards.
 */
bool codecDecompress(Codec codec, const uint8_t *src, size_t n,
                     uint8_t *dst, size_t rawSize);

/**
 * Fixed-size (64-byte) file header. All fields little-endian; the
 * trailing CRC covers the preceding 60 bytes.
 */
struct TraceHeader
{
    uint32_t magic = fileMagic;
    uint32_t version = formatVersion;
    uint32_t textBase = 0;      //!< load address of the text section
    uint32_t textWords = 0;     //!< static instruction count
    uint32_t entry = 0;         //!< program entry pc
    uint32_t reserved0 = 0;
    uint64_t identity = 0;      //!< identityHash(program, input)
    uint64_t skip = 0;          //!< skip-phase length recorded under
    uint64_t window = 0;        //!< window length recorded under
    uint64_t reserved1 = 0;
    uint32_t reserved2 = 0;
    uint32_t crc = 0;           //!< crc32 of the 60 bytes above
};
static_assert(sizeof(TraceHeader) == 64,
              "trace header layout is part of the on-disk format");

/** Per-block frame preceding the payload bytes (version 1). */
struct BlockFrame
{
    uint32_t magic = blockMagic;
    uint32_t payloadBytes = 0;
    uint32_t instrRecords = 0;  //!< instruction records in the payload
    uint32_t payloadCrc = 0;    //!< crc32 of the payload bytes
};
static_assert(sizeof(BlockFrame) == 16,
              "block frame layout is part of the on-disk format");

/**
 * Per-block frame preceding the stored payload bytes (version 2).
 * Two checksums so every single-bit corruption is caught: storedCrc
 * covers the bytes on disk (file damage fails before decoding), and
 * rawCrc covers the decompressed payload (a flipped codec or length
 * field fails after it). instrRecords feeds the footer cross-check
 * and reserved0 must be zero.
 */
struct BlockFrame2
{
    uint32_t magic = blockMagic2;
    uint32_t storedBytes = 0;   //!< payload bytes on disk
    uint32_t rawBytes = 0;      //!< payload bytes after decoding
    uint32_t instrRecords = 0;  //!< instruction records in the payload
    uint32_t codec = 0;         //!< Codec the payload is stored under
    uint32_t storedCrc = 0;     //!< crc32 of the stored bytes
    uint32_t rawCrc = 0;        //!< crc32 of the decoded payload
    uint32_t reserved0 = 0;
};
static_assert(sizeof(BlockFrame2) == 32,
              "block frame layout is part of the on-disk format");

/** Fixed-size (32-byte) footer; crc covers the preceding 28 bytes. */
struct TraceFooter
{
    uint32_t magic = footerMagic;
    uint32_t blockCount = 0;
    uint64_t instrRecords = 0;
    uint64_t syscallRecords = 0;
    uint32_t reserved0 = 0;
    uint32_t crc = 0;
};
static_assert(sizeof(TraceFooter) == 32,
              "trace footer layout is part of the on-disk format");

/**
 * Record flags byte. The low two bits hold the source-register count
 * (0-2) for instruction records; the value 3 marks a syscall record
 * (whose remaining bits are zero).
 */
enum RecordFlags : uint8_t
{
    flagSrcCountMask = 0x03,
    syscallRecordTag = 0x03,
    flagMemAccess = 0x04,
    flagWritesReg = 0x08,
    flagCallRegs = 0x10,        //!< $sp + $a0-$a3 payload follows
    flagControl = 0x20,         //!< nextPc != pc + 4
    flagReservedMask = 0xc0,    //!< must be zero in version 1
};

/**
 * The workload-identity hash stored in the header and baked into
 * cache file names: covers the text and data images, the entry point
 * and the exact input byte stream, so a trace can never silently
 * replay against a different program or input.
 */
uint64_t identityHash(const assem::Program &program,
                      const std::string &input);

} // namespace irep::trace_io

#endif // IREP_TRACE_IO_FORMAT_HH
